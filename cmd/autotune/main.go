// Command autotune searches the declarative policy space for controller
// configurations on the SLO-attainment-vs-server-hours Pareto frontier.
//
// Each controller's policy template (tunable knobs with ranges) is swept
// over a deterministic grid, then refined with seeded random perturbations
// of the running frontier; every candidate is scored on a scenario
// portfolio (steady, bursty, chaos, retry-storm). The search is
// byte-identical for any -parallel value.
//
//	autotune -o pareto.json                          # full search
//	autotune -quick -budget 4 -portfolio steady      # smoke run
//	autotune -controllers dcm,target-tracking        # subset
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dcm/internal/autotune"
	"dcm/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "autotune:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("autotune", flag.ContinueOnError)
	var (
		out         = fs.String("o", "", "write the JSON report to this file (default stdout table only)")
		portfolio   = fs.String("portfolio", "", "comma-separated scenario subset (default all: "+strings.Join(autotune.ScenarioNames(), ",")+")")
		controllers = fs.String("controllers", "", "comma-separated controller subset (default all templates)")
		budget      = fs.Int("budget", 24, "candidate evaluations per controller")
		seeds       = fs.Int("seeds", 2, "perturbations per frontier point per refinement round (0 disables refinement)")
		rounds      = fs.Int("rounds", 2, "refinement rounds")
		parallel    = fs.Int("parallel", 0, "worker pool size (<= 0 selects the runner default; any value yields identical output)")
		seed        = fs.Uint64("seed", 42, "scenario seed")
		searchSeed  = fs.Uint64("search-seed", 1, "refinement perturbation seed")
		quick       = fs.Bool("quick", false, "shrunken scenario horizons for smoke runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	names := splitList(*portfolio)
	port, err := autotune.Portfolio(names, *seed, *quick)
	if err != nil {
		return err
	}

	templates := autotune.DefaultTemplates()
	if sel := splitList(*controllers); len(sel) > 0 {
		templates = templates[:0]
		for _, name := range sel {
			tmpl, err := autotune.TemplateFor(experiments.ControllerKind(name))
			if err != nil {
				return err
			}
			templates = append(templates, tmpl)
		}
	}

	refineSeeds := *seeds
	if refineSeeds == 0 {
		// Config treats 0 as "use the default"; the CLI's 0 means "off".
		refineSeeds = -1
	}
	cfg := autotune.Config{
		Templates: templates,
		Portfolio: port,
		Budget:    *budget,
		Seeds:     refineSeeds,
		Rounds:    *rounds,
		Workers:   *parallel,
		Seed:      *searchSeed,
	}
	rep, err := autotune.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Print(autotune.RenderReport(rep))
	if *out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	return nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
