package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dcm/internal/autotune"
)

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-portfolio", "bogus"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-controllers", "bogus"}); err == nil {
		t.Fatal("unknown controller accepted")
	}
}

// TestRunDeterministicAcrossParallel is the CLI-level acceptance check:
// the same search written under -parallel 1 and -parallel 4 produces
// byte-identical JSON reports.
func TestRunDeterministicAcrossParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real scenario simulations")
	}
	dir := t.TempDir()
	var files [][]byte
	for _, parallel := range []string{"1", "4"} {
		out := filepath.Join(dir, "pareto-"+parallel+".json")
		err := run([]string{
			"-quick", "-portfolio", "steady", "-controllers", "target-tracking",
			"-budget", "4", "-seeds", "1", "-rounds", "1",
			"-parallel", parallel, "-o", out,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, b)
	}
	if !bytes.Equal(files[0], files[1]) {
		t.Fatal("-parallel 1 and -parallel 4 reports differ")
	}
	var rep autotune.Report
	if err := json.Unmarshal(files[0], &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if len(rep.Controllers) != 1 || rep.Controllers[0].Controller != "target-tracking" {
		t.Fatalf("controller selection wrong: %+v", rep.Controllers)
	}
	if len(rep.Controllers[0].Frontier) == 0 {
		t.Fatal("empty frontier in written report")
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Fatalf("empty list: %v", got)
	}
	if got, want := splitList("a, b,,c"), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("split %v, want %v", got, want)
	}
}
