// benchgate converts `go test -bench` output into the BENCH_engine.json
// artifact and gates it against a checked-in baseline: the CI bench job
// fails when any baselined benchmark regresses more than the tolerance
// band in ns/op, grows its allocs/op at all, or disappears.
//
// Usage:
//
//	go test ./internal/sim/ -bench ... -benchmem -count=3 | tee bench.txt
//	go run ./cmd/benchgate -o BENCH_engine.json -baseline BENCH_engine.baseline.json bench.txt
//
// Refreshing the baseline after an intentional performance change:
//
//	go run ./cmd/benchgate -update -baseline BENCH_engine.baseline.json bench.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"dcm/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		outPath   = fs.String("o", "", "write parsed results JSON to this path")
		baseline  = fs.String("baseline", "", "baseline JSON to gate against")
		tolerance = fs.Float64("tolerance", bench.DefaultTolerance, "allowed fractional ns/op regression")
		update    = fs.Bool("update", false, "rewrite the baseline from this run instead of gating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no bench output files given")
	}
	var current bench.Suite
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		s, err := bench.ParseText(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parsing %s: %v", path, err)
		}
		current.Benchmarks = append(current.Benchmarks, s.Benchmarks...)
	}
	if len(current.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in %v", fs.Args())
	}
	if *outPath != "" {
		if err := bench.Save(*outPath, current); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d benchmark results to %s\n", len(current.Benchmarks), *outPath)
	}
	if *baseline == "" {
		return nil
	}
	if *update {
		if err := bench.Save(*baseline, current); err != nil {
			return err
		}
		fmt.Fprintf(out, "baseline %s updated from this run\n", *baseline)
		return nil
	}
	base, err := bench.Load(*baseline)
	if err != nil {
		return err
	}
	deltas := bench.Compare(base, current, *tolerance)
	fmt.Fprintf(out, "benchmark trajectory vs %s (tolerance %.0f%% ns/op, 0 allocs/op):\n",
		*baseline, *tolerance*100)
	bench.Render(out, deltas)
	if regs := bench.Regressions(deltas); len(regs) > 0 {
		for _, d := range regs {
			fmt.Fprintf(out, "FAIL %s: %s\n", d.Name, d.Reason)
		}
		return fmt.Errorf("%d benchmark(s) regressed past the gate", len(regs))
	}
	fmt.Fprintln(out, "benchmark gate passed")
	return nil
}
