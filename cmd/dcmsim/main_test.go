package main

import (
	"os"
	"path/filepath"
	"testing"

	"dcm/internal/trace"
)

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-controller", "bogus"}); err == nil {
		t.Fatal("unknown controller accepted")
	}
	if err := run([]string{"-trace", "/does/not/exist.csv"}); err == nil {
		t.Fatal("missing trace accepted")
	}
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunShortScenarioFromFile(t *testing.T) {
	t.Parallel()
	tr, err := trace.SynthesizeStep("s", 200, 1200, 20e9, 60e9)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "step.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-controller", "dcm", "-trace", path, "-every", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestUserBounds(t *testing.T) {
	t.Parallel()
	if minUsers(nil) != 0 || maxUsers(nil) != 0 {
		t.Fatal("empty bounds wrong")
	}
	if minUsers([]int{3, 1, 2}) != 1 || maxUsers([]int{3, 1, 2}) != 3 {
		t.Fatal("bounds wrong")
	}
	if traceName(nil) == "" {
		t.Fatal("nil trace name empty")
	}
}

// TestRunWithObservabilityFlags drives -reqtrace, -audit and -pprof end to
// end on a short trace and checks the artifacts land on disk.
func TestRunWithObservabilityFlags(t *testing.T) {
	t.Parallel()
	tr, err := trace.SynthesizeStep("s", 200, 1200, 20e9, 60e9)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "step.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "req.jsonl")
	auditPath := filepath.Join(dir, "audit.jsonl")
	profPath := filepath.Join(dir, "cpu.prof")
	err = run([]string{
		"-controller", "dcm", "-trace", csvPath, "-every", "60",
		"-reqtrace", tracePath, "-audit", auditPath, "-pprof", profPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tracePath, auditPath, profPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("artifact %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("artifact %s is empty", p)
		}
	}
}
