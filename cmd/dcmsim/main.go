// Command dcmsim runs a §V-B scaling scenario — DCM or a baseline
// controller against a bursty workload trace — and prints the Fig. 5-style
// time series and summary. Run with -h for flags; -compare adds the
// EC2-AutoScale baseline next to the chosen controller.
//
// With -topology the command instead drives the named service-graph
// topology (see topologies/) through the graph experiment: bursty
// arrivals, per-node DCM controllers on armed nodes, and the per-node
// ledger report. -seed, -timeout and -invariants apply; the
// chain-scenario flags do not.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"dcm/internal/experiments"
	"dcm/internal/invariant"
	"dcm/internal/metrics"
	"dcm/internal/resilience"
	"dcm/internal/trace"
)

// startCPUProfile begins a CPU profile written to path and returns the
// stop function (a no-op for an empty path).
func startCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcmsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcmsim", flag.ContinueOnError)
	var (
		controllerName = fs.String("controller", "dcm", "dcm | ec2-autoscale | target-tracking | dcm-predictive | ec2-predictive | dcm-soft-only | none")
		traceFile      = fs.String("trace", "", `trace CSV file ("seconds,users"); empty = synthetic large-variation trace`)
		seed           = fs.Uint64("seed", 42, "random seed")
		period         = fs.Duration("period", 15*time.Second, "control period")
		prep           = fs.Duration("prep", 15*time.Second, "VM preparation period")
		think          = fs.Duration("think", 3*time.Second, "client think time")
		every          = fs.Int("every", 10, "print every N-th second of the series")
		compare        = fs.Bool("compare", false, "also run the ec2-autoscale baseline and print a comparison")
		csvOut         = fs.String("csv", "", "also write the per-second series to this CSV file")
		reqTrace       = fs.String("reqtrace", "", "write the request-level trace (one span event per tier hop) to this JSONL file and print the per-tier latency breakdown")
		auditOut       = fs.String("audit", "", "write the controller decision audit log to this JSONL file and print its reason-code summary")
		pprofOut       = fs.String("pprof", "", "write a CPU profile of the run to this file")
		resil          = fs.String("resilience", "off", "data-plane resilience preset: off | timeout | retries | full")
		reqTimeout     = fs.Duration("timeout", 0, "per-request deadline for the resilience presets (0 = preset default)")
		invariants     = fs.Bool("invariants", false, "run the runtime invariant checker alongside the simulation and fail on any structural-law violation (results are byte-identical)")
		topologyFile   = fs.String("topology", "", "run a service-graph topology spec instead of the chain scenario (see topologies/)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfile, err := startCPUProfile(*pprofOut)
	if err != nil {
		return err
	}
	defer stopProfile()

	if *topologyFile != "" {
		res, err := experiments.RunGraph(experiments.GraphConfig{
			Seed:        *seed,
			Topology:    *topologyFile,
			Timeout:     *reqTimeout,
			Controllers: true,
			Invariants:  *invariants,
		})
		if err != nil {
			return err
		}
		fmt.Printf("service graph %s\n\n", *topologyFile)
		fmt.Print(experiments.RenderGraph(res))
		if vs := res.InvariantViolations; len(vs) > 0 {
			fmt.Println("invariant violations:")
			fmt.Print(invariant.Render(vs))
			return fmt.Errorf("%d invariant violation(s)", len(vs))
		}
		return nil
	}

	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.ParseCSV(*traceFile, f)
		if err != nil {
			return err
		}
	}

	resCfg, err := resilience.Preset(*resil, *reqTimeout)
	if err != nil {
		return err
	}

	cfg := experiments.ScenarioConfig{
		Seed:          *seed,
		Kind:          experiments.ControllerKind(*controllerName),
		Trace:         tr,
		ThinkTime:     *think,
		ControlPeriod: *period,
		PrepDelay:     *prep,
		CaptureTrace:  *reqTrace != "",
		Audit:         *auditOut != "",
		Resilience:    resCfg,
		Invariants:    *invariants,
	}
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return err
	}

	if *reqTrace != "" {
		if err := writeRequestTrace(res, *reqTrace); err != nil {
			return err
		}
	}
	if *auditOut != "" {
		if err := writeAuditLog(res, *auditOut); err != nil {
			return err
		}
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		if err := res.WriteSeriesCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote per-second series to %s\n", *csvOut)
	}

	fmt.Printf("controller %s, trace %q (%d..%d users)\n\n",
		cfg.Kind, traceName(tr), minUsers(res.Users), maxUsers(res.Users))

	users := make([]float64, len(res.Users))
	for i, u := range res.Users {
		users[i] = float64(u)
	}
	fmt.Print(metrics.Chart("users", users, 100, 5))
	fmt.Print(metrics.Chart("throughput (req/s)", res.Throughput, 100, 5))
	fmt.Print(metrics.Chart("mean response time (s)", res.MeanRTSec, 100, 5))
	fmt.Println()
	fmt.Println(experiments.RenderScenarioSeries(res, *every))
	fmt.Println("scaling actions:")
	for _, rec := range res.Actions {
		status := ""
		if rec.Err != "" {
			status = "  ERROR: " + rec.Err
		}
		fmt.Printf("  t=%6.0fs %-14s %-4s [%s] %s%s\n",
			rec.At.Seconds(), rec.Action.Type, rec.Action.Tier, rec.Action.Code,
			rec.Action.Reason, status)
	}
	fmt.Println()

	results := []*experiments.ScenarioResult{res}
	if *compare && cfg.Kind != experiments.ControllerEC2 {
		baseCfg := cfg
		baseCfg.Kind = experiments.ControllerEC2
		base, err := experiments.RunScenario(baseCfg)
		if err != nil {
			return err
		}
		results = append(results, base)
	}
	fmt.Println(experiments.RenderScenarioComparison(results...))
	if disp := experiments.RenderDispositionSummary(results...); disp != "" {
		fmt.Println("request dispositions:")
		fmt.Println(disp)
	}
	if *invariants {
		return reportInvariants(results...)
	}
	return nil
}

// reportInvariants prints the invariant-checker verdict for each result
// and returns an error if any run recorded structural-law violations.
func reportInvariants(results ...*experiments.ScenarioResult) error {
	bad := 0
	for _, r := range results {
		if len(r.InvariantViolations) > 0 {
			bad += len(r.InvariantViolations)
			fmt.Printf("invariant violations (%s):\n%s", r.Kind, invariant.Render(r.InvariantViolations))
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d invariant violation(s)", bad)
	}
	fmt.Println("invariants: clean (0 violations)")
	return nil
}

// writeRequestTrace exports the run's raw span events as JSONL and prints
// the per-tier latency breakdown reconstructed from them.
func writeRequestTrace(res *experiments.ScenarioResult, path string) error {
	rt := res.RequestTrace()
	if rt == nil {
		return fmt.Errorf("no request trace captured")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rt.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d trace events to %s (%d dropped)\n\n", rt.Len(), path, rt.Dropped())
	fmt.Print(trace.RenderBreakdown(res.LatencyBreakdown))
	fmt.Println()
	fmt.Println("per-tier histograms:")
	fmt.Print(experiments.RenderTierLatency(res))
	fmt.Println()
	return nil
}

// writeAuditLog exports the controller decision log as JSONL and prints
// its reason-code summary.
func writeAuditLog(res *experiments.ScenarioResult, path string) error {
	log := res.DecisionLog()
	if log == nil {
		return fmt.Errorf("controller does not support decision auditing")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := log.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d audited decisions to %s\n\n", log.Len(), path)
	fmt.Print(log.RenderSummary())
	fmt.Println()
	return nil
}

func traceName(tr *trace.Trace) string {
	if tr == nil {
		return "large-variation (synthetic)"
	}
	return tr.Name()
}

func minUsers(users []int) int {
	if len(users) == 0 {
		return 0
	}
	m := users[0]
	for _, u := range users {
		if u < m {
			m = u
		}
	}
	return m
}

func maxUsers(users []int) int {
	m := 0
	for _, u := range users {
		if u > m {
			m = u
		}
	}
	return m
}
