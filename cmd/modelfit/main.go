// Command modelfit reproduces the model training of §V-A (Table I): it
// sweeps the simulated testbed across request-processing concurrencies,
// fits the concurrency-aware model (Equation 7) by nonlinear least
// squares, and prints the fitted parameters, R², the optimal concurrency
// N_b and the predicted maximum throughput next to the paper's values.
//
// It can also fit a model to external data: pass -data file.csv with
// "concurrency,throughput" rows to fit your own measurements.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"dcm/internal/experiments"
	"dcm/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelfit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modelfit", flag.ContinueOnError)
	var (
		seed    = fs.Uint64("seed", 42, "random seed")
		measure = fs.Duration("measure", 15*time.Second, "measurement window per concurrency level")
		dataCSV = fs.String("data", "", `fit external "concurrency,throughput" CSV instead of the simulated testbed`)
		servers = fs.Int("servers", 1, "number of bottleneck-tier servers during training (K_b)")
		knownS0 = fs.Float64("s0", 0, "known single-threaded service time in seconds (anchors the gauge; 0 = report gamma=1 gauge)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dataCSV != "" {
		return fitExternal(*dataCSV, *servers, *knownS0)
	}

	tomcat, mysql, err := experiments.Table1(*seed, *measure)
	if err != nil {
		return err
	}
	fmt.Println("Table I reproduction (paper values alongside measured fits):")
	fmt.Println()
	fmt.Println(experiments.RenderTable1(tomcat, mysql))
	fmt.Println("Tomcat training data (concurrency, system throughput):")
	printObservations(tomcat.Observations)
	fmt.Println("MySQL training data (concurrency, request-level throughput):")
	printObservations(mysql.Observations)
	return nil
}

func printObservations(obs []model.Observation) {
	for _, o := range obs {
		fmt.Printf("  %6.0f  %8.1f\n", o.Concurrency, o.Throughput)
	}
	fmt.Println()
}

func fitExternal(path string, servers int, knownS0 float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	obs, err := parseObservations(f)
	if err != nil {
		return err
	}
	res, err := model.Train(obs, model.TrainOptions{Servers: servers, KnownS0: knownS0})
	if err != nil {
		return err
	}
	fmt.Printf("fitted on %d observations:\n", len(obs))
	fmt.Printf("  S0    = %.4e s\n", res.Params.S0)
	fmt.Printf("  alpha = %.4e s/thread\n", res.Params.Alpha)
	fmt.Printf("  beta  = %.4e s/thread^2\n", res.Params.Beta)
	fmt.Printf("  gamma = %.4f\n", res.Params.Gamma)
	fmt.Printf("  R^2   = %.4f\n", res.RSquared)
	fmt.Printf("  N_b   = %d (optimal per-server concurrency)\n", res.OptimalN)
	fmt.Printf("  X_max = %.1f (predicted maximum throughput)\n", res.MaxThroughput)
	return nil
}

func parseObservations(r io.Reader) ([]model.Observation, error) {
	sc := bufio.NewScanner(r)
	var obs []model.Observation
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if line == 1 && strings.HasPrefix(strings.ToLower(text), "concurrency") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want 2 fields, got %d", line, len(fields))
		}
		n, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad concurrency: %w", line, err)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad throughput: %w", line, err)
		}
		obs = append(obs, model.Observation{Concurrency: n, Throughput: x})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return obs, nil
}
