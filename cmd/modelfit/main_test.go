package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcm/internal/model"
)

func TestParseObservations(t *testing.T) {
	t.Parallel()
	in := "concurrency,throughput\n# comment\n\n1,100\n2.5,180\n"
	obs, err := parseObservations(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 2 || obs[1].Concurrency != 2.5 || obs[1].Throughput != 180 {
		t.Fatalf("obs = %+v", obs)
	}
}

func TestParseObservationsErrors(t *testing.T) {
	t.Parallel()
	for _, in := range []string{"1,2,3\n", "x,2\n", "1,y\n"} {
		if _, err := parseObservations(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestFitExternal(t *testing.T) {
	t.Parallel()
	tomcat, _ := model.TableI()
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	var b strings.Builder
	b.WriteString("concurrency,throughput\n")
	for _, n := range []float64{1, 2, 5, 10, 20, 40, 80, 160} {
		fmt.Fprintf(&b, "%v,%v\n", n, tomcat.Throughput(n, 1))
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fitExternal(path, 1, tomcat.S0); err != nil {
		t.Fatal(err)
	}
	if err := fitExternal(filepath.Join(dir, "missing.csv"), 1, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunExternalData(t *testing.T) {
	t.Parallel()
	_, mysql := model.TableI()
	dir := t.TempDir()
	path := filepath.Join(dir, "mysql.csv")
	var b strings.Builder
	for _, n := range []float64{1, 3, 8, 18, 36, 70, 140} {
		fmt.Fprintf(&b, "%v,%v\n", n, mysql.Throughput(n, 1))
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", path}); err != nil {
		t.Fatal(err)
	}
}
