// Command tracegen generates and inspects workload trace files in the
// "seconds,users" CSV format consumed by dcmsim and the trace-driven
// workload generator.
//
//	tracegen -kind large-variation -o trace.csv    the §V-B stand-in trace
//	tracegen -kind step ...                        a two-level step
//	tracegen -kind sine ...                        a sinusoidal diurnal trace
//	tracegen -inspect trace.csv                    print a trace's statistics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dcm/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		kind       = fs.String("kind", "large-variation", "large-variation | step | sine | spikes")
		out        = fs.String("o", "", "output file (default stdout)")
		seed       = fs.Uint64("seed", 42, "random seed for jittered traces")
		inspect    = fs.String("inspect", "", "inspect an existing trace file instead of generating")
		total      = fs.Duration("total", 10*time.Minute, "trace duration (step, sine)")
		low        = fs.Int("low", 200, "low user level (step)")
		high       = fs.Int("high", 2000, "high user level (step)")
		stepAt     = fs.Duration("step-at", 5*time.Minute, "step time (step)")
		mean       = fs.Int("mean", 1000, "mean users (sine)")
		amp        = fs.Int("amplitude", 600, "amplitude (sine)")
		sinePer    = fs.Duration("period", 4*time.Minute, "period (sine)")
		sineStep   = fs.Duration("resolution", 5*time.Second, "point spacing (sine)")
		spikes     = fs.Int("spikes", 5, "number of spikes (spikes)")
		spikeWidth = fs.Duration("spike-width", 30*time.Second, "spike width (spikes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		return inspectTrace(*inspect)
	}

	var (
		tr  *trace.Trace
		err error
	)
	switch *kind {
	case "large-variation":
		tr = trace.SynthesizeLargeVariation(*seed)
	case "step":
		tr, err = trace.SynthesizeStep("step", *low, *high, *stepAt, *total)
	case "sine":
		tr, err = trace.SynthesizeSine("sine", *mean, *amp, *sinePer, *total, *sineStep)
	case "spikes":
		tr, err = trace.SynthesizeSpikes("spikes", *low, *high, *spikes, *spikeWidth, *total, *seed)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("wrote %q: %v, %d points, users %d..%d (mean %.0f)\n",
			*out, tr.Duration(), len(tr.Points()), minOf(tr), tr.MaxUsers(), tr.MeanUsers())
	}
	return nil
}

func inspectTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ParseCSV(path, f)
	if err != nil {
		return err
	}
	st := trace.ComputeStats(tr)
	fmt.Printf("trace %q\n", tr.Name())
	fmt.Printf("  duration:   %v (%d points)\n", tr.Duration(), len(tr.Points()))
	fmt.Printf("  users:      min %d, mean %.0f, max %d\n", st.Min, st.Mean, st.Max)
	fmt.Printf("  peak/mean:  %.2fx\n", st.PeakToMean)
	fmt.Printf("  CoV:        %.2f\n", st.CoV)
	fmt.Printf("  bursts >2x: %d\n", st.Bursts)
	return nil
}

func minOf(tr *trace.Trace) int {
	m := tr.MaxUsers()
	for _, p := range tr.Points() {
		if p.Users < m {
			m = p.Users
		}
	}
	return m
}
