package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := run([]string{"-kind", "large-variation", "-o", path, "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "seconds,users\n") {
		t.Fatalf("missing header: %q", string(data[:32]))
	}
	if err := run([]string{"-inspect", path}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateStepAndSine(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	for _, kind := range []string{"step", "sine"} {
		path := filepath.Join(dir, kind+".csv")
		if err := run([]string{"-kind", kind, "-o", path}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			t.Fatalf("%s: empty output (%v)", kind, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-kind", "bogus"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := run([]string{"-inspect", "/does/not/exist.csv"}); err == nil {
		t.Fatal("missing inspect file accepted")
	}
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
