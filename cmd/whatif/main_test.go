package main

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"dcm/internal/ntier"
)

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-users", "0"}); err == nil {
		t.Fatal("zero users accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	t.Parallel()
	if err := run([]string{
		"-app", "1", "-db", "1", "-app-threads", "20", "-db-conns", "36",
		"-users", "500", "-measure", "4s",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONSmoke(t *testing.T) {
	t.Parallel()
	if err := run([]string{
		"-users", "500", "-measure", "4s", "-json", "-slo", "0.25",
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluationSchema pins the -json payload: the shared
// autotune.Evaluation schema with binary steady-state attainment and no
// controller/cost dimensions.
func TestEvaluationSchema(t *testing.T) {
	t.Parallel()
	ev := evaluation("mva", 480, 0.012, 0.5)
	if ev.Source != "mva" || ev.Attainment != 1 || ev.ThroughputRPS != 480 || ev.MeanRTSec != 0.012 {
		t.Fatalf("evaluation wrong: %+v", ev)
	}
	if ev.Controller != "" || ev.ServerHours != 0 {
		t.Fatalf("steady-state evaluation carries controller/cost fields: %+v", ev)
	}
	if ev := evaluation("simulation", 480, 0.8, 0.5); ev.Attainment != 0 {
		t.Fatalf("missed SLO must score 0, got %v", ev.Attainment)
	}
	b, err := json.Marshal(evaluation("mva", 480, 0.012, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"source"`, `"sloSec"`, `"attainment"`, `"throughputRPS"`, `"meanRTSec"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("marshaled evaluation missing %s: %s", key, b)
		}
	}
	for _, key := range []string{`"controller"`, `"serverHours"`, `"completed"`} {
		if strings.Contains(string(b), key) {
			t.Fatalf("marshaled evaluation should omit %s: %s", key, b)
		}
	}
}

// TestAnalysisTracksSimulation: the approximate MVA and the simulation
// must agree within 15% in the healthy operating regime — the tool's
// usefulness depends on it.
func TestAnalysisTracksSimulation(t *testing.T) {
	t.Parallel()
	cfg := ntier.DefaultConfig()
	cfg.AppThreads = 20
	cfg.DBConnsPerApp = 36
	for _, users := range []int{300, 1200, 2200} {
		simX, _, err := simulate(cfg, users, 3*time.Second, 8*time.Second, 42)
		if err != nil {
			t.Fatal(err)
		}
		mvaX, _, err := analyze(cfg, users, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(simX-mvaX) / simX; rel > 0.15 {
			t.Errorf("users=%d: sim %v vs mva %v (%.0f%% apart)", users, simX, mvaX, rel*100)
		}
	}
}

// TestAnalysisPredictsTrap: the analytical model must also see the
// Fig. 2(b) collapse of the 160-connection allocation.
func TestAnalysisPredictsTrap(t *testing.T) {
	t.Parallel()
	good := ntier.DefaultConfig()
	good.AppServers = 2
	good.DBConnsPerApp = 20
	bad := good
	bad.DBConnsPerApp = 80

	goodX, _, err := analyze(good, 3000, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	badX, _, err := analyze(bad, 3000, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if badX > 0.6*goodX {
		t.Fatalf("analysis missed the trap: 80-conn %v vs 20-conn %v", badX, goodX)
	}
}
