package main

import (
	"math"
	"testing"
	"time"

	"dcm/internal/ntier"
)

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-users", "0"}); err == nil {
		t.Fatal("zero users accepted")
	}
}

func TestRunSmoke(t *testing.T) {
	t.Parallel()
	if err := run([]string{
		"-app", "1", "-db", "1", "-app-threads", "20", "-db-conns", "36",
		"-users", "500", "-measure", "4s",
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalysisTracksSimulation: the approximate MVA and the simulation
// must agree within 15% in the healthy operating regime — the tool's
// usefulness depends on it.
func TestAnalysisTracksSimulation(t *testing.T) {
	t.Parallel()
	cfg := ntier.DefaultConfig()
	cfg.AppThreads = 20
	cfg.DBConnsPerApp = 36
	for _, users := range []int{300, 1200, 2200} {
		simX, _, err := simulate(cfg, users, 3*time.Second, 8*time.Second, 42)
		if err != nil {
			t.Fatal(err)
		}
		mvaX, _, err := analyze(cfg, users, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(simX-mvaX) / simX; rel > 0.15 {
			t.Errorf("users=%d: sim %v vs mva %v (%.0f%% apart)", users, simX, mvaX, rel*100)
		}
	}
}

// TestAnalysisPredictsTrap: the analytical model must also see the
// Fig. 2(b) collapse of the 160-connection allocation.
func TestAnalysisPredictsTrap(t *testing.T) {
	t.Parallel()
	good := ntier.DefaultConfig()
	good.AppServers = 2
	good.DBConnsPerApp = 20
	bad := good
	bad.DBConnsPerApp = 80

	goodX, _, err := analyze(good, 3000, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	badX, _, err := analyze(bad, 3000, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if badX > 0.6*goodX {
		t.Fatalf("analysis missed the trap: 80-conn %v vs 20-conn %v", badX, goodX)
	}
}
