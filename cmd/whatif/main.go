// Command whatif is a capacity-planning calculator: given a topology, a
// soft-resource allocation and a user population, it answers "what
// throughput and response time would this configuration deliver?" twice —
// analytically (exact load-dependent MVA over the calibrated tier models)
// and empirically (a steady-state discrete-event simulation) — and prints
// both side by side.
//
//	whatif -app 2 -db 1 -app-threads 20 -db-conns 18 -users 2000
//	whatif -users 2000 -json -slo 0.5        # machine-readable evaluations
//
// With -json the two methods are emitted as a JSON array of
// autotune.Evaluation objects — the same result schema the autotuner's
// portfolio runs use — so downstream tooling consumes capacity-planning
// answers and tuning scores uniformly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dcm/internal/autotune"
	"dcm/internal/metrics"
	"dcm/internal/mva"
	"dcm/internal/ntier"
	"dcm/internal/rng"
	"dcm/internal/sim"
	"dcm/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "whatif:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	var (
		appServers = fs.Int("app", 1, "Tomcat servers (#A)")
		dbServers  = fs.Int("db", 1, "MySQL servers (#D)")
		appThreads = fs.Int("app-threads", 100, "Tomcat thread pool per server (#A_T)")
		dbConns    = fs.Int("db-conns", 80, "DB connections per Tomcat (#A_C)")
		users      = fs.Int("users", 1000, "concurrent users")
		think      = fs.Duration("think", 3*time.Second, "mean think time")
		measure    = fs.Duration("measure", 20*time.Second, "simulation measurement window")
		seed       = fs.Uint64("seed", 42, "random seed")
		jsonOut    = fs.Bool("json", false, "emit a JSON array of evaluations instead of the table")
		slo        = fs.Float64("slo", 0.5, "response-time objective in seconds (scored in -json output)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users < 1 || *appServers < 1 || *dbServers < 1 {
		return fmt.Errorf("users/app/db must be >= 1")
	}

	cfg := ntier.DefaultConfig()
	cfg.AppServers = *appServers
	cfg.DBServers = *dbServers
	cfg.AppThreads = *appThreads
	cfg.DBConnsPerApp = *dbConns

	simX, simRT, err := simulate(cfg, *users, *think, *measure, *seed)
	if err != nil {
		return err
	}
	mvaX, mvaRT, err := analyze(cfg, *users, *think)
	if err != nil {
		return err
	}

	if *jsonOut {
		evals := []autotune.Evaluation{
			evaluation("simulation", simX, simRT, *slo),
			evaluation("mva", mvaX, mvaRT, *slo),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(evals)
	}

	fmt.Printf("configuration %d/%d/%d at %d users, %v think:\n",
		1, *appServers, *dbServers, *users, *think)
	fmt.Printf("  soft resources: %d threads/Tomcat, %d conns/Tomcat\n\n", *appThreads, *dbConns)
	tb := metrics.NewTable("method", "throughput (req/s)", "mean RT (ms)")
	tb.AddRow("simulation", fmt.Sprintf("%.0f", simX), fmt.Sprintf("%.1f", simRT*1000))
	tb.AddRow("MVA (approximate)", fmt.Sprintf("%.0f", mvaX), fmt.Sprintf("%.1f", mvaRT*1000))
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Println("note: the analytical model treats tiers as independent stations, so it")
	fmt.Println("is approximate for the full stack (Tomcat threads are held during DB")
	fmt.Println("visits); the simulation is the reference. Large disagreement usually")
	fmt.Println("means the configuration is near a thrash or saturation boundary.")
	return nil
}

// evaluation wraps one method's steady-state answer in the shared
// autotune.Evaluation schema. A steady state either meets the SLO or it
// does not, so attainment is binary; there is no controller, policy or
// server-hours dimension here.
func evaluation(source string, x, rt, slo float64) autotune.Evaluation {
	attainment := 0.0
	if rt <= slo {
		attainment = 1.0
	}
	return autotune.Evaluation{
		Source:        source,
		SLOSec:        slo,
		Attainment:    attainment,
		ThroughputRPS: x,
		MeanRTSec:     rt,
	}
}

// simulate measures the configuration's steady state.
func simulate(cfg ntier.Config, users int, think, measure time.Duration, seed uint64) (x float64, rt float64, err error) {
	eng := sim.NewEngine()
	root := rng.New(seed)
	app, err := ntier.New(eng, root.Split("app"), cfg)
	if err != nil {
		return 0, 0, err
	}
	wl, err := workload.NewClosedLoop(eng, root.Split("wl"), app, workload.ClosedLoopConfig{
		Users:     users,
		ThinkTime: think,
	})
	if err != nil {
		return 0, 0, err
	}
	wl.Start()
	warmup := 10 * time.Second
	if err := eng.Run(warmup); err != nil {
		return 0, 0, err
	}
	app.TakeStats()
	if err := eng.Run(warmup + measure); err != nil {
		return 0, 0, err
	}
	st := app.TakeStats()
	return float64(st.Completions) / measure.Seconds(), st.RT.Mean, nil
}

// analyze solves the approximate closed network: web, app and db as
// load-dependent stations with the calibrated laws, the db station capped
// by the total allocated connections.
func analyze(cfg ntier.Config, users int, think time.Duration) (x float64, rt float64, err error) {
	dbCap := cfg.DBConnsPerApp * cfg.AppServers
	if perServer := dbCap / cfg.DBServers; perServer < 1 {
		dbCap = cfg.DBServers
	}
	dbService := func(j int) float64 {
		per := (j + cfg.DBServers - 1) / cfg.DBServers
		s := cfg.DBModel.ServiceTime(float64(per))
		if cfg.DBThrashKnee > 0 && per > cfg.DBThrashKnee {
			over := float64(per - cfg.DBThrashKnee)
			s += cfg.DBThrashCoef * over * over
		}
		// Allocation-borne crosstalk (see server.Config.BetaOnConfigured).
		alloc := float64(cfg.DBConnsPerApp*cfg.AppServers) / float64(cfg.DBServers)
		s += cfg.DBModel.Beta * (alloc*(alloc-1) - float64(per)*(float64(per)-1))
		return s / float64(cfg.DBServers)
	}
	appService := func(j int) float64 {
		per := (j + cfg.AppServers - 1) / cfg.AppServers
		return cfg.AppModel.ServiceTime(float64(per)) / float64(cfg.AppServers)
	}
	net := mva.Network{
		ThinkTime: think.Seconds(),
		Stations: []mva.Station{
			mva.PooledStation("web", 1, cfg.WebThreads, func(j int) float64 {
				return cfg.WebModel.ServiceTime(float64(j))
			}),
			mva.PooledStation("app", 1, cfg.AppThreads*cfg.AppServers, appService),
			mva.PooledStation("db", float64(cfg.QueriesPerRequest), dbCap, dbService),
		},
	}
	results, err := mva.Solve(net, users)
	if err != nil {
		return 0, 0, err
	}
	r := results[users-1]
	return r.Throughput, r.ResponseTime, nil
}
