// Command sweep runs the steady-state experiments of §II and §V-A:
//
//	sweep -experiment fig2a      MySQL throughput vs concurrency (Fig. 2(a))
//	sweep -experiment fig2b      dynamic scale-out trap (Fig. 2(b))
//	sweep -experiment fig4a      Tomcat-allocation validation (Fig. 4(a))
//	sweep -experiment fig4b      DB-connection validation (Fig. 4(b))
//	sweep -experiment smoke      million-user event-core smoke (see -peak, -trace)
//	sweep -experiment openloop   open-loop two-class saturation run (see -rate)
//	sweep -experiment flashcrowd open-loop flash-crowd spike (see -rate)
//	sweep -experiment graph      service-graph topology run (see -topology, -chaos)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"dcm/internal/experiments"
	"dcm/internal/invariant"
	"dcm/internal/runner"
	"dcm/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "fig2a", "fig2a | fig2b | fig4a | fig4b | smoke | openloop | flashcrowd | graph")
		seed       = fs.Uint64("seed", 42, "random seed")
		measure    = fs.Duration("measure", 20*time.Second, "measurement window per point")
		users      = fs.Int("users", 3000, "sustained user population (fig2b)")
		parallel   = fs.Int("parallel", 0, "worker goroutines for independent runs (0 = GOMAXPROCS)")
		pprofOut   = fs.String("pprof", "", "write a CPU profile of the run to this file")
		invariants = fs.Bool("invariants", false, "run the runtime invariant checker alongside every point and fail on any structural-law violation (results are byte-identical)")
		peak       = fs.Int("peak", 1_000_000, "peak user population for the synthesized smoke trace")
		traceCSV   = fs.String("trace", "", "users-over-time CSV driving the smoke run (default: synthesized sine ramp to -peak)")
		rate       = fs.Float64("rate", 0, "base arrival rate in req/s for the open-loop experiments (0 = default)")
		horizon    = fs.Duration("horizon", 0, "virtual run length for the open-loop experiments (0 = default)")
		degrade    = fs.Bool("degrade", false, "arm the self-healing brownout layer for the open-loop experiments (default policy knobs)")
		topology   = fs.String("topology", "", "topology spec file for the graph experiment (empty = built-in fanout5)")
		chaos      = fs.Bool("chaos", false, "inject a mid-run replica crash and later replacement (graph experiment)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner.SetDefaultWorkers(*parallel)
	stopProfile, err := startCPUProfile(*pprofOut)
	if err != nil {
		return err
	}
	defer stopProfile()

	var chk *invariant.Checker
	if *invariants {
		chk = invariant.New()
	}

	switch *experiment {
	case "fig2a":
		rows, err := experiments.Fig2aMySQLSweepChecked(*seed, nil, *measure, chk)
		if err != nil {
			return err
		}
		fmt.Println("Figure 2(a): MySQL performance vs request processing concurrency")
		fmt.Println()
		fmt.Print(experiments.RenderFig2a(rows))
	case "fig2b":
		res, err := experiments.Fig2bScaleOutChecked(*seed, *users, 60*time.Second, chk)
		if err != nil {
			return err
		}
		fmt.Printf("Figure 2(b): runtime scale-out 1/1/1 -> 1/2/1 at %d users\n\n", res.Users)
		fmt.Print(experiments.RenderFig2b(res))
		fmt.Println("\nper-second throughput around the scaling event (t-10s .. t+30s):")
		printWindow(res.SeriesDefault, res.ScaleAtSecond, "default  ")
		printWindow(res.SeriesCorrected, res.ScaleAtSecond, "corrected")
	case "fig4a":
		rows, allocs, err := experiments.Fig4aChecked(*seed, nil, *measure, chk)
		if err != nil {
			return err
		}
		fmt.Println("Figure 4(a): validation under 1/1/1 (throughput, req/s)")
		fmt.Println()
		fmt.Print(experiments.RenderFig4(rows, allocs))
	case "fig4b":
		rows, allocs, err := experiments.Fig4bChecked(*seed, nil, *measure, chk)
		if err != nil {
			return err
		}
		fmt.Println("Figure 4(b): validation under 1/2/1 (throughput, req/s)")
		fmt.Println()
		fmt.Print(experiments.RenderFig4(rows, allocs))
	case "smoke":
		var tr *trace.Trace
		if *traceCSV != "" {
			f, err := os.Open(*traceCSV)
			if err != nil {
				return err
			}
			tr, err = trace.ParseCSV(*traceCSV, f)
			f.Close()
			if err != nil {
				return err
			}
		}
		res, err := experiments.RunMillionSmoke(experiments.MillionSmokeConfig{
			Seed:       *seed,
			Trace:      tr,
			PeakUsers:  *peak,
			Invariants: *invariants,
		})
		if err != nil {
			return err
		}
		fmt.Println("Million-user event-core smoke: trace-driven ramp through the timer wheel")
		fmt.Println()
		fmt.Print(experiments.RenderMillionSmoke(res))
		if vs := res.InvariantViolations; len(vs) > 0 {
			fmt.Println("invariant violations:")
			fmt.Print(invariant.Render(vs))
			return fmt.Errorf("%d invariant violation(s)", len(vs))
		}
	case "openloop", "flashcrowd":
		cfg := experiments.OpenLoopConfig{
			Seed:       *seed,
			Rate:       *rate,
			Horizon:    *horizon,
			Invariants: *invariants,
			Degrade:    *degrade,
		}
		var res experiments.OpenLoopResult
		var err error
		if *experiment == "flashcrowd" {
			res, err = experiments.RunFlashCrowd(cfg)
		} else {
			res, err = experiments.RunOpenLoop(cfg)
		}
		if err != nil {
			return err
		}
		if *experiment == "flashcrowd" {
			fmt.Println("Flash crowd: open-loop trapezoid spike against the two-class mix")
		} else {
			fmt.Println("Open loop: constant-rate two-class arrivals past the closed-loop ceiling")
		}
		fmt.Println()
		fmt.Print(experiments.RenderOpenLoop(res))
		if d := res.Degrade; d != nil {
			fmt.Printf("\nself-healing: %d ticks, %d unhealthy, %d brownout episode(s), %d brownout sheds\n",
				d.Ticks, d.UnhealthyTicks, len(d.Episodes), d.BrownoutSheds)
			for _, ep := range d.Episodes {
				exit := "open at horizon"
				if ep.ExitAt > 0 {
					exit = fmt.Sprintf("exit t=%v", ep.ExitAt)
				}
				fmt.Printf("  enter t=%v  %s  (%s)\n", ep.EnterAt, exit, ep.Reason)
			}
		}
		if vs := res.InvariantViolations; len(vs) > 0 {
			fmt.Println("invariant violations:")
			fmt.Print(invariant.Render(vs))
			return fmt.Errorf("%d invariant violation(s)", len(vs))
		}
	case "graph":
		res, err := experiments.RunGraph(experiments.GraphConfig{
			Seed:        *seed,
			Topology:    *topology,
			Rate:        *rate,
			Horizon:     *horizon,
			Chaos:       *chaos,
			Controllers: true,
			Invariants:  *invariants,
		})
		if err != nil {
			return err
		}
		fmt.Println("Service graph: bursty open-loop arrivals against a DAG topology")
		fmt.Println()
		fmt.Print(experiments.RenderGraph(res))
		if vs := res.InvariantViolations; len(vs) > 0 {
			fmt.Println("invariant violations:")
			fmt.Print(invariant.Render(vs))
			return fmt.Errorf("%d invariant violation(s)", len(vs))
		}
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	if chk != nil {
		if vs := chk.Violations(); len(vs) > 0 {
			fmt.Println("invariant violations:")
			fmt.Print(invariant.Render(vs))
			return fmt.Errorf("%d invariant violation(s)", chk.Total())
		}
		fmt.Println("invariants: clean (0 violations)")
	}
	return nil
}

// startCPUProfile begins a CPU profile written to path and returns the
// stop function (a no-op for an empty path).
func startCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

func printWindow(series []float64, at int, label string) {
	lo, hi := at-10, at+30
	if lo < 0 {
		lo = 0
	}
	if hi > len(series) {
		hi = len(series)
	}
	fmt.Printf("  %s:", label)
	for i := lo; i < hi; i++ {
		fmt.Printf(" %4.0f", series[i])
	}
	fmt.Println()
}
