package main

import (
	"testing"
)

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunFig2aShort(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-experiment", "fig2a", "-measure", "2s"}); err != nil {
		t.Fatal(err)
	}
}

func TestPrintWindowBounds(t *testing.T) {
	t.Parallel()
	// Must not panic near the series edges.
	printWindow([]float64{1, 2, 3}, 0, "x")
	printWindow([]float64{1, 2, 3}, 100, "x")
	printWindow(nil, 5, "x")
}
