package main

import (
	"os"
	"path/filepath"
	"testing"

	"dcm/internal/chaos"
	"dcm/internal/controller"
	"dcm/internal/experiments"
	"dcm/internal/ntier"
)

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-scenario", "no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-file", "/does/not/exist.json"}); err == nil {
		t.Fatal("missing scenario file accepted")
	}
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestListScenarios(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

// TestTomcatCrashMidRampRecovers is the end-to-end acceptance test: under
// the bundled tomcat-crash-midramp scenario a Tomcat-tier VM dies in the
// middle of the second burst's ramp, and the DCM controller must detect
// the dead capacity from the hypervisor census and restore throughput
// within a bounded recovery time.
func TestTomcatCrashMidRampRecovers(t *testing.T) {
	t.Parallel()
	sched, err := chaos.Builtin("tomcat-crash-midramp")
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.RunScenario(experiments.ScenarioConfig{
		Seed:  42,
		Kind:  experiments.ControllerDCM,
		Chaos: &sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil || len(res.Chaos.Faults) != 1 {
		t.Fatalf("chaos report = %+v", res.Chaos)
	}
	// The crash must actually have landed on a serving Tomcat.
	inj := res.Chaos.Injections[0]
	if inj.Skipped {
		t.Fatalf("crash skipped: %+v", inj)
	}
	crashed := false
	for _, ev := range res.VMEvents {
		if ev.Action == "crash" && ev.Tier == ntier.TierApp {
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("no app-tier crash in the hypervisor event log")
	}
	// The controller must have re-provisioned...
	reprovisioned := false
	for _, rec := range res.Actions {
		if rec.Action.Tier == ntier.TierApp && rec.Action.Type == controller.ActionScaleOut {
			reprovisioned = true
		}
	}
	if !reprovisioned {
		t.Fatal("controller never scaled the app tier back out after the crash")
	}
	// ...and throughput must recover within a bounded time: one control
	// period to census the crash (15 s) + the preparation period (15 s)
	// + settling. 60 s is the asserted bound; the measured TTR is ~19 s.
	fr := res.Chaos.Faults[0]
	if !fr.Recovered {
		t.Fatalf("throughput never recovered: %+v", fr)
	}
	if fr.Impacted && (fr.TTRSeconds < 0 || fr.TTRSeconds > 60) {
		t.Fatalf("recovery took %.0f s, want ≤ 60 s", fr.TTRSeconds)
	}
}

// TestRunBundledScenario drives the CLI itself end to end.
func TestRunBundledScenario(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-scenario", "tomcat-crash-midramp", "-every", "60"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioFromFile(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "custom.json")
	body := `{
		"name": "custom",
		"faults": [
			{"kind": "degraded-server", "at": "2m", "duration": "90s", "tier": "app", "factor": 2}
		]
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", path, "-controller", "ec2-autoscale", "-every", "60"}); err != nil {
		t.Fatal(err)
	}
}

// TestFlagValidation covers the flag-combination errors: -parallel out of
// range or without -seeds, detail flags mixed with -seeds, and seed-list
// parse failures.
func TestFlagValidation(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-parallel", "-1"},
		{"-parallel", "2"},                    // -parallel without -seeds
		{"-seeds", "1,2", "-trace", "/tmp/x"}, // detail flag with -seeds
		{"-seeds", "1,2", "-audit", "/tmp/x"}, // detail flag with -seeds
		{"-seeds", ""},                        // empty seed list
		{"-seeds", "1,notanumber"},            // unparseable seed
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// TestParseSeedsSorts: the summary table must be ordered by seed whatever
// order the user typed.
func TestParseSeedsSorts(t *testing.T) {
	t.Parallel()
	got, err := parseSeeds("9, 3,7,1")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestRunWithTraceAndAudit drives the CLI detail mode with every
// observability flag and checks the artifacts land on disk.
func TestRunWithTraceAndAudit(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	auditPath := filepath.Join(dir, "audit.jsonl")
	profPath := filepath.Join(dir, "cpu.prof")
	err := run([]string{
		"-scenario", "tomcat-crash-midramp", "-every", "120",
		"-trace", tracePath, "-audit", auditPath, "-pprof", profPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tracePath, auditPath, profPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("artifact %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("artifact %s is empty", p)
		}
	}
}

// TestRunMultiSeed exercises the multi-seed summary path end to end.
func TestRunMultiSeed(t *testing.T) {
	t.Parallel()
	err := run([]string{
		"-scenario", "tomcat-crash-midramp", "-seeds", "2,1", "-parallel", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}
