// Command chaossim runs a §V-B scaling scenario under fault injection and
// prints the recovery report next to the usual Fig. 5-style series. Pick a
// bundled scenario with -scenario (see -list) or supply a JSON schedule
// with -file; the same seed always replays the same failure trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dcm/internal/chaos"
	"dcm/internal/experiments"
	"dcm/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaossim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaossim", flag.ContinueOnError)
	var (
		scenarioName   = fs.String("scenario", "tomcat-crash-midramp", "bundled scenario name (see -list)")
		scenarioFile   = fs.String("file", "", "JSON fault-schedule file (overrides -scenario)")
		controllerName = fs.String("controller", "dcm", "dcm | ec2-autoscale | target-tracking | dcm-predictive | ec2-predictive | dcm-soft-only | none")
		seed           = fs.Uint64("seed", 42, "random seed (same seed = same failure trace)")
		period         = fs.Duration("period", 15*time.Second, "control period")
		prep           = fs.Duration("prep", 15*time.Second, "VM preparation period")
		every          = fs.Int("every", 20, "print every N-th second of the series")
		list           = fs.Bool("list", false, "list bundled scenarios and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, name := range chaos.BuiltinNames() {
			s, _ := chaos.Builtin(name)
			fmt.Printf("%-22s %d fault(s)\n", name, len(s.Faults))
			for _, f := range s.Faults {
				fmt.Printf("    %s\n", f)
			}
		}
		return nil
	}

	var (
		sched chaos.Schedule
		err   error
	)
	if *scenarioFile != "" {
		sched, err = chaos.Load(*scenarioFile)
	} else {
		sched, err = chaos.Builtin(*scenarioName)
	}
	if err != nil {
		return err
	}

	cfg := experiments.ScenarioConfig{
		Seed:          *seed,
		Kind:          experiments.ControllerKind(*controllerName),
		ControlPeriod: *period,
		PrepDelay:     *prep,
		Chaos:         &sched,
	}
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("controller %s under scenario %q (seed %d)\n\n", cfg.Kind, sched.Name, *seed)
	fmt.Print(metrics.Chart("throughput (req/s)", res.Throughput, 100, 5))
	fmt.Print(metrics.Chart("mean response time (s)", res.MeanRTSec, 100, 5))
	fmt.Println()
	fmt.Println(experiments.RenderScenarioSeries(res, *every))

	fmt.Println("injections:")
	for _, inj := range res.Chaos.Injections {
		status := ""
		if inj.Skipped {
			status = "  SKIPPED"
		}
		fmt.Printf("  t=%6.0fs %-18s %-10s %s%s\n",
			inj.At.Seconds(), inj.Kind, inj.Target, inj.Detail, status)
	}
	fmt.Println()
	fmt.Println("scaling actions:")
	for _, rec := range res.Actions {
		status := ""
		if rec.Err != "" {
			status = "  ERROR: " + rec.Err
		}
		fmt.Printf("  t=%6.0fs %-14s %-4s %s%s\n",
			rec.At.Seconds(), rec.Action.Type, rec.Action.Tier, rec.Action.Reason, status)
	}
	fmt.Println()
	fmt.Println(res.Chaos.Render())
	return nil
}
