// Command chaossim runs a §V-B scaling scenario under fault injection and
// prints the recovery report next to the usual Fig. 5-style series. Pick a
// bundled scenario with -scenario (see -list) or supply a JSON schedule
// with -file; the same seed always replays the same failure trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"dcm/internal/chaos"
	"dcm/internal/experiments"
	"dcm/internal/invariant"
	"dcm/internal/metrics"
	"dcm/internal/resilience"
	"dcm/internal/runner"
	"dcm/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaossim:", err)
		os.Exit(1)
	}
}

// parseSeeds parses a comma-separated uint64 list and returns it sorted
// ascending, so the summary table reads in seed order whatever order the
// user typed.
func parseSeeds(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds in %q", s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaossim", flag.ContinueOnError)
	var (
		scenarioName   = fs.String("scenario", "tomcat-crash-midramp", "bundled scenario name (see -list)")
		scenarioFile   = fs.String("file", "", "JSON fault-schedule file (overrides -scenario)")
		controllerName = fs.String("controller", "dcm", "dcm | ec2-autoscale | target-tracking | dcm-predictive | ec2-predictive | dcm-soft-only | none")
		seed           = fs.Uint64("seed", 42, "random seed (same seed = same failure trace)")
		period         = fs.Duration("period", 15*time.Second, "control period")
		prep           = fs.Duration("prep", 15*time.Second, "VM preparation period")
		every          = fs.Int("every", 20, "print every N-th second of the series")
		list           = fs.Bool("list", false, "list bundled scenarios and exit")
		seeds          = fs.String("seeds", "", "comma-separated seed list; runs every seed concurrently and prints a summary table sorted by seed (overrides -seed)")
		parallel       = fs.Int("parallel", 0, "worker goroutines for multi-seed runs (0 = GOMAXPROCS)")
		reqTrace       = fs.String("trace", "", "write the request-level trace to this JSONL file and print the per-tier latency breakdown (single-seed runs only)")
		auditOut       = fs.String("audit", "", "write the controller decision audit log to this JSONL file and print its reason-code summary (single-seed runs only)")
		pprofOut       = fs.String("pprof", "", "write a CPU profile of the run to this file")
		resil          = fs.String("resilience", "off", "data-plane resilience preset: off | timeout | retries | full")
		reqTimeout     = fs.Duration("timeout", 0, "per-request deadline for the resilience presets (0 = preset default)")
		retryStorm     = fs.Bool("retrystorm", false, "run the retry-storm resilience ladder (none vs retries vs full) under a degraded-server fault instead of a scaling scenario")
		degradeArm     = fs.Bool("degrade", false, "with -retrystorm: append the self-healing rung (online detectors + brownout) and fail unless it detects the collapse and recovers >= 80% of pre-fault goodput")
		invariants     = fs.Bool("invariants", false, "run the runtime invariant checker alongside the simulation and fail on any structural-law violation (results are byte-identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flag-combination validation up front, so a bad invocation fails with
	// a clear message instead of a half-run or a silently ignored flag.
	if *parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", *parallel)
	}
	parallelSet, seedsSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "parallel":
			parallelSet = true
		case "seeds":
			seedsSet = true
		}
	})
	if seedsSet && *seeds == "" {
		return fmt.Errorf("-seeds needs at least one seed")
	}
	if parallelSet && *seeds == "" {
		return fmt.Errorf("-parallel only applies to multi-seed runs: pass -seeds as well")
	}
	if *seeds != "" && (*reqTrace != "" || *auditOut != "") {
		return fmt.Errorf("-trace and -audit produce single-run detail output: drop -seeds or the detail flags")
	}
	if *retryStorm && (*seeds != "" || *reqTrace != "" || *auditOut != "") {
		return fmt.Errorf("-retrystorm is a self-contained experiment: drop -seeds, -trace and -audit")
	}
	if *degradeArm && !*retryStorm {
		return fmt.Errorf("-degrade extends the retry-storm ladder: pass -retrystorm as well")
	}
	runner.SetDefaultWorkers(*parallel)

	stopProfile, err := startCPUProfile(*pprofOut)
	if err != nil {
		return err
	}
	defer stopProfile()

	// Retry-storm mode: the bundled metastable-failure experiment. It runs
	// its own fixed topology and degraded-server fault, so the scenario and
	// controller flags do not apply.
	if *retryStorm {
		stormCfg := experiments.RetryStormConfig{
			Seed: *seed, Timeout: *reqTimeout,
			Invariants: *invariants, Degrade: *degradeArm,
		}
		results, err := experiments.RunRetryStorm(stormCfg)
		if err != nil {
			return err
		}
		fmt.Printf("retry-storm ladder (seed %d): degraded Tomcat under closed-loop overload\n\n", *seed)
		fmt.Print(experiments.RenderRetryStorm(results))
		if *degradeArm {
			last := results[len(results)-1]
			fmt.Println()
			fmt.Print(experiments.RenderDegradeSummary(last))
		}
		if *invariants {
			bad := 0
			for _, r := range results {
				if len(r.InvariantViolations) > 0 {
					bad += len(r.InvariantViolations)
					fmt.Printf("invariant violations (%s):\n%s", r.Variant, invariant.Render(r.InvariantViolations))
				}
			}
			if bad > 0 {
				return fmt.Errorf("%d invariant violation(s)", bad)
			}
			fmt.Println("invariants: clean (0 violations)")
		}
		if *degradeArm {
			last := results[len(results)-1]
			if last.Degrade == nil || len(last.Degrade.Episodes) == 0 {
				return fmt.Errorf("self-healing rung detected no collapse")
			}
			if last.RecoveryRatio < 0.8 {
				return fmt.Errorf("self-healing rung recovered only %.0f%% of pre-fault goodput (want >= 80%%)",
					100*last.RecoveryRatio)
			}
		}
		return nil
	}

	resCfg, err := resilience.Preset(*resil, *reqTimeout)
	if err != nil {
		return err
	}

	if *list {
		for _, name := range chaos.BuiltinNames() {
			s, _ := chaos.Builtin(name)
			fmt.Printf("%-22s %d fault(s)\n", name, len(s.Faults))
			for _, f := range s.Faults {
				fmt.Printf("    %s\n", f)
			}
		}
		return nil
	}

	var sched chaos.Schedule
	if *scenarioFile != "" {
		sched, err = chaos.Load(*scenarioFile)
	} else {
		sched, err = chaos.Builtin(*scenarioName)
	}
	if err != nil {
		return err
	}

	cfg := experiments.ScenarioConfig{
		Seed:          *seed,
		Kind:          experiments.ControllerKind(*controllerName),
		ControlPeriod: *period,
		PrepDelay:     *prep,
		Chaos:         &sched,
		CaptureTrace:  *reqTrace != "",
		Audit:         *auditOut != "",
		Resilience:    resCfg,
		Invariants:    *invariants,
	}

	// Multi-seed mode: fan the seeds across the worker pool and print one
	// summary row per seed; the detailed single-run report below stays the
	// default for a lone seed.
	if *seeds != "" {
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			return err
		}
		results, err := runner.Map(seedList, 0, func(_ int, s uint64) (*experiments.ScenarioResult, error) {
			c := cfg
			c.Seed = s
			return experiments.RunScenario(c)
		})
		if err != nil {
			return err
		}
		fmt.Printf("controller %s under scenario %q, %d seeds\n\n", cfg.Kind, sched.Name, len(seedList))
		tb := metrics.NewTable("seed", "mean RT (s)", "max RT (s)", "spikes >1s", "completed", "errors", "recovered")
		for i, res := range results {
			sum := res.Summarize()
			recovered := "-"
			if res.Chaos != nil {
				n := 0
				for _, fr := range res.Chaos.Faults {
					if fr.Recovered {
						n++
					}
				}
				recovered = fmt.Sprintf("%d/%d", n, len(res.Chaos.Faults))
			}
			tb.AddRow(strconv.FormatUint(seedList[i], 10),
				fmt.Sprintf("%.3f", sum.MeanRTSec), fmt.Sprintf("%.3f", sum.MaxRTSec),
				strconv.Itoa(sum.SpikeSeconds), strconv.FormatUint(sum.TotalCompleted, 10),
				strconv.FormatUint(res.TotalErrors, 10), recovered)
		}
		fmt.Print(tb.String())
		if *invariants {
			return reportInvariants(results...)
		}
		return nil
	}

	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return err
	}

	if *reqTrace != "" {
		if err := writeRequestTrace(res, *reqTrace); err != nil {
			return err
		}
	}
	if *auditOut != "" {
		if err := writeAuditLog(res, *auditOut); err != nil {
			return err
		}
	}

	fmt.Printf("controller %s under scenario %q (seed %d)\n\n", cfg.Kind, sched.Name, *seed)
	fmt.Print(metrics.Chart("throughput (req/s)", res.Throughput, 100, 5))
	fmt.Print(metrics.Chart("mean response time (s)", res.MeanRTSec, 100, 5))
	fmt.Println()
	fmt.Println(experiments.RenderScenarioSeries(res, *every))

	fmt.Println("injections:")
	for _, inj := range res.Chaos.Injections {
		status := ""
		if inj.Skipped {
			status = "  SKIPPED"
		}
		fmt.Printf("  t=%6.0fs %-18s %-10s %s%s\n",
			inj.At.Seconds(), inj.Kind, inj.Target, inj.Detail, status)
	}
	fmt.Println()
	fmt.Println("scaling actions:")
	for _, rec := range res.Actions {
		status := ""
		if rec.Err != "" {
			status = "  ERROR: " + rec.Err
		}
		fmt.Printf("  t=%6.0fs %-14s %-4s [%s] %s%s\n",
			rec.At.Seconds(), rec.Action.Type, rec.Action.Tier, rec.Action.Code,
			rec.Action.Reason, status)
	}
	fmt.Println()
	fmt.Println(res.Chaos.Render())
	if disp := experiments.RenderDispositionSummary(res); disp != "" {
		fmt.Println("request dispositions:")
		fmt.Println(disp)
	}
	if *invariants {
		return reportInvariants(res)
	}
	return nil
}

// reportInvariants prints the invariant-checker verdict for each result
// and returns an error if any run recorded structural-law violations.
func reportInvariants(results ...*experiments.ScenarioResult) error {
	bad := 0
	for _, r := range results {
		if len(r.InvariantViolations) > 0 {
			bad += len(r.InvariantViolations)
			fmt.Printf("invariant violations (%s):\n%s", r.Kind, invariant.Render(r.InvariantViolations))
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d invariant violation(s)", bad)
	}
	fmt.Println("invariants: clean (0 violations)")
	return nil
}

// startCPUProfile begins a CPU profile written to path and returns the
// stop function (a no-op for an empty path).
func startCPUProfile(path string) (func(), error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeRequestTrace exports the run's raw span events as JSONL and prints
// the per-tier latency breakdown reconstructed from them.
func writeRequestTrace(res *experiments.ScenarioResult, path string) error {
	rt := res.RequestTrace()
	if rt == nil {
		return fmt.Errorf("no request trace captured")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rt.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d trace events to %s (%d dropped)\n\n", rt.Len(), path, rt.Dropped())
	fmt.Print(trace.RenderBreakdown(res.LatencyBreakdown))
	fmt.Println()
	fmt.Println("per-tier histograms:")
	fmt.Print(experiments.RenderTierLatency(res))
	fmt.Println()
	return nil
}

// writeAuditLog exports the controller decision log as JSONL and prints
// its reason-code summary.
func writeAuditLog(res *experiments.ScenarioResult, path string) error {
	log := res.DecisionLog()
	if log == nil {
		return fmt.Errorf("controller does not support decision auditing")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := log.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d audited decisions to %s\n\n", log.Len(), path)
	fmt.Print(log.RenderSummary())
	fmt.Println()
	return nil
}
