// Command chaossim runs a §V-B scaling scenario under fault injection and
// prints the recovery report next to the usual Fig. 5-style series. Pick a
// bundled scenario with -scenario (see -list) or supply a JSON schedule
// with -file; the same seed always replays the same failure trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dcm/internal/chaos"
	"dcm/internal/experiments"
	"dcm/internal/metrics"
	"dcm/internal/runner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaossim:", err)
		os.Exit(1)
	}
}

// parseSeeds parses a comma-separated uint64 list.
func parseSeeds(s string) ([]uint64, error) {
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds in %q", s)
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaossim", flag.ContinueOnError)
	var (
		scenarioName   = fs.String("scenario", "tomcat-crash-midramp", "bundled scenario name (see -list)")
		scenarioFile   = fs.String("file", "", "JSON fault-schedule file (overrides -scenario)")
		controllerName = fs.String("controller", "dcm", "dcm | ec2-autoscale | target-tracking | dcm-predictive | ec2-predictive | dcm-soft-only | none")
		seed           = fs.Uint64("seed", 42, "random seed (same seed = same failure trace)")
		period         = fs.Duration("period", 15*time.Second, "control period")
		prep           = fs.Duration("prep", 15*time.Second, "VM preparation period")
		every          = fs.Int("every", 20, "print every N-th second of the series")
		list           = fs.Bool("list", false, "list bundled scenarios and exit")
		seeds          = fs.String("seeds", "", "comma-separated seed list; runs every seed concurrently and prints a summary table (overrides -seed)")
		parallel       = fs.Int("parallel", 0, "worker goroutines for multi-seed runs (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner.SetDefaultWorkers(*parallel)

	if *list {
		for _, name := range chaos.BuiltinNames() {
			s, _ := chaos.Builtin(name)
			fmt.Printf("%-22s %d fault(s)\n", name, len(s.Faults))
			for _, f := range s.Faults {
				fmt.Printf("    %s\n", f)
			}
		}
		return nil
	}

	var (
		sched chaos.Schedule
		err   error
	)
	if *scenarioFile != "" {
		sched, err = chaos.Load(*scenarioFile)
	} else {
		sched, err = chaos.Builtin(*scenarioName)
	}
	if err != nil {
		return err
	}

	cfg := experiments.ScenarioConfig{
		Seed:          *seed,
		Kind:          experiments.ControllerKind(*controllerName),
		ControlPeriod: *period,
		PrepDelay:     *prep,
		Chaos:         &sched,
	}

	// Multi-seed mode: fan the seeds across the worker pool and print one
	// summary row per seed; the detailed single-run report below stays the
	// default for a lone seed.
	if *seeds != "" {
		seedList, err := parseSeeds(*seeds)
		if err != nil {
			return err
		}
		results, err := runner.Map(seedList, 0, func(_ int, s uint64) (*experiments.ScenarioResult, error) {
			c := cfg
			c.Seed = s
			return experiments.RunScenario(c)
		})
		if err != nil {
			return err
		}
		fmt.Printf("controller %s under scenario %q, %d seeds\n\n", cfg.Kind, sched.Name, len(seedList))
		tb := metrics.NewTable("seed", "mean RT (s)", "max RT (s)", "spikes >1s", "completed", "errors", "recovered")
		for i, res := range results {
			sum := res.Summarize()
			recovered := "-"
			if res.Chaos != nil {
				n := 0
				for _, fr := range res.Chaos.Faults {
					if fr.Recovered {
						n++
					}
				}
				recovered = fmt.Sprintf("%d/%d", n, len(res.Chaos.Faults))
			}
			tb.AddRow(strconv.FormatUint(seedList[i], 10),
				fmt.Sprintf("%.3f", sum.MeanRTSec), fmt.Sprintf("%.3f", sum.MaxRTSec),
				strconv.Itoa(sum.SpikeSeconds), strconv.FormatUint(sum.TotalCompleted, 10),
				strconv.FormatUint(res.TotalErrors, 10), recovered)
		}
		fmt.Print(tb.String())
		return nil
	}

	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("controller %s under scenario %q (seed %d)\n\n", cfg.Kind, sched.Name, *seed)
	fmt.Print(metrics.Chart("throughput (req/s)", res.Throughput, 100, 5))
	fmt.Print(metrics.Chart("mean response time (s)", res.MeanRTSec, 100, 5))
	fmt.Println()
	fmt.Println(experiments.RenderScenarioSeries(res, *every))

	fmt.Println("injections:")
	for _, inj := range res.Chaos.Injections {
		status := ""
		if inj.Skipped {
			status = "  SKIPPED"
		}
		fmt.Printf("  t=%6.0fs %-18s %-10s %s%s\n",
			inj.At.Seconds(), inj.Kind, inj.Target, inj.Detail, status)
	}
	fmt.Println()
	fmt.Println("scaling actions:")
	for _, rec := range res.Actions {
		status := ""
		if rec.Err != "" {
			status = "  ERROR: " + rec.Err
		}
		fmt.Printf("  t=%6.0fs %-14s %-4s %s%s\n",
			rec.At.Seconds(), rec.Action.Type, rec.Action.Tier, rec.Action.Reason, status)
	}
	fmt.Println()
	fmt.Println(res.Chaos.Render())
	return nil
}
