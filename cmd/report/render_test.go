package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dcm/internal/autotune"
	"dcm/internal/bench"
	"dcm/internal/degrade"
	"dcm/internal/experiments"
	"dcm/internal/policy"
	"dcm/internal/resilience"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>.golden, rewriting the file
// under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/report -run %s -update` to regenerate)", err, t.Name())
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file %s.\ngot:\n%s\nwant:\n%s", t.Name(), path, got, want)
	}
}

// fig5Results runs the two Fig. 5 scenarios once (seed 42, audit and
// trace capture on — the same configuration cmd/report uses) and caches
// them for every golden test in the package.
var fig5Results = sync.OnceValues(func() ([]*experiments.ScenarioResult, error) {
	var results []*experiments.ScenarioResult
	for _, kind := range []experiments.ControllerKind{
		experiments.ControllerDCM,
		experiments.ControllerEC2,
	} {
		res, err := experiments.RunScenario(experiments.ScenarioConfig{
			Seed: 42, Kind: kind, CaptureTrace: true, Audit: true,
		})
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
})

func TestFig5SectionGolden(t *testing.T) {
	results, err := fig5Results()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig5-section", fig5Section(results...))
}

func TestScenarioDetailSectionGolden(t *testing.T) {
	results, err := fig5Results()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		golden(t, "detail-"+string(res.Kind), scenarioDetailSection(res))
	}
}

func TestAuditSectionGolden(t *testing.T) {
	results, err := fig5Results()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.DecisionLog() == nil {
			t.Fatalf("%s scenario captured no audit log", res.Kind)
		}
		golden(t, "audit-"+string(res.Kind), auditSection(res))
	}
	// Without an audit log the section disappears entirely.
	plain, err := experiments.RunScenario(experiments.ScenarioConfig{Seed: 42, Kind: experiments.ControllerDCM})
	if err != nil {
		t.Fatal(err)
	}
	if got := auditSection(plain); got != "" {
		t.Fatalf("auditSection without a log = %q, want empty", got)
	}
}

// TestAutotuneSectionGolden renders a fixture Pareto report (no search
// run — the section renderer is a pure function of the report) and also
// covers the loader's round trip and its unknown-field rejection.
func TestAutotuneSectionGolden(t *testing.T) {
	rules := policy.Default()
	rules.Name = "autotune:dcm:headroom=1.2,upperCPU=0.75"
	rep := &autotune.Report{
		Portfolio: []autotune.Scenario{{Name: "steady", SLOSec: 0.5, Seed: 42}},
		Budget:    4, Seeds: 1, Rounds: 1, Seed: 1,
		Controllers: []autotune.ControllerReport{{
			Controller: "dcm",
			Tunables: []autotune.Tunable{
				{Knob: "upperCPU", Min: 0.6, Max: 0.9, Steps: 3},
				{Knob: "headroom", Min: 0.8, Max: 1.6, Steps: 2},
			},
			Evaluated: 4,
			Frontier: []autotune.Point{{
				Candidate: autotune.Candidate{
					Values: map[string]float64{"upperCPU": 0.75, "headroom": 1.2},
					Rules:  rules,
				},
				Attainment:  0.875,
				ServerHours: 0.25,
			}},
		}},
	}
	golden(t, "autotune-section", autotuneSection(rep))

	// The loader round-trips the marshaled report...
	path := filepath.Join(t.TempDir(), "pareto.json")
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadAutotuneReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if autotuneSection(loaded) != autotuneSection(rep) {
		t.Fatal("loaded report renders differently")
	}
	// ...and rejects files that are not autotune reports.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"notAReport": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadAutotuneReport(bad); err == nil {
		t.Fatal("non-report JSON accepted")
	}
	if _, err := loadAutotuneReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestBenchSectionGolden renders a fixture performance trajectory (the
// section is a pure function of the two suites — no benchmarks run).
func TestBenchSectionGolden(t *testing.T) {
	baseline := bench.Suite{Benchmarks: []bench.Result{
		{Name: "BenchmarkEngineScheduleFire", Iters: 22426521, NsPerOp: 96.13},
		{Name: "BenchmarkEngineScheduleFireMixed", Iters: 5934526, NsPerOp: 201.3},
		{Name: "BenchmarkEngineScheduleCancel", Iters: 12529615, NsPerOp: 185.0},
	}}
	current := bench.Suite{Benchmarks: []bench.Result{
		{Name: "BenchmarkEngineScheduleFire", Iters: 33398282, NsPerOp: 34.92},
		{Name: "BenchmarkEngineScheduleFireMixed", Iters: 15712684, NsPerOp: 66.48},
		{Name: "BenchmarkEngineScheduleCancel", Iters: 16381119, NsPerOp: 70.63},
		{Name: "BenchmarkDenseFaultSchedule", Iters: 1000, NsPerOp: 1.1e6},
	}}
	golden(t, "bench-section", benchSection(baseline, current, "BENCH_engine.baseline.json"))
}

// TestDegradationSectionGolden pins the Degradation section against the
// same default-calibrated runs cmd/report performs: the degrade rung of
// the retry-storm ladder and the flash crowd with the brownout armed.
func TestDegradationSectionGolden(t *testing.T) {
	storm, err := experiments.RunRetryStormVariant(
		experiments.RetryStormConfig{Seed: 42, Degrade: true},
		experiments.RetryStormDegradeVariant,
	)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := experiments.RunFlashCrowd(experiments.OpenLoopConfig{Seed: 42, Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "degradation-section", degradationSection(storm, &fc))

	// Without degrade reports the section disappears entirely.
	if got := degradationSection(experiments.RetryStormResult{}, &experiments.OpenLoopResult{}); got != "" {
		t.Fatalf("degradationSection without reports = %q, want empty", got)
	}
}

// TestDetectorStrip pins the strip's bucketing and precedence: brownout
// beats unhealthy beats healthy within a bucket, and long timelines
// downsample with the chart's bucket arithmetic.
func TestDetectorStrip(t *testing.T) {
	tl := []degrade.TimelinePoint{
		{}, {Unhealthy: true}, {Unhealthy: true, Brownout: true}, {Brownout: true}, {},
	}
	if got := detectorStrip(tl, 0); got != ".!BB." {
		t.Errorf("strip = %q, want .!BB.", got)
	}
	// Width 2: buckets [0,2) and [2,5); the second holds a brownout tick.
	if got := detectorStrip(tl, 2); got != "!B" {
		t.Errorf("downsampled strip = %q, want !B", got)
	}
	if got := detectorStrip(nil, 10); got != "" {
		t.Errorf("empty strip = %q, want empty", got)
	}
}

// TestTopologySectionGolden pins the service-graph section against the
// same deterministic run cmd/report performs (RenderGraph excludes wall
// time, so the section is stable for a fixed seed).
func TestTopologySectionGolden(t *testing.T) {
	res, err := experiments.RunGraph(experiments.GraphConfig{
		Seed:        42,
		Rate:        80,
		Horizon:     40 * time.Second,
		Chaos:       true,
		Controllers: true,
		Invariants:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantViolations) > 0 {
		t.Fatalf("graph run recorded %d invariant violation(s)", len(res.InvariantViolations))
	}
	golden(t, "topology-section", topologySection(res))
}

func TestResilienceSectionGolden(t *testing.T) {
	res, err := resilience.Preset("full", 0)
	if err != nil {
		t.Fatal(err)
	}
	var results []*experiments.ScenarioResult
	for _, kind := range []experiments.ControllerKind{
		experiments.ControllerDCM,
		experiments.ControllerEC2,
	} {
		r, err := experiments.RunScenario(experiments.ScenarioConfig{
			Seed: 42, Kind: kind, Resilience: res,
		})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	// A scaled-down ladder keeps the golden run fast while exercising the
	// same renderer as the full report.
	storm, err := experiments.RunRetryStorm(experiments.RetryStormConfig{
		Seed:       42,
		Users:      200,
		DegradeAt:  5 * time.Second,
		DegradeFor: 20 * time.Second,
		Horizon:    40 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "resilience-section", resilienceSection(results, storm))
}
