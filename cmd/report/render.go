// Report section renderers, split from run() so each section can be
// golden-file tested against deterministic small-scale runs: the renderers
// are pure functions of already-computed experiment results.

package main

import (
	"fmt"
	"strconv"
	"strings"

	"dcm/internal/autotune"
	"dcm/internal/bench"
	"dcm/internal/degrade"
	"dcm/internal/experiments"
	"dcm/internal/metrics"
	"dcm/internal/trace"
)

// fig5Section renders the Fig. 5 controller-comparison table.
func fig5Section(results ...*experiments.ScenarioResult) string {
	var b strings.Builder
	b.WriteString("## Figure 5: DCM vs EC2-AutoScale under the large-variation trace\n\n```\n")
	b.WriteString(experiments.RenderScenarioComparison(results...))
	b.WriteString("```\n\n")
	return b.String()
}

// scenarioDetailSection renders one scenario's response-time chart, its
// per-second CSV pointer, the per-tier latency breakdown and — when the
// run captured an audit log — the controller decision summary.
func scenarioDetailSection(res *experiments.ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s response time (s)\n\n```\n", res.Kind)
	b.WriteString(metrics.Chart("", res.MeanRTSec, 100, 6))
	b.WriteString("```\n\n")
	fmt.Fprintf(&b, "Per-second series: `fig5-%s.csv`.\n\n", res.Kind)
	fmt.Fprintf(&b, "### %s per-tier latency breakdown\n\n```\n", res.Kind)
	b.WriteString(trace.RenderBreakdown(res.LatencyBreakdown))
	b.WriteString("\n")
	b.WriteString(experiments.RenderTierLatency(res))
	b.WriteString("```\n\n")
	b.WriteString(auditSection(res))
	return b.String()
}

// auditSection renders the controller decision audit summary — the
// per-code tallies plus, for planner-equipped controllers, the clamp
// diagnostics (raw vs applied concurrency knobs whenever a floor or
// ceiling fired) — or nothing when the run did not capture a log.
func auditSection(res *experiments.ScenarioResult) string {
	log := res.DecisionLog()
	if log == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### %s controller decision audit\n\n```\n", res.Kind)
	b.WriteString(log.RenderSummary())
	if diag := log.RenderPlanDiag(); diag != "" {
		b.WriteString(diag)
	}
	b.WriteString("```\n\n")
	return b.String()
}

// autotuneSection renders a previously generated autotune Pareto report
// (see cmd/autotune) as a markdown section.
func autotuneSection(rep *autotune.Report) string {
	var b strings.Builder
	b.WriteString("## Policy autotuning: SLO attainment vs server-hours\n\n```\n")
	b.WriteString(autotune.RenderReport(rep))
	b.WriteString("```\n\n")
	b.WriteString("Each frontier row is a policy no other evaluated candidate beats on " +
		"both axes: attainment (fraction of run seconds within the SLO, discounted " +
		"by failed requests, averaged over the portfolio) and server-hours " +
		"(summed scalable-tier VM time). Regenerate with `cmd/autotune`.\n\n")
	return b.String()
}

// benchSection renders the performance trajectory: a fresh
// BENCH_engine.json (from `go test -bench` output via cmd/benchgate)
// compared benchmark-by-benchmark against the checked-in baseline.
func benchSection(baseline, current bench.Suite, baselinePath string) string {
	var b strings.Builder
	b.WriteString("## Performance trajectory: event-core benchmarks\n\n```\n")
	bench.Render(&b, bench.Compare(baseline, current, bench.DefaultTolerance))
	b.WriteString("```\n\n")
	fmt.Fprintf(&b, "Current run vs the checked-in baseline `%s`. CI gates the same "+
		"comparison (cmd/benchgate): more than %.0f%% ns/op regression or any "+
		"allocs/op growth on a baselined benchmark fails the bench job.\n\n",
		baselinePath, bench.DefaultTolerance*100)
	return b.String()
}

// detectorStrip renders the degrade supervisor's per-tick state as a
// one-line strip using the same bucketing as metrics.Chart: each cell is
// 'B' if any tick in its bucket sat inside a brownout episode, '!' if any
// detector flagged without a brownout, and '.' when healthy.
func detectorStrip(tl []degrade.TimelinePoint, width int) string {
	if len(tl) == 0 {
		return ""
	}
	cells := len(tl)
	if width > 0 && cells > width {
		cells = width
	}
	var b strings.Builder
	for i := 0; i < cells; i++ {
		start := i * len(tl) / cells
		end := (i + 1) * len(tl) / cells
		if end <= start {
			end = start + 1
		}
		c := byte('.')
		for _, pt := range tl[start:end] {
			if pt.Brownout {
				c = 'B'
				break
			}
			if pt.Unhealthy {
				c = '!'
			}
		}
		b.WriteByte(c)
	}
	return b.String()
}

// degradationSection renders the self-healing overload-control evaluation:
// the degrade rung's detector timeline (goodput chart plus the per-tick
// detector/brownout strip), its episode and recovery summary, and the
// flash crowd's per-class brownout shed discrimination. Results without a
// degrade report contribute nothing.
func degradationSection(storm experiments.RetryStormResult, fc *experiments.OpenLoopResult) string {
	var b strings.Builder
	wrote := false
	if storm.Degrade != nil {
		wrote = true
		b.WriteString("## Degradation: self-healing overload control\n\n")
		b.WriteString("### Retry storm, degrade rung\n\n```\n")
		good := make([]float64, 0, len(storm.Degrade.Timeline))
		for _, pt := range storm.Degrade.Timeline {
			good = append(good, pt.GoodPS)
		}
		b.WriteString(metrics.Chart("goodput/s per detector tick", good, 100, 6))
		if strip := detectorStrip(storm.Degrade.Timeline, 100); strip != "" {
			fmt.Fprintf(&b, "state: %s\n", strip)
			b.WriteString("       (. healthy  ! detector flagged  B brownout episode)\n")
		}
		b.WriteString("\n")
		b.WriteString(experiments.RenderDegradeSummary(storm))
		b.WriteString("```\n\n")
		b.WriteString("The detectors ride lifetime counters only (goodput-collapse ratio, " +
			"retry amplification, queue-delay gradient); hysteresis holds each " +
			"brownout for the configured dwell before restoring, and the recovery " +
			"criterion is tail goodput at >= 80% of the pre-fault steady state.\n\n")
	}
	if fc != nil && fc.Degrade != nil {
		if !wrote {
			b.WriteString("## Degradation: self-healing overload control\n\n")
		}
		wrote = true
		b.WriteString("### Flash crowd: brownout class discrimination\n\n```\n")
		tb := metrics.NewTable("class", "priority", "injected", "completed", "good", "brownout-shed")
		for _, c := range fc.Classes {
			tb.AddRow(c.Name, strconv.Itoa(c.Priority),
				strconv.FormatUint(c.Injected, 10),
				strconv.FormatUint(c.Completions, 10),
				strconv.FormatUint(c.Good, 10),
				strconv.FormatUint(c.BrownoutShed, 10))
		}
		b.WriteString(tb.String())
		b.WriteString("\n")
		fmt.Fprintf(&b, "detector: %d ticks, %d unhealthy, %d brownout episode(s)\n",
			fc.Degrade.Ticks, fc.Degrade.UnhealthyTicks, len(fc.Degrade.Episodes))
		for _, ep := range fc.Degrade.Episodes {
			exit := "open at horizon"
			if ep.ExitAt > 0 {
				exit = fmt.Sprintf("exit t=%v", ep.ExitAt)
			}
			fmt.Fprintf(&b, "          enter t=%v  %s  (%s)\n", ep.EnterAt, exit, ep.Reason)
		}
		b.WriteString("```\n\n")
		b.WriteString("Brownout sheds are priority-aware: only Priority 0 (best-effort) " +
			"classes are dropped at the front door, so the premium class rides " +
			"through the crowd untouched while the basic class absorbs the " +
			"degradation.\n\n")
	}
	return b.String()
}

// topologySection renders the service-graph topology run: the fanout5
// DAG under bursty arrivals with chaos and the per-node DCM controllers
// armed, summarized by the per-node visit ledger. RenderGraph is
// deterministic for a fixed seed (wall time is JSON-only), so the section
// goldens cleanly.
func topologySection(res experiments.GraphResult) string {
	var b strings.Builder
	b.WriteString("## Service graph: DCM on a DAG topology\n\n```\n")
	b.WriteString(experiments.RenderGraph(res))
	b.WriteString("```\n\n")
	b.WriteString("The 5-node fan-out app (gateway -> search/catalog -> shared DB, plus an " +
		"async audit sink) rides a flash-crowd arrival curve while one replica " +
		"is crashed mid-run and later replaced; the per-node controllers steer " +
		"each armed tier's thread pool to its Equation 7 optimum. Other " +
		"topologies live in `topologies/` and run via " +
		"`sweep -experiment graph -topology <file>`.\n\n")
	return b.String()
}

// resilienceSection renders the data-plane resilience evaluation: the
// Fig. 5 scenario per controller under the "full" preset with the request
// disposition taxonomy, and the retry-storm ladder showing goodput
// recovery under a degraded-server fault.
func resilienceSection(results []*experiments.ScenarioResult, storm []experiments.RetryStormResult) string {
	var b strings.Builder
	b.WriteString("## Resilience\n\n")
	b.WriteString("### Request dispositions under the \"full\" preset (large-variation trace)\n\n```\n")
	b.WriteString(experiments.RenderScenarioComparison(results...))
	b.WriteString(experiments.RenderDispositionSummary(results...))
	b.WriteString("```\n\n")
	b.WriteString("### Retry-storm ladder under a degraded Tomcat\n\n```\n")
	b.WriteString(experiments.RenderRetryStorm(storm))
	b.WriteString("```\n\n")
	b.WriteString("Goodput climbs the ladder: no resilience traps the closed-loop users " +
		"behind the degraded server, retries alone free them but amplify load " +
		"(the storm), and breakers plus admission control restore goodput by " +
		"routing around the sick server and shedding standing-queue delay.\n\n")
	return b.String()
}
