// Report section renderers, split from run() so each section can be
// golden-file tested against deterministic small-scale runs: the renderers
// are pure functions of already-computed experiment results.

package main

import (
	"fmt"
	"strings"

	"dcm/internal/autotune"
	"dcm/internal/bench"
	"dcm/internal/experiments"
	"dcm/internal/metrics"
	"dcm/internal/trace"
)

// fig5Section renders the Fig. 5 controller-comparison table.
func fig5Section(results ...*experiments.ScenarioResult) string {
	var b strings.Builder
	b.WriteString("## Figure 5: DCM vs EC2-AutoScale under the large-variation trace\n\n```\n")
	b.WriteString(experiments.RenderScenarioComparison(results...))
	b.WriteString("```\n\n")
	return b.String()
}

// scenarioDetailSection renders one scenario's response-time chart, its
// per-second CSV pointer, the per-tier latency breakdown and — when the
// run captured an audit log — the controller decision summary.
func scenarioDetailSection(res *experiments.ScenarioResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s response time (s)\n\n```\n", res.Kind)
	b.WriteString(metrics.Chart("", res.MeanRTSec, 100, 6))
	b.WriteString("```\n\n")
	fmt.Fprintf(&b, "Per-second series: `fig5-%s.csv`.\n\n", res.Kind)
	fmt.Fprintf(&b, "### %s per-tier latency breakdown\n\n```\n", res.Kind)
	b.WriteString(trace.RenderBreakdown(res.LatencyBreakdown))
	b.WriteString("\n")
	b.WriteString(experiments.RenderTierLatency(res))
	b.WriteString("```\n\n")
	b.WriteString(auditSection(res))
	return b.String()
}

// auditSection renders the controller decision audit summary — the
// per-code tallies plus, for planner-equipped controllers, the clamp
// diagnostics (raw vs applied concurrency knobs whenever a floor or
// ceiling fired) — or nothing when the run did not capture a log.
func auditSection(res *experiments.ScenarioResult) string {
	log := res.DecisionLog()
	if log == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "### %s controller decision audit\n\n```\n", res.Kind)
	b.WriteString(log.RenderSummary())
	if diag := log.RenderPlanDiag(); diag != "" {
		b.WriteString(diag)
	}
	b.WriteString("```\n\n")
	return b.String()
}

// autotuneSection renders a previously generated autotune Pareto report
// (see cmd/autotune) as a markdown section.
func autotuneSection(rep *autotune.Report) string {
	var b strings.Builder
	b.WriteString("## Policy autotuning: SLO attainment vs server-hours\n\n```\n")
	b.WriteString(autotune.RenderReport(rep))
	b.WriteString("```\n\n")
	b.WriteString("Each frontier row is a policy no other evaluated candidate beats on " +
		"both axes: attainment (fraction of run seconds within the SLO, discounted " +
		"by failed requests, averaged over the portfolio) and server-hours " +
		"(summed scalable-tier VM time). Regenerate with `cmd/autotune`.\n\n")
	return b.String()
}

// benchSection renders the performance trajectory: a fresh
// BENCH_engine.json (from `go test -bench` output via cmd/benchgate)
// compared benchmark-by-benchmark against the checked-in baseline.
func benchSection(baseline, current bench.Suite, baselinePath string) string {
	var b strings.Builder
	b.WriteString("## Performance trajectory: event-core benchmarks\n\n```\n")
	bench.Render(&b, bench.Compare(baseline, current, bench.DefaultTolerance))
	b.WriteString("```\n\n")
	fmt.Fprintf(&b, "Current run vs the checked-in baseline `%s`. CI gates the same "+
		"comparison (cmd/benchgate): more than %.0f%% ns/op regression or any "+
		"allocs/op growth on a baselined benchmark fails the bench job.\n\n",
		baselinePath, bench.DefaultTolerance*100)
	return b.String()
}

// resilienceSection renders the data-plane resilience evaluation: the
// Fig. 5 scenario per controller under the "full" preset with the request
// disposition taxonomy, and the retry-storm ladder showing goodput
// recovery under a degraded-server fault.
func resilienceSection(results []*experiments.ScenarioResult, storm []experiments.RetryStormResult) string {
	var b strings.Builder
	b.WriteString("## Resilience\n\n")
	b.WriteString("### Request dispositions under the \"full\" preset (large-variation trace)\n\n```\n")
	b.WriteString(experiments.RenderScenarioComparison(results...))
	b.WriteString(experiments.RenderDispositionSummary(results...))
	b.WriteString("```\n\n")
	b.WriteString("### Retry-storm ladder under a degraded Tomcat\n\n```\n")
	b.WriteString(experiments.RenderRetryStorm(storm))
	b.WriteString("```\n\n")
	b.WriteString("Goodput climbs the ladder: no resilience traps the closed-loop users " +
		"behind the degraded server, retries alone free them but amplify load " +
		"(the storm), and breakers plus admission control restore goodput by " +
		"routing around the sick server and shedding standing-queue delay.\n\n")
	return b.String()
}
