// Command report regenerates the paper's complete evaluation in one shot:
// it runs every experiment (Fig. 2, Table I, Fig. 4, Fig. 5) and writes a
// self-contained markdown report plus per-scenario CSV series into a
// directory.
//
//	report -o out/            # full evaluation (~10 s)
//	report -o out/ -quick     # shorter measurement windows (~3 s)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dcm/internal/autotune"
	"dcm/internal/bench"
	"dcm/internal/experiments"
	"dcm/internal/resilience"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

// appendAblations runs A1–A8 and appends their tables to the report.
func appendAblations(b *strings.Builder, seed uint64) error {
	b.WriteString("## Ablations\n\n")

	a1, err := experiments.AblationSoftOnly(seed)
	if err != nil {
		return err
	}
	b.WriteString("### A1: two-level DCM vs each level alone\n\n```\n")
	b.WriteString(experiments.RenderScenarioComparison(a1...))
	b.WriteString("```\n\n")

	a2, err := experiments.AblationModelSensitivity(seed)
	if err != nil {
		return err
	}
	b.WriteString("### A2: model misestimation\n\n```\n")
	b.WriteString(experiments.RenderSensitivity(a2))
	b.WriteString("```\n\n")

	a3, err := experiments.AblationScalePolicy(seed)
	if err != nil {
		return err
	}
	b.WriteString("### A3: scale-in policy\n\n```\n")
	b.WriteString(experiments.RenderPolicyRows(a3))
	b.WriteString("```\n\n")

	a4, err := experiments.AblationControlPeriod(seed)
	if err != nil {
		return err
	}
	b.WriteString("### A4: control period\n\n```\n")
	b.WriteString(experiments.RenderPolicyRows(a4))
	b.WriteString("```\n\n")

	a5, err := experiments.AblationOnlineTraining(seed)
	if err != nil {
		return err
	}
	b.WriteString("### A5: online model re-training\n\n```\n")
	b.WriteString(experiments.RenderSensitivity(a5))
	b.WriteString("```\n\n")

	a6, err := experiments.AblationPredictive(seed)
	if err != nil {
		return err
	}
	b.WriteString("### A6: reactive vs predictive scale-out\n\n```\n")
	b.WriteString(experiments.RenderScenarioComparison(a6...))
	b.WriteString("```\n\n")

	a7, err := experiments.AblationBaselines(seed)
	if err != nil {
		return err
	}
	b.WriteString("### A7: hardware-only baseline ladder\n\n```\n")
	b.WriteString(experiments.RenderScenarioComparison(a7...))
	b.WriteString("```\n\n")

	a8, err := experiments.AblationBurstyWorkload(seed)
	if err != nil {
		return err
	}
	b.WriteString("### A8: Markov-modulated burstiness injection\n\n```\n")
	b.WriteString(experiments.RenderScenarioComparison(a8...))
	b.WriteString("```\n\n")
	return nil
}

// appendResilience runs the data-plane resilience evaluation: the Fig. 5
// scenario per controller under the "full" preset with the request
// disposition taxonomy (timed-out / rejected / shed / retries per
// success), and the retry-storm ladder showing goodput recovery under a
// degraded-server fault.
func appendResilience(b *strings.Builder, seed uint64) error {
	res, err := resilience.Preset("full", 0)
	if err != nil {
		return err
	}
	var results []*experiments.ScenarioResult
	for _, kind := range []experiments.ControllerKind{
		experiments.ControllerDCM,
		experiments.ControllerEC2,
	} {
		r, err := experiments.RunScenario(experiments.ScenarioConfig{
			Seed: seed, Kind: kind, Resilience: res,
		})
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	storm, err := experiments.RunRetryStorm(experiments.RetryStormConfig{Seed: seed})
	if err != nil {
		return err
	}
	b.WriteString(resilienceSection(results, storm))
	return nil
}

// appendDegradation runs the self-healing overload-control evaluation:
// the degrade rung of the retry-storm ladder (default calibrated knobs)
// and the flash crowd with the brownout layer armed, rendered as the
// Degradation section.
func appendDegradation(b *strings.Builder, seed uint64) error {
	storm, err := experiments.RunRetryStormVariant(
		experiments.RetryStormConfig{Seed: seed, Degrade: true},
		experiments.RetryStormDegradeVariant,
	)
	if err != nil {
		return err
	}
	fc, err := experiments.RunFlashCrowd(experiments.OpenLoopConfig{Seed: seed, Degrade: true})
	if err != nil {
		return err
	}
	b.WriteString(degradationSection(storm, &fc))
	return nil
}

// appendTopology runs the service-graph experiment — the built-in fanout5
// DAG with chaos, per-node controllers and invariants armed — and appends
// the topology section.
func appendTopology(b *strings.Builder, seed uint64) error {
	res, err := experiments.RunGraph(experiments.GraphConfig{
		Seed:        seed,
		Rate:        80,
		Horizon:     40 * time.Second,
		Chaos:       true,
		Controllers: true,
		Invariants:  true,
	})
	if err != nil {
		return err
	}
	if len(res.InvariantViolations) > 0 {
		return fmt.Errorf("graph run recorded %d invariant violation(s)",
			len(res.InvariantViolations))
	}
	b.WriteString(topologySection(res))
	return nil
}

// loadAutotuneReport reads a cmd/autotune JSON report, rejecting files
// that do not match the report schema.
func loadAutotuneReport(path string) (*autotune.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep autotune.Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("autotune report %s: %w", path, err)
	}
	return &rep, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		outDir     = fs.String("o", "report-out", "output directory")
		seed       = fs.Uint64("seed", 42, "random seed")
		quick      = fs.Bool("quick", false, "shorter measurement windows")
		full       = fs.Bool("full", false, "also run the A1-A8 ablations")
		autotuneIn = fs.String("autotune", "", "render this cmd/autotune JSON report as a Pareto section")
		benchIn    = fs.String("bench", "", "render this BENCH_engine.json as a performance-trajectory section")
		benchBase  = fs.String("bench-baseline", "BENCH_engine.baseline.json", "baseline for the -bench trajectory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	measure := 20 * time.Second
	train := 15 * time.Second
	if *quick {
		measure = 6 * time.Second
		train = 6 * time.Second
	}

	var b strings.Builder
	b.WriteString("# DCM reproduction report\n\n")
	fmt.Fprintf(&b, "Seed %d. Generated by `cmd/report`.\n\n", *seed)

	fmt.Println("running Fig. 2(a)...")
	fig2a, err := experiments.Fig2aMySQLSweep(*seed, nil, measure)
	if err != nil {
		return err
	}
	b.WriteString("## Figure 2(a): MySQL throughput vs concurrency\n\n```\n")
	b.WriteString(experiments.RenderFig2a(fig2a))
	b.WriteString("```\n\n")

	fmt.Println("running Fig. 2(b)...")
	fig2b, err := experiments.Fig2bScaleOut(*seed, 3000, measure*3)
	if err != nil {
		return err
	}
	b.WriteString("## Figure 2(b): runtime scale-out without soft-resource adaptation\n\n```\n")
	b.WriteString(experiments.RenderFig2b(fig2b))
	b.WriteString("```\n\n")

	fmt.Println("running Table I training...")
	tomcat, mysql, err := experiments.Table1(*seed, train)
	if err != nil {
		return err
	}
	b.WriteString("## Table I: model training\n\n```\n")
	b.WriteString(experiments.RenderTable1(tomcat, mysql))
	b.WriteString("```\n\n")

	fmt.Println("running Fig. 4(a)...")
	rows4a, allocs4a, err := experiments.Fig4a(*seed, nil, measure)
	if err != nil {
		return err
	}
	b.WriteString("## Figure 4(a): Tomcat model validation (1/1/1)\n\n```\n")
	b.WriteString(experiments.RenderFig4(rows4a, allocs4a))
	b.WriteString("```\n\n")

	fmt.Println("running Fig. 4(b)...")
	rows4b, allocs4b, err := experiments.Fig4b(*seed, nil, measure)
	if err != nil {
		return err
	}
	b.WriteString("## Figure 4(b): MySQL model validation (1/2/1)\n\n```\n")
	b.WriteString(experiments.RenderFig4(rows4b, allocs4b))
	b.WriteString("```\n\n")

	fmt.Println("running Fig. 5 scenarios...")
	var results []*experiments.ScenarioResult
	for _, kind := range []experiments.ControllerKind{
		experiments.ControllerDCM,
		experiments.ControllerEC2,
	} {
		res, err := experiments.RunScenario(experiments.ScenarioConfig{
			Seed: *seed, Kind: kind, CaptureTrace: true, Audit: true,
		})
		if err != nil {
			return err
		}
		results = append(results, res)
		csvPath := filepath.Join(*outDir, fmt.Sprintf("fig5-%s.csv", kind))
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := res.WriteSeriesCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	b.WriteString(fig5Section(results...))
	for _, res := range results {
		b.WriteString(scenarioDetailSection(res))
	}

	fmt.Println("running resilience experiments...")
	if err := appendResilience(&b, *seed); err != nil {
		return err
	}

	fmt.Println("running degradation experiments...")
	if err := appendDegradation(&b, *seed); err != nil {
		return err
	}

	fmt.Println("running service-graph topology...")
	if err := appendTopology(&b, *seed); err != nil {
		return err
	}

	if *full {
		fmt.Println("running ablations...")
		if err := appendAblations(&b, *seed); err != nil {
			return err
		}
	}

	if *autotuneIn != "" {
		rep, err := loadAutotuneReport(*autotuneIn)
		if err != nil {
			return err
		}
		b.WriteString(autotuneSection(rep))
	}

	if *benchIn != "" {
		current, err := bench.Load(*benchIn)
		if err != nil {
			return err
		}
		baseline, err := bench.Load(*benchBase)
		if err != nil {
			return err
		}
		b.WriteString(benchSection(baseline, current, *benchBase))
	}

	path := filepath.Join(*outDir, "report.md")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (and per-scenario CSVs) to %s\n", path, *outDir)
	return nil
}
