package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickReport(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-o", dir, "-quick", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{
		"Figure 2(a)", "Figure 2(b)", "Table I", "Figure 4(a)",
		"Figure 4(b)", "Figure 5", "N_b", "Service graph",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, csv := range []string{"fig5-dcm.csv", "fig5-ec2-autoscale.csv"} {
		st, err := os.Stat(filepath.Join(dir, csv))
		if err != nil || st.Size() == 0 {
			t.Errorf("missing %s: %v", csv, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	t.Parallel()
	if err := run([]string{"-bad-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-o", "/dev/null/impossible"}); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}

func TestRunFullReportIncludesAblations(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-o", dir, "-quick", "-full", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{"A1:", "A4:", "A5:", "A8:"} {
		if !strings.Contains(report, want) {
			t.Errorf("full report missing %q", want)
		}
	}
}
