package dcm_test

import (
	"fmt"

	"dcm"
	"dcm/internal/model"
)

// ExampleTableI shows the paper's published model parameters and their
// closed-form optima.
func ExampleTableI() {
	tomcat, mysql := dcm.TableI()
	tN, _ := tomcat.OptimalConcurrencyInt()
	mN, _ := mysql.OptimalConcurrencyInt()
	fmt.Println("Tomcat N_b:", tN)
	fmt.Println("MySQL  N_b:", mN)
	// Output:
	// Tomcat N_b: 20
	// MySQL  N_b: 36
}

// ExamplePlanAllocation derives the soft-resource plan the APP-agent
// applies after a scale-out: with two Tomcats, each gets half of MySQL's
// optimal concurrency — Fig. 4(b)'s 1000/20/18 split.
func ExamplePlanAllocation() {
	tomcat, mysql := dcm.TableI()
	alloc, err := dcm.PlanAllocation(model.AllocationInput{
		Tomcat:     tomcat,
		MySQL:      mysql,
		WebServers: 1,
		AppServers: 2,
		DBServers:  1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(alloc)
	// Output:
	// 1000/20/18
}

// ExampleTrain fits the concurrency-aware model (Equation 7) to measured
// (concurrency, throughput) pairs, as §V-A does.
func ExampleTrain() {
	tomcat, _ := dcm.TableI()
	var obs []dcm.Observation
	for _, n := range []float64{1, 3, 8, 20, 50, 120, 200} {
		obs = append(obs, dcm.Observation{
			Concurrency: n,
			Throughput:  tomcat.Throughput(n, 1),
		})
	}
	res, err := dcm.Train(obs, model.TrainOptions{KnownS0: tomcat.S0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("N_b:", res.OptimalN)
	fmt.Printf("R^2: %.2f\n", res.RSquared)
	// Output:
	// N_b: 20
	// R^2: 1.00
}

// ExampleLargeVariationTrace synthesizes the §V-B workload trace.
func ExampleLargeVariationTrace() {
	tr := dcm.LargeVariationTrace(42)
	fmt.Println("duration:", tr.Duration())
	fmt.Println("bursty:", tr.MaxUsers() > 3*tr.UsersAt(0))
	// Output:
	// duration: 10m0s
	// bursty: true
}

// ExampleRunScenario runs a complete DCM scenario against a bursty trace
// and summarizes its stability.
func ExampleRunScenario() {
	res, err := dcm.RunScenario(dcm.ScenarioConfig{
		Seed:  42,
		Kind:  dcm.ControllerDCM,
		Trace: dcm.LargeVariationTrace(42).Scale(0.5),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	s := res.Summarize()
	fmt.Println("spike seconds (> 1s RT):", s.SpikeSeconds)
	fmt.Println("errors:", res.TotalErrors)
	// Output:
	// spike seconds (> 1s RT): 0
	// errors: 0
}

// ExampleParams_ServiceTime evaluates Equation 5 directly.
func ExampleParams_ServiceTime() {
	p := dcm.Params{S0: 0.010, Alpha: 0.001, Beta: 1e-5, Gamma: 1}
	fmt.Printf("S*(1)  = %.1f ms\n", p.ServiceTime(1)*1000)
	fmt.Printf("S*(50) = %.1f ms\n", p.ServiceTime(50)*1000)
	nb, _ := p.OptimalConcurrencyInt()
	fmt.Println("N_b    =", nb)
	// Output:
	// S*(1)  = 10.0 ms
	// S*(50) = 83.5 ms
	// N_b    = 30
}
