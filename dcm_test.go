package dcm

import (
	"testing"
	"time"

	"dcm/internal/model"
)

func TestTableIFacade(t *testing.T) {
	t.Parallel()
	tomcat, mysql := TableI()
	if nb, ok := tomcat.OptimalConcurrencyInt(); !ok || nb != 20 {
		t.Fatalf("tomcat N_b = %d", nb)
	}
	if nb, ok := mysql.OptimalConcurrencyInt(); !ok || nb != 36 {
		t.Fatalf("mysql N_b = %d", nb)
	}
}

func TestPlanAllocationFacade(t *testing.T) {
	t.Parallel()
	tomcat, mysql := TableI()
	alloc, err := PlanAllocation(model.AllocationInput{
		Tomcat: tomcat, MySQL: mysql,
		WebServers: 1, AppServers: 2, DBServers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.String() != "1000/20/18" {
		t.Fatalf("allocation = %s", alloc)
	}
}

func TestTrainFacade(t *testing.T) {
	t.Parallel()
	tomcat, _ := TableI()
	var obs []Observation
	for _, n := range []float64{1, 5, 10, 20, 40, 80, 160} {
		obs = append(obs, Observation{Concurrency: n, Throughput: tomcat.Throughput(n, 1)})
	}
	res, err := Train(obs, model.TrainOptions{KnownS0: tomcat.S0})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalN != 20 {
		t.Fatalf("N_b = %d", res.OptimalN)
	}
}

func TestDefaultAppConfigUsable(t *testing.T) {
	t.Parallel()
	cfg := DefaultAppConfig()
	if cfg.AppThreads != 100 || cfg.DBConnsPerApp != 80 || cfg.WebThreads != 1000 {
		t.Fatalf("default allocation = %d/%d/%d", cfg.WebThreads, cfg.AppThreads, cfg.DBConnsPerApp)
	}
}

func TestLargeVariationTraceFacade(t *testing.T) {
	t.Parallel()
	tr := LargeVariationTrace(1)
	if tr.Duration() != 600*time.Second {
		t.Fatalf("duration = %v", tr.Duration())
	}
}

// TestRunScenarioFacade is the facade-level end-to-end check: the public
// entry point runs a complete DCM scenario.
func TestRunScenarioFacade(t *testing.T) {
	t.Parallel()
	tr := LargeVariationTrace(2).Scale(0.5)
	res, err := RunScenario(ScenarioConfig{Seed: 2, Kind: ControllerDCM, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCompleted == 0 {
		t.Fatal("no requests completed")
	}
	if res.Summarize().SpikeSeconds > 5 {
		t.Fatalf("DCM run unstable: %d spike seconds", res.Summarize().SpikeSeconds)
	}
}

func TestDefaultPolicyFacade(t *testing.T) {
	t.Parallel()
	p := DefaultPolicy()
	if p.UpperCPU != 0.80 || p.LowerCPU != 0.40 || p.LowerConsecutive != 3 {
		t.Fatalf("policy = %+v", p)
	}
}
