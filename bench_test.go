// Benchmarks regenerating every table and figure of the paper's evaluation
// (§II and §V), plus the ablations DESIGN.md calls out and micro-benchmarks
// of the hot substrate paths.
//
// Each experiment benchmark prints the rows/series the paper reports on its
// first iteration, so
//
//	go test -bench=. -benchmem ./...
//
// both measures the harness cost and emits the full reproduction report
// (captured in bench_output.txt).
package dcm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dcm/internal/experiments"
	"dcm/internal/metrics"
	"dcm/internal/ntier"
	"dcm/internal/rng"
	"dcm/internal/server"
	"dcm/internal/sim"
	"dcm/internal/workload"

	busPkg "dcm/internal/bus"
)

const benchSeed = 42

// printOnce guards each benchmark's report so -benchtime or reruns do not
// duplicate it.
var printOnce sync.Map

func report(key, body string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, body)
	}
}

// BenchmarkFig2aMySQLConcurrencySweep regenerates Fig. 2(a): MySQL
// throughput and latency versus request-processing concurrency 5..600.
// Expected shape: peak near N≈36–40, steep decline afterwards.
func BenchmarkFig2aMySQLConcurrencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2aMySQLSweep(benchSeed, nil, 20*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		report("Figure 2(a): MySQL throughput vs request processing concurrency",
			experiments.RenderFig2a(rows))
	}
}

// BenchmarkFig2bScaleOutDegradation regenerates Fig. 2(b): scaling the
// Tomcat tier 1/1/1 → 1/2/1 at runtime without soft-resource adaptation
// decreases throughput (the MySQL concurrency trap); the §II-B correction
// avoids it.
func BenchmarkFig2bScaleOutDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2bScaleOut(benchSeed, 3000, 60*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		report("Figure 2(b): scale-out without soft-resource adaptation",
			experiments.RenderFig2b(res))
	}
}

// BenchmarkTable1ModelTraining regenerates Table I: least-squares training
// of the concurrency-aware model for Tomcat (full-stack sweep at 1/1/1)
// and MySQL (direct stress), reporting parameters, R², N_b and X_max next
// to the paper's values.
func BenchmarkTable1ModelTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tomcat, mysql, err := experiments.Table1(benchSeed, 15*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		report("Table I: model training parameters and prediction result",
			experiments.RenderTable1(tomcat, mysql))
	}
}

// BenchmarkFig4aTomcatValidation regenerates Fig. 4(a): RUBBoS-client
// validation of the Tomcat model on 1/1/1 across five thread-pool
// allocations. Expected: 1000/20/80 (model optimum) achieves the highest
// plateau, ≈30% over the 1000/100/80 default.
func BenchmarkFig4aTomcatValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, allocs, err := experiments.Fig4a(benchSeed, nil, 20*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		report("Figure 4(a): model validation under 1/1/1 (throughput, req/s)",
			experiments.RenderFig4(rows, allocs))
	}
}

// BenchmarkFig4bMySQLValidation regenerates Fig. 4(b): validation of the
// MySQL model on 1/2/1 across five DB-connection-pool allocations.
// Expected: 1000/100/18 (each Tomcat gets half the MySQL optimum) wins;
// the 1000/100/80 default collapses.
func BenchmarkFig4bMySQLValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, allocs, err := experiments.Fig4b(benchSeed, nil, 20*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		report("Figure 4(b): model validation under 1/2/1 (throughput, req/s)",
			experiments.RenderFig4(rows, allocs))
	}
}

// fig5Results runs (once) the two §V-B scenarios shared by the Fig. 5
// benchmarks.
var (
	fig5Once sync.Once
	fig5DCM  *experiments.ScenarioResult
	fig5EC2  *experiments.ScenarioResult
	fig5Err  error
)

func fig5(b *testing.B) (*experiments.ScenarioResult, *experiments.ScenarioResult) {
	b.Helper()
	fig5Once.Do(func() {
		fig5DCM, fig5Err = experiments.RunScenario(experiments.ScenarioConfig{
			Seed: benchSeed, Kind: experiments.ControllerDCM,
		})
		if fig5Err != nil {
			return
		}
		fig5EC2, fig5Err = experiments.RunScenario(experiments.ScenarioConfig{
			Seed: benchSeed, Kind: experiments.ControllerEC2,
		})
	})
	if fig5Err != nil {
		b.Fatal(fig5Err)
	}
	return fig5DCM, fig5EC2
}

// BenchmarkFig5PerformanceComparison regenerates Fig. 5(a)(b): response
// time and throughput of DCM versus EC2-AutoScale under the
// large-variation bursty trace. Expected: DCM stays stable; EC2-AutoScale
// shows >1 s response-time spikes and throughput drops around its scaling
// activities.
func BenchmarkFig5PerformanceComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dcmRes, ec2Res := fig5(b)
		report("Figure 5(a)(b): DCM vs EC2-AutoScale under the large-variation trace",
			experiments.RenderScenarioComparison(dcmRes, ec2Res)+
				"\nDCM per-second series (every 20 s):\n"+
				experiments.RenderScenarioSeries(dcmRes, 20)+
				"\nEC2-AutoScale per-second series (every 20 s):\n"+
				experiments.RenderScenarioSeries(ec2Res, 20))
	}
}

// BenchmarkFig5TomcatScaling regenerates Fig. 5(c)(d): the Tomcat tier's
// server count and CPU utilization over time for both controllers.
func BenchmarkFig5TomcatScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dcmRes, ec2Res := fig5(b)
		report("Figure 5(c)(d): Tomcat tier scaling",
			renderTierSeries(dcmRes, ec2Res, ntier.TierApp))
	}
}

// BenchmarkFig5MySQLScaling regenerates Fig. 5(e)(f): the MySQL tier's
// server count and CPU utilization over time for both controllers.
func BenchmarkFig5MySQLScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dcmRes, ec2Res := fig5(b)
		report("Figure 5(e)(f): MySQL tier scaling",
			renderTierSeries(dcmRes, ec2Res, ntier.TierDB))
	}
}

// renderTierSeries prints one tier's count and CPU series for both runs.
func renderTierSeries(dcmRes, ec2Res *experiments.ScenarioResult, tier string) string {
	tb := metrics.NewTable("t(s)", "users",
		"DCM #", "DCM cpu", "EC2 #", "EC2 cpu")
	n := len(dcmRes.Seconds)
	if m := len(ec2Res.Seconds); m < n {
		n = m
	}
	for i := 0; i < n; i += 20 {
		tb.AddRow(
			fmt.Sprintf("%.0f", dcmRes.Seconds[i]),
			fmt.Sprintf("%d", dcmRes.Users[i]),
			fmt.Sprintf("%d", dcmRes.TierCounts[tier][i]),
			fmt.Sprintf("%.2f", dcmRes.TierCPU[tier][i]),
			fmt.Sprintf("%d", ec2Res.TierCounts[tier][i]),
			fmt.Sprintf("%.2f", ec2Res.TierCPU[tier][i]),
		)
	}
	return tb.String()
}

// BenchmarkAblationAppAgentOnly (A1): how much of DCM's stability comes
// from the APP-agent alone.
func BenchmarkAblationAppAgentOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.AblationSoftOnly(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report("Ablation A1: two-level DCM vs each level alone",
			experiments.RenderScenarioComparison(results...))
	}
}

// BenchmarkAblationModelSensitivity (A2): cost of a misestimated model.
func BenchmarkAblationModelSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationModelSensitivity(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report("Ablation A2: sensitivity to model misestimation",
			experiments.RenderSensitivity(rows))
	}
}

// BenchmarkAblationScalePolicy (A3): "quick start, slow turn off" versus a
// symmetric scale-in trigger.
func BenchmarkAblationScalePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationScalePolicy(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report("Ablation A3: scale-in policy", experiments.RenderPolicyRows(rows))
	}
}

// BenchmarkAblationOnlineTraining (A5): §III-C's online re-estimation
// recovering from a deliberately wrong model.
func BenchmarkAblationOnlineTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationOnlineTraining(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report("Ablation A5: online model re-training from a wrong model",
			experiments.RenderSensitivity(rows))
	}
}

// BenchmarkAblationPredictive (A6): reactive vs Holt-forecast scale-out.
func BenchmarkAblationPredictive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.AblationPredictive(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report("Ablation A6: reactive vs predictive scale-out",
			experiments.RenderScenarioComparison(results...))
	}
}

// BenchmarkAblationBaselines (A7): DCM vs the hardware-only baseline
// ladder (threshold, target tracking, predictive).
func BenchmarkAblationBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.AblationBaselines(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report("Ablation A7: the hardware-only baseline ladder",
			experiments.RenderScenarioComparison(results...))
	}
}

// BenchmarkAblationBurstyWorkload (A8): Markov-modulated flash crowds
// instead of the ramped trace.
func BenchmarkAblationBurstyWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.AblationBurstyWorkload(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report("Ablation A8: Markov-modulated burstiness injection (Mi et al.)",
			experiments.RenderScenarioComparison(results...))
	}
}

// BenchmarkAblationControlPeriod (A4): control period 5 s / 15 s / 30 s.
func BenchmarkAblationControlPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationControlPeriod(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		report("Ablation A4: control period", experiments.RenderPolicyRows(rows))
	}
}

// --- Micro-benchmarks of the substrate hot paths. ---

// BenchmarkEngineSchedule measures raw event throughput of the
// discrete-event engine.
func BenchmarkEngineSchedule(b *testing.B) {
	eng := sim.NewEngine()
	eng.SetEventLimit(uint64(b.N) + 10)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(time.Microsecond, tick)
		}
	}
	eng.Schedule(0, tick)
	b.ResetTimer()
	if err := eng.Run(time.Duration(b.N+1) * time.Microsecond); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServerRequestPath measures one simulated server's
// acquire/exec/release cycle.
func BenchmarkServerRequestPath(b *testing.B) {
	eng := sim.NewEngine()
	srv, err := server.New(eng, rng.New(1).Split("bench"), server.Config{
		Name:     "s",
		Model:    Params{S0: 1e-5, Alpha: 1e-7, Beta: 1e-10, Gamma: 1},
		PoolSize: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	done := 0
	var cycle func()
	cycle = func() {
		srv.Acquire(func(sess *server.Session) {
			sess.Exec(func() {
				sess.Release()
				done++
				if done < b.N {
					cycle()
				}
			})
		})
	}
	b.ResetTimer()
	cycle()
	if err := eng.Run(time.Duration(b.N+1) * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	if done < b.N {
		b.Fatalf("completed %d of %d", done, b.N)
	}
}

// BenchmarkEndToEndRequest measures a full 3-tier request through the
// assembled application.
func BenchmarkEndToEndRequest(b *testing.B) {
	eng := sim.NewEngine()
	app, err := ntier.New(eng, rng.New(1).Split("bench"), ntier.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	done := 0
	var cycle func()
	cycle = func() {
		app.Inject(func(time.Duration, bool) {
			done++
			if done < b.N {
				cycle()
			}
		})
	}
	b.ResetTimer()
	cycle()
	if err := eng.Run(time.Duration(b.N+1) * 10 * time.Millisecond); err != nil {
		b.Fatal(err)
	}
	if done < b.N {
		b.Fatalf("completed %d of %d", done, b.N)
	}
}

// BenchmarkBusPublish measures the Kafka-like log's publish path.
func BenchmarkBusPublish(b *testing.B) {
	bus := busPkg.New()
	if err := bus.CreateTopic("t", 1024); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bus.Publish("t", "k", i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedLoopWorkload measures the workload generator's cycle cost
// against a trivial target.
func BenchmarkClosedLoopWorkload(b *testing.B) {
	eng := sim.NewEngine()
	target := instantTarget{eng: eng}
	wl, err := workload.NewClosedLoop(eng, rng.New(1).Split("b"), target, workload.ClosedLoopConfig{
		Users:     64,
		ThinkTime: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	wl.Start()
	b.ResetTimer()
	// Run until ~b.N requests have completed (64 users, ~1ms cycle).
	horizon := time.Duration(b.N/64+2) * 2 * time.Millisecond
	if err := eng.Run(horizon); err != nil {
		b.Fatal(err)
	}
}

// instantTarget completes requests after a fixed tiny delay.
type instantTarget struct{ eng *sim.Engine }

func (t instantTarget) Inject(done func(rt time.Duration, ok bool)) {
	t.eng.Schedule(100*time.Microsecond, func() {
		if done != nil {
			done(100*time.Microsecond, true)
		}
	})
}

// BenchmarkMillionUserSmoke drives the event core to a million
// simultaneous users via the trace-driven sine ramp: one full 40-virtual-
// second run per iteration, peaking at 10⁶ live timers in the wheel. Run
// it under the profiler to see where the core spends its time at scale:
//
//	go test -bench MillionUserSmoke -benchtime 1x -cpuprofile cpu.out .
func BenchmarkMillionUserSmoke(b *testing.B) {
	var events uint64
	var wall time.Duration
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMillionSmoke(experiments.MillionSmokeConfig{
			Seed: benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.PeakLive < 1_000_000 {
			b.Fatalf("peak live users = %d, want 1,000,000", res.PeakLive)
		}
		events += res.Events
		wall += res.Wall
	}
	if wall > 0 {
		b.ReportMetric(float64(events)/wall.Seconds(), "events/s")
	}
}

// BenchmarkFig5MultiSeed repeats the Fig. 5 comparison across five seeds
// with 10% lognormal service-time noise: the headline separation between
// DCM and EC2-AutoScale must be a property of the system, not of one
// deterministic run.
func BenchmarkFig5MultiSeed(b *testing.B) {
	seeds := []uint64{1, 2, 3, 4, 5}
	for i := 0; i < b.N; i++ {
		dcmS, ec2S, err := experiments.MultiSeedComparison(seeds, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		report("Figure 5 robustness: five seeds, 10% service-time noise",
			experiments.RenderMultiSeed(dcmS, ec2S, seeds))
	}
}
