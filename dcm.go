// Package dcm reproduces "DCM: Dynamic Concurrency Management for Scaling
// n-Tier Applications in Cloud" (Chen, Wang, Palanisamy, Xiong — ICDCS
// 2017) as a deterministic discrete-event simulation plus the paper's
// controller, implemented entirely in Go with the standard library.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/sim, internal/rng — deterministic discrete-event engine;
//   - internal/server, internal/connpool, internal/lb, internal/ntier —
//     the simulated RUBBoS-style 3-tier application (Apache / Tomcat /
//     MySQL) with thread pools, DB connection pools and HAProxy-style
//     balancing;
//   - internal/workload, internal/trace — the paper's three workload
//     generators and bursty trace synthesis;
//   - internal/bus, internal/monitor, internal/cloud — the Kafka-like
//     metric log, per-VM monitoring agents, and the VM lifecycle;
//   - internal/fit, internal/model — least-squares fitting and the
//     concurrency-aware performance model (Equations 1–8);
//   - internal/controller, internal/actuator, internal/core — the DCM and
//     EC2-AutoScale controllers, the two actuators, and the assembled
//     framework;
//   - internal/experiments — one harness per table and figure of the
//     paper's evaluation.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and examples/ for runnable entry points.
package dcm

import (
	"time"

	"dcm/internal/controller"
	"dcm/internal/experiments"
	"dcm/internal/model"
	"dcm/internal/ntier"
	"dcm/internal/trace"
)

// Re-exported model types: the concurrency-aware performance model of §III.
type (
	// Params are the Equation 5/7 parameters of one tier.
	Params = model.Params
	// Observation is a (concurrency, throughput) training point.
	Observation = model.Observation
	// TrainResult is a fitted tier model.
	TrainResult = model.TrainResult
	// Allocation is a #W_T/#A_T/#A_C soft-resource setting.
	Allocation = model.Allocation
)

// Re-exported scenario types: the §V-B evaluation harness.
type (
	// ScenarioConfig parameterizes a Fig. 5-style run.
	ScenarioConfig = experiments.ScenarioConfig
	// ScenarioResult holds its per-second series and logs.
	ScenarioResult = experiments.ScenarioResult
	// ControllerKind selects the scaling policy.
	ControllerKind = experiments.ControllerKind
)

// Scenario controllers.
const (
	ControllerDCM = experiments.ControllerDCM
	ControllerEC2 = experiments.ControllerEC2
)

// TableI returns the paper's published model parameters.
func TableI() (tomcat, mysql Params) { return model.TableI() }

// Train fits Equation 7 to observations (§V-A's training step).
func Train(obs []Observation, opts model.TrainOptions) (TrainResult, error) {
	return model.Train(obs, opts)
}

// PlanAllocation computes the near-optimal soft-resource allocation for a
// topology from trained tier models (§IV-B's APP-agent planning step).
func PlanAllocation(in model.AllocationInput) (Allocation, error) {
	return model.PlanAllocation(in)
}

// DefaultAppConfig returns the calibrated simulated-testbed configuration
// (see internal/ntier.DefaultConfig).
func DefaultAppConfig() ntier.Config { return ntier.DefaultConfig() }

// DefaultPolicy returns the §V-B threshold policy shared by both
// controllers.
func DefaultPolicy() controller.Policy { return controller.DefaultPolicy() }

// RunScenario executes one §V-B scenario (DCM or a baseline against a
// bursty trace) and returns its full time series.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	return experiments.RunScenario(cfg)
}

// LargeVariationTrace synthesizes the stand-in for the "Large Variation"
// workload trace of §V-B.
func LargeVariationTrace(seed uint64) *trace.Trace {
	return trace.SynthesizeLargeVariation(seed)
}

// TrainModels runs the full §V-A training (Table I) against the simulated
// testbed.
func TrainModels(seed uint64, measure time.Duration) (tomcat, mysql experiments.Table1Row, err error) {
	return experiments.Table1(seed, measure)
}
