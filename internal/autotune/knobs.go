package autotune

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"dcm/internal/policy"
)

// A Knob is one named scalar degree of freedom in a policy.Rules: the
// bridge between the search (which thinks in float vectors) and the rule
// set (which the controllers consume). Min/Max are hard bounds — a
// template may tighten them but never widen them.
type Knob struct {
	Name     string
	Min, Max float64
	// Integer marks knobs whose values are rounded to whole numbers before
	// application (and whose grids are deduplicated after rounding).
	Integer bool
	// Apply writes the value into the rule set. Validation happens after
	// all knobs of a candidate are applied, so cross-field constraints
	// (lowerCPU < upperCPU) reject whole candidates, not single knobs.
	Apply func(r *policy.Rules, v float64)
}

// knobs is the registry, in stable declaration order.
var knobs = []Knob{
	{Name: "upperCPU", Min: 0.5, Max: 0.95,
		Apply: func(r *policy.Rules, v float64) { r.Scaling.UpperCPU = v }},
	{Name: "lowerCPU", Min: 0.1, Max: 0.6,
		Apply: func(r *policy.Rules, v float64) { r.Scaling.LowerCPU = v }},
	{Name: "lowerConsecutive", Min: 1, Max: 10, Integer: true,
		Apply: func(r *policy.Rules, v float64) { r.Scaling.LowerConsecutive = int(v) }},
	{Name: "maxServers", Min: 1, Max: 20, Integer: true,
		Apply: func(r *policy.Rules, v float64) { r.Scaling.MaxServers = int(v) }},
	{Name: "headroom", Min: 0.5, Max: 2.5,
		Apply: func(r *policy.Rules, v float64) { r.Allocation.Headroom = v }},
	{Name: "targetCPU", Min: 0.3, Max: 0.9,
		Apply: func(r *policy.Rules, v float64) { r.Target.TargetCPU = v }},
	{Name: "retryMaxAttempts", Min: 0, Max: 5, Integer: true,
		Apply: func(r *policy.Rules, v float64) { r.Retry.MaxAttempts = int(v) }},
	{Name: "retryBudgetRatio", Min: 0, Max: 1,
		Apply: func(r *policy.Rules, v float64) { r.Retry.BudgetRatio = v }},
}

// Knobs returns the registry in stable order.
func Knobs() []Knob {
	out := make([]Knob, len(knobs))
	copy(out, knobs)
	return out
}

// KnobByName looks a knob up.
func KnobByName(name string) (Knob, bool) {
	for _, k := range knobs {
		if k.Name == name {
			return k, true
		}
	}
	return Knob{}, false
}

// Tunable is one template entry: a knob with a (possibly tightened) search
// range and a grid resolution.
type Tunable struct {
	Knob string  `json:"knob"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// Steps is the number of grid points across [Min, Max] (default 3).
	Steps int `json:"steps,omitempty"`
}

// Candidate is one point in a template's search space: the knob values and
// the complete rule set they produce.
type Candidate struct {
	// Values maps knob name to the applied value. JSON-marshalling a map
	// sorts its keys, so a candidate's rendering is deterministic.
	Values map[string]float64 `json:"values"`
	Rules  policy.Rules       `json:"rules"`
}

// Key renders the candidate's values as a canonical string, for
// deduplication and labelling: knob names in sorted order, values in %g.
func (c Candidate) Key() string {
	names := make([]string, 0, len(c.Values))
	for n := range c.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, n+"="+strconv.FormatFloat(c.Values[n], 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// validateTunables checks every tunable against the registry.
func validateTunables(ts []Tunable) error {
	if len(ts) == 0 {
		return fmt.Errorf("autotune: template has no tunables")
	}
	seen := map[string]bool{}
	for _, tn := range ts {
		k, ok := KnobByName(tn.Knob)
		if !ok {
			return fmt.Errorf("autotune: unknown knob %q", tn.Knob)
		}
		if seen[tn.Knob] {
			return fmt.Errorf("autotune: knob %q listed twice", tn.Knob)
		}
		seen[tn.Knob] = true
		if tn.Min > tn.Max {
			return fmt.Errorf("autotune: knob %q range [%g, %g] inverted", tn.Knob, tn.Min, tn.Max)
		}
		if tn.Min < k.Min || tn.Max > k.Max {
			return fmt.Errorf("autotune: knob %q range [%g, %g] outside hard bounds [%g, %g]",
				tn.Knob, tn.Min, tn.Max, k.Min, k.Max)
		}
	}
	return nil
}

// gridValues returns the tunable's grid points: Steps values linearly
// spaced across [Min, Max], rounded and deduplicated for integer knobs.
func gridValues(tn Tunable, k Knob) []float64 {
	steps := tn.Steps
	if steps < 2 {
		steps = 3
	}
	if tn.Min == tn.Max {
		steps = 1
	}
	var out []float64
	for i := 0; i < steps; i++ {
		v := tn.Min
		if steps > 1 {
			v = tn.Min + (tn.Max-tn.Min)*float64(i)/float64(steps-1)
		}
		if k.Integer {
			v = math.Round(v)
		}
		if n := len(out); n > 0 && out[n-1] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// clampValue forces v into the tunable's range (and onto the integer
// lattice for integer knobs).
func clampValue(tn Tunable, k Knob, v float64) float64 {
	if k.Integer {
		v = math.Round(v)
	}
	if v < tn.Min {
		v = tn.Min
		if k.Integer {
			v = math.Ceil(v)
		}
	}
	if v > tn.Max {
		v = tn.Max
		if k.Integer {
			v = math.Floor(v)
		}
	}
	return v
}
