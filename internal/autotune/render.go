package autotune

import (
	"fmt"
	"strings"

	"dcm/internal/metrics"
)

// RenderReport renders the per-controller Pareto frontiers as text tables:
// one row per frontier point with its knob values and the two axes, plus
// the evaluation counts and portfolio line. This is the human view of the
// JSON report.
func RenderReport(r *Report) string {
	var b strings.Builder
	names := make([]string, 0, len(r.Portfolio))
	for _, s := range r.Portfolio {
		names = append(names, s.Name)
	}
	fmt.Fprintf(&b, "portfolio: %s (seed %d", strings.Join(names, ", "), portfolioSeed(r.Portfolio))
	if len(r.Portfolio) > 0 && r.Portfolio[0].Quick {
		b.WriteString(", quick")
	}
	fmt.Fprintf(&b, "); budget %d/controller, %d refinement seeds x %d rounds\n",
		r.Budget, r.Seeds, r.Rounds)
	for _, cr := range r.Controllers {
		fmt.Fprintf(&b, "\n%s: %d candidates evaluated, %d on the frontier\n",
			cr.Controller, cr.Evaluated, len(cr.Frontier))
		b.WriteString(renderFrontier(cr))
	}
	return b.String()
}

// renderFrontier renders one controller's frontier table, knob columns in
// tunable order.
func renderFrontier(cr ControllerReport) string {
	header := []string{"serverHours", "attainment"}
	for _, tn := range cr.Tunables {
		header = append(header, tn.Knob)
	}
	tb := metrics.NewTable(header...)
	for _, p := range cr.Frontier {
		row := []string{
			fmt.Sprintf("%.3f", p.ServerHours),
			fmt.Sprintf("%.3f", p.Attainment),
		}
		for _, tn := range cr.Tunables {
			row = append(row, fmt.Sprintf("%g", p.Values[tn.Knob]))
		}
		tb.AddRow(row...)
	}
	return tb.String()
}

// portfolioSeed returns the shared scenario seed (portfolios are built
// with one seed for every entry).
func portfolioSeed(ss []Scenario) uint64 {
	if len(ss) == 0 {
		return 0
	}
	return ss[0].Seed
}
