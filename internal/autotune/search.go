package autotune

import (
	"fmt"
	"sort"

	"dcm/internal/policy"
	"dcm/internal/rng"
	"dcm/internal/runner"
)

// Config parameterizes a search.
type Config struct {
	// Templates are the per-controller search spaces (default:
	// DefaultTemplates()).
	Templates []Template
	// Portfolio is the scenario set every candidate is scored on (default:
	// the full Portfolio at seed 42).
	Portfolio []Scenario
	// Budget caps candidate evaluations per controller (default 24). The
	// grid is stride-subsampled to fit; whatever budget remains funds
	// refinement rounds.
	Budget int
	// Seeds is the number of random perturbations spawned per frontier
	// point per refinement round (default 2; 0 disables refinement).
	Seeds int
	// Rounds caps the refinement rounds (default 2).
	Rounds int
	// Workers sizes the runner pool (<= 0 selects the runner default).
	// Results are input-ordered, so the report is byte-identical for any
	// worker count.
	Workers int
	// Seed drives the refinement perturbations (default 1).
	Seed uint64
}

func (c *Config) defaults() error {
	if len(c.Templates) == 0 {
		c.Templates = DefaultTemplates()
	}
	if len(c.Portfolio) == 0 {
		p, err := Portfolio(nil, 42, false)
		if err != nil {
			return err
		}
		c.Portfolio = p
	}
	if c.Budget <= 0 {
		c.Budget = 24
	}
	if c.Seeds < 0 {
		c.Seeds = 0
	} else if c.Seeds == 0 {
		c.Seeds = 2
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	for _, t := range c.Templates {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Point is one evaluated candidate: the knob values, the portfolio scores,
// and the two aggregate axes the frontier is computed on.
type Point struct {
	Candidate
	// Attainment is the portfolio-mean SLO attainment (maximize).
	Attainment float64 `json:"attainment"`
	// ServerHours is the summed scalable-tier VM time (minimize).
	ServerHours float64 `json:"serverHours"`
	// Evaluations are the per-scenario scores, in portfolio order.
	Evaluations []Evaluation `json:"evaluations"`
}

// ControllerReport is one controller's search outcome.
type ControllerReport struct {
	Controller string `json:"controller"`
	// Tunables echoes the searched knobs and ranges.
	Tunables []Tunable `json:"tunables"`
	// Evaluated counts distinct candidates scored (grid + refinement).
	Evaluated int `json:"evaluated"`
	// Frontier is the Pareto-optimal subset, sorted by ServerHours
	// ascending: no other evaluated candidate beats a frontier point on
	// both axes.
	Frontier []Point `json:"frontier"`
	// Points are all evaluated candidates in evaluation order.
	Points []Point `json:"points"`
}

// Report is the full search outcome: the SLO-vs-cost Pareto frontier per
// controller, plus the portfolio and search parameters that produced it.
// The report carries no timestamps or environment data: the same Config
// always marshals to the same bytes.
type Report struct {
	Portfolio   []Scenario         `json:"portfolio"`
	Budget      int                `json:"budget"`
	Seeds       int                `json:"seeds"`
	Rounds      int                `json:"rounds"`
	Seed        uint64             `json:"seed"`
	Controllers []ControllerReport `json:"controllers"`
}

// Run executes the search: per controller, the (possibly subsampled)
// template grid, then seeded random refinement of the running Pareto
// frontier until the budget or the round cap is hit. All candidate
// batches fan out through runner.Map, whose input-ordered results make
// the report independent of Config.Workers.
func Run(cfg Config) (*Report, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rep := &Report{
		Portfolio: cfg.Portfolio,
		Budget:    cfg.Budget,
		Seeds:     cfg.Seeds,
		Rounds:    cfg.Rounds,
		Seed:      cfg.Seed,
	}
	for _, tmpl := range cfg.Templates {
		cr, err := searchController(tmpl, cfg)
		if err != nil {
			return nil, err
		}
		rep.Controllers = append(rep.Controllers, cr)
	}
	return rep, nil
}

// searchController runs one template's grid-plus-refinement search.
func searchController(tmpl Template, cfg Config) (ControllerReport, error) {
	cr := ControllerReport{
		Controller: string(tmpl.Controller),
		Tunables:   tmpl.Tunables,
	}
	root := rng.New(cfg.Seed)

	evaluate := func(cands []Candidate) ([]Point, error) {
		return runner.Map(cands, cfg.Workers, func(_ int, c Candidate) (Point, error) {
			return scoreCandidate(tmpl, cfg.Portfolio, c)
		})
	}

	seen := map[string]bool{}
	wave := Subsample(tmpl.Grid(), cfg.Budget)
	for _, c := range wave {
		seen[c.Key()] = true
	}
	var all []Point
	for round := 0; round <= cfg.Rounds && len(wave) > 0; round++ {
		pts, err := evaluate(wave)
		if err != nil {
			return cr, err
		}
		all = append(all, pts...)
		remaining := cfg.Budget - len(all)
		if remaining <= 0 || cfg.Seeds == 0 || round == cfg.Rounds {
			break
		}
		// Refinement: perturb each current frontier point Seeds times. The
		// frontier order is deterministic, the perturbation rng is keyed by
		// (round, frontier index, seed index), and duplicates are dropped —
		// so the next wave is a pure function of the config.
		wave = wave[:0]
		for fi, p := range ParetoFrontier(all) {
			for si := 0; si < cfg.Seeds; si++ {
				rnd := root.Split(fmt.Sprintf("refine-%d-%d-%d", round, fi, si))
				c, ok := tmpl.Perturb(p.Candidate, rnd)
				if !ok || seen[c.Key()] {
					continue
				}
				seen[c.Key()] = true
				wave = append(wave, c)
				if len(wave) >= remaining {
					break
				}
			}
			if len(wave) >= remaining {
				break
			}
		}
	}
	cr.Points = all
	cr.Evaluated = len(all)
	cr.Frontier = ParetoFrontier(all)
	return cr, nil
}

// scoreCandidate runs the whole portfolio (serially — parallelism lives at
// the candidate level) and aggregates the two frontier axes: portfolio-mean
// attainment, summed server-hours.
func scoreCandidate(tmpl Template, portfolio []Scenario, c Candidate) (Point, error) {
	p := Point{Candidate: c}
	for _, sc := range portfolio {
		ev, err := sc.Run(tmpl.Controller, c.Rules)
		if err != nil {
			return p, err
		}
		p.Evaluations = append(p.Evaluations, ev)
		p.Attainment += ev.Attainment
		p.ServerHours += ev.ServerHours
	}
	if n := len(portfolio); n > 0 {
		p.Attainment /= float64(n)
	}
	return p, nil
}

// ParetoFrontier returns the non-dominated subset of pts: points no other
// point beats on both attainment (higher is better) and server-hours
// (lower is better). Ties collapse to the earliest-evaluated candidate.
// The frontier is sorted by ServerHours ascending, then Attainment
// descending, then candidate key.
func ParetoFrontier(pts []Point) []Point {
	var out []Point
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			betterOrEqual := q.Attainment >= p.Attainment && q.ServerHours <= p.ServerHours
			strictlyBetter := q.Attainment > p.Attainment || q.ServerHours < p.ServerHours
			if betterOrEqual && strictlyBetter {
				dominated = true
				break
			}
			// Exact tie on both axes: keep only the first occurrence.
			if !strictlyBetter && betterOrEqual && j < i {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].ServerHours != out[j].ServerHours {
			return out[i].ServerHours < out[j].ServerHours
		}
		if out[i].Attainment != out[j].Attainment {
			return out[i].Attainment > out[j].Attainment
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// BestRules returns the frontier point with the highest attainment
// (cheapest on ties), or false when the report is empty — a convenience
// for "give me the tuned policy" consumers.
func (r *ControllerReport) BestRules() (policy.Rules, bool) {
	if len(r.Frontier) == 0 {
		return policy.Rules{}, false
	}
	best := r.Frontier[0]
	for _, p := range r.Frontier[1:] {
		if p.Attainment > best.Attainment {
			best = p
		}
	}
	return best.Rules, true
}
