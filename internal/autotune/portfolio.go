package autotune

import (
	"fmt"
	"time"

	"dcm/internal/chaos"
	"dcm/internal/experiments"
	"dcm/internal/ntier"
	"dcm/internal/policy"
	"dcm/internal/resilience"
	"dcm/internal/trace"
	"dcm/internal/workload"
)

// Scenario is one portfolio entry: a named workload/fault shape every
// candidate is scored on. The struct is pure data so a portfolio can be
// marshalled into reports.
type Scenario struct {
	// Name selects the scenario shape: "steady", "bursty", "chaos" or
	// "retry-storm".
	Name string `json:"name"`
	// SLOSec is the response-time objective attainment is measured against.
	SLOSec float64 `json:"sloSec"`
	// Seed drives the scenario's randomness. Candidates share it, so score
	// differences come from the rules, never from the draw.
	Seed uint64 `json:"seed"`
	// Quick shrinks horizons and populations for smoke runs.
	Quick bool `json:"quick,omitempty"`
}

// ScenarioNames lists the supported portfolio scenarios in canonical
// order.
func ScenarioNames() []string {
	return []string{"steady", "bursty", "chaos", "retry-storm"}
}

// Portfolio builds the named scenarios. names empty selects all of them.
func Portfolio(names []string, seed uint64, quick bool) ([]Scenario, error) {
	if len(names) == 0 {
		names = ScenarioNames()
	}
	out := make([]Scenario, 0, len(names))
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("autotune: scenario %q listed twice", name)
		}
		seen[name] = true
		slo := 0.5
		if name == "retry-storm" {
			// The storm's SLA is the request deadline: service past it was
			// abandoned, not slow.
			slo = 1.0
		}
		switch name {
		case "steady", "bursty", "chaos", "retry-storm":
		default:
			return nil, fmt.Errorf("autotune: unknown scenario %q (have %v)", name, ScenarioNames())
		}
		out = append(out, Scenario{Name: name, SLOSec: slo, Seed: seed, Quick: quick})
	}
	return out, nil
}

// config builds the experiments.ScenarioConfig one candidate run needs.
func (s Scenario) config(kind experiments.ControllerKind, rules *policy.Rules) (experiments.ScenarioConfig, error) {
	cfg := experiments.ScenarioConfig{
		Seed:  s.Seed,
		Kind:  kind,
		Rules: rules,
	}
	switch s.Name {
	case "steady":
		if s.Quick {
			tr, err := trace.Synthesize(trace.SynthesisConfig{
				Name:     "steady-quick",
				Duration: 150 * time.Second,
				Base:     300,
				Step:     5 * time.Second,
				Jitter:   0.05,
				Seed:     s.Seed,
				Bursts: []trace.Burst{
					{Start: 40 * time.Second, Peak: 1200, Ramp: 10 * time.Second, Hold: 40 * time.Second},
				},
			})
			if err != nil {
				return cfg, fmt.Errorf("autotune: steady trace: %w", err)
			}
			cfg.Trace = tr
		}
		// Full mode keeps Trace nil: RunScenario synthesizes the paper's
		// 600 s large-variation trace from the seed.
	case "bursty":
		if s.Quick {
			cfg.Bursty = &workload.BurstyConfig{
				Users:       900,
				NormalThink: 12 * time.Second,
				SurgeThink:  2 * time.Second,
				NormalDwell: 30 * time.Second,
				SurgeDwell:  20 * time.Second,
			}
			cfg.Horizon = 150 * time.Second
		} else {
			cfg.Bursty = &workload.BurstyConfig{
				Users:       2600,
				NormalThink: 12 * time.Second,
				SurgeThink:  2 * time.Second,
				NormalDwell: 60 * time.Second,
				SurgeDwell:  40 * time.Second,
			}
			cfg.Horizon = 600 * time.Second
		}
	case "chaos":
		if s.Quick {
			tr, err := trace.Synthesize(trace.SynthesisConfig{
				Name:     "chaos-quick",
				Duration: 150 * time.Second,
				Base:     400,
				Step:     5 * time.Second,
				Jitter:   0.05,
				Seed:     s.Seed,
				Bursts: []trace.Burst{
					{Start: 30 * time.Second, Peak: 1400, Ramp: 10 * time.Second, Hold: 60 * time.Second},
				},
			})
			if err != nil {
				return cfg, fmt.Errorf("autotune: chaos trace: %w", err)
			}
			cfg.Trace = tr
			cfg.Chaos = &chaos.Schedule{Name: "chaos-quick", Faults: []chaos.Fault{
				{Kind: chaos.KindDegrade, At: 40 * time.Second, Duration: 40 * time.Second,
					Tier: ntier.TierApp, Factor: 2.5},
				{Kind: chaos.KindBlackout, At: 100 * time.Second, Duration: 20 * time.Second},
			}}
		} else {
			sched, err := chaos.Builtin("kitchen-sink")
			if err != nil {
				return cfg, fmt.Errorf("autotune: chaos schedule: %w", err)
			}
			cfg.Chaos = &sched
		}
	case "retry-storm":
		users, degradeAt, degradeFor, horizon := 500, 20*time.Second, 100*time.Second, 140*time.Second
		if s.Quick {
			users, degradeAt, degradeFor, horizon = 300, 15*time.Second, 45*time.Second, 80*time.Second
		}
		tr, err := trace.SynthesizeStep("retry-storm", users, users, 0, horizon)
		if err != nil {
			return cfg, fmt.Errorf("autotune: retry-storm trace: %w", err)
		}
		res, err := resilience.Preset("full", time.Second)
		if err != nil {
			return cfg, fmt.Errorf("autotune: retry-storm resilience: %w", err)
		}
		cfg.Trace = tr
		cfg.ThinkTime = 500 * time.Millisecond
		cfg.AppServers = 2
		cfg.Resilience = res
		// The degraded-server fault targets "app-1" by name so every
		// candidate degrades the same Tomcat.
		cfg.Chaos = &chaos.Schedule{Name: "retry-storm", Faults: []chaos.Fault{{
			Kind:     chaos.KindDegrade,
			At:       degradeAt,
			Duration: degradeFor,
			Tier:     ntier.TierApp,
			VM:       "app-1",
			Factor:   12,
		}}}
	default:
		return cfg, fmt.Errorf("autotune: unknown scenario %q (have %v)", s.Name, ScenarioNames())
	}
	return cfg, nil
}

// Run executes the scenario under one candidate rule set and scores it.
func (s Scenario) Run(kind experiments.ControllerKind, rules policy.Rules) (Evaluation, error) {
	cfg, err := s.config(kind, &rules)
	if err != nil {
		return Evaluation{}, err
	}
	res, err := experiments.RunScenario(cfg)
	if err != nil {
		return Evaluation{}, fmt.Errorf("autotune: scenario %s/%s: %w", s.Name, kind, err)
	}
	ev := Evaluate(s.Name, res, s.SLOSec)
	ev.Policy = rules.Name
	return ev, nil
}
