package autotune

import (
	"encoding/json"
	"strings"
	"testing"

	"dcm/internal/experiments"
	"dcm/internal/rng"
)

// quickConfig is a small but real search: one controller, the quick steady
// scenario, a budget that forces both grid subsampling and a refinement
// round.
func quickConfig(workers int) (Config, error) {
	port, err := Portfolio([]string{"steady"}, 7, true)
	if err != nil {
		return Config{}, err
	}
	tmpl, err := TemplateFor(experiments.ControllerTargetTracking)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Templates: []Template{tmpl},
		Portfolio: port,
		Budget:    6,
		Seeds:     1,
		Rounds:    1,
		Workers:   workers,
		Seed:      3,
	}, nil
}

// TestSearchDeterministicAcrossWorkers is the autotuner's core contract:
// the marshaled report is byte-identical whether candidates are evaluated
// serially or across a worker pool.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real scenario simulations")
	}
	var reports [][]byte
	for _, workers := range []int{1, 4} {
		cfg, err := quickConfig(workers)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, b)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Fatalf("report differs between workers=1 and workers=4:\n%s\n---\n%s",
			reports[0], reports[1])
	}
}

// TestSearchReportShape checks the search outcome's structure on the quick
// portfolio: budget respected, frontier non-empty and non-dominated,
// points carry per-scenario evaluations.
func TestSearchReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real scenario simulations")
	}
	cfg, err := quickConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Controllers) != 1 {
		t.Fatalf("%d controller reports, want 1", len(rep.Controllers))
	}
	cr := rep.Controllers[0]
	if cr.Controller != string(experiments.ControllerTargetTracking) {
		t.Fatalf("controller %q", cr.Controller)
	}
	if cr.Evaluated == 0 || cr.Evaluated > cfg.Budget {
		t.Fatalf("evaluated %d, want in (0, %d]", cr.Evaluated, cfg.Budget)
	}
	if len(cr.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range cr.Points {
		if len(p.Evaluations) != len(cfg.Portfolio) {
			t.Fatalf("point %s has %d evaluations, want %d", p.Key(), len(p.Evaluations), len(cfg.Portfolio))
		}
		if p.ServerHours <= 0 {
			t.Fatalf("point %s has non-positive server-hours", p.Key())
		}
	}
	// No frontier point may be dominated by any evaluated point.
	for _, f := range cr.Frontier {
		for _, p := range cr.Points {
			if p.Attainment > f.Attainment && p.ServerHours < f.ServerHours {
				t.Fatalf("frontier point %s dominated by %s", f.Key(), p.Key())
			}
		}
	}
	if _, ok := cr.BestRules(); !ok {
		t.Fatal("BestRules found nothing on a non-empty frontier")
	}

	out := RenderReport(rep)
	for _, want := range []string{"portfolio: steady (seed 7, quick)", "target-tracking:", "serverHours", "targetCPU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}

// TestPerturbDeterministic pins that the same rng stream yields the same
// refinement candidate.
func TestPerturbDeterministic(t *testing.T) {
	tmpl, err := TemplateFor(experiments.ControllerDCM)
	if err != nil {
		t.Fatal(err)
	}
	grid := tmpl.Grid()
	if len(grid) == 0 {
		t.Fatal("empty grid")
	}
	base := grid[len(grid)/2]
	a, okA := tmpl.Perturb(base, rng.New(9).Split("x"))
	b, okB := tmpl.Perturb(base, rng.New(9).Split("x"))
	if okA != okB || (okA && a.Key() != b.Key()) {
		t.Fatalf("perturb not deterministic: %v/%v %q vs %q", okA, okB, a.Key(), b.Key())
	}
	for _, tn := range tmpl.Tunables {
		if okA {
			v := a.Values[tn.Knob]
			if v < tn.Min || v > tn.Max {
				t.Fatalf("perturbed %s=%g outside [%g, %g]", tn.Knob, v, tn.Min, tn.Max)
			}
		}
	}
}

// TestConfigDefaults pins the documented defaulting.
func TestConfigDefaults(t *testing.T) {
	var c Config
	if err := c.defaults(); err != nil {
		t.Fatal(err)
	}
	if c.Budget != 24 || c.Seeds != 2 || c.Rounds != 2 || c.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if len(c.Templates) != len(DefaultTemplates()) || len(c.Portfolio) != len(ScenarioNames()) {
		t.Fatalf("default templates/portfolio wrong: %d/%d", len(c.Templates), len(c.Portfolio))
	}
	c = Config{Seeds: -1}
	if err := c.defaults(); err != nil {
		t.Fatal(err)
	}
	if c.Seeds != 0 {
		t.Fatalf("negative Seeds should disable refinement, got %d", c.Seeds)
	}
	bad := Config{Templates: []Template{{Controller: "dcm"}}}
	if err := bad.defaults(); err == nil {
		t.Fatal("invalid template accepted")
	}
}
