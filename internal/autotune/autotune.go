// Package autotune searches the declarative policy space of
// internal/policy for controller configurations that trade SLO attainment
// against server-hours cost.
//
// The search is deterministic end to end: a policy template names the
// tunable knobs and their ranges, a fixed grid enumerates the first
// candidate wave, and seeded random refinement perturbs the current
// Pareto frontier for further waves. Every candidate is scored on a
// scenario portfolio (steady trace, bursty arrivals, fault injection,
// retry storm) by running the same internal/experiments scenarios the
// figures use, fanned across a worker pool by internal/runner — whose
// input-order results make a parallel search byte-identical to a serial
// one. The output is a per-controller Pareto frontier: no candidate on it
// is beaten on both attainment and cost by any other candidate evaluated.
package autotune

import (
	"dcm/internal/experiments"
	"dcm/internal/metrics"
	"dcm/internal/ntier"
)

// Evaluation is one scenario's scored outcome — the result schema shared
// between the autotuner's portfolio runs and `whatif -json`: both describe
// "this configuration, evaluated one way, delivered these service levels".
type Evaluation struct {
	// Source names the evaluation: a portfolio scenario ("steady",
	// "retry-storm", ...) or a whatif method ("simulation", "mva").
	Source string `json:"source"`
	// Controller and Policy identify the configuration under evaluation
	// (empty for whatif's controller-less steady states).
	Controller string `json:"controller,omitempty"`
	Policy     string `json:"policy,omitempty"`
	// SLOSec is the response-time objective the attainment is measured
	// against.
	SLOSec float64 `json:"sloSec,omitempty"`
	// Attainment is the fraction of the run delivered within the SLO,
	// discounted by the request failure fraction (1.0 = every second within
	// the objective and every request served).
	Attainment float64 `json:"attainment"`
	// ThroughputRPS and MeanRTSec summarize the delivered service.
	ThroughputRPS float64 `json:"throughputRPS"`
	MeanRTSec     float64 `json:"meanRTSec"`
	// ServerHours is the VM time consumed across the scalable tiers — the
	// cost axis (0 for whatif's fixed topologies).
	ServerHours float64 `json:"serverHours,omitempty"`
	// Completed, Goodput, Retries and Errors are lifetime request counts
	// (Goodput and Retries only on resilience-enabled runs).
	Completed uint64 `json:"completed,omitempty"`
	Goodput   uint64 `json:"goodput,omitempty"`
	Retries   uint64 `json:"retries,omitempty"`
	Errors    uint64 `json:"errors,omitempty"`
}

// Evaluate scores one finished scenario run against an SLO: the fraction
// of per-second mean response times within the objective, discounted by
// the fraction of requests that failed outright (and, on resilience runs,
// by every non-OK disposition — a shed or broken-circuit request is not
// attained service no matter how fast the survivors were).
func Evaluate(source string, res *experiments.ScenarioResult, sloSec float64) Evaluation {
	ev := Evaluation{
		Source:     source,
		Controller: string(res.Kind),
		SLOSec:     sloSec,
		Completed:  res.TotalCompleted,
		Goodput:    res.Goodput,
		Retries:    res.Retries,
		Errors:     res.TotalErrors,
	}
	within := 0
	for _, rt := range res.MeanRTSec {
		if rt <= sloSec {
			within++
		}
	}
	sloFrac := 1.0
	if len(res.MeanRTSec) > 0 {
		sloFrac = float64(within) / float64(len(res.MeanRTSec))
	}
	ev.Attainment = sloFrac * successFraction(res)
	if len(res.Throughput) > 0 {
		ev.ThroughputRPS = metrics.Summarize(res.Throughput).Mean
	}
	if len(res.MeanRTSec) > 0 {
		ev.MeanRTSec = metrics.Summarize(res.MeanRTSec).Mean
	}
	ev.ServerHours = serverHours(res)
	return ev
}

// successFraction is the fraction of requests actually served: the full
// disposition taxonomy when the run recorded one, completions vs errors
// otherwise.
func successFraction(res *experiments.ScenarioResult) float64 {
	if d := res.Dispositions; d != nil {
		total := d.OK + d.TimedOut + d.Rejected + d.Shed + d.BreakerOpen + d.Errored
		if total == 0 {
			return 1
		}
		return float64(d.OK) / float64(total)
	}
	total := res.TotalCompleted + res.TotalErrors
	if total == 0 {
		return 1
	}
	return float64(res.TotalCompleted) / float64(total)
}

// serverHours converts the per-second scalable-tier server counts into VM
// hours — the portfolio's cost currency.
func serverHours(res *experiments.ScenarioResult) float64 {
	seconds := 0.0
	for _, tierName := range []string{ntier.TierApp, ntier.TierDB} {
		for _, c := range res.TierCounts[tierName] {
			seconds += float64(c)
		}
	}
	return seconds / 3600
}
