package autotune

import (
	"fmt"

	"dcm/internal/experiments"
	"dcm/internal/policy"
	"dcm/internal/rng"
)

// Template is one controller's search space: the base rule set plus the
// tunable knobs and their ranges.
type Template struct {
	// Controller selects the scenario controller the candidates drive.
	Controller experiments.ControllerKind `json:"controller"`
	// Base is the rule set every candidate starts from; knobs overwrite
	// their fields.
	Base policy.Rules `json:"base"`
	// Tunables are the searched knobs.
	Tunables []Tunable `json:"tunables"`
}

// DefaultTemplates returns the built-in search spaces: each controller
// with the knobs that actually steer it. The VM-level thresholds matter to
// every controller; headroom only reaches the DCM planner, the setpoint
// only target tracking.
func DefaultTemplates() []Template {
	base := policy.Default()
	return []Template{
		{
			Controller: experiments.ControllerDCM,
			Base:       base,
			Tunables: []Tunable{
				{Knob: "upperCPU", Min: 0.6, Max: 0.9, Steps: 3},
				{Knob: "lowerCPU", Min: 0.2, Max: 0.5, Steps: 2},
				{Knob: "lowerConsecutive", Min: 2, Max: 6, Steps: 2},
				{Knob: "headroom", Min: 0.8, Max: 1.6, Steps: 2},
			},
		},
		{
			Controller: experiments.ControllerEC2,
			Base:       base,
			Tunables: []Tunable{
				{Knob: "upperCPU", Min: 0.6, Max: 0.9, Steps: 3},
				{Knob: "lowerCPU", Min: 0.2, Max: 0.5, Steps: 2},
				{Knob: "lowerConsecutive", Min: 2, Max: 6, Steps: 3},
			},
		},
		{
			Controller: experiments.ControllerTargetTracking,
			Base:       base,
			Tunables: []Tunable{
				{Knob: "targetCPU", Min: 0.4, Max: 0.8, Steps: 3},
				{Knob: "lowerConsecutive", Min: 2, Max: 6, Steps: 2},
				{Knob: "maxServers", Min: 6, Max: 14, Steps: 2},
			},
		},
	}
}

// TemplateFor returns the default template of one controller kind.
func TemplateFor(kind experiments.ControllerKind) (Template, error) {
	for _, t := range DefaultTemplates() {
		if t.Controller == kind {
			return t, nil
		}
	}
	return Template{}, fmt.Errorf("autotune: no template for controller %q", kind)
}

// Validate checks the template.
func (t Template) Validate() error {
	if t.Controller == "" {
		return fmt.Errorf("autotune: template missing controller")
	}
	if err := t.Base.Validate(); err != nil {
		return fmt.Errorf("autotune: template base: %w", err)
	}
	return validateTunables(t.Tunables)
}

// candidate materializes one value vector: the base rules with every knob
// applied, rejected if the combination fails rule validation (e.g. a
// lowerCPU grid point at or above the upperCPU one).
func (t Template) candidate(values []float64) (Candidate, bool) {
	rules := t.Base
	m := make(map[string]float64, len(t.Tunables))
	for i, tn := range t.Tunables {
		k, _ := KnobByName(tn.Knob)
		v := clampValue(tn, k, values[i])
		k.Apply(&rules, v)
		m[tn.Knob] = v
	}
	c := Candidate{Values: m, Rules: rules}
	c.Rules.Name = "autotune:" + string(t.Controller) + ":" + c.Key()
	if c.Rules.Validate() != nil {
		return Candidate{}, false
	}
	return c, true
}

// Grid enumerates the template's full candidate grid in deterministic
// order (cartesian product in tunable order, first tunable slowest),
// dropping value combinations that fail rule validation.
func (t Template) Grid() []Candidate {
	dims := make([][]float64, len(t.Tunables))
	for i, tn := range t.Tunables {
		k, _ := KnobByName(tn.Knob)
		dims[i] = gridValues(tn, k)
	}
	var out []Candidate
	values := make([]float64, len(dims))
	var walk func(d int)
	walk = func(d int) {
		if d == len(dims) {
			if c, ok := t.candidate(values); ok {
				out = append(out, c)
			}
			return
		}
		for _, v := range dims[d] {
			values[d] = v
			walk(d + 1)
		}
	}
	walk(0)
	return out
}

// Perturb derives a refinement candidate from c: every tunable moved by a
// uniform step of up to ±25% of its range, clamped back into range. The
// rng stream fully determines the result.
func (t Template) Perturb(c Candidate, rnd *rng.Rand) (Candidate, bool) {
	values := make([]float64, len(t.Tunables))
	for i, tn := range t.Tunables {
		span := tn.Max - tn.Min
		values[i] = c.Values[tn.Knob] + (2*rnd.Float64()-1)*0.25*span
	}
	return t.candidate(values)
}

// Subsample reduces cands to at most budget entries with a deterministic
// even stride, keeping the first and last entries of the kept lattice.
func Subsample(cands []Candidate, budget int) []Candidate {
	if budget <= 0 || len(cands) <= budget {
		return cands
	}
	out := make([]Candidate, 0, budget)
	for i := 0; i < budget; i++ {
		out = append(out, cands[i*len(cands)/budget])
	}
	return out
}
