package autotune

import (
	"strings"
	"testing"

	"dcm/internal/experiments"
	"dcm/internal/metrics"
	"dcm/internal/ntier"
	"dcm/internal/policy"
)

func TestKnobRegistry(t *testing.T) {
	ks := Knobs()
	if len(ks) < 8 {
		t.Fatalf("registry has %d knobs, want >= 8", len(ks))
	}
	for _, k := range ks {
		if k.Min >= k.Max {
			t.Errorf("knob %s bounds [%g, %g] degenerate", k.Name, k.Min, k.Max)
		}
		if k.Apply == nil {
			t.Errorf("knob %s has no Apply", k.Name)
		}
	}
	if _, ok := KnobByName("upperCPU"); !ok {
		t.Fatal("upperCPU not registered")
	}
	if _, ok := KnobByName("nope"); ok {
		t.Fatal("unknown knob resolved")
	}
}

func TestValidateTunables(t *testing.T) {
	cases := []struct {
		name string
		ts   []Tunable
		want string
	}{
		{"empty", nil, "no tunables"},
		{"unknown", []Tunable{{Knob: "bogus", Min: 0, Max: 1}}, `unknown knob "bogus"`},
		{"duplicate", []Tunable{
			{Knob: "upperCPU", Min: 0.6, Max: 0.9},
			{Knob: "upperCPU", Min: 0.6, Max: 0.9},
		}, "listed twice"},
		{"inverted", []Tunable{{Knob: "upperCPU", Min: 0.9, Max: 0.6}}, "inverted"},
		{"outside", []Tunable{{Knob: "upperCPU", Min: 0.2, Max: 0.9}}, "outside hard bounds"},
	}
	for _, tc := range cases {
		err := validateTunables(tc.ts)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := validateTunables([]Tunable{{Knob: "upperCPU", Min: 0.6, Max: 0.9}}); err != nil {
		t.Fatalf("valid tunables rejected: %v", err)
	}
}

func TestGridValuesInteger(t *testing.T) {
	k, _ := KnobByName("lowerConsecutive")
	// Five steps across [2, 4] round to 2, 2.5->3, 3, 3.5->4, 4: the dedup
	// keeps 2, 3, 4 only... rounding gives 2, 3 (from 2.5), 3, 4 (from
	// 3.5), 4 -> dedup to 2, 3, 4.
	got := gridValues(Tunable{Knob: k.Name, Min: 2, Max: 4, Steps: 5}, k)
	want := []float64{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("grid %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grid %v, want %v", got, want)
		}
	}
}

func TestCandidateKeyDeterministic(t *testing.T) {
	c := Candidate{Values: map[string]float64{"upperCPU": 0.75, "headroom": 1.2}}
	if got, want := c.Key(), "headroom=1.2,upperCPU=0.75"; got != want {
		t.Fatalf("key %q, want %q", got, want)
	}
}

func TestDefaultTemplates(t *testing.T) {
	tmpls := DefaultTemplates()
	if len(tmpls) < 2 {
		t.Fatalf("%d templates, want >= 2", len(tmpls))
	}
	for _, tmpl := range tmpls {
		if err := tmpl.Validate(); err != nil {
			t.Errorf("template %s invalid: %v", tmpl.Controller, err)
		}
		if len(tmpl.Tunables) < 3 {
			t.Errorf("template %s has %d tunables, want >= 3", tmpl.Controller, len(tmpl.Tunables))
		}
		grid := tmpl.Grid()
		if len(grid) == 0 {
			t.Errorf("template %s grid empty", tmpl.Controller)
		}
		seen := map[string]bool{}
		for _, c := range grid {
			if seen[c.Key()] {
				t.Errorf("template %s grid repeats %s", tmpl.Controller, c.Key())
			}
			seen[c.Key()] = true
			if err := c.Rules.Validate(); err != nil {
				t.Errorf("template %s grid candidate %s invalid: %v", tmpl.Controller, c.Key(), err)
			}
			if !strings.HasPrefix(c.Rules.Name, "autotune:"+string(tmpl.Controller)+":") {
				t.Errorf("candidate rules name %q lacks the autotune prefix", c.Rules.Name)
			}
		}
	}
	if _, err := TemplateFor(experiments.ControllerKind("nope")); err == nil {
		t.Fatal("TemplateFor accepted an unknown controller")
	}
}

func TestSubsample(t *testing.T) {
	cands := make([]Candidate, 10)
	for i := range cands {
		cands[i] = Candidate{Values: map[string]float64{"upperCPU": float64(i)}}
	}
	got := Subsample(cands, 4)
	if len(got) != 4 {
		t.Fatalf("subsample kept %d, want 4", len(got))
	}
	// Stride i*10/4 keeps indices 0, 2, 5, 7.
	for i, wantIdx := range []float64{0, 2, 5, 7} {
		if got[i].Values["upperCPU"] != wantIdx {
			t.Fatalf("subsample[%d] = %v, want index %v", i, got[i].Values["upperCPU"], wantIdx)
		}
	}
	if got := Subsample(cands, 20); len(got) != 10 {
		t.Fatalf("under-budget subsample changed length: %d", len(got))
	}
}

func TestParetoFrontier(t *testing.T) {
	pt := func(name string, att, sh float64) Point {
		return Point{
			Candidate:   Candidate{Values: map[string]float64{"upperCPU": 0.5}, Rules: mustRules(name)},
			Attainment:  att,
			ServerHours: sh,
		}
	}
	pts := []Point{
		pt("a", 0.9, 2.0), // frontier: best attainment
		pt("b", 0.9, 3.0), // dominated by a (same attainment, dearer)
		pt("c", 0.5, 1.0), // frontier: cheapest
		pt("d", 0.4, 1.5), // dominated by c
		pt("e", 0.7, 1.5), // frontier: middle
		pt("f", 0.7, 1.5), // exact tie with e: dropped
	}
	fr := ParetoFrontier(pts)
	if len(fr) != 3 {
		t.Fatalf("frontier has %d points, want 3: %+v", len(fr), fr)
	}
	// Sorted by server-hours ascending.
	wantNames := []string{"c", "e", "a"}
	for i, p := range fr {
		if p.Rules.Name != wantNames[i] {
			t.Fatalf("frontier[%d] = %s, want %s", i, p.Rules.Name, wantNames[i])
		}
	}
	if fr := ParetoFrontier(nil); len(fr) != 0 {
		t.Fatalf("empty frontier got %d points", len(fr))
	}
}

func TestEvaluateScoring(t *testing.T) {
	res := &experiments.ScenarioResult{
		Kind:       experiments.ControllerDCM,
		MeanRTSec:  []float64{0.1, 0.2, 0.9, 1.0}, // 2 of 4 within a 0.5 s SLO
		Throughput: []float64{100, 200, 300, 400},
		TierCounts: map[string][]int{
			ntier.TierApp: {2, 2, 2, 2},
			ntier.TierDB:  {1, 1, 1, 1},
			ntier.TierWeb: {1, 1, 1, 1}, // web is not a scalable tier: excluded
		},
		TotalCompleted: 900,
		TotalErrors:    100,
	}
	ev := Evaluate("steady", res, 0.5)
	if ev.Source != "steady" || ev.Controller != "dcm" {
		t.Fatalf("identity fields wrong: %+v", ev)
	}
	// 0.5 SLO fraction x 0.9 success fraction.
	if want := 0.5 * 0.9; ev.Attainment != want {
		t.Fatalf("attainment %v, want %v", ev.Attainment, want)
	}
	if ev.ThroughputRPS != 250 {
		t.Fatalf("throughput %v, want 250", ev.ThroughputRPS)
	}
	// (2+1) servers x 4 seconds / 3600.
	if want := 12.0 / 3600; ev.ServerHours != want {
		t.Fatalf("server-hours %v, want %v", ev.ServerHours, want)
	}

	// A disposition taxonomy overrides the completed/errors ratio.
	res.Dispositions = &metrics.DispositionCounts{OK: 80, Shed: 10, TimedOut: 10}
	ev = Evaluate("steady", res, 0.5)
	if want := 0.5 * 0.8; ev.Attainment != want {
		t.Fatalf("disposition attainment %v, want %v", ev.Attainment, want)
	}
}

func TestPortfolioErrors(t *testing.T) {
	if _, err := Portfolio([]string{"steady", "steady"}, 1, false); err == nil {
		t.Fatal("duplicate scenario accepted")
	}
	if _, err := Portfolio([]string{"bogus"}, 1, false); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	all, err := Portfolio(nil, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(ScenarioNames()) {
		t.Fatalf("default portfolio has %d scenarios, want %d", len(all), len(ScenarioNames()))
	}
	for _, s := range all {
		if s.Seed != 7 || !s.Quick || s.SLOSec <= 0 {
			t.Fatalf("scenario misbuilt: %+v", s)
		}
	}
}

// mustRules builds a named default rule set for frontier fixtures.
func mustRules(name string) policy.Rules {
	r := policy.Default()
	r.Name = name
	return r
}
