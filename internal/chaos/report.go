package chaos

import (
	"fmt"
	"strings"

	"dcm/internal/metrics"
)

// AnalysisConfig parameterizes the post-hoc recovery analysis.
type AnalysisConfig struct {
	// BaselineWindowSec is how far before each fault the pre-fault
	// throughput baseline averages over (default 30 s).
	BaselineWindowSec float64
	// RecoveryWindowSec is the trailing window whose mean throughput must
	// clear the recovery bar (default 5 s).
	RecoveryWindowSec float64
	// RecoveryFraction of the baseline counts as recovered (default 0.9).
	RecoveryFraction float64
	// SLORTSeconds is the response-time SLO (default 1 s, the knee the
	// paper's Fig. 5 commentary treats as unacceptable).
	SLORTSeconds float64
}

// withDefaults fills zero fields.
func (c AnalysisConfig) withDefaults() AnalysisConfig {
	if c.BaselineWindowSec <= 0 {
		c.BaselineWindowSec = 30
	}
	if c.RecoveryWindowSec <= 0 {
		c.RecoveryWindowSec = 5
	}
	if c.RecoveryFraction <= 0 || c.RecoveryFraction > 1 {
		c.RecoveryFraction = 0.9
	}
	if c.SLORTSeconds <= 0 {
		c.SLORTSeconds = 1
	}
	return c
}

// Input is the measured run a Report is computed from: aligned per-second
// series (Seconds is the time axis; gaps in it are monitoring blackouts)
// plus the totals the simulator counted directly.
type Input struct {
	Schedule        Schedule
	Injections      []Injection
	Seconds         []float64
	Throughput      []float64
	MeanRTSec       []float64
	ErroredRequests uint64
}

// FaultReport is the recovery verdict for one fault.
type FaultReport struct {
	Fault Fault `json:"fault"`
	// BaselineThroughput is the mean throughput over the window before
	// injection.
	BaselineThroughput float64 `json:"baselineThroughput"`
	// Impacted reports whether throughput measurably dipped below the
	// recovery bar after injection.
	Impacted bool `json:"impacted"`
	// Recovered reports whether throughput returned to the bar before the
	// run ended (vacuously true when the fault had no measurable impact).
	Recovered bool `json:"recovered"`
	// TTRSeconds is the time from injection until the trailing-window
	// throughput first re-cleared the bar after the dip; 0 when the fault
	// had no measurable impact, -1 when the run ended still degraded.
	TTRSeconds float64 `json:"ttrSeconds"`
}

// Report aggregates a chaos run.
type Report struct {
	Scenario string        `json:"scenario"`
	Faults   []FaultReport `json:"faults"`
	// SLOViolationSeconds is how long the system's mean response time
	// exceeded the SLO.
	SLOViolationSeconds float64 `json:"sloViolationSeconds"`
	// BlindSeconds is how long the monitoring pipeline published nothing
	// (gaps in the per-second series).
	BlindSeconds float64 `json:"blindSeconds"`
	// ErroredRequests counts requests the application failed — counted at
	// the injection point, so blackouts cannot hide them.
	ErroredRequests uint64      `json:"erroredRequests"`
	Injections      []Injection `json:"injections,omitempty"`
}

// Analyze computes the chaos report for a finished run.
func Analyze(in Input, cfg AnalysisConfig) Report {
	cfg = cfg.withDefaults()
	rep := Report{
		Scenario:        in.Schedule.Name,
		ErroredRequests: in.ErroredRequests,
		Injections:      in.Injections,
	}
	for _, f := range in.Schedule.sorted() {
		rep.Faults = append(rep.Faults, analyzeFault(f, in, cfg))
	}
	rep.SLOViolationSeconds = sloViolation(in, cfg)
	rep.BlindSeconds = blindSeconds(in.Seconds)
	return rep
}

// windowMean averages v over axis points in [from, to).
func windowMean(axis, v []float64, from, to float64) (float64, bool) {
	sum, n := 0.0, 0
	for i, t := range axis {
		if t >= from && t < to && i < len(v) {
			sum += v[i]
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// analyzeFault computes one fault's baseline/impact/recovery verdict.
func analyzeFault(f Fault, in Input, cfg AnalysisConfig) FaultReport {
	at := f.At.Seconds()
	fr := FaultReport{Fault: f}
	baseline, ok := windowMean(in.Seconds, in.Throughput, at-cfg.BaselineWindowSec, at)
	if !ok || baseline <= 0 {
		// No pre-fault traffic to compare against: nothing measurable.
		fr.Recovered = true
		return fr
	}
	fr.BaselineThroughput = baseline
	bar := cfg.RecoveryFraction * baseline

	// Walk forward from the injection: the first trailing window below the
	// bar marks impact, the first window back at the bar after that marks
	// recovery.
	for _, t := range in.Seconds {
		if t < at {
			continue
		}
		mean, ok := windowMean(in.Seconds, in.Throughput, t-cfg.RecoveryWindowSec, t+1e-9)
		if !ok {
			continue
		}
		if !fr.Impacted {
			if mean < bar {
				fr.Impacted = true
			}
			continue
		}
		if mean >= bar {
			fr.Recovered = true
			fr.TTRSeconds = t - at
			return fr
		}
	}
	if !fr.Impacted {
		fr.Recovered = true // never dipped
		return fr
	}
	fr.TTRSeconds = -1 // run ended still degraded
	return fr
}

// sloViolation sums the seconds whose mean RT exceeded the SLO.
func sloViolation(in Input, cfg AnalysisConfig) float64 {
	spacing := axisSpacing(in.Seconds)
	total := 0.0
	for i, rt := range in.MeanRTSec {
		if i < len(in.Seconds) && rt > cfg.SLORTSeconds {
			total += spacing
		}
	}
	return total
}

// blindSeconds sums the axis gaps larger than the nominal spacing —
// stretches where monitoring published nothing.
func blindSeconds(axis []float64) float64 {
	spacing := axisSpacing(axis)
	total := 0.0
	for i := 1; i < len(axis); i++ {
		if gap := axis[i] - axis[i-1]; gap > 1.5*spacing {
			total += gap - spacing
		}
	}
	return total
}

// axisSpacing estimates the nominal sample spacing (the smallest positive
// gap; 1 s when the axis is too short to tell).
func axisSpacing(axis []float64) float64 {
	spacing := 0.0
	for i := 1; i < len(axis); i++ {
		if gap := axis[i] - axis[i-1]; gap > 0 && (spacing == 0 || gap < spacing) {
			spacing = gap
		}
	}
	if spacing == 0 {
		return 1
	}
	return spacing
}

// Render formats the report as a text table for CLI output.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos report: %s\n\n", r.Scenario)
	t := metrics.NewTable("fault", "baseline tp", "impacted", "recovered", "TTR")
	for _, fr := range r.Faults {
		ttr := "n/a"
		switch {
		case fr.TTRSeconds > 0:
			ttr = fmt.Sprintf("%.0fs", fr.TTRSeconds)
		case fr.TTRSeconds < 0:
			ttr = "never"
		case fr.Impacted:
			ttr = "0s"
		}
		t.AddRow(
			fr.Fault.String(),
			fmt.Sprintf("%.0f req/s", fr.BaselineThroughput),
			fmt.Sprintf("%v", fr.Impacted),
			fmt.Sprintf("%v", fr.Recovered),
			ttr,
		)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nSLO violation: %.0f s   monitoring blind: %.0f s   errored requests: %d\n",
		r.SLOViolationSeconds, r.BlindSeconds, r.ErroredRequests)
	return b.String()
}
