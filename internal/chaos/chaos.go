// Package chaos implements a seed-deterministic fault-injection engine
// for the DCM simulator. A declarative fault schedule — built from the Go
// API or parsed from a JSON scenario file — is compiled into sim.Engine
// events that perturb the substrate the way real clouds fail: VMs crash,
// instances boot slowly, nodes degrade, connection pools leak, and the
// monitoring pipeline goes dark.
//
// Cloud simulators in the related work (CloudSim, CloudNativeSim) treat
// failure modeling as a first-class simulation concern; this package does
// the same for the paper's two-level concurrency controller, which was
// only ever evaluated on a healthy testbed. Every fault draws from an
// rng.Rand split (Split("chaos/...")), so identical seeds replay
// identical failure traces — the property the determinism regression
// tests pin.
package chaos

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dcm/internal/ntier"
)

// Kind identifies a fault type.
type Kind string

// Fault kinds.
const (
	// KindVMCrash abruptly terminates a ready VM: the server is torn out
	// of the load balancer, queued and in-flight requests on it are
	// errored, and the hypervisor records the crash for the controller's
	// census.
	KindVMCrash Kind = "vm-crash"
	// KindSlowBoot multiplies the hypervisor's preparation period for
	// every launch inside the window — a degraded image store or
	// congested datacenter.
	KindSlowBoot Kind = "slow-boot"
	// KindDegrade inflates one server's Equation 5 base service time S0
	// by a factor for the window — a noisy neighbour or failing disk.
	KindDegrade Kind = "degraded-server"
	// KindConnLeak consumes k connections from one Tomcat's DB connection
	// pool until repaired — an application bug that never returns
	// connections.
	KindConnLeak Kind = "conn-leak"
	// KindBlackout suppresses all monitoring samples for the window,
	// forcing the controller to act (or refuse to act) on stale data.
	KindBlackout Kind = "monitor-blackout"
)

// Kinds lists all fault kinds.
func Kinds() []Kind {
	return []Kind{KindVMCrash, KindSlowBoot, KindDegrade, KindConnLeak, KindBlackout}
}

// Fault is one declarative fault.
type Fault struct {
	// Kind selects the fault type.
	Kind Kind `json:"kind"`
	// At is the injection time.
	At time.Duration `json:"at"`
	// Duration is the fault window for window faults (slow-boot, degrade,
	// blackout) and the time-to-repair for conn-leak (0 = never
	// repaired). Ignored by vm-crash.
	Duration time.Duration `json:"duration,omitempty"`
	// Tier targets a tier (vm-crash, degraded-server, conn-leak; the
	// latter implies the app tier when empty).
	Tier string `json:"tier,omitempty"`
	// VM names an explicit victim; empty picks one deterministically from
	// the fault's rng split.
	VM string `json:"vm,omitempty"`
	// Factor is the slow-boot prep multiplier or the degrade S0 factor.
	Factor float64 `json:"factor,omitempty"`
	// Count is the number of connections a conn-leak consumes.
	Count int `json:"count,omitempty"`
}

// String renders the fault compactly for logs and reports.
func (f Fault) String() string {
	switch f.Kind {
	case KindVMCrash:
		target := f.VM
		if target == "" {
			target = f.Tier
		}
		return fmt.Sprintf("%s@%v %s", f.Kind, f.At, target)
	case KindSlowBoot:
		return fmt.Sprintf("%s@%v x%.1f for %v", f.Kind, f.At, f.Factor, f.Duration)
	case KindDegrade:
		return fmt.Sprintf("%s@%v %s x%.1f for %v", f.Kind, f.At, f.Tier, f.Factor, f.Duration)
	case KindConnLeak:
		return fmt.Sprintf("%s@%v %s k=%d for %v", f.Kind, f.At, f.Tier, f.Count, f.Duration)
	case KindBlackout:
		return fmt.Sprintf("%s@%v for %v", f.Kind, f.At, f.Duration)
	default:
		return fmt.Sprintf("%s@%v", f.Kind, f.At)
	}
}

// ErrBadSchedule is returned for invalid schedules.
var ErrBadSchedule = errors.New("chaos: invalid schedule")

// Schedule is a named, validated set of faults.
type Schedule struct {
	Name   string  `json:"name"`
	Faults []Fault `json:"faults"`
}

// Validate checks every fault. It returns the first problem found.
func (s Schedule) Validate() error {
	if len(s.Faults) == 0 {
		return fmt.Errorf("%w: no faults", ErrBadSchedule)
	}
	for i, f := range s.Faults {
		if err := f.validate(); err != nil {
			return fmt.Errorf("%w: fault %d (%s): %v", ErrBadSchedule, i, f.Kind, err)
		}
	}
	return nil
}

// validate checks one fault's parameters.
func (f Fault) validate() error {
	if f.At < 0 {
		return fmt.Errorf("negative injection time %v", f.At)
	}
	if f.Duration < 0 {
		return fmt.Errorf("negative duration %v", f.Duration)
	}
	switch f.Kind {
	case KindVMCrash:
		if f.Tier == "" && f.VM == "" {
			return errors.New("needs a tier or vm target")
		}
	case KindSlowBoot:
		if f.Factor <= 0 {
			return fmt.Errorf("needs a positive factor, got %v", f.Factor)
		}
		if f.Duration == 0 {
			return errors.New("needs a window duration")
		}
	case KindDegrade:
		if f.Tier == "" {
			return errors.New("needs a tier target")
		}
		if f.Factor < 1 {
			return fmt.Errorf("needs a factor >= 1, got %v", f.Factor)
		}
		if f.Duration == 0 {
			return errors.New("needs a window duration")
		}
	case KindConnLeak:
		if f.Tier != "" && f.Tier != ntier.TierApp {
			return fmt.Errorf("targets DB connection pools, which live on the app tier, not %q", f.Tier)
		}
		if f.Count < 1 {
			return fmt.Errorf("needs a positive connection count, got %d", f.Count)
		}
	case KindBlackout:
		if f.Duration == 0 {
			return errors.New("needs a window duration")
		}
	default:
		return fmt.Errorf("unknown kind %q", f.Kind)
	}
	return nil
}

// sorted returns the faults in injection order (stable for equal times,
// preserving declaration order — the same order the injector schedules
// them, so replays are exact).
func (s Schedule) sorted() []Fault {
	out := make([]Fault, len(s.Faults))
	copy(out, s.Faults)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
