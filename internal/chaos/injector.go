package chaos

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/cloud"
	"dcm/internal/monitor"
	"dcm/internal/ntier"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// Injection is one entry in the injector's audit log: a fault that fired
// (or failed to find a victim), with the resolved target.
type Injection struct {
	At     time.Duration `json:"at"`
	Kind   Kind          `json:"kind"`
	Target string        `json:"target,omitempty"`
	// Detail describes what was done ("crashed ready VM", "repair", ...).
	Detail string `json:"detail,omitempty"`
	// Skipped is set when the fault found nothing to act on (e.g. no live
	// victim in the tier at injection time).
	Skipped bool `json:"skipped,omitempty"`
}

// ErrBadInjector is returned for invalid construction.
var ErrBadInjector = errors.New("chaos: invalid injector")

// Injector compiles a Schedule into engine events against a running
// topology. Construct it after the app/hypervisor/fleet exist but before
// eng.Run; Install schedules every fault.
type Injector struct {
	eng   *sim.Engine
	app   *ntier.App
	hv    *cloud.Hypervisor
	fleet *monitor.Fleet
	sched Schedule

	// rands holds one decorrelated stream per fault, split up front in
	// declaration order so victim draws are independent of execution
	// interleaving.
	rands []*rng.Rand

	log           []Injection
	slowBootDepth int
	blackoutDepth int
	installed     bool
}

// NewInjector validates the schedule and prepares per-fault rng splits.
// rnd is the scenario's root stream; each fault i of kind k draws from
// Split("chaos/<i>/<k>"), so adding a fault never perturbs the draws of
// the ones before it.
func NewInjector(eng *sim.Engine, rnd *rng.Rand, app *ntier.App, hv *cloud.Hypervisor, fleet *monitor.Fleet, sched Schedule) (*Injector, error) {
	if eng == nil || rnd == nil || app == nil || hv == nil {
		return nil, fmt.Errorf("%w: nil dependency", ErrBadInjector)
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{eng: eng, app: app, hv: hv, fleet: fleet, sched: sched}
	in.rands = make([]*rng.Rand, len(sched.Faults))
	for i, f := range sched.Faults {
		in.rands[i] = rnd.Split(fmt.Sprintf("chaos/%d/%s", i, f.Kind))
	}
	return in, nil
}

// Schedule returns the installed schedule.
func (in *Injector) Schedule() Schedule { return in.sched }

// Install schedules every fault on the engine in one batch. Install is
// idempotent.
func (in *Injector) Install() {
	if in.installed {
		return
	}
	in.installed = true
	now := in.eng.Now()
	items := make([]sim.BatchItem, len(in.sched.Faults))
	for i, f := range in.sched.Faults {
		i, f := i, f
		items[i] = sim.BatchItem{At: now + f.At, Fn: func() { in.inject(i, f) }}
	}
	in.eng.ScheduleBatch(items)
}

// Log returns a copy of the injection audit log.
func (in *Injector) Log() []Injection {
	out := make([]Injection, len(in.log))
	copy(out, in.log)
	return out
}

// record appends one audit entry.
func (in *Injector) record(f Fault, target, detail string, skipped bool) {
	in.log = append(in.log, Injection{
		At:      in.eng.Now(),
		Kind:    f.Kind,
		Target:  target,
		Detail:  detail,
		Skipped: skipped,
	})
}

// inject fires fault i now.
func (in *Injector) inject(i int, f Fault) {
	switch f.Kind {
	case KindVMCrash:
		in.injectCrash(i, f)
	case KindSlowBoot:
		in.injectSlowBoot(f)
	case KindDegrade:
		in.injectDegrade(i, f)
	case KindConnLeak:
		in.injectConnLeak(i, f)
	case KindBlackout:
		in.injectBlackout(f)
	}
}

// injectCrash kills one VM. Hypervisor-managed victims go through
// hv.Crash so the census and the VM-agent's OnCrash teardown fire;
// servers the app was seeded with directly (no hypervisor record) are
// failed in place.
func (in *Injector) injectCrash(i int, f Fault) {
	// An explicitly named victim.
	if f.VM != "" {
		if vm, err := in.hv.Get(f.VM); err == nil {
			if err := in.hv.Crash(vm); err != nil {
				in.record(f, f.VM, err.Error(), true)
				return
			}
			in.record(f, f.VM, "crashed "+vm.CrashedFrom().String()+" VM", false)
			return
		}
		in.failAppServer(f, f.Tier, f.VM)
		return
	}

	// Tier-targeted: prefer a ready hypervisor VM, drawn uniformly from
	// the fault's own stream.
	var ready []*cloud.VM
	for _, vm := range in.hv.Live(f.Tier) {
		if vm.State() == cloud.StateReady {
			ready = append(ready, vm)
		}
	}
	if len(ready) > 0 {
		vm := ready[in.rands[i].Intn(len(ready))]
		if err := in.hv.Crash(vm); err != nil {
			in.record(f, vm.Name(), err.Error(), true)
			return
		}
		in.record(f, vm.Name(), "crashed ready VM", false)
		return
	}
	// No hypervisor-managed capacity: fall back to the app's accepting
	// members (seed servers added before any scale-out).
	var names []string
	for _, m := range in.app.Members(f.Tier) {
		if m.Accepting() {
			names = append(names, m.Name())
		}
	}
	if len(names) == 0 {
		in.record(f, f.Tier, "no live victim in tier", true)
		return
	}
	in.failAppServer(f, f.Tier, names[in.rands[i].Intn(len(names))])
}

// failAppServer crashes a server the hypervisor does not manage: tear it
// out of the load balancer (erroring queued and in-flight work) and stop
// monitoring it.
func (in *Injector) failAppServer(f Fault, tierName, name string) {
	tiers := []string{tierName}
	if tierName == "" {
		tiers = ntier.Tiers()
	}
	for _, t := range tiers {
		if err := in.app.FailServer(t, name); err == nil {
			if in.fleet != nil {
				in.fleet.Detach(name)
			}
			in.record(f, name, "crashed app server", false)
			return
		}
	}
	in.record(f, name, "no such server", true)
}

// injectSlowBoot raises the hypervisor prep factor for the window.
// Overlapping windows nest: the factor only returns to 1 when the last
// window closes, and a wider overlapping factor wins while it is active.
func (in *Injector) injectSlowBoot(f Fault) {
	in.slowBootDepth++
	if f.Factor > in.hv.PrepFactor() || in.slowBootDepth == 1 {
		in.hv.SetPrepFactor(f.Factor)
	}
	in.record(f, "", fmt.Sprintf("prep factor x%g", in.hv.PrepFactor()), false)
	in.eng.Schedule(f.Duration, func() {
		in.slowBootDepth--
		if in.slowBootDepth == 0 {
			in.hv.SetPrepFactor(1)
			in.record(f, "", "repair: prep factor x1", false)
		}
	})
}

// injectDegrade inflates one server's base service time for the window.
func (in *Injector) injectDegrade(i int, f Fault) {
	var victims []*ntier.Member
	for _, m := range in.app.Members(f.Tier) {
		if m.Accepting() {
			victims = append(victims, m)
		}
	}
	if len(victims) == 0 {
		in.record(f, f.Tier, "no live victim in tier", true)
		return
	}
	m, ok := in.pick(victims, f.VM, in.rands[i])
	if !ok {
		in.record(f, f.VM, "no such server", true)
		return
	}
	srv := m.Server()
	srv.SetDegradeFactor(f.Factor)
	in.record(f, m.Name(), fmt.Sprintf("degraded S0 x%g", f.Factor), false)
	in.eng.Schedule(f.Duration, func() {
		srv.SetDegradeFactor(1)
		in.record(f, m.Name(), "repair: degrade cleared", false)
	})
}

// pick selects the named victim, or draws one uniformly when no name was
// given.
func (in *Injector) pick(victims []*ntier.Member, name string, rnd *rng.Rand) (*ntier.Member, bool) {
	if name == "" {
		return victims[rnd.Intn(len(victims))], true
	}
	for _, m := range victims {
		if m.Name() == name {
			return m, true
		}
	}
	return nil, false
}

// injectConnLeak consumes connections from one Tomcat's DB pool,
// repairing after Duration if one was given.
func (in *Injector) injectConnLeak(i int, f Fault) {
	var victims []*ntier.Member
	for _, m := range in.app.Members(ntier.TierApp) {
		if m.Accepting() && m.Pool() != nil {
			victims = append(victims, m)
		}
	}
	if len(victims) == 0 {
		in.record(f, ntier.TierApp, "no live victim with a pool", true)
		return
	}
	m, ok := in.pick(victims, f.VM, in.rands[i])
	if !ok {
		in.record(f, f.VM, "no such server", true)
		return
	}
	pool := m.Pool()
	pool.Leak(f.Count)
	in.record(f, m.Name(), fmt.Sprintf("leaked %d connections", f.Count), false)
	if f.Duration > 0 {
		in.eng.Schedule(f.Duration, func() {
			pool.Unleak(f.Count)
			in.record(f, m.Name(), "repair: connections restored", false)
		})
	}
}

// injectBlackout suppresses monitor publishing for the window. Overlapping
// blackouts nest: publishing resumes only when the last window closes.
func (in *Injector) injectBlackout(f Fault) {
	if in.fleet == nil {
		in.record(f, "", "no monitoring fleet", true)
		return
	}
	in.blackoutDepth++
	in.fleet.SetBlackout(true)
	in.record(f, "", "monitoring dark", false)
	in.eng.Schedule(f.Duration, func() {
		in.blackoutDepth--
		if in.blackoutDepth == 0 {
			in.fleet.SetBlackout(false)
			in.record(f, "", "repair: monitoring restored", false)
		}
	})
}
