package chaos

import (
	"errors"
	"strings"
	"testing"
)

// TestParseRejectsBadScenarios is the strict-parsing table: unknown fault
// kinds, negative times, and — crucially — unknown JSON fields must all be
// rejected with an error naming the problem, never silently dropped. A
// typoed "faktor" that decodes to a zero-factor fault is far worse than a
// parse error.
func TestParseRejectsBadScenarios(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name     string
		json     string
		wantErr  string // substring the error must mention
		badSched bool   // whether errors.Is(err, ErrBadSchedule) must hold
	}{
		{
			name:     "unknown fault kind",
			json:     `{"name":"x","faults":[{"kind":"meteor-strike","at":"10s"}]}`,
			wantErr:  "meteor-strike",
			badSched: true,
		},
		{
			name:     "negative injection time",
			json:     `{"name":"x","faults":[{"kind":"vm-crash","at":"-5s","tier":"app"}]}`,
			wantErr:  "negative injection time",
			badSched: true,
		},
		{
			name:     "negative duration",
			json:     `{"name":"x","faults":[{"kind":"degraded-server","at":"10s","duration":"-1m","tier":"app","factor":2}]}`,
			wantErr:  "negative duration",
			badSched: true,
		},
		{
			name:    "unknown fault-level field",
			json:    `{"name":"x","faults":[{"kind":"vm-crash","at":"10s","tier":"app","faktor":3}]}`,
			wantErr: "faktor",
		},
		{
			name:    "unknown top-level field",
			json:    `{"name":"x","fautls":[{"kind":"vm-crash","at":"10s","tier":"app"}]}`,
			wantErr: "fautls",
		},
		{
			name:     "empty fault list",
			json:     `{"name":"x","faults":[]}`,
			wantErr:  "no faults",
			badSched: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if tc.badSched && !errors.Is(err, ErrBadSchedule) {
				t.Fatalf("error %q is not ErrBadSchedule", err)
			}
		})
	}

	// And a valid scenario still parses.
	s, err := Parse([]byte(`{"name":"ok","faults":[{"kind":"vm-crash","at":"4m","tier":"app"}]}`))
	if err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	if s.Name != "ok" || len(s.Faults) != 1 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
}
