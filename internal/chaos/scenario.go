package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"dcm/internal/ntier"
)

// Scenario files are JSON with human-readable durations:
//
//	{
//	  "name": "tomcat-crash-midramp",
//	  "faults": [
//	    {"kind": "vm-crash", "at": "4m", "tier": "app"},
//	    {"kind": "monitor-blackout", "at": "3m30s", "duration": "45s"}
//	  ]
//	}
//
// Fault marshals to and from this form (Go durations like "4m" or "45s"),
// so schedules round-trip through files without exposing nanosecond
// integers.

// faultWire is the JSON representation of a Fault.
type faultWire struct {
	Kind     Kind    `json:"kind"`
	At       string  `json:"at"`
	Duration string  `json:"duration,omitempty"`
	Tier     string  `json:"tier,omitempty"`
	VM       string  `json:"vm,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
	Count    int     `json:"count,omitempty"`
}

// MarshalJSON implements json.Marshaler with duration strings.
func (f Fault) MarshalJSON() ([]byte, error) {
	w := faultWire{
		Kind:   f.Kind,
		At:     f.At.String(),
		Tier:   f.Tier,
		VM:     f.VM,
		Factor: f.Factor,
		Count:  f.Count,
	}
	if f.Duration != 0 {
		w.Duration = f.Duration.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler, accepting duration strings.
// Unknown fields are rejected: a typoed field name ("faktor", "kindd")
// would otherwise silently decode to a fault that does something else
// than the scenario author intended.
func (f *Fault) UnmarshalJSON(data []byte) error {
	var w faultWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("chaos: fault: %w", err)
	}
	at, err := time.ParseDuration(w.At)
	if err != nil {
		return fmt.Errorf("chaos: fault %q: bad at %q: %w", w.Kind, w.At, err)
	}
	var dur time.Duration
	if w.Duration != "" {
		dur, err = time.ParseDuration(w.Duration)
		if err != nil {
			return fmt.Errorf("chaos: fault %q: bad duration %q: %w", w.Kind, w.Duration, err)
		}
	}
	*f = Fault{
		Kind:     w.Kind,
		At:       at,
		Duration: dur,
		Tier:     w.Tier,
		VM:       w.VM,
		Factor:   w.Factor,
		Count:    w.Count,
	}
	return nil
}

// Parse decodes and validates a JSON scenario. Decoding is strict:
// unknown fields — at the top level or inside a fault — are an error, and
// Validate then rejects unknown fault kinds and negative times with a
// message naming the offending fault.
func Parse(data []byte) (Schedule, error) {
	var s Schedule
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Schedule{}, fmt.Errorf("chaos: parse scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}

// Load reads and validates a JSON scenario file.
func Load(path string) (Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: %s: %w", path, err)
	}
	return s, nil
}

// Builtin scenarios, tuned for the large-variation workload trace
// (600 s, bursts ramping at roughly 50 s, 210 s, 380 s and 520 s).
var builtins = map[string]Schedule{
	// The acceptance scenario: a Tomcat-tier VM crashes in the middle of
	// the second burst's ramp, while the tier is already scaled out and
	// loaded. The controller must census the dead capacity and
	// re-provision before the burst peak.
	"tomcat-crash-midramp": {
		Name: "tomcat-crash-midramp",
		Faults: []Fault{
			{Kind: KindVMCrash, At: 240 * time.Second, Tier: ntier.TierApp},
		},
	},
	// Every launch during the first burst takes 4x longer to become
	// ready — exercising the VM-agent's watchdog/retry path and the cost
	// of the preparation period the paper's §V-B highlights.
	"slow-boot-storm": {
		Name: "slow-boot-storm",
		Faults: []Fault{
			{Kind: KindSlowBoot, At: 40 * time.Second, Duration: 180 * time.Second, Factor: 4},
		},
	},
	// One Tomcat's base service time triples for two minutes spanning a
	// burst: a noisy neighbour the CPU thresholds must compensate for.
	"degraded-tomcat": {
		Name: "degraded-tomcat",
		Faults: []Fault{
			{Kind: KindDegrade, At: 180 * time.Second, Duration: 120 * time.Second, Tier: ntier.TierApp, Factor: 3},
		},
	},
	// A connection leak eats 60 of a Tomcat's 80 DB connections during
	// the heaviest burst, repaired after 2 minutes.
	"leaky-pool": {
		Name: "leaky-pool",
		Faults: []Fault{
			{Kind: KindConnLeak, At: 200 * time.Second, Duration: 120 * time.Second, Count: 60},
		},
	},
	// Monitoring goes dark for 45 s across a burst onset: the controller
	// must hold rather than misread silence as idleness.
	"monitor-blackout": {
		Name: "monitor-blackout",
		Faults: []Fault{
			{Kind: KindBlackout, At: 200 * time.Second, Duration: 45 * time.Second},
		},
	},
	// Everything at once, spread across the trace.
	"kitchen-sink": {
		Name: "kitchen-sink",
		Faults: []Fault{
			{Kind: KindSlowBoot, At: 40 * time.Second, Duration: 120 * time.Second, Factor: 3},
			{Kind: KindDegrade, At: 120 * time.Second, Duration: 90 * time.Second, Tier: ntier.TierApp, Factor: 2.5},
			{Kind: KindVMCrash, At: 240 * time.Second, Tier: ntier.TierApp},
			{Kind: KindConnLeak, At: 300 * time.Second, Duration: 90 * time.Second, Count: 60},
			{Kind: KindBlackout, At: 520 * time.Second, Duration: 45 * time.Second},
		},
	},
}

// Builtin returns a named bundled scenario.
func Builtin(name string) (Schedule, error) {
	s, ok := builtins[name]
	if !ok {
		return Schedule{}, fmt.Errorf("chaos: unknown builtin scenario %q (have %v)", name, BuiltinNames())
	}
	return s, nil
}

// BuiltinNames lists the bundled scenarios in sorted order.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
