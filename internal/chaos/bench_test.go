package chaos

import (
	"testing"
	"time"

	"dcm/internal/bus"
	"dcm/internal/cloud"
	"dcm/internal/monitor"
	"dcm/internal/ntier"
	"dcm/internal/rng"
	"dcm/internal/runner"
	"dcm/internal/sim"
)

// denseSchedule builds a 1000-fault schedule cycling through the window
// kinds (short overlapping windows, spread over 10 simulated minutes) —
// the engine-throughput stress case.
func denseSchedule() Schedule {
	s := Schedule{Name: "dense"}
	for i := 0; i < 1000; i++ {
		at := time.Duration(i) * 500 * time.Millisecond
		switch i % 4 {
		case 0:
			s.Faults = append(s.Faults, Fault{Kind: KindSlowBoot, At: at, Duration: 2 * time.Second, Factor: 2})
		case 1:
			s.Faults = append(s.Faults, Fault{Kind: KindDegrade, At: at, Duration: 2 * time.Second, Tier: ntier.TierApp, Factor: 1.5})
		case 2:
			s.Faults = append(s.Faults, Fault{Kind: KindConnLeak, At: at, Duration: 2 * time.Second, Count: 1})
		case 3:
			s.Faults = append(s.Faults, Fault{Kind: KindBlackout, At: at, Duration: 2 * time.Second})
		}
	}
	return s
}

// BenchmarkDenseFaultSchedule measures engine throughput with 1000 faults
// (plus their repair events) in flight over a 10-minute simulated run.
func BenchmarkDenseFaultSchedule(b *testing.B) {
	sched := denseSchedule()
	if err := sched.Validate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var processed uint64
	for i := 0; i < b.N; i++ {
		n, err := denseRun(sched, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		processed += n
	}
	b.ReportMetric(float64(processed)/float64(b.N), "events/op")
}

// denseRun executes one dense-schedule simulation and returns the number
// of engine events processed.
func denseRun(sched Schedule, seed uint64) (uint64, error) {
	eng := sim.NewEngine()
	cfg := ntier.DefaultConfig()
	cfg.AppThreads = 10
	cfg.DBConnsPerApp = 10
	app, err := ntier.New(eng, rng.New(7).Split("app"), cfg)
	if err != nil {
		return 0, err
	}
	hv := cloud.NewHypervisor(eng, 15*time.Second)
	fleet, err := monitor.NewFleet(eng, bus.New(), app, time.Second)
	if err != nil {
		return 0, err
	}
	in, err := NewInjector(eng, rng.New(seed), app, hv, fleet, sched)
	if err != nil {
		return 0, err
	}
	in.Install()
	if err := eng.Run(10 * time.Minute); err != nil {
		return 0, err
	}
	return eng.Processed(), nil
}

// BenchmarkDenseFaultScheduleParallel runs 8 independent replicas of the
// dense schedule per op through the parallel executor — the wall-clock
// profile of a multi-seed chaos sweep.
func BenchmarkDenseFaultScheduleParallel(b *testing.B) {
	sched := denseSchedule()
	if err := sched.Validate(); err != nil {
		b.Fatal(err)
	}
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = uint64(i)
	}
	b.ReportAllocs()
	var processed uint64
	for i := 0; i < b.N; i++ {
		counts, err := runner.Map(seeds, 8, func(_ int, seed uint64) (uint64, error) {
			return denseRun(sched, seed)
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range counts {
			processed += n
		}
	}
	b.ReportMetric(float64(processed)/float64(b.N*len(seeds)), "events/run")
}
