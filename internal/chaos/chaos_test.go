package chaos

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"dcm/internal/bus"
	"dcm/internal/cloud"
	"dcm/internal/monitor"
	"dcm/internal/ntier"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

func TestScheduleValidation(t *testing.T) {
	t.Parallel()
	bad := []Schedule{
		{Name: "empty"},
		{Name: "negative-at", Faults: []Fault{{Kind: KindVMCrash, At: -time.Second, Tier: "app"}}},
		{Name: "crash-no-target", Faults: []Fault{{Kind: KindVMCrash, At: 0}}},
		{Name: "slow-boot-no-factor", Faults: []Fault{{Kind: KindSlowBoot, At: 0, Duration: time.Minute}}},
		{Name: "slow-boot-no-window", Faults: []Fault{{Kind: KindSlowBoot, At: 0, Factor: 2}}},
		{Name: "degrade-no-tier", Faults: []Fault{{Kind: KindDegrade, At: 0, Factor: 2, Duration: time.Minute}}},
		{Name: "degrade-speedup", Faults: []Fault{{Kind: KindDegrade, At: 0, Tier: "app", Factor: 0.5, Duration: time.Minute}}},
		{Name: "leak-wrong-tier", Faults: []Fault{{Kind: KindConnLeak, At: 0, Tier: "db", Count: 1}}},
		{Name: "leak-no-count", Faults: []Fault{{Kind: KindConnLeak, At: 0}}},
		{Name: "blackout-no-window", Faults: []Fault{{Kind: KindBlackout, At: 0}}},
		{Name: "unknown-kind", Faults: []Fault{{Kind: "meteor-strike", At: 0}}},
	}
	for _, s := range bad {
		if err := s.Validate(); !errors.Is(err, ErrBadSchedule) {
			t.Errorf("%s: err = %v, want ErrBadSchedule", s.Name, err)
		}
	}
	good := Schedule{Name: "ok", Faults: []Fault{
		{Kind: KindVMCrash, At: time.Minute, Tier: ntier.TierApp},
		{Kind: KindSlowBoot, At: 0, Duration: time.Minute, Factor: 2},
		{Kind: KindDegrade, At: 0, Tier: ntier.TierApp, Factor: 2, Duration: time.Minute},
		{Kind: KindConnLeak, At: 0, Count: 10, Duration: time.Minute},
		{Kind: KindBlackout, At: 0, Duration: time.Minute},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	t.Parallel()
	want := Schedule{Name: "rt", Faults: []Fault{
		{Kind: KindVMCrash, At: 4 * time.Minute, Tier: ntier.TierApp},
		{Kind: KindSlowBoot, At: 40 * time.Second, Duration: 3 * time.Minute, Factor: 4},
		{Kind: KindConnLeak, At: 90 * time.Second, Count: 60},
	}}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseHumanReadableDurations(t *testing.T) {
	t.Parallel()
	s, err := Parse([]byte(`{
		"name": "file",
		"faults": [
			{"kind": "monitor-blackout", "at": "3m30s", "duration": "45s"},
			{"kind": "degraded-server", "at": "1m", "duration": "2m", "tier": "app", "factor": 3}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults[0].At != 210*time.Second || s.Faults[0].Duration != 45*time.Second {
		t.Fatalf("parsed fault 0 = %+v", s.Faults[0])
	}
	if _, err := Parse([]byte(`{"name":"bad","faults":[{"kind":"vm-crash","at":"soon","tier":"app"}]}`)); err == nil {
		t.Fatal("bad duration accepted")
	}
	if _, err := Parse([]byte(`{"name":"bad","faults":[{"kind":"vm-crash","at":"10s"}]}`)); !errors.Is(err, ErrBadSchedule) {
		t.Fatal("invalid schedule accepted")
	}
}

func TestBuiltinsAreValid(t *testing.T) {
	t.Parallel()
	names := BuiltinNames()
	if len(names) == 0 {
		t.Fatal("no builtin scenarios")
	}
	for _, name := range names {
		s, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %s invalid: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("builtin %s has Name %q", name, s.Name)
		}
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

// harness builds a minimal topology for injector tests: a 1/1/1 app, a
// hypervisor with the seed servers adopted, and a monitoring fleet.
func harness(t *testing.T) (*sim.Engine, *ntier.App, *cloud.Hypervisor, *monitor.Fleet) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := ntier.DefaultConfig()
	cfg.AppThreads = 10
	cfg.DBConnsPerApp = 10
	app, err := ntier.New(eng, rng.New(7).Split("app"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hv := cloud.NewHypervisor(eng, 15*time.Second)
	for _, tierName := range ntier.Tiers() {
		for _, m := range app.Members(tierName) {
			if _, err := hv.Adopt(m.Name(), tierName); err != nil {
				t.Fatal(err)
			}
		}
	}
	fleet, err := monitor.NewFleet(eng, bus.New(), app, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return eng, app, hv, fleet
}

func install(t *testing.T, eng *sim.Engine, app *ntier.App, hv *cloud.Hypervisor, fleet *monitor.Fleet, seed uint64, s Schedule) *Injector {
	t.Helper()
	in, err := NewInjector(eng, rng.New(seed), app, hv, fleet, s)
	if err != nil {
		t.Fatal(err)
	}
	in.Install()
	return in
}

func TestInjectVMCrash(t *testing.T) {
	t.Parallel()
	eng, app, hv, fleet := harness(t)
	s := Schedule{Name: "crash", Faults: []Fault{
		{Kind: KindVMCrash, At: 10 * time.Second, Tier: ntier.TierApp},
	}}
	in := install(t, eng, app, hv, fleet, 1, s)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := hv.CountCrashedServing(ntier.TierApp); got != 1 {
		t.Fatalf("CountCrashedServing = %d", got)
	}
	log := in.Log()
	if len(log) != 1 || log[0].Skipped || log[0].Target != "app-1" {
		t.Fatalf("injection log = %+v", log)
	}
	if log[0].At != 10*time.Second {
		t.Fatalf("injection at %v", log[0].At)
	}
}

func TestInjectVMCrashExplicitVictim(t *testing.T) {
	t.Parallel()
	eng, app, hv, fleet := harness(t)
	s := Schedule{Name: "crash", Faults: []Fault{
		{Kind: KindVMCrash, At: time.Second, VM: "db-1"},
	}}
	install(t, eng, app, hv, fleet, 1, s)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	vm, err := hv.Get("db-1")
	if err != nil {
		t.Fatal(err)
	}
	if vm.State() != cloud.StateCrashed {
		t.Fatalf("db-1 state = %v", vm.State())
	}
}

func TestInjectSlowBootWindow(t *testing.T) {
	t.Parallel()
	eng, app, hv, fleet := harness(t)
	s := Schedule{Name: "slow", Faults: []Fault{
		{Kind: KindSlowBoot, At: 10 * time.Second, Duration: 20 * time.Second, Factor: 4},
	}}
	install(t, eng, app, hv, fleet, 1, s)
	factors := map[int]float64{}
	for _, sec := range []int{5, 15, 35} {
		sec := sec
		eng.Schedule(time.Duration(sec)*time.Second, func() { factors[sec] = hv.PrepFactor() })
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if factors[5] != 1 || factors[15] != 4 || factors[35] != 1 {
		t.Fatalf("prep factors over time = %v", factors)
	}
}

func TestInjectDegradeWindow(t *testing.T) {
	t.Parallel()
	eng, app, hv, fleet := harness(t)
	s := Schedule{Name: "degrade", Faults: []Fault{
		{Kind: KindDegrade, At: 10 * time.Second, Duration: 20 * time.Second, Tier: ntier.TierApp, Factor: 3},
	}}
	install(t, eng, app, hv, fleet, 1, s)
	srv := app.Members(ntier.TierApp)[0].Server()
	factors := map[int]float64{}
	for _, sec := range []int{5, 15, 35} {
		sec := sec
		eng.Schedule(time.Duration(sec)*time.Second, func() { factors[sec] = srv.DegradeFactor() })
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if factors[5] != 1 || factors[15] != 3 || factors[35] != 1 {
		t.Fatalf("degrade factors over time = %v", factors)
	}
}

func TestInjectConnLeakWindow(t *testing.T) {
	t.Parallel()
	eng, app, hv, fleet := harness(t)
	s := Schedule{Name: "leak", Faults: []Fault{
		{Kind: KindConnLeak, At: 10 * time.Second, Duration: 20 * time.Second, Count: 6},
	}}
	install(t, eng, app, hv, fleet, 1, s)
	pool := app.Members(ntier.TierApp)[0].Pool()
	leaked := map[int]int{}
	for _, sec := range []int{5, 15, 35} {
		sec := sec
		eng.Schedule(time.Duration(sec)*time.Second, func() { leaked[sec] = pool.Leaked() })
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if leaked[5] != 0 || leaked[15] != 6 || leaked[35] != 0 {
		t.Fatalf("leaked over time = %v", leaked)
	}
}

func TestInjectConnLeakPermanent(t *testing.T) {
	t.Parallel()
	eng, app, hv, fleet := harness(t)
	s := Schedule{Name: "leak", Faults: []Fault{
		{Kind: KindConnLeak, At: 10 * time.Second, Count: 4}, // no Duration: never repaired
	}}
	install(t, eng, app, hv, fleet, 1, s)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := app.Members(ntier.TierApp)[0].Pool().Leaked(); got != 4 {
		t.Fatalf("leaked = %d at end of run", got)
	}
}

func TestInjectBlackoutNests(t *testing.T) {
	t.Parallel()
	eng, app, hv, fleet := harness(t)
	// Two overlapping windows: 10..30 and 20..40. Monitoring must stay
	// dark until the LAST window closes.
	s := Schedule{Name: "dark", Faults: []Fault{
		{Kind: KindBlackout, At: 10 * time.Second, Duration: 20 * time.Second},
		{Kind: KindBlackout, At: 20 * time.Second, Duration: 20 * time.Second},
	}}
	install(t, eng, app, hv, fleet, 1, s)
	dark := map[int]bool{}
	for _, sec := range []int{5, 15, 25, 35, 45} {
		sec := sec
		eng.Schedule(time.Duration(sec)*time.Second, func() { dark[sec] = fleet.Blackout() })
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{5: false, 15: true, 25: true, 35: true, 45: false}
	if !reflect.DeepEqual(dark, want) {
		t.Fatalf("blackout over time = %v, want %v", dark, want)
	}
}

func TestInjectorDeterministicVictims(t *testing.T) {
	t.Parallel()
	// Three ready app VMs; a tier-targeted crash must pick the same victim
	// for the same seed, across fresh topologies.
	run := func(seed uint64) []Injection {
		eng, app, hv, fleet := harness(t)
		for _, name := range []string{"app-2", "app-3"} {
			name := name
			if _, err := hv.Launch(name, ntier.TierApp, func(*cloud.VM) {
				if _, err := app.AddServer(ntier.TierApp, name); err != nil {
					t.Error(err)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		s := Schedule{Name: "crash", Faults: []Fault{
			{Kind: KindVMCrash, At: 30 * time.Second, Tier: ntier.TierApp},
		}}
		in := install(t, eng, app, hv, fleet, seed, s)
		if err := eng.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		return in.Log()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different injections:\n %+v\n %+v", a, b)
	}
	if a[0].Skipped {
		t.Fatalf("injection skipped: %+v", a[0])
	}
}

func TestAnalyzeRecovery(t *testing.T) {
	t.Parallel()
	// Synthetic run: steady 100 req/s, dip to 20 during seconds 50..64,
	// back to 100 from 65 on. Fault at t=50.
	in := Input{
		Schedule: Schedule{Name: "synthetic", Faults: []Fault{
			{Kind: KindVMCrash, At: 50 * time.Second, Tier: ntier.TierApp},
		}},
	}
	for sec := 1; sec <= 120; sec++ {
		tp := 100.0
		if sec >= 50 && sec < 65 {
			tp = 20
		}
		rt := 0.1
		if sec >= 50 && sec < 60 {
			rt = 2.5 // ten seconds above the 1s SLO
		}
		in.Seconds = append(in.Seconds, float64(sec))
		in.Throughput = append(in.Throughput, tp)
		in.MeanRTSec = append(in.MeanRTSec, rt)
	}
	rep := Analyze(in, AnalysisConfig{})
	if len(rep.Faults) != 1 {
		t.Fatalf("fault reports = %d", len(rep.Faults))
	}
	fr := rep.Faults[0]
	if fr.BaselineThroughput != 100 {
		t.Fatalf("baseline = %v", fr.BaselineThroughput)
	}
	if !fr.Impacted || !fr.Recovered {
		t.Fatalf("impacted = %v, recovered = %v", fr.Impacted, fr.Recovered)
	}
	// Throughput returns at t=65 but the trailing 5s window still holds
	// dip seconds until t=69: TTR lands in (15, 25).
	if fr.TTRSeconds <= 15 || fr.TTRSeconds > 25 {
		t.Fatalf("TTR = %v s", fr.TTRSeconds)
	}
	if rep.SLOViolationSeconds != 10 {
		t.Fatalf("SLO violation seconds = %v", rep.SLOViolationSeconds)
	}
	if rep.BlindSeconds != 0 {
		t.Fatalf("blind seconds = %v", rep.BlindSeconds)
	}
}

func TestAnalyzeUnrecovered(t *testing.T) {
	t.Parallel()
	in := Input{
		Schedule: Schedule{Name: "dead", Faults: []Fault{
			{Kind: KindVMCrash, At: 30 * time.Second, Tier: ntier.TierApp},
		}},
	}
	for sec := 1; sec <= 90; sec++ {
		tp := 100.0
		if sec >= 30 {
			tp = 0 // never comes back
		}
		in.Seconds = append(in.Seconds, float64(sec))
		in.Throughput = append(in.Throughput, tp)
		in.MeanRTSec = append(in.MeanRTSec, 0.1)
	}
	rep := Analyze(in, AnalysisConfig{})
	fr := rep.Faults[0]
	if !fr.Impacted || fr.Recovered || fr.TTRSeconds != -1 {
		t.Fatalf("verdict = %+v", fr)
	}
}

func TestAnalyzeBlindSeconds(t *testing.T) {
	t.Parallel()
	in := Input{Schedule: Schedule{Name: "dark", Faults: []Fault{
		{Kind: KindBlackout, At: 10 * time.Second, Duration: 20 * time.Second},
	}}}
	// 1s samples with a 20-second hole at 11..30.
	for sec := 1; sec <= 60; sec++ {
		if sec > 10 && sec <= 30 {
			continue
		}
		in.Seconds = append(in.Seconds, float64(sec))
		in.Throughput = append(in.Throughput, 100)
		in.MeanRTSec = append(in.MeanRTSec, 0.1)
	}
	rep := Analyze(in, AnalysisConfig{})
	if rep.BlindSeconds != 20 {
		t.Fatalf("blind seconds = %v, want 20", rep.BlindSeconds)
	}
}
