package graph

import "math"

// Brownout hooks: the actuation surface internal/degrade drives. All of
// it is deterministic and rng-free — the shed decision uses an
// error-diffusion accumulator, the admission scaling rounds up — so a
// supervisor that never fires leaves a run byte-identical to one that was
// never attached.

// SetBrownoutShed sets the front-door shed ratio in [0, 1] applied to
// best-effort (non-critical) arrivals. Zero disables the shed and resets
// the diffusion accumulator so a later brownout starts from a clean
// phase.
func (a *App) SetBrownoutShed(ratio float64) {
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	a.brownoutShed = ratio
	if ratio == 0 {
		a.brownoutAcc = 0
	}
}

// BrownoutShed returns the live front-door shed ratio.
func (a *App) BrownoutShed() float64 { return a.brownoutShed }

// brownoutTake decides one arrival: the accumulator gains the shed ratio
// per arrival and sheds on every whole token, so a ratio of 0.5 sheds
// exactly every second best-effort request — deterministic, no rng.
func (a *App) brownoutTake() bool {
	a.brownoutAcc += a.brownoutShed
	if a.brownoutAcc >= 1 {
		a.brownoutAcc--
		return true
	}
	return false
}

// BrownoutSheds returns the lifetime count of brownout front-door sheds
// (a subset of the Shed disposition tally).
func (a *App) BrownoutSheds() uint64 { return a.brownoutSheds }

// ScaleAdmission multiplies every bounded queue's admission cap by f
// (clamped to [0, 1]; 1 restores the configured cap). Servers keep at
// least a cap of 1 so a node never becomes a total blackhole, and
// requests already queued above a shrunken cap are grandfathered by the
// server until the backlog drains. A no-op when the resilience config has
// no bounded queues.
func (a *App) ScaleAdmission(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	a.admissionScale = f
	if a.res.MaxQueue <= 0 {
		return
	}
	cap := a.scaledMaxQueue()
	for _, n := range a.nodes {
		for _, m := range a.Members(n.spec.Name) {
			m.srv.SetMaxQueue(cap)
		}
	}
}

// scaledMaxQueue is the admission cap under the live scale, never below 1.
func (a *App) scaledMaxQueue() int {
	cap := int(math.Ceil(float64(a.res.MaxQueue) * a.admissionScale))
	if cap < 1 {
		cap = 1
	}
	return cap
}
