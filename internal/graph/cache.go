package graph

// lruCache is a fixed-capacity LRU set over uint64 keys — the cache-tier
// node's hit/miss engine. Intrusive doubly-linked list over a map; O(1)
// access.
type lruCache struct {
	cap     int
	entries map[uint64]*lruEntry
	head    *lruEntry // most recently used
	tail    *lruEntry // least recently used
}

type lruEntry struct {
	key        uint64
	prev, next *lruEntry
}

// newLRUCache builds an empty cache holding at most capacity keys.
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		entries: make(map[uint64]*lruEntry, capacity),
	}
}

// Access touches key, reporting whether it was resident (a hit). A miss
// inserts the key, evicting the least recently used entry at capacity —
// read-through semantics: after the miss the downstream fetch fills it.
func (c *lruCache) Access(key uint64) bool {
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		return true
	}
	e := &lruEntry{key: key}
	c.entries[key] = e
	c.pushFront(e)
	if len(c.entries) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
	}
	return false
}

// Len returns the number of resident keys.
func (c *lruCache) Len() int { return len(c.entries) }

func (c *lruCache) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lruCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lruCache) moveToFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// cacheLookup performs one lookup at a cache node: with an LRU configured
// the key is drawn uniformly from the node's key space and checked for
// residence; otherwise the configured hit ratio is sampled directly.
// Exactly one rng draw either way.
func (a *App) cacheLookup(n *node) bool {
	var hit bool
	if n.lru != nil {
		key := a.rnd.Uint64() % uint64(n.spec.KeySpace)
		hit = n.lru.Access(key)
	} else {
		hit = a.rnd.Float64() < n.spec.HitRatio
	}
	if hit {
		n.hits++
	} else {
		n.misses++
	}
	return hit
}
