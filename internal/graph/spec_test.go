package graph

import (
	"errors"
	"strings"
	"testing"

	"dcm/internal/model"
)

func testModel() model.Params {
	return model.Params{S0: 1e-3, Alpha: 1e-5, Beta: 1e-7, Gamma: 1}
}

// minimalSpec is a valid two-node serial topology tests mutate.
func minimalSpec() Spec {
	return Spec{
		Name:  "mini",
		Entry: "a",
		Nodes: []NodeSpec{
			{Name: "a", Model: testModel(), Threads: 4},
			{Name: "b", Model: testModel(), Threads: 2},
		},
		Edges: []EdgeSpec{{From: "a", To: "b", Visits: 1}},
	}
}

func TestSpecValidateAcceptsTopologies(t *testing.T) {
	t.Parallel()
	diamond := Spec{
		Name:  "diamond",
		Entry: "e",
		Nodes: []NodeSpec{
			{Name: "e", Model: testModel(), Threads: 4},
			{Name: "l", Model: testModel(), Threads: 2},
			{Name: "r", Model: testModel(), Threads: 2},
			{Name: "s", Model: testModel(), Threads: 2},
		},
		Edges: []EdgeSpec{
			{From: "e", To: "l", Visits: 1},
			{From: "e", To: "r", Kind: EdgeParallel, Visits: 2},
			{From: "l", To: "s", Visits: 1, PoolSize: 2},
			{From: "r", To: "s", Visits: 1},
		},
	}
	for _, s := range []Spec{minimalSpec(), diamond} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// TestSpecValidateErrorClasses pins each structural failure to its
// sentinel error: topology loaders branch on these with errors.Is.
func TestSpecValidateErrorClasses(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   error
	}{
		{"no-nodes", func(s *Spec) { s.Nodes = nil }, ErrBadSpec},
		{"unnamed-node", func(s *Spec) { s.Nodes[1].Name = "" }, ErrBadSpec},
		{"duplicate-node", func(s *Spec) { s.Nodes[1].Name = "a" }, ErrBadSpec},
		{"zero-threads", func(s *Spec) { s.Nodes[1].Threads = 0 }, ErrBadSpec},
		{"negative-replicas", func(s *Spec) { s.Nodes[0].Replicas = -1 }, ErrBadSpec},
		{"bad-kind", func(s *Spec) { s.Nodes[1].Kind = "proxy" }, ErrBadSpec},
		{"bad-distribution", func(s *Spec) { s.Nodes[1].Distribution = "pareto" }, ErrBadSpec},
		{"bad-model", func(s *Spec) { s.Nodes[0].Model = model.Params{} }, ErrBadSpec},
		{"cache-lru-half-configured", func(s *Spec) {
			s.Nodes[1].Kind = KindCache
			s.Nodes[1].CacheSize = 10
		}, ErrBadSpec},
		{"cache-bad-hit-ratio", func(s *Spec) {
			s.Nodes[1].Kind = KindCache
			s.Nodes[1].HitRatio = 1.5
		}, ErrBadSpec},
		{"no-entry", func(s *Spec) { s.Entry = "" }, ErrBadSpec},
		{"unknown-entry", func(s *Spec) { s.Entry = "zz" }, ErrBadSpec},
		{"entry-with-in-edge", func(s *Spec) {
			s.Edges = append(s.Edges, EdgeSpec{From: "b", To: "a", Visits: 1})
		}, ErrBadSpec},
		{"dangling-from", func(s *Spec) { s.Edges[0].From = "zz" }, ErrDanglingEdge},
		{"dangling-to", func(s *Spec) { s.Edges[0].To = "zz" }, ErrDanglingEdge},
		{"self-loop", func(s *Spec) { s.Edges[0].To = "a" }, ErrCycle},
		{"duplicate-edge", func(s *Spec) {
			s.Edges = append(s.Edges, EdgeSpec{From: "a", To: "b", Visits: 2})
		}, ErrBadSpec},
		{"bad-edge-kind", func(s *Spec) { s.Edges[0].Kind = "stream" }, ErrBadSpec},
		{"async-with-pool", func(s *Spec) {
			s.Edges[0].Kind = EdgeAsync
			s.Edges[0].PoolSize = 4
		}, ErrBadSpec},
		{"negative-visits", func(s *Spec) { s.Edges[0].Visits = -1 }, ErrBadSpec},
		{"negative-pool", func(s *Spec) { s.Edges[0].PoolSize = -2 }, ErrBadSpec},
		{"cycle", func(s *Spec) {
			s.Nodes = append(s.Nodes, NodeSpec{Name: "c", Model: testModel(), Threads: 1})
			s.Edges = append(s.Edges,
				EdgeSpec{From: "b", To: "c", Visits: 1},
				EdgeSpec{From: "c", To: "b", Visits: 1})
		}, ErrCycle},
		{"unreachable", func(s *Spec) {
			s.Nodes = append(s.Nodes,
				NodeSpec{Name: "c", Model: testModel(), Threads: 1},
				NodeSpec{Name: "d", Model: testModel(), Threads: 1})
			s.Edges = append(s.Edges, EdgeSpec{From: "c", To: "d", Visits: 1})
		}, ErrUnreachable},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := minimalSpec()
			tc.mutate(&s)
			err := s.Validate()
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
			if err == nil || !strings.Contains(err.Error(), "graph:") {
				t.Fatalf("error %v lacks package prefix", err)
			}
		})
	}
}

// TestParseSpecStrictness pins the strict-JSON loading contract: unknown
// fields and trailing data are rejected, good documents round through.
func TestParseSpecStrictness(t *testing.T) {
	t.Parallel()
	good := `{
	  "name": "ok", "entry": "a",
	  "nodes": [
	    {"name": "a", "model": {"s0": 0.001, "gamma": 1}, "threads": 2},
	    {"name": "b", "model": {"s0": 0.001, "gamma": 1}, "threads": 2}
	  ],
	  "edges": [{"from": "a", "to": "b", "visits": 1}]
	}`
	if _, err := ParseSpec([]byte(good)); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	bad := []struct {
		name string
		doc  string
	}{
		{"unknown-top-level", strings.Replace(good, `"name": "ok"`, `"name": "ok", "bogus": 1`, 1)},
		{"unknown-node-field", strings.Replace(good, `"threads": 2},`, `"threads": 2, "paekRate": 3},`, 1)},
		{"unknown-edge-field", strings.Replace(good, `"visits": 1}`, `"visits": 1, "wieght": 2}`, 1)},
		{"trailing-data", good + `{"second": "doc"}`},
		{"not-json", "entry: a"},
	}
	for _, tc := range bad {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if _, err := ParseSpec([]byte(tc.doc)); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("ParseSpec accepted %s (err %v)", tc.name, err)
			}
		})
	}
}

// TestLoadSpecFiles loads the checked-in topologies through the file
// loader, and pins the missing-file failure to ErrBadSpec.
func TestLoadSpecFiles(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"chain3", "fanout5", "cache3", "diamond4"} {
		s, err := LoadSpec("../../topologies/" + name + ".json")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("%s.json declares name %q", name, s.Name)
		}
	}
	if _, err := LoadSpec("../../topologies/nope.json"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("missing file error %v, want ErrBadSpec", err)
	}
}
