package graph

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/metrics"
)

// Profile is one request class's demand shape over the graph: a demand
// multiplier per node (1.0 = the node's base S0) and a visit-ratio
// override per edge. Profiles appear in two roles: as a weighted Mix the
// application draws from per request (the servlet mix of §II-A), and as
// the demand shape of an injected traffic Class.
type Profile struct {
	// Name identifies the profile (e.g. "ViewStory").
	Name string `json:"name"`
	// Weight is the profile's relative share when used in a mix.
	Weight float64 `json:"weight,omitempty"`
	// NodeDemand scales each named node's base work (absent = 1.0).
	NodeDemand map[string]float64 `json:"nodeDemand,omitempty"`
	// EdgeVisits overrides the named edge's visit ratio, keyed "from->to"
	// (absent = the edge's configured default).
	EdgeVisits map[string]int `json:"edgeVisits,omitempty"`
}

// Class is one traffic class of a class-mixed workload: a named slice of
// the request stream with its own admission priority, goodput SLO and
// demand profile, injected by index through InjectClass.
type Class struct {
	// Name identifies the class (e.g. "premium").
	Name string `json:"name"`
	// Priority > 0 marks the class critical: never brownout- or
	// CoDel-shed. Bounded-queue rejection and deadlines still apply.
	Priority int `json:"priority,omitempty"`
	// SLO is the class's goodput threshold; zero falls back to the
	// resilience config's global SLA.
	SLO time.Duration `json:"slo,omitempty"`
	// Profile is the class's demand shape (Weight is ignored).
	Profile Profile `json:"profile"`
}

// Profile and class validation errors.
var (
	ErrBadProfile = errors.New("graph: invalid profile mix")
	ErrBadClass   = errors.New("graph: invalid request classes")
)

// resolvedProfile is a profile compiled against a topology: demand by
// node index, visits by edge index — no map lookups on the request path.
type resolvedProfile struct {
	name   string
	weight float64
	demand []float64
	visits []int
}

// resolveProfile compiles p against the app's topology, rejecting
// references to unknown nodes or edges.
func (a *App) resolveProfile(p Profile, wrap error) (resolvedProfile, error) {
	rp := resolvedProfile{
		name:   p.Name,
		weight: p.Weight,
		demand: make([]float64, len(a.nodes)),
		visits: make([]int, len(a.edges)),
	}
	for i, n := range a.nodes {
		rp.demand[i] = 1
		if d, ok := p.NodeDemand[n.spec.Name]; ok {
			if d <= 0 {
				return rp, fmt.Errorf("%w: profile %q node %q demand %v", wrap, p.Name, n.spec.Name, d)
			}
			rp.demand[i] = d
		}
	}
	for name := range p.NodeDemand {
		if _, ok := a.nodeByName[name]; !ok {
			return rp, fmt.Errorf("%w: profile %q references unknown node %q", wrap, p.Name, name)
		}
	}
	for i, e := range a.edges {
		rp.visits[i] = e.spec.visitsOrDefault()
		if v, ok := p.EdgeVisits[e.spec.key()]; ok {
			if v < 0 {
				return rp, fmt.Errorf("%w: profile %q edge %s visits %d", wrap, p.Name, e.spec.key(), v)
			}
			rp.visits[i] = v
		}
	}
	for key := range p.EdgeVisits {
		if _, ok := a.edgeByKey[key]; !ok {
			return rp, fmt.Errorf("%w: profile %q references unknown edge %q", wrap, p.Name, key)
		}
	}
	return rp, nil
}

// resolveMix compiles the weighted mix, returning the total weight.
func (a *App) resolveMix(mix []Profile) (float64, error) {
	seen := make(map[string]bool, len(mix))
	total := 0.0
	for i, p := range mix {
		if p.Name == "" {
			return 0, fmt.Errorf("%w: profile %d has no name", ErrBadProfile, i)
		}
		if seen[p.Name] {
			return 0, fmt.Errorf("%w: duplicate profile %q", ErrBadProfile, p.Name)
		}
		seen[p.Name] = true
		if p.Weight <= 0 {
			return 0, fmt.Errorf("%w: profile %q weight %v", ErrBadProfile, p.Name, p.Weight)
		}
		rp, err := a.resolveProfile(p, ErrBadProfile)
		if err != nil {
			return 0, err
		}
		a.profiles = append(a.profiles, rp)
		a.profStats[p.Name] = &profileAccum{}
		total += p.Weight
	}
	return total, nil
}

// resolveClasses compiles the traffic classes.
func (a *App) resolveClasses(classes []Class) error {
	seen := make(map[string]bool, len(classes))
	names := make([]string, len(classes))
	for i, c := range classes {
		if c.Name == "" {
			return fmt.Errorf("%w: class %d has no name", ErrBadClass, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: duplicate class %q", ErrBadClass, c.Name)
		}
		seen[c.Name] = true
		if c.Priority < 0 {
			return fmt.Errorf("%w: class %q priority %d", ErrBadClass, c.Name, c.Priority)
		}
		if c.SLO < 0 {
			return fmt.Errorf("%w: class %q slo %v", ErrBadClass, c.Name, c.SLO)
		}
		p := c.Profile
		p.Name = c.Name
		rp, err := a.resolveProfile(p, ErrBadClass)
		if err != nil {
			return err
		}
		a.classProfiles = append(a.classProfiles, rp)
		names[i] = c.Name
	}
	a.classes = make([]classState, len(classes))
	a.classDisp = metrics.NewClassDispositions(names)
	return nil
}

// pickProfile draws a mix profile by weight: one Float64 against the
// cumulative weights, exactly the draw the chain's servlet mix has always
// made.
func (a *App) pickProfile() *resolvedProfile {
	u := a.rnd.Float64() * a.profWeight
	acc := 0.0
	for i := range a.profiles {
		acc += a.profiles[i].weight
		if u < acc {
			return &a.profiles[i]
		}
	}
	return &a.profiles[len(a.profiles)-1]
}

// ProfileStat summarizes one mix profile's traffic.
type ProfileStat struct {
	Completions uint64  `json:"completions"`
	Errors      uint64  `json:"errors"`
	MeanRTms    float64 `json:"meanRTms"`
}

// profileAccum is the mutable per-profile accumulator.
type profileAccum struct {
	completions metrics.Counter
	errored     metrics.Counter
	rtSum       float64
}

// ProfileStats returns cumulative per-profile statistics (empty when no
// mix is configured).
func (a *App) ProfileStats() map[string]ProfileStat {
	out := make(map[string]ProfileStat, len(a.profStats))
	for name, acc := range a.profStats {
		st := ProfileStat{
			Completions: acc.completions.Total(),
			Errors:      acc.errored.Total(),
		}
		if st.Completions > 0 {
			st.MeanRTms = acc.rtSum / float64(st.Completions) * 1000
		}
		out[name] = st
	}
	return out
}

// classState is the mutable per-class accumulator.
type classState struct {
	injected    uint64
	inFlight    int
	completions uint64
	errored     uint64
	good        uint64
	rtSum       float64
	// bshed counts the class's brownout front-door sheds (a subset of the
	// class's Shed dispositions).
	bshed uint64
}

// ClassStat summarizes one traffic class's lifetime traffic.
type ClassStat struct {
	Name     string `json:"name"`
	Priority int    `json:"priority"`
	// Injected counts arrivals; InFlight is the instantaneous population.
	Injected uint64 `json:"injected"`
	InFlight int    `json:"inFlight"`
	// Completions/Errors partition finished requests; Good is the subset
	// of completions within the class SLO.
	Completions uint64  `json:"completions"`
	Errors      uint64  `json:"errors"`
	Good        uint64  `json:"good"`
	MeanRTms    float64 `json:"meanRTms"`
	// Dispositions is the class's full outcome taxonomy.
	Dispositions metrics.DispositionCounts `json:"dispositions"`
	// BrownoutShed is the subset of Dispositions.Shed dropped at the
	// front door by the degrade controller (0 and absent without it).
	BrownoutShed uint64 `json:"brownoutShed,omitempty"`
}

// ClassStats returns cumulative per-class statistics in class order
// (empty when no classes are configured).
func (a *App) ClassStats() []ClassStat {
	out := make([]ClassStat, len(a.cfg.Classes))
	for i := range a.cfg.Classes {
		c := &a.cfg.Classes[i]
		st := &a.classes[i]
		out[i] = ClassStat{
			Name:         c.Name,
			Priority:     c.Priority,
			Injected:     st.injected,
			InFlight:     st.inFlight,
			Completions:  st.completions,
			Errors:       st.errored,
			Good:         st.good,
			Dispositions: a.classDisp.Counts(i),
			BrownoutShed: st.bshed,
		}
		if st.completions > 0 {
			out[i].MeanRTms = st.rtSum / float64(st.completions) * 1000
		}
	}
	return out
}

// ClassDispositions returns the per-class disposition tally (nil when no
// classes are configured).
func (a *App) ClassDispositions() *metrics.ClassDispositions { return a.classDisp }
