package graph

import (
	"encoding/json"
	"testing"
	"time"

	"dcm/internal/invariant"
	"dcm/internal/model"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// fuzzCursor doles out fuzz bytes, yielding zeros once exhausted so every
// input decodes to a complete (deterministic) topology.
type fuzzCursor struct {
	data []byte
	pos  int
}

func (c *fuzzCursor) next() byte {
	if c.pos >= len(c.data) {
		return 0
	}
	b := c.data[c.pos]
	c.pos++
	return b
}

// decodeTopology turns a byte stream into a valid-by-construction DAG
// spec plus a resilience config and an injection count. Nodes are
// generated in topological order and node i > 0 always receives an
// in-edge from an earlier node, so acyclicity and reachability hold by
// construction; Validate acceptance is asserted by the fuzzer, not
// assumed. Layout (one byte each, in order):
//
//	nodeCount, resilienceMode,
//	then per node: threads, model, kind, cacheParam,
//	then per node i >= 1: parent, edgeKind, visits, poolSize,
//	then: extraEdges, then per extra edge: src, dst, kind, visits, pool,
//	then: injectCount.
func decodeTopology(data []byte) (Spec, resilience.Config, int) {
	c := &fuzzCursor{data: data}
	n := 2 + int(c.next()%5)
	var res resilience.Config
	switch c.next() % 3 {
	case 1:
		res = resilience.Config{RequestTimeout: 200 * time.Millisecond, MaxQueue: 8}
	case 2:
		res = resilience.Config{RequestTimeout: 100 * time.Millisecond}
	}

	spec := Spec{Name: "fuzz", Entry: "n0"}
	for i := 0; i < n; i++ {
		threads := 1 + int(c.next()%8)
		mb := c.next()
		m := model.Params{
			S0:    float64(1+mb%50) * 1e-4,
			Alpha: float64(mb%80) / 100 * float64(1+mb%50) * 1e-5,
			Beta:  1e-8 * float64(1+mb%100),
			Gamma: 1,
		}
		ns := NodeSpec{Name: nodeName(i), Model: m, Threads: threads}
		kind := c.next()
		cacheParam := c.next()
		if i > 0 && kind%4 == 0 {
			ns.Kind = KindCache
			if cacheParam%2 == 0 {
				ns.HitRatio = float64(cacheParam) / 255
			} else {
				ns.CacheSize = 1 + int(cacheParam%8)
				ns.KeySpace = 8 + int(cacheParam%32)
			}
		}
		spec.Nodes = append(spec.Nodes, ns)
	}

	seen := map[string]bool{}
	addEdge := func(e EdgeSpec) {
		if seen[e.key()] {
			return
		}
		seen[e.key()] = true
		spec.Edges = append(spec.Edges, e)
	}
	for i := 1; i < n; i++ {
		parent := int(c.next()) % i
		e := EdgeSpec{From: nodeName(parent), To: nodeName(i)}
		switch c.next() % 3 {
		case 1:
			e.Kind = EdgeParallel
		case 2:
			e.Kind = EdgeAsync
		}
		e.Visits = 1 + int(c.next()%3)
		pool := int(c.next() % 3)
		if e.Kind != EdgeAsync {
			e.PoolSize = pool
		}
		addEdge(e)
	}
	extra := int(c.next() % 4)
	for i := 0; i < extra; i++ {
		// Extra edges always point forward and never into the entry.
		dst := 1 + int(c.next())%(n-1)
		src := int(c.next()) % dst
		e := EdgeSpec{From: nodeName(src), To: nodeName(dst)}
		switch c.next() % 3 {
		case 1:
			e.Kind = EdgeParallel
		case 2:
			e.Kind = EdgeAsync
		}
		e.Visits = int(c.next() % 3) // 0 is legal: a disabled edge
		pool := int(c.next() % 3)
		if e.Kind != EdgeAsync {
			e.PoolSize = pool
		}
		addEdge(e)
	}
	inject := 1 + int(c.next()%15)
	return spec, res, inject
}

func nodeName(i int) string { return string(rune('n')) + string(rune('0'+i)) }

// FuzzTopology generates bounded random DAG topologies from the fuzz
// input, runs a short scenario against each, and fails on any validation
// surprise, JSON round-trip drift or invariant violation. The seeds cover
// the four structural shapes: chain, diamond, cache tier, async edge.
func FuzzTopology(f *testing.F) {
	// chain: 3 serial nodes, the last pooled.
	f.Add([]byte{1, 0, 4, 10, 1, 0, 4, 10, 1, 0, 4, 10, 1, 0, 0, 0, 1, 1, 1, 0, 1, 2, 0, 9})
	// diamond: entry fans out serial+parallel, both sides rejoin at n3.
	f.Add([]byte{2, 1, 4, 20, 1, 0, 3, 9, 1, 0, 3, 9, 1, 0, 2, 30, 1, 0,
		0, 0, 1, 1, 0, 1, 2, 0, 1, 1, 1, 2, 1, 3, 0, 0, 1, 0, 7})
	// cache: n1 is a fixed-ratio cache in front of n2.
	f.Add([]byte{1, 0, 4, 10, 1, 0, 4, 10, 0, 128, 4, 10, 1, 0, 0, 0, 2, 1, 1, 0, 2, 0, 0, 5})
	// async: a fire-and-forget edge off the entry.
	f.Add([]byte{0, 0, 4, 10, 1, 0, 2, 10, 1, 0, 0, 2, 2, 0, 0, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, res, inject := decodeTopology(data)
		if err := spec.Validate(); err != nil {
			t.Fatalf("generated spec failed validation: %v\nspec: %+v", err, spec)
		}
		// The spec must survive its own wire format.
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ParseSpec(raw); err != nil {
			t.Fatalf("marshalled spec rejected by strict parser: %v\n%s", err, raw)
		}

		eng := sim.NewEngine()
		app, err := New(eng, rng.New(1).Split("app"), Config{Spec: spec, Resilience: res})
		if err != nil {
			t.Fatalf("graph.New: %v\nspec: %+v", err, spec)
		}
		chk := invariant.New()
		app.SetInvariantChecker(chk)
		invariant.AttachEngine(chk, eng)
		for i := 0; i < inject; i++ {
			app.Inject(func(time.Duration, bool) {})
		}
		if err := eng.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		app.CheckInvariants()
		invariant.CheckEngine(chk, eng)
		if vs := chk.Violations(); len(vs) > 0 {
			t.Fatalf("%d invariant violation(s):\n%s\nspec: %+v",
				len(vs), invariant.Render(vs), spec)
		}
		// Everything injected must be accounted for at the horizon.
		d := app.Dispositions()
		if d.Total()+uint64(app.InFlight()) != uint64(inject) {
			t.Fatalf("request leak: injected %d, dispositions %d, in flight %d",
				inject, d.Total(), app.InFlight())
		}
	})
}
