package graph

import (
	"fmt"
	"strings"
	"time"
)

// Span is one stage of a traced request's journey through the graph.
type Span struct {
	// Stage is the node name for unpooled hops ("web", "app"), or a
	// per-call label for pooled and parallel hops ("db-query-<i>",
	// "search-call-<i>").
	Stage string `json:"stage"`
	// Server is the name of the member that handled the stage.
	Server string `json:"server"`
	// Start is the stage's start offset from the request's injection.
	Start time.Duration `json:"start"`
	// Duration is the stage's total time (queueing included).
	Duration time.Duration `json:"duration"`
}

// RequestTrace is the full record of one traced request.
type RequestTrace struct {
	// ID numbers traced requests from 1 in injection order.
	ID int `json:"id"`
	// InjectedAt is the virtual time the request entered the system.
	InjectedAt time.Duration `json:"injectedAt"`
	// Total is the end-to-end response time.
	Total time.Duration `json:"total"`
	// OK reports whether the request completed successfully.
	OK bool `json:"ok"`
	// Servlet is the mix profile the request drew ("" for the single-class
	// flow). The name — and the JSON key — predate the graph engine: the
	// chain's weighted request mix called its profiles servlets, and the
	// serialized form is pinned by the trace goldens.
	Servlet string `json:"servlet,omitempty"`
	// Spans are the per-stage records in execution order.
	Spans []Span `json:"spans"`
}

// String renders the trace as an indented waterfall.
func (rt RequestTrace) String() string {
	var b strings.Builder
	status := "ok"
	if !rt.OK {
		status = "FAILED"
	}
	name := rt.Servlet
	if name == "" {
		name = "request"
	}
	fmt.Fprintf(&b, "#%d %s at t=%.3fs: %.2fms %s\n",
		rt.ID, name, rt.InjectedAt.Seconds(), float64(rt.Total.Microseconds())/1000, status)
	for _, sp := range rt.Spans {
		offset := int(sp.Start.Seconds() / rt.Total.Seconds() * 30)
		if rt.Total <= 0 {
			offset = 0
		}
		if offset > 30 {
			offset = 30
		}
		fmt.Fprintf(&b, "  %-12s %-8s %s%s %.2fms\n",
			sp.Stage, sp.Server, strings.Repeat(" ", offset), "▕",
			float64(sp.Duration.Microseconds())/1000)
	}
	return b.String()
}

// TraceRequests arms request tracing: the next n injected requests record
// a full per-stage span log, retrievable with Traces. Tracing is cheap but
// not free; it is meant for debugging and demos, not for the hot path of
// large experiments. Calling TraceRequests again resets the buffer.
func (a *App) TraceRequests(n int) {
	if n < 0 {
		n = 0
	}
	a.traceRemaining = n
	a.traces = a.traces[:0]
}

// Traces returns the captured request traces so far. Traces of requests
// still in flight have OK == false and Total == 0 until they finish.
func (a *App) Traces() []RequestTrace {
	out := make([]RequestTrace, len(a.traces))
	for i, tr := range a.traces {
		out[i] = *tr
	}
	return out
}

// beginTrace claims a trace slot for a new request, returning nil when
// tracing is disarmed.
func (a *App) beginTrace(prof *resolvedProfile) *RequestTrace {
	if a.traceRemaining <= 0 {
		return nil
	}
	a.traceRemaining--
	tr := &RequestTrace{
		ID:         len(a.traces) + 1,
		InjectedAt: a.eng.Now(),
	}
	if prof != nil {
		tr.Servlet = prof.name
	}
	a.traces = append(a.traces, tr)
	return tr
}

// span records one stage on a trace (no-op for nil traces).
func (a *App) span(tr *RequestTrace, stage, server string, start time.Duration) {
	if tr == nil {
		return
	}
	tr.Spans = append(tr.Spans, Span{
		Stage:    stage,
		Server:   server,
		Start:    start - tr.InjectedAt,
		Duration: a.eng.Now() - start,
	})
}
