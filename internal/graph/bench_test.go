package graph

import (
	"testing"
	"time"

	"dcm/internal/model"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// BenchmarkGraphWalk measures end-to-end request cost through a 4-node
// diamond — a parallel fan-out, a serial call and a pooled shared DB —
// covering the walker's branch/join/pool machinery. Reported ns/op is
// per completed request, queueing included.
func BenchmarkGraphWalk(b *testing.B) {
	law := model.Params{S0: 1e-4, Gamma: 1}
	spec := Spec{
		Name:  "bench-diamond",
		Entry: "front",
		Nodes: []NodeSpec{
			{Name: "front", Model: law, Threads: 64},
			{Name: "svcA", Model: law, Threads: 16},
			{Name: "svcB", Model: law, Threads: 16},
			{Name: "db", Model: law, Threads: 8},
		},
		Edges: []EdgeSpec{
			{From: "front", To: "svcA", Kind: EdgeParallel, Visits: 2},
			{From: "front", To: "svcB", Visits: 1},
			{From: "svcA", To: "db", Visits: 1, PoolSize: 8},
			{From: "svcB", To: "db", Visits: 1, PoolSize: 8},
		},
	}
	eng := sim.NewEngine()
	app, err := New(eng, rng.New(1).Split("app"), Config{Spec: spec})
	if err != nil {
		b.Fatal(err)
	}
	done := 0
	cb := func(time.Duration, bool) { done++ }
	// Warm the engine's arena so steady state is what gets measured.
	for i := 0; i < 100; i++ {
		app.Inject(cb)
	}
	horizon := time.Second
	if err := eng.Run(horizon); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	goal := done + b.N
	for i := 0; i < b.N; i++ {
		app.Inject(cb)
	}
	for done < goal {
		horizon += time.Second
		if err := eng.Run(horizon); err != nil {
			b.Fatal(err)
		}
	}
}
