package graph

import (
	"dcm/internal/metrics"
)

// Stats is one interval's system metrics, as returned by TakeStats.
type Stats struct {
	// Completions and Errors are counts in the interval.
	Completions uint64 `json:"completions"`
	Errors      uint64 `json:"errors"`
	// MeanRTSeconds is the mean response time of requests completed in the
	// interval.
	MeanRTSeconds float64 `json:"meanRTSeconds"`
	// NodeResidence maps node name → mean per-visit residence time in the
	// interval (queue wait + burst + held downstream calls; for nodes
	// reached over pooled edges the window includes the connection-pool
	// wait). Together the entries attribute end-to-end latency to nodes.
	NodeResidence map[string]float64 `json:"nodeResidence,omitempty"`
	// RT is the full response-time summary for the interval.
	RT metrics.Summary `json:"rt"`
	// InFlight is the instantaneous number of requests in the system.
	InFlight int `json:"inFlight"`
	// Resilience outcome counts for requests finished in the interval
	// (subsets of Errors, except Good which is the subset of Completions
	// within the goodput SLA). All zero — and absent from JSON — when
	// resilience is disabled.
	Good        uint64 `json:"good,omitempty"`
	TimedOut    uint64 `json:"timedOut,omitempty"`
	Rejected    uint64 `json:"rejected,omitempty"`
	Shed        uint64 `json:"shed,omitempty"`
	BreakerOpen uint64 `json:"breakerOpen,omitempty"`
}

// TakeStats returns system metrics accumulated since the previous call and
// starts a new interval.
func (a *App) TakeStats() Stats {
	mean, _ := a.rts.TakeMean()
	st := Stats{
		Completions:   a.completions.TakeDelta(),
		Errors:        a.errored.TakeDelta(),
		MeanRTSeconds: mean,
		NodeResidence: make(map[string]float64, len(a.nodes)),
		RT:            metrics.Summarize(a.rtWindow),
		InFlight:      a.inFlight,
		Good:          a.good.TakeDelta(),
		TimedOut:      a.timedOut.TakeDelta(),
		Rejected:      a.rejected.TakeDelta(),
		Shed:          a.shed.TakeDelta(),
		BreakerOpen:   a.brkOpen.TakeDelta(),
	}
	for _, n := range a.nodes {
		m, _ := n.res.TakeMean()
		st.NodeResidence[n.spec.Name] = m
	}
	a.rtWindow = a.rtWindow[:0]
	return st
}

// NodeVisitStat is one node's lifetime ledger snapshot.
type NodeVisitStat struct {
	// Started counts visits that reached the node (pick attempted).
	Started uint64 `json:"started"`
	// InFlight is the node's instantaneous visit population.
	InFlight int `json:"inFlight"`
	// Dispositions tallies the node's finished visits by outcome.
	Dispositions metrics.DispositionCounts `json:"dispositions"`
}

// NodeVisits returns the per-node conservation ledger keyed by node name.
func (a *App) NodeVisits() map[string]NodeVisitStat {
	out := make(map[string]NodeVisitStat, len(a.nodes))
	for _, n := range a.nodes {
		out[n.spec.Name] = NodeVisitStat{
			Started:      n.started,
			InFlight:     n.inFlight,
			Dispositions: n.visits,
		}
	}
	return out
}
