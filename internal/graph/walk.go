package graph

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/connpool"
	"dcm/internal/invariant"
	"dcm/internal/lb"
	"dcm/internal/metrics"
	"dcm/internal/server"
	"dcm/internal/sim"
	"dcm/internal/trace"
)

// This file is the request walk: how one injected request travels the
// DAG. The control flow is a mechanical generalization of the chain walk
// internal/ntier carried since PR 1 — for a 3-node linear topology the
// sequence of picks, acquisitions, bursts, releases and records is
// bit-for-bit the same, which is what keeps every pre-refactor sha256
// digest valid.

// deadlineFor computes the absolute deadline for a request arriving at
// start (zero when request timeouts are off).
func (a *App) deadlineFor(start sim.Time) sim.Time {
	if a.res.RequestTimeout <= 0 {
		return 0
	}
	return start + a.res.RequestTimeout
}

// pickDisposition classifies a balancer Pick error: a guard refusal is a
// breaker-open outcome, anything else a plain error (node down).
func pickDisposition(err error) metrics.Disposition {
	if errors.Is(err, lb.ErrGuarded) {
		return metrics.DispositionBreakerOpen
	}
	return metrics.DispositionError
}

// breakerAttempt consumes a breaker admission for the member (half-open
// probe accounting); true when the call may proceed. Always true when
// breakers are off.
func (a *App) breakerAttempt(m *Member) bool {
	br := a.breakers[m.Name()]
	return br == nil || br.Attempt(a.eng.Now())
}

// breakerRecord feeds a call outcome to the member's breaker. Only
// genuine backend verdicts count: OK is a success, errors and timeouts
// are failures. Backpressure verdicts (rejected, shed, a downstream
// breaker refusing) bypass the failure window — shedding is the admission
// layer doing its job, not evidence this backend is sick.
func (a *App) breakerRecord(m *Member, disp metrics.Disposition) {
	br := a.breakers[m.Name()]
	if br == nil {
		return
	}
	switch disp {
	case metrics.DispositionOK:
		br.Record(a.eng.Now(), true)
	case metrics.DispositionError, metrics.DispositionTimeout:
		br.Record(a.eng.Now(), false)
	default:
		br.RecordNeutral()
	}
}

// tally folds one finished request's disposition into the app counters.
func (a *App) tally(d metrics.Disposition) {
	a.disp.Observe(d)
	switch d {
	case metrics.DispositionTimeout:
		a.timedOut.Inc(1)
	case metrics.DispositionRejected:
		a.rejected.Inc(1)
	case metrics.DispositionShed:
		a.shed.Inc(1)
	case metrics.DispositionBreakerOpen:
		a.brkOpen.Inc(1)
	}
}

// ledger wraps a visit's completion in the target node's conservation
// accounting: the visit is counted when it starts and its disposition
// lands exactly once. Pure counting — no events, no draws.
func (a *App) ledger(n *node, done func(metrics.Disposition)) func(metrics.Disposition) {
	n.started++
	n.inFlight++
	return func(d metrics.Disposition) {
		n.inFlight--
		n.visits.Observe(d)
		done(d)
	}
}

// Inject sends one request through the graph's entry node. done
// (optional) is invoked on completion with the end-to-end response time
// and whether the request succeeded. With a mix configured, the request's
// profile is drawn by weight. When resilience is configured the request
// carries an absolute deadline across every hop; its outcome is tallied
// as a disposition and, when it completes within the goodput SLA, as a
// good completion.
func (a *App) Inject(done func(rt time.Duration, ok bool)) {
	a.InjectClass(-1, 0, done)
}

// InjectClass is Inject for class-mixed workloads: class indexes the
// configured Classes (any out-of-range value, canonically -1, injects the
// classless flow), and session, when non-zero, is a session-affinity key
// — the entry node then picks the session's rendezvous-hashed home
// backend instead of rotating. A classless, sessionless call is
// byte-identical to Inject.
func (a *App) InjectClass(class int, session uint64, done func(rt time.Duration, ok bool)) {
	start := a.eng.Now()
	deadline := a.deadlineFor(start)
	a.inFlight++
	a.injected++
	var mixed *resolvedProfile
	if len(a.profiles) > 0 {
		mixed = a.pickProfile()
	}
	prof := mixed
	var cls *Class
	if class >= 0 && class < len(a.cfg.Classes) {
		cls = &a.cfg.Classes[class]
		prof = &a.classProfiles[class]
		a.classes[class].injected++
		a.classes[class].inFlight++
	} else {
		class = -1
	}
	if prof == nil {
		prof = &a.defaultPr
	}
	critical := cls != nil && cls.Priority > 0
	tr := a.beginTrace(mixed)
	req := a.reqTracer.Begin()
	a.reqTracer.Record(req, trace.EventArrive, "", "", start)
	if cls != nil {
		a.reqTracer.RecordClass(req, cls.Name, start)
	}
	finish := func(disp metrics.Disposition) {
		ok := disp == metrics.DispositionOK
		a.inFlight--
		if a.chk != nil && a.inFlight < 0 {
			a.chk.Violatef(a.eng.Now(), invariant.RuleConservation, "graph", req,
				"request finish drove in-flight negative (%d)", a.inFlight)
		}
		rt := a.eng.Now() - start
		kind := trace.EventDone
		if !ok {
			kind = trace.EventFail
		}
		a.reqTracer.Record(req, kind, "", "", a.eng.Now())
		a.tally(disp)
		if ok {
			a.completions.Inc(1)
			a.rts.Observe(rt.Seconds())
			a.rtWindow = append(a.rtWindow, rt.Seconds())
			if a.res.Enabled() {
				if sla := a.res.GoodputSLA(); sla <= 0 || rt <= sla {
					a.good.Inc(1)
				}
			}
		} else {
			a.errored.Inc(1)
		}
		if cls != nil {
			st := &a.classes[class]
			st.inFlight--
			a.classDisp.Observe(class, disp)
			if ok {
				st.completions++
				st.rtSum += rt.Seconds()
				// The class SLO overrides the global goodput SLA; without
				// one, fall back to the resilience-wide threshold.
				sla := cls.SLO
				if sla <= 0 {
					sla = a.res.GoodputSLA()
				}
				if sla <= 0 || rt <= sla {
					st.good++
				}
			} else {
				st.errored++
			}
		} else {
			a.unclassedDisp.Observe(disp)
		}
		if mixed != nil {
			acc := a.profStats[mixed.name]
			if ok {
				acc.completions.Inc(1)
				acc.rtSum += rt.Seconds()
			} else {
				acc.errored.Inc(1)
			}
		}
		if tr != nil {
			tr.Total = rt
			tr.OK = ok
		}
		if done != nil {
			done(rt, ok)
		}
	}

	// Brownout front-door shed: while the degrade controller holds a shed
	// ratio, best-effort arrivals are dropped before they touch the entry
	// node. Critical (Priority > 0) classes are never brownout-shed.
	if a.brownoutShed > 0 && !critical && a.brownoutTake() {
		a.brownoutSheds++
		if cls != nil {
			a.classes[class].bshed++
		}
		a.reqTracer.Record(req, trace.EventShed, "", "", a.eng.Now())
		finish(metrics.DispositionShed)
		return
	}

	a.visitNode(req, deadline, a.entry, session, prof, critical, tr, finish)
}

// visitNode runs one visit of node n reached without a connection pool:
// pick a member, acquire a thread, run the burst, descend the out-edges
// with the thread held, then release and report. It serves the entry node
// (session-sticky picks) and async deliveries.
func (a *App) visitNode(req uint64, deadline sim.Time, n *node, session uint64, prof *resolvedProfile, critical bool, tr *RequestTrace, done func(metrics.Disposition)) {
	done = a.ledger(n, done)
	var be lb.Backend
	var err error
	if n.entry && session != 0 {
		be, err = n.balancer.PickSession(session)
	} else {
		be, err = n.balancer.Pick()
	}
	if err != nil {
		if errors.Is(err, lb.ErrGuarded) {
			a.reqTracer.Record(req, trace.EventBreakerOpen, n.spec.Name, "", a.eng.Now())
		}
		done(pickDisposition(err))
		return
	}
	m, ok := n.members[be.Name()]
	if !ok {
		done(metrics.DispositionError)
		return
	}
	if !a.breakerAttempt(m) {
		a.reqTracer.Record(req, trace.EventBreakerOpen, n.spec.Name, m.Name(), a.eng.Now())
		done(metrics.DispositionBreakerOpen)
		return
	}
	start := a.eng.Now()
	m.srv.AcquireDeadlineCritical(req, deadline, critical, func(sess *server.Session, acqDisp metrics.Disposition) {
		if sess == nil {
			a.breakerRecord(m, acqDisp)
			done(acqDisp)
			return
		}
		sess.ExecDemand(prof.demand[n.idx], func() {
			if sess.TimedOut() {
				sess.Release()
				n.res.Observe((a.eng.Now() - start).Seconds())
				a.span(tr, n.spec.Name, m.Name(), start)
				a.breakerRecord(m, metrics.DispositionTimeout)
				done(metrics.DispositionTimeout)
				return
			}
			a.descend(req, deadline, n, m, prof, critical, tr, func(disp metrics.Disposition) {
				sess.Release()
				n.res.Observe((a.eng.Now() - start).Seconds())
				a.span(tr, n.spec.Name, m.Name(), start)
				if disp == metrics.DispositionOK && sess.Killed() {
					disp = metrics.DispositionError
				}
				a.breakerRecord(m, disp)
				done(disp)
			})
		})
	})
}

// descend walks a node's out-edges after its burst completed. A cache hit
// short-circuits: the reply is served locally and no out-edge is visited.
func (a *App) descend(req uint64, deadline sim.Time, n *node, m *Member, prof *resolvedProfile, critical bool, tr *RequestTrace, done func(metrics.Disposition)) {
	if n.isCache() && a.cacheLookup(n) {
		done(metrics.DispositionOK)
		return
	}
	a.walkEdges(req, deadline, n, m, prof, critical, tr, 0, done)
}

// walkEdges runs the out-edges of n in declaration order, each to
// completion before the next starts; a failed edge aborts the remainder.
func (a *App) walkEdges(req uint64, deadline sim.Time, n *node, m *Member, prof *resolvedProfile, critical bool, tr *RequestTrace, pos int, done func(metrics.Disposition)) {
	if pos >= len(n.outs) {
		done(metrics.DispositionOK)
		return
	}
	e := n.outs[pos]
	visits := prof.visits[e.idx]
	next := func(disp metrics.Disposition) {
		if disp != metrics.DispositionOK {
			done(disp)
			return
		}
		a.walkEdges(req, deadline, n, m, prof, critical, tr, pos+1, done)
	}
	switch e.spec.Kind {
	case EdgeAsync:
		a.fireAsync(e, visits, prof)
		next(metrics.DispositionOK)
	case EdgeParallel:
		a.visitParallel(req, deadline, e, m, prof, critical, tr, visits, next)
	default:
		a.visitSerial(req, deadline, e, m, prof, critical, tr, 0, visits, next)
	}
}

// visitSerial issues the edge's visits sequentially, checking the
// deadline before each call — the chain's DB-query loop, verbatim.
func (a *App) visitSerial(req uint64, deadline sim.Time, e *edge, src *Member, prof *resolvedProfile, critical bool, tr *RequestTrace, issued, visits int, done func(metrics.Disposition)) {
	if issued >= visits {
		done(metrics.DispositionOK)
		return
	}
	if deadline > 0 && a.eng.Now() >= deadline {
		done(metrics.DispositionTimeout)
		return
	}
	spanName := e.dst.spec.Name
	if e.pooled() {
		spanName = fmt.Sprintf("%s-query-%d", e.dst.spec.Name, issued+1)
	}
	a.issueCall(req, deadline, e, src, spanName, prof, critical, tr, func(disp metrics.Disposition) {
		if disp != metrics.DispositionOK {
			done(disp)
			return
		}
		a.visitSerial(req, deadline, e, src, prof, critical, tr, issued+1, visits, done)
	})
}

// visitParallel fans the edge's visits out concurrently and joins them:
// every branch runs to completion, then the join reports once — the first
// failed branch's disposition, or OK when all branches succeeded.
func (a *App) visitParallel(req uint64, deadline sim.Time, e *edge, src *Member, prof *resolvedProfile, critical bool, tr *RequestTrace, visits int, done func(metrics.Disposition)) {
	if visits <= 0 {
		done(metrics.DispositionOK)
		return
	}
	if deadline > 0 && a.eng.Now() >= deadline {
		done(metrics.DispositionTimeout)
		return
	}
	disps := make([]metrics.Disposition, visits)
	remaining := visits
	for i := 0; i < visits; i++ {
		i := i
		spanName := fmt.Sprintf("%s-call-%d", e.dst.spec.Name, i+1)
		a.issueCall(req, deadline, e, src, spanName, prof, critical, tr, func(disp metrics.Disposition) {
			disps[i] = disp
			remaining--
			if remaining > 0 {
				return
			}
			joined := metrics.DispositionOK
			for _, d := range disps {
				if d != metrics.DispositionOK {
					joined = d
					break
				}
			}
			done(joined)
		})
	}
}

// issueCall makes one call over edge e from the src member: acquire a
// connection when the edge is pooled (the residence window opens before
// the pool wait), then visit the destination.
func (a *App) issueCall(req uint64, deadline sim.Time, e *edge, src *Member, spanName string, prof *resolvedProfile, critical bool, tr *RequestTrace, done func(metrics.Disposition)) {
	start := a.eng.Now()
	if !e.pooled() {
		a.callTarget(req, deadline, e, nil, start, spanName, prof, critical, tr, done)
		return
	}
	src.pools[e.pos].AcquireDeadline(req, deadline, func(conn *connpool.Conn, acqDisp metrics.Disposition) {
		if conn == nil {
			done(acqDisp)
			return
		}
		a.callTarget(req, deadline, e, conn, start, spanName, prof, critical, tr, done)
	})
}

// callTarget runs one visit of edge e's destination: pick a member,
// acquire a thread, run the burst, descend, then release the thread (and
// the upstream connection) and report. conn is nil for unpooled edges.
func (a *App) callTarget(req uint64, deadline sim.Time, e *edge, conn *connpool.Conn, start sim.Time, spanName string, prof *resolvedProfile, critical bool, tr *RequestTrace, done func(metrics.Disposition)) {
	n := e.dst
	done = a.ledger(n, done)
	be, err := n.balancer.Pick()
	if err != nil {
		if conn != nil {
			conn.Release()
		}
		if errors.Is(err, lb.ErrGuarded) {
			a.reqTracer.Record(req, trace.EventBreakerOpen, n.spec.Name, "", a.eng.Now())
		}
		done(pickDisposition(err))
		return
	}
	m, ok := n.members[be.Name()]
	if !ok {
		if conn != nil {
			conn.Release()
		}
		done(metrics.DispositionError)
		return
	}
	if !a.breakerAttempt(m) {
		if conn != nil {
			conn.Release()
		}
		a.reqTracer.Record(req, trace.EventBreakerOpen, n.spec.Name, m.Name(), a.eng.Now())
		done(metrics.DispositionBreakerOpen)
		return
	}
	m.srv.AcquireDeadlineCritical(req, deadline, critical, func(sess *server.Session, acqDisp metrics.Disposition) {
		if sess == nil {
			if conn != nil {
				conn.Release()
			}
			a.breakerRecord(m, acqDisp)
			done(acqDisp)
			return
		}
		sess.ExecDemand(prof.demand[n.idx], func() {
			if len(n.outs) == 0 && !n.isCache() {
				// Leaf visit: the verdict is read right here, a crashed
				// backend taking precedence over a deadline preemption —
				// the chain's DB-query semantics.
				killed := sess.Killed()
				timedOut := sess.TimedOut()
				sess.Release()
				if conn != nil {
					conn.Release()
				}
				n.res.Observe((a.eng.Now() - start).Seconds())
				a.span(tr, spanName, m.Name(), start)
				switch {
				case killed:
					a.breakerRecord(m, metrics.DispositionError)
					done(metrics.DispositionError)
				case timedOut:
					a.breakerRecord(m, metrics.DispositionTimeout)
					done(metrics.DispositionTimeout)
				default:
					a.breakerRecord(m, metrics.DispositionOK)
					done(metrics.DispositionOK)
				}
				return
			}
			if sess.TimedOut() {
				sess.Release()
				if conn != nil {
					conn.Release()
				}
				n.res.Observe((a.eng.Now() - start).Seconds())
				a.span(tr, spanName, m.Name(), start)
				a.breakerRecord(m, metrics.DispositionTimeout)
				done(metrics.DispositionTimeout)
				return
			}
			a.descend(req, deadline, n, m, prof, critical, tr, func(disp metrics.Disposition) {
				sess.Release()
				if conn != nil {
					conn.Release()
				}
				n.res.Observe((a.eng.Now() - start).Seconds())
				a.span(tr, spanName, m.Name(), start)
				if disp == metrics.DispositionOK && sess.Killed() {
					disp = metrics.DispositionError
				}
				a.breakerRecord(m, disp)
				done(disp)
			})
		})
	})
}
