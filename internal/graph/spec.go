// Package graph generalizes the hard-wired web→app→db chain of
// internal/ntier into a validated DAG of service nodes: each node carries
// its own thread pool, accept queue and Equation 5 service law, and nodes
// are connected by typed edges — serial call sequences, fan-out/fan-in
// parallel calls joined before the reply, and async fire-and-forget
// deliveries backed by internal/bus — with per-edge connection pools,
// per-backend circuit breakers, propagated deadlines and visit ratios.
// A cache node kind short-circuits its downstream visits on a hit, either
// with a fixed hit ratio or a simulated LRU over a key population.
//
// The paper's three-tier application is the special case of a 3-node
// linear graph (topologies/chain3.json); internal/ntier now builds exactly
// that graph and forwards to it, so every calibrated experiment exercises
// this engine.
package graph

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"dcm/internal/model"
)

// Node kinds.
const (
	// KindService is an ordinary service node (the default).
	KindService = "service"
	// KindCache is a cache node: after its lookup burst, a hit serves the
	// reply locally and skips every out-edge; a miss descends normally.
	KindCache = "cache"
)

// Service-time distributions accepted by NodeSpec.Distribution.
const (
	// DistDeterministic uses the Equation 5 mean exactly (the default —
	// what the calibrated chain uses).
	DistDeterministic = "deterministic"
	// DistExponential draws each burst exponentially around the Equation 5
	// mean, making a node's station product-form (BCMP) so exact MVA
	// applies — the conformance suite's oracle mode.
	DistExponential = "exponential"
)

// Edge kinds.
const (
	// EdgeSerial issues the edge's visits one at a time, the caller's
	// thread held across each call (the default).
	EdgeSerial = "serial"
	// EdgeParallel issues all visits concurrently and joins them before
	// the caller replies; the join's outcome is the first failed branch's
	// disposition, counted once.
	EdgeParallel = "parallel"
	// EdgeAsync publishes the visits to an internal/bus topic and returns
	// immediately; the deliveries run as independent background jobs whose
	// outcomes land in the async ledger, not the caller's disposition.
	EdgeAsync = "async"
)

// Spec validation errors. LoadSpec and Validate wrap every failure in
// ErrBadSpec; the structural classes the topology loader distinguishes —
// cycles, unreachable nodes, dangling edges — are additionally wrapped in
// their own pinned errors so callers can assert the failure class.
var (
	ErrBadSpec      = errors.New("graph: invalid topology")
	ErrCycle        = errors.New("graph: topology has a cycle")
	ErrUnreachable  = errors.New("graph: node unreachable from entry")
	ErrDanglingEdge = errors.New("graph: edge references unknown node")
)

// NodeSpec describes one service node of a topology.
type NodeSpec struct {
	// Name identifies the node ("web", "catalog", ...).
	Name string `json:"name"`
	// Kind is the node kind: "service" (default) or "cache".
	Kind string `json:"kind,omitempty"`
	// Model is the node's Equation 5 burst law.
	Model model.Params `json:"model"`
	// Threads is the per-replica thread pool size (the node's soft
	// resource).
	Threads int `json:"threads"`
	// Replicas is the initial replica count (default 1).
	Replicas int `json:"replicas,omitempty"`
	// ThrashKnee, ThrashCoef and ThrashCap give the node the
	// super-quadratic collapse past the knee (see server.Config).
	ThrashKnee int     `json:"thrashKnee,omitempty"`
	ThrashCoef float64 `json:"thrashCoef,omitempty"`
	ThrashCap  float64 `json:"thrashCap,omitempty"`
	// BetaOnConfigured applies the crosstalk term to the configured
	// upstream concurrency (pooled in-edge capacity) instead of the
	// instantaneous concurrency, as the paper's MySQL tier does.
	BetaOnConfigured bool `json:"betaOnConfigured,omitempty"`
	// Distribution selects the burst-duration distribution:
	// "deterministic" (default) or "exponential".
	Distribution string `json:"distribution,omitempty"`
	// HitRatio is the cache node's hit probability in [0, 1], used when no
	// LRU is configured (cache kind only).
	HitRatio float64 `json:"hitRatio,omitempty"`
	// CacheSize and KeySpace configure a simulated LRU instead of the
	// fixed ratio: each lookup draws a key uniformly from KeySpace and
	// consults an LRU of CacheSize entries, so the hit ratio emerges from
	// the reference stream (cache kind only; both must be set together).
	CacheSize int `json:"cacheSize,omitempty"`
	KeySpace  int `json:"keySpace,omitempty"`
	// Controller arms a per-node DCM soft-resource controller in the graph
	// experiment: the node's thread pool is steered to its model optimum
	// N_b instead of staying at the static allocation.
	Controller bool `json:"controller,omitempty"`
}

// EdgeSpec describes one directed dependency between two nodes.
type EdgeSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Kind is "serial" (default), "parallel" or "async".
	Kind string `json:"kind,omitempty"`
	// Visits is the visit ratio: calls issued over this edge per visit of
	// From. Zero is legal and disables the edge unless a profile overrides
	// it per class — topologies must state their visit ratios explicitly.
	Visits int `json:"visits,omitempty"`
	// PoolSize, when positive, gives every From replica a connection pool
	// of that size guarding its calls over this edge — the upstream bound
	// on To's request-processing concurrency, as the paper's Tomcat DB
	// connection pools bound MySQL.
	PoolSize int `json:"poolSize,omitempty"`
	// PoolName overrides the pool's name suffix; the default is
	// "<to>pool", so the chain's app-tier pools keep their historical
	// "app-1/dbpool" names.
	PoolName string `json:"poolName,omitempty"`
}

// Spec is the serializable topology description. JSON loading is strict:
// unknown fields are rejected, and Validate pins the structural failure
// classes (cycles, unreachable nodes, dangling edges).
type Spec struct {
	Name  string     `json:"name"`
	Entry string     `json:"entry"`
	Nodes []NodeSpec `json:"nodes"`
	Edges []EdgeSpec `json:"edges"`
}

// visitsOrDefault resolves the edge's default visit ratio.
func (e EdgeSpec) visitsOrDefault() int {
	if e.Visits < 0 {
		return 0
	}
	return e.Visits
}

// key returns the "from->to" identifier profiles use to address an edge.
func (e EdgeSpec) key() string { return e.From + "->" + e.To }

// poolSuffix resolves the connection-pool name suffix.
func (e EdgeSpec) poolSuffix() string {
	if e.PoolName != "" {
		return e.PoolName
	}
	return e.To + "pool"
}

// ParseSpec decodes a strict-JSON topology: unknown fields are rejected
// and the result is validated.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	// A topology is one JSON document; trailing garbage is an error, not
	// silently ignored.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("%w: trailing data after topology document", ErrBadSpec)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads and parses a topology file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%v (in %s)", err, path)
	}
	return s, nil
}

// Validate checks the topology's structure: named, well-formed nodes and
// edges; a known entry node with no in-edges; no dangling edges, no
// cycles, and every node reachable from the entry.
func (s Spec) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("%w: no nodes", ErrBadSpec)
	}
	byName := make(map[string]int, len(s.Nodes))
	for i, n := range s.Nodes {
		if n.Name == "" {
			return fmt.Errorf("%w: node %d has no name", ErrBadSpec, i)
		}
		if _, dup := byName[n.Name]; dup {
			return fmt.Errorf("%w: duplicate node %q", ErrBadSpec, n.Name)
		}
		byName[n.Name] = i
		switch n.Kind {
		case "", KindService:
		case KindCache:
			lru := n.CacheSize > 0 || n.KeySpace > 0
			if lru && (n.CacheSize <= 0 || n.KeySpace <= 0) {
				return fmt.Errorf("%w: cache node %q needs cacheSize and keySpace together", ErrBadSpec, n.Name)
			}
			if !lru && (n.HitRatio < 0 || n.HitRatio > 1) {
				return fmt.Errorf("%w: cache node %q hit ratio %v outside [0, 1]", ErrBadSpec, n.Name, n.HitRatio)
			}
		default:
			return fmt.Errorf("%w: node %q has unknown kind %q", ErrBadSpec, n.Name, n.Kind)
		}
		if n.Threads < 1 {
			return fmt.Errorf("%w: node %q threads %d", ErrBadSpec, n.Name, n.Threads)
		}
		if n.Replicas < 0 {
			return fmt.Errorf("%w: node %q replicas %d", ErrBadSpec, n.Name, n.Replicas)
		}
		if err := n.Model.Validate(); err != nil {
			return fmt.Errorf("%w: node %q: %v", ErrBadSpec, n.Name, err)
		}
		switch n.Distribution {
		case "", DistDeterministic, DistExponential:
		default:
			return fmt.Errorf("%w: node %q has unknown distribution %q", ErrBadSpec, n.Name, n.Distribution)
		}
	}
	if s.Entry == "" {
		return fmt.Errorf("%w: no entry node", ErrBadSpec)
	}
	if _, ok := byName[s.Entry]; !ok {
		return fmt.Errorf("%w: entry node %q not declared", ErrBadSpec, s.Entry)
	}

	seenEdge := make(map[string]bool, len(s.Edges))
	adj := make([][]int, len(s.Nodes))
	indeg := make([]int, len(s.Nodes))
	for i, e := range s.Edges {
		from, okFrom := byName[e.From]
		to, okTo := byName[e.To]
		if !okFrom || !okTo {
			return fmt.Errorf("%w: edge %d (%s->%s)", ErrDanglingEdge, i, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("%w: edge %d is a self-loop on %q", ErrCycle, i, e.From)
		}
		if seenEdge[e.key()] {
			return fmt.Errorf("%w: duplicate edge %s", ErrBadSpec, e.key())
		}
		seenEdge[e.key()] = true
		switch e.Kind {
		case "", EdgeSerial, EdgeParallel:
		case EdgeAsync:
			if e.PoolSize > 0 {
				return fmt.Errorf("%w: async edge %s cannot carry a connection pool", ErrBadSpec, e.key())
			}
		default:
			return fmt.Errorf("%w: edge %s has unknown kind %q", ErrBadSpec, e.key(), e.Kind)
		}
		if e.Visits < 0 {
			return fmt.Errorf("%w: edge %s visits %d", ErrBadSpec, e.key(), e.Visits)
		}
		if e.PoolSize < 0 {
			return fmt.Errorf("%w: edge %s pool size %d", ErrBadSpec, e.key(), e.PoolSize)
		}
		adj[from] = append(adj[from], to)
		indeg[to]++
	}
	if indeg[byName[s.Entry]] > 0 {
		return fmt.Errorf("%w: entry node %q has in-edges", ErrBadSpec, s.Entry)
	}

	// Cycle check: Kahn's algorithm over the whole graph.
	queue := make([]int, 0, len(s.Nodes))
	deg := append([]int(nil), indeg...)
	for i := range s.Nodes {
		if deg[i] == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		processed++
		for _, w := range adj[v] {
			if deg[w]--; deg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if processed != len(s.Nodes) {
		for i := range s.Nodes {
			if deg[i] > 0 {
				return fmt.Errorf("%w: node %q is on a cycle", ErrCycle, s.Nodes[i].Name)
			}
		}
	}

	// Reachability from the entry.
	reached := make([]bool, len(s.Nodes))
	stack := []int{byName[s.Entry]}
	reached[byName[s.Entry]] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !reached[w] {
				reached[w] = true
				stack = append(stack, w)
			}
		}
	}
	for i, r := range reached {
		if !r {
			return fmt.Errorf("%w: %q", ErrUnreachable, s.Nodes[i].Name)
		}
	}
	return nil
}

// ChainSpec builds the paper's 3-node web→app→db chain programmatically —
// the exact topology internal/ntier assembles. queries is the app→db
// visit ratio V_db and dbConnsPerApp each app replica's connection-pool
// size.
func ChainSpec(webModel, appModel, dbModel model.Params,
	webThreads, appThreads, dbConnsPerApp, dbMaxConns int,
	queries int,
	webReplicas, appReplicas, dbReplicas int,
	dbThrashKnee int, dbThrashCoef, dbThrashCap float64) Spec {
	return Spec{
		Name:  "chain3",
		Entry: "web",
		Nodes: []NodeSpec{
			{Name: "web", Model: webModel, Threads: webThreads, Replicas: webReplicas},
			{Name: "app", Model: appModel, Threads: appThreads, Replicas: appReplicas},
			{Name: "db", Model: dbModel, Threads: dbMaxConns, Replicas: dbReplicas,
				ThrashKnee: dbThrashKnee, ThrashCoef: dbThrashCoef, ThrashCap: dbThrashCap,
				BetaOnConfigured: true},
		},
		Edges: []EdgeSpec{
			{From: "web", To: "app", Visits: 1},
			{From: "app", To: "db", Visits: queries, PoolSize: dbConnsPerApp, PoolName: "dbpool"},
		},
	}
}
