package graph

import (
	"dcm/internal/invariant"
)

// CheckInvariants audits the application's conservation laws against the
// attached checker (no-op without one). Checking is read-only and free of
// events and randomness, so audited runs stay byte-identical.
//
// The laws, from the whole graph down to single members:
//
//   - whole-graph conservation: injected = Σ finished dispositions +
//     in-flight, with the disposition taxonomy consistent with the
//     completion/error counters;
//   - per-class conservation and the cross-class split (classified flows
//     plus the unclassed remainder sum to the whole-system taxonomy);
//   - per-node ledgers: every visit that reached a node is either finished
//     (counted once, fan-out joins included) or still on it;
//   - the entry ledger ties the graph to the front door: entry visits =
//     injected − brownout sheds (front-door sheds never reach a node);
//   - the async ledger: fire-and-forget deliveries spawned = finished +
//     in-flight, conserved separately from their parent requests;
//   - per-member thread/connection pool accounting.
func (a *App) CheckInvariants() {
	if a.chk == nil {
		return
	}
	now := a.eng.Now()
	if a.inFlight < 0 {
		a.chk.Violatef(now, invariant.RuleConservation, "graph", 0,
			"in-flight count negative (%d)", a.inFlight)
	}
	if total := a.disp.Total(); a.injected != total+uint64(a.inFlight) {
		a.chk.Violatef(now, invariant.RuleConservation, "graph", 0,
			"injected %d != %d finished dispositions + %d in-flight",
			a.injected, total, a.inFlight)
	}
	a.chk.Check(now, invariant.RuleMetrics, "graph",
		a.disp.CheckConsistent(a.completions.Total(), a.errored.Total()))
	if len(a.classes) > 0 {
		for i := range a.classes {
			st := &a.classes[i]
			name := "graph/class/" + a.cfg.Classes[i].Name
			if st.inFlight < 0 {
				a.chk.Violatef(now, invariant.RuleConservation, name, 0,
					"in-flight count negative (%d)", st.inFlight)
			}
			if total := a.classDisp.Counts(i).Total(); st.injected != total+uint64(st.inFlight) {
				a.chk.Violatef(now, invariant.RuleConservation, name, 0,
					"injected %d != %d finished dispositions + %d in-flight",
					st.injected, total, st.inFlight)
			}
			a.chk.Check(now, invariant.RuleMetrics, name,
				a.classDisp.Counts(i).CheckConsistent(st.completions, st.errored))
		}
		a.chk.Check(now, invariant.RuleMetrics, "graph/classes",
			a.classDisp.CheckConservation(a.unclassedDisp, a.disp))
	}
	for _, n := range a.nodes {
		name := "graph/node/" + n.spec.Name
		if n.inFlight < 0 {
			a.chk.Violatef(now, invariant.RuleConservation, name, 0,
				"node in-flight count negative (%d)", n.inFlight)
		}
		if total := n.visits.Total(); n.started != total+uint64(n.inFlight) {
			a.chk.Violatef(now, invariant.RuleConservation, name, 0,
				"visits started %d != %d finished + %d in-flight",
				n.started, total, n.inFlight)
		}
		if n.entry {
			if want := a.injected - a.brownoutSheds; n.started != want {
				a.chk.Violatef(now, invariant.RuleConservation, name, 0,
					"entry visits %d != injected %d - brownout sheds %d",
					n.started, a.injected, a.brownoutSheds)
			}
		}
	}
	if total := a.asyncDisp.Total(); a.asyncSpawned != total+uint64(a.asyncInFlight) {
		a.chk.Violatef(now, invariant.RuleConservation, "graph/async", 0,
			"async spawned %d != %d finished + %d in-flight",
			a.asyncSpawned, total, a.asyncInFlight)
	}
	if a.asyncInFlight < 0 {
		a.chk.Violatef(now, invariant.RuleConservation, "graph/async", 0,
			"async in-flight count negative (%d)", a.asyncInFlight)
	}
	for _, n := range a.nodes {
		for _, m := range a.Members(n.spec.Name) {
			a.chk.Check(now, invariant.RulePoolAccounting, n.spec.Name+"/"+m.Name(),
				m.srv.CheckInvariant())
			for _, p := range m.pools {
				if p == nil {
					continue
				}
				a.chk.Check(now, invariant.RulePoolAccounting, n.spec.Name+"/"+p.Name(),
					p.CheckInvariant())
			}
		}
	}
}

// CorruptLedgerForTest deliberately skews the whole-graph conservation
// ledger by delta injected requests without touching anything else. It
// exists solely so tests can prove CheckInvariants catches accounting
// drift; production code must never call it.
func (a *App) CorruptLedgerForTest(delta int) {
	a.injected = uint64(int64(a.injected) + int64(delta))
}

// CorruptNodeInFlightForTest forces a node's ledger in-flight count, for
// tests proving the per-node negative-count detection fires.
func (a *App) CorruptNodeInFlightForTest(nodeName string, v int) error {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return err
	}
	n.inFlight = v
	return nil
}
