package graph

import (
	"dcm/internal/metrics"
)

// Async fire-and-forget edges: the upstream visit publishes one message
// per visit to the edge's bus topic and continues immediately — the
// downstream work happens on its own clock and never affects the parent
// request's disposition. Deliveries are conserved in a separate ledger
// (AsyncLedger) so the whole-graph sweep still balances.

// asyncMsg is the payload published per fire-and-forget delivery.
type asyncMsg struct {
	// Profile names the demand profile the delivery runs under ("" = the
	// topology defaults).
	Profile string `json:"profile,omitempty"`
	// Seq is the spawn sequence number (1-based, per app).
	Seq uint64 `json:"seq"`
}

// fireAsync publishes the edge's visits and schedules their deliveries.
// The publish is durable-ordered through internal/bus — the consumer
// drains the topic in offset order — and the delivery itself is a normal
// node visit with no deadline and no upstream to answer to.
func (a *App) fireAsync(e *edge, visits int, prof *resolvedProfile) {
	for i := 0; i < visits; i++ {
		a.asyncSpawned++
		a.asyncInFlight++
		msg := asyncMsg{Profile: prof.name, Seq: a.asyncSpawned}
		if _, err := a.bs.Publish(e.topic, e.spec.key(), msg); err != nil {
			// Topic was created at build time; a failed publish means the
			// bus was closed under us. Account the delivery as errored so
			// the async ledger still conserves.
			a.asyncInFlight--
			a.asyncDisp.Observe(metrics.DispositionError)
			continue
		}
		a.eng.Schedule(0, func() { a.deliverAsync(e, prof) })
	}
}

// deliverAsync consumes one message from the edge's topic and runs the
// downstream visit. Each delivery begins its own trace identity: the
// parent request has already moved on.
func (a *App) deliverAsync(e *edge, prof *resolvedProfile) {
	recs, err := e.consumer.Poll(1)
	if err != nil || len(recs) == 0 {
		// Nothing buffered (another delivery raced us to the record);
		// conservation-wise this spawn still completes.
		a.asyncInFlight--
		a.asyncDisp.Observe(metrics.DispositionError)
		return
	}
	req := a.reqTracer.Begin()
	a.visitNode(req, 0, e.dst, 0, prof, false, nil, func(disp metrics.Disposition) {
		a.asyncInFlight--
		a.asyncDisp.Observe(disp)
	})
}
