package graph

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/bus"
	"dcm/internal/connpool"
	"dcm/internal/invariant"
	"dcm/internal/lb"
	"dcm/internal/metrics"
	"dcm/internal/model"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/server"
	"dcm/internal/sim"
	"dcm/internal/trace"
)

// Errors returned by the application.
var (
	ErrBadConfig     = errors.New("graph: invalid config")
	ErrUnknownNode   = errors.New("graph: unknown node")
	ErrUnknownMember = errors.New("graph: unknown member")
	ErrLastMember    = errors.New("graph: cannot remove the last member of a node")
)

// Config describes a graph application: the topology plus the knobs that
// apply uniformly across it.
type Config struct {
	// Spec is the validated topology.
	Spec Spec
	// NoiseSigma adds mean-one lognormal noise to every burst.
	NoiseSigma float64
	// Policy selects the load-balancing policy (default round-robin).
	Policy lb.Policy
	// Resilience configures the data-plane resilience features: request
	// deadlines propagated across every hop, per-backend circuit breakers
	// at the non-entry nodes, bounded admission queues and CoDel shedding.
	Resilience resilience.Config
	// Mix, when non-empty, enables the weighted request mix: each
	// injected request draws a profile by weight. Mutually exclusive with
	// Classes.
	Mix []Profile
	// Classes, when non-empty, enables workload-driven traffic classes
	// injected by index through InjectClass.
	Classes []Class
}

// node is one service of the graph: a balancer over replicas plus the
// node's out-edges and ledger.
type node struct {
	spec     NodeSpec
	idx      int
	entry    bool
	balancer *lb.Balancer
	members  map[string]*Member
	outs     []*edge
	ins      []*edge
	threads  int

	// res accumulates per-visit residence time (queue wait + burst + held
	// downstream calls).
	res metrics.MeanAccumulator

	// Per-node conservation ledger: every visit targeting the node is
	// counted when it starts and again when its disposition lands, so
	// started = dispositions + inFlight at all times.
	started  uint64
	inFlight int
	visits   metrics.DispositionCounts

	// Cache state (cache kind only).
	lru          *lruCache
	hits, misses uint64
}

func (n *node) isCache() bool { return n.spec.Kind == KindCache }

// edge is one directed dependency, with its live pool size and (for async
// edges) bus plumbing.
type edge struct {
	spec     EdgeSpec
	idx      int // index into App.edges
	pos      int // index into src.outs (and Member.pools)
	src, dst *node
	poolSize int
	topic    string
	consumer *bus.Consumer
}

func (e *edge) pooled() bool { return e.poolSize > 0 }

// Member is one replica of a node, together with the connection pools
// guarding its pooled out-edges.
type Member struct {
	srv   *server.Server
	node  *node
	pools []*connpool.Pool // parallel to node.outs; nil for unpooled edges
}

// Name returns the member's server name.
func (m *Member) Name() string { return m.srv.Name() }

// Accepting reports whether the member takes new work (lb.Backend).
func (m *Member) Accepting() bool { return m.srv.Accepting() }

// Load returns queued plus active requests (lb.Backend).
func (m *Member) Load() int { return m.srv.Active() + m.srv.QueueLen() }

// Server returns the underlying simulated server.
func (m *Member) Server() *server.Server { return m.srv }

// Pool returns the member's first out-edge connection pool (nil when none
// of the member's out-edges is pooled). The chain's app members have
// exactly one — their DB connection pool.
func (m *Member) Pool() *connpool.Pool {
	for _, p := range m.pools {
		if p != nil {
			return p
		}
	}
	return nil
}

// Pools returns the member's out-edge connection pools in out-edge order;
// entries for unpooled edges are nil.
func (m *Member) Pools() []*connpool.Pool { return m.pools }

var _ lb.Backend = (*Member)(nil)

// App is the assembled service-graph application.
type App struct {
	eng *sim.Engine
	rnd *rng.Rand
	cfg Config

	nodes      []*node
	nodeByName map[string]*node
	edges      []*edge
	edgeByKey  map[string]*edge
	entry      *node
	nameSeq    map[string]int

	completions metrics.Counter
	errored     metrics.Counter
	rts         metrics.MeanAccumulator
	rtWindow    []float64
	inFlight    int

	profiles   []resolvedProfile
	profWeight float64
	profStats  map[string]*profileAccum
	defaultPr  resolvedProfile

	traceRemaining int
	traces         []*RequestTrace

	reqTracer *trace.RequestTracer

	// Resilience state. breakers is keyed by server name and empty unless
	// the breaker feature is on.
	res      resilience.Config
	breakers map[string]*resilience.Breaker
	disp     metrics.DispositionCounts

	// Per-class accounting (empty / nil without Classes).
	classes       []classState
	classProfiles []resolvedProfile
	classDisp     *metrics.ClassDispositions
	unclassedDisp metrics.DispositionCounts

	// injected counts lifetime request arrivals; with the disposition
	// tally and inFlight it forms the whole-graph request-conservation law
	// injected = dispositions + in-flight that CheckInvariants asserts.
	injected uint64

	// Async ledger: fire-and-forget deliveries spawned over async edges
	// are conserved separately from the requests that spawned them.
	bs            *bus.Bus
	ownBus        bool
	asyncSpawned  uint64
	asyncInFlight int
	asyncDisp     metrics.DispositionCounts

	// Brownout state (driven by internal/degrade); see brownout.go.
	brownoutShed   float64
	brownoutAcc    float64
	brownoutSheds  uint64
	admissionScale float64

	chk      *invariant.Checker
	timedOut metrics.Counter
	rejected metrics.Counter
	shed     metrics.Counter
	brkOpen  metrics.Counter
	good     metrics.Counter
}

// New builds the application with cfg's topology. rnd must be a dedicated
// stream: member creation order and the mix draw consume from it, so the
// same seed and the same call sequence reproduce a run bit for bit.
func New(eng *sim.Engine, rnd *rng.Rand, cfg Config) (*App, error) {
	if eng == nil || rnd == nil {
		return nil, fmt.Errorf("%w: nil engine or rng", ErrBadConfig)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Resilience.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if len(cfg.Classes) > 0 && len(cfg.Mix) > 0 {
		return nil, fmt.Errorf("%w: classes and mix are mutually exclusive", ErrBadClass)
	}

	a := &App{
		eng:        eng,
		rnd:        rnd,
		cfg:        cfg,
		nodeByName: make(map[string]*node, len(cfg.Spec.Nodes)),
		edgeByKey:  make(map[string]*edge, len(cfg.Spec.Edges)),
		nameSeq:    make(map[string]int, len(cfg.Spec.Nodes)),
		profStats:  make(map[string]*profileAccum, len(cfg.Mix)),
		res:        cfg.Resilience,
		breakers:   make(map[string]*resilience.Breaker),

		admissionScale: 1,
	}
	for i, ns := range cfg.Spec.Nodes {
		n := &node{
			spec:     ns,
			idx:      i,
			entry:    ns.Name == cfg.Spec.Entry,
			balancer: lb.New(cfg.Policy),
			members:  make(map[string]*Member),
			threads:  ns.Threads,
		}
		if ns.Kind == KindCache && ns.CacheSize > 0 {
			n.lru = newLRUCache(ns.CacheSize)
		}
		if a.res.Breaker.Enabled() {
			// Breaker guard: a backend whose breaker is open (and not yet
			// cooled down) is skipped like a draining one.
			n.balancer.SetGuard(func(be lb.Backend) bool {
				br := a.breakers[be.Name()]
				return br == nil || br.Ready(a.eng.Now())
			})
		}
		a.nodes = append(a.nodes, n)
		a.nodeByName[ns.Name] = n
	}
	a.entry = a.nodeByName[cfg.Spec.Entry]
	for i, es := range cfg.Spec.Edges {
		e := &edge{
			spec:     es,
			idx:      i,
			src:      a.nodeByName[es.From],
			dst:      a.nodeByName[es.To],
			poolSize: es.PoolSize,
		}
		e.pos = len(e.src.outs)
		e.src.outs = append(e.src.outs, e)
		e.dst.ins = append(e.dst.ins, e)
		a.edges = append(a.edges, e)
		a.edgeByKey[es.key()] = e
		if es.Kind == EdgeAsync {
			if a.bs == nil {
				a.bs = bus.New()
				a.ownBus = true
			}
			e.topic = "graph/async/" + es.key()
			if err := a.bs.CreateTopic(e.topic, 0); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
			}
			e.consumer = a.bs.NewConsumer(e.topic, 0)
		}
	}

	if len(cfg.Mix) > 0 {
		w, err := a.resolveMix(cfg.Mix)
		if err != nil {
			return nil, err
		}
		a.profWeight = w
	}
	if len(cfg.Classes) > 0 {
		if err := a.resolveClasses(cfg.Classes); err != nil {
			return nil, err
		}
	}
	a.defaultPr, _ = a.resolveProfile(Profile{Name: ""}, ErrBadProfile)

	// Members are created node by node in declaration order, replica by
	// replica — the creation order (and so the rng split order) the chain
	// has always used: web-1, app-1, db-1.
	for _, n := range a.nodes {
		replicas := n.spec.Replicas
		if replicas == 0 {
			replicas = 1
		}
		for i := 0; i < replicas; i++ {
			if _, err := a.AddMember(n.spec.Name, ""); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

// Config returns the application's configuration. Live soft-resource
// state (threads, pool sizes) is on the nodes and edges; see NodeThreads
// and EdgePoolSize.
func (a *App) Config() Config { return a.cfg }

// Spec returns the topology the application was built from.
func (a *App) Spec() Spec { return a.cfg.Spec }

// Bus returns the bus backing the async edges (nil when the topology has
// none).
func (a *App) Bus() *bus.Bus { return a.bs }

// NodeNames lists the node names in declaration order.
func (a *App) NodeNames() []string {
	out := make([]string, len(a.nodes))
	for i, n := range a.nodes {
		out[i] = n.spec.Name
	}
	return out
}

// nodeOf resolves a node by name.
func (a *App) nodeOf(name string) (*node, error) {
	n, ok := a.nodeByName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, name)
	}
	return n, nil
}

// NodeModel returns the named node's Equation 5 law.
func (a *App) NodeModel(name string) (model.Params, error) {
	n, err := a.nodeOf(name)
	if err != nil {
		return model.Params{}, err
	}
	return n.spec.Model, nil
}

// NodeThreads returns the named node's per-replica thread allocation.
func (a *App) NodeThreads(name string) (int, error) {
	n, err := a.nodeOf(name)
	if err != nil {
		return 0, err
	}
	return n.threads, nil
}

// EdgePoolSize returns the per-source-replica connection-pool size of the
// from→to edge (0 = unpooled).
func (a *App) EdgePoolSize(from, to string) (int, error) {
	e, ok := a.edgeByKey[from+"->"+to]
	if !ok {
		return 0, fmt.Errorf("%w: edge %s->%s", ErrUnknownNode, from, to)
	}
	return e.poolSize, nil
}

// AddMember creates a new replica of the node with the node's current
// soft allocation and registers it with the balancer. An empty name
// auto-generates one ("app-2"). It returns the new member.
func (a *App) AddMember(nodeName, name string) (*Member, error) {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return nil, err
	}
	if name == "" {
		a.nameSeq[nodeName]++
		name = fmt.Sprintf("%s-%d", nodeName, a.nameSeq[nodeName])
	}
	if _, exists := n.members[name]; exists {
		return nil, fmt.Errorf("graph: member %q already exists in %s", name, nodeName)
	}

	srvCfg := server.Config{
		Name:       name,
		NoiseSigma: a.cfg.NoiseSigma,
	}
	if a.res.Enabled() {
		// Admission control applies uniformly at every node. A member
		// added during a brownout starts at the scaled-down cap, not the
		// configured one.
		srvCfg.MaxQueue = a.res.MaxQueue
		if a.res.MaxQueue > 0 && a.admissionScale < 1 {
			srvCfg.MaxQueue = a.scaledMaxQueue()
		}
		srvCfg.CoDelTarget = a.res.CoDelTarget
		srvCfg.CoDelInterval = a.res.CoDelInterval
	}
	srvCfg.Model, srvCfg.PoolSize = n.spec.Model, n.threads
	srvCfg.ThrashKnee, srvCfg.ThrashCoef = n.spec.ThrashKnee, n.spec.ThrashCoef
	srvCfg.ThrashCap = n.spec.ThrashCap
	srvCfg.BetaOnConfigured = n.spec.BetaOnConfigured
	if n.spec.Distribution == DistExponential {
		srvCfg.Distribution = server.DistExponential
	}
	srv, err := server.New(a.eng, a.rnd.Split("server/"+name), srvCfg)
	if err != nil {
		return nil, fmt.Errorf("graph: add %s member: %w", nodeName, err)
	}
	m := &Member{srv: srv, node: n, pools: make([]*connpool.Pool, len(n.outs))}
	for _, e := range n.outs {
		if !e.pooled() {
			continue
		}
		p, err := connpool.New(a.eng, name+"/"+e.spec.poolSuffix(), e.poolSize)
		if err != nil {
			return nil, fmt.Errorf("graph: add %s member: %w", nodeName, err)
		}
		if a.res.Enabled() && a.res.MaxPoolWaiters > 0 {
			p.SetMaxWaiters(a.res.MaxPoolWaiters)
		}
		m.pools[e.pos] = p
	}
	// Breakers guard calls *into* downstream nodes. The entry node is the
	// system's front door: opening a breaker there is a self-inflicted
	// outage, so it relies on admission control instead.
	if a.res.Breaker.Enabled() && !n.entry {
		a.breakers[name] = resilience.NewBreaker(a.res.Breaker)
	}
	if err := n.balancer.Add(m); err != nil {
		return nil, fmt.Errorf("graph: register %q: %w", name, err)
	}
	n.members[name] = m
	if a.reqTracer != nil {
		m.srv.SetTracer(a.reqTracer, nodeName)
		for _, p := range m.pools {
			if p != nil {
				p.SetTracer(a.reqTracer, nodeName)
			}
		}
	}
	if a.chk != nil {
		m.srv.SetInvariantChecker(a.chk)
		for _, p := range m.pools {
			if p != nil {
				p.SetInvariantChecker(a.chk)
			}
		}
		if br := a.breakers[name]; br != nil {
			br.SetStateHook(a.breakerTransitionHook(name))
		}
	}
	a.refreshConfigured()
	return m, nil
}

// SetRequestTracer attaches a request tracer to every current and future
// server and connection pool of the application (nil detaches).
func (a *App) SetRequestTracer(tr *trace.RequestTracer) {
	a.reqTracer = tr
	for _, n := range a.nodes {
		for _, m := range n.members {
			m.srv.SetTracer(tr, n.spec.Name)
			for _, p := range m.pools {
				if p != nil {
					p.SetTracer(tr, n.spec.Name)
				}
			}
		}
	}
}

// breakerTransitionHook returns the state-change observer validating the
// named member's breaker transitions against the legal state machine.
func (a *App) breakerTransitionHook(name string) func(from, to resilience.BreakerState) {
	return func(from, to resilience.BreakerState) {
		a.chk.BreakerTransition(a.eng.Now(), "breaker "+name, from.String(), to.String())
	}
}

// SetInvariantChecker attaches an invariant checker to the application
// and every current and future server, connection pool and circuit
// breaker (nil detaches). Checking is read-only: it draws no randomness
// and schedules no events, so checked and unchecked runs are
// byte-identical.
func (a *App) SetInvariantChecker(c *invariant.Checker) {
	a.chk = c
	for _, n := range a.nodes {
		for _, m := range n.members {
			m.srv.SetInvariantChecker(c)
			for _, p := range m.pools {
				if p != nil {
					p.SetInvariantChecker(c)
				}
			}
		}
	}
	for name, br := range a.breakers {
		if c == nil {
			br.SetStateHook(nil)
		} else {
			br.SetStateHook(a.breakerTransitionHook(name))
		}
	}
}

// refreshConfigured re-derives the configured concurrency of every node
// fed by pooled in-edges: the total upstream connections allocated toward
// the node, divided over its accepting replicas. Called on every topology
// or connection-pool change.
func (a *App) refreshConfigured() {
	for _, n := range a.nodes {
		total := 0
		fed := false
		for _, e := range n.ins {
			if !e.pooled() {
				continue
			}
			fed = true
			srcs := 0
			for _, m := range e.src.members {
				if m.srv.Accepting() {
					srcs++
				}
			}
			total += e.poolSize * srcs
		}
		if !fed {
			continue
		}
		dsts := 0
		for _, m := range n.members {
			if m.srv.Accepting() {
				dsts++
			}
		}
		if dsts == 0 {
			continue
		}
		per := (total + dsts - 1) / dsts
		for _, m := range n.members {
			m.srv.SetConfiguredConcurrency(per)
		}
	}
}

// Member returns the named replica of a node.
func (a *App) Member(nodeName, name string) (*Member, error) {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return nil, err
	}
	m, ok := n.members[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownMember, nodeName, name)
	}
	return m, nil
}

// Members returns the node's members in balancer registration order.
func (a *App) Members(nodeName string) []*Member {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return nil
	}
	backends := n.balancer.Backends()
	out := make([]*Member, 0, len(backends))
	for _, b := range backends {
		if m, ok := n.members[b.Name()]; ok {
			out = append(out, m)
		}
	}
	return out
}

// MemberCount returns the number of replicas of the node (including
// draining ones still attached).
func (a *App) MemberCount(nodeName string) int {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return 0
	}
	return len(n.members)
}

// StartDrain marks a member as draining (no new work) and invokes
// onDrained once it is idle, after which the member may be removed.
// Draining the last accepting member of a node is rejected — it would
// black-hole all traffic.
func (a *App) StartDrain(nodeName, name string, onDrained func()) error {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return err
	}
	m, ok := n.members[name]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnknownMember, nodeName, name)
	}
	if m.srv.Accepting() && n.balancer.ReadyCount() <= 1 {
		return fmt.Errorf("%w: %s", ErrLastMember, nodeName)
	}
	m.srv.SetAccepting(false)
	var poll func()
	poll = func() {
		if m.srv.Active() == 0 && m.srv.QueueLen() == 0 && m.poolsIdle() {
			if onDrained != nil {
				onDrained()
			}
			return
		}
		a.eng.Schedule(100*time.Millisecond, poll)
	}
	a.eng.Schedule(0, poll)
	return nil
}

// poolsIdle reports whether every out-edge pool of the member is unused.
func (m *Member) poolsIdle() bool {
	for _, p := range m.pools {
		if p != nil && p.InUse() > 0 {
			return false
		}
	}
	return true
}

// RemoveMember detaches a drained member from its node. Removing a member
// that is still accepting or busy is an error; callers should StartDrain
// first.
func (a *App) RemoveMember(nodeName, name string) error {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return err
	}
	m, ok := n.members[name]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnknownMember, nodeName, name)
	}
	if m.srv.Accepting() {
		return fmt.Errorf("graph: remove %s/%s: still accepting (drain first)", nodeName, name)
	}
	if m.srv.Active() > 0 || m.srv.QueueLen() > 0 {
		return fmt.Errorf("graph: remove %s/%s: still busy", nodeName, name)
	}
	if err := n.balancer.Remove(name); err != nil {
		return fmt.Errorf("graph: remove %s/%s: %w", nodeName, name, err)
	}
	delete(n.members, name)
	delete(a.breakers, name)
	a.refreshConfigured()
	return nil
}

// FailMember crashes a member abruptly (failure injection): it is removed
// from the balancer immediately, queued requests fail, and in-flight
// requests on it are lost. Unlike StartDrain, failing the last member of
// a node is allowed — crashes do not ask permission.
func (a *App) FailMember(nodeName, name string) error {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return err
	}
	m, ok := n.members[name]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnknownMember, nodeName, name)
	}
	if err := n.balancer.Remove(name); err != nil {
		return fmt.Errorf("graph: fail %s/%s: %w", nodeName, name, err)
	}
	delete(n.members, name)
	delete(a.breakers, name)
	m.srv.Kill()
	a.refreshConfigured()
	return nil
}

// SetNodeThreads resizes every replica's thread pool of the node and
// updates the allocation used for future replicas.
func (a *App) SetNodeThreads(nodeName string, v int) error {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return err
	}
	if v < 1 {
		v = 1
	}
	n.threads = v
	for _, m := range a.Members(nodeName) {
		m.srv.SetPoolSize(v)
	}
	return nil
}

// SetEdgePoolSize resizes every source replica's connection pool on the
// from→to edge and updates the allocation for future replicas. The edge
// must be pooled.
func (a *App) SetEdgePoolSize(from, to string, v int) error {
	e, ok := a.edgeByKey[from+"->"+to]
	if !ok {
		return fmt.Errorf("%w: edge %s->%s", ErrUnknownNode, from, to)
	}
	if !e.pooled() {
		return fmt.Errorf("%w: edge %s->%s has no connection pool", ErrBadConfig, from, to)
	}
	if v < 1 {
		v = 1
	}
	e.poolSize = v
	for _, m := range a.Members(e.src.spec.Name) {
		if p := m.pools[e.pos]; p != nil {
			p.Resize(v)
		}
	}
	a.refreshConfigured()
	return nil
}

// InFlight returns the number of requests currently inside the system.
func (a *App) InFlight() int { return a.inFlight }

// TotalCompletions returns the lifetime number of completed requests.
func (a *App) TotalCompletions() uint64 { return a.completions.Total() }

// TotalErrors returns the lifetime number of failed requests.
func (a *App) TotalErrors() uint64 { return a.errored.Total() }

// TotalGood returns the lifetime number of good completions — requests
// that finished within the resilience config's goodput SLA. Zero when
// resilience is disabled.
func (a *App) TotalGood() uint64 { return a.good.Total() }

// TotalInjected returns the lifetime count of injected requests.
func (a *App) TotalInjected() uint64 { return a.injected }

// Dispositions returns the lifetime disposition tally of finished
// requests (ok, error, timeout, rejected, shed, breaker-open).
func (a *App) Dispositions() metrics.DispositionCounts { return a.disp }

// Breaker returns the named member's circuit breaker, nil when breakers
// are disabled or the member is unknown.
func (a *App) Breaker(name string) *resilience.Breaker { return a.breakers[name] }

// AsyncLedger returns the async fire-and-forget ledger: deliveries
// spawned, their finished dispositions, and the in-flight count.
func (a *App) AsyncLedger() (spawned uint64, done metrics.DispositionCounts, inFlight int) {
	return a.asyncSpawned, a.asyncDisp, a.asyncInFlight
}

// CacheStats returns the named cache node's lifetime hit/miss counts.
func (a *App) CacheStats(nodeName string) (hits, misses uint64, err error) {
	n, err := a.nodeOf(nodeName)
	if err != nil {
		return 0, 0, err
	}
	return n.hits, n.misses, nil
}

// NodeHistogramSet is the merged always-on histogram view of one node.
type NodeHistogramSet struct {
	QueueDepth  *metrics.Histogram
	ServiceTime *metrics.Histogram
	PoolWait    *metrics.Histogram // nil unless the node has pooled out-edges
}

// NodeHistograms merges every current member's lifetime histograms into
// one per-node view. Members removed earlier (drained or crashed) are not
// included.
func (a *App) NodeHistograms(nodeName string) (NodeHistogramSet, error) {
	if _, err := a.nodeOf(nodeName); err != nil {
		return NodeHistogramSet{}, err
	}
	var out NodeHistogramSet
	for _, m := range a.Members(nodeName) {
		if out.QueueDepth == nil {
			out.QueueDepth = m.srv.QueueDepthHistogram().CloneEmpty()
			out.ServiceTime = m.srv.ServiceTimeHistogram().CloneEmpty()
		}
		out.QueueDepth.Merge(m.srv.QueueDepthHistogram())
		out.ServiceTime.Merge(m.srv.ServiceTimeHistogram())
		for _, p := range m.pools {
			if p == nil {
				continue
			}
			if out.PoolWait == nil {
				out.PoolWait = p.WaitHistogram().CloneEmpty()
			}
			out.PoolWait.Merge(p.WaitHistogram())
		}
	}
	return out, nil
}

// NodeQueueDepthTotals returns the lifetime sum and count of queue-depth
// observations across the node's current members, in balancer order.
func (a *App) NodeQueueDepthTotals(nodeName string) (sum float64, count uint64) {
	for _, m := range a.Members(nodeName) {
		h := m.srv.QueueDepthHistogram()
		sum += h.Sum()
		count += h.Count()
	}
	return sum, count
}
