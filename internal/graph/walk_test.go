package graph

import (
	"testing"
	"time"

	"dcm/internal/invariant"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// newTestApp builds an app over spec with an attached invariant checker.
func newTestApp(t *testing.T, spec Spec, res resilience.Config) (*sim.Engine, *App, *invariant.Checker) {
	t.Helper()
	eng := sim.NewEngine()
	app, err := New(eng, rng.New(1).Split("app"), Config{Spec: spec, Resilience: res})
	if err != nil {
		t.Fatal(err)
	}
	chk := invariant.New()
	app.SetInvariantChecker(chk)
	return eng, app, chk
}

// requireClean fails on any recorded invariant violation.
func requireClean(t *testing.T, app *App, chk *invariant.Checker) {
	t.Helper()
	app.CheckInvariants()
	if vs := chk.Violations(); len(vs) > 0 {
		t.Fatalf("%d invariant violation(s):\n%s", len(vs), invariant.Render(vs))
	}
}

// TestParallelJoinCountsPartialFailureOnce drives a 3-way parallel
// fan-out into a node with one thread and a one-slot admission queue:
// two branches serve, the third is rejected at the door. The join must
// adopt the failed branch's disposition exactly once — the request is one
// Rejected in the whole-graph ledger, not three — while the per-node
// ledger still records every branch visit, and conservation must hold.
func TestParallelJoinCountsPartialFailureOnce(t *testing.T) {
	t.Parallel()
	spec := Spec{
		Name:  "join",
		Entry: "a",
		Nodes: []NodeSpec{
			{Name: "a", Model: testModel(), Threads: 4},
			{Name: "b", Model: testModel(), Threads: 1},
		},
		Edges: []EdgeSpec{{From: "a", To: "b", Kind: EdgeParallel, Visits: 3}},
	}
	eng, app, chk := newTestApp(t, spec, resilience.Config{MaxQueue: 1})

	app.Inject(func(rt time.Duration, ok bool) {
		if ok {
			t.Error("request with a failed branch reported ok")
		}
	})
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}

	d := app.Dispositions()
	if d.Rejected != 1 || d.Total() != 1 {
		t.Fatalf("whole-graph dispositions %+v, want exactly one Rejected", d)
	}
	visits := app.NodeVisits()
	b := visits["b"]
	if b.Started != 3 || b.Dispositions.OK != 2 || b.Dispositions.Rejected != 1 {
		t.Fatalf("node b ledger %+v, want 3 branch visits (2 OK, 1 Rejected)", b)
	}
	a := visits["a"]
	if a.Started != 1 || a.Dispositions.Rejected != 1 {
		t.Fatalf("node a ledger %+v, want the join's single Rejected", a)
	}
	requireClean(t, app, chk)
}

// TestParallelJoinAllBranchesOK is the happy-path control: every branch
// completes, the join is one OK.
func TestParallelJoinAllBranchesOK(t *testing.T) {
	t.Parallel()
	spec := Spec{
		Name:  "join-ok",
		Entry: "a",
		Nodes: []NodeSpec{
			{Name: "a", Model: testModel(), Threads: 4},
			{Name: "b", Model: testModel(), Threads: 4},
		},
		Edges: []EdgeSpec{{From: "a", To: "b", Kind: EdgeParallel, Visits: 3}},
	}
	eng, app, chk := newTestApp(t, spec, resilience.Config{})
	oks := 0
	app.Inject(func(rt time.Duration, ok bool) {
		if ok {
			oks++
		}
	})
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if oks != 1 {
		t.Fatalf("completions %d, want 1", oks)
	}
	if d := app.Dispositions(); d.OK != 1 || d.Total() != 1 {
		t.Fatalf("dispositions %+v", d)
	}
	if b := app.NodeVisits()["b"]; b.Started != 3 || b.Dispositions.OK != 3 {
		t.Fatalf("node b ledger %+v, want 3 OK branch visits", b)
	}
	requireClean(t, app, chk)
}

// TestAsyncEdgeAccounting pins the fire-and-forget ledger: async
// deliveries never touch the caller's disposition, and every spawn is
// eventually accounted done with the async in-flight gauge back at zero.
func TestAsyncEdgeAccounting(t *testing.T) {
	t.Parallel()
	spec := Spec{
		Name:  "async",
		Entry: "front",
		Nodes: []NodeSpec{
			{Name: "front", Model: testModel(), Threads: 8},
			{Name: "audit", Model: testModel(), Threads: 1},
		},
		Edges: []EdgeSpec{{From: "front", To: "audit", Kind: EdgeAsync, Visits: 2}},
	}
	eng, app, chk := newTestApp(t, spec, resilience.Config{})
	const n = 5
	oks := 0
	for i := 0; i < n; i++ {
		app.Inject(func(rt time.Duration, ok bool) {
			if ok {
				oks++
			}
		})
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if oks != n {
		t.Fatalf("caller completions %d, want %d — async outcomes leaked into callers", oks, n)
	}
	if d := app.Dispositions(); d.OK != n || d.Total() != n {
		t.Fatalf("caller dispositions %+v", d)
	}
	spawned, done, inFlight := app.AsyncLedger()
	if spawned != 2*n || done.OK != 2*n || inFlight != 0 {
		t.Fatalf("async ledger spawned=%d done=%+v inFlight=%d, want %d/%d/0",
			spawned, done, inFlight, 2*n, 2*n)
	}
	if audit := app.NodeVisits()["audit"]; audit.Started != 2*n || audit.Dispositions.OK != 2*n {
		t.Fatalf("audit ledger %+v, want %d delivered visits", audit, 2*n)
	}
	requireClean(t, app, chk)
}

// TestAsyncInFlightAtHorizon stops the clock while deliveries are still
// queued behind the slow audit node: the ledger must show the outstanding
// work, and the conservation sweep must stay clean (spawned = done +
// in-flight is the async invariant, not spawned = done).
func TestAsyncInFlightAtHorizon(t *testing.T) {
	t.Parallel()
	slow := testModel()
	slow.S0 = 50e-3 // 50 ms per delivery through one thread
	spec := Spec{
		Name:  "async-backlog",
		Entry: "front",
		Nodes: []NodeSpec{
			{Name: "front", Model: testModel(), Threads: 8},
			{Name: "audit", Model: slow, Threads: 1},
		},
		Edges: []EdgeSpec{{From: "front", To: "audit", Kind: EdgeAsync, Visits: 1}},
	}
	eng, app, chk := newTestApp(t, spec, resilience.Config{})
	const n = 10
	for i := 0; i < n; i++ {
		app.Inject(func(time.Duration, bool) {})
	}
	// 10 deliveries need ~500 ms; stop at 120 ms with a backlog.
	if err := eng.Run(120 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	spawned, done, inFlight := app.AsyncLedger()
	if spawned != n {
		t.Fatalf("spawned %d, want %d", spawned, n)
	}
	if inFlight == 0 || done.Total() == uint64(n) {
		t.Fatalf("expected an async backlog at the horizon: done=%+v inFlight=%d", done, inFlight)
	}
	if done.Total()+uint64(inFlight) != uint64(n) {
		t.Fatalf("async ledger leak: spawned=%d done=%d inFlight=%d", spawned, done.Total(), inFlight)
	}
	requireClean(t, app, chk)
}

// TestCacheHitRatioShortCircuit pins the cache node semantics at the
// extremes: hit ratio 1 never visits downstream, hit ratio 0 always does.
func TestCacheHitRatioShortCircuit(t *testing.T) {
	t.Parallel()
	build := func(ratio float64) Spec {
		return Spec{
			Name:  "cache",
			Entry: "web",
			Nodes: []NodeSpec{
				{Name: "web", Model: testModel(), Threads: 8},
				{Name: "mc", Kind: KindCache, Model: testModel(), Threads: 8, HitRatio: ratio},
				{Name: "db", Model: testModel(), Threads: 4},
			},
			Edges: []EdgeSpec{
				{From: "web", To: "mc", Visits: 1},
				{From: "mc", To: "db", Visits: 2},
			},
		}
	}
	const n = 20
	for _, tc := range []struct {
		ratio    float64
		dbVisits uint64
	}{{1, 0}, {0, 2 * n}} {
		eng, app, chk := newTestApp(t, build(tc.ratio), resilience.Config{})
		for i := 0; i < n; i++ {
			app.Inject(func(time.Duration, bool) {})
		}
		if err := eng.Run(time.Minute); err != nil {
			t.Fatal(err)
		}
		if d := app.Dispositions(); d.OK != n {
			t.Fatalf("ratio %v: dispositions %+v", tc.ratio, d)
		}
		if db := app.NodeVisits()["db"]; db.Started != tc.dbVisits {
			t.Fatalf("ratio %v: db saw %d visits, want %d", tc.ratio, db.Started, tc.dbVisits)
		}
		hits, misses, err := app.CacheStats("mc")
		if err != nil {
			t.Fatal(err)
		}
		if hits+misses != n {
			t.Fatalf("ratio %v: %d lookups recorded, want %d", tc.ratio, hits+misses, n)
		}
		requireClean(t, app, chk)
	}
}

// TestLRUCache pins the recency semantics of the cache node's LRU.
func TestLRUCache(t *testing.T) {
	t.Parallel()
	c := newLRUCache(2)
	if c.Access(1) {
		t.Fatal("cold cache hit")
	}
	if !c.Access(1) {
		t.Fatal("resident key missed")
	}
	c.Access(2)      // {2, 1}
	c.Access(1)      // touch 1 -> {1, 2}
	if c.Access(3) { // evicts 2 -> {3, 1}
		t.Fatal("insert of new key reported a hit")
	}
	if c.Access(2) {
		t.Fatal("evicted key still resident")
	}
	// Inserting 2 evicted 1 (LRU after the 3 insert): {2, 3}.
	if !c.Access(3) {
		t.Fatal("recently used key evicted out of order")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want capacity 2", c.Len())
	}
}
