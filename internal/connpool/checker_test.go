package connpool

import (
	"strings"
	"testing"

	"dcm/internal/invariant"
)

// TestCheckInvariantLedgerAndCap exercises the CheckInvariant clauses
// added with the grant/release ledger and the waiter cap: each corruption
// must be named, and a clean pool under load must still verify.
func TestCheckInvariantLedgerAndCap(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		corrupt func(p *Pool)
		want    string
	}{
		{"release-ledger-drift", func(p *Pool) { p.releases++ }, "grants"},
		{"grant-ledger-drift", func(p *Pool) { p.grants.Inc(1) }, "grants"},
		{"waiter-cap-overflow", func(p *Pool) {
			// Acquire rejects new waiters beyond the cap, so the only way
			// Waiting() > maxWaiters is the cap shrinking under live
			// waiters — which SetMaxWaiters must never allow silently.
			p.maxWaiters = 1
		}, "exceed cap"},
		{"dead-waiter-overflow", func(p *Pool) { p.waitersDead = len(p.waiters) + 1 }, "dead-waiter"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, p := newPool(t, 2)
			// Saturate the pool and queue two waiters so every clause has
			// live state to disagree with.
			for i := 0; i < 2; i++ {
				p.Acquire(func(c *Conn) {})
			}
			for i := 0; i < 2; i++ {
				p.Acquire(func(c *Conn) {
					if c != nil {
						t.Error("waiter granted on a saturated pool")
					}
				})
			}
			if err := p.CheckInvariant(); err != nil {
				t.Fatalf("clean pool: %v", err)
			}
			tc.corrupt(p)
			err := p.CheckInvariant()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCheckerRecordsNegativeInUseOnRelease wires a checker and corrupts
// the in-use count before a release; the inline check on Conn.Release
// must record a pool-accounting violation.
func TestCheckerRecordsNegativeInUseOnRelease(t *testing.T) {
	t.Parallel()
	_, p := newPool(t, 2)
	chk := invariant.New()
	p.SetInvariantChecker(chk)
	var conn *Conn
	p.Acquire(func(c *Conn) { conn = c })
	if conn == nil {
		t.Fatal("no grant")
	}
	p.inUse = 0 // corrupt: the ledger forgets the grant
	conn.Release()
	vs := chk.Violations()
	if len(vs) != 1 || vs[0].Rule != invariant.RulePoolAccounting {
		t.Fatalf("violations = %+v, want one pool-accounting record", vs)
	}
	if !strings.Contains(vs[0].Detail, "negative") {
		t.Fatalf("detail = %q", vs[0].Detail)
	}
}

// TestCheckerSilentOnCleanLifecycle pins zero false positives through a
// saturate/queue/release cycle with the checker attached.
func TestCheckerSilentOnCleanLifecycle(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 2)
	chk := invariant.New()
	p.SetInvariantChecker(chk)
	var held []*Conn
	granted := 0
	for i := 0; i < 5; i++ {
		p.Acquire(func(c *Conn) {
			if c != nil {
				granted++
				held = append(held, c)
			}
		})
	}
	for len(held) > 0 {
		c := held[0]
		held = held[1:]
		c.Release()
	}
	if err := eng.Run(0); err != nil {
		t.Fatal(err)
	}
	if granted != 5 {
		t.Fatalf("granted %d of 5", granted)
	}
	if err := p.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if chk.Total() != 0 {
		t.Fatalf("clean lifecycle recorded %d violation(s):\n%s",
			chk.Total(), invariant.Render(chk.Violations()))
	}
}
