// Package connpool simulates a database connection pool — the Tomcat-side
// soft resource that bounds the request-processing concurrency of the
// downstream MySQL tier (§II-A, §IV-B).
//
// The paper modified RUBBoS so all servlets share one global pool per
// Tomcat "in order to precisely control the number of concurrent requests
// flowing to the downstream MySQL"; a Pool models exactly that shared pool:
// FIFO acquisition, blocking waiters, and runtime resizing by the
// APP-agent.
package connpool

import (
	"errors"
	"fmt"

	"dcm/internal/invariant"
	"dcm/internal/metrics"
	"dcm/internal/sim"
	"dcm/internal/trace"
)

// ErrBadSize is returned for non-positive pool sizes at construction.
var ErrBadSize = errors.New("connpool: size must be >= 1")

// Pool is a counted resource with FIFO waiters. It must only be used from
// the simulation goroutine.
//
// Accounting invariant: size == inUse + free + leaked, where inUse counts
// connections held by requests, leaked counts connections consumed by an
// injected leak, and free = size - inUse - leaked is the admission
// headroom. free can go transiently negative — a leak lands while requests
// hold connections, or Resize shrinks below the held count — and the pool
// drains back to the invariant as connections release; it never admits
// while free <= 0. CheckInvariant verifies the identity.
type Pool struct {
	eng         *sim.Engine
	name        string
	size        int
	inUse       int
	leaked      int
	waiters     []*waiter
	waitersDead int // timed-out waiters still occupying queue slots
	maxWaiters  int

	held       metrics.TimeWeighted
	waits      metrics.MeanAccumulator
	grants     metrics.Counter
	timeouts   metrics.Counter
	rejections metrics.Counter
	waitHist   *metrics.Histogram

	tracer *trace.RequestTracer
	tier   string

	// releases is the lifetime number of returned connections; together
	// with grants and inUse it forms the conservation law
	// grants = releases + inUse checked by CheckInvariant.
	releases uint64
	chk      *invariant.Checker
}

// waiter is one blocked acquisition: the outcome-aware callback plus the
// deadline bookkeeping (timer, enqueue time, and the done flag marking
// timed-out waiters that occupy a slot until lazily removed).
type waiter struct {
	fn        func(*Conn, metrics.Disposition)
	req       uint64
	enqueueAt sim.Time
	deadline  sim.Time
	timer     sim.Timer
	done      bool
}

// poolWaitBounds is the shared bucket layout for acquisition-wait
// histograms (seconds, 0.1 ms to ~52 s), matching the server layout so
// per-tier reports line up.
var poolWaitBounds = metrics.ExpBuckets(1e-4, 2, 20)

// Conn is one acquired connection.
type Conn struct {
	p        *Pool
	released bool
}

// New returns a pool with the given size.
func New(eng *sim.Engine, name string, size int) (*Pool, error) {
	if eng == nil {
		return nil, errors.New("connpool: nil engine")
	}
	if size < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, size)
	}
	return &Pool{eng: eng, name: name, size: size, waitHist: metrics.NewHistogram(poolWaitBounds)}, nil
}

// Name returns the pool name.
func (p *Pool) Name() string { return p.name }

// Size returns the configured pool size.
func (p *Pool) Size() int { return p.size }

// InUse returns the number of connections currently held by requests.
// Leaked connections are not in use — they are reported by Leaked — so a
// drain that waits for InUse to reach zero completes even under an
// unrepaired leak.
func (p *Pool) InUse() int { return p.inUse }

// Waiting returns the number of blocked acquirers. Timed-out waiters whose
// slots have not been compacted yet do not count.
func (p *Pool) Waiting() int { return len(p.waiters) - p.waitersDead }

// SetMaxWaiters bounds the waiter queue: an acquisition arriving when
// MaxWaiters acquirers are already blocked is rejected immediately (its
// callback runs with a nil connection and DispositionRejected). Zero or
// negative disables the bound — the historical behaviour.
func (p *Pool) SetMaxWaiters(n int) {
	if n < 0 {
		n = 0
	}
	p.maxWaiters = n
}

// Leaked returns the number of connections currently consumed by Leak.
func (p *Pool) Leaked() int { return p.leaked }

// Free returns the admission headroom size - inUse - leaked. It is
// negative while the pool is over-committed (after a leak or a shrink
// below the held count).
func (p *Pool) Free() int { return p.size - p.inUse - p.leaked }

// CheckInvariant verifies size == inUse + free + leaked and the
// non-negativity of each component count, returning a descriptive error on
// violation. Free may be negative (over-commit) — that is a legal
// transient — but inUse and leaked never.
func (p *Pool) CheckInvariant() error {
	if p.inUse < 0 || p.leaked < 0 || p.size < 1 {
		return fmt.Errorf("connpool %s: negative accounting: size=%d inUse=%d leaked=%d",
			p.name, p.size, p.inUse, p.leaked)
	}
	if got := p.inUse + p.Free() + p.leaked; got != p.size {
		return fmt.Errorf("connpool %s: invariant broken: inUse(%d) + free(%d) + leaked(%d) = %d != size(%d)",
			p.name, p.inUse, p.Free(), p.leaked, got, p.size)
	}
	if p.Free() > 0 && p.Waiting() > 0 {
		return fmt.Errorf("connpool %s: %d waiters blocked with free=%d", p.name, p.Waiting(), p.Free())
	}
	if p.waitersDead < 0 || p.waitersDead > len(p.waiters) {
		return fmt.Errorf("connpool %s: dead-waiter accounting broken: dead=%d of %d slots",
			p.name, p.waitersDead, len(p.waiters))
	}
	if p.grants.Total() != p.releases+uint64(p.inUse) {
		return fmt.Errorf("connpool %s: grants %d != releases %d + inUse %d",
			p.name, p.grants.Total(), p.releases, p.inUse)
	}
	if p.maxWaiters > 0 && p.Waiting() > p.maxWaiters {
		return fmt.Errorf("connpool %s: %d waiters exceed cap %d", p.name, p.Waiting(), p.maxWaiters)
	}
	return nil
}

// SetInvariantChecker attaches an invariant checker (nil detaches).
// Checking is read-only and never perturbs scheduling.
func (p *Pool) SetInvariantChecker(c *invariant.Checker) { p.chk = c }

// SetTracer attaches a request tracer (nil detaches) and the tier label
// recorded on this pool's wait events.
func (p *Pool) SetTracer(tr *trace.RequestTracer, tier string) {
	p.tracer = tr
	p.tier = tier
}

// WaitHistogram returns the histogram of acquisition waits (seconds) over
// the pool's lifetime.
func (p *Pool) WaitHistogram() *metrics.Histogram { return p.waitHist }

// Leak permanently consumes k connections — the chaos connection-leak
// fault (an application bug holding connections it never returns). Leaked
// connections count against the pool size immediately, even when that
// over-commits the pool: requests already holding connections keep them,
// and the pool's effective capacity shrinks as they release. The leak
// persists until Unleak repairs it. Non-positive k is a no-op.
func (p *Pool) Leak(k int) {
	if k <= 0 {
		return
	}
	p.leaked += k
	p.held.Set(p.eng.Now(), float64(p.inUse+p.leaked))
}

// Unleak repairs up to k leaked connections (all of them when k exceeds
// the current leak), returning them to the pool and admitting waiters.
func (p *Pool) Unleak(k int) {
	if k > p.leaked {
		k = p.leaked
	}
	if k <= 0 {
		return
	}
	p.leaked -= k
	p.held.Set(p.eng.Now(), float64(p.inUse+p.leaked))
	p.admit()
}

// Acquire requests a connection; fn runs as soon as one is available, in
// FIFO order behind earlier waiters.
func (p *Pool) Acquire(fn func(*Conn)) { p.AcquireFor(0, fn) }

// AcquireFor is Acquire carrying the tracing request ID (0 = untraced).
func (p *Pool) AcquireFor(req uint64, fn func(*Conn)) {
	if fn == nil {
		return
	}
	p.AcquireDeadline(req, 0, func(c *Conn, _ metrics.Disposition) { fn(c) })
}

// AcquireDeadline is AcquireFor with resilience semantics: deadline (zero
// = none) is the request's absolute deadline — a waiter still blocked when
// it expires fails with DispositionTimeout and never consumes a
// connection — and fn receives the disposition explaining a nil
// connection (rejected by the waiter bound, or timeout). With a zero
// deadline and no waiter bound this is exactly AcquireFor.
func (p *Pool) AcquireDeadline(req uint64, deadline sim.Time, fn func(*Conn, metrics.Disposition)) {
	if fn == nil {
		return
	}
	now := p.eng.Now()
	if deadline > 0 && now >= deadline {
		p.timeouts.Inc(1)
		p.tracer.Record(req, trace.EventTimeout, p.tier, p.name, now)
		fn(nil, metrics.DispositionTimeout)
		return
	}
	p.tracer.Record(req, trace.EventPoolWait, p.tier, p.name, now)
	w := &waiter{fn: fn, req: req, enqueueAt: now, deadline: deadline}
	if p.Free() > 0 && p.Waiting() == 0 {
		p.grantWaiter(w)
		return
	}
	if p.maxWaiters > 0 && p.Waiting() >= p.maxWaiters {
		p.rejections.Inc(1)
		p.tracer.Record(req, trace.EventReject, p.tier, p.name, now)
		fn(nil, metrics.DispositionRejected)
		return
	}
	if deadline > 0 {
		w.timer = p.eng.Schedule(deadline-now, func() { p.timeoutWaiter(w) })
	}
	p.waiters = append(p.waiters, w)
}

// grantWaiter hands one connection to a waiter, accounting the wait.
func (p *Pool) grantWaiter(w *waiter) {
	p.inUse++
	p.grants.Inc(1)
	now := p.eng.Now()
	if p.chk != nil {
		// Grants happen only while Free() > 0, so post-grant headroom may
		// never be negative; and an expired waiter must fail, not consume
		// a scarce downstream connection.
		if p.Free() < 0 {
			p.chk.Violatef(now, invariant.RulePoolAccounting, "connpool "+p.name, w.req,
				"grant drove free negative (%d) at size %d", p.Free(), p.size)
		}
		if w.deadline > 0 && now >= w.deadline {
			p.chk.Violatef(now, invariant.RuleDeadline, "connpool "+p.name, w.req,
				"granted a connection %v past the deadline", now-w.deadline)
		}
	}
	p.held.Set(now, float64(p.inUse+p.leaked))
	p.waits.Observe((now - w.enqueueAt).Seconds())
	p.waitHist.Observe((now - w.enqueueAt).Seconds())
	p.tracer.Record(w.req, trace.EventPoolGrant, p.tier, p.name, now)
	w.fn(&Conn{p: p}, metrics.DispositionOK)
}

// failWaiter completes a waiter without a connection. The wait still
// counts toward the mean-wait statistic; the grant histogram records
// acquisitions only.
func (p *Pool) failWaiter(w *waiter, disp metrics.Disposition) {
	p.waits.Observe((p.eng.Now() - w.enqueueAt).Seconds())
	w.fn(nil, disp)
}

// timeoutWaiter is the deadline timer body for a blocked waiter: it marks
// the slot dead (lazily removed) and fails the acquisition. No connection
// is consumed.
func (p *Pool) timeoutWaiter(w *waiter) {
	if w.done {
		return
	}
	w.done = true
	p.waitersDead++
	p.timeouts.Inc(1)
	p.tracer.Record(w.req, trace.EventTimeout, p.tier, p.name, p.eng.Now())
	p.failWaiter(w, metrics.DispositionTimeout)
	p.maybeCompact()
}

// maybeCompact drops dead waiter slots once they dominate the queue.
func (p *Pool) maybeCompact() {
	if p.waitersDead < 64 || p.waitersDead*2 < len(p.waiters) {
		return
	}
	live := p.waiters[:0]
	for _, w := range p.waiters {
		if !w.done {
			live = append(live, w)
		}
	}
	for i := len(live); i < len(p.waiters); i++ {
		p.waiters[i] = nil
	}
	p.waiters = live
	p.waitersDead = 0
}

// popWaiter removes and returns the first live waiter (nil when none).
func (p *Pool) popWaiter() *waiter {
	for len(p.waiters) > 0 {
		w := p.waiters[0]
		p.waiters[0] = nil
		p.waiters = p.waiters[1:]
		if w.done {
			p.waitersDead--
			continue
		}
		return w
	}
	return nil
}

func (p *Pool) admit() {
	for p.Free() > 0 {
		w := p.popWaiter()
		if w == nil {
			return
		}
		w.timer.Cancel()
		now := p.eng.Now()
		// A waiter whose deadline has passed by grant time must not consume
		// the connection — it would hold a scarce downstream slot only to
		// give it straight back. Fail it and hand the connection to the next
		// live waiter instead.
		if w.deadline > 0 && now >= w.deadline {
			p.timeouts.Inc(1)
			p.tracer.Record(w.req, trace.EventTimeout, p.tier, p.name, now)
			p.failWaiter(w, metrics.DispositionTimeout)
			continue
		}
		p.grantWaiter(w)
	}
}

// Release returns the connection. Releasing twice panics — it would let
// the pool admit more work than its size allows.
func (c *Conn) Release() {
	if c.released {
		panic("connpool: connection released twice")
	}
	c.released = true
	p := c.p
	p.inUse--
	p.releases++
	if p.chk != nil && p.inUse < 0 {
		p.chk.Violatef(p.eng.Now(), invariant.RulePoolAccounting, "connpool "+p.name, 0,
			"release drove inUse negative (%d)", p.inUse)
	}
	p.held.Set(p.eng.Now(), float64(p.inUse+p.leaked))
	p.admit()
}

// Resize changes the pool size at runtime. Growing admits waiters
// immediately; shrinking is graceful — held and leaked connections stay
// valid and the pool drains to the new size as they are released or
// repaired. Sizes below 1 clamp to 1.
func (p *Pool) Resize(n int) {
	if n < 1 {
		n = 1
	}
	p.size = n
	p.admit()
}

// Sample reports one monitoring interval of pool metrics.
type Sample struct {
	// Grants is the number of acquisitions in the interval.
	Grants uint64 `json:"grants"`
	// MeanWaitSeconds is the mean acquisition wait in the interval.
	MeanWaitSeconds float64 `json:"meanWaitSeconds"`
	// MeanHeld is the time-weighted mean number of consumed connections
	// (held by requests plus leaked).
	MeanHeld float64 `json:"meanHeld"`
	// InUse and Waiting are instantaneous. InUse excludes leaked
	// connections.
	InUse   int `json:"inUse"`
	Waiting int `json:"waiting"`
	// Leaked is the number of connections consumed by an injected leak.
	Leaked int `json:"leaked,omitempty"`
	// Size is the pool size at sampling time.
	Size int `json:"size"`
	// TimedOut and Rejected count the interval's resilience outcomes:
	// acquisitions that expired before a grant and acquisitions refused by
	// the waiter bound. Zero — and absent from JSON — when deadlines and
	// waiter bounds are off.
	TimedOut uint64 `json:"timedOut,omitempty"`
	Rejected uint64 `json:"rejected,omitempty"`
}

// TakeSample returns the metrics accumulated since the previous call and
// starts a new interval.
func (p *Pool) TakeSample() Sample {
	wait, _ := p.waits.TakeMean()
	return Sample{
		Grants:          p.grants.TakeDelta(),
		MeanWaitSeconds: wait,
		MeanHeld:        p.held.TakeAverage(p.eng.Now()),
		InUse:           p.inUse,
		Waiting:         p.Waiting(),
		Leaked:          p.leaked,
		Size:            p.size,
		TimedOut:        p.timeouts.TakeDelta(),
		Rejected:        p.rejections.TakeDelta(),
	}
}

// TotalTimeouts returns the lifetime number of acquisition deadline
// expiries (while blocked or at grant time).
func (p *Pool) TotalTimeouts() uint64 { return p.timeouts.Total() }

// TotalRejections returns the lifetime number of waiter-bound rejections.
func (p *Pool) TotalRejections() uint64 { return p.rejections.Total() }
