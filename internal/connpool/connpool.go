// Package connpool simulates a database connection pool — the Tomcat-side
// soft resource that bounds the request-processing concurrency of the
// downstream MySQL tier (§II-A, §IV-B).
//
// The paper modified RUBBoS so all servlets share one global pool per
// Tomcat "in order to precisely control the number of concurrent requests
// flowing to the downstream MySQL"; a Pool models exactly that shared pool:
// FIFO acquisition, blocking waiters, and runtime resizing by the
// APP-agent.
package connpool

import (
	"errors"
	"fmt"

	"dcm/internal/metrics"
	"dcm/internal/sim"
	"dcm/internal/trace"
)

// ErrBadSize is returned for non-positive pool sizes at construction.
var ErrBadSize = errors.New("connpool: size must be >= 1")

// Pool is a counted resource with FIFO waiters. It must only be used from
// the simulation goroutine.
//
// Accounting invariant: size == inUse + free + leaked, where inUse counts
// connections held by requests, leaked counts connections consumed by an
// injected leak, and free = size - inUse - leaked is the admission
// headroom. free can go transiently negative — a leak lands while requests
// hold connections, or Resize shrinks below the held count — and the pool
// drains back to the invariant as connections release; it never admits
// while free <= 0. CheckInvariant verifies the identity.
type Pool struct {
	eng     *sim.Engine
	name    string
	size    int
	inUse   int
	leaked  int
	waiters []func(*Conn)

	held     metrics.TimeWeighted
	waits    metrics.MeanAccumulator
	grants   metrics.Counter
	waitHist *metrics.Histogram

	tracer *trace.RequestTracer
	tier   string
}

// poolWaitBounds is the shared bucket layout for acquisition-wait
// histograms (seconds, 0.1 ms to ~52 s), matching the server layout so
// per-tier reports line up.
var poolWaitBounds = metrics.ExpBuckets(1e-4, 2, 20)

// Conn is one acquired connection.
type Conn struct {
	p        *Pool
	released bool
}

// New returns a pool with the given size.
func New(eng *sim.Engine, name string, size int) (*Pool, error) {
	if eng == nil {
		return nil, errors.New("connpool: nil engine")
	}
	if size < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, size)
	}
	return &Pool{eng: eng, name: name, size: size, waitHist: metrics.NewHistogram(poolWaitBounds)}, nil
}

// Name returns the pool name.
func (p *Pool) Name() string { return p.name }

// Size returns the configured pool size.
func (p *Pool) Size() int { return p.size }

// InUse returns the number of connections currently held by requests.
// Leaked connections are not in use — they are reported by Leaked — so a
// drain that waits for InUse to reach zero completes even under an
// unrepaired leak.
func (p *Pool) InUse() int { return p.inUse }

// Waiting returns the number of blocked acquirers.
func (p *Pool) Waiting() int { return len(p.waiters) }

// Leaked returns the number of connections currently consumed by Leak.
func (p *Pool) Leaked() int { return p.leaked }

// Free returns the admission headroom size - inUse - leaked. It is
// negative while the pool is over-committed (after a leak or a shrink
// below the held count).
func (p *Pool) Free() int { return p.size - p.inUse - p.leaked }

// CheckInvariant verifies size == inUse + free + leaked and the
// non-negativity of each component count, returning a descriptive error on
// violation. Free may be negative (over-commit) — that is a legal
// transient — but inUse and leaked never.
func (p *Pool) CheckInvariant() error {
	if p.inUse < 0 || p.leaked < 0 || p.size < 1 {
		return fmt.Errorf("connpool %s: negative accounting: size=%d inUse=%d leaked=%d",
			p.name, p.size, p.inUse, p.leaked)
	}
	if got := p.inUse + p.Free() + p.leaked; got != p.size {
		return fmt.Errorf("connpool %s: invariant broken: inUse(%d) + free(%d) + leaked(%d) = %d != size(%d)",
			p.name, p.inUse, p.Free(), p.leaked, got, p.size)
	}
	if p.Free() > 0 && len(p.waiters) > 0 {
		return fmt.Errorf("connpool %s: %d waiters blocked with free=%d", p.name, len(p.waiters), p.Free())
	}
	return nil
}

// SetTracer attaches a request tracer (nil detaches) and the tier label
// recorded on this pool's wait events.
func (p *Pool) SetTracer(tr *trace.RequestTracer, tier string) {
	p.tracer = tr
	p.tier = tier
}

// WaitHistogram returns the histogram of acquisition waits (seconds) over
// the pool's lifetime.
func (p *Pool) WaitHistogram() *metrics.Histogram { return p.waitHist }

// Leak permanently consumes k connections — the chaos connection-leak
// fault (an application bug holding connections it never returns). Leaked
// connections count against the pool size immediately, even when that
// over-commits the pool: requests already holding connections keep them,
// and the pool's effective capacity shrinks as they release. The leak
// persists until Unleak repairs it. Non-positive k is a no-op.
func (p *Pool) Leak(k int) {
	if k <= 0 {
		return
	}
	p.leaked += k
	p.held.Set(p.eng.Now(), float64(p.inUse+p.leaked))
}

// Unleak repairs up to k leaked connections (all of them when k exceeds
// the current leak), returning them to the pool and admitting waiters.
func (p *Pool) Unleak(k int) {
	if k > p.leaked {
		k = p.leaked
	}
	if k <= 0 {
		return
	}
	p.leaked -= k
	p.held.Set(p.eng.Now(), float64(p.inUse+p.leaked))
	p.admit()
}

// Acquire requests a connection; fn runs as soon as one is available, in
// FIFO order behind earlier waiters.
func (p *Pool) Acquire(fn func(*Conn)) { p.AcquireFor(0, fn) }

// AcquireFor is Acquire carrying the tracing request ID (0 = untraced).
func (p *Pool) AcquireFor(req uint64, fn func(*Conn)) {
	if fn == nil {
		return
	}
	at := p.eng.Now()
	p.tracer.Record(req, trace.EventPoolWait, p.tier, p.name, at)
	wrapped := func(c *Conn) {
		now := p.eng.Now()
		p.waits.Observe((now - at).Seconds())
		p.waitHist.Observe((now - at).Seconds())
		p.tracer.Record(req, trace.EventPoolGrant, p.tier, p.name, now)
		fn(c)
	}
	if p.Free() > 0 && len(p.waiters) == 0 {
		p.grant(wrapped)
		return
	}
	p.waiters = append(p.waiters, wrapped)
}

func (p *Pool) grant(fn func(*Conn)) {
	p.inUse++
	p.grants.Inc(1)
	p.held.Set(p.eng.Now(), float64(p.inUse+p.leaked))
	fn(&Conn{p: p})
}

func (p *Pool) admit() {
	for p.Free() > 0 && len(p.waiters) > 0 {
		fn := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.grant(fn)
	}
}

// Release returns the connection. Releasing twice panics — it would let
// the pool admit more work than its size allows.
func (c *Conn) Release() {
	if c.released {
		panic("connpool: connection released twice")
	}
	c.released = true
	p := c.p
	p.inUse--
	p.held.Set(p.eng.Now(), float64(p.inUse+p.leaked))
	p.admit()
}

// Resize changes the pool size at runtime. Growing admits waiters
// immediately; shrinking is graceful — held and leaked connections stay
// valid and the pool drains to the new size as they are released or
// repaired. Sizes below 1 clamp to 1.
func (p *Pool) Resize(n int) {
	if n < 1 {
		n = 1
	}
	p.size = n
	p.admit()
}

// Sample reports one monitoring interval of pool metrics.
type Sample struct {
	// Grants is the number of acquisitions in the interval.
	Grants uint64 `json:"grants"`
	// MeanWaitSeconds is the mean acquisition wait in the interval.
	MeanWaitSeconds float64 `json:"meanWaitSeconds"`
	// MeanHeld is the time-weighted mean number of consumed connections
	// (held by requests plus leaked).
	MeanHeld float64 `json:"meanHeld"`
	// InUse and Waiting are instantaneous. InUse excludes leaked
	// connections.
	InUse   int `json:"inUse"`
	Waiting int `json:"waiting"`
	// Leaked is the number of connections consumed by an injected leak.
	Leaked int `json:"leaked,omitempty"`
	// Size is the pool size at sampling time.
	Size int `json:"size"`
}

// TakeSample returns the metrics accumulated since the previous call and
// starts a new interval.
func (p *Pool) TakeSample() Sample {
	wait, _ := p.waits.TakeMean()
	return Sample{
		Grants:          p.grants.TakeDelta(),
		MeanWaitSeconds: wait,
		MeanHeld:        p.held.TakeAverage(p.eng.Now()),
		InUse:           p.inUse,
		Waiting:         len(p.waiters),
		Leaked:          p.leaked,
		Size:            p.size,
	}
}
