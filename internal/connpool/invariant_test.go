package connpool

import (
	"testing"
	"testing/quick"
	"time"

	"dcm/internal/sim"
	"dcm/internal/trace"
)

// TestInvariantUnderLeakSchedules drives random Leak/Unleak/Resize/
// Acquire/Release interleavings — the operation mix of a chaos conn-leak
// schedule hitting a pool the APP-agent keeps resizing — and checks the
// size == inUse + free + leaked invariant after every operation. This is
// the regression test for the accounting drift where leaked connections
// were folded into inUse (which also blocked drains, because InUse never
// returned to zero under an unrepaired leak).
func TestInvariantUnderLeakSchedules(t *testing.T) {
	t.Parallel()
	prop := func(ops []uint8) bool {
		eng := sim.NewEngine()
		p, err := New(eng, "p", 3)
		if err != nil {
			return false
		}
		ok := true
		check := func() {
			if err := p.CheckInvariant(); err != nil {
				t.Log(err)
				ok = false
			}
		}
		var held []*Conn
		at := time.Duration(0)
		for _, op := range ops {
			at += time.Millisecond
			op := op
			eng.ScheduleAt(at, func() {
				switch op % 6 {
				case 0, 1:
					p.Acquire(func(c *Conn) { held = append(held, c) })
				case 2:
					if len(held) > 0 {
						held[0].Release()
						held = held[1:]
					}
				case 3:
					p.Leak(int(op%3) + 1)
				case 4:
					p.Unleak(int(op % 5)) // may exceed current leak
				case 5:
					p.Resize(int(op%7) + 1) // may shrink below held+leaked
				}
				check()
			})
		}
		if err := eng.Run(time.Hour); err != nil {
			return false
		}
		// Drain: repair the leak and release everything; the pool must
		// return to a fully free state with no stranded waiters while
		// capacity exists.
		eng.Schedule(time.Millisecond, func() {
			p.Unleak(p.Leaked())
			for _, c := range held {
				c.Release()
			}
			held = nil
			check()
		})
		if err := eng.Run(2 * time.Hour); err != nil {
			return false
		}
		if p.Leaked() != 0 {
			t.Logf("leak survived full repair: %d", p.Leaked())
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestLeakDoesNotBlockDrain pins the drain-visible half of the bugfix: a
// pool with an unrepaired leak but no request-held connections must report
// InUse() == 0, the condition scale-in drains poll for.
func TestLeakDoesNotBlockDrain(t *testing.T) {
	t.Parallel()
	_, p := newPool(t, 4)
	var c *Conn
	p.Acquire(func(conn *Conn) { c = conn })
	p.Leak(3)
	if p.InUse() != 1 {
		t.Fatalf("inUse = %d, want 1 (the held conn only)", p.InUse())
	}
	c.Release()
	if p.InUse() != 0 {
		t.Fatalf("inUse = %d after release; a leak must not block drain", p.InUse())
	}
	if p.Leaked() != 3 || p.Free() != 1 {
		t.Fatalf("leaked = %d, free = %d", p.Leaked(), p.Free())
	}
}

// TestResizeBelowHeldOverCommits checks the audited shrink path: shrinking
// below InUse+Leaked leaves the pool over-committed (negative free), never
// admits while over-committed, and the invariant holds throughout.
func TestResizeBelowHeldOverCommits(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 4)
	var conns []*Conn
	for i := 0; i < 3; i++ {
		p.Acquire(func(c *Conn) { conns = append(conns, c) })
	}
	p.Leak(1)
	p.Resize(2) // held 3 + leaked 1 = 4 > 2: over-committed by 2
	if p.Free() != -2 {
		t.Fatalf("free = %d, want -2", p.Free())
	}
	if err := p.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	granted := false
	p.Acquire(func(c *Conn) { granted = true; c.Release() })
	if granted {
		t.Fatal("admitted while over-committed")
	}
	for i, c := range conns {
		c := c
		eng.Schedule(time.Duration(i+1)*time.Second, c.Release)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	// 3 releases against size 2 with 1 leaked: exactly one slot opens.
	if !granted {
		t.Fatal("waiter never admitted after drain below new size")
	}
	if err := p.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolTracerRecordsWaits checks the pool-wait trace events pair up and
// the wait histogram observes every grant.
func TestPoolTracerRecordsWaits(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 1)
	tr := trace.NewRequestTracer(0)
	p.SetTracer(tr, "app")
	var first *Conn
	p.AcquireFor(tr.Begin(), func(c *Conn) { first = c })
	p.AcquireFor(tr.Begin(), func(c *Conn) { c.Release() }) // waits 2s
	eng.Schedule(2*time.Second, func() { first.Release() })
	if err := eng.Run(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	bd := tr.Breakdown()
	if len(bd) != 1 || bd[0].Tier != "app" {
		t.Fatalf("breakdown = %+v", bd)
	}
	if bd[0].PoolWait.Count != 2 || bd[0].PoolWait.Max < 1.9 {
		t.Fatalf("pool waits = %+v", bd[0].PoolWait)
	}
	if p.WaitHistogram().Count() != 2 {
		t.Fatalf("wait histogram n = %d", p.WaitHistogram().Count())
	}
}
