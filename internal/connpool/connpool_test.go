package connpool

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dcm/internal/sim"
)

func newPool(t *testing.T, size int) (*sim.Engine, *Pool) {
	t.Helper()
	eng := sim.NewEngine()
	p, err := New(eng, "tc1-db", size)
	if err != nil {
		t.Fatal(err)
	}
	return eng, p
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	if _, err := New(eng, "p", 0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(nil, "p", 1); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestAcquireImmediate(t *testing.T) {
	t.Parallel()
	_, p := newPool(t, 2)
	got := 0
	p.Acquire(func(c *Conn) { got++; c.Release() })
	p.Acquire(func(c *Conn) { got++; c.Release() })
	if got != 2 {
		t.Fatalf("granted = %d", got)
	}
	if p.InUse() != 0 {
		t.Fatalf("in use after release = %d", p.InUse())
	}
}

func TestAcquireBlocksAtCapacity(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 1)
	var held *Conn
	p.Acquire(func(c *Conn) { held = c })
	granted := false
	p.Acquire(func(c *Conn) { granted = true; c.Release() })
	if granted {
		t.Fatal("second acquire granted beyond capacity")
	}
	if p.Waiting() != 1 {
		t.Fatalf("waiting = %d", p.Waiting())
	}
	eng.Schedule(time.Second, func() { held.Release() })
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Fatal("waiter never granted")
	}
}

func TestFIFOOrder(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 1)
	var order []int
	var first *Conn
	p.Acquire(func(c *Conn) { first = c })
	for i := 0; i < 3; i++ {
		i := i
		p.Acquire(func(c *Conn) {
			order = append(order, i)
			c.Release()
		})
	}
	eng.Schedule(time.Second, func() { first.Release() })
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order = %v", order)
		}
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	t.Parallel()
	_, p := newPool(t, 1)
	var conn *Conn
	p.Acquire(func(c *Conn) { conn = c })
	conn.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	conn.Release()
}

func TestAcquireNilIgnored(t *testing.T) {
	t.Parallel()
	_, p := newPool(t, 1)
	p.Acquire(nil)
	if p.InUse() != 0 || p.Waiting() != 0 {
		t.Fatal("nil acquire changed state")
	}
}

func TestResizeGrowAdmitsWaiters(t *testing.T) {
	t.Parallel()
	_, p := newPool(t, 1)
	granted := 0
	for i := 0; i < 3; i++ {
		p.Acquire(func(c *Conn) { granted++ })
	}
	if granted != 1 {
		t.Fatalf("granted = %d before grow", granted)
	}
	p.Resize(3)
	if granted != 3 {
		t.Fatalf("granted = %d after grow", granted)
	}
	if p.Size() != 3 {
		t.Fatalf("size = %d", p.Size())
	}
}

func TestResizeShrinkGraceful(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 3)
	var conns []*Conn
	for i := 0; i < 3; i++ {
		p.Acquire(func(c *Conn) { conns = append(conns, c) })
	}
	p.Resize(1)
	if p.InUse() != 3 {
		t.Fatal("shrink revoked held connections")
	}
	granted := false
	p.Acquire(func(c *Conn) {
		granted = true
		if p.InUse() > 1 {
			t.Errorf("granted with InUse = %d after shrink to 1", p.InUse())
		}
	})
	for i, c := range conns {
		c := c
		eng.Schedule(time.Duration(i+1)*time.Second, c.Release)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Fatal("waiter never granted after drain")
	}
}

func TestResizeClampsToOne(t *testing.T) {
	t.Parallel()
	_, p := newPool(t, 2)
	p.Resize(-1)
	if p.Size() != 1 {
		t.Fatalf("size = %d", p.Size())
	}
}

func TestSample(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 1)
	var first *Conn
	p.Acquire(func(c *Conn) { first = c })
	p.Acquire(func(c *Conn) { c.Release() }) // waits 2s
	eng.Schedule(2*time.Second, func() { first.Release() })
	if err := eng.Run(4 * time.Second); err != nil {
		t.Fatal(err)
	}
	s := p.TakeSample()
	if s.Grants != 2 {
		t.Fatalf("grants = %d", s.Grants)
	}
	if s.MeanWaitSeconds < 0.9 || s.MeanWaitSeconds > 1.1 {
		t.Fatalf("mean wait = %v, want ~1s (0s and 2s averaged)", s.MeanWaitSeconds)
	}
	// Held for 2s of the 4s interval → mean 0.5.
	if s.MeanHeld < 0.45 || s.MeanHeld > 0.55 {
		t.Fatalf("mean held = %v", s.MeanHeld)
	}
	s2 := p.TakeSample()
	if s2.Grants != 0 {
		t.Fatalf("second interval grants = %d", s2.Grants)
	}
}

// TestInUseNeverExceedsSizeOnAdmission drives random acquire/release/resize
// sequences; grants must only happen while InUse <= Size.
func TestInUseNeverExceedsSizeOnAdmission(t *testing.T) {
	t.Parallel()
	prop := func(ops []uint8) bool {
		eng := sim.NewEngine()
		p, err := New(eng, "p", 2)
		if err != nil {
			return false
		}
		ok := true
		var held []*Conn
		at := time.Duration(0)
		for _, op := range ops {
			at += time.Millisecond
			op := op
			eng.ScheduleAt(at, func() {
				switch op % 3 {
				case 0:
					p.Acquire(func(c *Conn) {
						if p.InUse() > p.Size() {
							ok = false
						}
						held = append(held, c)
					})
				case 1:
					if len(held) > 0 {
						held[0].Release()
						held = held[1:]
					}
				case 2:
					p.Resize(int(op%5) + 1)
				}
			})
		}
		if err := eng.Run(time.Hour); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLeakConsumesCapacity(t *testing.T) {
	t.Parallel()
	_, p := newPool(t, 3)
	p.Leak(2)
	if p.Leaked() != 2 || p.InUse() != 0 || p.Free() != 1 {
		t.Fatalf("leaked = %d, inUse = %d, free = %d", p.Leaked(), p.InUse(), p.Free())
	}
	granted := 0
	var held *Conn
	p.Acquire(func(c *Conn) { granted++; held = c }) // takes the one free slot
	p.Acquire(func(c *Conn) { granted++; c.Release() })
	if granted != 1 {
		t.Fatalf("granted = %d with 2 of 3 connections leaked", granted)
	}
	if p.Waiting() != 1 {
		t.Fatalf("waiting = %d", p.Waiting())
	}
	// Repair: the waiter is admitted as capacity returns.
	p.Unleak(2)
	if granted != 2 {
		t.Fatalf("granted = %d after repair", granted)
	}
	held.Release()
	if p.Leaked() != 0 || p.InUse() != 0 {
		t.Fatalf("after repair: leaked = %d, inUse = %d", p.Leaked(), p.InUse())
	}
}

func TestUnleakClampsToLeaked(t *testing.T) {
	t.Parallel()
	_, p := newPool(t, 4)
	p.Leak(1)
	p.Unleak(10) // only 1 was leaked
	if p.Leaked() != 0 || p.InUse() != 0 {
		t.Fatalf("leaked = %d, inUse = %d", p.Leaked(), p.InUse())
	}
	p.Unleak(1) // nothing leaked: no-op
	if p.InUse() != 0 {
		t.Fatalf("inUse went negative: %d", p.InUse())
	}
}

func TestSampleReportsLeaked(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 4)
	p.Leak(3)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	s := p.TakeSample()
	if s.Leaked != 3 {
		t.Fatalf("Sample.Leaked = %d", s.Leaked)
	}
}
