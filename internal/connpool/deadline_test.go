package connpool

import (
	"testing"
	"time"

	"dcm/internal/metrics"
)

// TestDeadlineWaiterNeverConsumesConnection pins the resilience invariant:
// a blocked acquisition whose deadline expires fails with
// DispositionTimeout and never consumes a connection — not when the timer
// fires, and not when a connection frees up afterwards. The connection the
// expired waiter would have taken goes to the next live waiter.
func TestDeadlineWaiterNeverConsumesConnection(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 1)
	var held *Conn
	p.Acquire(func(c *Conn) { held = c })

	var expired metrics.Disposition
	p.AcquireDeadline(0, time.Second, func(c *Conn, d metrics.Disposition) {
		if c != nil {
			t.Error("expired waiter granted a connection")
		}
		expired = d
	})
	granted := false
	p.AcquireDeadline(0, 0, func(c *Conn, d metrics.Disposition) {
		if c == nil {
			t.Errorf("live waiter failed with %v", d)
			return
		}
		granted = true
		c.Release()
	})
	check := func() {
		if err := p.CheckInvariant(); err != nil {
			t.Error(err)
		}
	}

	// t=1s: the deadline fires while the connection is still held.
	eng.Schedule(1500*time.Millisecond, func() {
		if expired != metrics.DispositionTimeout {
			t.Errorf("disposition = %v at 1.5s, want timeout", expired)
		}
		if p.Waiting() != 1 {
			t.Errorf("waiting = %d after expiry, want 1", p.Waiting())
		}
		check()
	})
	// t=2s: release; the freed connection must skip the dead slot and go to
	// the live waiter.
	eng.Schedule(2*time.Second, func() { held.Release(); check() })
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Fatal("live waiter behind the expired one was never granted")
	}
	if p.InUse() != 0 || p.Free() != 1 {
		t.Fatalf("inUse = %d, free = %d after drain", p.InUse(), p.Free())
	}
	if p.TotalTimeouts() != 1 {
		t.Fatalf("timeouts = %d, want 1", p.TotalTimeouts())
	}
	check()
}

// TestDeadlineExpiredAtGrantTimeReleasesImmediately covers the grant-time
// race: a connection frees up at the exact timestamp the waiter's deadline
// expires, with the release event ordered before the deadline timer. The
// grant must not hand the connection to the expired waiter — it fails with
// timeout and the connection stays free.
func TestDeadlineExpiredAtGrantTimeReleasesImmediately(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 1)
	var held *Conn
	p.Acquire(func(c *Conn) { held = c })
	// Schedule the release first so it runs before the deadline timer at the
	// shared t=1s timestamp.
	eng.Schedule(time.Second, func() { held.Release() })
	var disp metrics.Disposition
	calls := 0
	p.AcquireDeadline(7, time.Second, func(c *Conn, d metrics.Disposition) {
		calls++
		if c != nil {
			t.Error("grant-time-expired waiter received a connection")
		}
		disp = d
	})
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times, want 1", calls)
	}
	if disp != metrics.DispositionTimeout {
		t.Fatalf("disposition = %v, want timeout", disp)
	}
	if p.InUse() != 0 || p.Free() != 1 {
		t.Fatalf("inUse = %d, free = %d: expired waiter consumed the connection", p.InUse(), p.Free())
	}
	if err := p.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestAlreadyExpiredDeadlineFailsWithoutWaiting checks the fast path: an
// acquisition whose deadline has already passed fails synchronously.
func TestAlreadyExpiredDeadlineFailsWithoutWaiting(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 1)
	eng.Schedule(time.Second, func() {
		p.AcquireDeadline(0, 500*time.Millisecond, func(c *Conn, d metrics.Disposition) {
			if c != nil || d != metrics.DispositionTimeout {
				t.Errorf("conn = %v, disposition = %v", c, d)
			}
		})
		if p.Waiting() != 0 || p.InUse() != 0 {
			t.Errorf("waiting = %d, inUse = %d", p.Waiting(), p.InUse())
		}
	})
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestMaxWaitersRejects checks the waiter bound: acquisitions past the
// bound fail immediately with DispositionRejected and do not queue.
func TestMaxWaitersRejects(t *testing.T) {
	t.Parallel()
	eng, p := newPool(t, 1)
	p.SetMaxWaiters(2)
	var held *Conn
	p.Acquire(func(c *Conn) { held = c })
	grantedBehind := 0
	for i := 0; i < 2; i++ {
		p.AcquireDeadline(0, 0, func(c *Conn, d metrics.Disposition) {
			if c == nil {
				t.Errorf("bounded waiter %d failed: %v", i, d)
				return
			}
			grantedBehind++
			c.Release()
		})
	}
	rejected := false
	p.AcquireDeadline(0, 0, func(c *Conn, d metrics.Disposition) {
		if c != nil || d != metrics.DispositionRejected {
			t.Errorf("conn = %v, disposition = %v, want rejection", c, d)
		}
		rejected = true
	})
	if !rejected {
		t.Fatal("third waiter not rejected synchronously")
	}
	if p.Waiting() != 2 {
		t.Fatalf("waiting = %d, want 2", p.Waiting())
	}
	eng.Schedule(time.Second, func() { held.Release() })
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if grantedBehind != 2 {
		t.Fatalf("granted = %d of 2 queued waiters", grantedBehind)
	}
	if p.TotalRejections() != 1 {
		t.Fatalf("rejections = %d, want 1", p.TotalRejections())
	}
	if err := p.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}
