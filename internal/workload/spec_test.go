package workload

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dcm/internal/rng"
	"dcm/internal/sim"
)

const validOpenSpec = `{
  "name": "openloop-2class",
  "kind": "open",
  "arrivals": {"curve": "flashcrowd", "rate": 2000, "peakRate": 12000,
               "atSeconds": 120, "rampSeconds": 30, "holdSeconds": 60},
  "classes": [
    {"name": "premium", "weight": 0.2, "priority": 1, "sloSeconds": 1},
    {"name": "basic", "weight": 0.8}
  ]
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(validOpenSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "openloop-2class" || s.Kind != KindOpen {
		t.Fatalf("unexpected spec: %+v", s)
	}
	if s.Arrivals.PeakRate != 12000 || len(s.Classes) != 2 {
		t.Fatalf("unexpected spec: %+v", s)
	}
	if got := s.Classes[0].SLO(); got != time.Second {
		t.Fatalf("premium SLO = %v, want 1s", got)
	}
}

// TestParseSpecStrict pins the strict-decoding contract: unknown fields
// and trailing garbage fail loudly, matching the policy loader.
func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"kind": "open", "arivals": {"curve": "constant", "rate": 5}}`)); err == nil ||
		!strings.Contains(err.Error(), `unknown field "arivals"`) {
		t.Fatalf("typoed field: got %v, want unknown-field error", err)
	}
	// Unknown fields are rejected at any nesting depth.
	if _, err := ParseSpec([]byte(`{"kind": "open", "arrivals": {"curve": "constant", "rate": 5, "paekRate": 9}}`)); err == nil ||
		!strings.Contains(err.Error(), `unknown field "paekRate"`) {
		t.Fatalf("nested typoed field: got %v, want unknown-field error", err)
	}
	const want = "workload: parse spec: unexpected data after spec object"
	if _, err := ParseSpec([]byte(`{"kind": "open", "arrivals": {"curve": "constant", "rate": 5}} {"x": 1}`)); err == nil ||
		err.Error() != want {
		t.Fatalf("trailing garbage: got %v, want %q", err, want)
	}
}

// TestSpecValidatePinnedErrors pins the spec-level validation texts.
func TestSpecValidatePinnedErrors(t *testing.T) {
	openArr := &RateSpec{Curve: "constant", Rate: 100}
	cases := []struct {
		name string
		spec WorkloadSpec
		want string
	}{
		{"no kind", WorkloadSpec{}, "workload: kind is required"},
		{"unknown kind", WorkloadSpec{Kind: "trace"}, `workload: unknown kind "trace"`},
		{"closed no users", WorkloadSpec{Kind: "closed"}, "workload: closed kind: users must be > 0 (got 0)"},
		{"closed with arrivals", WorkloadSpec{Kind: "closed", Users: 5, Arrivals: openArr},
			"workload: closed kind: arrivals/bursty do not apply"},
		{"open no arrivals", WorkloadSpec{Kind: "open"}, "workload: open kind: arrivals is required"},
		{"open with users", WorkloadSpec{Kind: "open", Users: 5, Arrivals: openArr},
			"workload: open kind: users/think/bursty do not apply"},
		{"bursty no bursty", WorkloadSpec{Kind: "bursty"}, "workload: bursty kind: bursty is required"},
		{"negative stagger", WorkloadSpec{Kind: "closed", Users: 5, StaggerSeconds: -1},
			"workload: staggerSeconds must be >= 0 (got -1)"},
		{"unnamed class", WorkloadSpec{Kind: "open", Arrivals: openArr,
			Classes: []ClassSpec{{Weight: 1}}}, "workload: class 0 has no name"},
		{"duplicate class", WorkloadSpec{Kind: "open", Arrivals: openArr,
			Classes: []ClassSpec{{Name: "a", Weight: 1}, {Name: "a", Weight: 1}}},
			`workload: duplicate class "a"`},
		{"zero weight", WorkloadSpec{Kind: "open", Arrivals: openArr,
			Classes: []ClassSpec{{Name: "a"}}}, `workload: class "a": weight must be > 0 (got 0)`},
		{"open class think", WorkloadSpec{Kind: "open", Arrivals: openArr,
			Classes: []ClassSpec{{Name: "a", Weight: 1, Think: &DistSpec{Dist: "constant", Mean: 1}}}},
			`workload: class "a": per-class think applies only to closed kind`},
		{"bad curve", WorkloadSpec{Kind: "open", Arrivals: &RateSpec{Curve: "spike", Rate: 1}},
			`workload: arrivals: unknown curve "spike"`},
		{"no curve rate", WorkloadSpec{Kind: "open", Arrivals: &RateSpec{Curve: "constant"}},
			"workload: arrivals: rate must be > 0 (got 0)"},
		{"diurnal amplitude", WorkloadSpec{Kind: "open",
			Arrivals: &RateSpec{Curve: "diurnal", Rate: 10, Amplitude: 1.5, PeriodSeconds: 60}},
			"workload: arrivals: diurnal amplitude must be in (0, 1] (got 1.5)"},
		{"flash peak", WorkloadSpec{Kind: "open",
			Arrivals: &RateSpec{Curve: "flashcrowd", Rate: 10, PeakRate: 5, RampSeconds: 1}},
			"workload: arrivals: flashcrowd peakRate must exceed rate (got 5 <= 10)"},
		{"bursty users", WorkloadSpec{Kind: "bursty", Bursty: &BurstySpec{}},
			"workload: bursty: users must be > 0 (got 0)"},
		{"bursty classes", WorkloadSpec{Kind: "bursty",
			Bursty:  &BurstySpec{Users: 5, NormalThinkSeconds: 3, SurgeThinkSeconds: 0.3, NormalDwellSeconds: 60, SurgeDwellSeconds: 10},
			Classes: []ClassSpec{{Name: "a", Weight: 1}}},
			"workload: bursty kind: classes are not supported"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("%s: want error %q, got nil", tc.name, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("%s:\n got %q\nwant %q", tc.name, err.Error(), tc.want)
		}
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wl.json")
	if err := os.WriteFile(path, []byte(validOpenSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"kind": "open"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadSpec(bad)
	if err == nil || !strings.Contains(err.Error(), bad) {
		t.Fatalf("bad file: error %v should name the path", err)
	}
}

// classFakeTarget extends fakeTarget with the class inject hook.
type classFakeTarget struct {
	fakeTarget
	byClass    map[int]int
	bySession  map[uint64]int
	lastFailed bool
}

func (f *classFakeTarget) InjectClass(class int, session uint64, done func(rt time.Duration, ok bool)) {
	if f.byClass == nil {
		f.byClass = make(map[int]int)
		f.bySession = make(map[uint64]int)
	}
	f.byClass[class]++
	f.bySession[session]++
	f.Inject(done)
}

// TestSpecBuildKinds builds one generator of each kind through the spec
// path and runs it briefly.
func TestSpecBuildKinds(t *testing.T) {
	specs := map[string]WorkloadSpec{
		"closed": {Kind: "closed", Users: 10,
			Think: &DistSpec{Dist: "lognormal", Mean: 0.5, CV: 2}},
		"open": {Kind: "open", Arrivals: &RateSpec{Curve: "constant", Rate: 200}},
		"bursty": {Kind: "bursty", Bursty: &BurstySpec{
			Users: 10, NormalThinkSeconds: 1, SurgeThinkSeconds: 0.1,
			NormalDwellSeconds: 5, SurgeDwellSeconds: 2}},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			target := &classFakeTarget{fakeTarget: fakeTarget{eng: eng, delay: 5 * time.Millisecond}}
			gen, err := spec.Build(eng, rng.New(11).Split("wl"), target)
			if err != nil {
				t.Fatal(err)
			}
			gen.Start()
			if err := eng.Run(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			gen.Stop()
			if target.total == 0 {
				t.Fatal("generator issued no requests")
			}
		})
	}
}

// TestSpecBuildClassMix verifies class-tagged dispatch end to end: both
// generators draw classes near the configured weights, and closed-loop
// users keep stable per-user sessions.
func TestSpecBuildClassMix(t *testing.T) {
	classes := []ClassSpec{
		{Name: "premium", Weight: 0.25, Priority: 1},
		{Name: "basic", Weight: 0.75},
	}
	t.Run("open", func(t *testing.T) {
		eng := sim.NewEngine()
		target := &classFakeTarget{fakeTarget: fakeTarget{eng: eng, delay: time.Millisecond}}
		spec := WorkloadSpec{Kind: "open",
			Arrivals: &RateSpec{Curve: "constant", Rate: 2000}, Classes: classes}
		gen, err := spec.Build(eng, rng.New(5).Split("wl"), target)
		if err != nil {
			t.Fatal(err)
		}
		gen.Start()
		if err := eng.Run(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		total := target.byClass[0] + target.byClass[1]
		if total == 0 {
			t.Fatal("no class-tagged requests")
		}
		share := float64(target.byClass[0]) / float64(total)
		if share < 0.22 || share > 0.28 {
			t.Fatalf("premium share %.3f, want ~0.25", share)
		}
		if target.bySession[0] != total {
			t.Fatalf("open-loop arrivals must be sessionless: %v", target.bySession)
		}
	})
	t.Run("closed", func(t *testing.T) {
		eng := sim.NewEngine()
		target := &classFakeTarget{fakeTarget: fakeTarget{eng: eng, delay: time.Millisecond}}
		spec := WorkloadSpec{Kind: "closed", Users: 40,
			Think: &DistSpec{Dist: "constant", Mean: 0.05}, Classes: classes}
		gen, err := spec.Build(eng, rng.New(5).Split("wl"), target)
		if err != nil {
			t.Fatal(err)
		}
		gen.Start()
		if err := eng.Run(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		if len(target.bySession) != 40 {
			t.Fatalf("sessions: got %d, want one per user (40)", len(target.bySession))
		}
		if n := target.byClass[0] + target.byClass[1]; n != target.total {
			t.Fatalf("class-tagged %d of %d requests", n, target.total)
		}
		for sid, n := range target.bySession {
			if sid == 0 {
				t.Fatal("closed-loop user with zero session id")
			}
			if n == 0 {
				t.Fatalf("session %d issued nothing", sid)
			}
		}
	})
}

// TestSetClassesRequiresClassTarget pins the error for a class mix against
// a target without the InjectClass hook.
func TestSetClassesRequiresClassTarget(t *testing.T) {
	eng, target := setup(t, time.Millisecond)
	loop, err := NewClosedLoop(eng, rng.New(1).Split("wl"), target, ClosedLoopConfig{Users: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := loop.SetClasses([]Class{{Name: "a", Weight: 1}}); err == nil ||
		!strings.Contains(err.Error(), "target does not accept classes") {
		t.Fatalf("got %v, want target-does-not-accept-classes error", err)
	}
	gen, err := NewOpenLoopGen(eng, rng.New(1).Split("wl"), target, ConstantRate(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.SetClasses([]Class{{Name: "a", Weight: 1}}); err == nil ||
		!strings.Contains(err.Error(), "target does not accept classes") {
		t.Fatalf("got %v, want target-does-not-accept-classes error", err)
	}
}
