package workload

import (
	"errors"
	"math"
	"testing"
	"time"

	"dcm/internal/rng"
	"dcm/internal/sim"
)

func TestNewBurstyLoopValidation(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, time.Millisecond)
	r := rng.New(1)
	good := BurstyConfig{
		Users: 10, NormalThink: time.Second, SurgeThink: 50 * time.Millisecond,
		NormalDwell: 30 * time.Second, SurgeDwell: 5 * time.Second,
	}
	if _, err := NewBurstyLoop(eng, r, tgt, good); err != nil {
		t.Fatal(err)
	}
	bad := []func(*BurstyConfig){
		func(c *BurstyConfig) { c.Users = 0 },
		func(c *BurstyConfig) { c.NormalThink = 0 },
		func(c *BurstyConfig) { c.SurgeThink = 0 },
		func(c *BurstyConfig) { c.SurgeThink = 2 * time.Second }, // > normal
		func(c *BurstyConfig) { c.NormalDwell = 0 },
		func(c *BurstyConfig) { c.SurgeDwell = -time.Second },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := NewBurstyLoop(eng, r, tgt, cfg); !errors.Is(err, ErrBadWorkload) {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := NewBurstyLoop(nil, r, tgt, good); !errors.Is(err, ErrBadWorkload) {
		t.Error("nil engine accepted")
	}
}

// measureIoD runs a generator against an instant target and returns the
// index of dispersion of per-second completion counts.
func measureIoD(t *testing.T, bursty bool) float64 {
	t.Helper()
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng, delay: time.Millisecond}
	r := rng.New(77).Split("wl")

	var counts []float64
	var lastTotal uint64
	var total func() uint64

	if bursty {
		bl, err := NewBurstyLoop(eng, r, tgt, BurstyConfig{
			Users:       200,
			NormalThink: 4 * time.Second,
			SurgeThink:  200 * time.Millisecond,
			NormalDwell: 40 * time.Second,
			SurgeDwell:  10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		bl.Start()
		total = bl.TotalCompleted
	} else {
		cl, err := NewClosedLoop(eng, r, tgt, ClosedLoopConfig{
			Users: 200, ThinkTime: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.Start()
		total = cl.TotalCompleted
	}
	stop := eng.Ticker(time.Second, func() {
		tt := total()
		counts = append(counts, float64(tt-lastTotal))
		lastTotal = tt
	})
	defer stop()
	if err := eng.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Drop the warmup minute.
	return IndexOfDispersion(counts[60:])
}

// TestBurstinessInjection: the Markov-modulated users must produce a far
// more dispersed arrival process than the plain closed loop — the whole
// point of Mi et al.'s model.
func TestBurstinessInjection(t *testing.T) {
	t.Parallel()
	smooth := measureIoD(t, false)
	bursty := measureIoD(t, true)
	if smooth > 3 {
		t.Fatalf("plain closed loop unexpectedly bursty: IoD = %v", smooth)
	}
	if bursty < 5*smooth {
		t.Fatalf("burstiness injection weak: IoD %v vs smooth %v", bursty, smooth)
	}
}

func TestBurstyLoopStops(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng, delay: time.Millisecond}
	bl, err := NewBurstyLoop(eng, rng.New(3).Split("wl"), tgt, BurstyConfig{
		Users: 20, NormalThink: 100 * time.Millisecond, SurgeThink: 10 * time.Millisecond,
		NormalDwell: time.Second, SurgeDwell: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	bl.Start()
	bl.Start() // idempotent
	eng.Schedule(5*time.Second, bl.Stop)
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	after := bl.TotalCompleted()
	if after == 0 {
		t.Fatal("no requests before stop")
	}
	if err := eng.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if bl.TotalCompleted() != after {
		t.Fatal("requests after Stop")
	}
	_ = bl.Surging() // state remains queryable after stop
}

func TestIndexOfDispersion(t *testing.T) {
	t.Parallel()
	if got := IndexOfDispersion(nil); got != 0 {
		t.Fatalf("empty IoD = %v", got)
	}
	if got := IndexOfDispersion([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("zero-mean IoD = %v", got)
	}
	// Constant counts: variance 0.
	if got := IndexOfDispersion([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant IoD = %v", got)
	}
	// Hand-computed: counts {0, 10}: mean 5, var 25, IoD 5.
	if got := IndexOfDispersion([]float64{0, 10}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("IoD = %v, want 5", got)
	}
}
