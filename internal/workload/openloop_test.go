package workload

import (
	"math"
	"testing"
	"time"

	"dcm/internal/rng"
	"dcm/internal/sim"
)

// TestOpenLoopGenConstantRate checks the homogeneous case: arrivals over a
// long window match rate*T within sampling noise and nothing is thinned.
func TestOpenLoopGenConstantRate(t *testing.T) {
	eng, target := setup(t, time.Millisecond)
	gen, err := NewOpenLoopGen(eng, rng.New(1).Split("wl"), target, ConstantRate(500))
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	if err := eng.Run(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := 500.0 * 100
	got := float64(gen.Scheduled())
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("scheduled %v arrivals, want ~%v", got, want)
	}
	if gen.Thinned() != 0 {
		t.Fatalf("constant curve thinned %d candidates, want 0", gen.Thinned())
	}
}

// TestOpenLoopGenThinningTracksCurve checks the NHPP construction: with a
// flash-crowd curve, windowed arrival counts must follow the instantaneous
// rate — baseline before the spike, peak on the plateau, baseline after.
func TestOpenLoopGenThinningTracksCurve(t *testing.T) {
	eng, target := setup(t, time.Millisecond)
	curve := &FlashCrowdRate{
		Base: 200, Peak: 1200,
		At: 60 * time.Second, Ramp: 10 * time.Second, Hold: 40 * time.Second,
	}
	gen, err := NewOpenLoopGen(eng, rng.New(1).Split("wl"), target, curve)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()

	countIn := func(from, until time.Duration) float64 {
		before := gen.Scheduled()
		if eng.Now() != from {
			t.Fatalf("window start: engine at %v, want %v", eng.Now(), from)
		}
		if err := eng.Run(until); err != nil {
			t.Fatal(err)
		}
		return float64(gen.Scheduled()-before) / (until - from).Seconds()
	}
	checkRate := func(label string, got, want float64) {
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: %.0f arrivals/s, want ~%.0f", label, got, want)
		}
	}
	checkRate("baseline", countIn(0, 60*time.Second), 200)
	if err := eng.Run(70 * time.Second); err != nil { // skip the up-ramp
		t.Fatal(err)
	}
	checkRate("plateau", countIn(70*time.Second, 110*time.Second), 1200)
	if err := eng.Run(120 * time.Second); err != nil { // skip the down-ramp
		t.Fatal(err)
	}
	checkRate("recovered", countIn(120*time.Second, 240*time.Second), 200)
	if gen.Thinned() == 0 {
		t.Fatal("time-varying curve must thin some candidates")
	}
}

// TestDiurnalRateCurve pins the sinusoid's shape and envelope.
func TestDiurnalRateCurve(t *testing.T) {
	d := &DiurnalRate{Base: 100, Amplitude: 0.5, Period: 100 * time.Second}
	if got := d.Rate(0); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Rate(0) = %v, want 100", got)
	}
	if got := d.Rate(25 * time.Second); math.Abs(got-150) > 1e-9 {
		t.Fatalf("Rate(T/4) = %v, want 150", got)
	}
	if got := d.Rate(75 * time.Second); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Rate(3T/4) = %v, want 50", got)
	}
	if got := d.Max(); got != 150 {
		t.Fatalf("Max = %v, want 150", got)
	}
}

// TestFlashCrowdRateCurve pins the trapezoid's corners.
func TestFlashCrowdRateCurve(t *testing.T) {
	f := &FlashCrowdRate{Base: 10, Peak: 110,
		At: 100 * time.Second, Ramp: 20 * time.Second, Hold: 30 * time.Second}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 10},
		{99 * time.Second, 10},
		{110 * time.Second, 60},  // mid up-ramp
		{125 * time.Second, 110}, // plateau
		{160 * time.Second, 60},  // mid down-ramp
		{170 * time.Second, 10},
		{time.Hour, 10},
	}
	for _, tc := range cases {
		if got := f.Rate(tc.at); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Rate(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if got := f.Max(); got != 110 {
		t.Fatalf("Max = %v, want 110", got)
	}
}

// TestOpenLoopGenDeterminism: two runs under one seed are identical in
// every counter, including the class split.
func TestOpenLoopGenDeterminism(t *testing.T) {
	run := func() (uint64, uint64, []uint64) {
		eng := sim.NewEngine()
		target := &classFakeTarget{fakeTarget: fakeTarget{eng: eng, delay: 2 * time.Millisecond}}
		curve := &DiurnalRate{Base: 400, Amplitude: 0.8, Period: 40 * time.Second}
		gen, err := NewOpenLoopGen(eng, rng.New(77).Split("wl"), target, curve)
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.SetClasses([]Class{
			{Name: "a", Weight: 1}, {Name: "b", Weight: 3}}); err != nil {
			t.Fatal(err)
		}
		gen.Start()
		if err := eng.Run(120 * time.Second); err != nil {
			t.Fatal(err)
		}
		return gen.Scheduled(), gen.Thinned(), gen.ClassArrivals()
	}
	s1, t1, c1 := run()
	s2, t2, c2 := run()
	if s1 != s2 || t1 != t2 || c1[0] != c2[0] || c1[1] != c2[1] {
		t.Fatalf("runs diverged: (%d,%d,%v) vs (%d,%d,%v)", s1, t1, c1, s2, t2, c2)
	}
	if s1 == 0 || t1 == 0 || c1[0] == 0 || c1[1] == 0 {
		t.Fatalf("degenerate run: scheduled=%d thinned=%d classes=%v", s1, t1, c1)
	}
}

// TestOpenLoopGenValidation pins constructor errors.
func TestOpenLoopGenValidation(t *testing.T) {
	eng, target := setup(t, time.Millisecond)
	r := rng.New(1).Split("wl")
	if _, err := NewOpenLoopGen(nil, r, target, ConstantRate(1)); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewOpenLoopGen(eng, r, target, nil); err == nil {
		t.Fatal("nil curve accepted")
	}
	if _, err := NewOpenLoopGen(eng, r, target, ConstantRate(0)); err == nil {
		t.Fatal("zero rate accepted")
	}
	gen, err := NewOpenLoopGen(eng, r, target, ConstantRate(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.SetClasses(nil); err == nil {
		t.Fatal("empty class mix accepted")
	}
}

// TestOpenLoopGenStop: no arrivals are injected after Stop.
func TestOpenLoopGenStop(t *testing.T) {
	eng, target := setup(t, time.Millisecond)
	gen, err := NewOpenLoopGen(eng, rng.New(1).Split("wl"), target, ConstantRate(1000))
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	gen.Stop()
	at := gen.Scheduled()
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if gen.Scheduled() != at {
		t.Fatalf("arrivals after Stop: %d -> %d", at, gen.Scheduled())
	}
}

// countTarget completes every request synchronously — the cheapest
// possible target, so the benchmark measures the generator and event core
// alone (fakeTarget's per-request closure would hide the generator's
// allocation profile).
type countTarget struct{ n uint64 }

func (t *countTarget) Inject(done func(rt time.Duration, ok bool)) {
	t.n++
	done(time.Millisecond, true)
}

// BenchmarkOpenLoopArrivals measures the open-loop hot path: one scheduled
// arrival through the thinning check, injection and rearm. It must run
// allocation-free in steady state — the generator exists to sustain
// millions of arrivals, so a per-arrival allocation is a regression (gated
// via BENCH_engine.baseline.json).
func BenchmarkOpenLoopArrivals(b *testing.B) {
	eng := sim.NewEngine()
	target := &countTarget{}
	curve := &DiurnalRate{Base: 900_000, Amplitude: 0.1, Period: time.Second}
	gen, err := NewOpenLoopGen(eng, rng.New(1).Split("wl"), target, curve)
	if err != nil {
		b.Fatal(err)
	}
	gen.Start()
	// Warm the engine's arena so steady state is what gets measured.
	horizon := 100 * time.Millisecond
	if err := eng.Run(horizon); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	goal := gen.Scheduled() + gen.Thinned() + uint64(b.N)
	for gen.Scheduled()+gen.Thinned() < goal {
		horizon += 10 * time.Millisecond
		if err := eng.Run(horizon); err != nil {
			b.Fatal(err)
		}
	}
}
