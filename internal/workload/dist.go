package workload

import (
	"fmt"
	"math"
	"time"

	"dcm/internal/rng"
)

// The pluggable delay laws of the workload library. Real n-tier traffic is
// not exponential: think times and service demands are heavy-tailed
// (lognormal bodies, Pareto tails — the virtualized-web-workload
// characterization this library calibrates against), so every delay a
// generator draws — think time, inter-arrival gap — goes through a
// Sampler built from a DistSpec instead of a hard-coded exponential.

// Sampler draws one delay. Implementations must consume a deterministic
// number of rng draws per call wherever byte-identity matters (Normal's
// rejection loop is the documented exception, matching NoiseSigma).
type Sampler func(*rng.Rand) time.Duration

// Distribution kinds accepted by DistSpec.Dist.
const (
	DistConstant    = "constant"
	DistExponential = "exponential"
	DistLognormal   = "lognormal"
	DistPareto      = "pareto"
)

// DistSpec selects and parameterizes one delay law. All parameters are in
// seconds. The spec is the JSON wire form (see WorkloadSpec); Sampler
// compiles it.
type DistSpec struct {
	// Dist is the law: "constant", "exponential", "lognormal" or
	// "pareto".
	Dist string `json:"dist"`
	// Mean is the distribution mean (constant, exponential, lognormal).
	Mean float64 `json:"mean,omitempty"`
	// CV is the lognormal coefficient of variation (stddev/mean); the
	// lognormal is parameterized by (Mean, CV) so specs state calibration
	// targets directly. CV 0 is rejected — use "constant".
	CV float64 `json:"cv,omitempty"`
	// Alpha is the bounded-Pareto tail index; Min and Max are its support
	// bounds. The mean is derived (see MeanSeconds).
	Alpha float64 `json:"alpha,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// Validate checks the spec. Error texts are pinned by tests.
func (d DistSpec) Validate() error {
	switch d.Dist {
	case DistConstant, DistExponential:
		if d.Mean <= 0 {
			return fmt.Errorf("workload: dist %q: mean must be > 0 (got %v)", d.Dist, d.Mean)
		}
		if d.CV != 0 || d.Alpha != 0 || d.Min != 0 || d.Max != 0 {
			return fmt.Errorf("workload: dist %q: cv/alpha/min/max do not apply", d.Dist)
		}
	case DistLognormal:
		if d.Mean <= 0 {
			return fmt.Errorf("workload: dist %q: mean must be > 0 (got %v)", d.Dist, d.Mean)
		}
		if d.CV <= 0 {
			return fmt.Errorf("workload: dist %q: cv must be > 0 (got %v)", d.Dist, d.CV)
		}
		if d.Alpha != 0 || d.Min != 0 || d.Max != 0 {
			return fmt.Errorf("workload: dist %q: alpha/min/max do not apply", d.Dist)
		}
	case DistPareto:
		if d.Alpha <= 0 {
			return fmt.Errorf("workload: dist %q: alpha must be > 0 (got %v)", d.Dist, d.Alpha)
		}
		if d.Min <= 0 || d.Max <= d.Min {
			return fmt.Errorf("workload: dist %q: need 0 < min < max (got %v, %v)", d.Dist, d.Min, d.Max)
		}
		if d.Mean != 0 || d.CV != 0 {
			return fmt.Errorf("workload: dist %q: mean/cv are derived, not set", d.Dist)
		}
	case "":
		return fmt.Errorf("workload: dist is required")
	default:
		return fmt.Errorf("workload: unknown dist %q", d.Dist)
	}
	return nil
}

// Sampler compiles the spec into a delay sampler. Samples are converted
// with the round-half-up / one-tick-clamp rule, so a positive-mean law
// never schedules a zero-delay event.
func (d DistSpec) Sampler() (Sampler, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	switch d.Dist {
	case DistConstant:
		delay := delayFromSeconds(d.Mean)
		return func(*rng.Rand) time.Duration { return delay }, nil
	case DistExponential:
		mean := d.Mean
		return func(r *rng.Rand) time.Duration {
			return delayFromSeconds(r.Exp(mean))
		}, nil
	case DistLognormal:
		// mean m, coefficient of variation c:
		// sigma^2 = ln(1 + c^2), mu = ln(m) - sigma^2/2.
		sigma2 := math.Log(1 + d.CV*d.CV)
		mu := math.Log(d.Mean) - sigma2/2
		sigma := math.Sqrt(sigma2)
		return func(r *rng.Rand) time.Duration {
			return delayFromSeconds(r.LogNormal(mu, sigma))
		}, nil
	case DistPareto:
		alpha, lo, hi := d.Alpha, d.Min, d.Max
		return func(r *rng.Rand) time.Duration {
			return delayFromSeconds(r.BoundedPareto(alpha, lo, hi))
		}, nil
	}
	return nil, fmt.Errorf("workload: unknown dist %q", d.Dist)
}

// MeanSeconds returns the analytic mean of the law in seconds (for the
// bounded Pareto the mean is derived from alpha and the bounds).
func (d DistSpec) MeanSeconds() float64 {
	switch d.Dist {
	case DistPareto:
		return boundedParetoMean(d.Alpha, d.Min, d.Max)
	default:
		return d.Mean
	}
}

// CVValue returns the analytic coefficient of variation of the law.
func (d DistSpec) CVValue() float64 {
	switch d.Dist {
	case DistConstant:
		return 0
	case DistExponential:
		return 1
	case DistLognormal:
		return d.CV
	case DistPareto:
		m := boundedParetoMean(d.Alpha, d.Min, d.Max)
		m2 := boundedParetoMoment2(d.Alpha, d.Min, d.Max)
		if m <= 0 || m2 <= m*m {
			return 0
		}
		return math.Sqrt(m2-m*m) / m
	}
	return 0
}

// boundedParetoMean is E[X] of the bounded Pareto on [lo, hi] with tail
// index alpha.
func boundedParetoMean(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		return 0
	}
	if alpha == 1 {
		return (lo * hi / (hi - lo)) * math.Log(hi/lo)
	}
	norm := math.Pow(lo, alpha) / (1 - math.Pow(lo/hi, alpha))
	return norm * alpha / (alpha - 1) *
		(math.Pow(lo, 1-alpha) - math.Pow(hi, 1-alpha))
}

// boundedParetoMoment2 is E[X^2] of the bounded Pareto.
func boundedParetoMoment2(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		return 0
	}
	if alpha == 2 {
		norm := math.Pow(lo, alpha) / (1 - math.Pow(lo/hi, alpha))
		return norm * alpha * math.Log(hi/lo)
	}
	norm := math.Pow(lo, alpha) / (1 - math.Pow(lo/hi, alpha))
	return norm * alpha / (alpha - 2) *
		(math.Pow(lo, 2-alpha) - math.Pow(hi, 2-alpha))
}
