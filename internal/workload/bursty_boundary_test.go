package workload

import (
	"errors"
	"testing"
	"time"

	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// TestBurstyZeroLengthBurst covers the degenerate-dwell boundary: a zero
// SurgeDwell is rejected (the modulating process would busy-loop), while a
// vanishingly short one — a burst of essentially zero length — must run,
// keep flipping state without stalling the event loop, and still serve
// requests at the normal rate.
func TestBurstyZeroLengthBurst(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng, delay: time.Millisecond}
	cfg := BurstyConfig{
		Users: 10, NormalThink: 100 * time.Millisecond, SurgeThink: 10 * time.Millisecond,
		NormalDwell: time.Second, SurgeDwell: 0,
	}
	if _, err := NewBurstyLoop(eng, rng.New(5).Split("wl"), tgt, cfg); !errors.Is(err, ErrBadWorkload) {
		t.Fatal("zero surge dwell accepted")
	}
	cfg.SurgeDwell = time.Nanosecond
	bl, err := NewBurstyLoop(eng, rng.New(5).Split("wl"), tgt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bl.Start()
	if err := eng.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// ~10 users / 100ms think over 30s: the zero-length surges must not
	// distort throughput beyond noise (nor hang the run).
	if n := bl.TotalCompleted(); n < 1000 {
		t.Fatalf("completed = %d, want ≳ normal-rate completions", n)
	}
}

// TestBurstySurgeNoFasterThanNormal covers the rate-ordering boundary: a
// "surge" that thinks *slower* than the normal state (burst rate below
// the base rate) is a misconfiguration and is rejected, while the equality
// boundary — a degenerate surge at exactly the base rate — is legal and
// behaves like a plain closed loop.
func TestBurstySurgeNoFasterThanNormal(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng, delay: time.Millisecond}
	cfg := BurstyConfig{
		Users: 5, NormalThink: 100 * time.Millisecond, SurgeThink: 200 * time.Millisecond,
		NormalDwell: time.Second, SurgeDwell: time.Second,
	}
	if _, err := NewBurstyLoop(eng, rng.New(6).Split("wl"), tgt, cfg); !errors.Is(err, ErrBadWorkload) {
		t.Fatal("surge slower than normal accepted")
	}
	cfg.SurgeThink = cfg.NormalThink
	bl, err := NewBurstyLoop(eng, rng.New(6).Split("wl"), tgt, cfg)
	if err != nil {
		t.Fatalf("equal think times rejected: %v", err)
	}
	bl.Start()
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if bl.TotalCompleted() == 0 {
		t.Fatal("degenerate (equal-rate) burst config served nothing")
	}
}

// TestBurstySingleTickBurst covers the shortest meaningful burst: a surge
// dwell equal to one think-time tick, far below the normal dwell. The
// modulating state must visit the surge and return to normal without
// sticking, and the run must complete.
func TestBurstySingleTickBurst(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	tgt := &fakeTarget{eng: eng, delay: time.Millisecond}
	bl, err := NewBurstyLoop(eng, rng.New(7).Split("wl"), tgt, BurstyConfig{
		Users: 20, NormalThink: 100 * time.Millisecond, SurgeThink: 10 * time.Millisecond,
		NormalDwell: 500 * time.Millisecond, SurgeDwell: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	bl.Start()
	surged, recovered := false, false
	stop := eng.Ticker(time.Millisecond, func() {
		if bl.Surging() {
			surged = true
		} else if surged {
			recovered = true
		}
	})
	defer stop()
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !surged || !recovered {
		t.Fatalf("surged = %v, recovered = %v: single-tick burst stuck", surged, recovered)
	}
	if bl.TotalCompleted() == 0 {
		t.Fatal("no completions")
	}
}

// failNTarget fails the first n requests then succeeds, instantly.
type failNTarget struct {
	eng  *sim.Engine
	fail int
	seen int
}

func (f *failNTarget) Inject(done func(rt time.Duration, ok bool)) {
	f.seen++
	ok := f.seen > f.fail
	f.eng.Schedule(time.Millisecond, func() { done(time.Millisecond, ok) })
}

// TestBurstyLoopRetries checks the retry wiring on the bursty generator:
// failed requests retry through the shared retrier and the retry counter
// advances.
func TestBurstyLoopRetries(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	tgt := &failNTarget{eng: eng, fail: 3}
	bl, err := NewBurstyLoop(eng, rng.New(8).Split("wl"), tgt, BurstyConfig{
		Users: 1, NormalThink: 100 * time.Millisecond, SurgeThink: 10 * time.Millisecond,
		NormalDwell: time.Hour, SurgeDwell: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ret, err := resilience.NewRetrier(resilience.RetryPolicy{
		MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bl.SetRetrier(ret)
	bl.Start()
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if bl.TotalRetries() != 3 {
		t.Fatalf("retries = %d, want 3", bl.TotalRetries())
	}
	if bl.TotalCompleted() == 0 {
		t.Fatal("retried request never completed")
	}
}
