// Package workload implements the paper's three workload generators
// (§II-A):
//
//   - ClosedLoop with zero think time — the Jmeter setup used for model
//     training, where the request-processing concurrency equals the number
//     of users;
//   - ClosedLoop with exponential think time (mean 3 s) — the original
//     RUBBoS client emulator used for model validation;
//   - TraceDriven — the revised RUBBoS emulator that varies the number of
//     concurrent users over time according to a trace file, used for the
//     bursty-workload evaluation (§V-B);
//
// plus an open-loop Poisson generator for ablations.
package workload

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dcm/internal/metrics"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
	"dcm/internal/trace"
)

// delayFromSeconds converts a sampled delay in seconds into an engine
// delay. The naive time.Duration(sec * float64(time.Second)) conversion
// truncates toward zero, so every draw schedules up to a nanosecond early
// and a sub-nanosecond draw schedules at zero delay — turning a positive
// think time into an immediate re-arrival. Round half-up instead and clamp
// positive draws to one engine tick (1 ns). Non-positive samples stay
// zero: that is the deliberate degenerate mode (Jmeter zero think time).
func delayFromSeconds(sec float64) time.Duration {
	if sec <= 0 {
		return 0
	}
	d := time.Duration(math.Round(sec * float64(time.Second)))
	if d < 1 {
		d = 1
	}
	return d
}

// expDelay draws an exponential delay with the given mean. A non-positive
// mean is the zero-delay degenerate mode and consumes no randomness (the
// draw-parity contract byte-identical runs rely on).
func expDelay(rnd *rng.Rand, mean time.Duration) time.Duration {
	return delayFromSeconds(rnd.Exp(mean.Seconds()))
}

// Target is anything that can process a request (normally *ntier.App).
type Target interface {
	Inject(done func(rt time.Duration, ok bool))
}

// ErrBadWorkload is returned for invalid generator configurations.
var ErrBadWorkload = errors.New("workload: invalid config")

// ClosedLoopConfig parameterizes a closed-loop generator.
type ClosedLoopConfig struct {
	// Users is the initial number of emulated users.
	Users int
	// ThinkTime is the mean of the exponential think time between a
	// response and the user's next request. Zero emulates Jmeter's
	// zero-think-time mode.
	ThinkTime time.Duration
	// Stagger spreads each new user's first request uniformly over this
	// window, avoiding a synchronized thundering herd. Defaults to
	// max(ThinkTime, 1s).
	Stagger time.Duration
}

// ClosedLoop emulates a population of users, each cycling through
// request → response → think. The population can be changed at runtime,
// which is how TraceDriven applies a trace.
type ClosedLoop struct {
	eng    *sim.Engine
	rnd    *rng.Rand
	target Target
	cfg    ClosedLoopConfig

	want    int // desired population
	live    int // users currently cycling
	started bool
	stopped bool

	retrier *resilience.Retrier

	// Class-mix state (nil/zero without classes — the class-free cycle is
	// byte-identical to the original generator).
	classes  []Class
	picker   *classPicker
	ctarget  ClassTarget
	think    Sampler // think-law override (nil = exponential ThinkTime)
	sessions uint64  // next session id

	issued    metrics.Counter
	completed metrics.Counter
	errored   metrics.Counter
	retries   metrics.Counter
	rts       metrics.MeanAccumulator
}

// NewClosedLoop returns an unstarted closed-loop generator.
func NewClosedLoop(eng *sim.Engine, rnd *rng.Rand, target Target, cfg ClosedLoopConfig) (*ClosedLoop, error) {
	if eng == nil || rnd == nil || target == nil {
		return nil, fmt.Errorf("%w: nil dependency", ErrBadWorkload)
	}
	if cfg.Users < 0 || cfg.ThinkTime < 0 || cfg.Stagger < 0 {
		return nil, fmt.Errorf("%w: negative users/think/stagger", ErrBadWorkload)
	}
	if cfg.Stagger == 0 {
		cfg.Stagger = cfg.ThinkTime
		if cfg.Stagger < time.Second {
			cfg.Stagger = time.Second
		}
	}
	return &ClosedLoop{eng: eng, rnd: rnd, target: target, cfg: cfg, want: cfg.Users}, nil
}

// SetRetrier attaches a client-side retrier: a user whose request fails
// retries it after the retrier's jittered backoff, up to the policy's
// attempt cap and budget, before giving up and thinking. Each retry is
// re-issued through the target like any request (it is a new HTTP request
// from the server's point of view). nil (the default) disables retries
// and leaves the cycle byte-identical to the retry-free generator.
func (c *ClosedLoop) SetRetrier(r *resilience.Retrier) { c.retrier = r }

// Retrier returns the attached retrier (nil when retries are off).
func (c *ClosedLoop) Retrier() *resilience.Retrier { return c.retrier }

// SetThinkSampler overrides the exponential think-time law with an
// arbitrary sampler (heavy-tailed think times). nil (the default) keeps
// the exponential ThinkTime law. Must be called before Start.
func (c *ClosedLoop) SetThinkSampler(s Sampler) { c.think = s }

// SetClasses installs a traffic-class mix: each spawned user draws a class
// by weight and keeps it (and a stable session id, for load-balancer
// affinity) for life. The target must implement ClassTarget. Must be
// called before Start.
func (c *ClosedLoop) SetClasses(classes []Class) error {
	ct, ok := c.target.(ClassTarget)
	if !ok {
		return fmt.Errorf("%w: target does not accept classes", ErrBadWorkload)
	}
	picker, err := newClassPicker(classes)
	if err != nil {
		return err
	}
	c.classes = classes
	c.picker = picker
	c.ctarget = ct
	return nil
}

// Classes returns the configured class mix (nil without classes).
func (c *ClosedLoop) Classes() []Class { return c.classes }

// Start launches the initial user population. Start is idempotent.
func (c *ClosedLoop) Start() {
	if c.started {
		return
	}
	// A class mix with critical classes splits the retry budget by the
	// mix's weight shares, so a best-effort retry storm can at worst
	// drain its own share (see resilience.Retrier.EnableClassAccounting).
	if c.picker != nil && c.retrier != nil && !c.retrier.ClassAware() {
		if share := criticalShare(c.classes); share > 0 {
			c.retrier.EnableClassAccounting(share)
		}
	}
	c.started = true
	n := c.want
	c.want = 0
	c.SetUsers(n)
}

// criticalShare is the critical (Priority > 0) classes' weight share of
// the mix — the fraction of the retry budget reserved for them.
func criticalShare(classes []Class) float64 {
	var crit, total float64
	for _, c := range classes {
		total += c.Weight
		if c.Priority > 0 {
			crit += c.Weight
		}
	}
	if total <= 0 {
		return 0
	}
	return crit / total
}

// Stop retires all users; in-flight requests complete but no new requests
// are issued.
func (c *ClosedLoop) Stop() {
	c.stopped = true
	c.want = 0
}

// Users returns the desired user population.
func (c *ClosedLoop) Users() int { return c.want }

// Live returns the number of users still cycling (lags Users after a
// downward adjustment until users finish their current cycle).
func (c *ClosedLoop) Live() int { return c.live }

// SetUsers adjusts the population at runtime. Growth spawns users whose
// first requests are staggered; shrinkage retires users as they complete
// their current cycle, like real users leaving after their page loads.
func (c *ClosedLoop) SetUsers(n int) {
	if n < 0 {
		n = 0
	}
	if c.stopped {
		return
	}
	c.want = n
	if !c.started {
		return
	}
	for c.live < c.want {
		c.live++
		delay := time.Duration(c.rnd.Uniform(0, float64(c.cfg.Stagger)))
		if c.picker == nil {
			c.eng.Schedule(delay, c.userCycle)
			continue
		}
		// Class mode: the user draws a class and a session id at spawn and
		// keeps both for life — a premium user stays premium, and the
		// session key pins their requests to one backend.
		cls := c.picker.pick(c.rnd)
		c.sessions++
		session := c.sessions
		c.eng.Schedule(delay, func() { c.classCycle(cls, session) })
	}
}

// userCycle is one user's request loop. The user retires whenever the live
// population exceeds the desired one.
func (c *ClosedLoop) userCycle() {
	if c.stopped || c.live > c.want {
		c.live--
		return
	}
	c.startRequest(1)
}

// startRequest issues one attempt of a user's request (attempt 1 is the
// original). A failed attempt retries after backoff while the retrier
// allows; the user thinks and cycles once the request succeeds or is
// abandoned.
func (c *ClosedLoop) startRequest(attempt int) {
	c.issued.Inc(1)
	c.target.Inject(func(rt time.Duration, ok bool) {
		if ok {
			c.completed.Inc(1)
			c.rts.Observe(rt.Seconds())
			if c.retrier != nil {
				c.retrier.OnSuccess()
			}
		} else if c.retrier != nil && c.retrier.Allow(attempt) {
			c.retries.Inc(1)
			c.eng.Schedule(c.retrier.Backoff(attempt), func() {
				// The user may have been retired (or the run stopped) while
				// backing off.
				if c.stopped || c.live > c.want {
					c.live--
					return
				}
				c.startRequest(attempt + 1)
			})
			return
		} else {
			c.errored.Inc(1)
		}
		think := c.thinkDelay(-1)
		c.eng.Schedule(think, c.userCycle)
	})
}

// thinkDelay draws one think time: the class law if the class has one,
// else the generator-wide sampler override, else the exponential
// ThinkTime default.
func (c *ClosedLoop) thinkDelay(cls int) time.Duration {
	if cls >= 0 && cls < len(c.classes) && c.classes[cls].Think != nil {
		return c.classes[cls].Think(c.rnd)
	}
	if c.think != nil {
		return c.think(c.rnd)
	}
	return expDelay(c.rnd, c.cfg.ThinkTime)
}

// classCycle is one class-mode user's request loop (the class-mode twin of
// userCycle).
func (c *ClosedLoop) classCycle(cls int, session uint64) {
	if c.stopped || c.live > c.want {
		c.live--
		return
	}
	c.startClassRequest(cls, session, 1)
}

// startClassRequest issues one attempt of a class-mode user's request
// (the class-mode twin of startRequest). Retry-budget traffic is
// class-attributed: critical (Priority > 0) classes debit and refill
// their own share of a class-aware budget so neither class can starve
// the other's retries during a storm.
func (c *ClosedLoop) startClassRequest(cls int, session uint64, attempt int) {
	critical := cls >= 0 && cls < len(c.classes) && c.classes[cls].Priority > 0
	c.issued.Inc(1)
	c.ctarget.InjectClass(cls, session, func(rt time.Duration, ok bool) {
		if ok {
			c.completed.Inc(1)
			c.rts.Observe(rt.Seconds())
			if c.retrier != nil {
				c.retrier.OnSuccessClass(critical)
			}
		} else if c.retrier != nil && c.retrier.AllowClass(attempt, critical) {
			c.retries.Inc(1)
			c.eng.Schedule(c.retrier.Backoff(attempt), func() {
				if c.stopped || c.live > c.want {
					c.live--
					return
				}
				c.startClassRequest(cls, session, attempt+1)
			})
			return
		} else {
			c.errored.Inc(1)
		}
		think := c.thinkDelay(cls)
		c.eng.Schedule(think, func() { c.classCycle(cls, session) })
	})
}

// Stats is one interval of generator-side metrics.
type Stats struct {
	// Issued, Completed, Errors are counts in the interval.
	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	Errors    uint64 `json:"errors"`
	// MeanRTSeconds is the client-observed mean response time.
	MeanRTSeconds float64 `json:"meanRTSeconds"`
	// Users is the desired population at sampling time.
	Users int `json:"users"`
	// Retries counts retry attempts issued in the interval (a subset of
	// Issued). Zero — and absent from JSON — without a retrier.
	Retries uint64 `json:"retries,omitempty"`
}

// TakeStats returns interval metrics and resets the interval.
func (c *ClosedLoop) TakeStats() Stats {
	mean, _ := c.rts.TakeMean()
	return Stats{
		Issued:        c.issued.TakeDelta(),
		Completed:     c.completed.TakeDelta(),
		Errors:        c.errored.TakeDelta(),
		MeanRTSeconds: mean,
		Users:         c.want,
		Retries:       c.retries.TakeDelta(),
	}
}

// TotalCompleted returns the lifetime number of completed requests.
func (c *ClosedLoop) TotalCompleted() uint64 { return c.completed.Total() }

// TotalRetries returns the lifetime number of retry attempts issued.
func (c *ClosedLoop) TotalRetries() uint64 { return c.retries.Total() }

// TraceDriven replays a user-population trace through a ClosedLoop — the
// revised RUBBoS client emulator of §II-A.
type TraceDriven struct {
	loop   *ClosedLoop
	trace  *trace.Trace
	eng    *sim.Engine
	stop   func()
	period time.Duration
}

// NewTraceDriven wraps a trace around a closed-loop generator. period is
// how often the population is re-synchronized to the trace (default 1 s).
func NewTraceDriven(eng *sim.Engine, rnd *rng.Rand, target Target, tr *trace.Trace, think time.Duration, period time.Duration) (*TraceDriven, error) {
	if tr == nil {
		return nil, fmt.Errorf("%w: nil trace", ErrBadWorkload)
	}
	if period <= 0 {
		period = time.Second
	}
	loop, err := NewClosedLoop(eng, rnd, target, ClosedLoopConfig{
		Users:     tr.UsersAt(0),
		ThinkTime: think,
	})
	if err != nil {
		return nil, err
	}
	return &TraceDriven{loop: loop, trace: tr, eng: eng, period: period}, nil
}

// Start launches the generator and begins following the trace.
func (t *TraceDriven) Start() {
	if t.stop != nil {
		return
	}
	t.loop.Start()
	t.stop = t.eng.Ticker(t.period, func() {
		t.loop.SetUsers(t.trace.UsersAt(t.eng.Now()))
	})
}

// Stop halts trace following and retires all users.
func (t *TraceDriven) Stop() {
	if t.stop != nil {
		t.stop()
	}
	t.loop.Stop()
}

// Loop exposes the underlying closed loop (for stats).
func (t *TraceDriven) Loop() *ClosedLoop { return t.loop }

// Trace returns the trace being replayed.
func (t *TraceDriven) Trace() *trace.Trace { return t.trace }

// OpenLoop issues requests in a Poisson stream at a configurable rate,
// independent of responses — unlike the paper's closed-loop clients it can
// overload the system without bound, which the ablation benchmarks use to
// probe behaviour past saturation.
type OpenLoop struct {
	eng       *sim.Engine
	rnd       *rng.Rand
	target    Target
	rate      float64 // requests per second
	stopped   bool
	issued    metrics.Counter
	completed metrics.Counter
	errored   metrics.Counter
	rts       metrics.MeanAccumulator
}

// NewOpenLoop returns an unstarted open-loop generator at rate requests/s.
func NewOpenLoop(eng *sim.Engine, rnd *rng.Rand, target Target, rate float64) (*OpenLoop, error) {
	if eng == nil || rnd == nil || target == nil {
		return nil, fmt.Errorf("%w: nil dependency", ErrBadWorkload)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("%w: rate %v", ErrBadWorkload, rate)
	}
	return &OpenLoop{eng: eng, rnd: rnd, target: target, rate: rate}, nil
}

// SetRate changes the arrival rate at runtime.
func (o *OpenLoop) SetRate(rate float64) {
	if rate > 0 {
		o.rate = rate
	}
}

// Start begins the Poisson arrival stream.
func (o *OpenLoop) Start() {
	if o.stopped {
		return
	}
	o.scheduleNext()
}

func (o *OpenLoop) scheduleNext() {
	gap := delayFromSeconds(o.rnd.Exp(1 / o.rate))
	o.eng.Schedule(gap, func() {
		if o.stopped {
			return
		}
		o.issued.Inc(1)
		o.target.Inject(func(rt time.Duration, ok bool) {
			if ok {
				o.completed.Inc(1)
				o.rts.Observe(rt.Seconds())
			} else {
				o.errored.Inc(1)
			}
		})
		o.scheduleNext()
	})
}

// Stop halts the arrival stream.
func (o *OpenLoop) Stop() { o.stopped = true }

// TakeStats returns interval metrics and resets the interval.
func (o *OpenLoop) TakeStats() Stats {
	mean, _ := o.rts.TakeMean()
	return Stats{
		Issued:        o.issued.TakeDelta(),
		Completed:     o.completed.TakeDelta(),
		Errors:        o.errored.TakeDelta(),
		MeanRTSeconds: mean,
	}
}

// TotalCompleted returns the lifetime number of completed requests.
func (o *OpenLoop) TotalCompleted() uint64 { return o.completed.Total() }
