package workload

import (
	"fmt"
	"math"
	"time"

	"dcm/internal/metrics"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// ClassTarget is a Target that also accepts class-tagged requests (matched
// structurally by *ntier.App). class indexes the target's configured class
// list; session is a stable key for load-balancer affinity (0 = none).
type ClassTarget interface {
	Target
	InjectClass(class int, session uint64, done func(rt time.Duration, ok bool))
}

// Class is one traffic class as the generators see it: a weighted slice of
// the stream, optionally with its own think-time law. The class at index i
// is injected as class i — the spec keeps generator classes and the
// application's RequestClass list aligned by construction.
type Class struct {
	Name string
	// Weight is the class's share of traffic (normalized over the mix).
	Weight float64
	// Priority > 0 marks the class critical: its retries debit the
	// critical share of a class-aware retry budget and the brownout
	// front door never sheds it (mirrors ntier.RequestClass.Priority).
	Priority int
	// Think overrides the generator think-time law for this class
	// (closed-loop only; nil = the generator default).
	Think Sampler
}

// classPicker draws classes by cumulative weight with one uniform draw.
type classPicker struct {
	cum []float64 // cumulative weights, cum[len-1] == total
}

func newClassPicker(classes []Class) (*classPicker, error) {
	cum := make([]float64, len(classes))
	total := 0.0
	for i, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("%w: class %d has no name", ErrBadWorkload, i)
		}
		if c.Weight <= 0 {
			return nil, fmt.Errorf("%w: class %q weight %v", ErrBadWorkload, c.Name, c.Weight)
		}
		total += c.Weight
		cum[i] = total
	}
	if len(cum) == 0 {
		return nil, fmt.Errorf("%w: empty class mix", ErrBadWorkload)
	}
	return &classPicker{cum: cum}, nil
}

// pick draws one class index (one uniform draw, zero allocations).
func (p *classPicker) pick(rnd *rng.Rand) int {
	u := rnd.Uniform(0, p.cum[len(p.cum)-1])
	for i, c := range p.cum {
		if u < c {
			return i
		}
	}
	return len(p.cum) - 1
}

// RateCurve is a time-varying arrival rate in requests per second.
type RateCurve interface {
	// Rate returns the instantaneous rate at simulated time t.
	Rate(t time.Duration) float64
	// Max bounds Rate over all t — the thinning envelope.
	Max() float64
}

// ConstantRate is a flat curve.
type ConstantRate float64

// Rate returns the constant rate.
func (c ConstantRate) Rate(time.Duration) float64 { return float64(c) }

// Max returns the constant rate.
func (c ConstantRate) Max() float64 { return float64(c) }

// DiurnalRate is a sinusoid around Base: Base*(1 + Amplitude*sin(2πt/Period)),
// the day/night swell of a user-facing service compressed to simulation
// scale.
type DiurnalRate struct {
	Base      float64
	Amplitude float64 // relative, in (0, 1]
	Period    time.Duration
}

// Rate returns the sinusoid at t.
func (d *DiurnalRate) Rate(t time.Duration) float64 {
	phase := 2 * math.Pi * float64(t) / float64(d.Period)
	return d.Base * (1 + d.Amplitude*math.Sin(phase))
}

// Max returns the sinusoid's crest.
func (d *DiurnalRate) Max() float64 { return d.Base * (1 + d.Amplitude) }

// FlashCrowdRate is a trapezoid spike: Base until At, a linear ramp to
// Peak over Ramp, a plateau of Hold, a linear ramp back down over Ramp,
// then Base again.
type FlashCrowdRate struct {
	Base, Peak     float64
	At, Ramp, Hold time.Duration
}

// Rate returns the trapezoid at t.
func (f *FlashCrowdRate) Rate(t time.Duration) float64 {
	switch {
	case t < f.At:
		return f.Base
	case t < f.At+f.Ramp:
		frac := float64(t-f.At) / float64(f.Ramp)
		return f.Base + (f.Peak-f.Base)*frac
	case t < f.At+f.Ramp+f.Hold:
		return f.Peak
	case t < f.At+2*f.Ramp+f.Hold:
		frac := float64(t-f.At-f.Ramp-f.Hold) / float64(f.Ramp)
		return f.Peak - (f.Peak-f.Base)*frac
	default:
		return f.Base
	}
}

// Max returns the plateau rate.
func (f *FlashCrowdRate) Max() float64 { return f.Peak }

// OpenLoopGen issues requests along a time-varying Poisson stream,
// independent of responses — the open-loop arrival model real internet
// traffic follows, where clients do not politely wait for the system to
// drain before sending more. Time variation uses Lewis-Shedler thinning:
// candidate arrivals are generated at the envelope rate Max() and accepted
// with probability Rate(now)/Max(), which keeps the stream an exact
// non-homogeneous Poisson process. The arrival hot path allocates nothing
// in steady state (callbacks are preallocated), so the generator can
// sustain millions of scheduled arrivals.
type OpenLoopGen struct {
	eng     *sim.Engine
	rnd     *rng.Rand
	target  Target
	ctarget ClassTarget
	curve   RateCurve
	max     float64
	thin    bool // curve is time-varying: thin candidates

	classes []Class
	picker  *classPicker

	stopped   bool
	scheduled uint64 // accepted arrivals over the lifetime
	thinned   uint64 // candidates rejected by thinning
	byClass   []uint64

	issued    metrics.Counter
	completed metrics.Counter
	errored   metrics.Counter
	rts       metrics.MeanAccumulator

	// Preallocated hot-path callbacks (method values escape once, here,
	// instead of once per arrival).
	arriveFn func()
	doneFn   func(rt time.Duration, ok bool)
}

// NewOpenLoopGen returns an unstarted open-loop generator driving the
// given rate curve.
func NewOpenLoopGen(eng *sim.Engine, rnd *rng.Rand, target Target, curve RateCurve) (*OpenLoopGen, error) {
	if eng == nil || rnd == nil || target == nil || curve == nil {
		return nil, fmt.Errorf("%w: nil dependency", ErrBadWorkload)
	}
	max := curve.Max()
	if max <= 0 || math.IsInf(max, 0) || math.IsNaN(max) {
		return nil, fmt.Errorf("%w: curve max rate %v", ErrBadWorkload, max)
	}
	_, constant := curve.(ConstantRate)
	o := &OpenLoopGen{
		eng:    eng,
		rnd:    rnd,
		target: target,
		curve:  curve,
		max:    max,
		thin:   !constant,
	}
	o.arriveFn = o.arrive
	o.doneFn = o.onDone
	return o, nil
}

// SetClasses installs a traffic-class mix: each accepted arrival draws a
// class by weight and is injected via InjectClass. The target must
// implement ClassTarget. Must be called before Start.
func (o *OpenLoopGen) SetClasses(classes []Class) error {
	ct, ok := o.target.(ClassTarget)
	if !ok {
		return fmt.Errorf("%w: target does not accept classes", ErrBadWorkload)
	}
	picker, err := newClassPicker(classes)
	if err != nil {
		return err
	}
	o.classes = classes
	o.picker = picker
	o.ctarget = ct
	o.byClass = make([]uint64, len(classes))
	return nil
}

// Start begins the arrival stream.
func (o *OpenLoopGen) Start() {
	if o.stopped {
		return
	}
	o.scheduleGap()
}

// Stop halts the arrival stream; in-flight requests complete.
func (o *OpenLoopGen) Stop() { o.stopped = true }

// scheduleGap draws the next candidate gap at the envelope rate.
func (o *OpenLoopGen) scheduleGap() {
	gap := delayFromSeconds(o.rnd.Exp(1 / o.max))
	o.eng.Schedule(gap, o.arriveFn)
}

// arrive handles one candidate arrival: thin, inject, schedule the next.
func (o *OpenLoopGen) arrive() {
	if o.stopped {
		return
	}
	if o.thin && o.rnd.Uniform(0, o.max) >= o.curve.Rate(o.eng.Now()) {
		o.thinned++
		o.scheduleGap()
		return
	}
	o.scheduled++
	o.issued.Inc(1)
	if o.picker != nil {
		cls := o.picker.pick(o.rnd)
		o.byClass[cls]++
		o.ctarget.InjectClass(cls, 0, o.doneFn)
	} else {
		o.target.Inject(o.doneFn)
	}
	o.scheduleGap()
}

// onDone tallies one completed request. Per-class outcome tallies live in
// the target (the class travels with the request there); keeping the
// generator's callback class-free is what keeps the hot path
// allocation-free.
func (o *OpenLoopGen) onDone(rt time.Duration, ok bool) {
	if ok {
		o.completed.Inc(1)
		o.rts.Observe(rt.Seconds())
	} else {
		o.errored.Inc(1)
	}
}

// Curve returns the generator's rate curve.
func (o *OpenLoopGen) Curve() RateCurve { return o.curve }

// Scheduled returns the lifetime number of accepted (injected) arrivals.
func (o *OpenLoopGen) Scheduled() uint64 { return o.scheduled }

// Thinned returns the lifetime number of candidates rejected by thinning.
func (o *OpenLoopGen) Thinned() uint64 { return o.thinned }

// ClassArrivals returns per-class lifetime arrival counts in class order
// (nil without classes).
func (o *OpenLoopGen) ClassArrivals() []uint64 {
	if o.byClass == nil {
		return nil
	}
	out := make([]uint64, len(o.byClass))
	copy(out, o.byClass)
	return out
}

// Classes returns the configured class mix (nil without classes).
func (o *OpenLoopGen) Classes() []Class { return o.classes }

// TakeStats returns interval metrics and resets the interval.
func (o *OpenLoopGen) TakeStats() Stats {
	mean, _ := o.rts.TakeMean()
	return Stats{
		Issued:        o.issued.TakeDelta(),
		Completed:     o.completed.TakeDelta(),
		Errors:        o.errored.TakeDelta(),
		MeanRTSeconds: mean,
	}
}

// TotalCompleted returns the lifetime number of completed requests.
func (o *OpenLoopGen) TotalCompleted() uint64 { return o.completed.Total() }

// TotalErrors returns the lifetime number of failed requests.
func (o *OpenLoopGen) TotalErrors() uint64 { return o.errored.Total() }
