package workload

import (
	"math"
	"testing"
	"time"

	"dcm/internal/rng"
)

// sampleMoments draws n samples and returns their mean and coefficient of
// variation in seconds.
func sampleMoments(t *testing.T, spec DistSpec, seed uint64, n int) (mean, cv float64) {
	t.Helper()
	sampler, err := spec.Sampler()
	if err != nil {
		t.Fatalf("Sampler(%+v): %v", spec, err)
	}
	r := rng.New(seed).Split("dist")
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := sampler(r).Seconds()
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	if mean > 0 {
		cv = math.Sqrt(variance) / mean
	}
	return mean, cv
}

// TestDistSpecValidatePinnedErrors pins the validation error texts — the
// spec is a user-facing file format, so messages are part of the contract.
func TestDistSpecValidatePinnedErrors(t *testing.T) {
	cases := []struct {
		spec DistSpec
		want string
	}{
		{DistSpec{}, "workload: dist is required"},
		{DistSpec{Dist: "weibull"}, `workload: unknown dist "weibull"`},
		{DistSpec{Dist: "exponential"}, `workload: dist "exponential": mean must be > 0 (got 0)`},
		{DistSpec{Dist: "constant", Mean: -2}, `workload: dist "constant": mean must be > 0 (got -2)`},
		{DistSpec{Dist: "exponential", Mean: 1, Alpha: 2}, `workload: dist "exponential": cv/alpha/min/max do not apply`},
		{DistSpec{Dist: "lognormal", Mean: 1}, `workload: dist "lognormal": cv must be > 0 (got 0)`},
		{DistSpec{Dist: "lognormal", Mean: 1, CV: 2, Min: 1}, `workload: dist "lognormal": alpha/min/max do not apply`},
		{DistSpec{Dist: "pareto"}, `workload: dist "pareto": alpha must be > 0 (got 0)`},
		{DistSpec{Dist: "pareto", Alpha: 1.5, Min: 2, Max: 1}, `workload: dist "pareto": need 0 < min < max (got 2, 1)`},
		{DistSpec{Dist: "pareto", Alpha: 1.5, Min: 1, Max: 10, Mean: 3}, `workload: dist "pareto": mean/cv are derived, not set`},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("Validate(%+v): want error %q, got nil", tc.spec, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("Validate(%+v):\n got %q\nwant %q", tc.spec, err.Error(), tc.want)
		}
	}
	good := []DistSpec{
		{Dist: "constant", Mean: 3},
		{Dist: "exponential", Mean: 0.5},
		{Dist: "lognormal", Mean: 3, CV: 2},
		{Dist: "pareto", Alpha: 1.5, Min: 0.1, Max: 100},
	}
	for _, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate(%+v): unexpected error %v", spec, err)
		}
	}
}

// TestConstantSampler pins the degenerate law: every draw is the mean and
// no randomness is consumed.
func TestConstantSampler(t *testing.T) {
	sampler, err := DistSpec{Dist: "constant", Mean: 2.5}.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7).Split("dist")
	before := *r
	for i := 0; i < 10; i++ {
		if got := sampler(r); got != 2500*time.Millisecond {
			t.Fatalf("draw %d: got %v, want 2.5s", i, got)
		}
	}
	if *r != before {
		t.Fatal("constant sampler consumed randomness")
	}
}

// TestExponentialMoments checks the exponential law's sampled mean and CV
// against the analytic values at a pinned seed.
func TestExponentialMoments(t *testing.T) {
	spec := DistSpec{Dist: "exponential", Mean: 3}
	mean, cv := sampleMoments(t, spec, 42, 200_000)
	if math.Abs(mean-3)/3 > 0.02 {
		t.Errorf("sampled mean %.4f, want 3 within 2%%", mean)
	}
	if math.Abs(cv-1) > 0.02 {
		t.Errorf("sampled cv %.4f, want 1 within 0.02", cv)
	}
	if got := spec.MeanSeconds(); got != 3 {
		t.Errorf("MeanSeconds = %v, want 3", got)
	}
	if got := spec.CVValue(); got != 1 {
		t.Errorf("CVValue = %v, want 1", got)
	}
}

// TestLognormalMoments checks the (mean, cv) parameterization: sampling a
// heavy-bodied lognormal must reproduce the requested calibration targets.
func TestLognormalMoments(t *testing.T) {
	spec := DistSpec{Dist: "lognormal", Mean: 3, CV: 2}
	mean, cv := sampleMoments(t, spec, 42, 400_000)
	if math.Abs(mean-3)/3 > 0.03 {
		t.Errorf("sampled mean %.4f, want 3 within 3%%", mean)
	}
	// CV converges slowly for heavy tails; 10% at 400k draws.
	if math.Abs(cv-2)/2 > 0.10 {
		t.Errorf("sampled cv %.4f, want 2 within 10%%", cv)
	}
	if got := spec.MeanSeconds(); got != 3 {
		t.Errorf("MeanSeconds = %v, want 3", got)
	}
	if got := spec.CVValue(); got != 2 {
		t.Errorf("CVValue = %v, want 2", got)
	}
}

// TestParetoMoments cross-validates the sampled bounded-Pareto mean and CV
// against the analytic formulas the calibration table relies on.
func TestParetoMoments(t *testing.T) {
	spec := DistSpec{Dist: "pareto", Alpha: 1.5, Min: 0.2, Max: 50}
	wantMean := spec.MeanSeconds()
	wantCV := spec.CVValue()
	if wantMean <= spec.Min || wantMean >= spec.Max {
		t.Fatalf("analytic mean %.4f outside support (%v, %v)", wantMean, spec.Min, spec.Max)
	}
	mean, cv := sampleMoments(t, spec, 42, 400_000)
	if math.Abs(mean-wantMean)/wantMean > 0.03 {
		t.Errorf("sampled mean %.4f, want %.4f within 3%%", mean, wantMean)
	}
	if math.Abs(cv-wantCV)/wantCV > 0.10 {
		t.Errorf("sampled cv %.4f, want %.4f within 10%%", cv, wantCV)
	}
	// Support bounds hold exactly.
	sampler, _ := spec.Sampler()
	r := rng.New(9).Split("dist")
	for i := 0; i < 10_000; i++ {
		x := sampler(r).Seconds()
		if x < spec.Min-1e-9 || x > spec.Max+1e-9 {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, x, spec.Min, spec.Max)
		}
	}
}

// TestBoundedParetoAnalyticEdgeCases pins the alpha = 1 and alpha = 2
// special-case branches against a numeric quadrature of the density.
func TestBoundedParetoAnalyticEdgeCases(t *testing.T) {
	for _, alpha := range []float64{1, 2} {
		lo, hi := 0.5, 20.0
		// Quadrature of x^k * f(x) with f the bounded-Pareto density.
		norm := alpha * math.Pow(lo, alpha) / (1 - math.Pow(lo/hi, alpha))
		integrate := func(k float64) float64 {
			const steps = 2_000_000
			h := (hi - lo) / steps
			sum := 0.0
			for i := 0; i < steps; i++ {
				x := lo + (float64(i)+0.5)*h
				sum += math.Pow(x, k) * norm * math.Pow(x, -alpha-1) * h
			}
			return sum
		}
		wantMean := integrate(1)
		gotMean := boundedParetoMean(alpha, lo, hi)
		if math.Abs(gotMean-wantMean)/wantMean > 1e-4 {
			t.Errorf("alpha=%v: mean %.6f, quadrature %.6f", alpha, gotMean, wantMean)
		}
		wantM2 := integrate(2)
		gotM2 := boundedParetoMoment2(alpha, lo, hi)
		if math.Abs(gotM2-wantM2)/wantM2 > 1e-4 {
			t.Errorf("alpha=%v: E[X^2] %.6f, quadrature %.6f", alpha, gotM2, wantM2)
		}
	}
}

// TestSamplerNeverZero: every positive-parameter law clamps to at least
// one engine tick (the think-time truncation bug class).
func TestSamplerNeverZero(t *testing.T) {
	specs := []DistSpec{
		{Dist: "exponential", Mean: 1e-12},
		{Dist: "lognormal", Mean: 1e-12, CV: 3},
		{Dist: "pareto", Alpha: 2.5, Min: 1e-13, Max: 1e-11},
	}
	for _, spec := range specs {
		sampler, err := spec.Sampler()
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(3).Split("dist")
		for i := 0; i < 10_000; i++ {
			if d := sampler(r); d < 1 {
				t.Fatalf("%s: draw %d: %v < 1 tick", spec.Dist, i, d)
			}
		}
	}
}
