package workload

import (
	"errors"
	"math"
	"testing"
	"time"

	"dcm/internal/rng"
	"dcm/internal/sim"
	"dcm/internal/trace"
)

// fakeTarget completes every request after a fixed delay.
type fakeTarget struct {
	eng      *sim.Engine
	delay    time.Duration
	inFlight int
	peak     int
	total    int
}

func (f *fakeTarget) Inject(done func(rt time.Duration, ok bool)) {
	f.inFlight++
	f.total++
	if f.inFlight > f.peak {
		f.peak = f.inFlight
	}
	start := f.eng.Now()
	f.eng.Schedule(f.delay, func() {
		f.inFlight--
		if done != nil {
			done(f.eng.Now()-start, true)
		}
	})
}

var _ Target = (*fakeTarget)(nil)

func setup(t *testing.T, delay time.Duration) (*sim.Engine, *fakeTarget) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, &fakeTarget{eng: eng, delay: delay}
}

func TestNewClosedLoopValidation(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, time.Millisecond)
	r := rng.New(1)
	if _, err := NewClosedLoop(nil, r, tgt, ClosedLoopConfig{}); !errors.Is(err, ErrBadWorkload) {
		t.Fatalf("nil engine: %v", err)
	}
	if _, err := NewClosedLoop(eng, r, nil, ClosedLoopConfig{}); !errors.Is(err, ErrBadWorkload) {
		t.Fatalf("nil target: %v", err)
	}
	if _, err := NewClosedLoop(eng, r, tgt, ClosedLoopConfig{Users: -1}); !errors.Is(err, ErrBadWorkload) {
		t.Fatalf("negative users: %v", err)
	}
}

func TestZeroThinkConcurrencyEqualsUsers(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, 10*time.Millisecond)
	wl, err := NewClosedLoop(eng, rng.New(2).Split("wl"), tgt, ClosedLoopConfig{
		Users: 25, ThinkTime: 0, Stagger: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl.Start()
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Jmeter semantics: workload concurrency == users.
	if tgt.peak != 25 {
		t.Fatalf("peak concurrency = %d, want 25", tgt.peak)
	}
	// Throughput = users/delay = 2500/s.
	rate := float64(wl.TotalCompleted()) / 5.0
	if math.Abs(rate-2500)/2500 > 0.05 {
		t.Fatalf("rate = %v, want ~2500", rate)
	}
}

func TestThinkTimeThroughput(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, 10*time.Millisecond)
	wl, err := NewClosedLoop(eng, rng.New(3).Split("wl"), tgt, ClosedLoopConfig{
		Users: 300, ThinkTime: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl.Start()
	if err := eng.Run(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Closed-loop law: X = U/(Z+R) = 300/3.01 ≈ 99.7/s.
	rate := float64(wl.TotalCompleted()) / 60.0
	if math.Abs(rate-99.7)/99.7 > 0.05 {
		t.Fatalf("rate = %v, want ~99.7", rate)
	}
}

func TestStartIdempotent(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, time.Millisecond)
	wl, err := NewClosedLoop(eng, rng.New(4).Split("wl"), tgt, ClosedLoopConfig{Users: 5})
	if err != nil {
		t.Fatal(err)
	}
	wl.Start()
	wl.Start()
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tgt.peak > 5 {
		t.Fatalf("double Start spawned extra users: peak %d", tgt.peak)
	}
}

func TestSetUsersGrowAndShrink(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, 5*time.Millisecond)
	wl, err := NewClosedLoop(eng, rng.New(5).Split("wl"), tgt, ClosedLoopConfig{
		Users: 10, ThinkTime: 100 * time.Millisecond, Stagger: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl.Start()
	eng.Schedule(2*time.Second, func() { wl.SetUsers(40) })
	eng.Schedule(4*time.Second, func() { wl.SetUsers(3) })
	if err := eng.Run(1900 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if wl.Live() != 10 {
		t.Fatalf("live = %d, want 10", wl.Live())
	}
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if wl.Live() != 40 || wl.Users() != 40 {
		t.Fatalf("after grow: live=%d users=%d", wl.Live(), wl.Users())
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if wl.Live() != 3 {
		t.Fatalf("after shrink: live=%d, want 3", wl.Live())
	}
	// The rate should now reflect 3 users.
	tgt.total = 0
	before := wl.TotalCompleted()
	if err := eng.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	rate := float64(wl.TotalCompleted()-before) / 10.0
	want := 3.0 / 0.105
	if math.Abs(rate-want)/want > 0.25 {
		t.Fatalf("rate after shrink = %v, want ~%v", rate, want)
	}
}

func TestStopRetiresUsers(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, time.Millisecond)
	wl, err := NewClosedLoop(eng, rng.New(6).Split("wl"), tgt, ClosedLoopConfig{Users: 10})
	if err != nil {
		t.Fatal(err)
	}
	wl.Start()
	eng.Schedule(time.Second, wl.Stop)
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if wl.Live() != 0 {
		t.Fatalf("live after stop = %d", wl.Live())
	}
	total := wl.TotalCompleted()
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if wl.TotalCompleted() != total {
		t.Fatal("requests issued after Stop")
	}
	// SetUsers after Stop must be ignored.
	wl.SetUsers(5)
	if wl.Users() != 0 {
		t.Fatal("SetUsers after Stop changed population")
	}
}

func TestTakeStats(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, 10*time.Millisecond)
	wl, err := NewClosedLoop(eng, rng.New(7).Split("wl"), tgt, ClosedLoopConfig{
		Users: 5, Stagger: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wl.Start()
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	st := wl.TakeStats()
	if st.Completed == 0 || st.Issued == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.MeanRTSeconds-0.010) > 0.001 {
		t.Fatalf("mean rt = %v", st.MeanRTSeconds)
	}
	if st.Users != 5 {
		t.Fatalf("users = %d", st.Users)
	}
}

func TestTraceDrivenFollowsTrace(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, time.Millisecond)
	tr, err := trace.New("step", []trace.Point{
		{At: 0, Users: 5},
		{At: 10 * time.Second, Users: 30},
		{At: 20 * time.Second, Users: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	td, err := NewTraceDriven(eng, rng.New(8).Split("wl"), tgt, tr, 50*time.Millisecond, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	td.Start()
	if err := eng.Run(9 * time.Second); err != nil {
		t.Fatal(err)
	}
	if td.Loop().Users() != 5 {
		t.Fatalf("users at 9s = %d", td.Loop().Users())
	}
	if err := eng.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if td.Loop().Users() != 30 {
		t.Fatalf("users at 15s = %d", td.Loop().Users())
	}
	if err := eng.Run(25 * time.Second); err != nil {
		t.Fatal(err)
	}
	if td.Loop().Users() != 2 {
		t.Fatalf("users at 25s = %d", td.Loop().Users())
	}
	td.Stop()
	if err := eng.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if td.Loop().Live() != 0 {
		t.Fatalf("live after stop = %d", td.Loop().Live())
	}
	if td.Trace() != tr {
		t.Fatal("Trace accessor wrong")
	}
}

func TestTraceDrivenNilTrace(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, time.Millisecond)
	if _, err := NewTraceDriven(eng, rng.New(1), tgt, nil, 0, 0); !errors.Is(err, ErrBadWorkload) {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceDrivenStartIdempotent(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, time.Millisecond)
	tr, err := trace.New("c", []trace.Point{{At: 0, Users: 3}})
	if err != nil {
		t.Fatal(err)
	}
	td, err := NewTraceDriven(eng, rng.New(9).Split("wl"), tgt, tr, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	td.Start()
	td.Start()
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tgt.peak > 3 {
		t.Fatalf("peak = %d", tgt.peak)
	}
}

func TestOpenLoopRate(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, time.Millisecond)
	ol, err := NewOpenLoop(eng, rng.New(10).Split("wl"), tgt, 200)
	if err != nil {
		t.Fatal(err)
	}
	ol.Start()
	if err := eng.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	rate := float64(ol.TotalCompleted()) / 30.0
	if math.Abs(rate-200)/200 > 0.05 {
		t.Fatalf("rate = %v, want ~200", rate)
	}
	st := ol.TakeStats()
	if st.Completed == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOpenLoopValidationAndStop(t *testing.T) {
	t.Parallel()
	eng, tgt := setup(t, time.Millisecond)
	if _, err := NewOpenLoop(eng, rng.New(1), tgt, 0); !errors.Is(err, ErrBadWorkload) {
		t.Fatalf("zero rate: %v", err)
	}
	ol, err := NewOpenLoop(eng, rng.New(11).Split("wl"), tgt, 100)
	if err != nil {
		t.Fatal(err)
	}
	ol.Start()
	eng.Schedule(time.Second, ol.Stop)
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	after := ol.TotalCompleted()
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ol.TotalCompleted() != after {
		t.Fatal("arrivals after Stop")
	}
	// SetRate guards non-positive values.
	ol.SetRate(-5)
	ol.SetRate(50)
}

// TestDelayFromSecondsRounding pins the sample-to-delay conversion: draws
// round half-up to the nanosecond (the old conversion truncated toward
// zero) and a positive draw can never schedule at zero delay — it clamps
// to one engine tick. Zero and negative samples stay the degenerate
// zero-delay mode.
func TestDelayFromSecondsRounding(t *testing.T) {
	cases := []struct {
		sec  float64
		want time.Duration
	}{
		{0, 0},
		{-1, 0},
		{1e-12, 1},  // sub-nanosecond clamps to one tick
		{0.4e-9, 1}, // would truncate to 0
		{1.4e-9, 1}, // rounds down
		{1.6e-9, 2}, // truncation would lose this nanosecond
		{3.0, 3 * time.Second},
		{2.9999999996, 3 * time.Second}, // half-up at the ns boundary
	}
	for _, c := range cases {
		if got := delayFromSeconds(c.sec); got != c.want {
			t.Errorf("delayFromSeconds(%v) = %v, want %v", c.sec, got, c.want)
		}
	}
}

// TestExpDelayNeverZeroForPositiveMean is the think-time regression test:
// with any positive mean, scheduled think delays are at least one engine
// tick, so a user can never re-arrive in the same event timestamp as its
// completion. A non-positive mean keeps the zero-think mode and draw
// parity (no randomness consumed).
func TestExpDelayNeverZeroForPositiveMean(t *testing.T) {
	rnd := rng.New(7)
	for i := 0; i < 100000; i++ {
		if d := expDelay(rnd, time.Nanosecond); d < 1 {
			t.Fatalf("draw %d: expDelay(1ns mean) = %v < 1 tick", i, d)
		}
	}
	before := *rnd
	if d := expDelay(rnd, 0); d != 0 {
		t.Fatalf("expDelay(0) = %v, want 0", d)
	}
	if *rnd != before {
		t.Fatal("expDelay(0) consumed randomness; zero-think draw parity broken")
	}
}
