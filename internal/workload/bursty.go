package workload

import (
	"fmt"
	"time"

	"dcm/internal/metrics"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// BurstyConfig parameterizes the Markov-modulated workload of Mi et al.,
// "Injecting realistic burstiness to a traditional client-server
// benchmark" (ICAC 2009) — the work the paper cites ([23]) for why n-tier
// traffic "may vary significantly even within a short time". The whole
// population shares a two-state modulating process: in the normal state
// users think slowly; during a surge they think fast, so arrivals
// correlate across users exactly like a flash crowd. The dwell times
// control the arrival process's index of dispersion.
type BurstyConfig struct {
	// Users is the population size.
	Users int
	// NormalThink and SurgeThink are the exponential think-time means of
	// the two states; SurgeThink should be much smaller.
	NormalThink, SurgeThink time.Duration
	// NormalDwell and SurgeDwell are the exponential mean dwell times of
	// the shared modulating state.
	NormalDwell, SurgeDwell time.Duration
	// Stagger spreads initial arrivals (default 1 s).
	Stagger time.Duration
}

// BurstyLoop is the burstiness-injected closed-loop generator.
type BurstyLoop struct {
	eng    *sim.Engine
	rnd    *rng.Rand
	target Target
	cfg    BurstyConfig

	stopped   bool
	started   bool
	completed metrics.Counter
	retries   metrics.Counter
	surge     bool
	retrier   *resilience.Retrier
}

// NewBurstyLoop returns an unstarted generator.
func NewBurstyLoop(eng *sim.Engine, rnd *rng.Rand, target Target, cfg BurstyConfig) (*BurstyLoop, error) {
	if eng == nil || rnd == nil || target == nil {
		return nil, fmt.Errorf("%w: nil dependency", ErrBadWorkload)
	}
	if cfg.Users < 1 {
		return nil, fmt.Errorf("%w: users %d", ErrBadWorkload, cfg.Users)
	}
	if cfg.NormalThink <= 0 || cfg.SurgeThink <= 0 || cfg.SurgeThink > cfg.NormalThink {
		return nil, fmt.Errorf("%w: think times %v/%v", ErrBadWorkload, cfg.NormalThink, cfg.SurgeThink)
	}
	if cfg.NormalDwell <= 0 || cfg.SurgeDwell <= 0 {
		return nil, fmt.Errorf("%w: dwell times %v/%v", ErrBadWorkload, cfg.NormalDwell, cfg.SurgeDwell)
	}
	if cfg.Stagger <= 0 {
		cfg.Stagger = time.Second
	}
	return &BurstyLoop{eng: eng, rnd: rnd, target: target, cfg: cfg}, nil
}

// Start launches the population and the shared modulating process.
// Start is idempotent.
func (b *BurstyLoop) Start() {
	if b.started {
		return
	}
	b.started = true
	for i := 0; i < b.cfg.Users; i++ {
		delay := time.Duration(b.rnd.Uniform(0, float64(b.cfg.Stagger)))
		b.eng.Schedule(delay, b.cycle)
	}
	b.scheduleSwitch()
}

// scheduleSwitch flips the shared state after an exponential dwell.
func (b *BurstyLoop) scheduleSwitch() {
	mean := b.cfg.NormalDwell
	if b.surge {
		mean = b.cfg.SurgeDwell
	}
	dwell := expDelay(b.rnd, mean)
	b.eng.Schedule(dwell, func() {
		if b.stopped {
			return
		}
		b.surge = !b.surge
		b.scheduleSwitch()
	})
}

// Stop retires all users after their in-flight requests complete.
func (b *BurstyLoop) Stop() { b.stopped = true }

// Surging reports whether the shared modulating state is in a surge.
func (b *BurstyLoop) Surging() bool { return b.surge }

// TotalCompleted returns the lifetime completed-request count.
func (b *BurstyLoop) TotalCompleted() uint64 { return b.completed.Total() }

// TotalRetries returns the lifetime number of retry attempts issued.
func (b *BurstyLoop) TotalRetries() uint64 { return b.retries.Total() }

// SetRetrier attaches a client-side retrier (see ClosedLoop.SetRetrier);
// nil disables retries.
func (b *BurstyLoop) SetRetrier(r *resilience.Retrier) { b.retrier = r }

// cycle is one user's request loop; think times follow the shared state.
func (b *BurstyLoop) cycle() {
	if b.stopped {
		return
	}
	b.startRequest(1)
}

// startRequest issues one attempt of a user's request, retrying failures
// after backoff while the retrier allows.
func (b *BurstyLoop) startRequest(attempt int) {
	b.target.Inject(func(_ time.Duration, ok bool) {
		if ok {
			b.completed.Inc(1)
			if b.retrier != nil {
				b.retrier.OnSuccess()
			}
		} else if b.retrier != nil && b.retrier.Allow(attempt) {
			b.retries.Inc(1)
			b.eng.Schedule(b.retrier.Backoff(attempt), func() {
				if b.stopped {
					return
				}
				b.startRequest(attempt + 1)
			})
			return
		}
		mean := b.cfg.NormalThink
		if b.surge {
			mean = b.cfg.SurgeThink
		}
		think := expDelay(b.rnd, mean)
		b.eng.Schedule(think, b.cycle)
	})
}

// IndexOfDispersion computes the variance-to-mean ratio of per-interval
// counts — the burstiness metric Mi et al. control. A Poisson-like stream
// has IoD ≈ 1; bursty streams are far above.
func IndexOfDispersion(counts []float64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, c := range counts {
		sum += c
		sumSq += c * c
	}
	n := float64(len(counts))
	mean := sum / n
	if mean == 0 {
		return 0
	}
	variance := sumSq/n - mean*mean
	return variance / mean
}
