package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dcm/internal/rng"
	"dcm/internal/sim"
)

// Workload files are JSON renderings of WorkloadSpec:
//
//	{
//	  "name": "openloop-2class",
//	  "kind": "open",
//	  "arrivals": {"curve": "flashcrowd", "rate": 2000,
//	               "peakRate": 12000, "atSeconds": 120,
//	               "rampSeconds": 30, "holdSeconds": 60},
//	  "classes": [
//	    {"name": "premium", "weight": 0.2, "priority": 1, "sloSeconds": 1},
//	    {"name": "basic", "weight": 0.8}
//	  ]
//	}
//
// Decoding is strict — an unknown field anywhere is an error, matching the
// policy and chaos-scenario conventions: a typoed knob ("paekRate") must
// fail loudly, not silently leave a default in force.

// Workload kinds accepted by WorkloadSpec.Kind.
const (
	KindClosed = "closed"
	KindOpen   = "open"
	KindBursty = "bursty"
)

// Rate-curve kinds accepted by RateSpec.Curve.
const (
	CurveConstant   = "constant"
	CurveDiurnal    = "diurnal"
	CurveFlashCrowd = "flashcrowd"
)

// WorkloadSpec is the declarative wire form of one workload: which
// generator to run, its delay laws, its arrival curve and its traffic-class
// mix. Durations are in seconds throughout (specs are written by hand).
type WorkloadSpec struct {
	// Name labels the workload in reports.
	Name string `json:"name"`
	// Kind selects the generator: "closed", "open" or "bursty".
	Kind string `json:"kind"`

	// Users is the closed-loop population (closed kind only).
	Users int `json:"users,omitempty"`
	// Think is the closed-loop think-time law. Omitted means zero think
	// time (the Jmeter training mode).
	Think *DistSpec `json:"think,omitempty"`
	// StaggerSeconds spreads initial arrivals (closed/bursty kinds;
	// 0 = the generator default).
	StaggerSeconds float64 `json:"staggerSeconds,omitempty"`

	// Arrivals is the open-loop rate curve (open kind only).
	Arrivals *RateSpec `json:"arrivals,omitempty"`

	// Bursty parameterizes the Markov-modulated generator (bursty kind
	// only).
	Bursty *BurstySpec `json:"bursty,omitempty"`

	// Classes is the traffic-class mix (closed and open kinds). Empty
	// means single-class traffic through the plain Inject path.
	Classes []ClassSpec `json:"classes,omitempty"`
}

// RateSpec is an open-loop arrival-rate curve. Rate and PeakRate are in
// requests per second.
type RateSpec struct {
	// Curve is "constant", "diurnal" or "flashcrowd".
	Curve string `json:"curve"`
	// Rate is the base arrival rate (the constant rate, the diurnal
	// midline, or the flash crowd's pre/post-spike baseline).
	Rate float64 `json:"rate"`
	// Amplitude is the diurnal curve's relative swing in (0, 1]: the rate
	// oscillates between Rate*(1-Amplitude) and Rate*(1+Amplitude).
	Amplitude float64 `json:"amplitude,omitempty"`
	// PeriodSeconds is the diurnal period.
	PeriodSeconds float64 `json:"periodSeconds,omitempty"`
	// PeakRate is the flash crowd's plateau rate.
	PeakRate float64 `json:"peakRate,omitempty"`
	// AtSeconds is when the flash crowd's up-ramp starts.
	AtSeconds float64 `json:"atSeconds,omitempty"`
	// RampSeconds is the linear ramp duration (both up and down).
	RampSeconds float64 `json:"rampSeconds,omitempty"`
	// HoldSeconds is how long the flash crowd holds at PeakRate.
	HoldSeconds float64 `json:"holdSeconds,omitempty"`
}

// BurstySpec mirrors BurstyConfig in seconds.
type BurstySpec struct {
	Users              int     `json:"users"`
	NormalThinkSeconds float64 `json:"normalThinkSeconds"`
	SurgeThinkSeconds  float64 `json:"surgeThinkSeconds"`
	NormalDwellSeconds float64 `json:"normalDwellSeconds"`
	SurgeDwellSeconds  float64 `json:"surgeDwellSeconds"`
}

// ClassSpec is one traffic class of the mix: its share of the request
// stream plus the treatment and demand knobs the application layer maps
// onto its own per-class config. Class order in the spec defines the class
// indices the generator passes to InjectClass.
type ClassSpec struct {
	// Name identifies the class.
	Name string `json:"name"`
	// Weight is the class's share of arrivals (normalized over the mix).
	Weight float64 `json:"weight"`
	// Priority > 0 marks the class critical (shed-exempt under overload).
	Priority int `json:"priority,omitempty"`
	// SLOSeconds is the class goodput threshold (0 = the global SLA).
	SLOSeconds float64 `json:"sloSeconds,omitempty"`
	// AppDemand, Queries and QueryDemand shape the class's work profile
	// (0 = application defaults).
	AppDemand   float64 `json:"appDemand,omitempty"`
	Queries     int     `json:"queries,omitempty"`
	QueryDemand float64 `json:"queryDemand,omitempty"`
	// Think overrides the workload think-time law for this class
	// (closed kind only).
	Think *DistSpec `json:"think,omitempty"`
}

// SLO returns the class SLO as a duration.
func (c ClassSpec) SLO() time.Duration { return delayFromSeconds(c.SLOSeconds) }

// ParseSpec decodes and validates a JSON workload spec.
func ParseSpec(data []byte) (WorkloadSpec, error) {
	var s WorkloadSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return WorkloadSpec{}, fmt.Errorf("workload: parse spec: %w", err)
	}
	// Trailing garbage after the spec object means the file is not what
	// the author thinks it is.
	if dec.More() {
		return WorkloadSpec{}, fmt.Errorf("workload: parse spec: unexpected data after spec object")
	}
	if err := s.Validate(); err != nil {
		return WorkloadSpec{}, err
	}
	return s, nil
}

// LoadSpec reads and validates a JSON workload-spec file.
func LoadSpec(path string) (WorkloadSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return WorkloadSpec{}, fmt.Errorf("workload: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return WorkloadSpec{}, fmt.Errorf("workload: %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the spec. Error texts are pinned by tests.
func (s WorkloadSpec) Validate() error {
	switch s.Kind {
	case KindClosed:
		if s.Users <= 0 {
			return fmt.Errorf("workload: closed kind: users must be > 0 (got %d)", s.Users)
		}
		if s.Arrivals != nil || s.Bursty != nil {
			return fmt.Errorf("workload: closed kind: arrivals/bursty do not apply")
		}
		if s.Think != nil {
			if err := s.Think.Validate(); err != nil {
				return err
			}
		}
	case KindOpen:
		if s.Arrivals == nil {
			return fmt.Errorf("workload: open kind: arrivals is required")
		}
		if s.Users != 0 || s.Think != nil || s.Bursty != nil {
			return fmt.Errorf("workload: open kind: users/think/bursty do not apply")
		}
		if err := s.Arrivals.Validate(); err != nil {
			return err
		}
	case KindBursty:
		if s.Bursty == nil {
			return fmt.Errorf("workload: bursty kind: bursty is required")
		}
		if s.Users != 0 || s.Think != nil || s.Arrivals != nil {
			return fmt.Errorf("workload: bursty kind: users/think/arrivals do not apply")
		}
		if len(s.Classes) > 0 {
			return fmt.Errorf("workload: bursty kind: classes are not supported")
		}
		if err := s.Bursty.Validate(); err != nil {
			return err
		}
	case "":
		return fmt.Errorf("workload: kind is required")
	default:
		return fmt.Errorf("workload: unknown kind %q", s.Kind)
	}
	if s.StaggerSeconds < 0 {
		return fmt.Errorf("workload: staggerSeconds must be >= 0 (got %v)", s.StaggerSeconds)
	}
	if err := validateClassSpecs(s.Classes, s.Kind); err != nil {
		return err
	}
	return nil
}

// Validate checks the rate curve. Error texts are pinned by tests.
func (r RateSpec) Validate() error {
	if r.Rate <= 0 {
		return fmt.Errorf("workload: arrivals: rate must be > 0 (got %v)", r.Rate)
	}
	switch r.Curve {
	case CurveConstant:
		if r.Amplitude != 0 || r.PeriodSeconds != 0 || r.PeakRate != 0 ||
			r.AtSeconds != 0 || r.RampSeconds != 0 || r.HoldSeconds != 0 {
			return fmt.Errorf("workload: arrivals: constant curve takes only rate")
		}
	case CurveDiurnal:
		if r.Amplitude <= 0 || r.Amplitude > 1 {
			return fmt.Errorf("workload: arrivals: diurnal amplitude must be in (0, 1] (got %v)", r.Amplitude)
		}
		if r.PeriodSeconds <= 0 {
			return fmt.Errorf("workload: arrivals: diurnal period must be > 0 (got %v)", r.PeriodSeconds)
		}
		if r.PeakRate != 0 || r.AtSeconds != 0 || r.RampSeconds != 0 || r.HoldSeconds != 0 {
			return fmt.Errorf("workload: arrivals: diurnal curve takes rate/amplitude/periodSeconds")
		}
	case CurveFlashCrowd:
		if r.PeakRate <= r.Rate {
			return fmt.Errorf("workload: arrivals: flashcrowd peakRate must exceed rate (got %v <= %v)", r.PeakRate, r.Rate)
		}
		if r.AtSeconds < 0 || r.RampSeconds <= 0 || r.HoldSeconds < 0 {
			return fmt.Errorf("workload: arrivals: flashcrowd needs atSeconds >= 0, rampSeconds > 0, holdSeconds >= 0")
		}
		if r.Amplitude != 0 || r.PeriodSeconds != 0 {
			return fmt.Errorf("workload: arrivals: flashcrowd curve takes rate/peakRate/atSeconds/rampSeconds/holdSeconds")
		}
	case "":
		return fmt.Errorf("workload: arrivals: curve is required")
	default:
		return fmt.Errorf("workload: arrivals: unknown curve %q", r.Curve)
	}
	return nil
}

// BuildCurve builds the rate curve the spec describes.
func (r RateSpec) BuildCurve() (RateCurve, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	switch r.Curve {
	case CurveDiurnal:
		return &DiurnalRate{
			Base:      r.Rate,
			Amplitude: r.Amplitude,
			Period:    delayFromSeconds(r.PeriodSeconds),
		}, nil
	case CurveFlashCrowd:
		return &FlashCrowdRate{
			Base: r.Rate,
			Peak: r.PeakRate,
			At:   delayFromSeconds(r.AtSeconds),
			Ramp: delayFromSeconds(r.RampSeconds),
			Hold: delayFromSeconds(r.HoldSeconds),
		}, nil
	default:
		return ConstantRate(r.Rate), nil
	}
}

// Validate checks the bursty parameters. Error texts are pinned by tests.
func (b BurstySpec) Validate() error {
	if b.Users <= 0 {
		return fmt.Errorf("workload: bursty: users must be > 0 (got %d)", b.Users)
	}
	if b.NormalThinkSeconds <= 0 || b.SurgeThinkSeconds <= 0 ||
		b.SurgeThinkSeconds > b.NormalThinkSeconds {
		return fmt.Errorf("workload: bursty: need 0 < surgeThinkSeconds <= normalThinkSeconds (got %v, %v)",
			b.SurgeThinkSeconds, b.NormalThinkSeconds)
	}
	if b.NormalDwellSeconds <= 0 || b.SurgeDwellSeconds <= 0 {
		return fmt.Errorf("workload: bursty: dwell times must be > 0 (got %v, %v)",
			b.NormalDwellSeconds, b.SurgeDwellSeconds)
	}
	return nil
}

// Config converts the spec to a BurstyConfig.
func (b BurstySpec) Config(stagger float64) BurstyConfig {
	return BurstyConfig{
		Users:       b.Users,
		NormalThink: delayFromSeconds(b.NormalThinkSeconds),
		SurgeThink:  delayFromSeconds(b.SurgeThinkSeconds),
		NormalDwell: delayFromSeconds(b.NormalDwellSeconds),
		SurgeDwell:  delayFromSeconds(b.SurgeDwellSeconds),
		Stagger:     delayFromSeconds(stagger),
	}
}

// validateClassSpecs checks the class mix. Error texts are pinned by tests.
func validateClassSpecs(classes []ClassSpec, kind string) error {
	seen := make(map[string]bool, len(classes))
	for i, c := range classes {
		switch {
		case c.Name == "":
			return fmt.Errorf("workload: class %d has no name", i)
		case seen[c.Name]:
			return fmt.Errorf("workload: duplicate class %q", c.Name)
		case c.Weight <= 0:
			return fmt.Errorf("workload: class %q: weight must be > 0 (got %v)", c.Name, c.Weight)
		case c.Priority < 0:
			return fmt.Errorf("workload: class %q: priority must be >= 0 (got %d)", c.Name, c.Priority)
		case c.SLOSeconds < 0:
			return fmt.Errorf("workload: class %q: sloSeconds must be >= 0 (got %v)", c.Name, c.SLOSeconds)
		case c.AppDemand < 0 || c.Queries < 0 || c.QueryDemand < 0:
			return fmt.Errorf("workload: class %q: negative demand", c.Name)
		}
		seen[c.Name] = true
		if c.Think != nil {
			if kind != KindClosed {
				return fmt.Errorf("workload: class %q: per-class think applies only to closed kind", c.Name)
			}
			if err := c.Think.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Generator is a runnable workload (closed, open or bursty).
type Generator interface {
	Start()
	Stop()
}

// BuildClasses compiles the spec's class mix into generator classes
// (nil when the spec has no classes).
func (s WorkloadSpec) BuildClasses() ([]Class, error) {
	if len(s.Classes) == 0 {
		return nil, nil
	}
	out := make([]Class, len(s.Classes))
	for i, c := range s.Classes {
		out[i] = Class{Name: c.Name, Weight: c.Weight, Priority: c.Priority}
		if c.Think != nil {
			sampler, err := c.Think.Sampler()
			if err != nil {
				return nil, err
			}
			out[i].Think = sampler
		}
	}
	return out, nil
}

// Build constructs the generator the spec describes against the given
// target. Specs with classes need a target that implements ClassTarget.
func (s WorkloadSpec) Build(eng *sim.Engine, rnd *rng.Rand, target Target) (Generator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	classes, err := s.BuildClasses()
	if err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindClosed:
		cfg := ClosedLoopConfig{
			Users:   s.Users,
			Stagger: delayFromSeconds(s.StaggerSeconds),
		}
		loop, err := NewClosedLoop(eng, rnd, target, cfg)
		if err != nil {
			return nil, err
		}
		if s.Think != nil {
			sampler, err := s.Think.Sampler()
			if err != nil {
				return nil, err
			}
			loop.SetThinkSampler(sampler)
		}
		if len(classes) > 0 {
			if err := loop.SetClasses(classes); err != nil {
				return nil, err
			}
		}
		return loop, nil
	case KindOpen:
		curve, err := s.Arrivals.BuildCurve()
		if err != nil {
			return nil, err
		}
		gen, err := NewOpenLoopGen(eng, rnd, target, curve)
		if err != nil {
			return nil, err
		}
		if len(classes) > 0 {
			if err := gen.SetClasses(classes); err != nil {
				return nil, err
			}
		}
		return gen, nil
	case KindBursty:
		return NewBurstyLoop(eng, rnd, target, s.Bursty.Config(s.StaggerSeconds))
	}
	return nil, fmt.Errorf("workload: unknown kind %q", s.Kind)
}
