package degrade

import (
	"errors"
	"testing"
	"time"

	"dcm/internal/policy"
	"dcm/internal/sim"
)

// harness drives a supervisor from mutable fake counters: the engine
// ticks the supervisor while a second ticker replays a per-second script
// of counter increments.
type harness struct {
	eng *sim.Engine
	sup *Supervisor

	injected, good, completed, retries, sheds uint64
	qSum                                      float64
	qCount                                    uint64

	shedCalls, admCalls, retryCalls []float64
	notes                           []string
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{eng: sim.NewEngine()}
	probes := Probes{
		Injected:   func() uint64 { return h.injected },
		Good:       func() uint64 { return h.good },
		Completed:  func() uint64 { return h.completed },
		Retries:    func() uint64 { return h.retries },
		Sheds:      func() uint64 { return h.sheds },
		QueueDepth: func() (float64, uint64) { return h.qSum, h.qCount },
	}
	actions := Actions{
		Shed:       func(r float64) { h.shedCalls = append(h.shedCalls, r) },
		Admission:  func(s float64) { h.admCalls = append(h.admCalls, s) },
		RetryScale: func(s float64) { h.retryCalls = append(h.retryCalls, s) },
		Note: func(_ time.Duration, entered bool, reason string) {
			if entered {
				h.notes = append(h.notes, "enter:"+reason)
			} else {
				h.notes = append(h.notes, "exit:"+reason)
			}
		},
	}
	sup, err := New(h.eng, cfg, probes, actions)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.sup = sup
	return h
}

// run starts the supervisor and replays script (one call per period,
// scheduled just before each detector tick) for len(script) periods.
func (h *harness) run(cfg Config, script []func(*harness)) {
	for i, fn := range script {
		fn := fn
		at := time.Duration(i+1)*cfg.Period - time.Millisecond
		h.eng.Schedule(at, func() { fn(h) })
	}
	h.sup.CaptureTimeline(time.Duration(len(script)) * cfg.Period)
	h.sup.Start()
	h.eng.Run(time.Duration(len(script)) * cfg.Period)
	h.sup.Stop()
}

// healthy advances counters in a shape no detector flags: plenty of
// goodput, no retries, flat queue.
func healthy(h *harness) {
	h.injected += 100
	h.good += 95
	h.completed += 100
	h.qSum += 100 * 5
	h.qCount += 100
}

// collapsed offers load with almost no goodput.
func collapsed(h *harness) {
	h.injected += 100
	h.good += 10
	h.completed += 20
	h.qSum += 100 * 5
	h.qCount += 100
}

func baseConfig() Config {
	return Config{
		Period:              time.Second,
		CollapseRatio:       0.5,
		MinOfferedPerSecond: 20,
		RetryAmplification:  1.5,
		QueueGradient:       2,
		EnterTicks:          2,
		ExitTicks:           2,
		MinDwell:            0,
		ShedRatio:           0.4,
		RetryBudgetScale:    0.25,
		AdmissionScale:      0.5,
	}
}

func script(n int, fn func(*harness)) []func(*harness) {
	out := make([]func(*harness), n)
	for i := range out {
		out[i] = fn
	}
	return out
}

func TestCollapseDetectorEntersAndExits(t *testing.T) {
	cfg := baseConfig()
	h := newHarness(t, cfg)
	sc := append(script(3, healthy), script(4, collapsed)...)
	sc = append(sc, script(5, healthy)...)
	h.run(cfg, sc)

	rep := h.sup.Report()
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %+v, want exactly 1", rep.Episodes)
	}
	ep := rep.Episodes[0]
	if ep.Reason != "goodput-collapse" {
		t.Errorf("reason = %q, want goodput-collapse", ep.Reason)
	}
	// Unhealthy from tick 4 (first collapsed tick), enter on the 2nd
	// consecutive at t=5s; healthy from tick 8, exit on the 2nd at t=9s.
	if ep.EnterAt != 5*time.Second || ep.ExitAt != 9*time.Second {
		t.Errorf("episode = enter %v exit %v, want 5s/9s", ep.EnterAt, ep.ExitAt)
	}
	wantShed := []float64{0.4, 0}
	if len(h.shedCalls) != 2 || h.shedCalls[0] != wantShed[0] || h.shedCalls[1] != wantShed[1] {
		t.Errorf("shed calls = %v, want %v", h.shedCalls, wantShed)
	}
	wantAdm := []float64{0.5, 1}
	if len(h.admCalls) != 2 || h.admCalls[0] != wantAdm[0] || h.admCalls[1] != wantAdm[1] {
		t.Errorf("admission calls = %v, want %v", h.admCalls, wantAdm)
	}
	wantRetry := []float64{0.25, 1}
	if len(h.retryCalls) != 2 || h.retryCalls[0] != wantRetry[0] || h.retryCalls[1] != wantRetry[1] {
		t.Errorf("retry-scale calls = %v, want %v", h.retryCalls, wantRetry)
	}
	if len(h.notes) != 2 || h.notes[0] != "enter:goodput-collapse" || h.notes[1] != "exit:recovered" {
		t.Errorf("notes = %v", h.notes)
	}
	if rep.Ticks != 12 || len(rep.Timeline) != 12 {
		t.Errorf("ticks = %d timeline = %d, want 12/12", rep.Ticks, len(rep.Timeline))
	}
}

func TestRetryAmplificationDetector(t *testing.T) {
	cfg := baseConfig()
	cfg.CollapseRatio = 0 // isolate the retry detector
	cfg.QueueGradient = 0
	h := newHarness(t, cfg)
	stormy := func(h *harness) {
		h.injected += 100
		h.good += 90
		h.completed += 100
		h.retries += 200 // 2 retries per completion > 1.5
	}
	h.run(cfg, append(script(2, healthy), script(3, stormy)...))
	rep := h.sup.Report()
	if len(rep.Episodes) != 1 || rep.Episodes[0].Reason != "retry-amplification" {
		t.Fatalf("episodes = %+v, want one retry-amplification entry", rep.Episodes)
	}
}

func TestQueueGradientDetector(t *testing.T) {
	cfg := baseConfig()
	cfg.CollapseRatio = 0
	cfg.RetryAmplification = 0
	cfg.WindowTicks = 3
	cfg.EnterTicks = 1
	h := newHarness(t, cfg)
	depth := 5.0
	ramp := func(h *harness) {
		h.injected += 100
		h.good += 95
		h.completed += 100
		depth *= 2 // queue doubling every tick beats the 2x window gradient
		h.qSum += 100 * depth
		h.qCount += 100
	}
	h.run(cfg, append(script(4, healthy), script(4, ramp)...))
	rep := h.sup.Report()
	if len(rep.Episodes) == 0 || rep.Episodes[0].Reason != "queue-gradient" {
		t.Fatalf("episodes = %+v, want a queue-gradient entry", rep.Episodes)
	}
}

// TestWarmupSuppressesStartupTransient pins the monitor-side fix for the
// closed-loop ramp: the same collapsed ticks that enter brownout after
// warmup must not enter during it.
func TestWarmupSuppressesStartupTransient(t *testing.T) {
	cfg := baseConfig()
	cfg.Warmup = 5 * time.Second
	h := newHarness(t, cfg)
	h.run(cfg, append(script(4, collapsed), script(4, healthy)...))
	rep := h.sup.Report()
	if len(rep.Episodes) != 0 {
		t.Fatalf("episodes = %+v, want none (collapse entirely inside warmup)", rep.Episodes)
	}
	if rep.UnhealthyTicks != 0 {
		t.Errorf("unhealthy ticks = %d, want 0 during warmup", rep.UnhealthyTicks)
	}
	h2 := newHarness(t, cfg)
	h2.run(cfg, append(script(6, healthy), script(4, collapsed)...))
	if rep2 := h2.sup.Report(); len(rep2.Episodes) != 1 {
		t.Fatalf("episodes after warmup = %+v, want 1", rep2.Episodes)
	}
}

// TestShedCorrectedOfferedLoad pins the anti-latch rule: traffic the
// brownout sheds itself must not count as collapse evidence, otherwise
// the controller's own action keeps it locked in brownout forever.
func TestShedCorrectedOfferedLoad(t *testing.T) {
	cfg := baseConfig()
	cfg.RetryAmplification = 0
	cfg.QueueGradient = 0
	cfg.ExitTicks = 1
	h := newHarness(t, cfg)
	// While browned out, half the offered load is shed by the controller
	// itself and the admitted half completes well: healthy once corrected.
	shedding := func(h *harness) {
		h.injected += 100
		h.sheds += 50
		h.good += 45
		h.completed += 50
	}
	sc := append(script(2, healthy), script(3, collapsed)...)
	sc = append(sc, script(4, shedding)...)
	h.run(cfg, sc)
	rep := h.sup.Report()
	if len(rep.Episodes) != 1 {
		t.Fatalf("episodes = %+v, want 1", rep.Episodes)
	}
	if rep.Episodes[0].ExitAt == 0 {
		t.Fatalf("episode never exited: shed traffic still counted as collapse evidence")
	}
}

// TestHysteresisNeverOscillatesFasterThanDwell is the adversarial
// property test: across a family of square-wave health signals (every
// combination of unhealthy/healthy half-period from 1..6 ticks, including
// the worst-case alternating wave), every exit must come at least
// MinDwell after its entry, and consecutive entries at least MinDwell
// plus EnterTicks periods apart — the healthy run can satisfy ExitTicks
// while the dwell clock is still running, but re-entering always takes
// EnterTicks fresh unhealthy ticks after the exit.
func TestHysteresisNeverOscillatesFasterThanDwell(t *testing.T) {
	const period = time.Second
	for enter := 1; enter <= 3; enter++ {
		for exit := 1; exit <= 3; exit++ {
			for dwell := 0; dwell <= 12; dwell += 4 {
				for up := 1; up <= 6; up++ {
					for down := 1; down <= 6; down++ {
						h := hysteresis{
							EnterTicks: enter,
							ExitTicks:  exit,
							MinDwell:   time.Duration(dwell) * period,
						}
						var enters, exits []time.Duration
						for tick := 1; tick <= 400; tick++ {
							now := time.Duration(tick) * period
							phase := (tick - 1) % (up + down)
							unhealthy := phase < up
							switch h.step(now, unhealthy) {
							case transitionEnter:
								enters = append(enters, now)
							case transitionExit:
								exits = append(exits, now)
							}
						}
						if len(exits) > len(enters) {
							t.Fatalf("enter=%d exit=%d dwell=%d wave=%d/%d: more exits than enters",
								enter, exit, dwell, up, down)
						}
						for i, ex := range exits {
							if got := ex - enters[i]; got < h.MinDwell {
								t.Fatalf("enter=%d exit=%d dwell=%d wave=%d/%d: episode %d dwelled %v < %v",
									enter, exit, dwell, up, down, i, got, h.MinDwell)
							}
						}
						minGap := h.MinDwell + time.Duration(enter)*period
						for i := 1; i < len(enters); i++ {
							if got := enters[i] - enters[i-1]; got < minGap {
								t.Fatalf("enter=%d exit=%d dwell=%d wave=%d/%d: re-entered after %v < %v",
									enter, exit, dwell, up, down, got, minGap)
							}
						}
					}
				}
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no detector", func(c *Config) {
			c.CollapseRatio, c.RetryAmplification, c.QueueGradient = 0, 0, 0
		}},
		{"zero period", func(c *Config) { c.Period = 0 }},
		{"negative warmup", func(c *Config) { c.Warmup = -time.Second }},
		{"zero enter ticks", func(c *Config) { c.EnterTicks = 0 }},
		{"zero exit ticks", func(c *Config) { c.ExitTicks = 0 }},
		{"negative dwell", func(c *Config) { c.MinDwell = -time.Second }},
		{"shed ratio above 1", func(c *Config) { c.ShedRatio = 1.5 }},
		{"retry scale above 1", func(c *Config) { c.RetryBudgetScale = 2 }},
		{"admission scale negative", func(c *Config) { c.AdmissionScale = -0.1 }},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		tc.mutate(&cfg)
		if _, err := New(sim.NewEngine(), cfg, Probes{}, Actions{}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", tc.name, err)
		}
	}
	if _, err := New(nil, baseConfig(), Probes{}, Actions{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil engine: err = %v, want ErrBadConfig", err)
	}
}

func TestFromRulesMapsEveryKnob(t *testing.T) {
	r := policy.DegradeRules{
		PeriodSeconds:       2,
		WarmupSeconds:       7,
		CollapseRatio:       0.55,
		MinOfferedPerSecond: 30,
		RetryAmplification:  1.25,
		QueueGradient:       3,
		EnterTicks:          4,
		ExitTicks:           6,
		MinDwellSeconds:     25,
		ShedRatio:           0.35,
		RetryBudgetScale:    0.2,
		AdmissionScale:      0.4,
	}
	got := FromRules(r)
	want := Config{
		Period:              2 * time.Second,
		Warmup:              7 * time.Second,
		CollapseRatio:       0.55,
		MinOfferedPerSecond: 30,
		RetryAmplification:  1.25,
		QueueGradient:       3,
		EnterTicks:          4,
		ExitTicks:           6,
		MinDwell:            25 * time.Second,
		ShedRatio:           0.35,
		RetryBudgetScale:    0.2,
		AdmissionScale:      0.4,
	}
	if got != want {
		t.Errorf("FromRules = %+v, want %+v", got, want)
	}
	if !policy.Default().Degrade.Enabled() {
		t.Errorf("default degrade rules must arm at least one detector")
	}
}

// BenchmarkDegradeTick pins the steady-state detector cost: with the
// timeline disabled (the production default) a tick must not allocate.
func BenchmarkDegradeTick(b *testing.B) {
	eng := sim.NewEngine()
	var injected, good, completed, retries, sheds uint64
	var qSum float64
	var qCount uint64
	probes := Probes{
		Injected:   func() uint64 { return injected },
		Good:       func() uint64 { return good },
		Completed:  func() uint64 { return completed },
		Retries:    func() uint64 { return retries },
		Sheds:      func() uint64 { return sheds },
		QueueDepth: func() (float64, uint64) { return qSum, qCount },
	}
	cfg := baseConfig()
	sup, err := New(eng, cfg, probes, Actions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		injected += 100
		good += 95
		completed += 100
		retries += 5
		qSum += 500
		qCount += 100
		sup.tick()
	}
	if sup.Report().Ticks != uint64(b.N) {
		b.Fatal("tick count mismatch")
	}
}
