package degrade

import (
	"time"

	"dcm/internal/controller"
	"dcm/internal/ntier"
	"dcm/internal/resilience"
	"dcm/internal/sim"
)

// ForApp wires a supervisor to a running application: probes read the
// app's lifetime counters and the app tier's queue-depth histograms,
// actions drive the brownout shed, admission scaling and (when a retrier
// is given) retry-budget tightening, and every transition lands in the
// audit log (when one is given) under the brownout reason codes. retrier
// and audit may be nil.
func ForApp(eng *sim.Engine, app *ntier.App, ret *resilience.Retrier,
	audit *controller.AuditLog, cfg Config) (*Supervisor, error) {
	probes := Probes{
		Injected:  app.TotalInjected,
		Good:      app.TotalGood,
		Completed: app.TotalCompletions,
		Sheds:     app.BrownoutSheds,
		QueueDepth: func() (float64, uint64) {
			return app.TierQueueDepthTotals(ntier.TierApp)
		},
	}
	if ret != nil {
		probes.Retries = func() uint64 { return ret.Stats().Retries }
	}
	actions := Actions{
		Shed:      app.SetBrownoutShed,
		Admission: app.ScaleAdmission,
	}
	if ret != nil {
		actions.RetryScale = ret.SetBudgetScale
	}
	if audit != nil {
		actions.Note = func(at time.Duration, entered bool, reason string) {
			code := controller.CodeBrownoutExit
			if entered {
				code = controller.CodeBrownoutEnter
			}
			audit.Note(at, "degrade", []controller.Hold{{Code: code, Detail: reason}})
		}
	}
	return New(eng, cfg, probes, actions)
}
