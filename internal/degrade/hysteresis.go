package degrade

import "time"

// The hysteresis band is what keeps brownout from flapping: entering
// takes EnterTicks consecutive unhealthy ticks, exiting takes ExitTicks
// consecutive healthy ticks AND at least MinDwell since entry. The
// asymmetry (fast-ish in, slow out) mirrors the paper's "quick start,
// slow turn off" scaling thresholds; the dwell floor guarantees a bound
// on oscillation frequency no adversarial load pattern can beat (pinned
// by the property test).

// transition is the outcome of one hysteresis step.
type transition int

const (
	transitionNone transition = iota
	transitionEnter
	transitionExit
)

// hysteresis is the pure enter/exit state machine — no clocks, no side
// effects; the caller feeds it (now, unhealthy) once per tick.
type hysteresis struct {
	EnterTicks int
	ExitTicks  int
	MinDwell   time.Duration

	active       bool
	unhealthyRun int
	healthyRun   int
	enteredAt    time.Duration
}

// step advances the machine one tick and reports any transition.
func (h *hysteresis) step(now time.Duration, unhealthy bool) transition {
	if unhealthy {
		h.unhealthyRun++
		h.healthyRun = 0
	} else {
		h.healthyRun++
		h.unhealthyRun = 0
	}
	if !h.active {
		if h.unhealthyRun >= h.EnterTicks {
			h.active = true
			h.enteredAt = now
			h.healthyRun = 0
			return transitionEnter
		}
		return transitionNone
	}
	if h.healthyRun >= h.ExitTicks && now-h.enteredAt >= h.MinDwell {
		h.active = false
		h.unhealthyRun = 0
		return transitionExit
	}
	return transitionNone
}
