// Package degrade is the self-healing overload layer: online detectors
// that recognize metastable collapse from the application's own lifetime
// counters, and a brownout controller that sheds best-effort load,
// tightens retry budgets and lowers admission caps until the system
// recovers — then restores everything through hysteresis bands so
// recovery never flaps.
//
// The detectors watch three signatures of the retry-storm failure mode
// (PR 4's experiment, §II of the paper's motivation):
//
//   - goodput collapse: good completions per offered request falling
//     under CollapseRatio while offered load stays non-trivial — work is
//     arriving but almost none of it completes within the SLA;
//   - queue-depth gradient: the mean observed queue depth growing by more
//     than QueueGradient across the detector window — the backlog
//     build-up that precedes the metastable regime;
//   - retry amplification: retry attempts per completion exceeding
//     RetryAmplification — load multiplying itself faster than it drains.
//
// Everything is deterministic and rng-free: the supervisor differences
// lifetime counters on a fixed tick, the brownout shed uses an
// error-diffusion accumulator inside internal/ntier, and a supervisor
// that is never constructed (or never fires) leaves a run byte-identical.
// The package is a leaf: it sees the application only through the Probes
// and Actions function bundles, so it unit-tests and benchmarks without
// an App and creates no import cycles.
package degrade

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/policy"
	"dcm/internal/sim"
)

// ErrBadConfig is returned for invalid supervisor construction.
var ErrBadConfig = errors.New("degrade: invalid config")

// Config parameterizes the supervisor. Build one from policy rules with
// FromRules; the zero value is invalid (no detectors armed).
type Config struct {
	// Period is the detector tick interval.
	Period time.Duration
	// Warmup suppresses detection (but not observation) for the run's
	// first Warmup of simulated time, so a closed-loop population ramping
	// up — a burst of simultaneous first requests — is not mistaken for
	// collapse. Timeline points are still recorded and the queue-gradient
	// baseline still primes during warmup.
	Warmup time.Duration
	// CollapseRatio, MinOfferedPerSecond, RetryAmplification and
	// QueueGradient arm the three detectors (zero disarms each; see the
	// package comment for their meaning).
	CollapseRatio       float64
	MinOfferedPerSecond float64
	RetryAmplification  float64
	QueueGradient       float64
	// EnterTicks consecutive unhealthy ticks enter brownout; ExitTicks
	// consecutive healthy ticks and at least MinDwell since entry exit it.
	EnterTicks int
	ExitTicks  int
	MinDwell   time.Duration
	// ShedRatio, RetryBudgetScale and AdmissionScale are the brownout
	// actions applied on entry and restored on exit.
	ShedRatio        float64
	RetryBudgetScale float64
	AdmissionScale   float64
	// WindowTicks is the queue-gradient comparison window (default 5).
	WindowTicks int
}

// FromRules converts validated policy rules into a supervisor config.
func FromRules(r policy.DegradeRules) Config {
	return Config{
		Period:              time.Duration(r.PeriodSeconds * float64(time.Second)),
		Warmup:              time.Duration(r.WarmupSeconds * float64(time.Second)),
		CollapseRatio:       r.CollapseRatio,
		MinOfferedPerSecond: r.MinOfferedPerSecond,
		RetryAmplification:  r.RetryAmplification,
		QueueGradient:       r.QueueGradient,
		EnterTicks:          r.EnterTicks,
		ExitTicks:           r.ExitTicks,
		MinDwell:            time.Duration(r.MinDwellSeconds * float64(time.Second)),
		ShedRatio:           r.ShedRatio,
		RetryBudgetScale:    r.RetryBudgetScale,
		AdmissionScale:      r.AdmissionScale,
	}
}

// validate rejects configs that cannot run and fills defaults.
func (c *Config) validate() error {
	if c.CollapseRatio <= 0 && c.RetryAmplification <= 0 && c.QueueGradient <= 0 {
		return fmt.Errorf("%w: no detector armed", ErrBadConfig)
	}
	if c.Period <= 0 {
		return fmt.Errorf("%w: period %v must be > 0", ErrBadConfig, c.Period)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("%w: warmup %v negative", ErrBadConfig, c.Warmup)
	}
	if c.EnterTicks < 1 || c.ExitTicks < 1 {
		return fmt.Errorf("%w: hysteresis ticks %d/%d must be >= 1",
			ErrBadConfig, c.EnterTicks, c.ExitTicks)
	}
	if c.MinDwell < 0 {
		return fmt.Errorf("%w: min dwell %v negative", ErrBadConfig, c.MinDwell)
	}
	if c.ShedRatio < 0 || c.ShedRatio > 1 {
		return fmt.Errorf("%w: shed ratio %v outside [0, 1]", ErrBadConfig, c.ShedRatio)
	}
	if c.RetryBudgetScale < 0 || c.RetryBudgetScale > 1 {
		return fmt.Errorf("%w: retry budget scale %v outside [0, 1]", ErrBadConfig, c.RetryBudgetScale)
	}
	if c.AdmissionScale < 0 || c.AdmissionScale > 1 {
		return fmt.Errorf("%w: admission scale %v outside [0, 1]", ErrBadConfig, c.AdmissionScale)
	}
	if c.WindowTicks <= 0 {
		c.WindowTicks = 5
	}
	return nil
}

// Probes is the supervisor's read surface: lifetime counters it
// differences per tick. Injected counts arrivals, Good counts completions
// within the SLA, Completed counts all completions, Retries counts retry
// attempts; QueueDepth returns the lifetime sum and count of queue-depth
// observations across the watched tier. Nil members disarm the detectors
// that need them.
type Probes struct {
	Injected  func() uint64
	Good      func() uint64
	Completed func() uint64
	Retries   func() uint64
	// Sheds counts the brownout controller's own front-door sheds. The
	// collapse detector subtracts them from offered load so the shed
	// traffic — failing fast by design, then retried by clients — does not
	// read as collapse evidence and latch the brownout open forever.
	Sheds func() uint64
	// QueueDepth returns the lifetime (sum, count) of per-arrival queue
	// depth observations.
	QueueDepth func() (float64, uint64)
}

// Actions is the supervisor's write surface: the brownout actuators.
// Each is invoked with the brownout value on entry and the restore value
// (0 shed, scale 1) on exit. Nil members are skipped.
type Actions struct {
	Shed       func(ratio float64)
	Admission  func(scale float64)
	RetryScale func(scale float64)
	// Note, when set, receives every brownout transition for the audit
	// trail.
	Note func(at time.Duration, entered bool, reason string)
}

// TimelinePoint is one detector tick's observables.
type TimelinePoint struct {
	At time.Duration `json:"at"`
	// OfferedPS and GoodPS are the tick's offered-load and goodput rates.
	// ShedPS is the brownout's own front-door shed rate; the collapse
	// detector judges OfferedPS - ShedPS (the admitted load).
	OfferedPS float64 `json:"offeredPS"`
	GoodPS    float64 `json:"goodPS"`
	ShedPS    float64 `json:"shedPS,omitempty"`
	// RetryAmp is retry attempts per completion this tick.
	RetryAmp float64 `json:"retryAmp"`
	// QueueMean is the mean observed queue depth this tick.
	QueueMean float64 `json:"queueMean"`
	// Unhealthy marks ticks at least one armed detector flagged;
	// Brownout marks ticks spent inside a brownout episode.
	Unhealthy bool `json:"unhealthy,omitempty"`
	Brownout  bool `json:"brownout,omitempty"`
}

// Episode is one brownout interval. ExitAt is zero while still open at
// the end of the run.
type Episode struct {
	EnterAt time.Duration `json:"enterAt"`
	ExitAt  time.Duration `json:"exitAt,omitempty"`
	// Reason names the detectors that voted unhealthy at entry.
	Reason string `json:"reason"`
}

// Report is the supervisor's lifetime record.
type Report struct {
	Ticks uint64 `json:"ticks"`
	// UnhealthyTicks counts ticks at least one detector flagged.
	UnhealthyTicks uint64    `json:"unhealthyTicks"`
	Episodes       []Episode `json:"episodes,omitempty"`
	// BrownoutSheds mirrors the application's brownout shed counter at
	// report time (filled by the experiment layer, not the supervisor).
	BrownoutSheds uint64 `json:"brownoutSheds,omitempty"`
	// Timeline is the per-tick detector record (present only when the
	// supervisor was built with timeline capture).
	Timeline []TimelinePoint `json:"timeline,omitempty"`
}

// Supervisor runs the detectors on a fixed tick and drives the brownout
// actions through hysteresis. Single-goroutine, simulation-thread only.
type Supervisor struct {
	eng     *sim.Engine
	cfg     Config
	probes  Probes
	actions Actions

	// Previous-tick counter snapshots.
	prevInjected  uint64
	prevGood      uint64
	prevCompleted uint64
	prevRetries   uint64
	prevSheds     uint64
	prevQSum      float64
	prevQCount    uint64

	// Queue-mean ring buffer for the gradient detector.
	qWindow []float64
	qNext   int
	qFilled bool

	hyst hysteresis

	ticks          uint64
	unhealthyTicks uint64
	episodes       []Episode
	timeline       []TimelinePoint
	captureTL      bool

	stop func()
}

// New builds a supervisor. It schedules nothing until Start.
func New(eng *sim.Engine, cfg Config, probes Probes, actions Actions) (*Supervisor, error) {
	if eng == nil {
		return nil, fmt.Errorf("%w: nil engine", ErrBadConfig)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Supervisor{
		eng:     eng,
		cfg:     cfg,
		probes:  probes,
		actions: actions,
		qWindow: make([]float64, cfg.WindowTicks),
		hyst: hysteresis{
			EnterTicks: cfg.EnterTicks,
			ExitTicks:  cfg.ExitTicks,
			MinDwell:   cfg.MinDwell,
		},
	}, nil
}

// CaptureTimeline pre-allocates and enables the per-tick timeline for a
// run of the given horizon. Call before Start.
func (s *Supervisor) CaptureTimeline(horizon time.Duration) {
	s.captureTL = true
	s.timeline = make([]TimelinePoint, 0, int(horizon/s.cfg.Period)+1)
}

// Start begins the detector ticker. Idempotent.
func (s *Supervisor) Start() {
	if s.stop != nil {
		return
	}
	s.stop = s.eng.Ticker(s.cfg.Period, s.tick)
}

// Stop halts the ticker (open episodes stay open in the report).
func (s *Supervisor) Stop() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// tick runs one detector evaluation.
func (s *Supervisor) tick() {
	s.ticks++
	now := s.eng.Now()
	secs := s.cfg.Period.Seconds()

	var offered, good, completed, retries uint64
	if s.probes.Injected != nil {
		cur := s.probes.Injected()
		offered, s.prevInjected = cur-s.prevInjected, cur
	}
	if s.probes.Good != nil {
		cur := s.probes.Good()
		good, s.prevGood = cur-s.prevGood, cur
	}
	if s.probes.Completed != nil {
		cur := s.probes.Completed()
		completed, s.prevCompleted = cur-s.prevCompleted, cur
	}
	if s.probes.Retries != nil {
		cur := s.probes.Retries()
		retries, s.prevRetries = cur-s.prevRetries, cur
	}
	var sheds uint64
	if s.probes.Sheds != nil {
		cur := s.probes.Sheds()
		sheds, s.prevSheds = cur-s.prevSheds, cur
	}
	var qMean float64
	var qObs uint64
	if s.probes.QueueDepth != nil {
		sum, count := s.probes.QueueDepth()
		dSum, dCount := sum-s.prevQSum, count-s.prevQCount
		s.prevQSum, s.prevQCount = sum, count
		if dCount > 0 {
			qMean = dSum / float64(dCount)
		}
		qObs = dCount
	}

	pt := TimelinePoint{
		At:        now,
		OfferedPS: float64(offered) / secs,
		GoodPS:    float64(good) / secs,
		ShedPS:    float64(sheds) / secs,
		QueueMean: qMean,
	}
	if completed > 0 {
		pt.RetryAmp = float64(retries) / float64(completed)
	} else if retries > 0 {
		// Retries with zero completions is the storm at its worst; report
		// the raw count as the amplification so the signal saturates
		// rather than divides by zero.
		pt.RetryAmp = float64(retries)
	}

	reason := s.detect(pt, offered, sheds, qObs, qMean)
	if now <= s.cfg.Warmup {
		// Warmup: observe (the gradient baseline keeps priming inside
		// detect) but never flag — the closed-loop startup burst is not a
		// collapse.
		reason = ""
	}
	pt.Unhealthy = reason != ""
	if pt.Unhealthy {
		s.unhealthyTicks++
	}

	switch s.hyst.step(now, pt.Unhealthy) {
	case transitionEnter:
		s.enterBrownout(now, reason)
	case transitionExit:
		s.exitBrownout(now)
	}
	pt.Brownout = s.hyst.active

	if s.captureTL {
		s.timeline = append(s.timeline, pt)
	}
}

// detect evaluates the armed detectors and returns a comma-joined list of
// those that flagged (empty = healthy tick).
func (s *Supervisor) detect(pt TimelinePoint, offered, sheds, qObs uint64, qMean float64) string {
	var reason string
	add := func(name string) {
		if reason == "" {
			reason = name
		} else {
			reason += "," + name
		}
	}
	// The collapse detector judges the admitted load: offered minus the
	// brownout's own sheds. A shed arrival fails fast by design (and is
	// typically retried by its client); counting it as collapsing demand
	// would hold the detector — and the brownout — latched forever.
	admittedPS := pt.OfferedPS - pt.ShedPS
	if admittedPS < 0 {
		admittedPS = 0
	}
	if s.cfg.CollapseRatio > 0 && admittedPS >= s.cfg.MinOfferedPerSecond && offered > sheds {
		if pt.GoodPS < s.cfg.CollapseRatio*admittedPS {
			add("goodput-collapse")
		}
	}
	if s.cfg.RetryAmplification > 0 && pt.RetryAmp > s.cfg.RetryAmplification {
		add("retry-amplification")
	}
	if s.cfg.QueueGradient > 0 && s.probes.QueueDepth != nil {
		// Compare this tick's mean depth against the window baseline from
		// WindowTicks ago. The baseline needs a small floor so an empty
		// system warming up (0 -> 1) does not register as infinite growth.
		if s.qFilled {
			base := s.qWindow[s.qNext]
			if base < 1 {
				base = 1
			}
			if qObs > 0 && qMean > base*s.cfg.QueueGradient {
				add("queue-gradient")
			}
		}
		s.qWindow[s.qNext] = qMean
		s.qNext = (s.qNext + 1) % len(s.qWindow)
		if s.qNext == 0 {
			s.qFilled = true
		}
	}
	return reason
}

// enterBrownout applies the brownout actions.
func (s *Supervisor) enterBrownout(now time.Duration, reason string) {
	s.episodes = append(s.episodes, Episode{EnterAt: now, Reason: reason})
	if s.actions.Shed != nil {
		s.actions.Shed(s.cfg.ShedRatio)
	}
	if s.actions.Admission != nil {
		s.actions.Admission(s.cfg.AdmissionScale)
	}
	if s.actions.RetryScale != nil {
		s.actions.RetryScale(s.cfg.RetryBudgetScale)
	}
	if s.actions.Note != nil {
		s.actions.Note(now, true, reason)
	}
}

// exitBrownout restores the pre-brownout settings.
func (s *Supervisor) exitBrownout(now time.Duration) {
	if n := len(s.episodes); n > 0 {
		s.episodes[n-1].ExitAt = now
	}
	if s.actions.Shed != nil {
		s.actions.Shed(0)
	}
	if s.actions.Admission != nil {
		s.actions.Admission(1)
	}
	if s.actions.RetryScale != nil {
		s.actions.RetryScale(1)
	}
	if s.actions.Note != nil {
		s.actions.Note(now, false, "recovered")
	}
}

// Active reports whether a brownout episode is open.
func (s *Supervisor) Active() bool { return s.hyst.active }

// Report returns the supervisor's lifetime record. The returned slices
// alias the supervisor's own (callers marshal, they do not mutate).
func (s *Supervisor) Report() Report {
	return Report{
		Ticks:          s.ticks,
		UnhealthyTicks: s.unhealthyTicks,
		Episodes:       s.episodes,
		Timeline:       s.timeline,
	}
}
