package cloud

import (
	"errors"
	"testing"
	"time"

	"dcm/internal/sim"
)

func newHV(t *testing.T, prep time.Duration) (*sim.Engine, *Hypervisor) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewHypervisor(eng, prep)
}

func TestLaunchBecomesReadyAfterPrep(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 15*time.Second)
	var readyAt sim.Time
	vm, err := hv.Launch("app-1", "app", func(v *VM) { readyAt = eng.Now() })
	if err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateProvisioning {
		t.Fatalf("state = %v", vm.State())
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateReady {
		t.Fatalf("state after prep = %v", vm.State())
	}
	if readyAt != 15*time.Second {
		t.Fatalf("ready at %v, want 15s", readyAt)
	}
	if vm.ReadyAt() != 15*time.Second || vm.LaunchedAt() != 0 {
		t.Fatalf("timestamps: launched=%v ready=%v", vm.LaunchedAt(), vm.ReadyAt())
	}
}

func TestLaunchDuplicateName(t *testing.T) {
	t.Parallel()
	_, hv := newHV(t, 0)
	if _, err := hv.Launch("a", "app", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := hv.Launch("a", "app", nil); !errors.Is(err, ErrDuplicateVM) {
		t.Fatalf("err = %v", err)
	}
}

func TestTerminateDuringProvisioningCancelsReady(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 10*time.Second)
	called := false
	vm, err := hv.Launch("a", "app", func(*VM) { called = true })
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(5*time.Second, func() {
		if err := hv.Terminate(vm); err != nil {
			t.Errorf("terminate: %v", err)
		}
	})
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("onReady fired for terminated VM")
	}
	if vm.State() != StateTerminated {
		t.Fatalf("state = %v", vm.State())
	}
}

func TestDrainTransitions(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 0)
	vm, err := hv.Launch("a", "db", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Draining while provisioning is invalid.
	if err := hv.Drain(vm); !errors.Is(err, ErrBadState) {
		t.Fatalf("drain while provisioning: %v", err)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := hv.Drain(vm); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateDraining {
		t.Fatalf("state = %v", vm.State())
	}
	// Idempotent.
	if err := hv.Drain(vm); err != nil {
		t.Fatal(err)
	}
	if err := hv.Terminate(vm); err != nil {
		t.Fatal(err)
	}
	if err := hv.Terminate(vm); !errors.Is(err, ErrBadState) {
		t.Fatalf("double terminate: %v", err)
	}
}

func TestCounts(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 10*time.Second)
	if _, err := hv.Launch("app-1", "app", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := hv.Launch("app-2", "app", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := hv.Launch("db-1", "db", nil); err != nil {
		t.Fatal(err)
	}
	if got := hv.CountLive("app"); got != 2 {
		t.Fatalf("CountLive(app) = %d", got)
	}
	if got := hv.CountReady("app"); got != 0 {
		t.Fatalf("CountReady before prep = %d", got)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := hv.CountReady("app"); got != 2 {
		t.Fatalf("CountReady after prep = %d", got)
	}
	if got := hv.CountReady("db"); got != 1 {
		t.Fatalf("CountReady(db) = %d", got)
	}
}

func TestLiveOrderingAndFilter(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 0)
	if _, err := hv.Launch("app-1", "app", nil); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(time.Second, func() {
		if _, err := hv.Launch("app-0", "app", nil); err != nil {
			t.Errorf("launch: %v", err)
		}
	})
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	live := hv.Live("app")
	if len(live) != 2 || live[0].Name() != "app-1" || live[1].Name() != "app-0" {
		names := make([]string, len(live))
		for i, v := range live {
			names[i] = v.Name()
		}
		t.Fatalf("Live order = %v, want launch order", names)
	}
	if all := hv.Live(""); len(all) != 2 {
		t.Fatalf("Live(\"\") = %d VMs", len(all))
	}
	vm, err := hv.Get("app-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := hv.Terminate(vm); err != nil {
		t.Fatal(err)
	}
	if live := hv.Live("app"); len(live) != 1 {
		t.Fatalf("terminated VM still live: %d", len(live))
	}
}

func TestGetUnknown(t *testing.T) {
	t.Parallel()
	_, hv := newHV(t, 0)
	if _, err := hv.Get("ghost"); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("err = %v", err)
	}
}

func TestEventsLog(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 5*time.Second)
	vm, err := hv.Launch("a", "app", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := hv.Drain(vm); err != nil {
		t.Fatal(err)
	}
	if err := hv.Terminate(vm); err != nil {
		t.Fatal(err)
	}
	events := hv.Events()
	want := []string{"launch", "ready", "drain", "terminate"}
	if len(events) != len(want) {
		t.Fatalf("events = %+v", events)
	}
	for i, ev := range events {
		if ev.Action != want[i] {
			t.Fatalf("event %d = %q, want %q", i, ev.Action, want[i])
		}
		if ev.VM != "a" || ev.Tier != "app" {
			t.Fatalf("event metadata = %+v", ev)
		}
	}
	if events[1].At != 5*time.Second {
		t.Fatalf("ready event at %v", events[1].At)
	}
}

func TestNextNameUnique(t *testing.T) {
	t.Parallel()
	_, hv := newHV(t, 0)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		n := hv.NextName("app")
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestNegativePrepDelayClamped(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	hv := NewHypervisor(eng, -time.Second)
	if hv.PrepDelay() != 0 {
		t.Fatalf("PrepDelay = %v", hv.PrepDelay())
	}
}

func TestStateString(t *testing.T) {
	t.Parallel()
	tests := []struct {
		s    State
		want string
	}{
		{StateProvisioning, "provisioning"},
		{StateReady, "ready"},
		{StateDraining, "draining"},
		{StateTerminated, "terminated"},
		{State(0), "state(0)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

func TestCrashReadyVM(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 15*time.Second)
	var crashed []string
	hv.OnCrash(func(v *VM) { crashed = append(crashed, v.Name()) })
	vm, err := hv.Launch("app-1", "app", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := hv.Crash(vm); err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateCrashed || vm.CrashedFrom() != StateReady {
		t.Fatalf("state = %v, crashedFrom = %v", vm.State(), vm.CrashedFrom())
	}
	if len(crashed) != 1 || crashed[0] != "app-1" {
		t.Fatalf("OnCrash hooks saw %v", crashed)
	}
	if got := hv.CountCrashedServing("app"); got != 1 {
		t.Fatalf("CountCrashedServing = %d", got)
	}
	if got := hv.CountLive("app"); got != 0 {
		t.Fatalf("CountLive after crash = %d", got)
	}
	// A crashed VM is gone: neither terminate nor a second crash applies.
	if err := hv.Terminate(vm); !errors.Is(err, ErrBadState) {
		t.Fatalf("Terminate after crash: err = %v", err)
	}
	if err := hv.Crash(vm); !errors.Is(err, ErrBadState) {
		t.Fatalf("double crash: err = %v", err)
	}
}

func TestCrashDuringProvisioningCancelsReady(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 10*time.Second)
	called := false
	vm, err := hv.Launch("a", "app", func(*VM) { called = true })
	if err != nil {
		t.Fatal(err)
	}
	eng.Schedule(5*time.Second, func() {
		if err := hv.Crash(vm); err != nil {
			t.Error(err)
		}
	})
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("onReady fired for a VM that crashed while provisioning")
	}
	if vm.CrashedFrom() != StateProvisioning {
		t.Fatalf("crashedFrom = %v", vm.CrashedFrom())
	}
	// Provisioning crashes never delivered capacity: the serving census
	// must not count them (the VM-agent retries the launch instead).
	if got := hv.CountCrashedServing("app"); got != 0 {
		t.Fatalf("CountCrashedServing counts a provisioning crash: %d", got)
	}
}

func TestPrepFactorSlowsLaunches(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 10*time.Second)
	hv.SetPrepFactor(3)
	var slowReady, normalReady sim.Time
	if _, err := hv.Launch("slow", "app", func(*VM) { slowReady = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	// Repair at 15s: launches after that run at normal speed again.
	eng.Schedule(15*time.Second, func() {
		hv.SetPrepFactor(1)
		if _, err := hv.Launch("normal", "app", func(*VM) { normalReady = eng.Now() }); err != nil {
			t.Error(err)
		}
	})
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if slowReady != 30*time.Second {
		t.Fatalf("slow-boot launch ready at %v, want 30s", slowReady)
	}
	if normalReady != 25*time.Second {
		t.Fatalf("post-repair launch ready at %v, want 25s", normalReady)
	}
}

func TestAdopt(t *testing.T) {
	t.Parallel()
	eng, hv := newHV(t, 15*time.Second)
	vm, err := hv.Adopt("seed-1", "app")
	if err != nil {
		t.Fatal(err)
	}
	if vm.State() != StateReady {
		t.Fatalf("adopted state = %v", vm.State())
	}
	if got := hv.CountReady("app"); got != 1 {
		t.Fatalf("CountReady = %d", got)
	}
	if _, err := hv.Adopt("seed-1", "app"); !errors.Is(err, ErrDuplicateVM) {
		t.Fatalf("duplicate adopt: err = %v", err)
	}
	// Adopted servers crash like launched ones: census-visible.
	if err := hv.Crash(vm); err != nil {
		t.Fatal(err)
	}
	if got := hv.CountCrashedServing("app"); got != 1 {
		t.Fatalf("CountCrashedServing = %d", got)
	}
	_ = eng
}
