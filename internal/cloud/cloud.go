// Package cloud simulates the IaaS substrate the paper scales on: virtual
// machines with a provisioning delay, lifecycle states, and an audit log of
// scaling activities. The VM-agent (§IV-A) starts and stops VMs through
// this package exactly as it would call a hypervisor API; the paper's
// 15-second "preparation period" before a VM enters service mode is the
// default provisioning delay.
package cloud

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/sim"
)

// State is a VM lifecycle state.
type State int

// VM lifecycle states.
const (
	StateProvisioning State = iota + 1
	StateReady
	StateDraining
	StateTerminated
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateProvisioning:
		return "provisioning"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// VM is one simulated virtual machine.
type VM struct {
	name      string
	tier      string
	state     State
	launched  sim.Time
	readyAt   sim.Time
	prepEvent *sim.Event
}

// Name returns the VM name (unique per hypervisor).
func (v *VM) Name() string { return v.name }

// Tier returns the application tier the VM was launched for.
func (v *VM) Tier() string { return v.tier }

// State returns the current lifecycle state.
func (v *VM) State() State { return v.state }

// LaunchedAt returns when the VM was requested.
func (v *VM) LaunchedAt() sim.Time { return v.launched }

// ReadyAt returns when the VM entered (or will enter) service mode; it is
// meaningful once the VM has left StateProvisioning.
func (v *VM) ReadyAt() sim.Time { return v.readyAt }

// Event is one entry in the hypervisor's scaling audit log.
type Event struct {
	At     sim.Time `json:"at"`
	VM     string   `json:"vm"`
	Tier   string   `json:"tier"`
	Action string   `json:"action"` // "launch", "ready", "drain", "terminate"
}

// Errors returned by the hypervisor.
var (
	ErrDuplicateVM = errors.New("cloud: vm name already exists")
	ErrUnknownVM   = errors.New("cloud: unknown vm")
	ErrBadState    = errors.New("cloud: operation invalid in current state")
)

// Hypervisor manages simulated VMs on a sim.Engine.
type Hypervisor struct {
	eng       *sim.Engine
	prepDelay time.Duration
	vms       map[string]*VM
	events    []Event
	seq       int
}

// NewHypervisor returns a hypervisor whose VMs take prepDelay to become
// ready after launch (the paper uses 15 s). A non-positive prepDelay means
// VMs are ready immediately (still via a zero-delay event, preserving
// callback ordering).
func NewHypervisor(eng *sim.Engine, prepDelay time.Duration) *Hypervisor {
	if prepDelay < 0 {
		prepDelay = 0
	}
	return &Hypervisor{
		eng:       eng,
		prepDelay: prepDelay,
		vms:       make(map[string]*VM),
	}
}

// PrepDelay returns the configured provisioning delay.
func (h *Hypervisor) PrepDelay() time.Duration { return h.prepDelay }

// NextName generates a unique VM name for a tier ("app-3").
func (h *Hypervisor) NextName(tier string) string {
	h.seq++
	return fmt.Sprintf("%s-%d", tier, h.seq)
}

// Launch starts a VM for tier. After the preparation period the VM becomes
// StateReady and onReady (if non-nil) is invoked — the moment the paper's
// VM-agent attaches the new server to the load balancer.
func (h *Hypervisor) Launch(name, tier string, onReady func(*VM)) (*VM, error) {
	if _, exists := h.vms[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateVM, name)
	}
	vm := &VM{
		name:     name,
		tier:     tier,
		state:    StateProvisioning,
		launched: h.eng.Now(),
		readyAt:  h.eng.Now() + h.prepDelay,
	}
	h.vms[name] = vm
	h.log(vm, "launch")
	vm.prepEvent = h.eng.Schedule(h.prepDelay, func() {
		if vm.state != StateProvisioning {
			return // terminated while provisioning
		}
		vm.state = StateReady
		vm.readyAt = h.eng.Now()
		h.log(vm, "ready")
		if onReady != nil {
			onReady(vm)
		}
	})
	return vm, nil
}

// Drain marks a ready VM as draining: it stays up but should receive no new
// work. Draining an already-draining VM is a no-op.
func (h *Hypervisor) Drain(vm *VM) error {
	switch vm.state {
	case StateDraining:
		return nil
	case StateReady:
		vm.state = StateDraining
		h.log(vm, "drain")
		return nil
	default:
		return fmt.Errorf("%w: drain %q in %v", ErrBadState, vm.name, vm.state)
	}
}

// Terminate shuts a VM down from any live state. Terminating a
// provisioning VM cancels its pending readiness callback.
func (h *Hypervisor) Terminate(vm *VM) error {
	if vm.state == StateTerminated {
		return fmt.Errorf("%w: terminate %q twice", ErrBadState, vm.name)
	}
	vm.prepEvent.Cancel()
	vm.state = StateTerminated
	h.log(vm, "terminate")
	return nil
}

// Get returns the VM with the given name.
func (h *Hypervisor) Get(name string) (*VM, error) {
	vm, ok := h.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVM, name)
	}
	return vm, nil
}

// Live returns the VMs of a tier that are not terminated, in launch order.
// An empty tier selects all tiers.
func (h *Hypervisor) Live(tier string) []*VM {
	var out []*VM
	for _, vm := range h.vms {
		if vm.state != StateTerminated && (tier == "" || vm.tier == tier) {
			out = append(out, vm)
		}
	}
	sortVMs(out)
	return out
}

// CountReady returns the number of ready (serving) VMs in tier.
func (h *Hypervisor) CountReady(tier string) int {
	n := 0
	for _, vm := range h.vms {
		if vm.tier == tier && vm.state == StateReady {
			n++
		}
	}
	return n
}

// CountLive returns the number of non-terminated VMs in tier, including
// those still provisioning — the count scaling decisions must consider so
// a burst does not launch a new VM every control period while the first
// one boots.
func (h *Hypervisor) CountLive(tier string) int {
	n := 0
	for _, vm := range h.vms {
		if vm.tier == tier && vm.state != StateTerminated {
			n++
		}
	}
	return n
}

// Events returns a copy of the scaling audit log in chronological order.
func (h *Hypervisor) Events() []Event {
	out := make([]Event, len(h.events))
	copy(out, h.events)
	return out
}

func (h *Hypervisor) log(vm *VM, action string) {
	h.events = append(h.events, Event{
		At:     h.eng.Now(),
		VM:     vm.name,
		Tier:   vm.tier,
		Action: action,
	})
}

func sortVMs(vms []*VM) {
	// Insertion sort by launch time then name; fleets are small.
	for i := 1; i < len(vms); i++ {
		for j := i; j > 0 && less(vms[j], vms[j-1]); j-- {
			vms[j], vms[j-1] = vms[j-1], vms[j]
		}
	}
}

func less(a, b *VM) bool {
	if a.launched != b.launched {
		return a.launched < b.launched
	}
	return a.name < b.name
}
