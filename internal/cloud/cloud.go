// Package cloud simulates the IaaS substrate the paper scales on: virtual
// machines with a provisioning delay, lifecycle states, and an audit log of
// scaling activities. The VM-agent (§IV-A) starts and stops VMs through
// this package exactly as it would call a hypervisor API; the paper's
// 15-second "preparation period" before a VM enters service mode is the
// default provisioning delay.
package cloud

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/sim"
)

// State is a VM lifecycle state.
type State int

// VM lifecycle states.
const (
	StateProvisioning State = iota + 1
	StateReady
	StateDraining
	StateTerminated
	StateCrashed
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateProvisioning:
		return "provisioning"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateTerminated:
		return "terminated"
	case StateCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// gone reports whether the state is terminal (the VM no longer exists as
// far as capacity is concerned).
func (s State) gone() bool { return s == StateTerminated || s == StateCrashed }

// VM is one simulated virtual machine.
type VM struct {
	name        string
	tier        string
	state       State
	crashedFrom State // state the VM was in when it crashed (zero otherwise)
	launched    sim.Time
	readyAt     sim.Time
	prepEvent   sim.Timer
}

// Name returns the VM name (unique per hypervisor).
func (v *VM) Name() string { return v.name }

// Tier returns the application tier the VM was launched for.
func (v *VM) Tier() string { return v.tier }

// State returns the current lifecycle state.
func (v *VM) State() State { return v.state }

// LaunchedAt returns when the VM was requested.
func (v *VM) LaunchedAt() sim.Time { return v.launched }

// ReadyAt returns when the VM entered (or will enter) service mode; it is
// meaningful once the VM has left StateProvisioning.
func (v *VM) ReadyAt() sim.Time { return v.readyAt }

// CrashedFrom returns the state the VM was in when it crashed; zero unless
// the VM is in StateCrashed.
func (v *VM) CrashedFrom() State { return v.crashedFrom }

// Event is one entry in the hypervisor's scaling audit log.
type Event struct {
	At     sim.Time `json:"at"`
	VM     string   `json:"vm"`
	Tier   string   `json:"tier"`
	Action string   `json:"action"` // "launch", "ready", "adopt", "drain", "terminate", "crash"
}

// Errors returned by the hypervisor.
var (
	ErrDuplicateVM = errors.New("cloud: vm name already exists")
	ErrUnknownVM   = errors.New("cloud: unknown vm")
	ErrBadState    = errors.New("cloud: operation invalid in current state")
)

// Hypervisor manages simulated VMs on a sim.Engine.
type Hypervisor struct {
	eng        *sim.Engine
	prepDelay  time.Duration
	prepFactor float64
	vms        map[string]*VM
	events     []Event
	seq        int
	onCrash    []func(*VM)
}

// NewHypervisor returns a hypervisor whose VMs take prepDelay to become
// ready after launch (the paper uses 15 s). A non-positive prepDelay means
// VMs are ready immediately (still via a zero-delay event, preserving
// callback ordering).
func NewHypervisor(eng *sim.Engine, prepDelay time.Duration) *Hypervisor {
	if prepDelay < 0 {
		prepDelay = 0
	}
	return &Hypervisor{
		eng:        eng,
		prepDelay:  prepDelay,
		prepFactor: 1,
		vms:        make(map[string]*VM),
	}
}

// PrepDelay returns the configured provisioning delay.
func (h *Hypervisor) PrepDelay() time.Duration { return h.prepDelay }

// SetPrepFactor scales the preparation period of *future* launches by f —
// the degraded-image/congested-datacenter condition the chaos slow-boot
// fault injects. VMs already provisioning keep their original schedule.
// Non-positive factors are clamped to 0 (instant boot).
func (h *Hypervisor) SetPrepFactor(f float64) {
	if f < 0 {
		f = 0
	}
	h.prepFactor = f
}

// PrepFactor returns the current preparation-period multiplier.
func (h *Hypervisor) PrepFactor() float64 { return h.prepFactor }

// OnCrash registers a hook invoked (in registration order) whenever a VM
// crashes. The VM-agent uses it to retry launches that died during their
// preparation period.
func (h *Hypervisor) OnCrash(fn func(*VM)) {
	if fn != nil {
		h.onCrash = append(h.onCrash, fn)
	}
}

// NextName generates a unique VM name for a tier ("app-3").
func (h *Hypervisor) NextName(tier string) string {
	h.seq++
	return fmt.Sprintf("%s-%d", tier, h.seq)
}

// Launch starts a VM for tier. After the preparation period the VM becomes
// StateReady and onReady (if non-nil) is invoked — the moment the paper's
// VM-agent attaches the new server to the load balancer.
func (h *Hypervisor) Launch(name, tier string, onReady func(*VM)) (*VM, error) {
	if _, exists := h.vms[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateVM, name)
	}
	delay := time.Duration(float64(h.prepDelay) * h.prepFactor)
	vm := &VM{
		name:     name,
		tier:     tier,
		state:    StateProvisioning,
		launched: h.eng.Now(),
		readyAt:  h.eng.Now() + delay,
	}
	h.vms[name] = vm
	h.log(vm, "launch")
	vm.prepEvent = h.eng.Schedule(delay, func() {
		if vm.state != StateProvisioning {
			return // terminated while provisioning
		}
		vm.state = StateReady
		vm.readyAt = h.eng.Now()
		h.log(vm, "ready")
		if onReady != nil {
			onReady(vm)
		}
	})
	return vm, nil
}

// Adopt registers an externally created, already-serving server (e.g. a
// seed server the application started with before any scaling) as a ready
// VM, so the census, the crash path and scale-in cover it like any
// launched VM.
func (h *Hypervisor) Adopt(name, tier string) (*VM, error) {
	if _, exists := h.vms[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateVM, name)
	}
	vm := &VM{
		name:     name,
		tier:     tier,
		state:    StateReady,
		launched: h.eng.Now(),
		readyAt:  h.eng.Now(),
	}
	h.vms[name] = vm
	h.log(vm, "adopt")
	return vm, nil
}

// Drain marks a ready VM as draining: it stays up but should receive no new
// work. Draining an already-draining VM is a no-op.
func (h *Hypervisor) Drain(vm *VM) error {
	switch vm.state {
	case StateDraining:
		return nil
	case StateReady:
		vm.state = StateDraining
		h.log(vm, "drain")
		return nil
	default:
		return fmt.Errorf("%w: drain %q in %v", ErrBadState, vm.name, vm.state)
	}
}

// Terminate shuts a VM down from any live state. Terminating a
// provisioning VM cancels its pending readiness callback.
func (h *Hypervisor) Terminate(vm *VM) error {
	if vm.state.gone() {
		return fmt.Errorf("%w: terminate %q in %v", ErrBadState, vm.name, vm.state)
	}
	vm.prepEvent.Cancel()
	vm.state = StateTerminated
	h.log(vm, "terminate")
	return nil
}

// Crash kills a VM abruptly from any live state — the chaos fault path. It
// cancels a provisioning VM's pending readiness callback (onReady must
// never fire for a dead VM), records the state the VM crashed from, logs a
// "crash" audit event, and fires the OnCrash hooks. Unlike Terminate,
// which models an orderly shutdown requested by the VM-agent, Crash models
// the hypervisor losing the instance.
func (h *Hypervisor) Crash(vm *VM) error {
	if vm.state.gone() {
		return fmt.Errorf("%w: crash %q in %v", ErrBadState, vm.name, vm.state)
	}
	vm.prepEvent.Cancel()
	vm.crashedFrom = vm.state
	vm.state = StateCrashed
	h.log(vm, "crash")
	for _, fn := range h.onCrash {
		fn(vm)
	}
	return nil
}

// Get returns the VM with the given name.
func (h *Hypervisor) Get(name string) (*VM, error) {
	vm, ok := h.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVM, name)
	}
	return vm, nil
}

// Live returns the VMs of a tier that are not terminated, in launch order.
// An empty tier selects all tiers.
func (h *Hypervisor) Live(tier string) []*VM {
	var out []*VM
	for _, vm := range h.vms {
		if !vm.state.gone() && (tier == "" || vm.tier == tier) {
			out = append(out, vm)
		}
	}
	sortVMs(out)
	return out
}

// CountReady returns the number of ready (serving) VMs in tier.
func (h *Hypervisor) CountReady(tier string) int {
	n := 0
	for _, vm := range h.vms {
		if vm.tier == tier && vm.state == StateReady {
			n++
		}
	}
	return n
}

// CountLive returns the number of non-terminated VMs in tier, including
// those still provisioning — the count scaling decisions must consider so
// a burst does not launch a new VM every control period while the first
// one boots.
func (h *Hypervisor) CountLive(tier string) int {
	n := 0
	for _, vm := range h.vms {
		if vm.tier == tier && !vm.state.gone() {
			n++
		}
	}
	return n
}

// CountCrashedServing returns the number of the tier's VMs that crashed
// out of a serving state (ready or draining) — the hypervisor census the
// controller diffs each period to detect dead capacity. VMs that crashed
// while still provisioning are excluded: those launches never delivered
// capacity and the VM-agent retries them itself.
func (h *Hypervisor) CountCrashedServing(tier string) int {
	n := 0
	for _, vm := range h.vms {
		if vm.tier == tier && vm.state == StateCrashed &&
			(vm.crashedFrom == StateReady || vm.crashedFrom == StateDraining) {
			n++
		}
	}
	return n
}

// Events returns a copy of the scaling audit log in chronological order.
func (h *Hypervisor) Events() []Event {
	out := make([]Event, len(h.events))
	copy(out, h.events)
	return out
}

func (h *Hypervisor) log(vm *VM, action string) {
	h.events = append(h.events, Event{
		At:     h.eng.Now(),
		VM:     vm.name,
		Tier:   vm.tier,
		Action: action,
	})
}

func sortVMs(vms []*VM) {
	// Insertion sort by launch time then name; fleets are small.
	for i := 1; i < len(vms); i++ {
		for j := i; j > 0 && less(vms[j], vms[j-1]); j-- {
			vms[j], vms[j-1] = vms[j-1], vms[j]
		}
	}
}

func less(a, b *VM) bool {
	if a.launched != b.launched {
		return a.launched < b.launched
	}
	return a.name < b.name
}
