package fit

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dcm/internal/rng"
)

func TestSolveLinearKnown(t *testing.T) {
	t.Parallel()
	// 2x + y = 5; x + 3y = 10 → x = 1, y = 3
	a, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	t.Parallel()
	// Zero on the initial pivot position forces a row swap.
	a, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	t.Parallel()
	a, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	t.Parallel()
	a, err := NewMatrix(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	sq, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveLinear(sq, []float64{1}); err == nil {
		t.Fatal("rhs mismatch accepted")
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	t.Parallel()
	a, err := NewMatrix(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Set(0, 0, 4)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4 || b[0] != 1 {
		t.Fatal("inputs mutated")
	}
}

func TestSolveLinearRandomProperty(t *testing.T) {
	t.Parallel()
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(6)
		a, err := NewMatrix(n, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.Uniform(-5, 5))
			}
			// Diagonal dominance guarantees solvability.
			a.Set(i, i, a.At(i, i)+10)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Uniform(-3, 3)
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a.At(i, j) * want[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewMatrixInvalid(t *testing.T) {
	t.Parallel()
	if _, err := NewMatrix(0, 3); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewMatrix(3, -1); err == nil {
		t.Fatal("negative cols accepted")
	}
}

func TestLinearRegression(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, r2, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	if math.Abs(r2-1) > 1e-12 {
		t.Fatalf("r2 = %v", r2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	t.Parallel()
	if _, _, _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, _, _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, _, err := LinearRegression([]float64{2, 2}, []float64{1, 5}); !errors.Is(err, ErrSingular) {
		t.Fatalf("constant x: err = %v, want ErrSingular", err)
	}
}

func TestRSquared(t *testing.T) {
	t.Parallel()
	ys := []float64{1, 2, 3}
	if r := RSquared(ys, ys); r != 1 {
		t.Fatalf("perfect fit r2 = %v", r)
	}
	if r := RSquared(ys, []float64{2, 2, 2}); r != 0 {
		t.Fatalf("mean-only fit r2 = %v", r)
	}
	if r := RSquared(nil, nil); r != 0 {
		t.Fatalf("empty r2 = %v", r)
	}
	if r := RSquared([]float64{5, 5}, []float64{5, 5}); r != 1 {
		t.Fatalf("constant exact r2 = %v", r)
	}
	if r := RSquared([]float64{5, 5}, []float64{5, 6}); r != 0 {
		t.Fatalf("constant inexact r2 = %v", r)
	}
}

// expModel is a simple two-parameter test model: a * exp(b x).
func expModel(x float64, p []float64) float64 { return p[0] * math.Exp(p[1]*x) }

func TestLevMarExponential(t *testing.T) {
	t.Parallel()
	truth := []float64{2.5, -0.7}
	var xs, ys []float64
	for x := 0.0; x <= 5; x += 0.25 {
		xs = append(xs, x)
		ys = append(ys, expModel(x, truth))
	}
	res, err := LevMar(Problem{Model: expModel, X: xs, Y: ys}, []float64{1, -0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-truth[0]) > 1e-5 || math.Abs(res.Params[1]-truth[1]) > 1e-5 {
		t.Fatalf("params = %v, want %v", res.Params, truth)
	}
	if res.RSquared < 0.999999 {
		t.Fatalf("r2 = %v", res.RSquared)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
}

func TestLevMarNoisy(t *testing.T) {
	t.Parallel()
	truth := []float64{4, -0.3}
	r := rng.New(5)
	var xs, ys []float64
	for x := 0.0; x <= 10; x += 0.1 {
		xs = append(xs, x)
		ys = append(ys, expModel(x, truth)*(1+r.Normal(0, 0.01)))
	}
	res, err := LevMar(Problem{Model: expModel, X: xs, Y: ys}, []float64{1, -1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-truth[0]) > 0.1 || math.Abs(res.Params[1]-truth[1]) > 0.02 {
		t.Fatalf("params = %v, want ~%v", res.Params, truth)
	}
	if res.RSquared < 0.99 {
		t.Fatalf("r2 = %v", res.RSquared)
	}
}

func TestLevMarBounds(t *testing.T) {
	t.Parallel()
	// Fit y = p0 * x with the truth outside the allowed box.
	lin := func(x float64, p []float64) float64 { return p[0] * x }
	xs := []float64{1, 2, 3}
	ys := []float64{5, 10, 15} // truth p0 = 5
	res, err := LevMar(Problem{
		Model: lin, X: xs, Y: ys,
		Lower: []float64{0}, Upper: []float64{3},
	}, []float64{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Params[0] > 3+1e-12 {
		t.Fatalf("bound violated: %v", res.Params)
	}
}

func TestLevMarErrors(t *testing.T) {
	t.Parallel()
	if _, err := LevMar(Problem{Model: expModel}, []float64{1, 1}, Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	if _, err := LevMar(Problem{X: []float64{1}, Y: []float64{1}}, []float64{1}, Options{}); err == nil {
		t.Fatal("nil model accepted")
	}
	bad := Problem{Model: expModel, X: []float64{1}, Y: []float64{1}, Lower: []float64{0}}
	if _, err := LevMar(bad, []float64{1, 1}, Options{}); err == nil {
		t.Fatal("bounds length mismatch accepted")
	}
	nan := func(x float64, p []float64) float64 { return math.NaN() }
	if _, err := LevMar(Problem{Model: nan, X: []float64{1}, Y: []float64{1}}, []float64{1}, Options{}); !errors.Is(err, ErrBadGuess) {
		t.Fatalf("err = %v, want ErrBadGuess", err)
	}
}

func TestMultiStartPicksBest(t *testing.T) {
	t.Parallel()
	// A model with a local minimum: y = sin(p0 x); one start is near the
	// global optimum, one is far away.
	model := func(x float64, p []float64) float64 { return math.Sin(p[0] * x) }
	truth := 1.3
	var xs, ys []float64
	for x := 0.1; x <= 3; x += 0.1 {
		xs = append(xs, x)
		ys = append(ys, model(x, []float64{truth}))
	}
	res, err := MultiStart(Problem{Model: model, X: xs, Y: ys},
		[][]float64{{8.0}, {1.0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params[0]-truth) > 1e-4 {
		t.Fatalf("multistart missed global optimum: %v", res.Params)
	}
}

func TestMultiStartAllFail(t *testing.T) {
	t.Parallel()
	nan := func(x float64, p []float64) float64 { return math.NaN() }
	_, err := MultiStart(Problem{Model: nan, X: []float64{1}, Y: []float64{1}},
		[][]float64{{1}, {2}}, Options{})
	if err == nil {
		t.Fatal("no error when every start fails")
	}
	if _, err := MultiStart(Problem{}, nil, Options{}); err == nil {
		t.Fatal("no error for zero guesses")
	}
}
