package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("fit: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("fit: invalid matrix shape %dx%d", rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{rows: m.rows, cols: m.cols, data: make([]float64, len(m.data))}
	copy(out.data, m.data)
	return out
}

// SolveLinear solves A x = b by Gaussian elimination with partial pivoting.
// A must be square with len(b) rows. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("fit: SolveLinear needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("fit: rhs length %d != %d", len(b), n)
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for c := 0; c < n; c++ {
				m.data[col*n+c], m.data[pivot*n+c] = m.data[pivot*n+c], m.data[col*n+c]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		sum := x[r]
		for c := r + 1; c < n; c++ {
			sum -= m.At(r, c) * x[c]
		}
		x[r] = sum / m.At(r, r)
	}
	return x, nil
}

// LinearRegression fits y = slope*x + intercept by ordinary least squares
// and returns the coefficients and R². It requires at least two points.
func LinearRegression(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("fit: length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, 0, 0, errors.New("fit: need at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-300 {
		return 0, 0, 0, ErrSingular
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n

	preds := make([]float64, len(xs))
	for i, x := range xs {
		preds[i] = slope*x + intercept
	}
	r2 = RSquared(ys, preds)
	return slope, intercept, r2, nil
}

// RSquared returns the coefficient of determination of predictions preds
// against observations ys. A constant observation vector yields 1 when the
// predictions match exactly and 0 otherwise.
func RSquared(ys, preds []float64) float64 {
	if len(ys) == 0 || len(ys) != len(preds) {
		return 0
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssRes, ssTot float64
	for i := range ys {
		d := ys[i] - preds[i]
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
