// Package fit implements the numerical estimation used to train the
// concurrency-aware model: dense linear solves, ordinary least squares, and
// a Levenberg–Marquardt nonlinear least-squares solver with numeric
// Jacobians, box constraints and multi-start.
//
// The paper (§V-A) fits Equation 7 with "the Least-Square Fitting method";
// this package is the from-scratch stdlib-only equivalent.
package fit

import (
	"errors"
	"fmt"
	"math"
)

// Model is a parametric function f(x; θ).
type Model func(x float64, params []float64) float64

// Problem describes a nonlinear least-squares fit of Model to (X, Y) pairs.
type Problem struct {
	// Model is the function to fit.
	Model Model
	// X, Y are the observations. They must be the same length and non-empty.
	X, Y []float64
	// Lower, Upper optionally bound each parameter (nil means unbounded).
	Lower, Upper []float64
}

// Options tunes the Levenberg–Marquardt iteration. The zero value selects
// sensible defaults.
type Options struct {
	// MaxIterations bounds the LM iterations (default 200).
	MaxIterations int
	// Tolerance is the relative SSE improvement below which the fit stops
	// (default 1e-12).
	Tolerance float64
	// InitialLambda is the starting damping factor (default 1e-3).
	InitialLambda float64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 200
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-12
	}
	if o.InitialLambda <= 0 {
		o.InitialLambda = 1e-3
	}
	return o
}

// Result reports a completed fit.
type Result struct {
	// Params are the fitted parameters.
	Params []float64
	// SSE is the residual sum of squares.
	SSE float64
	// RSquared is the coefficient of determination.
	RSquared float64
	// Iterations is the number of LM iterations performed.
	Iterations int
	// Converged reports whether the tolerance was reached before the
	// iteration budget was exhausted.
	Converged bool
}

// Errors returned by LevMar.
var (
	ErrNoData    = errors.New("fit: no observations")
	ErrBadGuess  = errors.New("fit: initial guess has non-finite residuals")
	ErrDiverged  = errors.New("fit: diverged")
	errBadBounds = errors.New("fit: bounds length mismatch")
)

// LevMar fits p.Model to the observations starting from guess, using the
// Levenberg–Marquardt algorithm with a forward-difference Jacobian.
func LevMar(p Problem, guess []float64, opts Options) (Result, error) {
	if len(p.X) == 0 || len(p.X) != len(p.Y) {
		return Result{}, ErrNoData
	}
	if p.Model == nil {
		return Result{}, errors.New("fit: nil model")
	}
	if p.Lower != nil && len(p.Lower) != len(guess) {
		return Result{}, errBadBounds
	}
	if p.Upper != nil && len(p.Upper) != len(guess) {
		return Result{}, errBadBounds
	}
	opts = opts.withDefaults()

	params := make([]float64, len(guess))
	copy(params, guess)
	clampParams(params, p.Lower, p.Upper)

	sse, ok := sumSquares(p, params)
	if !ok {
		return Result{}, ErrBadGuess
	}

	nParams := len(params)
	lambda := opts.InitialLambda
	res := Result{Params: params, SSE: sse}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		jac, residuals, ok := jacobian(p, params)
		if !ok {
			return res, ErrDiverged
		}

		// Normal equations: (JᵀJ + λ·diag(JᵀJ)) δ = Jᵀr
		jtj, err := NewMatrix(nParams, nParams)
		if err != nil {
			return res, err
		}
		jtr := make([]float64, nParams)
		for i := range p.X {
			for a := 0; a < nParams; a++ {
				jtr[a] += jac[i][a] * residuals[i]
				for b := a; b < nParams; b++ {
					jtj.Set(a, b, jtj.At(a, b)+jac[i][a]*jac[i][b])
				}
			}
		}
		for a := 0; a < nParams; a++ {
			for b := 0; b < a; b++ {
				jtj.Set(a, b, jtj.At(b, a))
			}
		}

		improved := false
		for attempt := 0; attempt < 30; attempt++ {
			damped := jtj.Clone()
			for a := 0; a < nParams; a++ {
				d := damped.At(a, a)
				if d == 0 {
					d = 1e-12
				}
				damped.Set(a, a, d*(1+lambda))
			}
			delta, err := SolveLinear(damped, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			trial := make([]float64, nParams)
			for a := range trial {
				trial[a] = params[a] + delta[a]
			}
			clampParams(trial, p.Lower, p.Upper)
			trialSSE, ok := sumSquares(p, trial)
			if ok && trialSSE < sse {
				rel := (sse - trialSSE) / math.Max(sse, 1e-300)
				params, sse = trial, trialSSE
				lambda = math.Max(lambda/10, 1e-12)
				improved = true
				if rel < opts.Tolerance {
					res.Converged = true
				}
				break
			}
			lambda *= 10
			if lambda > 1e12 {
				break
			}
		}
		res.Params, res.SSE = params, sse
		if !improved || res.Converged {
			res.Converged = true
			break
		}
	}

	preds := make([]float64, len(p.X))
	for i, x := range p.X {
		preds[i] = p.Model(x, params)
	}
	res.RSquared = RSquared(p.Y, preds)
	return res, nil
}

// MultiStart runs LevMar from each guess and returns the best result by SSE.
// It fails only if every start fails.
func MultiStart(p Problem, guesses [][]float64, opts Options) (Result, error) {
	if len(guesses) == 0 {
		return Result{}, errors.New("fit: no starting guesses")
	}
	var (
		best    Result
		haveAny bool
		lastErr error
	)
	for i, g := range guesses {
		r, err := LevMar(p, g, opts)
		if err != nil {
			lastErr = fmt.Errorf("fit: start %d: %w", i, err)
			continue
		}
		if !haveAny || r.SSE < best.SSE {
			best, haveAny = r, true
		}
	}
	if !haveAny {
		return Result{}, lastErr
	}
	return best, nil
}

// jacobian computes the forward-difference Jacobian and residual vector
// (y - f(x)). ok is false if any value is non-finite.
func jacobian(p Problem, params []float64) (jac [][]float64, residuals []float64, ok bool) {
	n := len(p.X)
	m := len(params)
	jac = make([][]float64, n)
	residuals = make([]float64, n)
	base := make([]float64, n)
	for i, x := range p.X {
		base[i] = p.Model(x, params)
		residuals[i] = p.Y[i] - base[i]
		if !isFinite(base[i]) {
			return nil, nil, false
		}
		jac[i] = make([]float64, m)
	}
	perturbed := make([]float64, m)
	for a := 0; a < m; a++ {
		copy(perturbed, params)
		h := 1e-7 * math.Max(math.Abs(params[a]), 1e-7)
		perturbed[a] += h
		for i, x := range p.X {
			v := p.Model(x, perturbed)
			if !isFinite(v) {
				return nil, nil, false
			}
			jac[i][a] = (v - base[i]) / h
		}
	}
	return jac, residuals, true
}

func sumSquares(p Problem, params []float64) (sse float64, ok bool) {
	for i, x := range p.X {
		d := p.Y[i] - p.Model(x, params)
		if !isFinite(d) {
			return 0, false
		}
		sse += d * d
	}
	return sse, true
}

func clampParams(params, lower, upper []float64) {
	for i := range params {
		if lower != nil && params[i] < lower[i] {
			params[i] = lower[i]
		}
		if upper != nil && params[i] > upper[i] {
			params[i] = upper[i]
		}
	}
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
