package policy

import (
	"fmt"
	"math"
)

// The deterministic evaluators: the decision procedures that used to be
// hand-coded inside internal/controller, now pure functions of (rules,
// observations) plus an explicit consecutive-low counter per tier. The
// controllers adapt Verdicts into their Action/Hold types one-to-one, so
// the reason codes and human-readable detail strings produced here ARE the
// audit log's contents — the equivalence tests pin them byte-identical to
// the pre-refactor output.

// Code is a machine-readable decision classification. The values are
// shared with internal/controller's ReasonCode (that package converts
// Codes verbatim), so a policy evaluator's output is directly comparable
// with historical audit logs.
type Code string

// Codes emitted by the evaluators.
const (
	CodeCrashReprovision Code = "crash-reprovision"
	CodeCPUHigh          Code = "cpu-high"
	CodeCPULowSustained  Code = "cpu-low-sustained"
	CodeTargetAbove      Code = "target-above"
	CodeTargetBelow      Code = "target-below"
	CodeNoDataHold       Code = "nodata-hold"
	CodeLaunchInFlight   Code = "launch-in-flight"
	CodeAtMaxServers     Code = "at-max-servers"
	CodeAtMinServers     Code = "at-min-servers"
	CodeMaxServersClamp  Code = "max-servers-clamp"
	CodeAwaitingLow      Code = "awaiting-consecutive-low"
	CodeSteady           Code = "steady"
	CodeTierUnseen       Code = "tier-unseen"
)

// TierObservation is one tier's monitoring aggregate for one control
// period — the evaluator's entire input for that tier.
type TierObservation struct {
	// Seen is false when the view carried no stats at all for the tier.
	Seen bool
	// Ready is the number of VMs serving traffic; Live additionally counts
	// VMs still provisioning.
	Ready, Live int
	// MeanCPU is the tier's mean utilization over the period.
	MeanCPU float64
	// Crashed counts serving VMs the hypervisor census reports dead.
	Crashed int
	// NoData marks a monitor-blackout period: the zero aggregates mean
	// "unknown", not "idle".
	NoData bool
}

// VerdictKind classifies an evaluator output.
type VerdictKind int

// Verdict kinds.
const (
	// VerdictHold is an explicit decision not to act, with a coded cause.
	VerdictHold VerdictKind = iota
	// VerdictScaleOut / VerdictScaleIn add or remove one VM.
	VerdictScaleOut
	VerdictScaleIn
)

// Verdict is one evaluator decision for one tier.
type Verdict struct {
	Kind VerdictKind
	Tier string
	Code Code
	// Reason is the human-readable justification (an action's reason or a
	// hold's detail).
	Reason string
}

// ScalingEvaluator evaluates ScalingRules against per-tier observations:
// the threshold VM-level policy ("quick start, slow turn off") with crash
// re-provisioning and blackout holds. It carries the consecutive-low
// counters between periods, which is its only state.
type ScalingEvaluator struct {
	rules  ScalingRules
	lowRun map[string]int
}

// NewScalingEvaluator validates the rules and returns a fresh evaluator.
func NewScalingEvaluator(rules ScalingRules) (*ScalingEvaluator, error) {
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	return &ScalingEvaluator{rules: rules, lowRun: make(map[string]int)}, nil
}

// Rules returns the evaluator's rule set.
func (e *ScalingEvaluator) Rules() ScalingRules { return e.rules }

// Evaluate returns the period's verdicts in tier order: scaling decisions
// plus a hold for every tier explicitly left alone, so inaction is as
// explainable as action.
func (e *ScalingEvaluator) Evaluate(obs map[string]TierObservation) []Verdict {
	var out []Verdict
	for _, tierName := range e.rules.ScalableTiers {
		ts := obs[tierName]
		if !ts.Seen {
			out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeTierUnseen})
			continue
		}
		// Dead capacity first: the hypervisor census is authoritative even
		// when monitoring is dark, and a crashed VM must be replaced now —
		// waiting for the survivors' CPU to climb costs a full control
		// period of degraded service per crash.
		if ts.Crashed > 0 {
			e.lowRun[tierName] = 0
			n := ts.Crashed
			if room := e.rules.MaxServers - ts.Live; n > room {
				n = room
			}
			for i := 0; i < n; i++ {
				out = append(out, Verdict{
					Kind: VerdictScaleOut,
					Tier: tierName,
					Code: CodeCrashReprovision,
					Reason: fmt.Sprintf("re-provision %d crashed VM(s) (census: %d serving)",
						ts.Crashed, ts.Ready),
				})
			}
			if n < ts.Crashed {
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeMaxServersClamp,
					Reason: fmt.Sprintf("%d of %d replacements dropped: %d live at max %d",
						ts.Crashed-n, ts.Crashed, ts.Live, e.rules.MaxServers)})
			}
			continue
		}
		// A blackout period carries no usable utilization signal: hold the
		// current topology rather than treat "no samples" as "0% CPU" and
		// start a spurious scale-in countdown on stale data.
		if ts.NoData {
			out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeNoDataHold,
				Reason: "no monitoring samples this period"})
			continue
		}
		switch {
		case ts.MeanCPU > e.rules.UpperCPU:
			e.lowRun[tierName] = 0
			// "Quick start": trigger on a single hot period — but never
			// stack launches while one VM is already provisioning.
			if ts.Live > ts.Ready {
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeLaunchInFlight,
					Reason: fmt.Sprintf("%d live > %d ready", ts.Live, ts.Ready)})
				continue
			}
			if ts.Live >= e.rules.MaxServers {
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeAtMaxServers,
					Reason: fmt.Sprintf("cpu %.0f%% high with %d live at max %d",
						ts.MeanCPU*100, ts.Live, e.rules.MaxServers)})
				continue
			}
			out = append(out, Verdict{
				Kind: VerdictScaleOut,
				Tier: tierName,
				Code: CodeCPUHigh,
				Reason: fmt.Sprintf("cpu %.0f%% > %.0f%% upper bound",
					ts.MeanCPU*100, e.rules.UpperCPU*100),
			})
		case ts.MeanCPU < e.rules.LowerCPU:
			// "Slow turn off": require consecutive quiet periods, and
			// never remove a VM while another change is in flight.
			if ts.Live != ts.Ready {
				e.lowRun[tierName] = 0
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeLaunchInFlight,
					Reason: fmt.Sprintf("%d live != %d ready", ts.Live, ts.Ready)})
				continue
			}
			e.lowRun[tierName]++
			if e.lowRun[tierName] < e.rules.LowerConsecutive {
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeAwaitingLow,
					Reason: fmt.Sprintf("quiet period %d of %d",
						e.lowRun[tierName], e.rules.LowerConsecutive)})
				continue
			}
			e.lowRun[tierName] = 0
			if ts.Ready <= e.rules.MinServers {
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeAtMinServers,
					Reason: fmt.Sprintf("%d ready at min %d", ts.Ready, e.rules.MinServers)})
				continue
			}
			out = append(out, Verdict{
				Kind: VerdictScaleIn,
				Tier: tierName,
				Code: CodeCPULowSustained,
				Reason: fmt.Sprintf("cpu < %.0f%% for %d consecutive periods",
					e.rules.LowerCPU*100, e.rules.LowerConsecutive),
			})
		default:
			e.lowRun[tierName] = 0
			out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeSteady})
		}
	}
	return out
}

// TargetEvaluator evaluates TargetRules plus the shared capacity bounds:
// the modern EC2 "target tracking" strategy. Each period it computes the
// capacity that would bring the tier's CPU to the setpoint,
//
//	desired = ceil(current · cpu / target)
//
// scaling out immediately and scaling in only after desired has stayed
// below current for LowerConsecutive periods.
type TargetEvaluator struct {
	rules  ScalingRules
	target float64
	lowRun map[string]int
}

// NewTargetEvaluator validates the rules and returns a fresh evaluator.
// target 0 selects the default setpoint of 0.6.
func NewTargetEvaluator(rules ScalingRules, target TargetRules) (*TargetEvaluator, error) {
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	setpoint := target.TargetCPU
	if setpoint == 0 {
		setpoint = 0.6
	}
	if err := (TargetRules{TargetCPU: setpoint}).Validate(); err != nil {
		return nil, err
	}
	return &TargetEvaluator{rules: rules, target: setpoint, lowRun: make(map[string]int)}, nil
}

// Target returns the effective CPU setpoint.
func (e *TargetEvaluator) Target() float64 { return e.target }

// Evaluate returns the period's verdicts in tier order.
func (e *TargetEvaluator) Evaluate(obs map[string]TierObservation) []Verdict {
	var out []Verdict
	for _, tierName := range e.rules.ScalableTiers {
		ts := obs[tierName]
		if !ts.Seen || ts.Ready == 0 {
			out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeTierUnseen})
			continue
		}
		if ts.NoData {
			out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeNoDataHold,
				Reason: "no monitoring samples this period"})
			continue
		}
		desired := int(math.Ceil(float64(ts.Ready) * ts.MeanCPU / e.target))
		if desired < e.rules.MinServers {
			desired = e.rules.MinServers
		}
		if desired > e.rules.MaxServers {
			desired = e.rules.MaxServers
		}
		switch {
		case desired > ts.Ready:
			e.lowRun[tierName] = 0
			// One launch per period, and none while a VM is provisioning —
			// the same pacing the threshold policy uses.
			if ts.Live > ts.Ready {
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeLaunchInFlight,
					Reason: fmt.Sprintf("%d live > %d ready", ts.Live, ts.Ready)})
				continue
			}
			if ts.Live >= e.rules.MaxServers {
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeAtMaxServers,
					Reason: fmt.Sprintf("want %d servers with %d live at max %d",
						desired, ts.Live, e.rules.MaxServers)})
				continue
			}
			out = append(out, Verdict{
				Kind: VerdictScaleOut,
				Tier: tierName,
				Code: CodeTargetAbove,
				Reason: fmt.Sprintf("target tracking: cpu %.0f%% wants %d servers (have %d)",
					ts.MeanCPU*100, desired, ts.Ready),
			})
		case desired < ts.Ready:
			if ts.Live != ts.Ready {
				e.lowRun[tierName] = 0
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeLaunchInFlight,
					Reason: fmt.Sprintf("%d live != %d ready", ts.Live, ts.Ready)})
				continue
			}
			e.lowRun[tierName]++
			if e.lowRun[tierName] < e.rules.LowerConsecutive {
				out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeAwaitingLow,
					Reason: fmt.Sprintf("quiet period %d of %d",
						e.lowRun[tierName], e.rules.LowerConsecutive)})
				continue
			}
			e.lowRun[tierName] = 0
			out = append(out, Verdict{
				Kind: VerdictScaleIn,
				Tier: tierName,
				Code: CodeTargetBelow,
				Reason: fmt.Sprintf("target tracking: cpu %.0f%% wants %d servers for %d periods",
					ts.MeanCPU*100, desired, e.rules.LowerConsecutive),
			})
		default:
			e.lowRun[tierName] = 0
			out = append(out, Verdict{Kind: VerdictHold, Tier: tierName, Code: CodeSteady})
		}
	}
	return out
}
