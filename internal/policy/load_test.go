package policy

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseRejectsUnknownFields(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		doc  string
		frag string // required fragment of the error text
	}{
		{
			name: "top-level-typo",
			doc:  `{"scalng": {}}`,
			frag: `unknown field "scalng"`,
		},
		{
			name: "nested-typo",
			doc:  `{"scaling": {"uperCPU": 0.8}}`,
			frag: `unknown field "uperCPU"`,
		},
		{
			name: "allocation-typo",
			doc:  `{"allocation": {"headrom": 1.5}}`,
			frag: `unknown field "headrom"`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("unknown field accepted")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err.Error(), tc.frag)
			}
			if !strings.HasPrefix(err.Error(), "policy: parse rules: ") {
				t.Errorf("error %q lacks the package prefix", err.Error())
			}
		})
	}
}

func TestParseRejectsTrailingGarbage(t *testing.T) {
	t.Parallel()
	data, err := Default().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Parse(append(data, []byte("{}")...))
	if err == nil {
		t.Fatal("trailing document accepted")
	}
	const want = "policy: parse rules: unexpected data after rules object"
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err.Error(), want)
	}
}

func TestParseRejectsMalformedJSON(t *testing.T) {
	t.Parallel()
	if _, err := Parse([]byte(`{"name": `)); err == nil {
		t.Fatal("truncated document accepted")
	}
}

func TestParseValidates(t *testing.T) {
	t.Parallel()
	// Structurally fine, semantically invalid: validation runs after decode.
	doc := `{"scaling": {"upperCPU": 2, "lowerCPU": 0.4, "lowerConsecutive": 3,
	  "minServers": 1, "maxServers": 10, "scalableTiers": ["app"]},
	  "allocation": {"headroom": 1, "webThreads": 1000,
	  "appThreadsFloor": 1, "dbConnsFloor": 1},
	  "targetTracking": {"targetCPU": 0.6}, "retry": {}}`
	_, err := Parse([]byte(doc))
	if !errors.Is(err, ErrBadRules) {
		t.Fatalf("err = %v, want ErrBadRules", err)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	r := Default()
	r.Name = "tuned"
	r.Scaling.UpperCPU = 0.75
	r.Retry = RetryRules{MaxAttempts: 3, BudgetRatio: 0.2, BudgetBurst: 10, Jitter: 0.1}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Errorf("loaded = %+v, want %+v", back, r)
	}
}

func TestLoadErrorsNameThePath(t *testing.T) {
	t.Parallel()
	_, err := Load(filepath.Join(t.TempDir(), "missing.json"))
	if err == nil {
		t.Fatal("missing file accepted")
	}
	if !strings.HasPrefix(err.Error(), "policy: ") {
		t.Errorf("error %q lacks the package prefix", err.Error())
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"nope": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(bad)
	if err == nil {
		t.Fatal("bad file accepted")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Errorf("error %q does not name the file %q", err.Error(), bad)
	}
}
