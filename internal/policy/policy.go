// Package policy is the declarative allocation-policy layer: every
// hand-tunable rule the controllers and the soft-resource planner used to
// hard-code — CPU thresholds with consecutive-window guards, capacity
// floors and ceilings, spare-headroom scaling, concurrency clamps,
// target-tracking setpoints and retry-budget knobs — expressed as typed
// rule structs that load from JSON, validate with actionable errors, and
// evaluate deterministically.
//
// The package is a leaf below internal/controller: the controllers consume
// Rules (and the evaluators in eval.go), never the other way around, so a
// policy file is sufficient to reconstruct a controller's entire decision
// surface. Default() reproduces the paper's §V-B parameters exactly; the
// checked-in policies/default.policy.json round-trips to Default() and is
// pinned byte-identical to the pre-refactor hand-coded behaviour by the
// equivalence tests in internal/experiments.
//
// Rules are also the search space of internal/autotune: every scalar field
// here is addressable by name as a tunable (see autotune.Knobs), which is
// what turns the controller from a fixed artifact into a searchable design
// space.
package policy

import (
	"errors"
	"fmt"
)

// ErrBadRules is returned for invalid rule sets.
var ErrBadRules = errors.New("policy: invalid rules")

// Rules is a complete declarative allocation policy: everything a
// controller consults that is not live monitoring data.
type Rules struct {
	// Name labels the policy in reports and autotune output.
	Name string `json:"name,omitempty"`
	// Scaling is the VM-level threshold rule set shared by the
	// EC2-AutoScale baseline and DCM.
	Scaling ScalingRules `json:"scaling"`
	// Allocation parameterizes the soft-resource planner (DCM's APP-agent).
	Allocation AllocationRules `json:"allocation"`
	// Target parameterizes the target-tracking baseline.
	Target TargetRules `json:"targetTracking"`
	// Retry adjusts the client retry policy on resilience-enabled runs.
	Retry RetryRules `json:"retry"`
	// Degrade parameterizes the self-healing overload controller
	// (internal/degrade): detector thresholds, hysteresis bands and
	// brownout actions. The zero value disables the layer entirely.
	Degrade DegradeRules `json:"degrade"`
}

// ScalingRules is the VM-level capacity rule set of §V-B: "quick start,
// slow turn off" thresholds plus per-tier server bounds.
type ScalingRules struct {
	// UpperCPU triggers scale-out when a tier's mean CPU exceeds it during
	// one control period (paper: 0.80).
	UpperCPU float64 `json:"upperCPU"`
	// LowerCPU and LowerConsecutive trigger scale-in when the tier's CPU
	// stays below LowerCPU for LowerConsecutive consecutive periods
	// (paper: 0.40 and 3).
	LowerCPU         float64 `json:"lowerCPU"`
	LowerConsecutive int     `json:"lowerConsecutive"`
	// MinServers and MaxServers bound each scalable tier's size (capacity
	// floor and ceiling).
	MinServers int `json:"minServers"`
	MaxServers int `json:"maxServers"`
	// ScalableTiers lists the tiers the VM level manages (paper: the
	// Tomcat and MySQL tiers; Apache is never scaled).
	ScalableTiers []string `json:"scalableTiers"`
}

// AllocationRules parameterizes the concurrency-aware planner: how the
// model-derived optimum N_b becomes pool sizes.
type AllocationRules struct {
	// Headroom scales the theoretical N_b up to a practical pool size
	// (§III-C's "not all threads will be in Active state"); 1.0 uses N_b
	// directly.
	Headroom float64 `json:"headroom"`
	// WebThreads is the fixed (generous) Apache pool size per web server;
	// Apache is never the concurrency-sensitive tier.
	WebThreads int `json:"webThreads"`
	// AppThreadsFloor and DBConnsFloor are the concurrency clamps: no pool
	// is ever set below these, so a degenerate model fit cannot starve a
	// tier completely (the audit log surfaces the clamp as
	// "concurrency-clamp").
	AppThreadsFloor int `json:"appThreadsFloor"`
	DBConnsFloor    int `json:"dbConnsFloor"`
	// AppThreadsCap and DBConnsCap are optional concurrency ceilings
	// (0 = uncapped): a guard against a runaway fit planning pools far past
	// anything the hardware can hold.
	AppThreadsCap int `json:"appThreadsCap,omitempty"`
	DBConnsCap    int `json:"dbConnsCap,omitempty"`
}

// TargetRules parameterizes the target-tracking baseline controller.
type TargetRules struct {
	// TargetCPU is the utilization setpoint in (0, 1) the controller sizes
	// capacity toward (default 0.6).
	TargetCPU float64 `json:"targetCPU"`
}

// RetryRules adjusts the client retry policy on resilience-enabled runs.
// The zero value keeps the run's preset untouched; a non-zero MaxAttempts
// replaces the preset's attempt/budget knobs wholesale so an autotuner can
// search them.
type RetryRules struct {
	// MaxAttempts is the total number of tries per request (1 = no
	// retries). 0 leaves the scenario's resilience preset untouched.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// BudgetRatio is the retry-budget refill ratio (retries allowed per
	// successful request); 0 disables the budget. BudgetBurst is the token
	// bucket's burst capacity.
	BudgetRatio float64 `json:"budgetRatio,omitempty"`
	BudgetBurst int     `json:"budgetBurst,omitempty"`
	// Jitter is the relative backoff jitter in [0, 1).
	Jitter float64 `json:"jitter,omitempty"`
}

// Override reports whether the rules replace a preset's retry knobs.
func (r RetryRules) Override() bool { return r.MaxAttempts > 0 }

// DegradeRules parameterizes the self-healing overload controller: when
// the online detectors call the system overloaded, how hard the brownout
// sheds, and how sticky the enter/exit hysteresis is. The zero value
// disables the layer (Enabled reports false) and is valid.
type DegradeRules struct {
	// PeriodSeconds is the detector tick interval (default 1 s).
	PeriodSeconds float64 `json:"periodSeconds,omitempty"`
	// WarmupSeconds suppresses detection for the run's first stretch so a
	// closed-loop startup burst is not mistaken for collapse (default 10 s).
	WarmupSeconds float64 `json:"warmupSeconds,omitempty"`
	// CollapseRatio is the goodput-vs-offered-load collapse threshold: a
	// tick is unhealthy when good/offered falls below it while at least
	// MinOfferedPerSecond requests were offered (guards the ratio against
	// idle-period noise).
	CollapseRatio       float64 `json:"collapseRatio,omitempty"`
	MinOfferedPerSecond float64 `json:"minOfferedPerSecond,omitempty"`
	// RetryAmplification flags a tick when retry attempts per completion
	// exceed it — the storm's load-multiplication signature.
	RetryAmplification float64 `json:"retryAmplification,omitempty"`
	// QueueGradient flags a tick when the mean queue depth grew by more
	// than this factor across the detector window — the metastable
	// backlog build-up.
	QueueGradient float64 `json:"queueGradient,omitempty"`
	// EnterTicks consecutive unhealthy ticks enter brownout; ExitTicks
	// consecutive healthy ticks (and at least MinDwellSeconds since entry)
	// exit it. The asymmetry plus the dwell floor is the anti-flap band.
	EnterTicks      int     `json:"enterTicks,omitempty"`
	ExitTicks       int     `json:"exitTicks,omitempty"`
	MinDwellSeconds float64 `json:"minDwellSeconds,omitempty"`
	// ShedRatio is the fraction of best-effort arrivals the brownout
	// sheds at the front door (critical classes are never shed).
	ShedRatio float64 `json:"shedRatio,omitempty"`
	// RetryBudgetScale multiplies the retry budget during brownout
	// (e.g. 0.25 quarters it); AdmissionScale multiplies every bounded
	// queue's admission cap. Both restore to 1.0 on exit.
	RetryBudgetScale float64 `json:"retryBudgetScale,omitempty"`
	AdmissionScale   float64 `json:"admissionScale,omitempty"`
}

// Enabled reports whether the rules turn the degrade layer on. Any
// detector threshold set makes the layer live; the zero value is off.
func (d DegradeRules) Enabled() bool {
	return d.CollapseRatio > 0 || d.RetryAmplification > 0 || d.QueueGradient > 0
}

// Default returns the rule set matching the paper's §V-B parameters and
// the planner's historical clamps — the policy the hand-coded controllers
// implemented before this package existed. ScalableTiers names the app
// and db tiers of internal/ntier.
func Default() Rules {
	return Rules{
		Name: "default",
		Scaling: ScalingRules{
			UpperCPU:         0.80,
			LowerCPU:         0.40,
			LowerConsecutive: 3,
			MinServers:       1,
			MaxServers:       10,
			ScalableTiers:    []string{"app", "db"},
		},
		Allocation: AllocationRules{
			Headroom:        1.0,
			WebThreads:      1000,
			AppThreadsFloor: 1,
			DBConnsFloor:    1,
		},
		Target: TargetRules{TargetCPU: 0.6},
		Degrade: DegradeRules{
			PeriodSeconds:       1,
			WarmupSeconds:       10,
			CollapseRatio:       0.6,
			MinOfferedPerSecond: 20,
			RetryAmplification:  1.5,
			QueueGradient:       2,
			EnterTicks:          3,
			ExitTicks:           5,
			MinDwellSeconds:     30,
			ShedRatio:           0.3,
			RetryBudgetScale:    0.25,
			AdmissionScale:      0.25,
		},
	}
}

// Validate rejects inconsistent rule sets with errors that name the
// offending field and its constraint.
func (r Rules) Validate() error {
	if err := r.Scaling.Validate(); err != nil {
		return err
	}
	if err := r.Allocation.Validate(); err != nil {
		return err
	}
	if err := r.Target.Validate(); err != nil {
		return err
	}
	if err := r.Retry.Validate(); err != nil {
		return err
	}
	return r.Degrade.Validate()
}

// Validate checks the VM-level thresholds and bounds.
func (s ScalingRules) Validate() error {
	switch {
	case s.UpperCPU <= 0 || s.UpperCPU > 1:
		return fmt.Errorf("%w: scaling.upperCPU %v outside (0, 1]", ErrBadRules, s.UpperCPU)
	case s.LowerCPU < 0 || s.LowerCPU >= s.UpperCPU:
		return fmt.Errorf("%w: scaling.lowerCPU %v must be in [0, upperCPU %v)", ErrBadRules, s.LowerCPU, s.UpperCPU)
	case s.LowerConsecutive < 1:
		return fmt.Errorf("%w: scaling.lowerConsecutive %d must be >= 1", ErrBadRules, s.LowerConsecutive)
	case s.MinServers < 1:
		return fmt.Errorf("%w: scaling.minServers %d must be >= 1", ErrBadRules, s.MinServers)
	case s.MaxServers < s.MinServers:
		return fmt.Errorf("%w: scaling.maxServers %d must be >= minServers %d", ErrBadRules, s.MaxServers, s.MinServers)
	case len(s.ScalableTiers) == 0:
		return fmt.Errorf("%w: scaling.scalableTiers must name at least one tier", ErrBadRules)
	}
	seen := make(map[string]bool, len(s.ScalableTiers))
	for _, tier := range s.ScalableTiers {
		if tier == "" {
			return fmt.Errorf("%w: scaling.scalableTiers contains an empty tier name", ErrBadRules)
		}
		if seen[tier] {
			return fmt.Errorf("%w: scaling.scalableTiers lists %q twice", ErrBadRules, tier)
		}
		seen[tier] = true
	}
	return nil
}

// Validate checks the planner parameters.
func (a AllocationRules) Validate() error {
	switch {
	case a.Headroom <= 0:
		return fmt.Errorf("%w: allocation.headroom %v must be > 0", ErrBadRules, a.Headroom)
	case a.WebThreads < 1:
		return fmt.Errorf("%w: allocation.webThreads %d must be >= 1", ErrBadRules, a.WebThreads)
	case a.AppThreadsFloor < 1:
		return fmt.Errorf("%w: allocation.appThreadsFloor %d must be >= 1", ErrBadRules, a.AppThreadsFloor)
	case a.DBConnsFloor < 1:
		return fmt.Errorf("%w: allocation.dbConnsFloor %d must be >= 1", ErrBadRules, a.DBConnsFloor)
	case a.AppThreadsCap < 0 || (a.AppThreadsCap > 0 && a.AppThreadsCap < a.AppThreadsFloor):
		return fmt.Errorf("%w: allocation.appThreadsCap %d must be 0 or >= appThreadsFloor %d",
			ErrBadRules, a.AppThreadsCap, a.AppThreadsFloor)
	case a.DBConnsCap < 0 || (a.DBConnsCap > 0 && a.DBConnsCap < a.DBConnsFloor):
		return fmt.Errorf("%w: allocation.dbConnsCap %d must be 0 or >= dbConnsFloor %d",
			ErrBadRules, a.DBConnsCap, a.DBConnsFloor)
	}
	return nil
}

// Validate checks the target-tracking setpoint.
func (t TargetRules) Validate() error {
	if t.TargetCPU <= 0 || t.TargetCPU >= 1 {
		return fmt.Errorf("%w: targetTracking.targetCPU %v outside (0, 1)", ErrBadRules, t.TargetCPU)
	}
	return nil
}

// Validate checks the retry knobs.
func (r RetryRules) Validate() error {
	switch {
	case r.MaxAttempts < 0:
		return fmt.Errorf("%w: retry.maxAttempts %d must be >= 0", ErrBadRules, r.MaxAttempts)
	case r.BudgetRatio < 0:
		return fmt.Errorf("%w: retry.budgetRatio %v must be >= 0", ErrBadRules, r.BudgetRatio)
	case r.BudgetBurst < 0:
		return fmt.Errorf("%w: retry.budgetBurst %d must be >= 0", ErrBadRules, r.BudgetBurst)
	case r.Jitter < 0 || r.Jitter >= 1:
		return fmt.Errorf("%w: retry.jitter %v outside [0, 1)", ErrBadRules, r.Jitter)
	}
	return nil
}

// Validate checks the degrade knobs. The zero value (layer disabled) is
// valid; once any detector is armed the hysteresis and action knobs must
// be coherent.
func (d DegradeRules) Validate() error {
	switch {
	case d.PeriodSeconds < 0:
		return fmt.Errorf("%w: degrade.periodSeconds %v must be >= 0", ErrBadRules, d.PeriodSeconds)
	case d.WarmupSeconds < 0:
		return fmt.Errorf("%w: degrade.warmupSeconds %v must be >= 0", ErrBadRules, d.WarmupSeconds)
	case d.CollapseRatio < 0 || d.CollapseRatio > 1:
		return fmt.Errorf("%w: degrade.collapseRatio %v outside [0, 1]", ErrBadRules, d.CollapseRatio)
	case d.MinOfferedPerSecond < 0:
		return fmt.Errorf("%w: degrade.minOfferedPerSecond %v must be >= 0", ErrBadRules, d.MinOfferedPerSecond)
	case d.RetryAmplification < 0:
		return fmt.Errorf("%w: degrade.retryAmplification %v must be >= 0", ErrBadRules, d.RetryAmplification)
	case d.QueueGradient < 0:
		return fmt.Errorf("%w: degrade.queueGradient %v must be >= 0", ErrBadRules, d.QueueGradient)
	case d.EnterTicks < 0:
		return fmt.Errorf("%w: degrade.enterTicks %d must be >= 0", ErrBadRules, d.EnterTicks)
	case d.ExitTicks < 0:
		return fmt.Errorf("%w: degrade.exitTicks %d must be >= 0", ErrBadRules, d.ExitTicks)
	case d.MinDwellSeconds < 0:
		return fmt.Errorf("%w: degrade.minDwellSeconds %v must be >= 0", ErrBadRules, d.MinDwellSeconds)
	case d.ShedRatio < 0 || d.ShedRatio > 1:
		return fmt.Errorf("%w: degrade.shedRatio %v outside [0, 1]", ErrBadRules, d.ShedRatio)
	case d.RetryBudgetScale < 0 || d.RetryBudgetScale > 1:
		return fmt.Errorf("%w: degrade.retryBudgetScale %v outside [0, 1]", ErrBadRules, d.RetryBudgetScale)
	case d.AdmissionScale < 0 || d.AdmissionScale > 1:
		return fmt.Errorf("%w: degrade.admissionScale %v outside [0, 1]", ErrBadRules, d.AdmissionScale)
	}
	if !d.Enabled() {
		return nil
	}
	switch {
	case d.PeriodSeconds == 0:
		return fmt.Errorf("%w: degrade.periodSeconds must be > 0 when a detector is armed", ErrBadRules)
	case d.EnterTicks == 0:
		return fmt.Errorf("%w: degrade.enterTicks must be >= 1 when a detector is armed", ErrBadRules)
	case d.ExitTicks == 0:
		return fmt.Errorf("%w: degrade.exitTicks must be >= 1 when a detector is armed", ErrBadRules)
	}
	return nil
}
