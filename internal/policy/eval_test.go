package policy

import (
	"reflect"
	"testing"
)

func scalingRules() ScalingRules { return Default().Scaling }

func TestScalingEvaluatorRejectsBadRules(t *testing.T) {
	t.Parallel()
	bad := scalingRules()
	bad.MinServers = 0
	if _, err := NewScalingEvaluator(bad); err == nil {
		t.Fatal("bad rules accepted")
	}
	if _, err := NewTargetEvaluator(bad, TargetRules{}); err == nil {
		t.Fatal("bad rules accepted by target evaluator")
	}
}

func TestScalingEvaluatorQuickStartSlowStop(t *testing.T) {
	t.Parallel()
	e, err := NewScalingEvaluator(scalingRules())
	if err != nil {
		t.Fatal(err)
	}
	hot := map[string]TierObservation{
		"app": {Seen: true, Ready: 1, Live: 1, MeanCPU: 0.95},
		"db":  {Seen: true, Ready: 1, Live: 1, MeanCPU: 0.5},
	}
	got := e.Evaluate(hot)
	want := []Verdict{
		{Kind: VerdictScaleOut, Tier: "app", Code: CodeCPUHigh,
			Reason: "cpu 95% > 80% upper bound"},
		{Kind: VerdictHold, Tier: "db", Code: CodeSteady},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("hot period verdicts = %+v, want %+v", got, want)
	}
	// Scale-in needs LowerConsecutive quiet periods: the first two hold.
	quiet := map[string]TierObservation{
		"app": {Seen: true, Ready: 2, Live: 2, MeanCPU: 0.1},
		"db":  {Seen: true, Ready: 1, Live: 1, MeanCPU: 0.5},
	}
	for i := 1; i < 3; i++ {
		vs := e.Evaluate(quiet)
		if vs[0].Code != CodeAwaitingLow {
			t.Fatalf("quiet period %d: code = %s, want %s", i, vs[0].Code, CodeAwaitingLow)
		}
	}
	vs := e.Evaluate(quiet)
	if vs[0].Kind != VerdictScaleIn || vs[0].Code != CodeCPULowSustained {
		t.Fatalf("third quiet period: %+v, want scale-in", vs[0])
	}
}

func TestScalingEvaluatorCrashAndBlackout(t *testing.T) {
	t.Parallel()
	rules := scalingRules()
	rules.MaxServers = 3
	e, err := NewScalingEvaluator(rules)
	if err != nil {
		t.Fatal(err)
	}
	obs := map[string]TierObservation{
		"app": {Seen: true, Ready: 1, Live: 2, Crashed: 2},
		"db":  {Seen: true, Ready: 1, Live: 1, NoData: true},
	}
	vs := e.Evaluate(obs)
	// MaxServers 3 with 2 live leaves room for one replacement; the second
	// is dropped with an explicit clamp hold, and the blackout tier holds.
	wantCodes := []Code{CodeCrashReprovision, CodeMaxServersClamp, CodeNoDataHold}
	if len(vs) != len(wantCodes) {
		t.Fatalf("verdicts = %+v, want codes %v", vs, wantCodes)
	}
	for i, c := range wantCodes {
		if vs[i].Code != c {
			t.Errorf("verdict %d code = %s, want %s", i, vs[i].Code, c)
		}
	}
}

func TestTargetEvaluatorSetpoint(t *testing.T) {
	t.Parallel()
	e, err := NewTargetEvaluator(scalingRules(), TargetRules{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Target() != 0.6 {
		t.Fatalf("default setpoint = %v, want 0.6", e.Target())
	}
	// cpu 0.9 at 2 ready → desired ceil(2·0.9/0.6) = 3 → scale out.
	obs := map[string]TierObservation{
		"app": {Seen: true, Ready: 2, Live: 2, MeanCPU: 0.9},
		"db":  {Seen: true, Ready: 1, Live: 1, MeanCPU: 0.6},
	}
	vs := e.Evaluate(obs)
	if vs[0].Kind != VerdictScaleOut || vs[0].Code != CodeTargetAbove {
		t.Fatalf("verdict = %+v, want target-above scale-out", vs[0])
	}
	if vs[1].Code != CodeSteady {
		t.Fatalf("db verdict = %+v, want steady", vs[1])
	}
	// An unseen or empty tier is held, never scaled.
	vs = e.Evaluate(map[string]TierObservation{})
	for _, v := range vs {
		if v.Code != CodeTierUnseen {
			t.Errorf("empty view verdict = %+v, want tier-unseen", v)
		}
	}
}
