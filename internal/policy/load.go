package policy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Policy files are JSON renderings of Rules:
//
//	{
//	  "name": "default",
//	  "scaling": {
//	    "upperCPU": 0.8, "lowerCPU": 0.4, "lowerConsecutive": 3,
//	    "minServers": 1, "maxServers": 10, "scalableTiers": ["app", "db"]
//	  },
//	  "allocation": {
//	    "headroom": 1, "webThreads": 1000,
//	    "appThreadsFloor": 1, "dbConnsFloor": 1
//	  },
//	  "targetTracking": {"targetCPU": 0.6},
//	  "retry": {}
//	}
//
// Decoding is strict — an unknown field anywhere is an error, matching the
// chaos-scenario convention: a typoed knob name ("uperCPU") must fail
// loudly, not silently leave the paper's default in force while the
// operator believes they changed it.

// Parse decodes and validates a JSON rule set.
func Parse(data []byte) (Rules, error) {
	var r Rules
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return Rules{}, fmt.Errorf("policy: parse rules: %w", err)
	}
	// Trailing garbage after the rules object is as suspicious as an
	// unknown field: two concatenated documents mean the file is not what
	// the author thinks it is.
	if dec.More() {
		return Rules{}, fmt.Errorf("policy: parse rules: unexpected data after rules object")
	}
	if err := r.Validate(); err != nil {
		return Rules{}, err
	}
	return r, nil
}

// Load reads and validates a JSON rule-set file.
func Load(path string) (Rules, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Rules{}, fmt.Errorf("policy: %w", err)
	}
	r, err := Parse(data)
	if err != nil {
		return Rules{}, fmt.Errorf("policy: %s: %w", path, err)
	}
	return r, nil
}

// Marshal renders the rules as indented JSON suitable for a policy file,
// with a trailing newline.
func (r Rules) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("policy: marshal rules: %w", err)
	}
	return append(data, '\n'), nil
}
