package policy

import (
	"errors"
	"reflect"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	t.Parallel()
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestDefaultRoundTrips(t *testing.T) {
	t.Parallel()
	data, err := Default().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, Default()) {
		t.Errorf("round trip = %+v, want %+v", back, Default())
	}
}

// TestValidateErrors pins the exact error text of every validation branch:
// the messages are operator-facing (they name the offending field and its
// constraint) and load-bearing for debuggability, so they are goldens.
func TestValidateErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name   string
		mutate func(*Rules)
		want   string
	}{
		{
			name:   "upper-cpu-zero",
			mutate: func(r *Rules) { r.Scaling.UpperCPU = 0 },
			want:   "policy: invalid rules: scaling.upperCPU 0 outside (0, 1]",
		},
		{
			name:   "upper-cpu-above-one",
			mutate: func(r *Rules) { r.Scaling.UpperCPU = 1.2 },
			want:   "policy: invalid rules: scaling.upperCPU 1.2 outside (0, 1]",
		},
		{
			name:   "lower-cpu-negative",
			mutate: func(r *Rules) { r.Scaling.LowerCPU = -0.1 },
			want:   "policy: invalid rules: scaling.lowerCPU -0.1 must be in [0, upperCPU 0.8)",
		},
		{
			name:   "lower-cpu-crosses-upper",
			mutate: func(r *Rules) { r.Scaling.LowerCPU = 0.9 },
			want:   "policy: invalid rules: scaling.lowerCPU 0.9 must be in [0, upperCPU 0.8)",
		},
		{
			name:   "lower-consecutive",
			mutate: func(r *Rules) { r.Scaling.LowerConsecutive = 0 },
			want:   "policy: invalid rules: scaling.lowerConsecutive 0 must be >= 1",
		},
		{
			name:   "min-servers",
			mutate: func(r *Rules) { r.Scaling.MinServers = 0 },
			want:   "policy: invalid rules: scaling.minServers 0 must be >= 1",
		},
		{
			name:   "max-below-min",
			mutate: func(r *Rules) { r.Scaling.MaxServers = 0 },
			want:   "policy: invalid rules: scaling.maxServers 0 must be >= minServers 1",
		},
		{
			name:   "no-tiers",
			mutate: func(r *Rules) { r.Scaling.ScalableTiers = nil },
			want:   "policy: invalid rules: scaling.scalableTiers must name at least one tier",
		},
		{
			name:   "empty-tier-name",
			mutate: func(r *Rules) { r.Scaling.ScalableTiers = []string{"app", ""} },
			want:   "policy: invalid rules: scaling.scalableTiers contains an empty tier name",
		},
		{
			name:   "duplicate-tier",
			mutate: func(r *Rules) { r.Scaling.ScalableTiers = []string{"app", "app"} },
			want:   `policy: invalid rules: scaling.scalableTiers lists "app" twice`,
		},
		{
			name:   "headroom",
			mutate: func(r *Rules) { r.Allocation.Headroom = 0 },
			want:   "policy: invalid rules: allocation.headroom 0 must be > 0",
		},
		{
			name:   "web-threads",
			mutate: func(r *Rules) { r.Allocation.WebThreads = 0 },
			want:   "policy: invalid rules: allocation.webThreads 0 must be >= 1",
		},
		{
			name:   "app-floor",
			mutate: func(r *Rules) { r.Allocation.AppThreadsFloor = 0 },
			want:   "policy: invalid rules: allocation.appThreadsFloor 0 must be >= 1",
		},
		{
			name:   "db-floor",
			mutate: func(r *Rules) { r.Allocation.DBConnsFloor = 0 },
			want:   "policy: invalid rules: allocation.dbConnsFloor 0 must be >= 1",
		},
		{
			name: "app-cap-below-floor",
			mutate: func(r *Rules) {
				r.Allocation.AppThreadsFloor = 4
				r.Allocation.AppThreadsCap = 2
			},
			want: "policy: invalid rules: allocation.appThreadsCap 2 must be 0 or >= appThreadsFloor 4",
		},
		{
			name:   "db-cap-below-floor",
			mutate: func(r *Rules) { r.Allocation.DBConnsCap = -1 },
			want:   "policy: invalid rules: allocation.dbConnsCap -1 must be 0 or >= dbConnsFloor 1",
		},
		{
			name:   "target-cpu",
			mutate: func(r *Rules) { r.Target.TargetCPU = 1 },
			want:   "policy: invalid rules: targetTracking.targetCPU 1 outside (0, 1)",
		},
		{
			name:   "retry-attempts",
			mutate: func(r *Rules) { r.Retry.MaxAttempts = -1 },
			want:   "policy: invalid rules: retry.maxAttempts -1 must be >= 0",
		},
		{
			name:   "retry-budget-ratio",
			mutate: func(r *Rules) { r.Retry.BudgetRatio = -0.5 },
			want:   "policy: invalid rules: retry.budgetRatio -0.5 must be >= 0",
		},
		{
			name:   "retry-budget-burst",
			mutate: func(r *Rules) { r.Retry.BudgetBurst = -1 },
			want:   "policy: invalid rules: retry.budgetBurst -1 must be >= 0",
		},
		{
			name:   "retry-jitter",
			mutate: func(r *Rules) { r.Retry.Jitter = 1 },
			want:   "policy: invalid rules: retry.jitter 1 outside [0, 1)",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			r := Default()
			tc.mutate(&r)
			err := r.Validate()
			if err == nil {
				t.Fatal("invalid rules accepted")
			}
			if !errors.Is(err, ErrBadRules) {
				t.Errorf("error %v does not wrap ErrBadRules", err)
			}
			if err.Error() != tc.want {
				t.Errorf("error = %q, want %q", err.Error(), tc.want)
			}
		})
	}
}

func TestRetryOverride(t *testing.T) {
	t.Parallel()
	if (RetryRules{}).Override() {
		t.Error("zero retry rules claim to override")
	}
	if !(RetryRules{MaxAttempts: 3}).Override() {
		t.Error("non-zero MaxAttempts does not override")
	}
}
