package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ClassDispositions tallies request dispositions for a fixed set of
// traffic classes. The class set is frozen at construction and indexed by
// position, so the hot path is an array index — no map lookups, no
// allocations — and every rendering of the tally is in deterministic
// (construction) order. A nil *ClassDispositions is a valid receiver for
// every method and does nothing, mirroring the tracer convention: the
// class-free flow pays one nil check.
type ClassDispositions struct {
	names  []string
	counts []DispositionCounts
}

// NewClassDispositions returns a tally over the given classes (nil when
// names is empty, so the class-free flow stays on the nil fast path).
func NewClassDispositions(names []string) *ClassDispositions {
	if len(names) == 0 {
		return nil
	}
	c := &ClassDispositions{
		names:  make([]string, len(names)),
		counts: make([]DispositionCounts, len(names)),
	}
	copy(c.names, names)
	return c
}

// Len returns the number of classes (0 for nil).
func (c *ClassDispositions) Len() int {
	if c == nil {
		return 0
	}
	return len(c.names)
}

// Name returns the i-th class name ("" when out of range).
func (c *ClassDispositions) Name(i int) string {
	if c == nil || i < 0 || i >= len(c.names) {
		return ""
	}
	return c.names[i]
}

// Observe tallies one outcome for class i. Out-of-range classes and nil
// receivers are no-ops, so producers never have to guard the call.
func (c *ClassDispositions) Observe(class int, d Disposition) {
	if c == nil || class < 0 || class >= len(c.counts) {
		return
	}
	c.counts[class].Observe(d)
}

// Counts returns class i's tally (zero value when out of range).
func (c *ClassDispositions) Counts(i int) DispositionCounts {
	if c == nil || i < 0 || i >= len(c.counts) {
		return DispositionCounts{}
	}
	return c.counts[i]
}

// Aggregate sums the per-class tallies.
func (c *ClassDispositions) Aggregate() DispositionCounts {
	var out DispositionCounts
	if c == nil {
		return out
	}
	for i := range c.counts {
		out.Add(c.counts[i])
	}
	return out
}

// CheckConservation verifies the per-class split against an independently
// maintained whole-system tally: summed per-class counts must equal the
// total in every disposition, so no classified request is double-counted
// or lost. unclassed is the tally of requests injected without a class
// (the single-class flow) and participates in the sum.
func (c *ClassDispositions) CheckConservation(unclassed, total DispositionCounts) error {
	sum := c.Aggregate()
	sum.Add(unclassed)
	if sum != total {
		return fmt.Errorf("metrics: per-class dispositions %+v != system tally %+v", sum, total)
	}
	return nil
}

// MarshalJSON renders the tally as an object keyed by class name, in
// class order.
func (c *ClassDispositions) MarshalJSON() ([]byte, error) {
	if c == nil {
		return []byte("null"), nil
	}
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, name := range c.names {
		if i > 0 {
			buf.WriteByte(',')
		}
		key, err := json.Marshal(name)
		if err != nil {
			return nil, err
		}
		val, err := json.Marshal(c.counts[i])
		if err != nil {
			return nil, err
		}
		buf.Write(key)
		buf.WriteByte(':')
		buf.Write(val)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}
