package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAppendAndWindow(t *testing.T) {
	t.Parallel()
	s := NewSeries("tp")
	for i := 0; i < 10; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	w := s.Window(3*time.Second, 6*time.Second)
	if len(w) != 3 {
		t.Fatalf("window size = %d, want 3", len(w))
	}
	if w[0].Value != 3 || w[2].Value != 5 {
		t.Fatalf("window = %v", w)
	}
}

func TestSeriesWindowHalfOpen(t *testing.T) {
	t.Parallel()
	s := NewSeries("x")
	s.Append(time.Second, 1)
	s.Append(2*time.Second, 2)
	w := s.Window(time.Second, 2*time.Second)
	if len(w) != 1 || w[0].Value != 1 {
		t.Fatalf("half-open window wrong: %v", w)
	}
}

func TestSeriesOutOfOrderClamped(t *testing.T) {
	t.Parallel()
	s := NewSeries("x")
	s.Append(5*time.Second, 1)
	s.Append(3*time.Second, 2) // out of order
	if s.At(1).At != 5*time.Second {
		t.Fatalf("out-of-order sample not clamped: %v", s.At(1))
	}
}

func TestSeriesGrow(t *testing.T) {
	t.Parallel()
	s := NewSeries("x")
	s.Append(time.Second, 1)
	s.Grow(999)
	if s.Len() != 1 || s.At(0).Value != 1 {
		t.Fatalf("Grow changed contents: len=%d", s.Len())
	}
	// All 999 reserved appends must reuse the grown buffer.
	grown := s.samples[:1]
	for i := 0; i < 999; i++ {
		s.Append(time.Duration(i+2)*time.Second, float64(i))
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
	if &grown[0] != &s.samples[0] {
		t.Fatal("Append reallocated despite Grow reservation")
	}
	s.Grow(0)
	s.Grow(-5) // no-ops
	if s.Len() != 1000 {
		t.Fatalf("Len after no-op Grow = %d", s.Len())
	}
}

func TestSeriesLast(t *testing.T) {
	t.Parallel()
	s := NewSeries("x")
	if _, ok := s.Last(); ok {
		t.Fatal("empty series reported a last sample")
	}
	s.Append(time.Second, 42)
	last, ok := s.Last()
	if !ok || last.Value != 42 {
		t.Fatalf("Last = %v, %v", last, ok)
	}
}

func TestSeriesSamplesIsCopy(t *testing.T) {
	t.Parallel()
	s := NewSeries("x")
	s.Append(time.Second, 1)
	got := s.Samples()
	got[0].Value = 99
	if s.At(0).Value != 1 {
		t.Fatal("Samples returned a view into internal state")
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	sum := Summarize([]float64{1, 2, 3, 4, 5})
	if sum.Count != 5 || sum.Mean != 3 || sum.Min != 1 || sum.Max != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.P50 != 3 {
		t.Fatalf("P50 = %v", sum.P50)
	}
	if math.Abs(sum.Stddev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("Stddev = %v", sum.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	t.Parallel()
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	t.Parallel()
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input reordered: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	t.Parallel()
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {-0.5, 10}, {1.5, 40},
		{0.5, 25}, // interpolated
		{1.0 / 3.0, 20},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(empty) = %v", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	t.Parallel()
	prop := func(vals []float64, a, b float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		sort.Float64s(vals)
		pa := math.Mod(math.Abs(a), 1)
		pb := math.Mod(math.Abs(b), 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(vals, pa) <= Percentile(vals, pb)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterDelta(t *testing.T) {
	t.Parallel()
	var c Counter
	c.Inc(5)
	c.Inc(3)
	if c.Total() != 8 {
		t.Fatalf("Total = %d", c.Total())
	}
	if d := c.TakeDelta(); d != 8 {
		t.Fatalf("first delta = %d", d)
	}
	c.Inc(2)
	if d := c.TakeDelta(); d != 2 {
		t.Fatalf("second delta = %d", d)
	}
	if d := c.TakeDelta(); d != 0 {
		t.Fatalf("empty delta = %d", d)
	}
}

func TestMeanAccumulator(t *testing.T) {
	t.Parallel()
	var m MeanAccumulator
	if _, ok := m.TakeMean(); ok {
		t.Fatal("empty accumulator reported a mean")
	}
	m.Observe(2)
	m.Observe(4)
	mean, ok := m.TakeMean()
	if !ok || mean != 3 {
		t.Fatalf("mean = %v, %v", mean, ok)
	}
	if _, ok := m.TakeMean(); ok {
		t.Fatal("accumulator not reset")
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	t.Parallel()
	var w TimeWeighted
	w.Set(0, 10)             // value 10 for 2s
	w.Set(2*time.Second, 20) // value 20 for 2s
	avg := w.TakeAverage(4 * time.Second)
	if math.Abs(avg-15) > 1e-9 {
		t.Fatalf("avg = %v, want 15", avg)
	}
	// New interval: value stays 20 for 1s.
	avg = w.TakeAverage(5 * time.Second)
	if math.Abs(avg-20) > 1e-9 {
		t.Fatalf("second avg = %v, want 20", avg)
	}
}

func TestTimeWeightedZeroInterval(t *testing.T) {
	t.Parallel()
	var w TimeWeighted
	w.Set(0, 7)
	if avg := w.TakeAverage(0); avg != 7 {
		t.Fatalf("zero-interval avg = %v, want current value", avg)
	}
}

func TestBusyTracker(t *testing.T) {
	t.Parallel()
	var b BusyTracker
	b.Enter(0)
	b.Exit(2 * time.Second) // busy 2s of 10s
	u := b.TakeUtilization(10 * time.Second)
	if math.Abs(u-0.2) > 1e-9 {
		t.Fatalf("util = %v, want 0.2", u)
	}
}

func TestBusyTrackerNested(t *testing.T) {
	t.Parallel()
	var b BusyTracker
	b.Enter(0)
	b.Enter(time.Second)
	b.Exit(2 * time.Second)
	if !b.Busy() {
		t.Fatal("tracker idle while one unit still active")
	}
	b.Exit(3 * time.Second)
	u := b.TakeUtilization(4 * time.Second)
	if math.Abs(u-0.75) > 1e-9 {
		t.Fatalf("util = %v, want 0.75", u)
	}
}

func TestBusyTrackerSpansInterval(t *testing.T) {
	t.Parallel()
	var b BusyTracker
	b.Enter(0)
	u := b.TakeUtilization(4 * time.Second)
	if math.Abs(u-1) > 1e-9 {
		t.Fatalf("util = %v, want 1 while busy across boundary", u)
	}
	b.Exit(6 * time.Second) // busy 2s of next 4s interval
	u = b.TakeUtilization(8 * time.Second)
	if math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("second util = %v, want 0.5", u)
	}
}

func TestBusyTrackerUnbalancedExit(t *testing.T) {
	t.Parallel()
	var b BusyTracker
	b.Exit(time.Second) // must not underflow
	if b.Busy() {
		t.Fatal("tracker busy after unbalanced exit")
	}
	u := b.TakeUtilization(2 * time.Second)
	if u != 0 {
		t.Fatalf("util = %v, want 0", u)
	}
}

func TestBusyTrackerUtilizationClamped(t *testing.T) {
	t.Parallel()
	prop := func(spansRaw []uint8) bool {
		var b BusyTracker
		now := time.Duration(0)
		for _, s := range spansRaw {
			b.Enter(now)
			now += time.Duration(s%10) * time.Millisecond
			b.Exit(now)
			now += time.Millisecond
		}
		u := b.TakeUtilization(now)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	t.Parallel()
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b") // short row padded
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "value") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3", len(lines))
	}
}

func TestSummaryString(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "n=3") {
		t.Fatalf("Summary.String() = %q", str)
	}
}
