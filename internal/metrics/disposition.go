package metrics

import "fmt"

// Request dispositions: the first-class outcome taxonomy of the resilience
// layer. Every request leaving the system is classified exactly once —
// succeeded, errored (crash or no backend), timed out against its deadline,
// rejected by a bounded queue, shed by the CoDel queue-delay shedder, or
// refused by an open circuit breaker. Keeping the taxonomy here (rather
// than in the packages that produce outcomes) lets server, connpool, ntier
// and the experiment reports all speak the same vocabulary.

// Disposition classifies how a request left the system.
type Disposition string

// The disposition vocabulary. DispositionOK is the empty string so the
// zero value of callback parameters means "granted / succeeded" and the
// disabled resilience path never has to spell a disposition out.
const (
	// DispositionOK: the request completed successfully.
	DispositionOK Disposition = ""
	// DispositionError: infrastructure failure — no backend available, or
	// the server crashed mid-request.
	DispositionError Disposition = "error"
	// DispositionTimeout: the request's deadline expired before it
	// completed.
	DispositionTimeout Disposition = "timeout"
	// DispositionRejected: a bounded admission queue was full.
	DispositionRejected Disposition = "rejected"
	// DispositionShed: the CoDel shedder dropped the request because queue
	// delay stayed above target for a full interval.
	DispositionShed Disposition = "shed"
	// DispositionBreakerOpen: every candidate backend's circuit breaker was
	// open.
	DispositionBreakerOpen Disposition = "breaker-open"
)

// String returns a human-readable name ("ok" for the zero value).
func (d Disposition) String() string {
	if d == DispositionOK {
		return "ok"
	}
	return string(d)
}

// DispositionCounts tallies request outcomes by disposition.
type DispositionCounts struct {
	OK          uint64 `json:"ok"`
	Errored     uint64 `json:"errored,omitempty"`
	TimedOut    uint64 `json:"timedOut,omitempty"`
	Rejected    uint64 `json:"rejected,omitempty"`
	Shed        uint64 `json:"shed,omitempty"`
	BreakerOpen uint64 `json:"breakerOpen,omitempty"`
}

// Observe tallies one outcome. Unknown dispositions count as errors so a
// new producer can never silently vanish from the totals.
func (c *DispositionCounts) Observe(d Disposition) {
	switch d {
	case DispositionOK:
		c.OK++
	case DispositionTimeout:
		c.TimedOut++
	case DispositionRejected:
		c.Rejected++
	case DispositionShed:
		c.Shed++
	case DispositionBreakerOpen:
		c.BreakerOpen++
	default:
		c.Errored++
	}
}

// Add accumulates other into c.
func (c *DispositionCounts) Add(other DispositionCounts) {
	c.OK += other.OK
	c.Errored += other.Errored
	c.TimedOut += other.TimedOut
	c.Rejected += other.Rejected
	c.Shed += other.Shed
	c.BreakerOpen += other.BreakerOpen
}

// Total returns the number of classified requests.
func (c DispositionCounts) Total() uint64 {
	return c.OK + c.Failed()
}

// Failed returns the number of requests that did not complete successfully.
func (c DispositionCounts) Failed() uint64 {
	return c.Errored + c.TimedOut + c.Rejected + c.Shed + c.BreakerOpen
}

// CheckConsistent verifies the taxonomy against independently tracked
// completion and failure totals: every completed request must be an OK
// disposition and every failure exactly one failed disposition, so
// OK == completed, Failed() == failed and Total() == completed + failed.
// It returns a descriptive error on the first mismatch, nil when the
// metrics-layer conservation law holds.
func (c DispositionCounts) CheckConsistent(completed, failed uint64) error {
	if c.OK != completed {
		return fmt.Errorf("metrics: %d ok dispositions != %d completions", c.OK, completed)
	}
	if got := c.Failed(); got != failed {
		return fmt.Errorf("metrics: %d failed dispositions != %d failures", got, failed)
	}
	if got, want := c.Total(), completed+failed; got != want {
		return fmt.Errorf("metrics: disposition total %d != %d completions+failures", got, want)
	}
	return nil
}
