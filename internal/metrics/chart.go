package metrics

import (
	"fmt"
	"math"
	"strings"
)

// sparkTicks are the eighth-block characters used by Sparkline.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single-line Unicode sparkline scaled to
// [min, max]. width caps the number of cells (0 keeps one cell per value);
// longer series are downsampled by taking the maximum of each bucket so
// spikes stay visible.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	vals := downsampleMax(values, width)
	lo, hi := minMax(vals)
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkTicks) {
			idx = len(sparkTicks) - 1
		}
		b.WriteRune(sparkTicks[idx])
	}
	return b.String()
}

// Chart renders values as a column chart of the given height with a
// labeled y-axis — enough to see the shape of a Fig. 5 series in a
// terminal. width caps the number of columns (downsampled by bucket
// maximum); height is the number of rows (minimum 2).
func Chart(title string, values []float64, width, height int) string {
	if len(values) == 0 {
		return title + ": (no data)\n"
	}
	if height < 2 {
		height = 2
	}
	vals := downsampleMax(values, width)
	lo, hi := minMax(vals)
	if hi == lo {
		hi = lo + 1
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteString("\n")
	}
	labelWidth := 0
	labels := make([]string, height)
	for row := 0; row < height; row++ {
		frac := float64(height-1-row) / float64(height-1)
		labels[row] = fmt.Sprintf("%.3g", lo+frac*(hi-lo))
		if len(labels[row]) > labelWidth {
			labelWidth = len(labels[row])
		}
	}
	for row := 0; row < height; row++ {
		b.WriteString(strings.Repeat(" ", labelWidth-len(labels[row])))
		b.WriteString(labels[row])
		b.WriteString(" ┤")
		threshold := float64(height-1-row) / float64(height)
		for _, v := range vals {
			norm := (v - lo) / (hi - lo)
			if norm > threshold {
				b.WriteString("█")
			} else if norm > threshold-0.5/float64(height) {
				b.WriteString("▄")
			} else {
				b.WriteString(" ")
			}
		}
		b.WriteString("\n")
	}
	b.WriteString(strings.Repeat(" ", labelWidth+1))
	b.WriteString("└")
	b.WriteString(strings.Repeat("─", len(vals)))
	b.WriteString("\n")
	return b.String()
}

// downsampleMax buckets values into at most width cells, keeping each
// bucket's maximum. width <= 0 returns a copy.
func downsampleMax(values []float64, width int) []float64 {
	if width <= 0 || len(values) <= width {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, width)
	for i := range out {
		start := i * len(values) / width
		end := (i + 1) * len(values) / width
		if end <= start {
			end = start + 1
		}
		m := math.Inf(-1)
		for _, v := range values[start:end] {
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out
}

func minMax(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
