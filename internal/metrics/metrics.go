// Package metrics provides the time-series primitives used by the
// fine-grained resource monitor: append-only series of timestamped samples,
// windowed aggregation, and percentile summaries.
//
// The package is deliberately simulation-agnostic — timestamps are plain
// time.Duration offsets — so it is equally usable for recording real
// wall-clock measurements.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is one timestamped observation.
type Sample struct {
	At    time.Duration `json:"at"`
	Value float64       `json:"value"`
}

// Series is an append-only sequence of samples ordered by time. The zero
// value is an empty series ready for use.
type Series struct {
	name    string
	samples []Sample
	clamped uint64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{name: name}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Grow pre-sizes the series for at least n additional samples, so a
// recorder that knows its sampling rate and horizon up front (one sample
// per control period, say) appends without reallocating mid-run.
func (s *Series) Grow(n int) {
	if n <= 0 {
		return
	}
	if free := cap(s.samples) - len(s.samples); free < n {
		grown := make([]Sample, len(s.samples), len(s.samples)+n)
		copy(grown, s.samples)
		s.samples = grown
	}
}

// Append adds a sample. Samples must be appended in non-decreasing time
// order; out-of-order appends are clamped to the last timestamp so the
// series stays sorted (a monitor never produces them, but a defensive
// caller should not corrupt query results). Each clamp is counted and
// reported by Clamped, so ordering bugs upstream stay visible instead of
// being silently absorbed.
func (s *Series) Append(at time.Duration, v float64) {
	if n := len(s.samples); n > 0 && at < s.samples[n-1].At {
		at = s.samples[n-1].At
		s.clamped++
	}
	s.samples = append(s.samples, Sample{At: at, Value: v})
}

// Clamped returns the number of appends whose timestamp was out of order
// and had to be clamped to keep the series sorted. A non-zero count means
// the producer delivered samples out of time order.
func (s *Series) Clamped() uint64 { return s.clamped }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// At returns the i-th sample.
func (s *Series) At(i int) Sample { return s.samples[i] }

// Samples returns a copy of all samples.
func (s *Series) Samples() []Sample {
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Last returns the most recent sample and whether one exists.
func (s *Series) Last() (Sample, bool) {
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// Window returns the samples with from <= At < to.
func (s *Series) Window(from, to time.Duration) []Sample {
	lo := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At >= from })
	hi := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At >= to })
	out := make([]Sample, hi-lo)
	copy(out, s.samples[lo:hi])
	return out
}

// WindowValues returns just the values with from <= At < to.
func (s *Series) WindowValues(from, to time.Duration) []float64 {
	w := s.Window(from, to)
	out := make([]float64, len(w))
	for i, sm := range w {
		out[i] = sm.Value
	}
	return out
}

// Summary describes a set of observations.
type Summary struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// Summarize computes a Summary over values. An empty input yields a zero
// Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)

	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Stddev: math.Sqrt(variance),
		P50:    Percentile(sorted, 0.50),
		P90:    Percentile(sorted, 0.90),
		P95:    Percentile(sorted, 0.95),
		P99:    Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of sorted using linear
// interpolation between closest ranks. sorted must be ascending; an empty
// slice yields 0.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	rank := p * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		s.Count, s.Mean, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Counter is a monotonically increasing count with interval deltas, used to
// derive throughput from completion counts.
type Counter struct {
	total     uint64
	lastTotal uint64
}

// Inc adds n to the counter.
func (c *Counter) Inc(n uint64) { c.total += n }

// Total returns the lifetime count.
func (c *Counter) Total() uint64 { return c.total }

// TakeDelta returns the count accumulated since the previous TakeDelta call
// (or since creation) and starts a new interval.
func (c *Counter) TakeDelta() uint64 {
	d := c.total - c.lastTotal
	c.lastTotal = c.total
	return d
}

// MeanAccumulator accumulates values and reports interval means, used for
// per-control-period response-time and concurrency averages.
type MeanAccumulator struct {
	sum   float64
	count int
}

// Observe adds one value.
func (m *MeanAccumulator) Observe(v float64) {
	m.sum += v
	m.count++
}

// TakeMean returns the mean of values observed since the last TakeMean and
// resets the interval. It reports ok=false when no values were observed.
func (m *MeanAccumulator) TakeMean() (mean float64, ok bool) {
	if m.count == 0 {
		return 0, false
	}
	mean = m.sum / float64(m.count)
	m.sum, m.count = 0, 0
	return mean, true
}

// TimeWeighted tracks the time-weighted average of a step function, e.g.
// the number of active threads in a server.
type TimeWeighted struct {
	value    float64
	since    time.Duration
	area     float64 // integral of value over time, in value·seconds
	areaFrom time.Duration
}

// Set records that the tracked quantity changed to v at time now.
func (w *TimeWeighted) Set(now time.Duration, v float64) {
	w.area += w.value * (now - w.since).Seconds()
	w.value = v
	w.since = now
}

// Value returns the current value of the step function.
func (w *TimeWeighted) Value() float64 { return w.value }

// TakeAverage returns the time-weighted average over [areaFrom, now) and
// starts a new averaging interval. A zero-length interval yields the
// current value.
func (w *TimeWeighted) TakeAverage(now time.Duration) float64 {
	w.area += w.value * (now - w.since).Seconds()
	w.since = now
	dur := (now - w.areaFrom).Seconds()
	avg := w.value
	if dur > 0 {
		avg = w.area / dur
	}
	w.area = 0
	w.areaFrom = now
	return avg
}

// BusyTracker measures the fraction of time a resource was busy, e.g. a
// simulated CPU. The resource is busy while the nesting count is positive.
type BusyTracker struct {
	nesting  int
	busyAt   time.Duration
	busy     time.Duration
	from     time.Duration
	lastSeen time.Duration
}

// Enter marks one unit of work starting at time now.
func (b *BusyTracker) Enter(now time.Duration) {
	b.lastSeen = now
	if b.nesting == 0 {
		b.busyAt = now
	}
	b.nesting++
}

// Exit marks one unit of work ending at time now. Unbalanced Exits are
// clamped at zero.
func (b *BusyTracker) Exit(now time.Duration) {
	b.lastSeen = now
	if b.nesting == 0 {
		return
	}
	b.nesting--
	if b.nesting == 0 {
		b.busy += now - b.busyAt
	}
}

// Busy reports whether the resource is busy now.
func (b *BusyTracker) Busy() bool { return b.nesting > 0 }

// TakeUtilization returns the busy fraction over [from, now) and starts a
// new measurement interval. The result is clamped to [0, 1].
func (b *BusyTracker) TakeUtilization(now time.Duration) float64 {
	busy := b.busy
	if b.nesting > 0 {
		busy += now - b.busyAt
		b.busyAt = now
	}
	interval := now - b.from
	b.busy = 0
	b.from = now
	if interval <= 0 {
		return 0
	}
	u := busy.Seconds() / interval.Seconds()
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Table renders rows of (label, values...) as an aligned text table — the
// output format of the benchmark harnesses.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	h := make([]string, len(header))
	copy(h, header)
	return &Table{header: h}
}

// AddRow appends a row. Rows shorter than the header are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
