package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	t.Parallel()
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty input produced output")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if utf8.RuneCountInString(s) != 8 {
		t.Fatalf("length = %d runes", utf8.RuneCountInString(s))
	}
	// Monotone input: first rune is the lowest tick, last the highest.
	runes := []rune(s)
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Fatalf("sparkline = %q", s)
	}
}

func TestSparklineConstantInput(t *testing.T) {
	t.Parallel()
	s := Sparkline([]float64{5, 5, 5}, 0)
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("constant sparkline = %q", s)
	}
}

func TestSparklineDownsamplesKeepingSpikes(t *testing.T) {
	t.Parallel()
	values := make([]float64, 100)
	values[57] = 100 // lone spike
	s := Sparkline(values, 10)
	if utf8.RuneCountInString(s) != 10 {
		t.Fatalf("width = %d", utf8.RuneCountInString(s))
	}
	if !strings.ContainsRune(s, '█') {
		t.Fatalf("downsampling lost the spike: %q", s)
	}
}

func TestChartShape(t *testing.T) {
	t.Parallel()
	out := Chart("load", []float64{1, 2, 3, 4, 5}, 0, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 4 rows + axis
	if len(lines) != 6 {
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "load" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], "└") {
		t.Fatalf("missing axis: %q", lines[len(lines)-1])
	}
	// The tallest column must appear in the top row.
	if !strings.Contains(lines[1], "█") {
		t.Fatalf("top row empty:\n%s", out)
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	t.Parallel()
	if out := Chart("x", nil, 0, 5); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
	// Constant series and tiny height must not panic.
	_ = Chart("c", []float64{2, 2, 2}, 0, 1)
}

func TestDownsampleMaxProperty(t *testing.T) {
	t.Parallel()
	prop := func(values []float64, widthRaw uint8) bool {
		width := int(widthRaw%32) + 1
		for _, v := range values {
			if v != v { // NaN
				return true
			}
		}
		out := downsampleMax(values, width)
		if len(values) <= width {
			if len(out) != len(values) {
				return false
			}
		} else if len(out) != width {
			return false
		}
		// The global maximum always survives downsampling.
		if len(values) > 0 {
			_, hiIn := minMax(values)
			_, hiOut := minMax(out)
			return hiIn == hiOut
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
