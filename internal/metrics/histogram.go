package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram for high-volume per-event
// observations (queue depths, service times, pool waits) where keeping
// every sample would be too expensive. Bucket i counts observations v with
// bounds[i-1] < v <= bounds[i]; the last bucket is the +Inf overflow.
// The zero value is unusable — construct with NewHistogram.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf overflow
	counts []uint64  // len(bounds)+1, last is overflow
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the given ascending upper bounds.
// Non-ascending bounds panic: bucket layout is a programming decision, not
// runtime input.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the usual layout for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("metrics: bad ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+width, ... — the
// usual layout for small-integer distributions such as queue depths.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic(fmt.Sprintf("metrics: bad LinearBuckets(%v, %v, %d)", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Merge adds other's observations into h. The bucket layouts must match;
// mismatched layouts panic.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if len(other.bounds) != len(h.bounds) {
		panic("metrics: merging histograms with different bucket layouts")
	}
	for i, b := range other.bounds {
		if b != h.bounds[i] {
			panic("metrics: merging histograms with different bucket layouts")
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// CloneEmpty returns an empty histogram with the same bucket layout —
// the merge target for folding per-server histograms into a tier view.
func (h *Histogram) CloneEmpty() *Histogram { return NewHistogram(h.bounds) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observed value, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the extreme observed values (exact, not bucketed).
func (h *Histogram) Min() float64 { return h.min }
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket that holds the target rank. The estimate is clamped to
// the observed min/max, so single-bucket distributions stay sane; an empty
// histogram yields 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	var seen float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := seen + float64(c)
		if rank <= next {
			lo := h.min
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if lo < h.min {
				lo = h.min
			}
			if hi < lo {
				hi = lo
			}
			est := lo + (hi-lo)*(rank-seen)/float64(c)
			return math.Min(math.Max(est, h.min), h.max)
		}
		seen = next
	}
	return h.max
}

// Buckets returns (upperBound, count) pairs including the +Inf overflow
// bucket (reported with math.Inf(1) as its bound).
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, len(h.counts))
	for i, c := range h.counts {
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		out[i] = BucketCount{UpperBound: bound, Count: c}
	}
	return out
}

// BucketCount is one histogram bucket.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g",
		h.count, h.Mean(), h.min, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

// Render draws a vertical ASCII view of the non-empty buckets, one row per
// bucket with a proportional bar — the report-rendering form.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	var peak uint64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		label := "+Inf"
		if i < len(h.bounds) {
			label = fmt.Sprintf("%.4g", h.bounds[i])
		}
		bar := 0
		if peak > 0 {
			bar = int(float64(width) * float64(c) / float64(peak))
			if bar == 0 {
				bar = 1
			}
		}
		fmt.Fprintf(&b, "  <= %-8s %8d %s\n", label, c, strings.Repeat("#", bar))
	}
	return b.String()
}
