package metrics

import (
	"encoding/json"
	"testing"
)

func TestClassDispositionsNilSafe(t *testing.T) {
	var c *ClassDispositions
	c.Observe(0, DispositionOK) // must not panic
	if c.Len() != 0 || c.Name(0) != "" {
		t.Fatal("nil receiver not inert")
	}
	if got := c.Counts(0); got != (DispositionCounts{}) {
		t.Fatalf("nil Counts = %+v", got)
	}
	if got := c.Aggregate(); got != (DispositionCounts{}) {
		t.Fatalf("nil Aggregate = %+v", got)
	}
	if err := c.CheckConservation(DispositionCounts{}, DispositionCounts{}); err != nil {
		t.Fatalf("nil conservation: %v", err)
	}
	data, err := json.Marshal(c)
	if err != nil || string(data) != "null" {
		t.Fatalf("nil marshal = %s, %v", data, err)
	}
	if NewClassDispositions(nil) != nil {
		t.Fatal("empty class set must construct nil")
	}
}

func TestClassDispositionsTallyAndConservation(t *testing.T) {
	c := NewClassDispositions([]string{"premium", "basic"})
	c.Observe(0, DispositionOK)
	c.Observe(0, DispositionOK)
	c.Observe(1, DispositionShed)
	c.Observe(1, DispositionTimeout)
	c.Observe(7, DispositionOK)  // out of range: dropped
	c.Observe(-1, DispositionOK) // out of range: dropped

	if got := c.Counts(0); got.OK != 2 || got.Total() != 2 {
		t.Fatalf("premium counts = %+v", got)
	}
	if got := c.Counts(1); got.Shed != 1 || got.TimedOut != 1 {
		t.Fatalf("basic counts = %+v", got)
	}
	agg := c.Aggregate()
	if agg.Total() != 4 {
		t.Fatalf("aggregate total = %d, want 4", agg.Total())
	}

	var total DispositionCounts
	total.Observe(DispositionOK)
	total.Observe(DispositionOK)
	total.Observe(DispositionShed)
	total.Observe(DispositionTimeout)
	if err := c.CheckConservation(DispositionCounts{}, total); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	// Unclassed traffic participates in the sum.
	var unclassed DispositionCounts
	unclassed.Observe(DispositionRejected)
	total.Observe(DispositionRejected)
	if err := c.CheckConservation(unclassed, total); err != nil {
		t.Fatalf("conservation with unclassed: %v", err)
	}
	// A lost request breaks it.
	total.Observe(DispositionOK)
	if err := c.CheckConservation(unclassed, total); err == nil {
		t.Fatal("conservation must fail when the totals diverge")
	}
}

func TestClassDispositionsMarshalOrdered(t *testing.T) {
	c := NewClassDispositions([]string{"zeta", "alpha"})
	c.Observe(0, DispositionOK)
	c.Observe(1, DispositionShed)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	// Construction order, not lexical order.
	s := string(data)
	zi, ai := indexOf(s, `"zeta"`), indexOf(s, `"alpha"`)
	if zi < 0 || ai < 0 || zi > ai {
		t.Fatalf("marshal order wrong: %s", s)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
