package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestSeriesClampedCount is the regression test for the silent-clamp bug:
// out-of-order appends used to be absorbed invisibly; they must now be
// counted and reported.
func TestSeriesClampedCount(t *testing.T) {
	t.Parallel()
	s := NewSeries("x")
	if s.Clamped() != 0 {
		t.Fatalf("fresh series clamped = %d", s.Clamped())
	}
	s.Append(5*time.Second, 1)
	s.Append(3*time.Second, 2) // out of order → clamped
	s.Append(5*time.Second, 3) // equal timestamp is fine
	s.Append(4*time.Second, 4) // out of order → clamped
	s.Append(6*time.Second, 5)
	if s.Clamped() != 2 {
		t.Fatalf("clamped = %d, want 2", s.Clamped())
	}
	// The clamped samples must still be in order.
	for i := 1; i < s.Len(); i++ {
		if s.At(i).At < s.At(i-1).At {
			t.Fatalf("series out of order at %d", i)
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	t.Parallel()
	// Single sample: every quantile is that sample.
	single := []float64{7}
	for _, p := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := Percentile(single, p); got != 7 {
			t.Errorf("Percentile([7], %v) = %v", p, got)
		}
	}
	// All-equal values: every quantile is the common value.
	equal := []float64{3, 3, 3, 3}
	for _, p := range []float64{0, 0.5, 1} {
		if got := Percentile(equal, p); got != 3 {
			t.Errorf("Percentile(all-equal, %v) = %v", p, got)
		}
	}
	// p=0 and p=1 hit the exact min and max, never interpolate past them.
	sorted := []float64{-2, 0, 10}
	if got := Percentile(sorted, 0); got != -2 {
		t.Errorf("p=0 → %v, want min", got)
	}
	if got := Percentile(sorted, 1); got != 10 {
		t.Errorf("p=1 → %v, want max", got)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	t.Parallel()
	one := Summarize([]float64{42})
	if one.Count != 1 || one.Mean != 42 || one.Min != 42 || one.Max != 42 ||
		one.Stddev != 0 || one.P50 != 42 || one.P99 != 42 {
		t.Fatalf("single-sample summary = %+v", one)
	}
	eq := Summarize([]float64{5, 5, 5})
	if eq.Stddev != 0 || eq.P50 != 5 || eq.P95 != 5 || eq.Min != 5 || eq.Max != 5 {
		t.Fatalf("all-equal summary = %+v", eq)
	}
}

// TestCounterTakeDeltaInterleaved checks deltas across interleaved Inc
// calls: each TakeDelta must account for exactly the Incs since the
// previous one, and the deltas must sum to the total.
func TestCounterTakeDeltaInterleaved(t *testing.T) {
	t.Parallel()
	var c Counter
	var deltas []uint64
	c.Inc(1)
	c.Inc(2)
	deltas = append(deltas, c.TakeDelta()) // 3
	deltas = append(deltas, c.TakeDelta()) // 0
	c.Inc(4)
	deltas = append(deltas, c.TakeDelta()) // 4
	c.Inc(1)
	c.Inc(1)
	c.Inc(1)
	deltas = append(deltas, c.TakeDelta()) // 3
	want := []uint64{3, 0, 4, 3}
	var sum uint64
	for i, d := range deltas {
		if d != want[i] {
			t.Errorf("delta %d = %d, want %d", i, d, want[i])
		}
		sum += d
	}
	if sum != c.Total() {
		t.Errorf("deltas sum to %d, total is %d", sum, c.Total())
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	t.Parallel()
	h := NewHistogram(LinearBuckets(1, 1, 10))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i%10) + 0.5) // values 0.5..9.5
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-5.0) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 0.5 || h.Max() != 9.5 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0); q != 0.5 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 9.5 {
		t.Fatalf("q1 = %v", q)
	}
	q50 := h.Quantile(0.5)
	if q50 < 4 || q50 > 6 {
		t.Fatalf("q50 = %v, want ≈5", q50)
	}
	if got := h.Quantile(0.99); got < 8 || got > 9.5 {
		t.Fatalf("q99 = %v", got)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	t.Parallel()
	h := NewHistogram([]float64{1, 2})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.String() != "n=0" {
		t.Fatal("empty histogram not zero-valued")
	}
	h.Observe(100) // overflow bucket
	bs := h.Buckets()
	if len(bs) != 3 || !math.IsInf(bs[2].UpperBound, 1) || bs[2].Count != 1 {
		t.Fatalf("buckets = %+v", bs)
	}
	// Overflow quantile is clamped to the observed max, not +Inf.
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("overflow q50 = %v", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	t.Parallel()
	bounds := ExpBuckets(0.001, 2, 8)
	a, b := NewHistogram(bounds), NewHistogram(bounds)
	a.Observe(0.002)
	a.Observe(0.004)
	b.Observe(0.1)
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewHistogram(bounds)) // empty merge is a no-op
	if a.Count() != 3 || a.Max() != 0.1 || a.Min() != 0.002 {
		t.Fatalf("merged: n=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched-layout merge did not panic")
		}
	}()
	c := NewHistogram([]float64{1})
	c.Observe(0.5)
	a.Merge(c)
}

func TestHistogramRender(t *testing.T) {
	t.Parallel()
	h := NewHistogram(LinearBuckets(1, 1, 3))
	h.Observe(0.5)
	h.Observe(0.7)
	h.Observe(2.5)
	out := h.Render(20)
	if !strings.Contains(out, "#") || !strings.Contains(out, "<= 1") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestBucketHelpersPanic(t *testing.T) {
	t.Parallel()
	for name, fn := range map[string]func(){
		"exp-bad-factor":   func() { ExpBuckets(1, 1, 3) },
		"exp-bad-n":        func() { ExpBuckets(1, 2, 0) },
		"linear-bad-width": func() { LinearBuckets(0, 0, 3) },
		"hist-unsorted":    func() { NewHistogram([]float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
