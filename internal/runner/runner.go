// Package runner executes independent simulation runs concurrently.
//
// Every experiment in this repository is a batch of independent
// simulations — sweep points, seeds, controller variants — each a pure
// function of its inputs with its own engine and rng. The runner fans
// such batches across a worker pool and returns results in input order,
// so a parallel execution is byte-identical to the serial loop it
// replaces: parallelism changes wall-clock time and nothing else.
//
// Callers that need a specific worker count pass it explicitly; commands
// plumb their -parallel flag through SetDefaultWorkers, and everything
// else inherits GOMAXPROCS.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide worker count override (0 = use
// GOMAXPROCS). Commands set it once at startup from their -parallel flag.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the worker count used when a call passes
// workers <= 0. n <= 0 restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers resolves a worker-count request: n > 0 is used as given,
// otherwise the SetDefaultWorkers override, otherwise GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if v := defaultWorkers.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn over every item with up to workers goroutines and returns
// the results in input order. workers <= 0 selects the default (see
// Workers); workers == 1 runs serially on the calling goroutine with no
// goroutines spawned at all.
//
// fn must be self-contained: it receives the item index and value and
// must not share mutable state across calls. On error Map returns the
// failure with the smallest input index — exactly the error the
// equivalent serial loop would have surfaced — and discards the results.
//
// A panic in fn is recovered and reported as an error attributed to the
// offending input index: one poisoned run cannot kill the worker pool (or
// the process) for a batch of otherwise independent simulations, and the
// smallest-index error policy applies to panics and errors alike.
func Map[T, R any](items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	if n == 0 {
		return results, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i, item := range items {
			r, err := safeCall(fn, i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = safeCall(fn, i, items[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// safeCall invokes fn(i, item), converting a panic into an error that
// names the input index it came from.
func safeCall[T, R any](fn func(i int, item T) (R, error), i int, item T) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: run %d panicked: %v", i, p)
		}
	}()
	return fn(i, item)
}

// Spec describes one independent simulation run for RunMany.
type Spec struct {
	// Name labels the run in its Result.
	Name string
	// Run executes the simulation and returns its result. It must be
	// self-contained (own engine, own rng).
	Run func() (any, error)
}

// Result is one RunMany outcome.
type Result struct {
	Name  string
	Value any
	Err   error
}

// RunMany executes every spec with up to workers goroutines (<= 0 selects
// the default) and returns one Result per spec in input order. Unlike
// Map, RunMany does not stop at the first failure: sweeps want the
// per-run error next to the runs that succeeded. A panicking Run becomes
// that spec's Result.Err without disturbing the other runs.
func RunMany(specs []Spec, workers int) []Result {
	out, _ := Map(specs, workers, func(i int, s Spec) (Result, error) {
		v, err := runSpec(i, s)
		return Result{Name: s.Name, Value: v, Err: err}, nil
	})
	return out
}

// runSpec invokes one spec, recovering a panic into its error so it stays
// local to the spec instead of failing the whole Map.
func runSpec(i int, s Spec) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: run %d (%s) panicked: %v", i, s.Name, p)
		}
	}()
	return s.Run()
}
