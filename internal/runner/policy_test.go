package runner

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestMapErrorBeatsLaterPanic completes the smallest-index error policy:
// TestMapRecoversPanics pins a panic beating a later error; here an
// ordinary error at a smaller index must win over a later panic, on both
// the serial and parallel paths.
func TestMapErrorBeatsLaterPanic(t *testing.T) {
	t.Parallel()
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 8} {
		_, err := Map(items, workers, func(i, item int) (int, error) {
			if item == 2 {
				return 0, fmt.Errorf("run %d failed", item)
			}
			if item >= 5 {
				panic("poisoned")
			}
			return item, nil
		})
		if err == nil || err.Error() != "run 2 failed" {
			t.Fatalf("workers=%d: err = %v, want run 2's error", workers, err)
		}
	}
}

// TestMapRecoversNonStringPanics pins that panic values which are not
// strings — errors, typed values, nil-adjacent sentinels — still surface
// as indexed errors rather than killing the pool.
func TestMapRecoversNonStringPanics(t *testing.T) {
	t.Parallel()
	payloads := []any{errors.New("wrapped failure"), 42, struct{ x int }{7}}
	for pi, payload := range payloads {
		payload := payload
		for _, workers := range []int{1, 4} {
			_, err := Map([]int{0, 1, 2}, workers, func(i, item int) (int, error) {
				if item == 1 {
					panic(payload)
				}
				return item, nil
			})
			if err == nil {
				t.Fatalf("payload %d workers=%d: panic not surfaced", pi, workers)
			}
			if !strings.HasPrefix(err.Error(), "runner: run 1 panicked: ") {
				t.Fatalf("payload %d workers=%d: err = %q", pi, workers, err)
			}
		}
	}
}

// TestMapAllPanicsReportsSmallestIndex floods every run with a panic;
// the surfaced error must still be run 0's, matching the serial loop.
func TestMapAllPanicsReportsSmallestIndex(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 8} {
		_, err := Map(make([]int, 16), workers, func(i, item int) (int, error) {
			panic(fmt.Sprintf("run %d", i))
		})
		want := "runner: run 0 panicked: run 0"
		if err == nil || err.Error() != want {
			t.Fatalf("workers=%d: err = %v, want %q", workers, err, want)
		}
	}
}
