package runner

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dcm/internal/rng"
	"dcm/internal/sim"
)

func TestMapPreservesInputOrder(t *testing.T) {
	t.Parallel()
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 8, 200} {
		got, err := Map(items, workers, func(i, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	t.Parallel()
	got, err := Map(nil, 8, func(i, item int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(nil) = %v, %v", got, err)
	}
}

// TestMapErrorPolicy: the reported error is the smallest-index failure —
// the one the serial loop would have hit — regardless of workers.
func TestMapErrorPolicy(t *testing.T) {
	t.Parallel()
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	errAt := func(i int) error { return fmt.Errorf("run %d failed", i) }
	for _, workers := range []int{1, 8} {
		_, err := Map(items, workers, func(i, item int) (int, error) {
			if item >= 3 {
				return 0, errAt(item)
			}
			return item, nil
		})
		if err == nil || err.Error() != "run 3 failed" {
			t.Fatalf("workers=%d: err = %v, want run 3's error", workers, err)
		}
	}
}

// TestMapParallelMatchesSerial is the core determinism property: the
// result slice from N workers equals the serial loop's, element for
// element, when each run is a self-contained simulation.
func TestMapParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	run := func(workers int) []uint64 {
		out, err := Map(seeds, workers, func(_ int, seed uint64) (uint64, error) {
			// A miniature simulation: events draw from a seeded rng and
			// fold their fire times into a digest.
			eng := sim.NewEngine()
			rnd := rng.New(seed)
			var digest uint64
			for i := 0; i < 200; i++ {
				eng.Schedule(time.Duration(rnd.Intn(1000))*time.Millisecond, func() {
					digest = digest*31 + uint64(eng.Now())
				})
			}
			if err := eng.Run(time.Hour); err != nil {
				return 0, err
			}
			return digest, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: results differ from serial: %v vs %v", workers, got, serial)
		}
	}
}

// TestMapActuallyRunsConcurrently guards against a regression to serial
// execution: with W workers, W runs must be able to be in flight at once.
func TestMapActuallyRunsConcurrently(t *testing.T) {
	t.Parallel()
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	const workers = 4
	var inFlight, peak atomic.Int64
	items := make([]int, 32)
	_, err := Map(items, workers, func(i, _ int) (int, error) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
}

func TestRunMany(t *testing.T) {
	t.Parallel()
	boom := errors.New("boom")
	specs := []Spec{
		{Name: "a", Run: func() (any, error) { return 1, nil }},
		{Name: "b", Run: func() (any, error) { return nil, boom }},
		{Name: "c", Run: func() (any, error) { return 3, nil }},
	}
	results := RunMany(specs, 2)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Name != "a" || results[0].Value != 1 || results[0].Err != nil {
		t.Fatalf("result a = %+v", results[0])
	}
	if results[1].Name != "b" || !errors.Is(results[1].Err, boom) {
		t.Fatalf("result b = %+v", results[1])
	}
	if results[2].Name != "c" || results[2].Value != 3 {
		t.Fatalf("result c = %+v", results[2])
	}
}

func TestWorkersResolution(t *testing.T) {
	// Not parallel: mutates the process-wide default.
	defer SetDefaultWorkers(0)
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
	SetDefaultWorkers(3)
	if got := Workers(0); got != 3 {
		t.Fatalf("Workers(0) with default 3 = %d", got)
	}
	SetDefaultWorkers(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	SetDefaultWorkers(-4)
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS", got)
	}
}

// TestMapRecoversPanics: a panicking run becomes an error naming its
// input index instead of crashing the pool, and the smallest-index
// policy applies when panics and errors mix.
func TestMapRecoversPanics(t *testing.T) {
	t.Parallel()
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, workers := range []int{1, 8} {
		_, err := Map(items, workers, func(i, item int) (int, error) {
			if item == 6 {
				return 0, fmt.Errorf("run %d failed", item)
			}
			if item >= 4 {
				panic(fmt.Sprintf("poisoned input %d", item))
			}
			return item, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not surfaced", workers)
		}
		want := "runner: run 4 panicked: poisoned input 4"
		if err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want %q", workers, err, want)
		}
	}
}

// TestRunManyRecoversPanics: a panicking spec gets its own Result.Err;
// the other specs' results are unaffected.
func TestRunManyRecoversPanics(t *testing.T) {
	t.Parallel()
	specs := []Spec{
		{Name: "ok", Run: func() (any, error) { return 1, nil }},
		{Name: "bad", Run: func() (any, error) { panic("kaboom") }},
		{Name: "also-ok", Run: func() (any, error) { return 3, nil }},
	}
	for _, workers := range []int{1, 3} {
		results := RunMany(specs, workers)
		if len(results) != 3 {
			t.Fatalf("got %d results", len(results))
		}
		if results[0].Err != nil || results[0].Value != 1 {
			t.Fatalf("result ok = %+v", results[0])
		}
		if results[1].Err == nil ||
			results[1].Err.Error() != "runner: run 1 (bad) panicked: kaboom" {
			t.Fatalf("result bad = %+v", results[1])
		}
		if results[2].Err != nil || results[2].Value != 3 {
			t.Fatalf("result also-ok = %+v", results[2])
		}
	}
}
