// Package invariant is a pluggable runtime checker for the structural
// laws the simulation must obey regardless of configuration: request
// conservation per tier (arrivals = completions + failed dispositions +
// in-flight), thread-pool and connection-pool accounting (grants =
// releases + leaks, never negative, waiter caps respected), event-time
// monotonicity and timer-generation legality in the event heap, and
// legality of circuit-breaker state transitions.
//
// A nil *Checker is the disabled state: every method is nil-safe and the
// instrumented components guard their checks behind a single pointer
// comparison, so runs without a checker execute the exact same event
// sequence (no extra rng draws, no extra events) and produce
// byte-identical results.
package invariant

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Rule names the structural law a violation broke. The set is small and
// closed so tests can assert on specific rules.
type Rule string

const (
	// RuleConservation: arrivals = completions + failed dispositions +
	// in-flight, at any instant and at drain.
	RuleConservation Rule = "conservation"
	// RulePoolAccounting: thread/connection pool grants = releases +
	// held (+ leaked), occupancy never negative, caps respected.
	RulePoolAccounting Rule = "pool-accounting"
	// RuleEventOrder: the event heap must fire events in nondecreasing
	// timestamp order.
	RuleEventOrder Rule = "event-order"
	// RuleTimerGeneration: a timer handle's generation may never exceed
	// its event slot's generation (a handle "from the future" means the
	// free-list recycled a live event).
	RuleTimerGeneration Rule = "timer-generation"
	// RuleHeap: the 4-ary heap's structural self-check failed (heap
	// property, dead-entry accounting, free-list disjointness).
	RuleHeap Rule = "heap"
	// RuleBreakerTransition: a circuit breaker moved between states
	// along an edge the state machine does not allow.
	RuleBreakerTransition Rule = "breaker-transition"
	// RuleDeadline: a request was granted capacity after its deadline
	// already expired (expired waiters must fail, not proceed).
	RuleDeadline Rule = "deadline"
	// RuleMetrics: aggregate counters disagree with the disposition
	// taxonomy (e.g. DispositionCounts.OK != completion counter).
	RuleMetrics Rule = "metrics"
)

// Violation is one detected breach of a structural law, stamped with the
// simulated time and component where it was caught.
type Violation struct {
	At     time.Duration `json:"at"`
	Rule   Rule          `json:"rule"`
	Where  string        `json:"where"`
	Req    uint64        `json:"req,omitempty"`
	Detail string        `json:"detail"`
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%.3fs [%s] %s: %s", v.At.Seconds(), v.Rule, v.Where, v.Detail)
	if v.Req != 0 {
		fmt.Fprintf(&b, " (req %d)", v.Req)
	}
	return b.String()
}

// maxRecorded bounds the stored violations; a corrupted run can trip a
// check on every event, and keeping millions of records helps nobody.
// Total() still counts every violation past the cap.
const maxRecorded = 256

// Checker collects violations. The zero value is not used: a nil
// *Checker means "disabled" and every method no-ops, while New returns
// an enabled checker. A single Checker may be shared by experiment
// points running on different goroutines (the parallel grid executors),
// so recording is mutex-protected.
type Checker struct {
	mu         sync.Mutex
	total      uint64
	violations []Violation
}

// New returns an enabled checker.
func New() *Checker { return &Checker{} }

// Enabled reports whether the checker records anything; callers on hot
// paths should instead guard with a plain `chk != nil` comparison.
func (c *Checker) Enabled() bool { return c != nil }

// Violatef records a violation of rule at component `where`, stamped
// with simulated time at. req is an optional request id (0 = none).
// Nil-safe no-op.
func (c *Checker) Violatef(at time.Duration, rule Rule, where string, req uint64, format string, args ...any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	if len(c.violations) >= maxRecorded {
		return
	}
	c.violations = append(c.violations, Violation{
		At: at, Rule: rule, Where: where, Req: req,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Check records err as a violation of rule; a nil err is a pass.
// It is the bridge for components exposing `CheckInvariant() error`.
func (c *Checker) Check(at time.Duration, rule Rule, where string, err error) {
	if c == nil || err == nil {
		return
	}
	c.Violatef(at, rule, where, 0, "%v", err)
}

// breakerEdges is the legal transition relation of the circuit-breaker
// state machine: trip, cooldown probe, probe success, probe failure.
var breakerEdges = map[[2]string]bool{
	{"closed", "open"}:      true,
	{"open", "half-open"}:   true,
	{"half-open", "closed"}: true,
	{"half-open", "open"}:   true,
}

// LegalBreakerTransition reports whether a breaker may move from one
// named state to another in a single step.
func LegalBreakerTransition(from, to string) bool {
	return breakerEdges[[2]string{from, to}]
}

// BreakerTransition validates one observed breaker state change and
// records a violation if the edge is not part of the state machine.
func (c *Checker) BreakerTransition(at time.Duration, where, from, to string) {
	if c == nil {
		return
	}
	if !LegalBreakerTransition(from, to) {
		c.Violatef(at, RuleBreakerTransition, where, 0, "illegal transition %s -> %s", from, to)
	}
}

// Total returns the number of violations detected, including any past
// the storage cap.
func (c *Checker) Total() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Violations returns a copy of the recorded violations; nil when clean,
// so it can be assigned to an `omitempty` result field without changing
// the marshaled bytes of a clean run.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) == 0 {
		return nil
	}
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Err summarizes the checker's state as a single error, nil when clean.
func (c *Checker) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.total == 0 {
		return nil
	}
	return fmt.Errorf("invariant: %d violation(s), first: %s", c.total, c.violations[0])
}

// Render formats violations one per line for reports and CLI output.
func Render(vs []Violation) string {
	if len(vs) == 0 {
		return ""
	}
	var b strings.Builder
	for _, v := range vs {
		b.WriteString("  ")
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}
