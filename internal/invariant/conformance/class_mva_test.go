package conformance

import (
	"testing"
	"time"

	"dcm/internal/invariant"
	"dcm/internal/mva"
	"dcm/internal/ntier"
	"dcm/internal/rng"
	"dcm/internal/sim"
	"dcm/internal/workload"
)

// TestClassWeightedMVAConformance cross-validates the class-mixed request
// flow against MVA: a two-class closed workload (different app/db demand
// profiles) drives the full 1/1/1 n-tier application, and the measured
// steady-state throughput must agree with the MVA solution of the
// equivalent network — stations as in cmd/whatif's analyze(), with the
// per-station demands weighted by the realized class mix. Disagreement
// beyond 10% means InjectClass's demand threading (per-class app work,
// query count, per-query work) drifted from the model.
func TestClassWeightedMVAConformance(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("long steady-state run")
	}
	cfg := ntier.DefaultConfig()
	classes := []ntier.RequestClass{
		{Name: "light", Queries: 1},
		{Name: "heavy", AppDemand: 1.5, Queries: 3, QueryDemand: 1.5},
	}
	cfg.Classes = classes
	const (
		users = 600
		think = time.Second
	)

	eng := sim.NewEngine()
	chk := invariant.New()
	invariant.AttachEngine(chk, eng)
	r := rng.New(4242)
	app, err := ntier.New(eng, r.Split("app"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	app.SetInvariantChecker(chk)

	spec := workload.WorkloadSpec{
		Name:           "class-mva",
		Kind:           workload.KindClosed,
		Users:          users,
		Think:          &workload.DistSpec{Dist: workload.DistExponential, Mean: think.Seconds()},
		StaggerSeconds: 1,
		Classes: []workload.ClassSpec{
			{Name: "light", Weight: 1},
			{Name: "heavy", Weight: 1},
		},
	}
	gen, err := spec.Build(eng, r.Split("wl"), app)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start()

	const (
		warmup  = 20 * time.Second
		measure = 120 * time.Second
	)
	if err := eng.Run(warmup); err != nil {
		t.Fatal(err)
	}
	base := app.ClassStats()
	if err := eng.Run(warmup + measure); err != nil {
		t.Fatal(err)
	}
	app.CheckInvariants()
	invariant.CheckEngine(chk, eng)
	requireClean(t, chk)

	// Realized per-class completion shares weight the MVA demands — the
	// closed loop fixes each session's class at spawn, so the request mix
	// is the measured one, not exactly the configured weights.
	stats := app.ClassStats()
	var got float64
	deltas := make([]float64, len(stats))
	for i := range stats {
		deltas[i] = float64(stats[i].Completions - base[i].Completions)
		got += deltas[i]
	}
	if got == 0 {
		t.Fatal("no completions in the measurement window")
	}
	var appDemand, dbVisits, dbWeighted float64
	for i, c := range classes {
		p := deltas[i] / got
		if p == 0 {
			t.Fatalf("class %s saw no traffic", c.Name)
		}
		appDemand += p * c.AppDemand
		dbVisits += p * float64(c.Queries)
		dbWeighted += p * float64(c.Queries) * c.QueryDemand
	}
	dbDemand := dbWeighted / dbVisits // per-visit scale, visit-weighted
	got /= measure.Seconds()

	// The equivalent MVA network: whatif's analyze() stations for a 1/1/1
	// deployment, each demand scaled the way ExecDemand scales a burst
	// (S_d(j) = S*(j) + (d-1)*S0), with thrash and allocation crosstalk on
	// the DB law.
	dbService := func(j int) float64 {
		s := cfg.DBModel.ServiceTime(float64(j))
		if cfg.DBThrashKnee > 0 && j > cfg.DBThrashKnee {
			over := float64(j - cfg.DBThrashKnee)
			s += cfg.DBThrashCoef * over * over
		}
		alloc := float64(cfg.DBConnsPerApp)
		s += cfg.DBModel.Beta * (alloc*(alloc-1) - float64(j)*(float64(j)-1))
		return s + (dbDemand-1)*cfg.DBModel.S0
	}
	net := mva.Network{
		ThinkTime: think.Seconds(),
		Stations: []mva.Station{
			mva.PooledStation("web", 1, cfg.WebThreads, func(j int) float64 {
				return cfg.WebModel.ServiceTime(float64(j))
			}),
			mva.PooledStation("app", 1, cfg.AppThreads, func(j int) float64 {
				return cfg.AppModel.ServiceTime(float64(j)) + (appDemand-1)*cfg.AppModel.S0
			}),
			mva.PooledStation("db", dbVisits, cfg.DBConnsPerApp, dbService),
		},
	}
	results, err := mva.Solve(net, users)
	if err != nil {
		t.Fatal(err)
	}
	want := results[users-1].Throughput
	if err := relErr(got, want); err > 0.10 {
		t.Fatalf("class mix app=%.3f dbVisits=%.3f dbDemand=%.3f: sim %.2f req/s vs MVA %.2f (err %.1f%%, want <= 10%%)",
			appDemand, dbVisits, dbDemand, got, want, err*100)
	}
	t.Logf("sim %.2f req/s vs class-weighted MVA %.2f (err %.2f%%)", got, want, relErr(got, want)*100)
}
