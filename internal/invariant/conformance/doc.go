// Package conformance is the property-based model-conformance harness:
// it closes the loop between the discrete-event simulator and the paper's
// analytical models by asserting, under the runtime invariant checker,
// that simulated steady-state behaviour matches the closed forms.
//
// Three layers of properties live here:
//
//   - Equation 5/7 conformance at the model optimum: a single server
//     driven at exactly N_b concurrent requests (matched pool,
//     zero-think closed loop, deterministic service) must produce
//     X = N_b/S*(N_b) within 5%.
//
//   - Randomized MVA conformance: seeded sweeps over Table I-range
//     parameters (S0, alpha, beta), pool sizes, populations, think
//     times and per-request demands, cross-validated against the exact
//     load-dependent MVA solution (internal/mva) for the equivalent
//     closed network with exponential service, within 10%.
//
//   - Scenario fuzzing (FuzzScenario): go test -fuzz explores chaos
//     schedules, seeds and resilience presets for full §V-B scenario
//     runs with the invariant checker enabled; any structural-law
//     violation fails the run and the fuzzer shrinks the schedule JSON
//     to a minimal failing scenario.
//
// Every property runs with the invariant checker attached and also
// asserts that the run itself was structurally clean, so a conformance
// failure distinguishes "the simulator disagrees with the model" from
// "the simulator broke its own laws".
package conformance
