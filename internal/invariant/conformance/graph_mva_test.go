package conformance

import (
	"fmt"
	"math"
	"testing"
	"time"

	"dcm/internal/graph"
	"dcm/internal/invariant"
	"dcm/internal/metrics"
	"dcm/internal/model"
	"dcm/internal/mva"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// The graph-MVA conformance suite cross-validates the service-graph
// engine against exact closed-network MVA, the same way the single
// station is checked — but now with visit-ratio weighting across a DAG.
//
// Exactness requires product form, so the generated topologies keep the
// layering honest: pass-through nodes (the entry, the cache front) carry
// constant service laws (α = β = 0) and thread pools at least the
// population size, so holding a thread across downstream calls never
// queues upstream; all queueing happens at leaf stations with exponential
// service (BCMP). Serial edges keep a request at one station at a time —
// parallel fork-join has no exact MVA and is excluded here (its join
// accounting is pinned by internal/graph's own tests).

// passThrough returns a constant-service law: S(n) = s0 at any
// concurrency, so thread-holding cannot distort the station.
func passThrough(s0 float64) model.Params {
	return model.Params{S0: s0, Gamma: 1}
}

// graphClosedRun drives users closed-loop clients against the topology
// and returns steady-state system throughput, checking invariants for the
// whole run.
func graphClosedRun(t *testing.T, spec graph.Spec, users int, think time.Duration) float64 {
	t.Helper()
	eng := sim.NewEngine()
	chk := invariant.New()
	invariant.AttachEngine(chk, eng)
	app, err := graph.New(eng, rng.New(23).Split("app"), graph.Config{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	app.SetInvariantChecker(chk)
	r := rng.New(23).Split("think")
	var done metrics.Counter
	var cycle func()
	cycle = func() {
		app.Inject(func(rt time.Duration, ok bool) {
			if !ok {
				t.Error("closed-loop request failed in a resilience-free run")
			}
			done.Inc(1)
			if think <= 0 {
				cycle()
				return
			}
			z := time.Duration(r.Exp(think.Seconds()) * float64(time.Second))
			eng.Schedule(z, cycle)
		})
	}
	for i := 0; i < users; i++ {
		delay := time.Duration(r.Uniform(0, float64(time.Second)))
		eng.Schedule(delay, cycle)
	}
	warmup := 10 * time.Second
	if err := eng.Run(warmup); err != nil {
		t.Fatal(err)
	}
	done.TakeDelta()
	const measure = 120 * time.Second
	if err := eng.Run(warmup + measure); err != nil {
		t.Fatal(err)
	}
	app.CheckInvariants()
	invariant.CheckEngine(chk, eng)
	requireClean(t, chk)
	return float64(done.TakeDelta()) / measure.Seconds()
}

// randomLaw draws a Table I-range Equation 5 law, as the single-station
// sweep does.
func randomLaw(r *rng.Rand) model.Params {
	s0 := math.Exp(r.Uniform(math.Log(1e-4), math.Log(3e-3)))
	return model.Params{
		S0:    s0,
		Alpha: r.Uniform(0, 0.8) * s0,
		Beta:  math.Exp(r.Uniform(math.Log(1e-8), math.Log(1e-5))),
		Gamma: 1,
	}
}

// TestGraphMVAFanoutConformance sweeps randomized fan-out topologies —
// an entry calling two leaf services with independent laws, pools and
// visit ratios — against the exact MVA solution of the equivalent
// three-station closed network. Agreement within 10% is required.
func TestGraphMVAFanoutConformance(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("long steady-state sweeps")
	}
	thinks := []time.Duration{0, 200 * time.Millisecond, time.Second}
	for i := 0; i < 6; i++ {
		i := i
		t.Run(fmt.Sprintf("case-%d", i), func(t *testing.T) {
			t.Parallel()
			r := rng.New(uint64(2000 + i)).Split("graph-conformance")
			lawA, lawB := randomLaw(r), randomLaw(r)
			poolA, poolB := 4+r.Intn(33), 4+r.Intn(33) // 4..36
			visitsA, visitsB := 1+r.Intn(3), 1+r.Intn(3)
			users := 4 + r.Intn(2*(poolA+poolB))
			think := thinks[r.Intn(len(thinks))]
			const frontS0 = 1e-4

			spec := graph.Spec{
				Name:  "mva-fanout",
				Entry: "front",
				Nodes: []graph.NodeSpec{
					{Name: "front", Model: passThrough(frontS0), Threads: users},
					{Name: "svcA", Model: lawA, Threads: poolA,
						Distribution: graph.DistExponential},
					{Name: "svcB", Model: lawB, Threads: poolB,
						Distribution: graph.DistExponential},
				},
				Edges: []graph.EdgeSpec{
					{From: "front", To: "svcA", Visits: visitsA},
					{From: "front", To: "svcB", Visits: visitsB},
				},
			}
			got := graphClosedRun(t, spec, users, think)

			results, err := mva.Solve(mva.Network{
				ThinkTime: think.Seconds(),
				Stations: []mva.Station{
					mva.PooledStation("front", 1, users,
						func(j int) float64 { return frontS0 }),
					mva.PooledStation("svcA", float64(visitsA), poolA,
						func(j int) float64 { return lawA.ServiceTime(float64(j)) }),
					mva.PooledStation("svcB", float64(visitsB), poolB,
						func(j int) float64 { return lawB.ServiceTime(float64(j)) }),
				},
			}, users)
			if err != nil {
				t.Fatal(err)
			}
			want := results[len(results)-1].Throughput
			if err := relErr(got, want); err > 0.10 {
				t.Fatalf("fanout vA=%d vB=%d poolA=%d poolB=%d users=%d think=%v: "+
					"sim %.2f vs MVA %.2f (err %.1f%%, want <= 10%%)",
					visitsA, visitsB, poolA, poolB, users, think, got, want, err*100)
			}
		})
	}
}

// TestGraphMVACacheConformance sweeps randomized cache-tier topologies:
// a fixed-hit-ratio cache in front of a database, where a hit
// short-circuits the downstream visits. The equivalent closed network
// weights the db station's visit ratio by the miss probability —
// V_db = (1−h)·v — which is exactly how caches earn their keep in MVA
// capacity models. Agreement within 10% required.
func TestGraphMVACacheConformance(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("long steady-state sweeps")
	}
	thinks := []time.Duration{0, 200 * time.Millisecond, time.Second}
	for i := 0; i < 6; i++ {
		i := i
		t.Run(fmt.Sprintf("case-%d", i), func(t *testing.T) {
			t.Parallel()
			r := rng.New(uint64(3000 + i)).Split("graph-conformance")
			law := randomLaw(r)
			pool := 4 + r.Intn(61) // 4..64
			visits := 1 + r.Intn(3)
			hit := r.Uniform(0.1, 0.9)
			users := pool/2 + r.Intn(2*pool)
			if users < 1 {
				users = 1
			}
			think := thinks[r.Intn(len(thinks))]
			const frontS0, cacheS0 = 1e-4, 5e-5

			spec := graph.Spec{
				Name:  "mva-cache",
				Entry: "front",
				Nodes: []graph.NodeSpec{
					{Name: "front", Model: passThrough(frontS0), Threads: users},
					{Name: "cache", Kind: graph.KindCache, HitRatio: hit,
						Model: passThrough(cacheS0), Threads: users},
					{Name: "db", Model: law, Threads: pool,
						Distribution: graph.DistExponential},
				},
				Edges: []graph.EdgeSpec{
					{From: "front", To: "cache", Visits: 1},
					{From: "cache", To: "db", Visits: visits},
				},
			}
			got := graphClosedRun(t, spec, users, think)

			vdb := (1 - hit) * float64(visits)
			results, err := mva.Solve(mva.Network{
				ThinkTime: think.Seconds(),
				Stations: []mva.Station{
					mva.PooledStation("front", 1, users,
						func(j int) float64 { return frontS0 }),
					mva.PooledStation("cache", 1, users,
						func(j int) float64 { return cacheS0 }),
					mva.PooledStation("db", vdb, pool,
						func(j int) float64 { return law.ServiceTime(float64(j)) }),
				},
			}, users)
			if err != nil {
				t.Fatal(err)
			}
			want := results[len(results)-1].Throughput
			if err := relErr(got, want); err > 0.10 {
				t.Fatalf("cache h=%.2f v=%d (V_db=%.2f) pool=%d users=%d think=%v: "+
					"sim %.2f vs MVA %.2f (err %.1f%%, want <= 10%%)",
					hit, visits, vdb, pool, users, think, got, want, err*100)
			}
		})
	}
}
