package conformance

import (
	"strings"
	"testing"
	"time"

	"dcm/internal/chaos"
	"dcm/internal/experiments"
	"dcm/internal/invariant"
	"dcm/internal/resilience"
	"dcm/internal/trace"
)

// fuzzTraceCSV is the short bursty user trace every fuzzed scenario runs:
// 90 seconds with a ramp, a spike and a drain, enough to force scale-out
// and scale-in under whatever faults the fuzzer invents.
const fuzzTraceCSV = "0,200\n20,600\n40,1200\n60,500\n90,200\n"

// fuzzPresets is the resilience ladder the preset selector indexes into.
var fuzzPresets = []string{"off", "timeout", "retries", "full"}

// FuzzScenario feeds fuzzer-invented chaos schedules (as the strict JSON
// chaos.Parse accepts), seeds and resilience presets into full §V-B
// scenario runs with the invariant checker enabled. A structural-law
// violation — request conservation, pool accounting, event-time order,
// illegal breaker transitions — fails the input, and `go test -fuzz`
// then shrinks the schedule JSON to a minimal failing scenario.
//
// Invalid or oversized schedules are skipped rather than failed: the
// property under test is "every schedule the validator admits runs
// clean", not the validator itself.
func FuzzScenario(f *testing.F) {
	f.Add([]byte(`{"name":"crash","faults":[{"kind":"vm-crash","at":"30s","tier":"app"}]}`),
		uint64(1), uint64(0))
	f.Add([]byte(`{"name":"degrade","faults":[{"kind":"degraded-server","at":"25s","duration":"40s","tier":"app","factor":8}]}`),
		uint64(2), uint64(3))
	f.Add([]byte(`{"name":"leak-blackout","faults":[`+
		`{"kind":"conn-leak","at":"20s","duration":"30s","count":30},`+
		`{"kind":"monitor-blackout","at":"35s","duration":"20s"}]}`),
		uint64(3), uint64(1))
	f.Add([]byte(`{"name":"slow-boot","faults":[{"kind":"slow-boot","at":"10s","duration":"60s","factor":4}]}`),
		uint64(4), uint64(2))

	f.Fuzz(func(t *testing.T, data []byte, seed, preset uint64) {
		sched, err := chaos.Parse(data)
		if err != nil {
			t.Skip("invalid schedule")
		}
		// Clamp the scenario to a bounded run so one fuzz execution stays
		// cheap: few faults, all inside the 100-second horizon.
		if len(sched.Faults) > 6 {
			t.Skip("too many faults")
		}
		for _, fa := range sched.Faults {
			if fa.At > 90*time.Second || fa.Duration > 120*time.Second {
				t.Skip("fault outside the fuzz horizon")
			}
			if fa.Count > 1000 || fa.Factor > 1000 {
				t.Skip("degenerate magnitude")
			}
		}
		tr, err := trace.ParseCSV("fuzz", strings.NewReader(fuzzTraceCSV))
		if err != nil {
			t.Fatal(err)
		}
		resCfg, err := resilience.Preset(fuzzPresets[int(preset%uint64(len(fuzzPresets)))], 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := experiments.ScenarioConfig{
			Seed:          seed,
			Kind:          experiments.ControllerDCM,
			Trace:         tr,
			ThinkTime:     time.Second,
			ControlPeriod: 10 * time.Second,
			PrepDelay:     5 * time.Second,
			Tail:          10 * time.Second,
			Chaos:         &sched,
			Resilience:    resCfg,
			Invariants:    true,
		}
		res, err := experiments.RunScenario(cfg)
		if err != nil {
			// Some fuzzer-invented schedules are legal JSON but unrunnable
			// (e.g. targeting a VM that never exists); that is not an
			// invariant violation.
			t.Skipf("scenario rejected: %v", err)
		}
		if vs := res.InvariantViolations; len(vs) > 0 {
			t.Fatalf("schedule %s seed %d preset %s: %d invariant violation(s):\n%s",
				data, seed, fuzzPresets[int(preset%uint64(len(fuzzPresets)))],
				res.InvariantChecker().Total(), invariant.Render(vs))
		}
	})
}
