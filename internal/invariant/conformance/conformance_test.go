package conformance

import (
	"fmt"
	"math"
	"testing"
	"time"

	"dcm/internal/invariant"
	"dcm/internal/metrics"
	"dcm/internal/model"
	"dcm/internal/mva"
	"dcm/internal/rng"
	"dcm/internal/server"
	"dcm/internal/sim"
)

// stationRun is one single-station closed-system simulation: users clients
// cycle acquire → exec(demand) → release → think against a server obeying
// the Equation 5 law params with the given pool and distribution. The
// invariant checker is attached for the whole run and the returned checker
// lets the caller assert structural cleanliness alongside the throughput.
func stationRun(t *testing.T, params model.Params, dist server.ServiceDistribution,
	pool, users int, think time.Duration, demand float64) (float64, *invariant.Checker) {
	t.Helper()
	eng := sim.NewEngine()
	chk := invariant.New()
	invariant.AttachEngine(chk, eng)
	srv, err := server.New(eng, rng.New(17).Split("s"), server.Config{
		Name:         "station",
		Model:        params,
		PoolSize:     pool,
		Distribution: dist,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetInvariantChecker(chk)
	r := rng.New(17).Split("think")
	var done metrics.Counter
	var cycle func()
	cycle = func() {
		srv.Acquire(func(sess *server.Session) {
			sess.ExecDemand(demand, func() {
				sess.Release()
				done.Inc(1)
				if think <= 0 {
					cycle()
					return
				}
				z := time.Duration(r.Exp(think.Seconds()) * float64(time.Second))
				eng.Schedule(z, cycle)
			})
		})
	}
	for i := 0; i < users; i++ {
		delay := time.Duration(r.Uniform(0, float64(time.Second)))
		eng.Schedule(delay, cycle)
	}
	warmup := 10 * time.Second
	if err := eng.Run(warmup); err != nil {
		t.Fatal(err)
	}
	done.TakeDelta()
	const measure = 120 * time.Second
	if err := eng.Run(warmup + measure); err != nil {
		t.Fatal(err)
	}
	chk.Check(eng.Now(), invariant.RulePoolAccounting, "station", srv.CheckInvariant())
	invariant.CheckEngine(chk, eng)
	return float64(done.TakeDelta()) / measure.Seconds(), chk
}

// requireClean fails the test if the run recorded any invariant violations.
func requireClean(t *testing.T, chk *invariant.Checker) {
	t.Helper()
	if vs := chk.Violations(); len(vs) > 0 {
		t.Fatalf("%d invariant violation(s):\n%s", chk.Total(), invariant.Render(vs))
	}
}

// TestEq7AtModelOptimum pins the simulator to Equation 7 where the paper
// evaluates it: a server driven at exactly its optimal concurrency
// N_b = sqrt((S0-alpha)/beta). With a matched pool, zero think time and
// deterministic service the concurrency is constant at N_b, so measured
// throughput must equal X = N_b/S*(N_b) — the gamma=1 gauge of Eq. 7 —
// within 5% (the acceptance tolerance; the residual error is start-up
// stagger and edge effects of the finite window).
func TestEq7AtModelOptimum(t *testing.T) {
	t.Parallel()
	paperTomcat, paperMySQL := model.TableI()
	cases := []struct {
		name   string
		params model.Params
	}{
		{"tomcat-tableI", paperTomcat},
		{"mysql-tableI", paperMySQL},
		{"tomcat-sim", model.Params{S0: 4.64e-3, Alpha: 8.08e-4, Beta: 9.46e-6, Gamma: 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// The simulator implements the service law itself; gamma is the
			// paper's unit/visit-ratio gauge outside it, so compare in the
			// gamma=1 gauge.
			p := tc.params
			p.Gamma = 1
			nb, ok := p.OptimalConcurrencyInt()
			if !ok {
				t.Fatalf("params %+v have no interior optimum", p)
			}
			got, chk := stationRun(t, p, server.DistDeterministic, nb, nb, 0, 1)
			requireClean(t, chk)
			want := p.Throughput(float64(nb), 1)
			if err := relErr(got, want); err > 0.05 {
				t.Fatalf("throughput at N_b=%d: sim %.2f vs Eq.7 %.2f (err %.1f%%, want <= 5%%)",
					nb, got, want, err*100)
			}
		})
	}
}

// TestRandomizedMVAConformance sweeps seeded pseudo-random configurations
// over Table I-range service laws, pool sizes, populations, think times
// and per-request demands, and cross-validates simulated steady-state
// throughput against the exact load-dependent MVA solution of the
// equivalent closed network. Exponential service keeps MVA exact (BCMP),
// so disagreement beyond the statistical tolerance means the simulator's
// service law or queueing discipline drifted from the model.
func TestRandomizedMVAConformance(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("long steady-state sweeps")
	}
	thinks := []time.Duration{0, 200 * time.Millisecond, time.Second}
	demands := []float64{0.5, 1, 2}
	for i := 0; i < 12; i++ {
		i := i
		t.Run(fmt.Sprintf("case-%d", i), func(t *testing.T) {
			t.Parallel()
			r := rng.New(uint64(1000 + i)).Split("conformance")
			s0 := math.Exp(r.Uniform(math.Log(1e-4), math.Log(3e-3)))
			alpha := r.Uniform(0, 0.8) * s0
			beta := math.Exp(r.Uniform(math.Log(1e-8), math.Log(1e-5)))
			params := model.Params{S0: s0, Alpha: alpha, Beta: beta, Gamma: 1}
			pool := 4 + r.Intn(61)           // 4..64
			users := pool/2 + r.Intn(2*pool) // pool/2 .. 5*pool/2
			if users < 1 {
				users = 1
			}
			think := thinks[r.Intn(len(thinks))]
			demand := demands[r.Intn(len(demands))]

			got, chk := stationRun(t, params, server.DistExponential, pool, users, think, demand)
			requireClean(t, chk)

			// The sim scales a request's base work by demand:
			// S_d(j) = S*(j) + (demand-1)*S0. Hand MVA the same law.
			service := func(j int) float64 {
				return params.ServiceTime(float64(j)) + (demand-1)*params.S0
			}
			results, err := mva.Solve(mva.Network{
				ThinkTime: think.Seconds(),
				Stations:  []mva.Station{mva.PooledStation("station", 1, pool, service)},
			}, users)
			if err != nil {
				t.Fatal(err)
			}
			want := results[len(results)-1].Throughput
			if err := relErr(got, want); err > 0.10 {
				t.Fatalf("S0=%.2e alpha=%.2e beta=%.2e pool=%d users=%d think=%v demand=%v: "+
					"sim %.2f vs MVA %.2f (err %.1f%%, want <= 10%%)",
					s0, alpha, beta, pool, users, think, demand, got, want, err*100)
			}
		})
	}
}

// relErr returns |got-want|/want (Inf for want = 0 and got != 0).
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / want
}
