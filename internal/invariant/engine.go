package invariant

import "dcm/internal/sim"

// AttachEngine installs c as the engine's violation hook, so the event
// core's self-checks (event-order monotonicity, timer-generation
// legality) report through the checker with the engine clock. No-op for
// a nil checker or engine.
func AttachEngine(c *Checker, e *sim.Engine) {
	if c == nil || e == nil {
		return
	}
	e.SetViolationHook(func(rule, detail string) {
		c.Violatef(e.Now(), Rule(rule), "engine", 0, "%s", detail)
	})
}

// CheckEngine runs the engine's O(n) structural self-check — heap order,
// timer-wheel placement and occupancy, free-list integrity, and the
// arena balance across both timer tiers — and records any failure.
// No-op for a nil checker.
func CheckEngine(c *Checker, e *sim.Engine) {
	if c == nil || e == nil {
		return
	}
	c.Check(e.Now(), RuleHeap, "engine", e.VerifyHeap())
}
