package invariant

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCheckerIsDisabledNoOp(t *testing.T) {
	t.Parallel()
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	// Every method must be callable on nil without panicking.
	c.Violatef(time.Second, RuleConservation, "app", 1, "boom %d", 1)
	c.Check(time.Second, RuleHeap, "engine", errors.New("boom"))
	c.BreakerTransition(time.Second, "breaker", "closed", "half-open")
	if c.Total() != 0 {
		t.Fatalf("nil checker total = %d", c.Total())
	}
	if c.Violations() != nil {
		t.Fatal("nil checker has violations")
	}
	if c.Err() != nil {
		t.Fatalf("nil checker err = %v", c.Err())
	}
}

func TestRecordAndRender(t *testing.T) {
	t.Parallel()
	c := New()
	if !c.Enabled() {
		t.Fatal("new checker not enabled")
	}
	c.Violatef(1500*time.Millisecond, RulePoolAccounting, "server app-0", 42, "active went to %d", -1)
	c.Check(2*time.Second, RuleHeap, "engine", nil) // pass: no record
	c.Check(2*time.Second, RuleHeap, "engine", errors.New("heap property broken"))
	if c.Total() != 2 {
		t.Fatalf("total = %d, want 2", c.Total())
	}
	vs := c.Violations()
	if len(vs) != 2 {
		t.Fatalf("recorded = %d, want 2", len(vs))
	}
	if vs[0].Rule != RulePoolAccounting || vs[0].Req != 42 || vs[0].Where != "server app-0" {
		t.Fatalf("first violation = %+v", vs[0])
	}
	if got := vs[0].String(); !strings.Contains(got, "t=1.500s") ||
		!strings.Contains(got, "[pool-accounting]") || !strings.Contains(got, "(req 42)") {
		t.Fatalf("String() = %q", got)
	}
	// The request id is omitted when zero.
	if got := vs[1].String(); strings.Contains(got, "req") {
		t.Fatalf("String() shows a zero request id: %q", got)
	}
	r := Render(vs)
	if strings.Count(r, "\n") != 2 || !strings.HasPrefix(r, "  t=") {
		t.Fatalf("Render() = %q", r)
	}
	if Render(nil) != "" {
		t.Fatal("Render(nil) not empty")
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "2 violation(s)") {
		t.Fatalf("Err() = %v", err)
	}
	// Mutating the returned slice must not affect the checker's copy.
	vs[0].Detail = "mutated"
	if c.Violations()[0].Detail == "mutated" {
		t.Fatal("Violations() returned internal storage")
	}
}

func TestRecordingCapKeepsCounting(t *testing.T) {
	t.Parallel()
	c := New()
	for i := 0; i < maxRecorded+100; i++ {
		c.Violatef(0, RuleConservation, "app", 0, "v%d", i)
	}
	if got := c.Total(); got != maxRecorded+100 {
		t.Fatalf("total = %d, want %d", got, maxRecorded+100)
	}
	if got := len(c.Violations()); got != maxRecorded {
		t.Fatalf("recorded = %d, want cap %d", got, maxRecorded)
	}
}

func TestCleanViolationsAreNilForOmitempty(t *testing.T) {
	t.Parallel()
	// A clean checker must contribute zero bytes through an omitempty
	// field — that is what keeps checked runs byte-identical.
	out, err := json.Marshal(struct {
		V []Violation `json:"v,omitempty"`
	}{V: New().Violations()})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "{}" {
		t.Fatalf("clean checker marshals as %s", out)
	}
}

func TestLegalBreakerTransitions(t *testing.T) {
	t.Parallel()
	states := []string{"closed", "open", "half-open"}
	legal := map[string]bool{
		"closed->open":      true,
		"open->half-open":   true,
		"half-open->closed": true,
		"half-open->open":   true,
	}
	for _, from := range states {
		for _, to := range states {
			key := from + "->" + to
			if got := LegalBreakerTransition(from, to); got != legal[key] {
				t.Errorf("LegalBreakerTransition(%s) = %v, want %v", key, got, legal[key])
			}
		}
	}
	c := New()
	c.BreakerTransition(0, "breaker app-0", "closed", "open")
	if c.Total() != 0 {
		t.Fatal("legal transition recorded a violation")
	}
	c.BreakerTransition(0, "breaker app-0", "closed", "half-open")
	if c.Total() != 1 || c.Violations()[0].Rule != RuleBreakerTransition {
		t.Fatalf("illegal transition not recorded: %+v", c.Violations())
	}
}

func TestCheckerIsGoroutineSafe(t *testing.T) {
	t.Parallel()
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Violatef(0, RuleConservation, fmt.Sprintf("g%d", g), 0, "v%d", i)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Total(); got != 4000 {
		t.Fatalf("total = %d, want 4000", got)
	}
}
