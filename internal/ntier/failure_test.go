package ntier

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"dcm/internal/rng"
	"dcm/internal/sim"
)

func TestFailServerUnknown(t *testing.T) {
	t.Parallel()
	_, app := newApp(t, fastConfig())
	if err := app.FailServer(TierApp, "ghost"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err = %v", err)
	}
	if err := app.FailServer("ghost", "x"); !errors.Is(err, ErrUnknownTier) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailServerFailsQueuedAndInFlight(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.AppThreads = 2
	eng, app := newApp(t, cfg)
	// Load well beyond the 2-thread pool so requests queue at app-1.
	results := make(map[bool]int)
	for i := 0; i < 20; i++ {
		app.Inject(func(_ time.Duration, ok bool) { results[ok]++ })
	}
	eng.Schedule(time.Millisecond, func() {
		if err := app.FailServer(TierApp, "app-1"); err != nil {
			t.Errorf("fail: %v", err)
		}
	})
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if results[true]+results[false] != 20 {
		t.Fatalf("requests lost: %v", results)
	}
	if results[false] == 0 {
		t.Fatal("crash produced no failures")
	}
	if app.TotalErrors() != uint64(results[false]) {
		t.Fatalf("error accounting mismatch: %d vs %v", app.TotalErrors(), results)
	}
	if app.InFlight() != 0 {
		t.Fatalf("in-flight leak: %d", app.InFlight())
	}
}

func TestFailServerSurvivorsKeepServing(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.AppServers = 2
	eng, app := newApp(t, cfg)
	if err := app.FailServer(TierApp, "app-1"); err != nil {
		t.Fatal(err)
	}
	if app.ServerCount(TierApp) != 1 {
		t.Fatalf("server count = %d", app.ServerCount(TierApp))
	}
	for i := 0; i < 10; i++ {
		app.Inject(nil)
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if app.TotalCompletions() != 10 || app.TotalErrors() != 0 {
		t.Fatalf("survivor did not absorb traffic: done=%d errs=%d",
			app.TotalCompletions(), app.TotalErrors())
	}
}

func TestFailLastServerBlacksOutTier(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	if err := app.FailServer(TierDB, "db-1"); err != nil {
		t.Fatal(err)
	}
	app.Inject(nil)
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if app.TotalErrors() != 1 {
		t.Fatalf("request against dead tier: errs = %d", app.TotalErrors())
	}
	// A replacement restores service.
	if _, err := app.AddServer(TierDB, ""); err != nil {
		t.Fatal(err)
	}
	app.Inject(nil)
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if app.TotalCompletions() != 1 {
		t.Fatal("replacement server not serving")
	}
}

func TestFailDBServerMidQuery(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.DBServers = 2
	eng, app := newApp(t, cfg)
	okCount, failCount := 0, 0
	for i := 0; i < 30; i++ {
		app.Inject(func(_ time.Duration, ok bool) {
			if ok {
				okCount++
			} else {
				failCount++
			}
		})
	}
	eng.Schedule(500*time.Microsecond, func() {
		if err := app.FailServer(TierDB, "db-1"); err != nil {
			t.Errorf("fail: %v", err)
		}
	})
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if okCount+failCount != 30 {
		t.Fatalf("requests lost: ok=%d fail=%d", okCount, failCount)
	}
	if okCount == 0 {
		t.Fatal("no request survived on db-2")
	}
	if app.InFlight() != 0 {
		t.Fatalf("in-flight leak: %d", app.InFlight())
	}
}

// TestCrashUnderSaturationNoLeak floods the system, crashes a tier server
// mid-flood, and verifies conservation: every injected request completes
// or fails, connection pools and thread accounting return to idle.
func TestCrashUnderSaturationNoLeak(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.AppServers = 2
	eng := sim.NewEngine()
	app, err := New(eng, rng.New(9).Split("app"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const total = 3000
	done := 0
	for i := 0; i < total; i++ {
		i := i
		eng.Schedule(time.Duration(i)*time.Millisecond, func() {
			app.Inject(func(time.Duration, bool) { done++ })
		})
	}
	eng.Schedule(time.Second, func() {
		if err := app.FailServer(TierApp, "app-2"); err != nil {
			t.Errorf("fail: %v", err)
		}
	})
	if err := eng.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if done != total {
		t.Fatalf("completion conservation broken: %d of %d", done, total)
	}
	if app.InFlight() != 0 {
		t.Fatalf("in-flight leak: %d", app.InFlight())
	}
	if app.TotalCompletions()+app.TotalErrors() != total {
		t.Fatalf("accounting: %d + %d != %d", app.TotalCompletions(), app.TotalErrors(), total)
	}
	// The surviving app server is fully idle again.
	for _, m := range app.Members(TierApp) {
		if m.Server().Active() != 0 || m.Server().QueueLen() != 0 {
			t.Fatalf("server %s not idle: active=%d queue=%d",
				m.Name(), m.Server().Active(), m.Server().QueueLen())
		}
		if m.Pool().InUse() != 0 || m.Pool().Waiting() != 0 {
			t.Fatalf("conn pool %s not idle", m.Name())
		}
	}
}

// TestConservationUnderChurnProperty drives a random schedule of topology
// churn — adds, drains, crashes, pool resizes — under continuous load and
// checks the system-wide conservation invariants at the end: every request
// either completed or failed, nothing is in flight, every pool is idle.
func TestConservationUnderChurnProperty(t *testing.T) {
	t.Parallel()
	prop := func(seed uint64, ops []uint8) bool {
		eng := sim.NewEngine()
		cfg := fastConfig()
		cfg.AppServers = 2
		cfg.DBServers = 2
		app, err := New(eng, rng.New(seed).Split("app"), cfg)
		if err != nil {
			return false
		}
		const total = 400
		done := 0
		for i := 0; i < total; i++ {
			i := i
			eng.Schedule(time.Duration(i)*2*time.Millisecond, func() {
				app.Inject(func(time.Duration, bool) { done++ })
			})
		}
		r := rng.New(seed).Split("ops")
		at := 5 * time.Millisecond
		for _, op := range ops {
			op := op
			at += time.Duration(op%17) * time.Millisecond
			eng.ScheduleAt(at, func() {
				tierName := TierApp
				if op%2 == 1 {
					tierName = TierDB
				}
				members := app.Members(tierName)
				switch op % 5 {
				case 0:
					_, _ = app.AddServer(tierName, "")
				case 1:
					if len(members) > 1 {
						victim := members[r.Intn(len(members))].Name()
						_ = app.FailServer(tierName, victim)
					}
				case 2:
					if len(members) > 1 {
						victim := members[len(members)-1].Name()
						_ = app.StartDrain(tierName, victim, func() {
							_ = app.RemoveServer(tierName, victim)
						})
					}
				case 3:
					app.SetAppThreads(int(op%29) + 1)
				case 4:
					app.SetDBConnsPerApp(int(op%13) + 1)
				}
			})
		}
		if err := eng.Run(10 * time.Minute); err != nil {
			return false
		}
		if done != total {
			t.Logf("seed %d: done %d of %d", seed, done, total)
			return false
		}
		if app.InFlight() != 0 {
			t.Logf("seed %d: in flight %d", seed, app.InFlight())
			return false
		}
		if app.TotalCompletions()+app.TotalErrors() != total {
			return false
		}
		for _, tierName := range Tiers() {
			for _, m := range app.Members(tierName) {
				if m.Server().Active() != 0 || m.Server().QueueLen() != 0 {
					t.Logf("seed %d: %s busy", seed, m.Name())
					return false
				}
				if p := m.Pool(); p != nil && (p.InUse() != 0 || p.Waiting() != 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
