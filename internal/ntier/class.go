package ntier

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/graph"
	"dcm/internal/metrics"
)

// RequestClass is one traffic class of a class-mixed workload: a named
// slice of the request stream with its own admission priority, goodput
// SLO and demand profile. Classes are the workload library's view of the
// application (the generator picks a class per request and injects it via
// InjectClass); they are coarser than servlets — a class says how a
// request is treated, a servlet says what work it does — and the two mixes
// are mutually exclusive in one App.
type RequestClass struct {
	// Name identifies the class (e.g. "premium").
	Name string `json:"name"`
	// Priority is the admission priority. Classes with Priority > 0 are
	// critical: the CoDel shedder never sheds them, so under overload the
	// best-effort classes absorb the shedding first. Bounded-queue
	// rejection and deadlines still apply to every class.
	Priority int `json:"priority,omitempty"`
	// SLO is the class's goodput threshold: completions within SLO count
	// as good. Zero falls back to the resilience config's global SLA.
	SLO time.Duration `json:"slo,omitempty"`
	// AppDemand scales the Tomcat CPU work (0 = the default 1.0).
	AppDemand float64 `json:"appDemand,omitempty"`
	// Queries is the number of sequential MySQL queries per request
	// (0 = the app's QueriesPerRequest default).
	Queries int `json:"queries,omitempty"`
	// QueryDemand scales each query's base work (0 = the default 1.0).
	QueryDemand float64 `json:"queryDemand,omitempty"`
}

// ErrBadClasses is returned for invalid traffic-class sets.
var ErrBadClasses = errors.New("ntier: invalid request classes")

// validateClasses checks a class set and fills demand defaults in place.
func validateClasses(classes []RequestClass, queriesDefault int) error {
	seen := make(map[string]bool, len(classes))
	for i := range classes {
		c := &classes[i]
		switch {
		case c.Name == "":
			return fmt.Errorf("%w: class %d has no name", ErrBadClasses, i)
		case seen[c.Name]:
			return fmt.Errorf("%w: duplicate class %q", ErrBadClasses, c.Name)
		case c.Priority < 0:
			return fmt.Errorf("%w: class %q priority %d", ErrBadClasses, c.Name, c.Priority)
		case c.SLO < 0:
			return fmt.Errorf("%w: class %q slo %v", ErrBadClasses, c.Name, c.SLO)
		case c.AppDemand < 0:
			return fmt.Errorf("%w: class %q app demand %v", ErrBadClasses, c.Name, c.AppDemand)
		case c.Queries < 0:
			return fmt.Errorf("%w: class %q queries %d", ErrBadClasses, c.Name, c.Queries)
		case c.QueryDemand < 0:
			return fmt.Errorf("%w: class %q query demand %v", ErrBadClasses, c.Name, c.QueryDemand)
		}
		seen[c.Name] = true
		if c.AppDemand == 0 {
			c.AppDemand = 1
		}
		if c.Queries == 0 {
			c.Queries = queriesDefault
		}
		if c.QueryDemand == 0 {
			c.QueryDemand = 1
		}
	}
	return nil
}

// ClassStat summarizes one traffic class's lifetime traffic (the graph
// engine's record, with identical JSON).
type ClassStat = graph.ClassStat

// ClassStats returns cumulative per-class statistics in class order
// (empty when no classes are configured).
func (a *App) ClassStats() []ClassStat { return a.g.ClassStats() }

// ClassDispositions returns the per-class disposition tally (nil when no
// classes are configured).
func (a *App) ClassDispositions() *metrics.ClassDispositions { return a.g.ClassDispositions() }
