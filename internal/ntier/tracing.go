package ntier

import "dcm/internal/graph"

// Span is one stage of a traced request's journey through the tiers
// ("web", "app", "db-query-<i>"). It is the graph engine's span record.
type Span = graph.Span

// RequestTrace is the full record of one traced request.
type RequestTrace = graph.RequestTrace

// TraceRequests arms request tracing: the next n injected requests record
// a full per-stage span log, retrievable with Traces. Tracing is cheap but
// not free; it is meant for debugging and demos, not for the hot path of
// large experiments. Calling TraceRequests again resets the buffer.
func (a *App) TraceRequests(n int) { a.g.TraceRequests(n) }

// Traces returns the captured request traces so far. Traces of requests
// still in flight have OK == false and Total == 0 until they finish.
func (a *App) Traces() []RequestTrace { return a.g.Traces() }
