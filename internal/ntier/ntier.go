// Package ntier assembles simulated component servers into the 3-tier
// RUBBoS-style web application of the paper (Fig. 1(c)): an Apache web
// tier, a Tomcat application tier, and a MySQL database tier, with HAProxy
// load balancers in front of the scalable tiers and one shared DB
// connection pool per Tomcat.
//
// A request follows the paper's flow (§III-A): it occupies an Apache worker
// thread, which dispatches to a Tomcat server; the Tomcat thread runs the
// servlet's CPU work and then issues QueriesPerRequest sequential MySQL
// queries, each through the Tomcat's DB connection pool — the pool that
// bounds MySQL's request-processing concurrency from upstream (§IV-B).
// Threads are held across downstream calls, exactly as in the real stack.
package ntier

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/connpool"
	"dcm/internal/invariant"
	"dcm/internal/lb"
	"dcm/internal/metrics"
	"dcm/internal/model"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/server"
	"dcm/internal/sim"
	"dcm/internal/trace"
)

// Tier names.
const (
	TierWeb = "web"
	TierApp = "app"
	TierDB  = "db"
)

// Tiers lists the tier names front to back.
func Tiers() []string { return []string{TierWeb, TierApp, TierDB} }

// Config describes the application's service-time laws and initial soft
// and hard resource allocation.
type Config struct {
	// WebModel, AppModel, DBModel are the Equation 5 burst laws: per
	// request for web and app, per query for the DB.
	WebModel, AppModel, DBModel model.Params
	// WebThreads, AppThreads are per-server thread pool sizes (#W_T, #A_T).
	WebThreads, AppThreads int
	// DBConnsPerApp is each Tomcat's DB connection pool size (#A_C).
	DBConnsPerApp int
	// DBMaxConns is MySQL's own connection limit, normally generous: the
	// paper controls MySQL concurrency from upstream pools instead.
	DBMaxConns int
	// QueriesPerRequest is the DB visit ratio V_db (the paper's example
	// workload issues 2 queries per HTTP request). It is used by the
	// single-class flow; a non-empty Servlets mix overrides it per class.
	QueriesPerRequest int
	// Servlets, when non-empty, enables the multi-class request mix
	// (§II-A's RUBBoS servlets): each request is drawn from the mix and
	// carries its class's CPU demand and query behaviour. Empty keeps the
	// single uniform class the calibration uses.
	Servlets []Servlet
	// Classes, when non-empty, enables workload-driven traffic classes:
	// the generator picks the class per request and injects it through
	// InjectClass, which applies the class's priority, SLO and demand
	// profile and tallies per-class dispositions. Mutually exclusive with
	// Servlets (a class carries its own demand profile).
	Classes []RequestClass
	// WebServers, AppServers, DBServers are the initial #W/#A/#D.
	WebServers, AppServers, DBServers int
	// NoiseSigma adds mean-one lognormal noise to every burst.
	NoiseSigma float64
	// DBThrashKnee, DBThrashCoef and DBThrashCap give the database servers
	// the super-quadratic collapse past the knee that real MySQL exhibits
	// (see server.Config); they are what make over-concurrency at the DB
	// tier genuinely harmful, as in Fig. 2, and create the bistable
	// collapsed state the scale-out trap locks into.
	DBThrashKnee int
	DBThrashCoef float64
	DBThrashCap  float64
	// Policy selects the load-balancing policy (default round-robin).
	Policy lb.Policy
	// Resilience configures the data-plane resilience features: request
	// deadlines propagated across every tier hop, per-backend circuit
	// breakers at the tier boundaries, bounded admission queues and CoDel
	// shedding. The zero value disables everything and leaves the request
	// flow byte-identical to the resilience-free application.
	Resilience resilience.Config
}

// DefaultConfig returns the calibrated simulator configuration:
// a 1/1/1 topology with the paper's default 1000/100/80 soft allocation.
//
// The burst laws are calibrated against Table I so that the *measured*
// behaviour of the simulated system reproduces the paper's numbers:
//
//   - the MySQL per-query law keeps Table I's exact shape (scaling every
//     parameter by one factor preserves N_b = 36 and the relative
//     throughput curve) at a scale where the MySQL tier saturates at
//     ≈1000 requests/s — high enough not to mask the Tomcat tier's
//     optimum in the 1/1/1 configuration;
//   - the Tomcat per-request CPU law is tuned so the *composite*
//     throughput-vs-threads curve measured at the Tomcat tier (CPU burst
//     plus two in-thread MySQL visits, exactly what §V-A's training run
//     observes) peaks near N_b ≈ 20 at ≈946 requests/s — Table I's values;
//   - the Apache law is a fast pass-through that never bottlenecks, as in
//     the paper (the web tier is never scaled).
func DefaultConfig() Config {
	return Config{
		WebModel: model.Params{S0: 4e-4, Alpha: 5e-7, Beta: 1e-10, Gamma: 1},
		AppModel: model.Params{S0: 1.0e-4, Alpha: 2.6e-4, Beta: 1.5e-5, Gamma: 1},
		DBModel:  model.Params{S0: 6.867e-4, Alpha: 4.814e-4, Beta: 1.576e-7, Gamma: 1},

		WebThreads:        1000,
		AppThreads:        100,
		DBConnsPerApp:     80,
		DBMaxConns:        2000,
		QueriesPerRequest: 2,
		WebServers:        1,
		AppServers:        1,
		DBServers:         1,

		DBThrashKnee: 40,
		DBThrashCoef: 1.3e-5,

		// HAProxy is configured with least-connections balancing, the
		// standard choice for long-lived backend requests and what lets a
		// newly added server absorb a tier's backlog after scaling
		// (§IV-A's "rebalance the load to the tiers after scaling").
		Policy: lb.LeastConnections,
	}
}

// Errors returned by the application.
var (
	ErrBadConfig     = errors.New("ntier: invalid config")
	ErrUnknownTier   = errors.New("ntier: unknown tier")
	ErrUnknownServer = errors.New("ntier: unknown server")
	ErrLastServer    = errors.New("ntier: cannot remove the last server of a tier")
)

// Member is one server of a tier, together with its tier-specific soft
// resources (app members own a DB connection pool).
type Member struct {
	srv  *server.Server
	pool *connpool.Pool // non-nil for app members only
}

// Name returns the member's server name.
func (m *Member) Name() string { return m.srv.Name() }

// Accepting reports whether the member takes new work (lb.Backend).
func (m *Member) Accepting() bool { return m.srv.Accepting() }

// Load returns queued plus active requests (lb.Backend).
func (m *Member) Load() int { return m.srv.Active() + m.srv.QueueLen() }

// Server returns the underlying simulated server.
func (m *Member) Server() *server.Server { return m.srv }

// Pool returns the member's DB connection pool (nil except for app
// members).
func (m *Member) Pool() *connpool.Pool { return m.pool }

var _ lb.Backend = (*Member)(nil)

// tier groups a balancer with its members.
type tier struct {
	name     string
	balancer *lb.Balancer
	members  map[string]*Member
}

// App is the assembled n-tier application.
type App struct {
	eng *sim.Engine
	rnd *rng.Rand
	cfg Config

	tiers map[string]*tier

	completions metrics.Counter
	errored     metrics.Counter
	rts         metrics.MeanAccumulator
	appRes      metrics.MeanAccumulator
	dbRes       metrics.MeanAccumulator
	rtWindow    []float64
	inFlight    int
	nameSeq     map[string]int

	servletWeight float64
	servletStats  map[string]*servletAccum

	traceRemaining int
	traces         []*RequestTrace

	reqTracer *trace.RequestTracer

	// Resilience state. breakers is keyed by server name and empty unless
	// the breaker feature is on; the interval counters feed Stats and stay
	// zero (absent from JSON) when resilience is disabled.
	res      resilience.Config
	breakers map[string]*resilience.Breaker
	disp     metrics.DispositionCounts

	// Per-class accounting (empty / nil without Classes). unclassedDisp
	// tallies requests injected without a class so the per-class split
	// plus the unclassed remainder always reconciles against disp.
	classes       []classState
	classDisp     *metrics.ClassDispositions
	unclassedDisp metrics.DispositionCounts

	// injected counts lifetime request arrivals; with the disposition
	// tally and inFlight it forms the request-conservation law
	// injected = dispositions + in-flight that CheckInvariants asserts.
	injected uint64
	// Brownout state (driven by internal/degrade). brownoutShed is the
	// live front-door shed ratio for best-effort requests; brownoutAcc is
	// the error-diffusion accumulator that spreads the shed
	// deterministically across arrivals without an rng draw;
	// brownoutSheds counts lifetime brownout sheds. admissionScale is the
	// live bounded-queue cap multiplier (1 = nominal).
	brownoutShed   float64
	brownoutAcc    float64
	brownoutSheds  uint64
	admissionScale float64
	chk            *invariant.Checker
	timedOut       metrics.Counter
	rejected       metrics.Counter
	shed           metrics.Counter
	brkOpen        metrics.Counter
	good           metrics.Counter
}

// New builds the application with cfg's initial topology. rnd must be a
// dedicated stream.
func New(eng *sim.Engine, rnd *rng.Rand, cfg Config) (*App, error) {
	if eng == nil || rnd == nil {
		return nil, fmt.Errorf("%w: nil engine or rng", ErrBadConfig)
	}
	if cfg.WebServers < 1 || cfg.AppServers < 1 || cfg.DBServers < 1 {
		return nil, fmt.Errorf("%w: topology %d/%d/%d", ErrBadConfig,
			cfg.WebServers, cfg.AppServers, cfg.DBServers)
	}
	if cfg.WebThreads < 1 || cfg.AppThreads < 1 || cfg.DBConnsPerApp < 1 || cfg.DBMaxConns < 1 {
		return nil, fmt.Errorf("%w: soft allocation %d/%d/%d (db max %d)", ErrBadConfig,
			cfg.WebThreads, cfg.AppThreads, cfg.DBConnsPerApp, cfg.DBMaxConns)
	}
	if cfg.QueriesPerRequest < 0 {
		return nil, fmt.Errorf("%w: %d queries per request", ErrBadConfig, cfg.QueriesPerRequest)
	}
	for _, m := range []model.Params{cfg.WebModel, cfg.AppModel, cfg.DBModel} {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	if err := cfg.Resilience.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if len(cfg.Classes) > 0 {
		if len(cfg.Servlets) > 0 {
			return nil, fmt.Errorf("%w: classes and servlets are mutually exclusive", ErrBadClasses)
		}
		// Copy the classes so later caller mutations cannot skew demand,
		// then validate and fill demand defaults on the copy.
		classes := make([]RequestClass, len(cfg.Classes))
		copy(classes, cfg.Classes)
		cfg.Classes = classes
		if err := validateClasses(cfg.Classes, cfg.QueriesPerRequest); err != nil {
			return nil, err
		}
	}
	servletWeight := 0.0
	if len(cfg.Servlets) > 0 {
		// Copy the mix so later caller mutations cannot skew the weights.
		servlets := make([]Servlet, len(cfg.Servlets))
		copy(servlets, cfg.Servlets)
		cfg.Servlets = servlets
		var err error
		if servletWeight, err = validateServlets(cfg.Servlets); err != nil {
			return nil, err
		}
	}

	a := &App{
		eng:           eng,
		rnd:           rnd,
		cfg:           cfg,
		tiers:         make(map[string]*tier, 3),
		nameSeq:       make(map[string]int, 3),
		servletWeight: servletWeight,
		servletStats:  make(map[string]*servletAccum, len(cfg.Servlets)),
		res:           cfg.Resilience,
		breakers:      make(map[string]*resilience.Breaker),

		admissionScale: 1,
	}
	for i := range cfg.Servlets {
		a.servletStats[cfg.Servlets[i].Name] = &servletAccum{}
	}
	if len(cfg.Classes) > 0 {
		a.classes = make([]classState, len(cfg.Classes))
		names := make([]string, len(cfg.Classes))
		for i := range cfg.Classes {
			names[i] = cfg.Classes[i].Name
		}
		a.classDisp = metrics.NewClassDispositions(names)
	}
	for _, name := range Tiers() {
		a.tiers[name] = &tier{
			name:     name,
			balancer: lb.New(cfg.Policy),
			members:  make(map[string]*Member),
		}
		if a.res.Breaker.Enabled() {
			// Breaker guard: a backend whose breaker is open (and not yet
			// cooled down) is skipped like a draining one. Ready is the
			// non-mutating check; the probe is consumed by Attempt at
			// dispatch time.
			a.tiers[name].balancer.SetGuard(func(be lb.Backend) bool {
				br := a.breakers[be.Name()]
				return br == nil || br.Ready(a.eng.Now())
			})
		}
	}
	for i := 0; i < cfg.WebServers; i++ {
		if _, err := a.AddServer(TierWeb, ""); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.AppServers; i++ {
		if _, err := a.AddServer(TierApp, ""); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.DBServers; i++ {
		if _, err := a.AddServer(TierDB, ""); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// Config returns the application's current configuration (soft-resource
// fields reflect runtime adjustments).
func (a *App) Config() Config { return a.cfg }

// tierOf resolves a tier by name.
func (a *App) tierOf(name string) (*tier, error) {
	t, ok := a.tiers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTier, name)
	}
	return t, nil
}

// AddServer creates a new server in the tier with the tier's current
// per-server soft allocation and registers it with the load balancer. An
// empty name auto-generates one ("app-2"). It returns the new member.
func (a *App) AddServer(tierName, name string) (*Member, error) {
	t, err := a.tierOf(tierName)
	if err != nil {
		return nil, err
	}
	if name == "" {
		a.nameSeq[tierName]++
		name = fmt.Sprintf("%s-%d", tierName, a.nameSeq[tierName])
	}
	if _, exists := t.members[name]; exists {
		return nil, fmt.Errorf("ntier: server %q already exists in %s", name, tierName)
	}

	srvCfg := server.Config{
		Name:       name,
		NoiseSigma: a.cfg.NoiseSigma,
	}
	if a.res.Enabled() {
		// Admission control applies uniformly at every tier boundary. A
		// server added during a brownout starts at the scaled-down cap,
		// not the configured one.
		srvCfg.MaxQueue = a.res.MaxQueue
		if a.res.MaxQueue > 0 && a.admissionScale < 1 {
			srvCfg.MaxQueue = a.scaledMaxQueue()
		}
		srvCfg.CoDelTarget = a.res.CoDelTarget
		srvCfg.CoDelInterval = a.res.CoDelInterval
	}
	switch tierName {
	case TierWeb:
		srvCfg.Model, srvCfg.PoolSize = a.cfg.WebModel, a.cfg.WebThreads
	case TierApp:
		// Held threads (including those blocked on the DB) contend: a
		// Tomcat thread pins memory, sockets and scheduler state whether
		// or not it is runnable, which is why oversized Tomcat pools hurt
		// even when most threads wait on MySQL (§II).
		srvCfg.Model, srvCfg.PoolSize = a.cfg.AppModel, a.cfg.AppThreads
	case TierDB:
		srvCfg.Model, srvCfg.PoolSize = a.cfg.DBModel, a.cfg.DBMaxConns
		srvCfg.ThrashKnee, srvCfg.ThrashCoef = a.cfg.DBThrashKnee, a.cfg.DBThrashCoef
		srvCfg.ThrashCap = a.cfg.DBThrashCap
		// Every open upstream connection costs coherency work whether or
		// not a query is in flight (§II's point that #A_C × #A bounds and
		// burdens MySQL's concurrency).
		srvCfg.BetaOnConfigured = true
	}
	srv, err := server.New(a.eng, a.rnd.Split("server/"+name), srvCfg)
	if err != nil {
		return nil, fmt.Errorf("ntier: add %s server: %w", tierName, err)
	}
	m := &Member{srv: srv}
	if tierName == TierApp {
		p, err := connpool.New(a.eng, name+"/dbpool", a.cfg.DBConnsPerApp)
		if err != nil {
			return nil, fmt.Errorf("ntier: add app server: %w", err)
		}
		if a.res.Enabled() && a.res.MaxPoolWaiters > 0 {
			p.SetMaxWaiters(a.res.MaxPoolWaiters)
		}
		m.pool = p
	}
	// Breakers guard calls *into* downstream tiers (web→app, app→db). The
	// web tier is the system's front door: opening a breaker there is a
	// self-inflicted outage, so the entry tier relies on admission control
	// (bounded queue + CoDel) instead.
	if a.res.Breaker.Enabled() && tierName != TierWeb {
		a.breakers[name] = resilience.NewBreaker(a.res.Breaker)
	}
	if err := t.balancer.Add(m); err != nil {
		return nil, fmt.Errorf("ntier: register %q: %w", name, err)
	}
	t.members[name] = m
	if a.reqTracer != nil {
		m.srv.SetTracer(a.reqTracer, tierName)
		if m.pool != nil {
			m.pool.SetTracer(a.reqTracer, tierName)
		}
	}
	if a.chk != nil {
		m.srv.SetInvariantChecker(a.chk)
		if m.pool != nil {
			m.pool.SetInvariantChecker(a.chk)
		}
		if br := a.breakers[name]; br != nil {
			br.SetStateHook(a.breakerTransitionHook(name))
		}
	}
	a.refreshDBConfigured()
	return m, nil
}

// SetRequestTracer attaches a request tracer to every current and future
// server and connection pool of the application (nil detaches). Requests
// injected afterwards carry tracer-assigned IDs through every tier hop.
func (a *App) SetRequestTracer(tr *trace.RequestTracer) {
	a.reqTracer = tr
	for tierName, t := range a.tiers {
		for _, m := range t.members {
			m.srv.SetTracer(tr, tierName)
			if m.pool != nil {
				m.pool.SetTracer(tr, tierName)
			}
		}
	}
}

// breakerTransitionHook returns the state-change observer validating the
// named server's breaker transitions against the legal state machine.
func (a *App) breakerTransitionHook(name string) func(from, to resilience.BreakerState) {
	return func(from, to resilience.BreakerState) {
		a.chk.BreakerTransition(a.eng.Now(), "breaker "+name, from.String(), to.String())
	}
}

// SetInvariantChecker attaches an invariant checker to the application
// and every current and future server, connection pool and circuit
// breaker (nil detaches). Like tracing, checking is read-only: it draws
// no randomness and schedules no events, so checked and unchecked runs
// are byte-identical.
func (a *App) SetInvariantChecker(c *invariant.Checker) {
	a.chk = c
	for _, t := range a.tiers {
		for _, m := range t.members {
			m.srv.SetInvariantChecker(c)
			if m.pool != nil {
				m.pool.SetInvariantChecker(c)
			}
		}
	}
	for name, br := range a.breakers {
		if c == nil {
			br.SetStateHook(nil)
		} else {
			br.SetStateHook(a.breakerTransitionHook(name))
		}
	}
}

// CheckInvariants sweeps the application's structural laws into the
// attached checker (no-op without one): request conservation (arrivals =
// dispositions + in-flight), agreement between the disposition taxonomy
// and the completion/error counters, and every current member's pool
// accounting. Removed or crashed members are no longer swept; their
// accounting froze when they left the tier.
func (a *App) CheckInvariants() {
	if a.chk == nil {
		return
	}
	now := a.eng.Now()
	if a.inFlight < 0 {
		a.chk.Violatef(now, invariant.RuleConservation, "app", 0,
			"in-flight count negative (%d)", a.inFlight)
	}
	if total := a.disp.Total(); a.injected != total+uint64(a.inFlight) {
		a.chk.Violatef(now, invariant.RuleConservation, "app", 0,
			"injected %d != %d finished dispositions + %d in-flight",
			a.injected, total, a.inFlight)
	}
	a.chk.Check(now, invariant.RuleMetrics, "app",
		a.disp.CheckConsistent(a.completions.Total(), a.errored.Total()))
	if len(a.classes) > 0 {
		// Per-class conservation plus the cross-class split: each class's
		// arrivals reconcile against its dispositions and in-flight count,
		// and the per-class tallies (with the unclassed remainder) sum to
		// the whole-system taxonomy — no classified request is lost or
		// double-counted.
		for i := range a.classes {
			st := &a.classes[i]
			name := "app/class/" + a.cfg.Classes[i].Name
			if st.inFlight < 0 {
				a.chk.Violatef(now, invariant.RuleConservation, name, 0,
					"in-flight count negative (%d)", st.inFlight)
			}
			if total := a.classDisp.Counts(i).Total(); st.injected != total+uint64(st.inFlight) {
				a.chk.Violatef(now, invariant.RuleConservation, name, 0,
					"injected %d != %d finished dispositions + %d in-flight",
					st.injected, total, st.inFlight)
			}
			a.chk.Check(now, invariant.RuleMetrics, name,
				a.classDisp.Counts(i).CheckConsistent(st.completions, st.errored))
		}
		a.chk.Check(now, invariant.RuleMetrics, "app/classes",
			a.classDisp.CheckConservation(a.unclassedDisp, a.disp))
	}
	for _, tierName := range Tiers() {
		for _, m := range a.Members(tierName) {
			a.chk.Check(now, invariant.RulePoolAccounting, tierName+"/"+m.Name(),
				m.srv.CheckInvariant())
			if m.pool != nil {
				a.chk.Check(now, invariant.RulePoolAccounting, tierName+"/"+m.pool.Name(),
					m.pool.CheckInvariant())
			}
		}
	}
}

// TierHistogramSet is the merged always-on histogram view of one tier.
type TierHistogramSet struct {
	QueueDepth  *metrics.Histogram
	ServiceTime *metrics.Histogram
	PoolWait    *metrics.Histogram // nil except for the app tier
}

// TierHistograms merges every current member's lifetime histograms into
// one per-tier view. Members removed earlier (drained or crashed) are not
// included.
func (a *App) TierHistograms(tierName string) (TierHistogramSet, error) {
	if _, err := a.tierOf(tierName); err != nil {
		return TierHistogramSet{}, err
	}
	var out TierHistogramSet
	for _, m := range a.Members(tierName) {
		if out.QueueDepth == nil {
			out.QueueDepth = m.srv.QueueDepthHistogram().CloneEmpty()
			out.ServiceTime = m.srv.ServiceTimeHistogram().CloneEmpty()
		}
		out.QueueDepth.Merge(m.srv.QueueDepthHistogram())
		out.ServiceTime.Merge(m.srv.ServiceTimeHistogram())
		if m.pool != nil {
			if out.PoolWait == nil {
				out.PoolWait = m.pool.WaitHistogram().CloneEmpty()
			}
			out.PoolWait.Merge(m.pool.WaitHistogram())
		}
	}
	return out, nil
}

// refreshDBConfigured re-derives each DB server's configured concurrency:
// the total allocated upstream connections divided over the accepting DB
// servers. Called on every topology or connection-pool change.
func (a *App) refreshDBConfigured() {
	apps := 0
	for _, m := range a.tiers[TierApp].members {
		if m.srv.Accepting() {
			apps++
		}
	}
	dbs := 0
	for _, m := range a.tiers[TierDB].members {
		if m.srv.Accepting() {
			dbs++
		}
	}
	if dbs == 0 {
		return
	}
	perDB := (a.cfg.DBConnsPerApp*apps + dbs - 1) / dbs
	for _, m := range a.tiers[TierDB].members {
		m.srv.SetConfiguredConcurrency(perDB)
	}
}

// Member returns the named server of a tier.
func (a *App) Member(tierName, name string) (*Member, error) {
	t, err := a.tierOf(tierName)
	if err != nil {
		return nil, err
	}
	m, ok := t.members[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownServer, tierName, name)
	}
	return m, nil
}

// Members returns the tier's members in balancer registration order.
func (a *App) Members(tierName string) []*Member {
	t, err := a.tierOf(tierName)
	if err != nil {
		return nil
	}
	backends := t.balancer.Backends()
	out := make([]*Member, 0, len(backends))
	for _, b := range backends {
		if m, ok := t.members[b.Name()]; ok {
			out = append(out, m)
		}
	}
	return out
}

// ServerCount returns the number of servers in the tier (including
// draining ones still attached).
func (a *App) ServerCount(tierName string) int {
	t, err := a.tierOf(tierName)
	if err != nil {
		return 0
	}
	return len(t.members)
}

// StartDrain marks a server as draining (no new work) and invokes
// onDrained once it is idle, after which the server may be removed.
// Draining the last accepting server of a tier is rejected — it would
// black-hole all traffic.
func (a *App) StartDrain(tierName, name string, onDrained func()) error {
	t, err := a.tierOf(tierName)
	if err != nil {
		return err
	}
	m, ok := t.members[name]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnknownServer, tierName, name)
	}
	if m.srv.Accepting() && t.balancer.ReadyCount() <= 1 {
		return fmt.Errorf("%w: %s", ErrLastServer, tierName)
	}
	m.srv.SetAccepting(false)
	var poll func()
	poll = func() {
		if m.srv.Active() == 0 && m.srv.QueueLen() == 0 && (m.pool == nil || m.pool.InUse() == 0) {
			if onDrained != nil {
				onDrained()
			}
			return
		}
		a.eng.Schedule(100*time.Millisecond, poll)
	}
	a.eng.Schedule(0, poll)
	return nil
}

// RemoveServer detaches a drained server from the tier. Removing a server
// that is still accepting or busy is an error; callers should StartDrain
// first.
func (a *App) RemoveServer(tierName, name string) error {
	t, err := a.tierOf(tierName)
	if err != nil {
		return err
	}
	m, ok := t.members[name]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnknownServer, tierName, name)
	}
	if m.srv.Accepting() {
		return fmt.Errorf("ntier: remove %s/%s: still accepting (drain first)", tierName, name)
	}
	if m.srv.Active() > 0 || m.srv.QueueLen() > 0 {
		return fmt.Errorf("ntier: remove %s/%s: still busy", tierName, name)
	}
	if err := t.balancer.Remove(name); err != nil {
		return fmt.Errorf("ntier: remove %s/%s: %w", tierName, name, err)
	}
	delete(t.members, name)
	delete(a.breakers, name)
	a.refreshDBConfigured()
	return nil
}

// FailServer crashes a server abruptly (failure injection): it is removed
// from the load balancer immediately, queued requests fail, and in-flight
// requests on it are lost. Unlike StartDrain, failing the last server of a
// tier is allowed — crashes do not ask permission — after which requests
// needing that tier fail until a replacement joins.
func (a *App) FailServer(tierName, name string) error {
	t, err := a.tierOf(tierName)
	if err != nil {
		return err
	}
	m, ok := t.members[name]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrUnknownServer, tierName, name)
	}
	if err := t.balancer.Remove(name); err != nil {
		return fmt.Errorf("ntier: fail %s/%s: %w", tierName, name, err)
	}
	delete(t.members, name)
	delete(a.breakers, name)
	m.srv.Kill()
	a.refreshDBConfigured()
	return nil
}

// SetWebThreads resizes every web server's thread pool and updates the
// allocation used for future servers.
func (a *App) SetWebThreads(n int) {
	if n < 1 {
		n = 1
	}
	a.cfg.WebThreads = n
	for _, m := range a.tiers[TierWeb].members {
		m.srv.SetPoolSize(n)
	}
}

// SetAppThreads resizes every app server's thread pool (the APP-agent's
// Tomcat STP knob, §IV-B) and updates the allocation for future servers.
func (a *App) SetAppThreads(n int) {
	if n < 1 {
		n = 1
	}
	a.cfg.AppThreads = n
	for _, m := range a.tiers[TierApp].members {
		m.srv.SetPoolSize(n)
	}
}

// SetDBConnsPerApp resizes every app server's DB connection pool (the
// APP-agent's MySQL-concurrency knob, §IV-B) and updates the allocation
// for future servers.
func (a *App) SetDBConnsPerApp(n int) {
	if n < 1 {
		n = 1
	}
	a.cfg.DBConnsPerApp = n
	for _, m := range a.tiers[TierApp].members {
		if m.pool != nil {
			m.pool.Resize(n)
		}
	}
	a.refreshDBConfigured()
}

// Allocation returns the current soft-resource allocation in the paper's
// #W_T/#A_T/#A_C form.
func (a *App) Allocation() model.Allocation {
	return model.Allocation{
		WebThreadsPerServer: a.cfg.WebThreads,
		AppThreadsPerServer: a.cfg.AppThreads,
		DBConnsPerAppServer: a.cfg.DBConnsPerApp,
	}
}

// InFlight returns the number of requests currently inside the system.
func (a *App) InFlight() int { return a.inFlight }

// TotalCompletions returns the lifetime number of completed requests.
func (a *App) TotalCompletions() uint64 { return a.completions.Total() }

// TotalErrors returns the lifetime number of failed requests (no backend
// available).
func (a *App) TotalErrors() uint64 { return a.errored.Total() }

// TotalGood returns the lifetime number of good completions — requests
// that finished within the resilience config's goodput SLA. Zero when
// resilience is disabled (every completion is then merely "completed").
func (a *App) TotalGood() uint64 { return a.good.Total() }

// Dispositions returns the lifetime disposition tally of finished
// requests (ok, error, timeout, rejected, shed, breaker-open).
func (a *App) Dispositions() metrics.DispositionCounts { return a.disp }

// Breaker returns the named server's circuit breaker, nil when breakers
// are disabled or the server is unknown.
func (a *App) Breaker(name string) *resilience.Breaker { return a.breakers[name] }

// deadlineFor computes the absolute deadline for a request arriving at
// start (zero when request timeouts are off).
func (a *App) deadlineFor(start sim.Time) sim.Time {
	if a.res.RequestTimeout <= 0 {
		return 0
	}
	return start + a.res.RequestTimeout
}

// pickDisposition classifies a balancer Pick error: a guard refusal is a
// breaker-open outcome, anything else a plain error (tier down).
func pickDisposition(err error) metrics.Disposition {
	if errors.Is(err, lb.ErrGuarded) {
		return metrics.DispositionBreakerOpen
	}
	return metrics.DispositionError
}

// breakerAttempt consumes a breaker admission for the member (half-open
// probe accounting); true when the call may proceed. Always true when
// breakers are off.
func (a *App) breakerAttempt(m *Member) bool {
	br := a.breakers[m.Name()]
	return br == nil || br.Attempt(a.eng.Now())
}

// breakerRecord feeds a call outcome to the member's breaker. Only
// genuine backend verdicts count: OK is a success, errors and timeouts
// are failures. Backpressure verdicts (rejected, shed, a downstream
// breaker refusing) bypass the failure window — shedding is the admission
// layer doing its job, not evidence this backend is sick, and counting it
// would let a load spike open every breaker and escalate backpressure
// into a full outage.
func (a *App) breakerRecord(m *Member, disp metrics.Disposition) {
	br := a.breakers[m.Name()]
	if br == nil {
		return
	}
	switch disp {
	case metrics.DispositionOK:
		br.Record(a.eng.Now(), true)
	case metrics.DispositionError, metrics.DispositionTimeout:
		br.Record(a.eng.Now(), false)
	default:
		br.RecordNeutral()
	}
}

// tally folds one finished request's disposition into the app counters
// (the per-disposition interval counters feed Stats; each counts finished
// requests, wherever in the tier graph the outcome was decided).
func (a *App) tally(d metrics.Disposition) {
	a.disp.Observe(d)
	switch d {
	case metrics.DispositionTimeout:
		a.timedOut.Inc(1)
	case metrics.DispositionRejected:
		a.rejected.Inc(1)
	case metrics.DispositionShed:
		a.shed.Inc(1)
	case metrics.DispositionBreakerOpen:
		a.brkOpen.Inc(1)
	}
}

// Inject sends one HTTP request through the system. done (optional) is
// invoked on completion with the end-to-end response time and whether the
// request succeeded. With a servlet mix configured, the request's class is
// drawn by weight. When resilience is configured the request carries an
// absolute deadline across every tier hop; its outcome is tallied as a
// disposition (Dispositions) and, when it completes within the goodput
// SLA, as a good completion (TotalGood).
func (a *App) Inject(done func(rt time.Duration, ok bool)) {
	a.InjectClass(-1, 0, done)
}

// InjectClass is Inject for class-mixed workloads: class indexes the
// configured Classes (any out-of-range value, canonically -1, injects the
// classless single-class flow, which is what Inject does), and session,
// when non-zero, is a session-affinity key — the web tier then picks the
// session's rendezvous-hashed home backend instead of rotating, so a
// user's requests stick to one Apache while it stays ready. The class's
// priority (criticality), demand profile and SLO ride the request through
// every tier, and its outcome lands in the per-class disposition tally.
// A classless, sessionless call is byte-identical to Inject.
func (a *App) InjectClass(class int, session uint64, done func(rt time.Duration, ok bool)) {
	start := a.eng.Now()
	deadline := a.deadlineFor(start)
	a.inFlight++
	a.injected++
	var servlet *Servlet
	if len(a.cfg.Servlets) > 0 {
		servlet = a.pickServlet()
	}
	var cls *RequestClass
	if class >= 0 && class < len(a.cfg.Classes) {
		cls = &a.cfg.Classes[class]
		a.classes[class].injected++
		a.classes[class].inFlight++
	} else {
		class = -1
	}
	critical := cls != nil && cls.Priority > 0
	tr := a.beginTrace(servlet)
	req := a.reqTracer.Begin()
	a.reqTracer.Record(req, trace.EventArrive, "", "", start)
	if cls != nil {
		a.reqTracer.RecordClass(req, cls.Name, start)
	}
	finish := func(disp metrics.Disposition) {
		ok := disp == metrics.DispositionOK
		a.inFlight--
		if a.chk != nil && a.inFlight < 0 {
			a.chk.Violatef(a.eng.Now(), invariant.RuleConservation, "app", req,
				"request finish drove in-flight negative (%d)", a.inFlight)
		}
		rt := a.eng.Now() - start
		kind := trace.EventDone
		if !ok {
			kind = trace.EventFail
		}
		a.reqTracer.Record(req, kind, "", "", a.eng.Now())
		a.tally(disp)
		if ok {
			a.completions.Inc(1)
			a.rts.Observe(rt.Seconds())
			a.rtWindow = append(a.rtWindow, rt.Seconds())
			if a.res.Enabled() {
				if sla := a.res.GoodputSLA(); sla <= 0 || rt <= sla {
					a.good.Inc(1)
				}
			}
		} else {
			a.errored.Inc(1)
		}
		if cls != nil {
			st := &a.classes[class]
			st.inFlight--
			a.classDisp.Observe(class, disp)
			if ok {
				st.completions++
				st.rtSum += rt.Seconds()
				// The class SLO overrides the global goodput SLA; without
				// one, fall back to the resilience-wide threshold.
				sla := cls.SLO
				if sla <= 0 {
					sla = a.res.GoodputSLA()
				}
				if sla <= 0 || rt <= sla {
					st.good++
				}
			} else {
				st.errored++
			}
		} else {
			a.unclassedDisp.Observe(disp)
		}
		if servlet != nil {
			acc := a.servletStats[servlet.Name]
			if ok {
				acc.completions.Inc(1)
				acc.rtSum += rt.Seconds()
			} else {
				acc.errored.Inc(1)
			}
		}
		if tr != nil {
			tr.Total = rt
			tr.OK = ok
		}
		if done != nil {
			done(rt, ok)
		}
	}

	// Brownout front-door shed: while the degrade controller holds a shed
	// ratio, best-effort arrivals are dropped before they touch the web
	// tier. Critical (Priority > 0) classes are never brownout-shed. The
	// error-diffusion accumulator spreads the ratio exactly across
	// arrivals with no rng draw, so enabling the layer perturbs no other
	// stream and disabling it is byte-identical.
	if a.brownoutShed > 0 && !critical && a.brownoutTake() {
		a.brownoutSheds++
		if cls != nil {
			a.classes[class].bshed++
		}
		a.reqTracer.Record(req, trace.EventShed, "", "", a.eng.Now())
		finish(metrics.DispositionShed)
		return
	}

	webBackend, err := a.pickWeb(session)
	if err != nil {
		if errors.Is(err, lb.ErrGuarded) {
			a.reqTracer.Record(req, trace.EventBreakerOpen, TierWeb, "", a.eng.Now())
		}
		finish(pickDisposition(err))
		return
	}
	web, ok := a.tiers[TierWeb].members[webBackend.Name()]
	if !ok {
		finish(metrics.DispositionError)
		return
	}
	if !a.breakerAttempt(web) {
		a.reqTracer.Record(req, trace.EventBreakerOpen, TierWeb, web.Name(), a.eng.Now())
		finish(metrics.DispositionBreakerOpen)
		return
	}
	webStart := a.eng.Now()
	web.srv.AcquireDeadlineCritical(req, deadline, critical, func(webSess *server.Session, acqDisp metrics.Disposition) {
		if webSess == nil {
			a.breakerRecord(web, acqDisp)
			finish(acqDisp)
			return
		}
		webSess.Exec(func() {
			if webSess.TimedOut() {
				webSess.Release()
				a.span(tr, "web", web.Name(), webStart)
				a.breakerRecord(web, metrics.DispositionTimeout)
				finish(metrics.DispositionTimeout)
				return
			}
			a.dispatchApp(req, deadline, servlet, cls, critical, tr, func(disp metrics.Disposition) {
				webSess.Release()
				a.span(tr, "web", web.Name(), webStart)
				if disp == metrics.DispositionOK && webSess.Killed() {
					disp = metrics.DispositionError
				}
				a.breakerRecord(web, disp)
				finish(disp)
			})
		})
	})
}

// pickWeb selects the front-door backend: the session's sticky backend
// for session-keyed requests, the tier policy's pick otherwise.
func (a *App) pickWeb(session uint64) (lb.Backend, error) {
	if session != 0 {
		return a.tiers[TierWeb].balancer.PickSession(session)
	}
	return a.tiers[TierWeb].balancer.Pick()
}

// dispatchApp runs the application-tier stage of a request. req is the
// tracing request ID (0 = untraced); deadline is the request's absolute
// deadline (0 = none); servlet and cls are nil for the single-class flow
// (at most one is set — the mixes are mutually exclusive); critical marks
// a shed-exempt request; tr is nil unless the request is waterfall-traced.
func (a *App) dispatchApp(req uint64, deadline sim.Time, servlet *Servlet, cls *RequestClass, critical bool, tr *RequestTrace, done func(metrics.Disposition)) {
	if deadline > 0 && a.eng.Now() >= deadline {
		done(metrics.DispositionTimeout)
		return
	}
	appBackend, err := a.tiers[TierApp].balancer.Pick()
	if err != nil {
		if errors.Is(err, lb.ErrGuarded) {
			a.reqTracer.Record(req, trace.EventBreakerOpen, TierApp, "", a.eng.Now())
		}
		done(pickDisposition(err))
		return
	}
	app, ok := a.tiers[TierApp].members[appBackend.Name()]
	if !ok {
		done(metrics.DispositionError)
		return
	}
	if !a.breakerAttempt(app) {
		a.reqTracer.Record(req, trace.EventBreakerOpen, TierApp, app.Name(), a.eng.Now())
		done(metrics.DispositionBreakerOpen)
		return
	}
	appDemand, queries, queryDemand := 1.0, a.cfg.QueriesPerRequest, 1.0
	if servlet != nil {
		appDemand, queries, queryDemand = servlet.AppDemand, servlet.Queries, servlet.QueryDemand
	} else if cls != nil {
		appDemand, queries, queryDemand = cls.AppDemand, cls.Queries, cls.QueryDemand
	}
	appStart := a.eng.Now()
	app.srv.AcquireDeadlineCritical(req, deadline, critical, func(appSess *server.Session, acqDisp metrics.Disposition) {
		if appSess == nil {
			a.breakerRecord(app, acqDisp)
			done(acqDisp)
			return
		}
		appSess.ExecDemand(appDemand, func() {
			if appSess.TimedOut() {
				appSess.Release()
				a.appRes.Observe((a.eng.Now() - appStart).Seconds())
				a.span(tr, "app", app.Name(), appStart)
				a.breakerRecord(app, metrics.DispositionTimeout)
				done(metrics.DispositionTimeout)
				return
			}
			a.runQueries(req, deadline, app, critical, tr, 0, queries, queryDemand, func(disp metrics.Disposition) {
				appSess.Release()
				a.appRes.Observe((a.eng.Now() - appStart).Seconds())
				a.span(tr, "app", app.Name(), appStart)
				if disp == metrics.DispositionOK && appSess.Killed() {
					disp = metrics.DispositionError
				}
				a.breakerRecord(app, disp)
				done(disp)
			})
		})
	})
}

// runQueries issues the request's MySQL queries sequentially through the
// app member's connection pool, checking the deadline before each query.
func (a *App) runQueries(req uint64, deadline sim.Time, app *Member, critical bool, tr *RequestTrace, issued, queries int, queryDemand float64, done func(metrics.Disposition)) {
	if issued >= queries {
		done(metrics.DispositionOK)
		return
	}
	if deadline > 0 && a.eng.Now() >= deadline {
		done(metrics.DispositionTimeout)
		return
	}
	queryStart := a.eng.Now()
	app.pool.AcquireDeadline(req, deadline, func(conn *connpool.Conn, acqDisp metrics.Disposition) {
		if conn == nil {
			done(acqDisp)
			return
		}
		dbBackend, err := a.tiers[TierDB].balancer.Pick()
		if err != nil {
			conn.Release()
			if errors.Is(err, lb.ErrGuarded) {
				a.reqTracer.Record(req, trace.EventBreakerOpen, TierDB, "", a.eng.Now())
			}
			done(pickDisposition(err))
			return
		}
		db, ok := a.tiers[TierDB].members[dbBackend.Name()]
		if !ok {
			conn.Release()
			done(metrics.DispositionError)
			return
		}
		if !a.breakerAttempt(db) {
			conn.Release()
			a.reqTracer.Record(req, trace.EventBreakerOpen, TierDB, db.Name(), a.eng.Now())
			done(metrics.DispositionBreakerOpen)
			return
		}
		db.srv.AcquireDeadlineCritical(req, deadline, critical, func(dbSess *server.Session, dbDisp metrics.Disposition) {
			if dbSess == nil {
				conn.Release()
				a.breakerRecord(db, dbDisp)
				done(dbDisp)
				return
			}
			dbSess.ExecDemand(queryDemand, func() {
				killed := dbSess.Killed()
				timedOut := dbSess.TimedOut()
				dbSess.Release()
				conn.Release()
				a.dbRes.Observe((a.eng.Now() - queryStart).Seconds())
				a.span(tr, fmt.Sprintf("db-query-%d", issued+1), db.Name(), queryStart)
				switch {
				case killed:
					a.breakerRecord(db, metrics.DispositionError)
					done(metrics.DispositionError)
				case timedOut:
					a.breakerRecord(db, metrics.DispositionTimeout)
					done(metrics.DispositionTimeout)
				default:
					a.breakerRecord(db, metrics.DispositionOK)
					a.runQueries(req, deadline, app, critical, tr, issued+1, queries, queryDemand, done)
				}
			})
		})
	})
}

// Stats is one monitoring interval of whole-system metrics.
type Stats struct {
	// Completions and Errors are counts in the interval.
	Completions uint64 `json:"completions"`
	Errors      uint64 `json:"errors"`
	// MeanRTSeconds is the mean response time of requests completed in the
	// interval.
	MeanRTSeconds float64 `json:"meanRTSeconds"`
	// MeanAppResidence is the mean time a request occupied an app-tier
	// thread (queue wait + servlet CPU + its DB visits); MeanDBResidence
	// is the mean per-query time including connection-pool wait. Together
	// they attribute end-to-end latency to tiers.
	MeanAppResidence float64 `json:"meanAppResidence"`
	MeanDBResidence  float64 `json:"meanDBResidence"`
	// RT is the full response-time summary for the interval.
	RT metrics.Summary `json:"rt"`
	// InFlight is the instantaneous number of requests in the system.
	InFlight int `json:"inFlight"`
	// Resilience outcome counts for requests finished in the interval
	// (subsets of Errors, except Good which is the subset of Completions
	// within the goodput SLA). All zero — and absent from JSON — when
	// resilience is disabled.
	Good        uint64 `json:"good,omitempty"`
	TimedOut    uint64 `json:"timedOut,omitempty"`
	Rejected    uint64 `json:"rejected,omitempty"`
	Shed        uint64 `json:"shed,omitempty"`
	BreakerOpen uint64 `json:"breakerOpen,omitempty"`
}

// TakeStats returns system metrics accumulated since the previous call and
// starts a new interval.
func (a *App) TakeStats() Stats {
	mean, _ := a.rts.TakeMean()
	appMean, _ := a.appRes.TakeMean()
	dbMean, _ := a.dbRes.TakeMean()
	st := Stats{
		Completions:      a.completions.TakeDelta(),
		Errors:           a.errored.TakeDelta(),
		MeanRTSeconds:    mean,
		MeanAppResidence: appMean,
		MeanDBResidence:  dbMean,
		RT:               metrics.Summarize(a.rtWindow),
		InFlight:         a.inFlight,
		Good:             a.good.TakeDelta(),
		TimedOut:         a.timedOut.TakeDelta(),
		Rejected:         a.rejected.TakeDelta(),
		Shed:             a.shed.TakeDelta(),
		BreakerOpen:      a.brkOpen.TakeDelta(),
	}
	a.rtWindow = a.rtWindow[:0]
	return st
}
