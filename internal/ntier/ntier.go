// Package ntier assembles simulated component servers into the 3-tier
// RUBBoS-style web application of the paper (Fig. 1(c)): an Apache web
// tier, a Tomcat application tier, and a MySQL database tier, with HAProxy
// load balancers in front of the scalable tiers and one shared DB
// connection pool per Tomcat.
//
// A request follows the paper's flow (§III-A): it occupies an Apache worker
// thread, which dispatches to a Tomcat server; the Tomcat thread runs the
// servlet's CPU work and then issues QueriesPerRequest sequential MySQL
// queries, each through the Tomcat's DB connection pool — the pool that
// bounds MySQL's request-processing concurrency from upstream (§IV-B).
// Threads are held across downstream calls, exactly as in the real stack.
//
// Since the service-graph generalization the package is a facade: it
// assembles the paper's chain as a 3-node linear graph (internal/graph's
// ChainSpec) and forwards every operation to the graph engine. The facade
// preserves the historical API and — bit for bit — the historical event
// and rng stream: the chain walk is the 3-node special case of the graph
// walk, which the sha256 digest regressions in internal/experiments pin.
package ntier

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/graph"
	"dcm/internal/invariant"
	"dcm/internal/lb"
	"dcm/internal/metrics"
	"dcm/internal/model"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
	"dcm/internal/trace"
)

// Tier names.
const (
	TierWeb = "web"
	TierApp = "app"
	TierDB  = "db"
)

// Tiers lists the tier names front to back.
func Tiers() []string { return []string{TierWeb, TierApp, TierDB} }

// Config describes the application's service-time laws and initial soft
// and hard resource allocation.
type Config struct {
	// WebModel, AppModel, DBModel are the Equation 5 burst laws: per
	// request for web and app, per query for the DB.
	WebModel, AppModel, DBModel model.Params
	// WebThreads, AppThreads are per-server thread pool sizes (#W_T, #A_T).
	WebThreads, AppThreads int
	// DBConnsPerApp is each Tomcat's DB connection pool size (#A_C).
	DBConnsPerApp int
	// DBMaxConns is MySQL's own connection limit, normally generous: the
	// paper controls MySQL concurrency from upstream pools instead.
	DBMaxConns int
	// QueriesPerRequest is the DB visit ratio V_db (the paper's example
	// workload issues 2 queries per HTTP request). It is used by the
	// single-class flow; a non-empty Servlets mix overrides it per class.
	QueriesPerRequest int
	// Servlets, when non-empty, enables the multi-class request mix
	// (§II-A's RUBBoS servlets): each request is drawn from the mix and
	// carries its class's CPU demand and query behaviour. Empty keeps the
	// single uniform class the calibration uses.
	Servlets []Servlet
	// Classes, when non-empty, enables workload-driven traffic classes:
	// the generator picks the class per request and injects it through
	// InjectClass, which applies the class's priority, SLO and demand
	// profile and tallies per-class dispositions. Mutually exclusive with
	// Servlets (a class carries its own demand profile).
	Classes []RequestClass
	// WebServers, AppServers, DBServers are the initial #W/#A/#D.
	WebServers, AppServers, DBServers int
	// NoiseSigma adds mean-one lognormal noise to every burst.
	NoiseSigma float64
	// DBThrashKnee, DBThrashCoef and DBThrashCap give the database servers
	// the super-quadratic collapse past the knee that real MySQL exhibits
	// (see server.Config); they are what make over-concurrency at the DB
	// tier genuinely harmful, as in Fig. 2, and create the bistable
	// collapsed state the scale-out trap locks into.
	DBThrashKnee int
	DBThrashCoef float64
	DBThrashCap  float64
	// Policy selects the load-balancing policy (default round-robin).
	Policy lb.Policy
	// Resilience configures the data-plane resilience features: request
	// deadlines propagated across every tier hop, per-backend circuit
	// breakers at the tier boundaries, bounded admission queues and CoDel
	// shedding. The zero value disables everything and leaves the request
	// flow byte-identical to the resilience-free application.
	Resilience resilience.Config
}

// DefaultConfig returns the calibrated simulator configuration:
// a 1/1/1 topology with the paper's default 1000/100/80 soft allocation.
//
// The burst laws are calibrated against Table I so that the *measured*
// behaviour of the simulated system reproduces the paper's numbers:
//
//   - the MySQL per-query law keeps Table I's exact shape (scaling every
//     parameter by one factor preserves N_b = 36 and the relative
//     throughput curve) at a scale where the MySQL tier saturates at
//     ≈1000 requests/s — high enough not to mask the Tomcat tier's
//     optimum in the 1/1/1 configuration;
//   - the Tomcat per-request CPU law is tuned so the *composite*
//     throughput-vs-threads curve measured at the Tomcat tier (CPU burst
//     plus two in-thread MySQL visits, exactly what §V-A's training run
//     observes) peaks near N_b ≈ 20 at ≈946 requests/s — Table I's values;
//   - the Apache law is a fast pass-through that never bottlenecks, as in
//     the paper (the web tier is never scaled).
func DefaultConfig() Config {
	return Config{
		WebModel: model.Params{S0: 4e-4, Alpha: 5e-7, Beta: 1e-10, Gamma: 1},
		AppModel: model.Params{S0: 1.0e-4, Alpha: 2.6e-4, Beta: 1.5e-5, Gamma: 1},
		DBModel:  model.Params{S0: 6.867e-4, Alpha: 4.814e-4, Beta: 1.576e-7, Gamma: 1},

		WebThreads:        1000,
		AppThreads:        100,
		DBConnsPerApp:     80,
		DBMaxConns:        2000,
		QueriesPerRequest: 2,
		WebServers:        1,
		AppServers:        1,
		DBServers:         1,

		DBThrashKnee: 40,
		DBThrashCoef: 1.3e-5,

		// HAProxy is configured with least-connections balancing, the
		// standard choice for long-lived backend requests and what lets a
		// newly added server absorb a tier's backlog after scaling
		// (§IV-A's "rebalance the load to the tiers after scaling").
		Policy: lb.LeastConnections,
	}
}

// Errors returned by the application. The tier/server/last-server errors
// are the graph engine's own sentinels, re-exported under their historical
// names so errors.Is keeps working across the facade.
var (
	ErrBadConfig     = errors.New("ntier: invalid config")
	ErrUnknownTier   = graph.ErrUnknownNode
	ErrUnknownServer = graph.ErrUnknownMember
	ErrLastServer    = graph.ErrLastMember
)

// Member is one server of a tier, together with its tier-specific soft
// resources (app members own a DB connection pool). It is the graph
// engine's member type: Pool returns the member's first pooled out-edge —
// for the chain, exactly the app tier's DB connection pool.
type Member = graph.Member

// TierHistogramSet is the merged always-on histogram view of one tier.
type TierHistogramSet = graph.NodeHistogramSet

// App is the assembled n-tier application: a thin facade over the 3-node
// linear service graph.
type App struct {
	g   *graph.App
	cfg Config
}

// chainSpec translates the chain config into the graph topology.
func chainSpec(cfg Config) graph.Spec {
	return graph.ChainSpec(
		cfg.WebModel, cfg.AppModel, cfg.DBModel,
		cfg.WebThreads, cfg.AppThreads, cfg.DBConnsPerApp, cfg.DBMaxConns,
		cfg.QueriesPerRequest,
		cfg.WebServers, cfg.AppServers, cfg.DBServers,
		cfg.DBThrashKnee, cfg.DBThrashCoef, cfg.DBThrashCap)
}

// servletProfiles translates the servlet mix into graph demand profiles:
// a servlet's app demand scales the app node, its query demand the db
// node, and its query count the app→db visit ratio.
func servletProfiles(servlets []Servlet) []graph.Profile {
	out := make([]graph.Profile, len(servlets))
	for i, s := range servlets {
		nd := map[string]float64{TierApp: s.AppDemand}
		if s.QueryDemand > 0 {
			nd[TierDB] = s.QueryDemand
		}
		out[i] = graph.Profile{
			Name:       s.Name,
			Weight:     s.Weight,
			NodeDemand: nd,
			EdgeVisits: map[string]int{TierApp + "->" + TierDB: s.Queries},
		}
	}
	return out
}

// classProfiles translates validated (default-filled) traffic classes.
func classProfiles(classes []RequestClass) []graph.Class {
	out := make([]graph.Class, len(classes))
	for i, c := range classes {
		out[i] = graph.Class{
			Name:     c.Name,
			Priority: c.Priority,
			SLO:      c.SLO,
			Profile: graph.Profile{
				NodeDemand: map[string]float64{TierApp: c.AppDemand, TierDB: c.QueryDemand},
				EdgeVisits: map[string]int{TierApp + "->" + TierDB: c.Queries},
			},
		}
	}
	return out
}

// New builds the application with cfg's initial topology. rnd must be a
// dedicated stream.
func New(eng *sim.Engine, rnd *rng.Rand, cfg Config) (*App, error) {
	if eng == nil || rnd == nil {
		return nil, fmt.Errorf("%w: nil engine or rng", ErrBadConfig)
	}
	if cfg.WebServers < 1 || cfg.AppServers < 1 || cfg.DBServers < 1 {
		return nil, fmt.Errorf("%w: topology %d/%d/%d", ErrBadConfig,
			cfg.WebServers, cfg.AppServers, cfg.DBServers)
	}
	if cfg.WebThreads < 1 || cfg.AppThreads < 1 || cfg.DBConnsPerApp < 1 || cfg.DBMaxConns < 1 {
		return nil, fmt.Errorf("%w: soft allocation %d/%d/%d (db max %d)", ErrBadConfig,
			cfg.WebThreads, cfg.AppThreads, cfg.DBConnsPerApp, cfg.DBMaxConns)
	}
	if cfg.QueriesPerRequest < 0 {
		return nil, fmt.Errorf("%w: %d queries per request", ErrBadConfig, cfg.QueriesPerRequest)
	}
	for _, m := range []model.Params{cfg.WebModel, cfg.AppModel, cfg.DBModel} {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	if err := cfg.Resilience.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if len(cfg.Classes) > 0 {
		if len(cfg.Servlets) > 0 {
			return nil, fmt.Errorf("%w: classes and servlets are mutually exclusive", ErrBadClasses)
		}
		// Copy the classes so later caller mutations cannot skew demand,
		// then validate and fill demand defaults on the copy.
		classes := make([]RequestClass, len(cfg.Classes))
		copy(classes, cfg.Classes)
		cfg.Classes = classes
		if err := validateClasses(cfg.Classes, cfg.QueriesPerRequest); err != nil {
			return nil, err
		}
	}
	if len(cfg.Servlets) > 0 {
		// Copy the mix so later caller mutations cannot skew the weights.
		servlets := make([]Servlet, len(cfg.Servlets))
		copy(servlets, cfg.Servlets)
		cfg.Servlets = servlets
		if _, err := validateServlets(cfg.Servlets); err != nil {
			return nil, err
		}
	}

	g, err := graph.New(eng, rnd, graph.Config{
		Spec:       chainSpec(cfg),
		NoiseSigma: cfg.NoiseSigma,
		Policy:     cfg.Policy,
		Resilience: cfg.Resilience,
		Mix:        servletProfiles(cfg.Servlets),
		Classes:    classProfiles(cfg.Classes),
	})
	if err != nil {
		return nil, err
	}
	return &App{g: g, cfg: cfg}, nil
}

// Config returns the application's current configuration (soft-resource
// fields reflect runtime adjustments).
func (a *App) Config() Config { return a.cfg }

// Graph returns the underlying service-graph engine the facade drives —
// the 3-node chain. It exists for callers that speak the graph API
// (topology experiments, conservation tests); chain-shaped code should
// stay on the facade.
func (a *App) Graph() *graph.App { return a.g }

// AddServer creates a new server in the tier with the tier's current
// per-server soft allocation and registers it with the load balancer. An
// empty name auto-generates one ("app-2"). It returns the new member.
func (a *App) AddServer(tierName, name string) (*Member, error) {
	return a.g.AddMember(tierName, name)
}

// SetRequestTracer attaches a request tracer to every current and future
// server and connection pool of the application (nil detaches). Requests
// injected afterwards carry tracer-assigned IDs through every tier hop.
func (a *App) SetRequestTracer(tr *trace.RequestTracer) { a.g.SetRequestTracer(tr) }

// SetInvariantChecker attaches an invariant checker to the application
// and every current and future server, connection pool and circuit
// breaker (nil detaches). Like tracing, checking is read-only: it draws
// no randomness and schedules no events, so checked and unchecked runs
// are byte-identical.
func (a *App) SetInvariantChecker(c *invariant.Checker) { a.g.SetInvariantChecker(c) }

// CheckInvariants sweeps the application's structural laws into the
// attached checker (no-op without one): request conservation (arrivals =
// dispositions + in-flight), agreement between the disposition taxonomy
// and the completion/error counters, per-node visit ledgers, and every
// current member's pool accounting. Removed or crashed members are no
// longer swept; their accounting froze when they left the tier.
func (a *App) CheckInvariants() { a.g.CheckInvariants() }

// TierHistograms merges every current member's lifetime histograms into
// one per-tier view. Members removed earlier (drained or crashed) are not
// included.
func (a *App) TierHistograms(tierName string) (TierHistogramSet, error) {
	return a.g.NodeHistograms(tierName)
}

// Member returns the named server of a tier.
func (a *App) Member(tierName, name string) (*Member, error) {
	return a.g.Member(tierName, name)
}

// Members returns the tier's members in balancer registration order.
func (a *App) Members(tierName string) []*Member { return a.g.Members(tierName) }

// ServerCount returns the number of servers in the tier (including
// draining ones still attached).
func (a *App) ServerCount(tierName string) int { return a.g.MemberCount(tierName) }

// StartDrain marks a server as draining (no new work) and invokes
// onDrained once it is idle, after which the server may be removed.
// Draining the last accepting server of a tier is rejected — it would
// black-hole all traffic.
func (a *App) StartDrain(tierName, name string, onDrained func()) error {
	return a.g.StartDrain(tierName, name, onDrained)
}

// RemoveServer detaches a drained server from the tier. Removing a server
// that is still accepting or busy is an error; callers should StartDrain
// first.
func (a *App) RemoveServer(tierName, name string) error {
	return a.g.RemoveMember(tierName, name)
}

// FailServer crashes a server abruptly (failure injection): it is removed
// from the load balancer immediately, queued requests fail, and in-flight
// requests on it are lost. Unlike StartDrain, failing the last server of a
// tier is allowed — crashes do not ask permission — after which requests
// needing that tier fail until a replacement joins.
func (a *App) FailServer(tierName, name string) error {
	return a.g.FailMember(tierName, name)
}

// SetWebThreads resizes every web server's thread pool and updates the
// allocation used for future servers.
func (a *App) SetWebThreads(n int) {
	if n < 1 {
		n = 1
	}
	a.cfg.WebThreads = n
	_ = a.g.SetNodeThreads(TierWeb, n)
}

// SetAppThreads resizes every app server's thread pool (the APP-agent's
// Tomcat STP knob, §IV-B) and updates the allocation for future servers.
func (a *App) SetAppThreads(n int) {
	if n < 1 {
		n = 1
	}
	a.cfg.AppThreads = n
	_ = a.g.SetNodeThreads(TierApp, n)
}

// SetDBConnsPerApp resizes every app server's DB connection pool (the
// APP-agent's MySQL-concurrency knob, §IV-B) and updates the allocation
// for future servers.
func (a *App) SetDBConnsPerApp(n int) {
	if n < 1 {
		n = 1
	}
	a.cfg.DBConnsPerApp = n
	_ = a.g.SetEdgePoolSize(TierApp, TierDB, n)
}

// Allocation returns the current soft-resource allocation in the paper's
// #W_T/#A_T/#A_C form.
func (a *App) Allocation() model.Allocation {
	return model.Allocation{
		WebThreadsPerServer: a.cfg.WebThreads,
		AppThreadsPerServer: a.cfg.AppThreads,
		DBConnsPerAppServer: a.cfg.DBConnsPerApp,
	}
}

// InFlight returns the number of requests currently inside the system.
func (a *App) InFlight() int { return a.g.InFlight() }

// TotalCompletions returns the lifetime number of completed requests.
func (a *App) TotalCompletions() uint64 { return a.g.TotalCompletions() }

// TotalErrors returns the lifetime number of failed requests (no backend
// available).
func (a *App) TotalErrors() uint64 { return a.g.TotalErrors() }

// TotalGood returns the lifetime number of good completions — requests
// that finished within the resilience config's goodput SLA. Zero when
// resilience is disabled (every completion is then merely "completed").
func (a *App) TotalGood() uint64 { return a.g.TotalGood() }

// Dispositions returns the lifetime disposition tally of finished
// requests (ok, error, timeout, rejected, shed, breaker-open).
func (a *App) Dispositions() metrics.DispositionCounts { return a.g.Dispositions() }

// Breaker returns the named server's circuit breaker, nil when breakers
// are disabled or the server is unknown.
func (a *App) Breaker(name string) *resilience.Breaker { return a.g.Breaker(name) }

// Inject sends one HTTP request through the system. done (optional) is
// invoked on completion with the end-to-end response time and whether the
// request succeeded. With a servlet mix configured, the request's class is
// drawn by weight. When resilience is configured the request carries an
// absolute deadline across every tier hop; its outcome is tallied as a
// disposition (Dispositions) and, when it completes within the goodput
// SLA, as a good completion (TotalGood).
func (a *App) Inject(done func(rt time.Duration, ok bool)) { a.g.Inject(done) }

// InjectClass is Inject for class-mixed workloads: class indexes the
// configured Classes (any out-of-range value, canonically -1, injects the
// classless single-class flow, which is what Inject does), and session,
// when non-zero, is a session-affinity key — the web tier then picks the
// session's rendezvous-hashed home backend instead of rotating, so a
// user's requests stick to one Apache while it stays ready. The class's
// priority (criticality), demand profile and SLO ride the request through
// every tier, and its outcome lands in the per-class disposition tally.
// A classless, sessionless call is byte-identical to Inject.
func (a *App) InjectClass(class int, session uint64, done func(rt time.Duration, ok bool)) {
	a.g.InjectClass(class, session, done)
}

// Stats is one monitoring interval of whole-system metrics.
type Stats struct {
	// Completions and Errors are counts in the interval.
	Completions uint64 `json:"completions"`
	Errors      uint64 `json:"errors"`
	// MeanRTSeconds is the mean response time of requests completed in the
	// interval.
	MeanRTSeconds float64 `json:"meanRTSeconds"`
	// MeanAppResidence is the mean time a request occupied an app-tier
	// thread (queue wait + servlet CPU + its DB visits); MeanDBResidence
	// is the mean per-query time including connection-pool wait. Together
	// they attribute end-to-end latency to tiers.
	MeanAppResidence float64 `json:"meanAppResidence"`
	MeanDBResidence  float64 `json:"meanDBResidence"`
	// RT is the full response-time summary for the interval.
	RT metrics.Summary `json:"rt"`
	// InFlight is the instantaneous number of requests in the system.
	InFlight int `json:"inFlight"`
	// Resilience outcome counts for requests finished in the interval
	// (subsets of Errors, except Good which is the subset of Completions
	// within the goodput SLA). All zero — and absent from JSON — when
	// resilience is disabled.
	Good        uint64 `json:"good,omitempty"`
	TimedOut    uint64 `json:"timedOut,omitempty"`
	Rejected    uint64 `json:"rejected,omitempty"`
	Shed        uint64 `json:"shed,omitempty"`
	BreakerOpen uint64 `json:"breakerOpen,omitempty"`
}

// TakeStats returns system metrics accumulated since the previous call and
// starts a new interval.
func (a *App) TakeStats() Stats {
	gs := a.g.TakeStats()
	return Stats{
		Completions:      gs.Completions,
		Errors:           gs.Errors,
		MeanRTSeconds:    gs.MeanRTSeconds,
		MeanAppResidence: gs.NodeResidence[TierApp],
		MeanDBResidence:  gs.NodeResidence[TierDB],
		RT:               gs.RT,
		InFlight:         gs.InFlight,
		Good:             gs.Good,
		TimedOut:         gs.TimedOut,
		Rejected:         gs.Rejected,
		Shed:             gs.Shed,
		BreakerOpen:      gs.BreakerOpen,
	}
}
