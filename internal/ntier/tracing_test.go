package ntier

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRequestsCapturesSpans(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	app.TraceRequests(2)
	for i := 0; i < 5; i++ {
		app.Inject(nil)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	traces := app.Traces()
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2 (armed count)", len(traces))
	}
	for _, tr := range traces {
		if !tr.OK || tr.Total <= 0 {
			t.Fatalf("trace not finalized: %+v", tr)
		}
		// web + app + 2 db queries.
		if len(tr.Spans) != 4 {
			t.Fatalf("spans = %d: %+v", len(tr.Spans), tr.Spans)
		}
		// Execution order: queries recorded before app before web (inner
		// stages finish first).
		if tr.Spans[0].Stage != "db-query-1" || tr.Spans[1].Stage != "db-query-2" {
			t.Fatalf("query spans wrong: %+v", tr.Spans)
		}
		if tr.Spans[2].Stage != "app" || tr.Spans[3].Stage != "web" {
			t.Fatalf("tier spans wrong: %+v", tr.Spans)
		}
		// The web span covers (almost) the whole request.
		if tr.Spans[3].Duration > tr.Total || tr.Spans[3].Duration < tr.Total/2 {
			t.Fatalf("web span %v vs total %v", tr.Spans[3].Duration, tr.Total)
		}
		// Span starts are non-negative offsets within the request.
		for _, sp := range tr.Spans {
			if sp.Start < 0 || sp.Start > tr.Total {
				t.Fatalf("span start out of range: %+v", sp)
			}
			if sp.Server == "" {
				t.Fatalf("span has no server: %+v", sp)
			}
		}
	}
	// IDs are sequential.
	if traces[0].ID != 1 || traces[1].ID != 2 {
		t.Fatalf("ids = %d, %d", traces[0].ID, traces[1].ID)
	}
}

func TestTraceStringRendering(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	app.TraceRequests(1)
	app.Inject(nil)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	out := app.Traces()[0].String()
	for _, want := range []string{"#1", "web", "app", "db-query-1", "ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTraceDisarmedByDefault(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	app.Inject(nil)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(app.Traces()) != 0 {
		t.Fatal("untraced request captured")
	}
	app.TraceRequests(-1) // clamps to zero
	app.Inject(nil)
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(app.Traces()) != 0 {
		t.Fatal("negative arm captured traces")
	}
}

func TestTraceFailedRequest(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	if err := app.FailServer(TierDB, "db-1"); err != nil {
		t.Fatal(err)
	}
	app.TraceRequests(1)
	app.Inject(nil)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	traces := app.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	if traces[0].OK {
		t.Fatal("failed request traced as ok")
	}
	if !strings.Contains(traces[0].String(), "FAILED") {
		t.Fatal("rendering missing FAILED")
	}
}

func TestTraceServletName(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.Servlets = []Servlet{{Name: "OnlyOne", Weight: 1, AppDemand: 1, Queries: 1, QueryDemand: 1}}
	eng, app := newApp(t, cfg)
	app.TraceRequests(1)
	app.Inject(nil)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := app.Traces()[0].Servlet; got != "OnlyOne" {
		t.Fatalf("servlet = %q", got)
	}
}
