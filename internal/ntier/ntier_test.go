package ntier

import (
	"errors"
	"testing"
	"time"

	"dcm/internal/model"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// fastConfig is a small, quick configuration for functional tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.WebThreads = 50
	cfg.AppThreads = 10
	cfg.DBConnsPerApp = 10
	return cfg
}

func newApp(t *testing.T, cfg Config) (*sim.Engine, *App) {
	t.Helper()
	eng := sim.NewEngine()
	app, err := New(eng, rng.New(1).Split("app"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, app
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	r := rng.New(1)
	bad := []func(*Config){
		func(c *Config) { c.WebServers = 0 },
		func(c *Config) { c.AppThreads = 0 },
		func(c *Config) { c.DBConnsPerApp = 0 },
		func(c *Config) { c.DBMaxConns = 0 },
		func(c *Config) { c.QueriesPerRequest = -1 },
		func(c *Config) { c.AppModel = model.Params{} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(eng, r, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
	if _, err := New(nil, r, DefaultConfig()); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestInitialTopology(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.AppServers = 2
	cfg.DBServers = 3
	_, app := newApp(t, cfg)
	if got := app.ServerCount(TierWeb); got != 1 {
		t.Fatalf("web servers = %d", got)
	}
	if got := app.ServerCount(TierApp); got != 2 {
		t.Fatalf("app servers = %d", got)
	}
	if got := app.ServerCount(TierDB); got != 3 {
		t.Fatalf("db servers = %d", got)
	}
	members := app.Members(TierApp)
	if len(members) != 2 || members[0].Name() != "app-1" || members[1].Name() != "app-2" {
		t.Fatalf("app members = %v, %v", members[0].Name(), members[1].Name())
	}
	if members[0].Pool() == nil {
		t.Fatal("app member has no conn pool")
	}
	if app.Members(TierDB)[0].Pool() != nil {
		t.Fatal("db member unexpectedly has a conn pool")
	}
}

func TestRequestFlowCompletes(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	var (
		gotRT time.Duration
		gotOK bool
		calls int
	)
	app.Inject(func(rt time.Duration, ok bool) {
		gotRT, gotOK, calls = rt, ok, calls+1
	})
	if app.InFlight() != 1 {
		t.Fatalf("in flight = %d", app.InFlight())
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || !gotOK {
		t.Fatalf("done calls=%d ok=%v", calls, gotOK)
	}
	// RT must be at least the sum of the three tiers' single-request bursts:
	// web S0 + app S0 + 2 * db S0.
	cfg := fastConfig()
	minRT := time.Duration((cfg.WebModel.S0 + cfg.AppModel.S0 + 2*cfg.DBModel.S0) * float64(time.Second))
	if gotRT < minRT {
		t.Fatalf("rt = %v, want >= %v", gotRT, minRT)
	}
	if app.TotalCompletions() != 1 || app.TotalErrors() != 0 {
		t.Fatalf("completions=%d errors=%d", app.TotalCompletions(), app.TotalErrors())
	}
	if app.InFlight() != 0 {
		t.Fatalf("in flight after completion = %d", app.InFlight())
	}
}

func TestQueriesHitDBTier(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.QueriesPerRequest = 3
	eng, app := newApp(t, cfg)
	for i := 0; i < 4; i++ {
		app.Inject(nil)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	db := app.Members(TierDB)[0].Server()
	if got := db.TotalCompletions(); got != 12 {
		t.Fatalf("db bursts = %d, want 4 requests x 3 queries", got)
	}
}

func TestZeroQueriesSkipsDB(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.QueriesPerRequest = 0
	eng, app := newApp(t, cfg)
	app.Inject(nil)
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if app.TotalCompletions() != 1 {
		t.Fatal("request did not complete")
	}
	if got := app.Members(TierDB)[0].Server().TotalCompletions(); got != 0 {
		t.Fatalf("db bursts = %d, want 0", got)
	}
}

func TestConnPoolBoundsDBConcurrency(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.AppThreads = 20
	cfg.DBConnsPerApp = 3
	eng, app := newApp(t, cfg)
	db := app.Members(TierDB)[0].Server()
	peak := 0
	stop := eng.Ticker(time.Millisecond, func() {
		if db.Active() > peak {
			peak = db.Active()
		}
	})
	defer stop()
	for i := 0; i < 50; i++ {
		app.Inject(nil)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("db concurrency %d exceeded conn pool bound 3", peak)
	}
	if app.TotalCompletions() != 50 {
		t.Fatalf("completions = %d", app.TotalCompletions())
	}
}

func TestAddServerSpreadsLoad(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	if _, err := app.AddServer(TierApp, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		app.Inject(nil)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := app.Members(TierApp)
	a, b := m[0].Server().TotalCompletions(), m[1].Server().TotalCompletions()
	if a != 10 || b != 10 {
		t.Fatalf("round robin split = %d/%d, want 10/10", a, b)
	}
}

func TestAddServerDuplicateName(t *testing.T) {
	t.Parallel()
	_, app := newApp(t, fastConfig())
	if _, err := app.AddServer(TierApp, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.AddServer(TierApp, "x"); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := app.AddServer("ghost", ""); !errors.Is(err, ErrUnknownTier) {
		t.Fatalf("unknown tier err = %v", err)
	}
}

func TestSoftResourceActuation(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.AppServers = 2
	_, app := newApp(t, cfg)
	app.SetAppThreads(7)
	app.SetDBConnsPerApp(4)
	app.SetWebThreads(33)
	for _, m := range app.Members(TierApp) {
		if m.Server().PoolSize() != 7 {
			t.Fatalf("app pool = %d", m.Server().PoolSize())
		}
		if m.Pool().Size() != 4 {
			t.Fatalf("conn pool = %d", m.Pool().Size())
		}
	}
	if app.Members(TierWeb)[0].Server().PoolSize() != 33 {
		t.Fatal("web threads not applied")
	}
	if got := app.Allocation().String(); got != "33/7/4" {
		t.Fatalf("allocation = %q", got)
	}
	// New servers inherit the adjusted allocation.
	m, err := app.AddServer(TierApp, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Server().PoolSize() != 7 || m.Pool().Size() != 4 {
		t.Fatal("new server did not inherit current allocation")
	}
}

func TestDrainAndRemove(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.AppServers = 2
	eng, app := newApp(t, cfg)
	for i := 0; i < 10; i++ {
		app.Inject(nil)
	}
	drained := false
	if err := app.StartDrain(TierApp, "app-2", func() { drained = true }); err != nil {
		t.Fatal(err)
	}
	// Removing while still busy must fail.
	target, err := app.Member(TierApp, "app-2")
	if err != nil {
		t.Fatal(err)
	}
	if target.Server().Active() > 0 {
		if err := app.RemoveServer(TierApp, "app-2"); err == nil {
			t.Fatal("removed a busy server")
		}
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !drained {
		t.Fatal("drain callback never fired")
	}
	if err := app.RemoveServer(TierApp, "app-2"); err != nil {
		t.Fatal(err)
	}
	if app.ServerCount(TierApp) != 1 {
		t.Fatalf("server count = %d", app.ServerCount(TierApp))
	}
	// Traffic continues on the remaining server.
	app.Inject(nil)
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if app.TotalCompletions() != 11 {
		t.Fatalf("completions = %d", app.TotalCompletions())
	}
}

func TestDrainLastServerRejected(t *testing.T) {
	t.Parallel()
	_, app := newApp(t, fastConfig())
	if err := app.StartDrain(TierApp, "app-1", nil); !errors.Is(err, ErrLastServer) {
		t.Fatalf("err = %v, want ErrLastServer", err)
	}
}

func TestRemoveAcceptingServerRejected(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.DBServers = 2
	_, app := newApp(t, cfg)
	if err := app.RemoveServer(TierDB, "db-1"); err == nil {
		t.Fatal("removed an accepting server without drain")
	}
}

func TestMemberLookupErrors(t *testing.T) {
	t.Parallel()
	_, app := newApp(t, fastConfig())
	if _, err := app.Member(TierApp, "nope"); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("err = %v", err)
	}
	if _, err := app.Member("ghost", "x"); !errors.Is(err, ErrUnknownTier) {
		t.Fatalf("err = %v", err)
	}
	if app.Members("ghost") != nil {
		t.Fatal("Members on unknown tier returned data")
	}
	if app.ServerCount("ghost") != 0 {
		t.Fatal("ServerCount on unknown tier nonzero")
	}
}

func TestTakeStats(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	for i := 0; i < 5; i++ {
		app.Inject(nil)
	}
	if err := eng.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	st := app.TakeStats()
	if st.Completions != 5 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanRTSeconds <= 0 || st.RT.Count != 5 {
		t.Fatalf("rt stats = %+v", st)
	}
	st2 := app.TakeStats()
	if st2.Completions != 0 || st2.RT.Count != 0 {
		t.Fatalf("interval not reset: %+v", st2)
	}
}

// TestSteadyStateThroughputMatchesCalibration verifies the headline
// calibration: a saturated 1/1/1 system with the optimal 1000/20/80
// allocation sustains ≈946 req/s (Table I's Tomcat X_max), and the default
// 1000/100/80 allocation is substantially slower — the §II motivation.
func TestSteadyStateThroughputMatchesCalibration(t *testing.T) {
	t.Parallel()
	measure := func(appThreads int) float64 {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.AppThreads = appThreads
		app, err := New(eng, rng.New(7).Split("app"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Closed loop: appThreads users with zero think time.
		var cycle func()
		cycle = func() { app.Inject(func(time.Duration, bool) { cycle() }) }
		for i := 0; i < appThreads; i++ {
			eng.Schedule(time.Duration(i)*time.Millisecond, cycle)
		}
		if err := eng.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		before := app.TotalCompletions()
		if err := eng.Run(15 * time.Second); err != nil {
			t.Fatal(err)
		}
		return float64(app.TotalCompletions()-before) / 10.0
	}
	optimal := measure(20)
	defaultX := measure(100)
	if optimal < 780 || optimal > 950 {
		t.Fatalf("optimal-allocation throughput = %.0f, want ~850 (calibrated Table I X_max)", optimal)
	}
	if defaultX >= optimal {
		t.Fatalf("default allocation (%.0f) not slower than optimal (%.0f)", defaultX, optimal)
	}
	if gain := optimal / defaultX; gain < 1.2 {
		t.Fatalf("gain over default = %.2fx, want >= 1.2x (paper reports ~1.3x)", gain)
	}
}
