package ntier

// Brownout hooks: the actuation surface internal/degrade drives. All of
// it lives in the graph engine and is deterministic and rng-free — the
// shed decision uses an error-diffusion accumulator, the admission
// scaling rounds up — so a supervisor that never fires leaves a run
// byte-identical to one that was never attached.

// SetBrownoutShed sets the front-door shed ratio in [0, 1] applied to
// best-effort (non-critical) arrivals. Zero disables the shed and resets
// the diffusion accumulator so a later brownout starts from a clean
// phase.
func (a *App) SetBrownoutShed(ratio float64) { a.g.SetBrownoutShed(ratio) }

// BrownoutShed returns the live front-door shed ratio.
func (a *App) BrownoutShed() float64 { return a.g.BrownoutShed() }

// BrownoutSheds returns the lifetime count of brownout front-door sheds
// (a subset of the Shed disposition tally).
func (a *App) BrownoutSheds() uint64 { return a.g.BrownoutSheds() }

// TotalInjected returns the lifetime count of injected requests.
func (a *App) TotalInjected() uint64 { return a.g.TotalInjected() }

// ScaleAdmission multiplies every bounded queue's admission cap by f
// (clamped to [0, 1]; 1 restores the configured cap). Servers keep at
// least a cap of 1 so the tier never becomes a total blackhole, and
// requests already queued above a shrunken cap are grandfathered by the
// server until the backlog drains. A no-op when the resilience config has
// no bounded queues.
func (a *App) ScaleAdmission(f float64) { a.g.ScaleAdmission(f) }

// TierQueueDepthTotals returns the lifetime sum and count of queue-depth
// observations across the tier's current members, in balancer order. The
// degrade detectors difference these totals per tick to get the
// queue-depth gradient without touching the monitor's interval
// accumulators.
func (a *App) TierQueueDepthTotals(tierName string) (sum float64, count uint64) {
	return a.g.NodeQueueDepthTotals(tierName)
}
