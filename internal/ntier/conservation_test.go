package ntier

import (
	"strings"
	"testing"
	"time"

	"dcm/internal/invariant"
)

// TestCheckInvariantsConservation drives requests through the full tier
// chain with a checker attached: the sweep must stay silent on the real
// counters, then flag each corruption of the conservation ledger.
func TestCheckInvariantsConservation(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	chk := invariant.New()
	app.SetInvariantChecker(chk)
	done := 0
	for i := 0; i < 20; i++ {
		app.Inject(func(rt time.Duration, ok bool) { done++ })
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if done != 20 {
		t.Fatalf("completed %d of 20", done)
	}
	app.CheckInvariants()
	if chk.Total() != 0 {
		t.Fatalf("clean run recorded %d violation(s):\n%s",
			chk.Total(), invariant.Render(chk.Violations()))
	}

	// A phantom arrival breaks injected = dispositions + in-flight (and,
	// since the graph refactor, the entry node's visit ledger too).
	app.Graph().CorruptLedgerForTest(1)
	app.CheckInvariants()
	vs := chk.Violations()
	if len(vs) == 0 {
		t.Fatal("phantom arrival not flagged")
	}
	found := false
	for _, v := range vs {
		if v.Rule != invariant.RuleConservation {
			t.Fatalf("violation %+v, want conservation records only", v)
		}
		if strings.Contains(v.Detail, "injected") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no violation mentions the injected count: %+v", vs)
	}
	app.Graph().CorruptLedgerForTest(-1)
	seen := chk.Total()

	// A negative in-flight count is flagged on its own axis (and also
	// breaks the ledger equation).
	if err := app.Graph().CorruptNodeInFlightForTest(TierApp, -1); err != nil {
		t.Fatal(err)
	}
	app.CheckInvariants()
	found = false
	for _, v := range chk.Violations()[seen:] {
		if v.Rule == invariant.RuleConservation && strings.Contains(v.Detail, "negative") {
			found = true
		}
	}
	if !found {
		t.Fatalf("negative in-flight not flagged: %+v", chk.Violations())
	}
}
