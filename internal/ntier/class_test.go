package ntier

import (
	"errors"
	"strings"
	"testing"
	"time"

	"dcm/internal/invariant"
	"dcm/internal/metrics"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

func TestClassValidation(t *testing.T) {
	t.Parallel()
	eng := sim.NewEngine()
	r := rng.New(1)
	bad := [][]RequestClass{
		{{Name: ""}},
		{{Name: "a"}, {Name: "a"}},
		{{Name: "a", Priority: -1}},
		{{Name: "a", SLO: -time.Second}},
		{{Name: "a", AppDemand: -1}},
		{{Name: "a", Queries: -1}},
		{{Name: "a", QueryDemand: -0.5}},
	}
	for i, classes := range bad {
		cfg := fastConfig()
		cfg.Classes = classes
		if _, err := New(eng, r, cfg); !errors.Is(err, ErrBadClasses) {
			t.Errorf("case %d: err = %v, want ErrBadClasses", i, err)
		}
	}

	// Classes and servlets describe the same axis (what a request does /
	// how it is treated) and are mutually exclusive.
	cfg := fastConfig()
	cfg.Classes = []RequestClass{{Name: "a"}}
	cfg.Servlets = []Servlet{{Name: "s", Weight: 1}}
	if _, err := New(eng, r, cfg); !errors.Is(err, ErrBadClasses) ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("classes+servlets: err = %v, want mutual-exclusion ErrBadClasses", err)
	}
}

func TestClassDefaultsFilled(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.QueriesPerRequest = 3
	cfg.Classes = []RequestClass{{Name: "a"}, {Name: "b", Queries: 1, AppDemand: 2}}
	_, app := newApp(t, cfg)
	got := app.Config().Classes
	if got[0].AppDemand != 1 || got[0].Queries != 3 || got[0].QueryDemand != 1 {
		t.Fatalf("class a defaults not filled: %+v", got[0])
	}
	if got[1].AppDemand != 2 || got[1].Queries != 1 {
		t.Fatalf("class b overrides lost: %+v", got[1])
	}
}

// TestInjectClassTallies drives a two-class mix and checks the per-class
// accounting: injected counts split exactly, dispositions conserve against
// the whole-app tally, and the per-class invariants stay clean.
func TestInjectClassTallies(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.Classes = []RequestClass{
		{Name: "premium", Priority: 1, SLO: 2 * time.Second},
		{Name: "basic"},
	}
	eng, app := newApp(t, cfg)
	chk := invariant.New()
	app.SetInvariantChecker(chk)

	want := map[int]uint64{0: 40, 1: 160}
	for cls, n := range want {
		cls := cls
		for i := uint64(0); i < n; i++ {
			at := time.Duration(i) * 50 * time.Millisecond
			eng.Schedule(at, func() { app.InjectClass(cls, 0, nil) })
		}
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}

	stats := app.ClassStats()
	if len(stats) != 2 {
		t.Fatalf("ClassStats len = %d, want 2", len(stats))
	}
	var totalInjected uint64
	for i, st := range stats {
		if st.Injected != want[i] {
			t.Errorf("class %s injected %d, want %d", st.Name, st.Injected, want[i])
		}
		if st.InFlight != 0 {
			t.Errorf("class %s still in flight: %d", st.Name, st.InFlight)
		}
		if st.Completions == 0 || st.Completions != st.Dispositions.OK {
			t.Errorf("class %s completions %d vs dispositions %+v", st.Name, st.Completions, st.Dispositions)
		}
		if st.MeanRTms <= 0 {
			t.Errorf("class %s mean RT %v", st.Name, st.MeanRTms)
		}
		totalInjected += st.Injected
	}
	// Premium completions within its 2 s SLO count as good.
	if stats[0].Good == 0 || stats[0].Good > stats[0].Completions {
		t.Errorf("premium good %d of %d completions", stats[0].Good, stats[0].Completions)
	}

	// The split conserves against the whole-app tally.
	if err := app.ClassDispositions().CheckConservation(metrics.DispositionCounts{}, app.Dispositions()); err != nil {
		t.Error(err)
	}
	app.CheckInvariants()
	if vs := chk.Violations(); len(vs) > 0 {
		t.Fatalf("invariant violations:\n%s", invariant.Render(vs))
	}
	if app.TotalCompletions() != totalInjected {
		t.Fatalf("completions %d, injected %d", app.TotalCompletions(), totalInjected)
	}
}

// TestInjectClassOutOfRange: a class index outside the configured set is
// treated as unclassed traffic — tallied in the aggregate, absent from
// every class row, and still conserved.
func TestInjectClassOutOfRange(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.Classes = []RequestClass{{Name: "only"}}
	eng, app := newApp(t, cfg)
	chk := invariant.New()
	app.SetInvariantChecker(chk)
	app.InjectClass(5, 0, nil)
	app.InjectClass(-3, 0, nil)
	app.InjectClass(0, 0, nil)
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := app.ClassStats()[0].Injected; got != 1 {
		t.Fatalf("classed injected = %d, want 1", got)
	}
	if got := app.Dispositions().Total(); got != 3 {
		t.Fatalf("total dispositions = %d, want 3", got)
	}
	app.CheckInvariants()
	if vs := chk.Violations(); len(vs) > 0 {
		t.Fatalf("invariant violations:\n%s", invariant.Render(vs))
	}
}

// TestClassDemandProfiles: a heavier class must see longer response times
// than a light one under the same (uncontended) conditions.
func TestClassDemandProfiles(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.Classes = []RequestClass{
		{Name: "light", Queries: 1},
		{Name: "heavy", AppDemand: 4, Queries: 6, QueryDemand: 2},
	}
	eng, app := newApp(t, cfg)
	for i := 0; i < 50; i++ {
		at := time.Duration(i) * 200 * time.Millisecond
		eng.Schedule(at, func() { app.InjectClass(0, 0, nil) })
		eng.Schedule(at+100*time.Millisecond, func() { app.InjectClass(1, 0, nil) })
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	stats := app.ClassStats()
	if stats[0].MeanRTms <= 0 || stats[1].MeanRTms <= stats[0].MeanRTms {
		t.Fatalf("heavy class RT %.2fms not above light %.2fms",
			stats[1].MeanRTms, stats[0].MeanRTms)
	}
}

// TestCriticalClassNotShed reproduces the admission-control contract under
// overload: with CoDel active and the system saturated, the priority class
// is never CoDel-shed while the best-effort class absorbs the shedding.
// (Bounded-queue rejection still applies to both — criticality is not a
// bypass of backpressure, only of latency-based shedding.)
func TestCriticalClassNotShed(t *testing.T) {
	t.Parallel()
	res, err := resilience.Preset("full", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.AppThreads = 4
	cfg.DBConnsPerApp = 4
	cfg.Resilience = *res
	// Both classes are deliberately heavy (20 queries at 4x demand each,
	// roughly 55 ms of DB work per request) so 400 req/s of offered load
	// is several times the four-connection DB tier's capacity.
	cfg.Classes = []RequestClass{
		{Name: "premium", Priority: 1, Queries: 20, QueryDemand: 4},
		{Name: "basic", Queries: 20, QueryDemand: 4},
	}
	eng, app := newApp(t, cfg)
	chk := invariant.New()
	app.SetInvariantChecker(chk)

	// Offered load far past the 4-thread app tier's capacity: 200 req/s
	// per class for 30 s.
	for i := 0; i < 6000; i++ {
		at := time.Duration(i) * 5 * time.Millisecond
		cls := i % 2
		eng.Schedule(at, func() { app.InjectClass(cls, 0, nil) })
	}
	if err := eng.Run(45 * time.Second); err != nil {
		t.Fatal(err)
	}

	stats := app.ClassStats()
	premium, basic := stats[0], stats[1]
	if premium.Dispositions.Shed != 0 {
		t.Errorf("premium shed %d requests, want 0 (criticality bypasses CoDel)", premium.Dispositions.Shed)
	}
	if basic.Dispositions.Shed == 0 {
		t.Error("basic class was never shed — overload not reached, test is vacuous")
	}
	// Criticality is not a bypass of backpressure: premium must still fail
	// through the non-shed channels (deadlines, bounded queues, breakers).
	p := premium.Dispositions
	if p.TimedOut+p.Rejected+p.BreakerOpen == 0 {
		t.Errorf("premium never hit backpressure under overload: %+v", p)
	}
	app.CheckInvariants()
	if vs := chk.Violations(); len(vs) > 0 {
		t.Fatalf("invariant violations:\n%s", invariant.Render(vs))
	}
}
