package ntier

import (
	"errors"
	"fmt"

	"dcm/internal/graph"
)

// Servlet is one request class of the application. RUBBoS provides 24
// servlets (§II-A); the browse-only CPU-intensive subset used by the paper
// is modeled here as a weighted mix of classes that differ in application
// CPU demand and in how many (and how heavy) database queries they issue.
type Servlet struct {
	// Name identifies the class (e.g. "ViewStory").
	Name string `json:"name"`
	// Weight is the class's relative share of the request mix.
	Weight float64 `json:"weight"`
	// AppDemand scales the Tomcat CPU work (1.0 = the tier's base S0).
	AppDemand float64 `json:"appDemand"`
	// Queries is the number of sequential MySQL queries the class issues.
	Queries int `json:"queries"`
	// QueryDemand scales each query's base work.
	QueryDemand float64 `json:"queryDemand"`
}

// DefaultServlets returns a RUBBoS-style browse-only mix of ten request
// classes. The mix is normalized so its weighted mean matches the
// single-class flow the calibration uses: mean app demand 1.0, mean visit
// ratio ≈ 2 queries per request — so enabling the mix changes the
// *distribution* of work, not its mean.
func DefaultServlets() []Servlet {
	return []Servlet{
		{Name: "StoriesOfTheDay", Weight: 0.25, AppDemand: 0.6, Queries: 1, QueryDemand: 0.7},
		{Name: "ViewStory", Weight: 0.20, AppDemand: 0.8, Queries: 2, QueryDemand: 0.85},
		{Name: "BrowseCategories", Weight: 0.10, AppDemand: 0.5, Queries: 2, QueryDemand: 1.0},
		{Name: "BrowseStoriesByCategory", Weight: 0.12, AppDemand: 1.0, Queries: 2, QueryDemand: 1.0},
		{Name: "ViewComment", Weight: 0.10, AppDemand: 0.9, Queries: 2, QueryDemand: 1.0},
		{Name: "OlderStories", Weight: 0.08, AppDemand: 1.2, Queries: 3, QueryDemand: 1.0},
		{Name: "SearchInStories", Weight: 0.06, AppDemand: 2.2, Queries: 3, QueryDemand: 1.4},
		{Name: "SearchInAuthors", Weight: 0.04, AppDemand: 2.2, Queries: 3, QueryDemand: 1.4},
		{Name: "SearchInComments", Weight: 0.03, AppDemand: 2.8, Queries: 4, QueryDemand: 1.4},
		{Name: "AuthorInformation", Weight: 0.02, AppDemand: 1.5, Queries: 3, QueryDemand: 1.0},
	}
}

// ErrBadServlets is returned for invalid servlet mixes.
var ErrBadServlets = errors.New("ntier: invalid servlet mix")

// validateServlets checks a mix and returns its total weight.
func validateServlets(servlets []Servlet) (total float64, err error) {
	seen := make(map[string]bool, len(servlets))
	for i, s := range servlets {
		switch {
		case s.Name == "":
			return 0, fmt.Errorf("%w: servlet %d has no name", ErrBadServlets, i)
		case seen[s.Name]:
			return 0, fmt.Errorf("%w: duplicate servlet %q", ErrBadServlets, s.Name)
		case s.Weight <= 0:
			return 0, fmt.Errorf("%w: servlet %q weight %v", ErrBadServlets, s.Name, s.Weight)
		case s.AppDemand <= 0:
			return 0, fmt.Errorf("%w: servlet %q app demand %v", ErrBadServlets, s.Name, s.AppDemand)
		case s.Queries < 0:
			return 0, fmt.Errorf("%w: servlet %q queries %d", ErrBadServlets, s.Name, s.Queries)
		case s.Queries > 0 && s.QueryDemand <= 0:
			return 0, fmt.Errorf("%w: servlet %q query demand %v", ErrBadServlets, s.Name, s.QueryDemand)
		}
		seen[s.Name] = true
		total += s.Weight
	}
	return total, nil
}

// MixMeans returns the weighted mean app demand and mean query count of a
// mix — useful for checking a custom mix against a calibration.
func MixMeans(servlets []Servlet) (meanAppDemand, meanQueries float64) {
	var totalW float64
	for _, s := range servlets {
		totalW += s.Weight
		meanAppDemand += s.Weight * s.AppDemand
		meanQueries += s.Weight * float64(s.Queries)
	}
	if totalW > 0 {
		meanAppDemand /= totalW
		meanQueries /= totalW
	}
	return meanAppDemand, meanQueries
}

// ServletStat summarizes one request class's traffic (the graph engine's
// per-profile statistic, with identical JSON).
type ServletStat = graph.ProfileStat

// ServletStats returns cumulative per-class statistics (empty when the
// single-class flow is active).
func (a *App) ServletStats() map[string]ServletStat { return a.g.ProfileStats() }
