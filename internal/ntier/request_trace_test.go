package ntier

import (
	"testing"
	"time"

	"dcm/internal/rng"
	"dcm/internal/sim"
	"dcm/internal/trace"
)

// TestRequestTracerEndToEnd drives real requests through all three tiers
// with the tracer attached and checks the breakdown reconstructs per-tier
// spans: every tier appears, the app tier shows pool waits, and the
// request count matches the injected load.
func TestRequestTracerEndToEnd(t *testing.T) {
	t.Parallel()
	eng, app := newApp(t, fastConfig())
	tr := trace.NewRequestTracer(0)
	app.SetRequestTracer(tr)
	const n = 50
	completed := 0
	for i := 0; i < n; i++ {
		app.Inject(func(rt time.Duration, ok bool) {
			if ok {
				completed++
			}
		})
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if completed != n {
		t.Fatalf("completed = %d of %d", completed, n)
	}
	bd := tr.Breakdown()
	byTier := map[string]trace.TierBreakdown{}
	for _, b := range bd {
		byTier[b.Tier] = b
	}
	for _, tier := range Tiers() {
		b, ok := byTier[tier]
		if !ok {
			t.Fatalf("tier %s missing from breakdown (have %+v)", tier, bd)
		}
		if b.Requests != n {
			t.Errorf("tier %s saw %d requests, want %d", tier, b.Requests, n)
		}
		if b.Service.Count == 0 {
			t.Errorf("tier %s has no service spans", tier)
		}
	}
	if byTier[TierApp].PoolWait.Count != n*app.Config().QueriesPerRequest {
		t.Errorf("app pool waits = %d, want %d",
			byTier[TierApp].PoolWait.Count, n*app.Config().QueriesPerRequest)
	}
	if byTier[TierWeb].PoolWait.Count != 0 {
		t.Errorf("web tier has pool waits: %d", byTier[TierWeb].PoolWait.Count)
	}
}

// TestTracingDoesNotPerturbSimulation is the unit-level determinism check
// behind the tentpole's "byte-identical with tracing on" requirement: the
// same seed with and without a tracer must complete the same requests in
// the same simulated time.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	t.Parallel()
	run := func(traced bool) (uint64, time.Duration) {
		eng := sim.NewEngine()
		cfg := fastConfig()
		cfg.NoiseSigma = 0.3 // exercise the rng path
		app, err := New(eng, rng.New(99).Split("app"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if traced {
			app.SetRequestTracer(trace.NewRequestTracer(0))
		}
		for i := 0; i < 200; i++ {
			app.Inject(nil)
		}
		if err := eng.Run(time.Hour); err != nil {
			t.Fatal(err)
		}
		return app.TotalCompletions(), eng.Now()
	}
	plainN, plainEnd := run(false)
	tracedN, tracedEnd := run(true)
	if plainN != tracedN || plainEnd != tracedEnd {
		t.Fatalf("tracing perturbed the run: %d@%v vs %d@%v",
			plainN, plainEnd, tracedN, tracedEnd)
	}
}

// TestTierHistogramsMergeMembers checks the always-on per-tier histograms:
// service times recorded on every member fold into one tier view, and the
// app tier exposes pool waits.
func TestTierHistogramsMergeMembers(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.AppServers = 2
	eng, app := newApp(t, cfg)
	for i := 0; i < 40; i++ {
		app.Inject(nil)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	hs, err := app.TierHistograms(TierApp)
	if err != nil {
		t.Fatal(err)
	}
	if hs.ServiceTime.Count() != 40 {
		t.Fatalf("app service bursts = %d, want 40", hs.ServiceTime.Count())
	}
	if hs.QueueDepth.Count() != 40 {
		t.Fatalf("app queue-depth observations = %d, want 40", hs.QueueDepth.Count())
	}
	if hs.PoolWait.Count() != uint64(40*cfg.QueriesPerRequest) {
		t.Fatalf("app pool waits = %d", hs.PoolWait.Count())
	}
	// Per-member counts must sum to the tier view.
	var sum uint64
	for _, m := range app.Members(TierApp) {
		sum += m.Server().ServiceTimeHistogram().Count()
	}
	if sum != hs.ServiceTime.Count() {
		t.Fatalf("member sum %d != tier %d", sum, hs.ServiceTime.Count())
	}
	web, err := app.TierHistograms(TierWeb)
	if err != nil {
		t.Fatal(err)
	}
	if web.PoolWait != nil {
		t.Fatal("web tier has a pool-wait histogram")
	}
	if _, err := app.TierHistograms("bogus"); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

// TestDrainCompletesUnderConnLeak is the regression test for the
// scale-in hang: an unrepaired connection leak on an app member's pool
// must not keep StartDrain polling forever, because leaked connections
// are no longer counted as in use.
func TestDrainCompletesUnderConnLeak(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.AppServers = 2
	eng, app := newApp(t, cfg)
	victim := app.Members(TierApp)[1]
	// The leak consumes the whole pool and is never repaired.
	victim.Pool().Leak(cfg.DBConnsPerApp)
	drained := false
	if err := app.StartDrain(TierApp, victim.Name(), func() { drained = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !drained {
		t.Fatal("drain never completed under an unrepaired conn leak")
	}
	if err := app.RemoveServer(TierApp, victim.Name()); err != nil {
		t.Fatalf("remove after drain: %v", err)
	}
}
