package ntier

import (
	"math"
	"testing"
	"time"

	"dcm/internal/rng"
	"dcm/internal/sim"
)

func TestDefaultServletsNormalized(t *testing.T) {
	t.Parallel()
	mix := DefaultServlets()
	if len(mix) != 10 {
		t.Fatalf("mix size = %d", len(mix))
	}
	if _, err := validateServlets(mix); err != nil {
		t.Fatal(err)
	}
	meanDemand, meanQueries := MixMeans(mix)
	// The mix must match the single-class calibration in the mean.
	if math.Abs(meanDemand-1.0) > 0.03 {
		t.Fatalf("mean app demand = %v, want ~1.0", meanDemand)
	}
	if math.Abs(meanQueries-2.0) > 0.05 {
		t.Fatalf("mean queries = %v, want ~2.0", meanQueries)
	}
}

func TestValidateServletsRejectsBadMixes(t *testing.T) {
	t.Parallel()
	bad := [][]Servlet{
		{{Name: "", Weight: 1, AppDemand: 1}},
		{{Name: "a", Weight: 0, AppDemand: 1}},
		{{Name: "a", Weight: 1, AppDemand: 0}},
		{{Name: "a", Weight: 1, AppDemand: 1, Queries: -1}},
		{{Name: "a", Weight: 1, AppDemand: 1, Queries: 2, QueryDemand: 0}},
		{{Name: "a", Weight: 1, AppDemand: 1}, {Name: "a", Weight: 1, AppDemand: 1}},
	}
	for i, mix := range bad {
		if _, err := validateServlets(mix); err == nil {
			t.Errorf("mix %d accepted", i)
		}
	}
}

func TestNewRejectsBadServletMix(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.Servlets = []Servlet{{Name: "x", Weight: -1, AppDemand: 1}}
	eng := sim.NewEngine()
	if _, err := New(eng, rng.New(1), cfg); err == nil {
		t.Fatal("bad mix accepted")
	}
}

func TestServletMixDistribution(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.Servlets = []Servlet{
		{Name: "light", Weight: 3, AppDemand: 0.5, Queries: 1, QueryDemand: 1},
		{Name: "heavy", Weight: 1, AppDemand: 2.0, Queries: 3, QueryDemand: 1},
	}
	eng, app := newApp(t, cfg)
	const total = 4000
	for i := 0; i < total; i++ {
		app.Inject(nil)
	}
	if err := eng.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	stats := app.ServletStats()
	light, heavy := stats["light"], stats["heavy"]
	if light.Completions+heavy.Completions != total {
		t.Fatalf("per-class totals %d + %d != %d", light.Completions, heavy.Completions, total)
	}
	share := float64(light.Completions) / total
	if math.Abs(share-0.75) > 0.03 {
		t.Fatalf("light share = %v, want ~0.75", share)
	}
	// Heavier servlet has a longer response time.
	if heavy.MeanRTms <= light.MeanRTms {
		t.Fatalf("heavy RT %v not above light RT %v", heavy.MeanRTms, light.MeanRTms)
	}
}

func TestServletQueriesRouteToDB(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.Servlets = []Servlet{
		{Name: "q3", Weight: 1, AppDemand: 1, Queries: 3, QueryDemand: 1},
	}
	eng, app := newApp(t, cfg)
	for i := 0; i < 10; i++ {
		app.Inject(nil)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := app.Members(TierDB)[0].Server().TotalCompletions(); got != 30 {
		t.Fatalf("db bursts = %d, want 10 requests x 3 queries", got)
	}
}

func TestServletZeroQueriesSkipsDB(t *testing.T) {
	t.Parallel()
	cfg := fastConfig()
	cfg.Servlets = []Servlet{
		{Name: "static", Weight: 1, AppDemand: 1, Queries: 0},
	}
	eng, app := newApp(t, cfg)
	app.Inject(nil)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if app.TotalCompletions() != 1 {
		t.Fatal("request did not complete")
	}
	if got := app.Members(TierDB)[0].Server().TotalCompletions(); got != 0 {
		t.Fatalf("db bursts = %d", got)
	}
}

// TestServletMixPreservesMeanThroughput: a saturated system under the
// normalized default mix sustains roughly the same throughput as the
// single-class flow, because the mix's weighted means match.
func TestServletMixPreservesMeanThroughput(t *testing.T) {
	t.Parallel()
	measure := func(useMix bool) float64 {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.AppThreads = 20
		if useMix {
			cfg.Servlets = DefaultServlets()
		}
		app, err := New(eng, rng.New(5).Split("app"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var cycle func()
		cycle = func() { app.Inject(func(time.Duration, bool) { cycle() }) }
		for i := 0; i < 20; i++ {
			eng.Schedule(time.Duration(i)*time.Millisecond, cycle)
		}
		if err := eng.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		before := app.TotalCompletions()
		if err := eng.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		return float64(app.TotalCompletions()-before) / 15.0
	}
	single := measure(false)
	mixed := measure(true)
	if rel := mixed/single - 1; rel < -0.15 || rel > 0.15 {
		t.Fatalf("mix shifted throughput by %.0f%%: single=%v mixed=%v", rel*100, single, mixed)
	}
}

func TestMixMeansEmpty(t *testing.T) {
	t.Parallel()
	d, q := MixMeans(nil)
	if d != 0 || q != 0 {
		t.Fatalf("empty mix means = %v, %v", d, q)
	}
}
