package monitor

import (
	"sort"
	"time"
)

// The sensor guard is the control plane's defense against corrupt census
// data: monitoring samples that arrive stale (delayed past the point they
// describe the present), with non-monotonic timestamps (a clock step or a
// replayed message), or with wildly outlying CPU readings (a measurement
// glitch) must not be averaged silently into the window the controllers
// act on. The guard filters per-VM samples before aggregation and can
// bridge short publication blackouts by holding the last live tier
// aggregate, flagged Smoothed so model training skips it.

// GuardConfig parameterizes the sensor guard. The zero value of each
// field selects its default; a nil *GuardConfig disables the guard
// entirely (byte-identical to the pre-guard pipeline).
type GuardConfig struct {
	// MaxStaleness rejects samples older than the control period consuming
	// them by more than this (default 5 s).
	MaxStaleness time.Duration `json:"maxStaleness,omitempty"`
	// OutlierWindow is the per-VM median filter's window length in
	// accepted samples (default 5).
	OutlierWindow int `json:"outlierWindow,omitempty"`
	// OutlierFactor is how far a CPU reading may sit from the window
	// median before it is replaced by the median (reading > median*factor
	// or < median/factor, with a small absolute allowance so near-idle
	// readings never trip it; default 4, values <= 1 disable the filter).
	OutlierFactor float64 `json:"outlierFactor,omitempty"`
	// SmoothPeriods is how many consecutive dark control periods the guard
	// bridges with the last live tier aggregate before conceding NoData
	// (default 2).
	SmoothPeriods int `json:"smoothPeriods,omitempty"`
}

func (c GuardConfig) withDefaults() GuardConfig {
	if c.MaxStaleness <= 0 {
		c.MaxStaleness = 5 * time.Second
	}
	if c.OutlierWindow <= 0 {
		c.OutlierWindow = 5
	}
	if c.OutlierFactor == 0 {
		c.OutlierFactor = 4
	}
	if c.SmoothPeriods <= 0 {
		c.SmoothPeriods = 2
	}
	return c
}

// GuardStats is the guard's lifetime filtering tally. Every field is a
// count of samples (or periods, for Smoothed) the guard intervened on.
type GuardStats struct {
	// Stale counts samples rejected for exceeding MaxStaleness.
	Stale uint64 `json:"stale,omitempty"`
	// NonMonotonic counts samples whose timestamp ran backwards relative
	// to the same VM's previous sample; they are clamped and flagged, not
	// silently averaged.
	NonMonotonic uint64 `json:"nonMonotonic,omitempty"`
	// Outliers counts CPU readings replaced by the window median.
	Outliers uint64 `json:"outliers,omitempty"`
	// Smoothed counts dark tier-periods bridged with held aggregates.
	Smoothed uint64 `json:"smoothed,omitempty"`
}

// Any reports whether the guard intervened at all.
func (s GuardStats) Any() bool {
	return s.Stale > 0 || s.NonMonotonic > 0 || s.Outliers > 0 || s.Smoothed > 0
}

// TierAggregate is the per-tier slice of a control window the guard holds
// for blackout smoothing.
type TierAggregate struct {
	MeanCPU    float64
	MaxCPU     float64
	MeanActive float64
	Throughput float64
}

// vmGuard is the per-VM filter state.
type vmGuard struct {
	seen   bool
	lastAt time.Duration
	window []float64 // ring buffer of accepted CPU readings
	next   int
	filled bool
}

// heldTier is one tier's last live aggregate plus its dark-period streak.
type heldTier struct {
	agg  TierAggregate
	dark int
}

// Guard filters monitoring samples for one control plane. Deterministic
// and single-goroutine, like everything else on the simulation thread.
type Guard struct {
	cfg    GuardConfig
	vms    map[string]*vmGuard
	held   map[string]*heldTier
	sorted []float64 // scratch for the median
	stats  GuardStats
}

// NewGuard builds a guard with cfg's defaults filled.
func NewGuard(cfg GuardConfig) *Guard {
	return &Guard{
		cfg:  cfg.withDefaults(),
		vms:  make(map[string]*vmGuard),
		held: make(map[string]*heldTier),
	}
}

// Stats returns the lifetime filtering tally.
func (g *Guard) Stats() GuardStats { return g.stats }

// AdmitServer filters one per-VM sample against the control period ending
// at now. It returns false when the sample must be dropped (stale);
// otherwise it may repair the sample in place — clamping a non-monotonic
// timestamp to the VM's previous one and replacing an outlying CPU
// reading with the window median — and admits it.
func (g *Guard) AdmitServer(now time.Duration, s *ServerSample) bool {
	if now-s.At > g.cfg.MaxStaleness {
		g.stats.Stale++
		return false
	}
	vm := g.vms[s.VM]
	if vm == nil {
		vm = &vmGuard{window: make([]float64, 0, g.cfg.OutlierWindow)}
		g.vms[s.VM] = vm
	}
	if vm.seen && s.At < vm.lastAt {
		// A timestamp running backwards is a clock step or a replayed
		// message: clamp it forward to the last accepted instant and flag
		// it, rather than letting it skew any time-ordered consumer.
		g.stats.NonMonotonic++
		s.At = vm.lastAt
	}
	if f := g.cfg.OutlierFactor; f > 1 && vm.filled {
		m := g.median(vm.window)
		if lo, hi := m/f-0.05, m*f+0.05; s.CPUUtil < lo || s.CPUUtil > hi {
			g.stats.Outliers++
			s.CPUUtil = m
		}
	}
	vm.seen = true
	vm.lastAt = s.At
	if len(vm.window) < g.cfg.OutlierWindow {
		vm.window = append(vm.window, s.CPUUtil)
		vm.filled = len(vm.window) == g.cfg.OutlierWindow
	} else {
		vm.window[vm.next] = s.CPUUtil
		vm.next = (vm.next + 1) % g.cfg.OutlierWindow
	}
	return true
}

// median computes the window median into scratch space (no allocation
// after warm-up).
func (g *Guard) median(window []float64) float64 {
	g.sorted = append(g.sorted[:0], window...)
	sort.Float64s(g.sorted)
	n := len(g.sorted)
	if n%2 == 1 {
		return g.sorted[n/2]
	}
	return (g.sorted[n/2-1] + g.sorted[n/2]) / 2
}

// RecordTier stores a tier's live aggregate for blackout smoothing and
// resets its dark streak.
func (g *Guard) RecordTier(tier string, agg TierAggregate) {
	h := g.held[tier]
	if h == nil {
		h = &heldTier{}
		g.held[tier] = h
	}
	h.agg, h.dark = agg, 0
}

// FillDark is consulted for a tier whose control period got no samples.
// For up to SmoothPeriods consecutive dark periods it returns the held
// aggregate (ok=true) so the controller keeps steering on the last known
// state instead of mistaking silence for idleness; past that — or with no
// live aggregate ever recorded — it concedes (ok=false) and the period is
// a genuine NoData blackout.
func (g *Guard) FillDark(tier string) (TierAggregate, bool) {
	h := g.held[tier]
	if h == nil {
		return TierAggregate{}, false
	}
	h.dark++
	if h.dark > g.cfg.SmoothPeriods {
		return TierAggregate{}, false
	}
	g.stats.Smoothed++
	return h.agg, true
}
