// Package monitor implements the fine-grained resource monitor of the DCM
// architecture (§IV, Fig. 3): one agent per VM collects system-level
// metrics (CPU utilization) and application-level metrics (throughput,
// response time, active thread count) every second and publishes them to
// the intermediate storage server (internal/bus), from which the
// optimization controller consumes them at its own rate.
package monitor

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/bus"
	"dcm/internal/ntier"
	"dcm/internal/sim"
)

// Topics the monitor publishes to.
const (
	// TopicServerMetrics carries per-VM ServerSample messages.
	TopicServerMetrics = "metrics.server"
	// TopicSystemMetrics carries whole-system SystemSample messages.
	TopicSystemMetrics = "metrics.system"
)

// ServerSample is one per-VM measurement interval, the unit the paper's
// monitoring agents ship to Kafka every second.
type ServerSample struct {
	At   time.Duration `json:"at"`
	VM   string        `json:"vm"`
	Tier string        `json:"tier"`
	// CPUUtil is the VM's CPU busy fraction in the interval.
	CPUUtil float64 `json:"cpuUtil"`
	// Throughput is the server's completed bursts per second.
	Throughput float64 `json:"throughput"`
	// MeanServiceSeconds is the mean burst duration.
	MeanServiceSeconds float64 `json:"meanServiceSeconds"`
	// ActiveThreads is the time-weighted mean request-processing
	// concurrency — the paper's "active threads number".
	ActiveThreads float64 `json:"activeThreads"`
	// MeanQueueWaitSeconds is the mean time requests admitted in the
	// interval spent queued for a thread.
	MeanQueueWaitSeconds float64 `json:"meanQueueWaitSeconds"`
	// QueueLen is the instantaneous thread-pool queue length; QueuePeak is
	// the peak length since the previous sample.
	QueueLen  int `json:"queueLen"`
	QueuePeak int `json:"queuePeak"`
	// PoolSize is the thread pool size at sampling time.
	PoolSize int `json:"poolSize"`
	// ConnPoolSize and ConnWaiting describe the server's DB connection
	// pool (app tier only; zero elsewhere). ConnInUse excludes leaked
	// connections, which ConnLeaked counts separately.
	ConnPoolSize int `json:"connPoolSize"`
	ConnWaiting  int `json:"connWaiting"`
	ConnInUse    int `json:"connInUse"`
	ConnLeaked   int `json:"connLeaked,omitempty"`
}

// SystemSample is one whole-system measurement interval.
type SystemSample struct {
	At time.Duration `json:"at"`
	// Throughput is completed requests per second.
	Throughput float64 `json:"throughput"`
	// MeanRTSeconds and P95RTSeconds summarize end-to-end response times.
	MeanRTSeconds float64 `json:"meanRTSeconds"`
	P95RTSeconds  float64 `json:"p95RTSeconds"`
	MaxRTSeconds  float64 `json:"maxRTSeconds"`
	// MeanAppResidence and MeanDBResidence attribute latency to tiers
	// (see ntier.Stats).
	MeanAppResidence float64 `json:"meanAppResidence"`
	MeanDBResidence  float64 `json:"meanDBResidence"`
	// Errors is failed requests in the interval.
	Errors uint64 `json:"errors"`
	// InFlight is the instantaneous number of requests in the system.
	InFlight int `json:"inFlight"`
}

// ErrBadFleet is returned for invalid fleet construction or attachment.
var ErrBadFleet = errors.New("monitor: invalid fleet")

// Fleet manages the monitoring agents of a running application: one agent
// per attached server plus one system-level agent.
type Fleet struct {
	eng      *sim.Engine
	b        *bus.Bus
	app      *ntier.App
	interval time.Duration

	agents   map[string]func() // vm name -> stop
	sysTop   func()
	started  bool
	blackout bool
}

// NewFleet creates a monitoring fleet publishing to b every interval
// (default 1 s, the paper's agent cadence).
func NewFleet(eng *sim.Engine, b *bus.Bus, app *ntier.App, interval time.Duration) (*Fleet, error) {
	if eng == nil || b == nil || app == nil {
		return nil, fmt.Errorf("%w: nil dependency", ErrBadFleet)
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &Fleet{
		eng:      eng,
		b:        b,
		app:      app,
		interval: interval,
		agents:   make(map[string]func()),
	}, nil
}

// Interval returns the sampling cadence.
func (f *Fleet) Interval() time.Duration { return f.interval }

// SetBlackout suppresses (true) or restores (false) all sample publishing
// — the chaos monitor-blackout fault. Agents keep sampling on their
// cadence so server-side interval accumulators are still drained; the
// samples just never reach the bus, exactly like a monitoring pipeline
// outage. The controller consequently sees control periods with no data
// and must decide how to act on staleness.
func (f *Fleet) SetBlackout(v bool) { f.blackout = v }

// Blackout reports whether sample publishing is currently suppressed.
func (f *Fleet) Blackout() bool { return f.blackout }

// Start installs an agent on every current server plus the system agent.
// Start is idempotent.
func (f *Fleet) Start() error {
	if f.started {
		return nil
	}
	f.started = true
	for _, tierName := range ntier.Tiers() {
		for _, m := range f.app.Members(tierName) {
			if err := f.Attach(tierName, m.Name()); err != nil {
				return err
			}
		}
	}
	f.sysTop = f.eng.Ticker(f.interval, f.publishSystem)
	return nil
}

// Attach installs a monitoring agent on one server — called by the
// VM-agent when a newly launched VM joins the system. Attaching twice is
// an error.
func (f *Fleet) Attach(tierName, vmName string) error {
	if _, exists := f.agents[vmName]; exists {
		return fmt.Errorf("%w: agent for %q already attached", ErrBadFleet, vmName)
	}
	member, err := f.app.Member(tierName, vmName)
	if err != nil {
		return fmt.Errorf("monitor: attach: %w", err)
	}
	stop := f.eng.Ticker(f.interval, func() {
		srv := member.Server()
		s := srv.TakeSample()
		sample := ServerSample{
			At:                   f.eng.Now(),
			VM:                   vmName,
			Tier:                 tierName,
			CPUUtil:              s.Utilization,
			Throughput:           float64(s.Completions) / f.interval.Seconds(),
			MeanServiceSeconds:   s.MeanExecSeconds,
			ActiveThreads:        s.MeanConcurrency,
			MeanQueueWaitSeconds: s.MeanQueueWaitSeconds,
			QueueLen:             s.QueueLen,
			QueuePeak:            s.QueuePeak,
			PoolSize:             s.PoolSize,
		}
		if pool := member.Pool(); pool != nil {
			ps := pool.TakeSample()
			sample.ConnPoolSize = ps.Size
			sample.ConnWaiting = ps.Waiting
			sample.ConnInUse = ps.InUse
			sample.ConnLeaked = ps.Leaked
		}
		// During a blackout the sample is taken (draining the server's
		// interval accumulators, as a real agent would) but never shipped.
		if f.blackout {
			return
		}
		// A full bus is a monitoring failure, not an application failure:
		// drop the sample.
		_, _ = f.b.Publish(TopicServerMetrics, vmName, sample)
	})
	f.agents[vmName] = stop
	return nil
}

// Detach removes the agent of a departing VM. Detaching an unknown VM is
// a no-op (the VM may have been terminated before its agent attached).
func (f *Fleet) Detach(vmName string) {
	if stop, ok := f.agents[vmName]; ok {
		stop()
		delete(f.agents, vmName)
	}
}

// AgentCount returns the number of attached per-VM agents.
func (f *Fleet) AgentCount() int { return len(f.agents) }

func (f *Fleet) publishSystem() {
	st := f.app.TakeStats()
	if f.blackout {
		return
	}
	sample := SystemSample{
		At:               f.eng.Now(),
		Throughput:       float64(st.Completions) / f.interval.Seconds(),
		MeanRTSeconds:    st.MeanRTSeconds,
		P95RTSeconds:     st.RT.P95,
		MaxRTSeconds:     st.RT.Max,
		MeanAppResidence: st.MeanAppResidence,
		MeanDBResidence:  st.MeanDBResidence,
		Errors:           st.Errors,
		InFlight:         st.InFlight,
	}
	_, _ = f.b.Publish(TopicSystemMetrics, "system", sample)
}

// Stop halts all agents.
func (f *Fleet) Stop() {
	for name, stop := range f.agents {
		stop()
		delete(f.agents, name)
	}
	if f.sysTop != nil {
		f.sysTop()
		f.sysTop = nil
	}
	f.started = false
}
