package monitor

import (
	"testing"
	"time"
)

func sample(vm string, at time.Duration, cpu float64) ServerSample {
	return ServerSample{At: at, VM: vm, Tier: "app", CPUUtil: cpu, Throughput: 100}
}

func TestGuardRejectsStaleSamples(t *testing.T) {
	g := NewGuard(GuardConfig{MaxStaleness: 3 * time.Second})
	s := sample("app-0", 10*time.Second, 0.5)
	if !g.AdmitServer(12*time.Second, &s) {
		t.Fatal("fresh sample rejected")
	}
	old := sample("app-0", 10*time.Second, 0.5)
	if g.AdmitServer(14*time.Second, &old) {
		t.Fatal("stale sample admitted")
	}
	if got := g.Stats().Stale; got != 1 {
		t.Fatalf("stale count = %d, want 1", got)
	}
}

// TestGuardClampsNonMonotonicTimestamps pins the bugfix: a sample whose
// timestamp runs backwards (clock step, replayed message) is clamped to
// the VM's previous instant and counted — never silently averaged at its
// bogus position, never dropped.
func TestGuardClampsNonMonotonicTimestamps(t *testing.T) {
	g := NewGuard(GuardConfig{})
	s1 := sample("app-0", 10*time.Second, 0.5)
	if !g.AdmitServer(10*time.Second, &s1) {
		t.Fatal("first sample rejected")
	}
	back := sample("app-0", 8*time.Second, 0.6)
	if !g.AdmitServer(10*time.Second, &back) {
		t.Fatal("non-monotonic sample dropped; want clamp+flag")
	}
	if back.At != 10*time.Second {
		t.Fatalf("timestamp = %v, want clamped to 10s", back.At)
	}
	if got := g.Stats().NonMonotonic; got != 1 {
		t.Fatalf("nonMonotonic count = %d, want 1", got)
	}
	// Another VM's clock is independent: no flag.
	other := sample("app-1", 8*time.Second, 0.6)
	if !g.AdmitServer(10*time.Second, &other) || g.Stats().NonMonotonic != 1 {
		t.Fatal("independent VM tripped the monotonic check")
	}
}

func TestGuardReplacesOutliersWithWindowMedian(t *testing.T) {
	g := NewGuard(GuardConfig{OutlierWindow: 3, OutlierFactor: 4})
	at := time.Second
	for i := 0; i < 3; i++ {
		s := sample("app-0", at, 0.5)
		if !g.AdmitServer(at, &s) {
			t.Fatal("warm-up sample rejected")
		}
		at += time.Second
	}
	// A 4x+ excursion from the 0.5 median is a glitch: replaced.
	glitch := sample("app-0", at, 9.0)
	if !g.AdmitServer(at, &glitch) {
		t.Fatal("outlier sample dropped; want repair")
	}
	if glitch.CPUUtil != 0.5 {
		t.Fatalf("CPU = %v, want median 0.5", glitch.CPUUtil)
	}
	if got := g.Stats().Outliers; got != 1 {
		t.Fatalf("outlier count = %d, want 1", got)
	}
	// A sane reading inside the band passes untouched.
	at += time.Second
	ok := sample("app-0", at, 0.9)
	if !g.AdmitServer(at, &ok) || ok.CPUUtil != 0.9 {
		t.Fatalf("in-band reading mangled: %+v", ok)
	}
	// Near-idle absolute allowance: median 0.5 / 4 - 0.05 = 0.075, so
	// 0.08 survives even though it is far from the median relatively.
	at += time.Second
	idle := sample("app-0", at, 0.08)
	if !g.AdmitServer(at, &idle) || idle.CPUUtil != 0.08 {
		t.Fatalf("near-idle reading mangled: %+v", idle)
	}
}

func TestGuardOutlierFilterWaitsForWindow(t *testing.T) {
	g := NewGuard(GuardConfig{OutlierWindow: 5, OutlierFactor: 4})
	// Before the window fills there is no median to trust: admit as-is.
	s := sample("app-0", time.Second, 9.0)
	if !g.AdmitServer(time.Second, &s) || s.CPUUtil != 9.0 {
		t.Fatalf("pre-window sample mangled: %+v", s)
	}
	if g.Stats().Outliers != 0 {
		t.Fatal("outlier counted before the window filled")
	}
}

func TestGuardBridgesBlackoutsThenConcedes(t *testing.T) {
	g := NewGuard(GuardConfig{SmoothPeriods: 2})
	agg := TierAggregate{MeanCPU: 0.6, MaxCPU: 0.7, MeanActive: 12, Throughput: 340}
	g.RecordTier("app", agg)

	for i := 0; i < 2; i++ {
		got, ok := g.FillDark("app")
		if !ok || got != agg {
			t.Fatalf("dark period %d: got %+v ok=%v, want held aggregate", i, got, ok)
		}
	}
	if _, ok := g.FillDark("app"); ok {
		t.Fatal("guard bridged past SmoothPeriods; want NoData concession")
	}
	if got := g.Stats().Smoothed; got != 2 {
		t.Fatalf("smoothed count = %d, want 2", got)
	}

	// A live period resets the streak.
	g.RecordTier("app", agg)
	if _, ok := g.FillDark("app"); !ok {
		t.Fatal("streak not reset by a live aggregate")
	}

	// A tier never seen live has nothing to hold.
	if _, ok := g.FillDark("db"); ok {
		t.Fatal("guard invented an aggregate for a never-seen tier")
	}
}

func TestGuardStatsAny(t *testing.T) {
	if (GuardStats{}).Any() {
		t.Fatal("zero stats reported Any")
	}
	for _, s := range []GuardStats{{Stale: 1}, {NonMonotonic: 1}, {Outliers: 1}, {Smoothed: 1}} {
		if !s.Any() {
			t.Fatalf("%+v did not report Any", s)
		}
	}
}
