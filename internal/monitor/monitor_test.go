package monitor

import (
	"errors"
	"testing"
	"time"

	"dcm/internal/bus"
	"dcm/internal/ntier"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *bus.Bus, *ntier.App, *Fleet) {
	t.Helper()
	eng := sim.NewEngine()
	b := bus.New()
	cfg := ntier.DefaultConfig()
	cfg.AppThreads = 10
	cfg.DBConnsPerApp = 10
	app, err := ntier.New(eng, rng.New(1).Split("app"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewFleet(eng, b, app, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return eng, b, app, fleet
}

func TestNewFleetValidation(t *testing.T) {
	t.Parallel()
	eng, b, app, _ := setup(t)
	if _, err := NewFleet(nil, b, app, 0); !errors.Is(err, ErrBadFleet) {
		t.Fatalf("nil engine: %v", err)
	}
	if _, err := NewFleet(eng, nil, app, 0); !errors.Is(err, ErrBadFleet) {
		t.Fatalf("nil bus: %v", err)
	}
	f, err := NewFleet(eng, b, app, -time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if f.Interval() != time.Second {
		t.Fatalf("interval default = %v", f.Interval())
	}
}

func TestFleetPublishesPerServerSamples(t *testing.T) {
	t.Parallel()
	eng, b, app, fleet := setup(t)
	if err := fleet.Start(); err != nil {
		t.Fatal(err)
	}
	if fleet.AgentCount() != 3 {
		t.Fatalf("agents = %d, want 3 (one per server)", fleet.AgentCount())
	}
	// Generate load so samples carry data.
	var cycle func()
	cycle = func() { app.Inject(func(time.Duration, bool) { cycle() }) }
	for i := 0; i < 5; i++ {
		cycle()
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Fetch(TopicServerMetrics, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 30 {
		t.Fatalf("server samples = %d, want 3 servers x 10 seconds", len(msgs))
	}
	byTier := map[string]int{}
	for _, m := range msgs {
		s, ok := m.Value.(ServerSample)
		if !ok {
			t.Fatalf("payload type %T", m.Value)
		}
		byTier[s.Tier]++
		if s.VM == "" || s.At == 0 {
			t.Fatalf("sample missing metadata: %+v", s)
		}
		if s.Tier == ntier.TierApp && s.ConnPoolSize != 10 {
			t.Fatalf("app sample conn pool = %d", s.ConnPoolSize)
		}
	}
	if byTier["web"] != 10 || byTier["app"] != 10 || byTier["db"] != 10 {
		t.Fatalf("samples by tier = %v", byTier)
	}
	// The loaded app server must show nonzero throughput and utilization.
	var sawBusyApp bool
	for _, m := range msgs {
		if s, ok := m.Value.(ServerSample); ok {
			if s.Tier == ntier.TierApp && s.Throughput > 0 && s.CPUUtil > 0 {
				sawBusyApp = true
			}
		}
	}
	if !sawBusyApp {
		t.Fatal("no busy app-tier sample observed under load")
	}
}

func TestFleetPublishesSystemSamples(t *testing.T) {
	t.Parallel()
	eng, b, app, fleet := setup(t)
	if err := fleet.Start(); err != nil {
		t.Fatal(err)
	}
	var cycle func()
	cycle = func() { app.Inject(func(time.Duration, bool) { cycle() }) }
	cycle()
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Fetch(TopicSystemMetrics, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 5 {
		t.Fatalf("system samples = %d", len(msgs))
	}
	s, ok := msgs[2].Value.(SystemSample)
	if !ok {
		t.Fatalf("payload type %T", msgs[2].Value)
	}
	if s.Throughput <= 0 || s.MeanRTSeconds <= 0 {
		t.Fatalf("system sample = %+v", s)
	}
}

func TestStartIdempotent(t *testing.T) {
	t.Parallel()
	eng, b, _, fleet := setup(t)
	if err := fleet.Start(); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Fetch(TopicServerMetrics, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 6 {
		t.Fatalf("double start duplicated agents: %d samples", len(msgs))
	}
}

func TestAttachDetach(t *testing.T) {
	t.Parallel()
	eng, b, app, fleet := setup(t)
	if err := fleet.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := app.AddServer(ntier.TierApp, "app-2"); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Attach(ntier.TierApp, "app-2"); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Attach(ntier.TierApp, "app-2"); !errors.Is(err, ErrBadFleet) {
		t.Fatalf("double attach: %v", err)
	}
	if err := fleet.Attach(ntier.TierApp, "ghost"); err == nil {
		t.Fatal("attached to unknown server")
	}
	if fleet.AgentCount() != 4 {
		t.Fatalf("agents = %d", fleet.AgentCount())
	}
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	fleet.Detach("app-2")
	fleet.Detach("app-2") // no-op
	if fleet.AgentCount() != 3 {
		t.Fatalf("agents after detach = %d", fleet.AgentCount())
	}
	before := b.EndOffset(TopicServerMetrics)
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Fetch(TopicServerMetrics, before, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if m.Key == "app-2" {
			t.Fatal("detached agent still publishing")
		}
	}
}

func TestStopHaltsPublishing(t *testing.T) {
	t.Parallel()
	eng, b, _, fleet := setup(t)
	if err := fleet.Start(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	fleet.Stop()
	if fleet.AgentCount() != 0 {
		t.Fatalf("agents after stop = %d", fleet.AgentCount())
	}
	before := b.EndOffset(TopicServerMetrics)
	beforeSys := b.EndOffset(TopicSystemMetrics)
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if b.EndOffset(TopicServerMetrics) != before || b.EndOffset(TopicSystemMetrics) != beforeSys {
		t.Fatal("fleet published after Stop")
	}
}

func TestBlackoutSuppressesPublishing(t *testing.T) {
	t.Parallel()
	eng, b, _, fleet := setup(t)
	if err := fleet.Start(); err != nil {
		t.Fatal(err)
	}
	// Blackout from 3s to 6s, then run to 10s.
	eng.Schedule(3*time.Second, func() { fleet.SetBlackout(true) })
	eng.Schedule(6*time.Second, func() { fleet.SetBlackout(false) })
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	fleet.Stop()

	msgs, err := b.Fetch(TopicSystemMetrics, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, m := range msgs {
		s, ok := m.Value.(SystemSample)
		if !ok {
			continue
		}
		seen[int(s.At.Seconds())] = true
	}
	// The blackout/repair events were scheduled before the ticker's
	// same-instant firings, so FIFO order makes them win the tie: samples
	// land at 1..2, go dark at 3..5, resume at 6..10.
	for _, sec := range []int{1, 2, 6, 7, 8, 9, 10} {
		if !seen[sec] {
			t.Errorf("missing system sample at %ds outside the blackout", sec)
		}
	}
	for _, sec := range []int{3, 4, 5} {
		if seen[sec] {
			t.Errorf("system sample published at %ds during the blackout", sec)
		}
	}

	srvMsgs, err := b.Fetch(TopicServerMetrics, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range srvMsgs {
		s, ok := m.Value.(ServerSample)
		if !ok {
			continue
		}
		if sec := int(s.At.Seconds()); sec >= 3 && sec <= 5 {
			t.Errorf("server sample for %s published at %ds during the blackout", s.VM, sec)
		}
	}
}
