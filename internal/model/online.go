package model

import (
	"math"
)

// OnlineTrainer implements §III-C's online estimation: "We can determine
// these parameters via online monitoring of the whole system, then regress
// based on the measured system throughput and the thread allocation of
// each server in the bottleneck tier."
//
// It accumulates (per-server concurrency, per-server throughput) samples
// from the fine-grained monitor and refits Equation 7 on demand. The
// approach is principled at any utilization: by Little's law a
// work-conserving server's operating point satisfies n = X·S*(n), so every
// measured (mean-active, throughput) pair lies on the N/S*(N) curve —
// saturated or not.
//
// The trainer refuses to fit until the observations span enough distinct
// concurrency levels over a wide enough range; a fit from a narrow
// operating band would extrapolate the optimum from no evidence (the same
// guard model.Train applies to the optimum itself).
type OnlineTrainer struct {
	opts TrainOptions

	capacity    int
	minDistinct int
	minSpread   float64
	minPeakDrop float64

	obs  []Observation
	next int
	full bool

	latest  TrainResult
	trained bool
}

// OnlineConfig tunes an OnlineTrainer. The zero value selects defaults.
type OnlineConfig struct {
	// Capacity is the observation ring size (default 512).
	Capacity int
	// MinDistinct is the number of distinct concurrency levels (rounded to
	// integers) required before fitting (default 6).
	MinDistinct int
	// MinSpread is the required ratio between the largest and smallest
	// observed concurrency (default 3).
	MinSpread float64
	// MinPeakDrop is the relative throughput decline the fitted curve must
	// predict between its optimum and the largest observed concurrency for
	// the fit to be considered actionable (default 0.02). A curve that is
	// flat across the observed range gives no evidence for *where* its
	// optimum is — the fitted peak location would be noise.
	MinPeakDrop float64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.Capacity <= 0 {
		c.Capacity = 512
	}
	if c.MinDistinct <= 0 {
		c.MinDistinct = 6
	}
	if c.MinSpread <= 1 {
		c.MinSpread = 3
	}
	if c.MinPeakDrop <= 0 {
		c.MinPeakDrop = 0.02
	}
	return c
}

// NewOnlineTrainer returns an empty trainer. opts configures the
// underlying Train call (gauge anchoring, server count).
func NewOnlineTrainer(opts TrainOptions, cfg OnlineConfig) *OnlineTrainer {
	cfg = cfg.withDefaults()
	return &OnlineTrainer{
		opts:        opts,
		capacity:    cfg.Capacity,
		minDistinct: cfg.MinDistinct,
		minSpread:   cfg.MinSpread,
		minPeakDrop: cfg.MinPeakDrop,
		obs:         make([]Observation, 0, cfg.Capacity),
	}
}

// Observe adds one monitoring sample. Samples outside the curve's domain
// (non-positive concurrency or throughput — e.g. an idle control period)
// are ignored. Fractional concurrencies below 1 are legitimate low-load
// operating points: by Little's law they sit on the linear head of the
// same curve and pin its intercept.
func (t *OnlineTrainer) Observe(concurrency, throughput float64) {
	if concurrency <= 0 || throughput <= 0 ||
		math.IsNaN(concurrency) || math.IsNaN(throughput) ||
		math.IsInf(concurrency, 0) || math.IsInf(throughput, 0) {
		return
	}
	o := Observation{Concurrency: concurrency, Throughput: throughput}
	if len(t.obs) < t.capacity {
		t.obs = append(t.obs, o)
		return
	}
	// Ring overwrite: keep the newest window of operating points.
	t.obs[t.next] = o
	t.next = (t.next + 1) % t.capacity
	t.full = true
}

// Len returns the number of retained observations.
func (t *OnlineTrainer) Len() int { return len(t.obs) }

// Identifiable reports whether the retained observations span enough
// distinct concurrency levels to support a fit.
func (t *OnlineTrainer) Identifiable() bool {
	if len(t.obs) < t.minDistinct {
		return false
	}
	distinct := make(map[int]bool, len(t.obs))
	minN, maxN := math.Inf(1), 0.0
	for _, o := range t.obs {
		// Log-spaced buckets: 0.5 and 0.7 are one level, 20 and 21 are one
		// level, 20 and 40 are distinct.
		distinct[int(math.Round(math.Log(o.Concurrency)*4))] = true
		if o.Concurrency < minN {
			minN = o.Concurrency
		}
		if o.Concurrency > maxN {
			maxN = o.Concurrency
		}
	}
	return len(distinct) >= t.minDistinct && maxN >= t.minSpread*minN
}

// TryFit refits the model when the data are identifiable. On success the
// result becomes Latest; on failure (not identifiable, no interior
// optimum, or a degenerate fit) the previous result is kept. ok reports
// whether this call produced a fresh fit.
func (t *OnlineTrainer) TryFit() (TrainResult, bool) {
	if !t.Identifiable() {
		return t.latest, false
	}
	obs := make([]Observation, len(t.obs))
	copy(obs, t.obs)
	res, err := Train(obs, t.opts)
	if err != nil {
		return t.latest, false
	}
	// Flatness guard: the fitted optimum is only actionable when the data
	// range actually exhibits a decline beyond it.
	maxN := 0.0
	for _, o := range obs {
		if o.Concurrency > maxN {
			maxN = o.Concurrency
		}
	}
	nb, ok := res.Params.OptimalConcurrency()
	if !ok {
		return t.latest, false
	}
	peakX := res.Params.Throughput(nb, 1)
	edgeX := res.Params.Throughput(maxN, 1)
	if peakX <= 0 || (peakX-edgeX)/peakX < t.minPeakDrop {
		return t.latest, false
	}
	t.latest = res
	t.trained = true
	return res, true
}

// Latest returns the most recent successful fit.
func (t *OnlineTrainer) Latest() (TrainResult, bool) {
	return t.latest, t.trained
}
