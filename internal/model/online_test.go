package model

import (
	"testing"

	"dcm/internal/rng"
)

func feedCurve(t *OnlineTrainer, p Params, levels []float64, noise float64, seed uint64) {
	r := rng.New(seed)
	for _, n := range levels {
		x := p.Throughput(n, 1)
		if noise > 0 {
			x *= 1 + r.Normal(0, noise)
		}
		t.Observe(n, x)
	}
}

func TestOnlineTrainerRecoversOptimum(t *testing.T) {
	t.Parallel()
	tomcat, _ := TableI()
	ot := NewOnlineTrainer(TrainOptions{}, OnlineConfig{})
	feedCurve(ot, tomcat, []float64{2, 4, 7, 11, 16, 22, 30, 45, 70, 100, 150}, 0.01, 3)
	res, ok := ot.TryFit()
	if !ok {
		t.Fatal("identifiable data did not fit")
	}
	if res.OptimalN < 17 || res.OptimalN > 23 {
		t.Fatalf("online N_b = %d, want ~20", res.OptimalN)
	}
	if _, ok := ot.Latest(); !ok {
		t.Fatal("Latest not recorded")
	}
}

func TestOnlineTrainerRefusesNarrowBand(t *testing.T) {
	t.Parallel()
	tomcat, _ := TableI()
	ot := NewOnlineTrainer(TrainOptions{}, OnlineConfig{})
	// Many samples, but all in a narrow operating band: not identifiable.
	feedCurve(ot, tomcat, []float64{18, 19, 20, 21, 22, 19.5, 20.5, 18.5, 21.5, 20.2}, 0, 1)
	if ot.Identifiable() {
		t.Fatal("narrow band reported identifiable")
	}
	if _, ok := ot.TryFit(); ok {
		t.Fatal("narrow band produced a fit")
	}
	if _, ok := ot.Latest(); ok {
		t.Fatal("Latest set without a successful fit")
	}
}

func TestOnlineTrainerRefusesFewDistinctLevels(t *testing.T) {
	t.Parallel()
	tomcat, _ := TableI()
	ot := NewOnlineTrainer(TrainOptions{}, OnlineConfig{MinDistinct: 6})
	// Wide spread but only 3 distinct levels.
	for i := 0; i < 20; i++ {
		feedCurve(ot, tomcat, []float64{2, 20, 100}, 0, uint64(i))
	}
	if ot.Identifiable() {
		t.Fatal("3 levels reported identifiable")
	}
}

func TestOnlineTrainerIgnoresBadSamples(t *testing.T) {
	t.Parallel()
	ot := NewOnlineTrainer(TrainOptions{}, OnlineConfig{})
	ot.Observe(0, 100)  // concurrency outside domain
	ot.Observe(-2, 100) // negative concurrency
	ot.Observe(10, 0)   // idle period
	ot.Observe(10, -5)
	if ot.Len() != 0 {
		t.Fatalf("bad samples retained: %d", ot.Len())
	}
	ot.Observe(0.5, 100) // fractional low-load points are valid
	if ot.Len() != 1 {
		t.Fatalf("fractional sample dropped: %d", ot.Len())
	}
}

func TestOnlineTrainerRingEviction(t *testing.T) {
	t.Parallel()
	tomcat, _ := TableI()
	ot := NewOnlineTrainer(TrainOptions{}, OnlineConfig{Capacity: 16})
	for i := 0; i < 100; i++ {
		feedCurve(ot, tomcat, []float64{2, 5, 10, 20, 50, 100}, 0.005, uint64(i))
	}
	if ot.Len() != 16 {
		t.Fatalf("ring size = %d, want 16", ot.Len())
	}
	res, ok := ot.TryFit()
	if !ok {
		t.Fatal("no fit from rolling window")
	}
	if res.OptimalN < 16 || res.OptimalN > 24 {
		t.Fatalf("N_b from rolling window = %d", res.OptimalN)
	}
}

func TestOnlineTrainerKeepsLastGoodFit(t *testing.T) {
	t.Parallel()
	tomcat, _ := TableI()
	ot := NewOnlineTrainer(TrainOptions{}, OnlineConfig{Capacity: 11})
	feedCurve(ot, tomcat, []float64{2, 4, 7, 11, 16, 22, 30, 45, 70, 100, 150}, 0, 1)
	first, ok := ot.TryFit()
	if !ok {
		t.Fatal("initial fit failed")
	}
	// Flood the ring with a narrow band: next TryFit fails but Latest holds.
	for i := 0; i < 11; i++ {
		ot.Observe(20, tomcat.Throughput(20, 1))
	}
	if _, ok := ot.TryFit(); ok {
		t.Fatal("narrow window produced a fit")
	}
	latest, ok := ot.Latest()
	if !ok || latest.OptimalN != first.OptimalN {
		t.Fatalf("last good fit lost: %+v", latest)
	}
}
