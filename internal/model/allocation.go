package model

import (
	"fmt"
	"math"
)

// TableI returns the paper's published model parameters (Table I), used as
// the default calibration of the simulated Tomcat and MySQL servers and as
// ground truth for model-recovery tests.
//
//	           Tomcat     MySQL
//	S0         2.84e-02   7.19e-03
//	alpha      9.87e-03   5.04e-03
//	beta       4.54e-05   1.65e-06
//	gamma      11.03      4.45
func TableI() (tomcat, mysql Params) {
	tomcat = Params{S0: 2.84e-2, Alpha: 9.87e-3, Beta: 4.54e-5, Gamma: 11.03}
	mysql = Params{S0: 7.19e-3, Alpha: 5.04e-3, Beta: 1.65e-6, Gamma: 4.45}
	return tomcat, mysql
}

// AllocationInput describes the current hardware configuration and the
// trained tier models from which DCM derives soft-resource allocations.
type AllocationInput struct {
	// Tomcat and MySQL are the trained concurrency models of the two
	// concurrency-sensitive tiers.
	Tomcat, MySQL Params
	// WebServers, AppServers, DBServers are the current #W/#A/#D.
	WebServers, AppServers, DBServers int
	// Headroom scales the theoretical N_b up to a practical pool size,
	// because "not all threads will be in Active state during the
	// operation" (§III-C). 1.0 uses N_b directly; defaults to 1.0.
	Headroom float64
	// WebThreads is the (generous) Apache thread pool size; Apache is never
	// the concurrency-sensitive tier in the paper. Defaults to 1000.
	WebThreads int
}

// Allocation is a complete soft-resource plan: the #W_T/#A_T/#A_C setting
// of §II-A, expressed per server.
type Allocation struct {
	// WebThreadsPerServer is the Apache thread pool size per web server.
	WebThreadsPerServer int `json:"webThreadsPerServer"`
	// AppThreadsPerServer is the Tomcat thread pool (STP) size per app
	// server: the APP-agent's first control knob (§IV-B).
	AppThreadsPerServer int `json:"appThreadsPerServer"`
	// DBConnsPerAppServer is the Tomcat DB connection pool size per app
	// server: the APP-agent's second control knob, which bounds MySQL's
	// request-processing concurrency from upstream (§IV-B).
	DBConnsPerAppServer int `json:"dbConnsPerAppServer"`
}

// String renders the allocation in the paper's #W_T/#A_T/#A_C notation.
func (a Allocation) String() string {
	return fmt.Sprintf("%d/%d/%d",
		a.WebThreadsPerServer, a.AppThreadsPerServer, a.DBConnsPerAppServer)
}

// PlanAllocation computes the near-optimal soft-resource allocation for the
// given hardware configuration:
//
//   - each Tomcat's thread pool is set to N_b(Tomcat)·headroom, so the tier
//     processes at its per-server optimum;
//   - the Tomcat DB connection pools are sized so the *total* concurrency
//     reaching the MySQL tier is N_b(MySQL)·K_db, split evenly across the
//     K_app Tomcats (the "each Tomcat shares half of the optimal connection
//     pool size" rule behind the 1000/100/18 setting in Fig. 4(b)).
//
// Every pool is at least 1 so a tier can never be starved completely.
func PlanAllocation(in AllocationInput) (Allocation, error) {
	alloc, _, err := PlanAllocationDetailed(in)
	return alloc, err
}

// PlanDiag reports how the planner arrived at an allocation — in
// particular whether either concurrency knob was clamped to a floor or
// ceiling, which the decision audit log surfaces as an explainable
// "concurrency-clamp" condition (a model whose optimum rounds to zero
// pools, usually a degenerate online fit).
type PlanDiag struct {
	// RawAppThreads and RawDBConnsPerApp are the pre-clamp planner outputs.
	RawAppThreads    int `json:"rawAppThreads"`
	RawDBConnsPerApp int `json:"rawDBConnsPerApp"`
	// AppClamped / DBClamped report that the knob was raised to the
	// concurrency floor.
	AppClamped bool `json:"appClamped,omitempty"`
	DBClamped  bool `json:"dbClamped,omitempty"`
	// AppCapped / DBCapped report that the knob was lowered to the
	// concurrency ceiling (only possible under rules with caps set).
	AppCapped bool `json:"appCapped,omitempty"`
	DBCapped  bool `json:"dbCapped,omitempty"`
}

// PlanRules are the declarative planner parameters: the defaults and
// clamps that used to be hard-coded in PlanAllocationDetailed. The policy
// layer (internal/policy) produces them from a loaded rule set; the zero
// value is NOT valid — use DefaultPlanRules.
type PlanRules struct {
	// DefaultHeadroom applies when AllocationInput.Headroom is unset.
	DefaultHeadroom float64
	// DefaultWebThreads applies when AllocationInput.WebThreads is unset.
	DefaultWebThreads int
	// AppThreadsFloor and DBConnsFloor are the concurrency clamps: no pool
	// is ever planned below them, so a degenerate fit cannot starve a tier.
	AppThreadsFloor, DBConnsFloor int
	// AppThreadsCap and DBConnsCap are optional ceilings (0 = uncapped).
	AppThreadsCap, DBConnsCap int
}

// DefaultPlanRules returns the planner's historical parameters: headroom
// 1.0, 1000 Apache threads, both concurrency floors at 1, no ceilings.
func DefaultPlanRules() PlanRules {
	return PlanRules{
		DefaultHeadroom:   1.0,
		DefaultWebThreads: 1000,
		AppThreadsFloor:   1,
		DBConnsFloor:      1,
	}
}

// PlanAllocationDetailed is PlanAllocation returning clamp diagnostics,
// under the historical default rules.
func PlanAllocationDetailed(in AllocationInput) (Allocation, PlanDiag, error) {
	return PlanAllocationWithRules(in, DefaultPlanRules())
}

// PlanAllocationWithRules computes the near-optimal allocation under an
// explicit planner rule set: the model-derived per-server optima scaled by
// headroom, clamped into [floor, cap] per knob.
func PlanAllocationWithRules(in AllocationInput, rules PlanRules) (Allocation, PlanDiag, error) {
	if in.AppServers < 1 || in.DBServers < 1 || in.WebServers < 1 {
		return Allocation{}, PlanDiag{}, fmt.Errorf("model: invalid topology %d/%d/%d",
			in.WebServers, in.AppServers, in.DBServers)
	}
	appFloor := rules.AppThreadsFloor
	if appFloor < 1 {
		appFloor = 1
	}
	dbFloor := rules.DBConnsFloor
	if dbFloor < 1 {
		dbFloor = 1
	}
	headroom := in.Headroom
	if headroom <= 0 {
		headroom = rules.DefaultHeadroom
	}
	if headroom <= 0 {
		headroom = 1.0
	}
	webThreads := in.WebThreads
	if webThreads <= 0 {
		webThreads = rules.DefaultWebThreads
	}
	if webThreads <= 0 {
		webThreads = 1000
	}

	appN, ok := in.Tomcat.OptimalConcurrency()
	if !ok {
		return Allocation{}, PlanDiag{}, fmt.Errorf("model: tomcat model: %w", ErrNoOptimum)
	}
	dbN, ok := in.MySQL.OptimalConcurrency()
	if !ok {
		return Allocation{}, PlanDiag{}, fmt.Errorf("model: mysql model: %w", ErrNoOptimum)
	}

	appThreads := int(math.Round(appN * headroom))
	dbTotal := dbN * headroom * float64(in.DBServers)
	dbPerApp := int(math.Round(dbTotal / float64(in.AppServers)))

	diag := PlanDiag{
		RawAppThreads:    appThreads,
		RawDBConnsPerApp: dbPerApp,
		AppClamped:       appThreads < appFloor,
		DBClamped:        dbPerApp < dbFloor,
	}
	appThreads = maxInt(appFloor, appThreads)
	dbPerApp = maxInt(dbFloor, dbPerApp)
	if rules.AppThreadsCap > 0 && appThreads > rules.AppThreadsCap {
		appThreads = rules.AppThreadsCap
		diag.AppCapped = true
	}
	if rules.DBConnsCap > 0 && dbPerApp > rules.DBConnsCap {
		dbPerApp = rules.DBConnsCap
		diag.DBCapped = true
	}
	return Allocation{
		WebThreadsPerServer: webThreads,
		AppThreadsPerServer: appThreads,
		DBConnsPerAppServer: dbPerApp,
	}, diag, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
