package model

import (
	"fmt"
	"math"
)

// TableI returns the paper's published model parameters (Table I), used as
// the default calibration of the simulated Tomcat and MySQL servers and as
// ground truth for model-recovery tests.
//
//	           Tomcat     MySQL
//	S0         2.84e-02   7.19e-03
//	alpha      9.87e-03   5.04e-03
//	beta       4.54e-05   1.65e-06
//	gamma      11.03      4.45
func TableI() (tomcat, mysql Params) {
	tomcat = Params{S0: 2.84e-2, Alpha: 9.87e-3, Beta: 4.54e-5, Gamma: 11.03}
	mysql = Params{S0: 7.19e-3, Alpha: 5.04e-3, Beta: 1.65e-6, Gamma: 4.45}
	return tomcat, mysql
}

// AllocationInput describes the current hardware configuration and the
// trained tier models from which DCM derives soft-resource allocations.
type AllocationInput struct {
	// Tomcat and MySQL are the trained concurrency models of the two
	// concurrency-sensitive tiers.
	Tomcat, MySQL Params
	// WebServers, AppServers, DBServers are the current #W/#A/#D.
	WebServers, AppServers, DBServers int
	// Headroom scales the theoretical N_b up to a practical pool size,
	// because "not all threads will be in Active state during the
	// operation" (§III-C). 1.0 uses N_b directly; defaults to 1.0.
	Headroom float64
	// WebThreads is the (generous) Apache thread pool size; Apache is never
	// the concurrency-sensitive tier in the paper. Defaults to 1000.
	WebThreads int
}

// Allocation is a complete soft-resource plan: the #W_T/#A_T/#A_C setting
// of §II-A, expressed per server.
type Allocation struct {
	// WebThreadsPerServer is the Apache thread pool size per web server.
	WebThreadsPerServer int `json:"webThreadsPerServer"`
	// AppThreadsPerServer is the Tomcat thread pool (STP) size per app
	// server: the APP-agent's first control knob (§IV-B).
	AppThreadsPerServer int `json:"appThreadsPerServer"`
	// DBConnsPerAppServer is the Tomcat DB connection pool size per app
	// server: the APP-agent's second control knob, which bounds MySQL's
	// request-processing concurrency from upstream (§IV-B).
	DBConnsPerAppServer int `json:"dbConnsPerAppServer"`
}

// String renders the allocation in the paper's #W_T/#A_T/#A_C notation.
func (a Allocation) String() string {
	return fmt.Sprintf("%d/%d/%d",
		a.WebThreadsPerServer, a.AppThreadsPerServer, a.DBConnsPerAppServer)
}

// PlanAllocation computes the near-optimal soft-resource allocation for the
// given hardware configuration:
//
//   - each Tomcat's thread pool is set to N_b(Tomcat)·headroom, so the tier
//     processes at its per-server optimum;
//   - the Tomcat DB connection pools are sized so the *total* concurrency
//     reaching the MySQL tier is N_b(MySQL)·K_db, split evenly across the
//     K_app Tomcats (the "each Tomcat shares half of the optimal connection
//     pool size" rule behind the 1000/100/18 setting in Fig. 4(b)).
//
// Every pool is at least 1 so a tier can never be starved completely.
func PlanAllocation(in AllocationInput) (Allocation, error) {
	alloc, _, err := PlanAllocationDetailed(in)
	return alloc, err
}

// PlanDiag reports how the planner arrived at an allocation — in
// particular whether either concurrency knob was clamped to the floor of
// 1, which the decision audit log surfaces as an explainable
// "concurrency-clamp" condition (a model whose optimum rounds to zero
// pools, usually a degenerate online fit).
type PlanDiag struct {
	// RawAppThreads and RawDBConnsPerApp are the pre-clamp planner outputs.
	RawAppThreads    int `json:"rawAppThreads"`
	RawDBConnsPerApp int `json:"rawDBConnsPerApp"`
	// AppClamped / DBClamped report that the knob was raised to the floor
	// of 1.
	AppClamped bool `json:"appClamped,omitempty"`
	DBClamped  bool `json:"dbClamped,omitempty"`
}

// PlanAllocationDetailed is PlanAllocation returning clamp diagnostics.
func PlanAllocationDetailed(in AllocationInput) (Allocation, PlanDiag, error) {
	if in.AppServers < 1 || in.DBServers < 1 || in.WebServers < 1 {
		return Allocation{}, PlanDiag{}, fmt.Errorf("model: invalid topology %d/%d/%d",
			in.WebServers, in.AppServers, in.DBServers)
	}
	headroom := in.Headroom
	if headroom <= 0 {
		headroom = 1.0
	}
	webThreads := in.WebThreads
	if webThreads <= 0 {
		webThreads = 1000
	}

	appN, ok := in.Tomcat.OptimalConcurrency()
	if !ok {
		return Allocation{}, PlanDiag{}, fmt.Errorf("model: tomcat model: %w", ErrNoOptimum)
	}
	dbN, ok := in.MySQL.OptimalConcurrency()
	if !ok {
		return Allocation{}, PlanDiag{}, fmt.Errorf("model: mysql model: %w", ErrNoOptimum)
	}

	appThreads := int(math.Round(appN * headroom))
	dbTotal := dbN * headroom * float64(in.DBServers)
	dbPerApp := int(math.Round(dbTotal / float64(in.AppServers)))

	diag := PlanDiag{
		RawAppThreads:    appThreads,
		RawDBConnsPerApp: dbPerApp,
		AppClamped:       appThreads < 1,
		DBClamped:        dbPerApp < 1,
	}
	return Allocation{
		WebThreadsPerServer: webThreads,
		AppThreadsPerServer: maxInt(1, appThreads),
		DBConnsPerAppServer: maxInt(1, dbPerApp),
	}, diag, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
