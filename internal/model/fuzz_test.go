package model

import (
	"math"
	"testing"
)

// FuzzTrain checks the fitter never panics and that every successful fit
// reports finite, physical parameters with an optimum inside the observed
// range.
func FuzzTrain(f *testing.F) {
	f.Add(uint64(1), 0.01, 0.001, 0.0001, 0.0)
	f.Add(uint64(2), 0.5, 0.0, 0.0, 0.1)
	f.Add(uint64(3), 1e-6, 1e-9, 1e-12, 0.5)
	f.Fuzz(func(t *testing.T, seed uint64, s0, alpha, beta, noise float64) {
		if !(s0 > 1e-9 && s0 < 10) || alpha < 0 || alpha > 10 || beta < 0 || beta > 1 ||
			noise < 0 || noise > 0.5 {
			return
		}
		p := Params{S0: s0, Alpha: alpha, Beta: beta, Gamma: 1}
		var obs []Observation
		for _, n := range []float64{1, 2, 5, 10, 25, 60, 150} {
			x := p.Throughput(n, 1) * (1 + noise*math.Sin(float64(seed)+n))
			if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return
			}
			obs = append(obs, Observation{Concurrency: n, Throughput: x})
		}
		res, err := Train(obs, TrainOptions{})
		if err != nil {
			return // rejection is allowed; panics and junk are not
		}
		if res.Params.S0 <= 0 || res.Params.Beta < 0 || res.Params.Alpha < 0 {
			t.Fatalf("unphysical fit: %+v", res.Params)
		}
		if math.IsNaN(res.RSquared) || math.IsInf(res.RSquared, 0) {
			t.Fatalf("bad R2: %v", res.RSquared)
		}
		if res.OptimalN < 1 || float64(res.OptimalN) > 151 {
			t.Fatalf("optimum outside observed range: %d", res.OptimalN)
		}
	})
}
