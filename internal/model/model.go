// Package model implements the paper's concurrency-aware performance model
// (§III, Equations 1–8): the multi-threaded service-time law, the resulting
// throughput-vs-concurrency curve, its closed-form optimum N_b, parameter
// training by nonlinear least squares, and the soft-resource allocation plan
// DCM derives from the trained models.
package model

import (
	"errors"
	"fmt"
	"math"

	"dcm/internal/fit"
)

// Params are the per-tier model parameters of Equation 5:
//
//	S*(N) = S0 + α(N−1) + βN(N−1)
//
// S0 is the single-threaded service time (seconds), α the per-thread
// contention delay, β the crosstalk (coherency) penalty, and γ the
// correction factor for the sub-linear speedup of adding servers to the
// tier (Equation 4).
type Params struct {
	S0    float64 `json:"s0"`
	Alpha float64 `json:"alpha"`
	Beta  float64 `json:"beta"`
	Gamma float64 `json:"gamma"`
}

// Validate reports whether the parameters describe a physical server.
func (p Params) Validate() error {
	switch {
	case p.S0 <= 0:
		return fmt.Errorf("model: S0 = %v, want > 0", p.S0)
	case p.Alpha < 0:
		return fmt.Errorf("model: alpha = %v, want >= 0", p.Alpha)
	case p.Beta < 0:
		return fmt.Errorf("model: beta = %v, want >= 0", p.Beta)
	case p.Gamma <= 0:
		return fmt.Errorf("model: gamma = %v, want > 0", p.Gamma)
	}
	return nil
}

// ServiceTime returns S*(N) of Equation 5: the wall-clock time one request
// takes when n requests are processed concurrently. n below 1 is treated
// as 1 (a lone request sees the single-threaded service time).
func (p Params) ServiceTime(n float64) float64 {
	if n < 1 {
		n = 1
	}
	return p.S0 + p.Alpha*(n-1) + p.Beta*n*(n-1)
}

// EffectiveServiceTime returns S_b of Equation 6: the average service time
// per completed request in a multi-threaded server, S*(N)/N.
func (p Params) EffectiveServiceTime(n float64) float64 {
	if n < 1 {
		n = 1
	}
	return p.ServiceTime(n) / n
}

// Throughput returns X_max of Equation 7: the saturated throughput of a
// tier with servers servers, each running n concurrent requests.
func (p Params) Throughput(n float64, servers int) float64 {
	if servers < 1 || n < 1 {
		return 0
	}
	return p.Gamma * float64(servers) * n / p.ServiceTime(n)
}

// OptimalConcurrency returns N_b = sqrt((S0−α)/β), the per-server
// concurrency that minimizes the effective service time (§III-C). ok is
// false when the curve has no interior optimum (β = 0, or α ≥ S0, in which
// case throughput is monotone in N).
func (p Params) OptimalConcurrency() (nb float64, ok bool) {
	if p.Beta <= 0 || p.S0 <= p.Alpha {
		return 0, false
	}
	return math.Sqrt((p.S0 - p.Alpha) / p.Beta), true
}

// OptimalConcurrencyInt returns N_b rounded to the nearest whole thread,
// never below 1. ok follows OptimalConcurrency.
func (p Params) OptimalConcurrencyInt() (nb int, ok bool) {
	v, ok := p.OptimalConcurrency()
	if !ok {
		return 0, false
	}
	n := int(math.Round(v))
	if n < 1 {
		n = 1
	}
	return n, true
}

// MaxThroughput returns Max(X_max) of Equation 8: the tier's throughput at
// the optimal concurrency. When no interior optimum exists it returns 0.
func (p Params) MaxThroughput(servers int) float64 {
	nb, ok := p.OptimalConcurrency()
	if !ok || servers < 1 {
		return 0
	}
	return p.Throughput(nb, servers)
}

// Observation is one training point: measured saturated system throughput
// at a given per-server request-processing concurrency.
type Observation struct {
	Concurrency float64 `json:"concurrency"`
	Throughput  float64 `json:"throughput"`
}

// TrainOptions configures Train.
type TrainOptions struct {
	// KnownS0 pins the single-threaded service time (seconds), which the
	// operator can measure directly as the response time at concurrency 1.
	// Equation 7 is scale-invariant in (S0, α, β, γ) — multiplying all four
	// by a constant leaves every prediction and N_b unchanged — so one
	// anchor is needed to report parameters in physical units. If zero,
	// parameters are reported in the normalized gauge γ = 1.
	KnownS0 float64
	// Servers is K_b, the number of servers in the trained (bottleneck)
	// tier during the training run. Defaults to 1.
	Servers int
}

// TrainResult is a fitted tier model.
type TrainResult struct {
	Params Params `json:"params"`
	// RSquared is the coefficient of determination of the fit, the value
	// the paper reports as R² in Table I.
	RSquared float64 `json:"rSquared"`
	// OptimalN is the predicted optimal per-server concurrency N_b.
	OptimalN int `json:"optimalN"`
	// MaxThroughput is the predicted system throughput at OptimalN.
	MaxThroughput float64 `json:"maxThroughput"`
	// Iterations is the number of optimizer iterations of the best start.
	Iterations int `json:"iterations"`
}

// Errors returned by Train.
var (
	ErrTooFewObservations = errors.New("model: need at least 4 observations")
	ErrNoOptimum          = errors.New("model: fitted curve has no interior optimum")
)

// Train fits Equation 7 to (concurrency, throughput) observations, exactly
// as §V-A trains the Tomcat and MySQL models. The fit is performed in the
// identifiable parameterization
//
//	X(N) = N / (a + b(N−1) + cN(N−1))
//
// with a = S0/(γK), b = α/(γK), c = β/(γK), then mapped back to physical
// units using opts.KnownS0 (see TrainOptions).
func Train(obs []Observation, opts TrainOptions) (TrainResult, error) {
	if len(obs) < 4 {
		return TrainResult{}, ErrTooFewObservations
	}
	servers := opts.Servers
	if servers < 1 {
		servers = 1
	}
	xs := make([]float64, len(obs))
	ys := make([]float64, len(obs))
	peak, maxN := 0.0, 0.0
	for i, o := range obs {
		if o.Concurrency <= 0 || o.Throughput <= 0 {
			return TrainResult{}, fmt.Errorf("model: observation %d (N=%v, X=%v) out of domain",
				i, o.Concurrency, o.Throughput)
		}
		xs[i] = o.Concurrency
		ys[i] = o.Throughput
		if o.Throughput > peak {
			peak = o.Throughput
		}
		if o.Concurrency > maxN {
			maxN = o.Concurrency
		}
	}

	curve := func(n float64, p []float64) float64 {
		den := p[0] + p[1]*(n-1) + p[2]*n*(n-1)
		if den <= 0 {
			return math.Inf(1) // rejected by the fitter
		}
		return n / den
	}
	// a ≈ 1/X(1); seed several splits of the denominator growth between the
	// linear and quadratic terms.
	a0 := 1 / peak
	guesses := [][]float64{
		{a0, a0 / 10, a0 / 1000},
		{a0, a0 / 2, a0 / 100},
		{a0 * 2, a0 / 100, a0 / 10000},
		{a0 / 2, a0 / 5, a0 / 200},
	}
	res, err := fit.MultiStart(fit.Problem{
		Model: curve,
		X:     xs,
		Y:     ys,
		Lower: []float64{1e-12, 0, 0},
		Upper: []float64{math.Inf(1), math.Inf(1), math.Inf(1)},
	}, guesses, fit.Options{MaxIterations: 500})
	if err != nil {
		return TrainResult{}, fmt.Errorf("model: train: %w", err)
	}

	a, b, c := res.Params[0], res.Params[1], res.Params[2]
	// Map back to physical units: pick γ from the S0 anchor (or γ = 1).
	gamma := 1.0
	if opts.KnownS0 > 0 {
		gamma = opts.KnownS0 / (a * float64(servers))
	}
	params := Params{
		S0:    a * gamma * float64(servers),
		Alpha: b * gamma * float64(servers),
		Beta:  c * gamma * float64(servers),
		Gamma: gamma,
	}
	out := TrainResult{
		Params:     params,
		RSquared:   res.RSquared,
		Iterations: res.Iterations,
	}
	nb, ok := params.OptimalConcurrency()
	if !ok || nb > maxN {
		// An optimum beyond the observed concurrency range is an
		// extrapolation the data gives no evidence for; report it as absent
		// rather than recommending an unmeasured operating point.
		return out, ErrNoOptimum
	}
	out.OptimalN = int(math.Round(nb))
	if out.OptimalN < 1 {
		out.OptimalN = 1
	}
	out.MaxThroughput = params.Throughput(nb, servers)
	return out, nil
}

// Demand is the per-tier service demand V_m·S_m of the Forced Flow Law
// (Equations 1–3), used to identify the bottleneck tier.
type Demand struct {
	Tier        string  `json:"tier"`
	VisitRatio  float64 `json:"visitRatio"`
	ServiceTime float64 `json:"serviceTime"` // per-visit, seconds
	Servers     int     `json:"servers"`
}

// PerServerDemand returns V·S/K: the demand an HTTP request places on each
// server of the tier.
func (d Demand) PerServerDemand() float64 {
	k := d.Servers
	if k < 1 {
		k = 1
	}
	return d.VisitRatio * d.ServiceTime / float64(k)
}

// Bottleneck returns the index of the tier with the largest per-server
// demand — the tier whose saturation caps system throughput (Equation 3) —
// and that demand. It returns -1 for an empty slice.
func Bottleneck(demands []Demand) (idx int, demand float64) {
	idx = -1
	for i, d := range demands {
		if pd := d.PerServerDemand(); pd > demand || idx == -1 {
			idx, demand = i, pd
		}
	}
	return idx, demand
}

// MaxSystemThroughput returns 1/max(V·S/K) (Equations 2–4 with U_b = 1 and
// γ = 1): the throughput at which the bottleneck tier saturates.
func MaxSystemThroughput(demands []Demand) float64 {
	idx, demand := Bottleneck(demands)
	if idx < 0 || demand <= 0 {
		return 0
	}
	return 1 / demand
}
