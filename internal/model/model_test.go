package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dcm/internal/rng"
)

func TestTableIOptima(t *testing.T) {
	t.Parallel()
	tomcat, mysql := TableI()
	// §V-A: N_b = 20 for Tomcat, 36 for MySQL.
	if nb, ok := tomcat.OptimalConcurrencyInt(); !ok || nb != 20 {
		t.Fatalf("tomcat N_b = %d (%v), want 20", nb, ok)
	}
	if nb, ok := mysql.OptimalConcurrencyInt(); !ok || nb != 36 {
		t.Fatalf("mysql N_b = %d (%v), want 36", nb, ok)
	}
}

func TestTableIMaxThroughput(t *testing.T) {
	t.Parallel()
	tomcat, mysql := TableI()
	// Table I: X_max = 946 (Tomcat), 865 (MySQL). Allow rounding slack since
	// the table rounds N_b.
	if x := tomcat.MaxThroughput(1); math.Abs(x-946) > 15 {
		t.Fatalf("tomcat Xmax = %v, want ~946", x)
	}
	if x := mysql.MaxThroughput(1); math.Abs(x-865) > 15 {
		t.Fatalf("mysql Xmax = %v, want ~865", x)
	}
}

func TestServiceTimeEquation5(t *testing.T) {
	t.Parallel()
	p := Params{S0: 0.01, Alpha: 0.002, Beta: 0.0001, Gamma: 1}
	// N=1 must reduce to the single-threaded case.
	if got := p.ServiceTime(1); got != 0.01 {
		t.Fatalf("S*(1) = %v, want S0", got)
	}
	// N=3: 0.01 + 0.002*2 + 0.0001*3*2 = 0.0146
	if got := p.ServiceTime(3); math.Abs(got-0.0146) > 1e-12 {
		t.Fatalf("S*(3) = %v", got)
	}
	// Below 1 clamps to 1.
	if got := p.ServiceTime(0); got != 0.01 {
		t.Fatalf("S*(0) = %v, want S0", got)
	}
}

func TestEffectiveServiceTimeMinimumAtNb(t *testing.T) {
	t.Parallel()
	p := Params{S0: 0.0284, Alpha: 0.00987, Beta: 4.54e-5, Gamma: 1}
	nb, ok := p.OptimalConcurrency()
	if !ok {
		t.Fatal("no optimum")
	}
	sOpt := p.EffectiveServiceTime(nb)
	for _, n := range []float64{nb / 2, nb * 0.9, nb * 1.1, nb * 2} {
		if p.EffectiveServiceTime(n) < sOpt-1e-15 {
			t.Fatalf("S_b(%v) < S_b(N_b): optimum is not a minimum", n)
		}
	}
}

func TestThroughputScalesWithServers(t *testing.T) {
	t.Parallel()
	p := Params{S0: 0.01, Alpha: 0.001, Beta: 1e-5, Gamma: 2}
	x1 := p.Throughput(10, 1)
	x3 := p.Throughput(10, 3)
	if math.Abs(x3-3*x1) > 1e-9 {
		t.Fatalf("throughput not linear in K: %v vs %v", x1, x3)
	}
	if p.Throughput(10, 0) != 0 || p.Throughput(0.5, 1) != 0 {
		t.Fatal("out-of-domain throughput not zero")
	}
}

func TestOptimalConcurrencyDegenerate(t *testing.T) {
	t.Parallel()
	if _, ok := (Params{S0: 0.01, Alpha: 0, Beta: 0, Gamma: 1}).OptimalConcurrency(); ok {
		t.Fatal("beta=0 reported an optimum")
	}
	if _, ok := (Params{S0: 0.01, Alpha: 0.02, Beta: 1e-5, Gamma: 1}).OptimalConcurrency(); ok {
		t.Fatal("alpha>=S0 reported an optimum")
	}
	if x := (Params{S0: 0.01, Alpha: 0, Beta: 0, Gamma: 1}).MaxThroughput(1); x != 0 {
		t.Fatalf("degenerate MaxThroughput = %v", x)
	}
}

func TestOptimalConcurrencyIntFloor(t *testing.T) {
	t.Parallel()
	// Tiny optimum rounds up to at least 1.
	p := Params{S0: 0.01, Alpha: 0.0099, Beta: 1, Gamma: 1}
	nb, ok := p.OptimalConcurrencyInt()
	if !ok || nb != 1 {
		t.Fatalf("nb = %d, %v", nb, ok)
	}
}

func TestValidate(t *testing.T) {
	t.Parallel()
	good := Params{S0: 0.01, Alpha: 0.001, Beta: 1e-6, Gamma: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{S0: 0, Alpha: 0.001, Beta: 1e-6, Gamma: 1},
		{S0: 0.01, Alpha: -1, Beta: 1e-6, Gamma: 1},
		{S0: 0.01, Alpha: 0.001, Beta: -1, Gamma: 1},
		{S0: 0.01, Alpha: 0.001, Beta: 1e-6, Gamma: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

// synthObservations samples Equation 7 with optional multiplicative noise.
func synthObservations(p Params, servers int, noise float64, seed uint64) []Observation {
	r := rng.New(seed)
	var obs []Observation
	for _, n := range []float64{
		1, 2, 3, 5, 8, 12, 16, 20, 25, 30, 40, 50, 60, 80, 100,
		130, 160, 200, 250, 300, 400, 500, 600,
	} {
		x := p.Throughput(n, servers)
		if noise > 0 {
			x *= 1 + r.Normal(0, noise)
		}
		obs = append(obs, Observation{Concurrency: n, Throughput: x})
	}
	return obs
}

func TestTrainRecoversTomcatModel(t *testing.T) {
	t.Parallel()
	tomcat, _ := TableI()
	obs := synthObservations(tomcat, 1, 0, 1)
	res, err := Train(obs, TrainOptions{KnownS0: tomcat.S0, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalN != 20 {
		t.Fatalf("recovered N_b = %d, want 20", res.OptimalN)
	}
	if res.RSquared < 0.9999 {
		t.Fatalf("r2 = %v", res.RSquared)
	}
	if math.Abs(res.Params.Alpha-tomcat.Alpha)/tomcat.Alpha > 0.01 {
		t.Fatalf("alpha = %v, want %v", res.Params.Alpha, tomcat.Alpha)
	}
	if math.Abs(res.Params.Gamma-tomcat.Gamma)/tomcat.Gamma > 0.01 {
		t.Fatalf("gamma = %v, want %v", res.Params.Gamma, tomcat.Gamma)
	}
	if math.Abs(res.MaxThroughput-946) > 15 {
		t.Fatalf("Xmax = %v, want ~946", res.MaxThroughput)
	}
}

func TestTrainRecoversMySQLModelWithNoise(t *testing.T) {
	t.Parallel()
	_, mysql := TableI()
	obs := synthObservations(mysql, 1, 0.015, 7)
	res, err := Train(obs, TrainOptions{KnownS0: mysql.S0, Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalN < 31 || res.OptimalN > 41 {
		t.Fatalf("recovered N_b = %d, want 36±5", res.OptimalN)
	}
	if res.RSquared < 0.95 {
		t.Fatalf("r2 = %v, want >= 0.95 (Table I reports 0.97)", res.RSquared)
	}
}

func TestTrainNormalizedGauge(t *testing.T) {
	t.Parallel()
	tomcat, _ := TableI()
	obs := synthObservations(tomcat, 1, 0, 1)
	res, err := Train(obs, TrainOptions{}) // no S0 anchor: gamma = 1 gauge
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Params.Gamma-1) > 1e-9 {
		t.Fatalf("gamma = %v, want 1 in normalized gauge", res.Params.Gamma)
	}
	// N_b is gauge-invariant and must still be recovered.
	if res.OptimalN != 20 {
		t.Fatalf("N_b = %d, want 20", res.OptimalN)
	}
}

func TestTrainMultiServer(t *testing.T) {
	t.Parallel()
	_, mysql := TableI()
	obs := synthObservations(mysql, 2, 0, 3)
	res, err := Train(obs, TrainOptions{KnownS0: mysql.S0, Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalN < 34 || res.OptimalN > 38 {
		t.Fatalf("N_b = %d, want ~36", res.OptimalN)
	}
	if math.Abs(res.MaxThroughput-2*865) > 30 {
		t.Fatalf("Xmax = %v, want ~1730 with K=2", res.MaxThroughput)
	}
}

func TestTrainErrors(t *testing.T) {
	t.Parallel()
	if _, err := Train(nil, TrainOptions{}); !errors.Is(err, ErrTooFewObservations) {
		t.Fatalf("err = %v", err)
	}
	bad := []Observation{{1, 10}, {2, 20}, {0.5, 5}, {4, 30}}
	if _, err := Train(bad, TrainOptions{}); err == nil {
		t.Fatal("out-of-domain concurrency accepted")
	}
	neg := []Observation{{1, 10}, {2, -1}, {3, 5}, {4, 30}}
	if _, err := Train(neg, TrainOptions{}); err == nil {
		t.Fatal("non-positive throughput accepted")
	}
}

func TestTrainMonotoneCurveNoOptimum(t *testing.T) {
	t.Parallel()
	// A curve with no contention at all: X grows monotonically, so the
	// fitted beta collapses to ~0 and Train must report ErrNoOptimum.
	p := Params{S0: 0.01, Alpha: 0, Beta: 0, Gamma: 1}
	obs := synthObservations(p, 1, 0, 1)
	_, err := Train(obs, TrainOptions{})
	if !errors.Is(err, ErrNoOptimum) {
		t.Fatalf("err = %v, want ErrNoOptimum", err)
	}
}

// TestTrainGaugeInvarianceProperty: scaling all four parameters by the same
// factor leaves the throughput curve, and hence the recovered N_b, fixed.
func TestTrainGaugeInvarianceProperty(t *testing.T) {
	t.Parallel()
	prop := func(scaleRaw uint8) bool {
		scale := 0.5 + float64(scaleRaw)/64.0
		tomcat, _ := TableI()
		scaled := Params{
			S0:    tomcat.S0 * scale,
			Alpha: tomcat.Alpha * scale,
			Beta:  tomcat.Beta * scale,
			Gamma: tomcat.Gamma * scale,
		}
		for _, n := range []float64{1, 10, 20, 50} {
			if math.Abs(scaled.Throughput(n, 1)-tomcat.Throughput(n, 1)) > 1e-6 {
				return false
			}
		}
		nbA, _ := scaled.OptimalConcurrency()
		nbB, _ := tomcat.OptimalConcurrency()
		return math.Abs(nbA-nbB) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDemandBottleneck(t *testing.T) {
	t.Parallel()
	demands := []Demand{
		{Tier: "web", VisitRatio: 1, ServiceTime: 0.001, Servers: 1},
		{Tier: "app", VisitRatio: 1, ServiceTime: 0.0284, Servers: 1},
		{Tier: "db", VisitRatio: 2, ServiceTime: 0.00719, Servers: 1},
	}
	idx, d := Bottleneck(demands)
	if idx != 1 {
		t.Fatalf("bottleneck = %d (%v), want app", idx, d)
	}
	// Doubling the app tier shifts the bottleneck to the DB (the Fig. 2(b)
	// scenario).
	demands[1].Servers = 2
	idx, _ = Bottleneck(demands)
	if idx != 2 {
		t.Fatalf("bottleneck after scale-out = %d, want db", idx)
	}
}

func TestBottleneckEmpty(t *testing.T) {
	t.Parallel()
	if idx, _ := Bottleneck(nil); idx != -1 {
		t.Fatalf("idx = %d", idx)
	}
	if x := MaxSystemThroughput(nil); x != 0 {
		t.Fatalf("x = %v", x)
	}
}

func TestMaxSystemThroughput(t *testing.T) {
	t.Parallel()
	demands := []Demand{
		{Tier: "app", VisitRatio: 1, ServiceTime: 0.02, Servers: 1},
		{Tier: "db", VisitRatio: 2, ServiceTime: 0.005, Servers: 1},
	}
	// Bottleneck demand = 0.02 → X_max = 50.
	if x := MaxSystemThroughput(demands); math.Abs(x-50) > 1e-9 {
		t.Fatalf("x = %v, want 50", x)
	}
}

func TestPerServerDemandClampsServers(t *testing.T) {
	t.Parallel()
	d := Demand{VisitRatio: 2, ServiceTime: 0.01, Servers: 0}
	if got := d.PerServerDemand(); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("demand = %v", got)
	}
}

func TestPlanAllocation111(t *testing.T) {
	t.Parallel()
	tomcat, mysql := TableI()
	alloc, err := PlanAllocation(AllocationInput{
		Tomcat: tomcat, MySQL: mysql,
		WebServers: 1, AppServers: 1, DBServers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// §V-A: optimal 1/1/1 allocation is 1000/20/36 (paper validates 20 for
	// Tomcat and 36 for MySQL).
	if alloc.AppThreadsPerServer != 20 {
		t.Fatalf("app threads = %d, want 20", alloc.AppThreadsPerServer)
	}
	if alloc.DBConnsPerAppServer != 36 {
		t.Fatalf("db conns = %d, want 36", alloc.DBConnsPerAppServer)
	}
	if alloc.WebThreadsPerServer != 1000 {
		t.Fatalf("web threads = %d", alloc.WebThreadsPerServer)
	}
}

func TestPlanAllocation121SplitsConnPool(t *testing.T) {
	t.Parallel()
	tomcat, mysql := TableI()
	alloc, err := PlanAllocation(AllocationInput{
		Tomcat: tomcat, MySQL: mysql,
		WebServers: 1, AppServers: 2, DBServers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 4(b): with two Tomcats, each gets half of 36 → 18.
	if alloc.DBConnsPerAppServer != 18 {
		t.Fatalf("db conns = %d, want 18", alloc.DBConnsPerAppServer)
	}
}

func TestPlanAllocationScalesWithDBServers(t *testing.T) {
	t.Parallel()
	tomcat, mysql := TableI()
	alloc, err := PlanAllocation(AllocationInput{
		Tomcat: tomcat, MySQL: mysql,
		WebServers: 1, AppServers: 2, DBServers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Total MySQL concurrency should be 36 per DB server: 72/2 Tomcats = 36.
	if alloc.DBConnsPerAppServer != 36 {
		t.Fatalf("db conns = %d, want 36", alloc.DBConnsPerAppServer)
	}
}

func TestPlanAllocationHeadroom(t *testing.T) {
	t.Parallel()
	tomcat, mysql := TableI()
	alloc, err := PlanAllocation(AllocationInput{
		Tomcat: tomcat, MySQL: mysql,
		WebServers: 1, AppServers: 1, DBServers: 1,
		Headroom: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.AppThreadsPerServer != 30 {
		t.Fatalf("app threads with headroom = %d, want 30", alloc.AppThreadsPerServer)
	}
}

func TestPlanAllocationErrors(t *testing.T) {
	t.Parallel()
	tomcat, mysql := TableI()
	if _, err := PlanAllocation(AllocationInput{Tomcat: tomcat, MySQL: mysql}); err == nil {
		t.Fatal("zero topology accepted")
	}
	flat := Params{S0: 0.01, Alpha: 0, Beta: 0, Gamma: 1}
	_, err := PlanAllocation(AllocationInput{
		Tomcat: flat, MySQL: mysql,
		WebServers: 1, AppServers: 1, DBServers: 1,
	})
	if !errors.Is(err, ErrNoOptimum) {
		t.Fatalf("err = %v, want ErrNoOptimum", err)
	}
}

func TestAllocationString(t *testing.T) {
	t.Parallel()
	a := Allocation{WebThreadsPerServer: 1000, AppThreadsPerServer: 20, DBConnsPerAppServer: 36}
	if got := a.String(); got != "1000/20/36" {
		t.Fatalf("String = %q", got)
	}
}

func TestPlanAllocationNeverZeroPools(t *testing.T) {
	t.Parallel()
	prop := func(appRaw, dbRaw uint8) bool {
		app := int(appRaw%20) + 1
		db := int(dbRaw%20) + 1
		tomcat, mysql := TableI()
		alloc, err := PlanAllocation(AllocationInput{
			Tomcat: tomcat, MySQL: mysql,
			WebServers: 1, AppServers: app, DBServers: db,
		})
		if err != nil {
			return false
		}
		return alloc.AppThreadsPerServer >= 1 && alloc.DBConnsPerAppServer >= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
