// Package bus implements the intermediate storage server of the DCM
// architecture (§IV, Fig. 3). The paper uses Kafka to decouple the
// monitoring agents (producers) from the optimization controller
// (consumer), because the two sides operate at different rates; this
// package provides the same contract in-process: named topics backed by
// append-only logs, offset-based consumption, and independent consumer
// positions.
//
// The bus is safe for concurrent use. Inside the deterministic simulation
// it is driven from a single goroutine, but the tests also exercise it
// under real concurrency so it can back a live deployment of the
// controller.
package bus

import (
	"errors"
	"fmt"
	"sync"
)

// Message is one record in a topic log.
type Message struct {
	// Topic the message was published to.
	Topic string
	// Offset is the message's position in the topic log, starting at 0.
	Offset int64
	// Key optionally identifies the producer (e.g. the VM name).
	Key string
	// Value is the payload. The bus does not interpret it.
	Value any
}

// Errors returned by the bus.
var (
	ErrClosed       = errors.New("bus: closed")
	ErrUnknownTopic = errors.New("bus: unknown topic")
)

// Bus is an in-memory, multi-topic, append-only message log.
// The zero value is ready to use.
type Bus struct {
	mu     sync.Mutex
	topics map[string]*topicLog
	closed bool
}

type topicLog struct {
	messages []Message
	// head indexes the first retained message within messages; dropping is
	// done by advancing head, with occasional amortized compaction.
	head int
	// retention bounds the retained length; 0 keeps everything.
	retention int
	// dropped counts messages discarded by retention, i.e. the offset of
	// the first retained message.
	dropped int64
}

// retained returns the live slice of the log.
func (t *topicLog) retained() []Message { return t.messages[t.head:] }

// New returns an empty bus.
func New() *Bus {
	return &Bus{topics: make(map[string]*topicLog)}
}

// CreateTopic declares a topic with a retention limit of retain messages
// (0 = unlimited). Creating an existing topic only tightens or loosens its
// retention. Publishing to an undeclared topic creates it implicitly with
// unlimited retention.
func (b *Bus) CreateTopic(topic string, retain int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	t := b.topic(topic)
	if retain < 0 {
		retain = 0
	}
	t.retention = retain
	t.enforceRetention()
	return nil
}

// topic returns the named topic log, creating it if needed.
// The caller must hold b.mu.
func (b *Bus) topic(name string) *topicLog {
	if b.topics == nil {
		b.topics = make(map[string]*topicLog)
	}
	t, ok := b.topics[name]
	if !ok {
		t = &topicLog{}
		b.topics[name] = t
	}
	return t
}

func (t *topicLog) enforceRetention() {
	if t.retention <= 0 {
		return
	}
	live := len(t.messages) - t.head
	if live <= t.retention {
		return
	}
	drop := live - t.retention
	t.head += drop
	t.dropped += int64(drop)
	// Amortized compaction releases the array's dead head for garbage
	// collection without copying on every publish.
	if t.head > 1024 && t.head > len(t.messages)/2 {
		kept := make([]Message, len(t.messages)-t.head)
		copy(kept, t.messages[t.head:])
		t.messages = kept
		t.head = 0
	}
}

// Publish appends a message to topic and returns its offset.
func (b *Bus) Publish(topic, key string, value any) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	t := b.topic(topic)
	offset := t.dropped + int64(len(t.messages)-t.head)
	t.messages = append(t.messages, Message{
		Topic:  topic,
		Offset: offset,
		Key:    key,
		Value:  value,
	})
	t.enforceRetention()
	return offset, nil
}

// Fetch returns up to limit messages from topic starting at offset
// (limit <= 0 means no limit). Offsets below the retention horizon are
// advanced to the first retained message, mirroring Kafka's
// auto.offset.reset=earliest behaviour.
func (b *Bus) Fetch(topic string, offset int64, limit int) ([]Message, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[topic]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, topic)
	}
	if offset < t.dropped {
		offset = t.dropped
	}
	live := t.retained()
	start := int(offset - t.dropped)
	if start >= len(live) {
		return nil, nil
	}
	end := len(live)
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	out := make([]Message, end-start)
	copy(out, live[start:end])
	return out, nil
}

// EndOffset returns the offset one past the last message in topic
// (0 for an unknown or empty topic).
func (b *Bus) EndOffset(topic string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topic]
	if !ok {
		return 0
	}
	return t.dropped + int64(len(t.messages)-t.head)
}

// Topics returns the names of all topics, in unspecified order.
func (b *Bus) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	return out
}

// Close shuts the bus down; subsequent operations return ErrClosed.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.topics = nil
}

// Consumer reads a topic sequentially, tracking its own offset — the
// analogue of a Kafka consumer-group member for one topic.
type Consumer struct {
	bus    *Bus
	topic  string
	offset int64
}

// NewConsumer returns a consumer positioned at the given offset of topic.
// Use offset 0 to read from the beginning, or Bus.EndOffset to tail.
func (b *Bus) NewConsumer(topic string, offset int64) *Consumer {
	if offset < 0 {
		offset = 0
	}
	return &Consumer{bus: b, topic: topic, offset: offset}
}

// Poll returns up to limit new messages (limit <= 0 for all available) and
// advances the consumer offset past them. A consumer on an as-yet-unknown
// topic simply reads nothing.
func (c *Consumer) Poll(limit int) ([]Message, error) {
	msgs, err := c.bus.Fetch(c.topic, c.offset, limit)
	if err != nil {
		if errors.Is(err, ErrUnknownTopic) {
			return nil, nil
		}
		return nil, err
	}
	if len(msgs) > 0 {
		c.offset = msgs[len(msgs)-1].Offset + 1
	}
	return msgs, nil
}

// Offset returns the consumer's next-read position.
func (c *Consumer) Offset() int64 { return c.offset }

// SeekTo repositions the consumer.
func (c *Consumer) SeekTo(offset int64) {
	if offset < 0 {
		offset = 0
	}
	c.offset = offset
}
