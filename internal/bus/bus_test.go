package bus

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestPublishFetch(t *testing.T) {
	t.Parallel()
	b := New()
	for i := 0; i < 5; i++ {
		off, err := b.Publish("metrics", "vm1", i)
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
	msgs, err := b.Fetch("metrics", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d messages, want 3", len(msgs))
	}
	if msgs[0].Offset != 2 || msgs[0].Value != 2 {
		t.Fatalf("first = %+v", msgs[0])
	}
	if msgs[0].Topic != "metrics" || msgs[0].Key != "vm1" {
		t.Fatalf("metadata = %+v", msgs[0])
	}
}

func TestFetchLimit(t *testing.T) {
	t.Parallel()
	b := New()
	for i := 0; i < 10; i++ {
		if _, err := b.Publish("t", "", i); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := b.Fetch("t", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 {
		t.Fatalf("limit ignored: %d", len(msgs))
	}
}

func TestFetchUnknownTopic(t *testing.T) {
	t.Parallel()
	b := New()
	if _, err := b.Fetch("nope", 0, 0); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchPastEnd(t *testing.T) {
	t.Parallel()
	b := New()
	if _, err := b.Publish("t", "", 1); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Fetch("t", 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("got %d messages past end", len(msgs))
	}
}

func TestRetention(t *testing.T) {
	t.Parallel()
	b := New()
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := b.Publish("t", "", i); err != nil {
			t.Fatal(err)
		}
	}
	// Only offsets 7, 8, 9 retained; a fetch from 0 resets to earliest.
	msgs, err := b.Fetch("t", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || msgs[0].Offset != 7 {
		t.Fatalf("retained = %+v", msgs)
	}
	if got := b.EndOffset("t"); got != 10 {
		t.Fatalf("EndOffset = %d, want 10", got)
	}
}

func TestCreateTopicTightensRetention(t *testing.T) {
	t.Parallel()
	b := New()
	for i := 0; i < 10; i++ {
		if _, err := b.Publish("t", "", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Fetch("t", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Offset != 8 {
		t.Fatalf("retained after tighten = %+v", msgs)
	}
}

func TestEndOffsetUnknown(t *testing.T) {
	t.Parallel()
	if got := New().EndOffset("none"); got != 0 {
		t.Fatalf("EndOffset = %d", got)
	}
}

func TestTopics(t *testing.T) {
	t.Parallel()
	b := New()
	if _, err := b.Publish("a", "", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("b", 0); err != nil {
		t.Fatal(err)
	}
	names := b.Topics()
	if len(names) != 2 {
		t.Fatalf("Topics = %v", names)
	}
}

func TestClose(t *testing.T) {
	t.Parallel()
	b := New()
	b.Close()
	if _, err := b.Publish("t", "", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Publish err = %v", err)
	}
	if _, err := b.Fetch("t", 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Fetch err = %v", err)
	}
	if err := b.CreateTopic("t", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("CreateTopic err = %v", err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	t.Parallel()
	var b Bus
	if _, err := b.Publish("t", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestConsumerPoll(t *testing.T) {
	t.Parallel()
	b := New()
	c := b.NewConsumer("m", 0)
	// Unknown topic: nothing, no error.
	msgs, err := c.Poll(0)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("poll empty: %v, %v", msgs, err)
	}
	for i := 0; i < 5; i++ {
		if _, err := b.Publish("m", "", i); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err = c.Poll(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 || msgs[2].Offset != 2 {
		t.Fatalf("first poll = %+v", msgs)
	}
	msgs, err = c.Poll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Offset != 3 {
		t.Fatalf("second poll = %+v", msgs)
	}
	if c.Offset() != 5 {
		t.Fatalf("offset = %d", c.Offset())
	}
}

func TestConsumerSeekTo(t *testing.T) {
	t.Parallel()
	b := New()
	for i := 0; i < 5; i++ {
		if _, err := b.Publish("m", "", i); err != nil {
			t.Fatal(err)
		}
	}
	c := b.NewConsumer("m", b.EndOffset("m"))
	msgs, err := c.Poll(0)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("tail consumer read old messages: %v", msgs)
	}
	c.SeekTo(1)
	msgs, err = c.Poll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 {
		t.Fatalf("after seek: %d messages", len(msgs))
	}
	c.SeekTo(-5)
	if c.Offset() != 0 {
		t.Fatalf("negative seek not clamped: %d", c.Offset())
	}
}

func TestConsumerSurvivesRetention(t *testing.T) {
	t.Parallel()
	b := New()
	if err := b.CreateTopic("m", 2); err != nil {
		t.Fatal(err)
	}
	c := b.NewConsumer("m", 0)
	for i := 0; i < 10; i++ {
		if _, err := b.Publish("m", "", i); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := c.Poll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Offset != 8 {
		t.Fatalf("consumer did not reset to earliest: %+v", msgs)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	t.Parallel()
	b := New()
	const (
		producers = 8
		perProd   = 200
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if _, err := b.Publish("t", "", i); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := b.EndOffset("t"); got != producers*perProd {
		t.Fatalf("EndOffset = %d, want %d", got, producers*perProd)
	}
	msgs, err := b.Fetch("t", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range msgs {
		if m.Offset != int64(i) {
			t.Fatalf("offset %d at position %d", m.Offset, i)
		}
	}
}

func TestConcurrentConsumerAndProducer(t *testing.T) {
	t.Parallel()
	b := New()
	const total = 1000
	done := make(chan int, 1)
	go func() {
		c := b.NewConsumer("t", 0)
		seen := 0
		for seen < total {
			msgs, err := c.Poll(0)
			if err != nil {
				t.Error(err)
				break
			}
			seen += len(msgs)
		}
		done <- seen
	}()
	for i := 0; i < total; i++ {
		if _, err := b.Publish("t", "", i); err != nil {
			t.Fatal(err)
		}
	}
	if seen := <-done; seen != total {
		t.Fatalf("consumer saw %d of %d", seen, total)
	}
}

// TestOffsetsContiguousProperty: published offsets are dense and fetchable
// in order regardless of retention configuration.
func TestOffsetsContiguousProperty(t *testing.T) {
	t.Parallel()
	prop := func(countRaw, retainRaw uint8) bool {
		count := int(countRaw%64) + 1
		retain := int(retainRaw % 16)
		b := New()
		if err := b.CreateTopic("t", retain); err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			off, err := b.Publish("t", "", i)
			if err != nil || off != int64(i) {
				return false
			}
		}
		msgs, err := b.Fetch("t", 0, 0)
		if err != nil {
			return false
		}
		for i := 1; i < len(msgs); i++ {
			if msgs[i].Offset != msgs[i-1].Offset+1 {
				return false
			}
		}
		if retain > 0 && len(msgs) > retain {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
