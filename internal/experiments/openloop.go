package experiments

import (
	"fmt"
	"strings"
	"time"

	"dcm/internal/degrade"
	"dcm/internal/invariant"
	"dcm/internal/metrics"
	"dcm/internal/ntier"
	"dcm/internal/policy"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
	"dcm/internal/workload"
)

// The open-loop experiments drive the n-tier application with the workload
// library's non-homogeneous Poisson generator instead of a closed user
// population. Closed loops self-throttle — every queued request is a user
// not issuing the next one — so they can never push the system far past
// saturation. Open-loop arrivals keep coming regardless of backlog, which
// is how real internet traffic behaves and what the admission-control
// stack (bounded queues + CoDel + criticality) actually exists for. The
// request stream is a two-class mix: a premium class (priority 1, never
// CoDel-shed) and a basic class, so overload shows up as *selective*
// degradation — basic absorbs the shedding while premium goodput holds.

// OpenLoopConfig parameterizes the open-loop experiments. The zero value
// selects calibrated defaults (see defaults).
type OpenLoopConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Rate is the base arrival rate in requests per second (default 300,
	// around the default two-Tomcat deployment's knee).
	Rate float64
	// PeakRate is the flash crowd's plateau (default 6x Rate; flashcrowd
	// experiment only).
	PeakRate float64
	// Horizon bounds the run (default 120 s constant, 240 s flashcrowd).
	Horizon time.Duration
	// Timeout is the per-request deadline and the basic class's SLA
	// (default 1 s). The premium class's SLO is half of it.
	Timeout time.Duration
	// AppServers sizes the Tomcat tier (default 2).
	AppServers int
	// PremiumWeight is the premium class's share of arrivals (default 0.2).
	PremiumWeight float64
	// Invariants attaches the runtime invariant checker (including the
	// per-class conservation laws) and sweeps once at the end.
	Invariants bool
	// Degrade attaches the self-healing overload layer: on detected
	// collapse the brownout sheds best-effort arrivals at the front door
	// (premium stays exempt) and lowers admission caps, restoring through
	// hysteresis. Off (the default) leaves the run byte-identical.
	Degrade bool
	// DegradeRules overrides the degrade policy knobs (nil selects
	// policy.Default().Degrade).
	DegradeRules *policy.DegradeRules
}

func (c *OpenLoopConfig) defaults(flash bool) {
	if c.Rate <= 0 {
		c.Rate = 300
	}
	if c.PeakRate <= c.Rate {
		c.PeakRate = 6 * c.Rate
	}
	if c.Horizon <= 0 {
		if flash {
			c.Horizon = 240 * time.Second
		} else {
			c.Horizon = 120 * time.Second
		}
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.AppServers <= 0 {
		c.AppServers = 2
	}
	if c.PremiumWeight <= 0 || c.PremiumWeight >= 1 {
		c.PremiumWeight = 0.2
	}
}

// spec renders the config as a declarative WorkloadSpec — the experiment
// goes through the same strict spec path a workload file would.
func (c OpenLoopConfig) spec(flash bool) workload.WorkloadSpec {
	arr := &workload.RateSpec{Curve: workload.CurveConstant, Rate: c.Rate}
	name := "openloop"
	if flash {
		name = "flashcrowd"
		arr = &workload.RateSpec{
			Curve:       workload.CurveFlashCrowd,
			Rate:        c.Rate,
			PeakRate:    c.PeakRate,
			AtSeconds:   (c.Horizon / 4).Seconds(),
			RampSeconds: 15,
			HoldSeconds: (c.Horizon / 4).Seconds(),
		}
	}
	return workload.WorkloadSpec{
		Name:     name,
		Kind:     workload.KindOpen,
		Arrivals: arr,
		Classes: []workload.ClassSpec{
			{Name: "premium", Weight: c.PremiumWeight, Priority: 1,
				SLOSeconds: (c.Timeout / 2).Seconds()},
			{Name: "basic", Weight: 1 - c.PremiumWeight},
		},
	}
}

// OpenLoopResult reports one open-loop run.
type OpenLoopResult struct {
	Name     string        `json:"name"`
	BaseRate float64       `json:"baseRate"`
	PeakRate float64       `json:"peakRate,omitempty"`
	Horizon  time.Duration `json:"horizon"`
	// Scheduled counts accepted (injected) arrivals; Thinned counts
	// candidate arrivals the NHPP thinning rejected.
	Scheduled uint64 `json:"scheduled"`
	Thinned   uint64 `json:"thinned"`
	// Goodput is completions within each class's SLO.
	Goodput      uint64                    `json:"goodput"`
	Completed    uint64                    `json:"completed"`
	Errors       uint64                    `json:"errors"`
	Dispositions metrics.DispositionCounts `json:"dispositions"`
	// Classes is the per-class breakdown in class order.
	Classes []ntier.ClassStat `json:"classes"`
	Events  uint64            `json:"events"`
	Wall    time.Duration     `json:"wall"`

	InvariantViolations []invariant.Violation `json:"invariantViolations,omitempty"`
	// Degrade is the self-healing supervisor's record (Degrade runs only).
	Degrade *degrade.Report `json:"degrade,omitempty"`
}

// RunOpenLoop runs the constant-rate open-loop experiment.
func RunOpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) {
	cfg.defaults(false)
	return runOpenLoop(cfg, false)
}

// RunFlashCrowd runs the flash-crowd (trapezoid spike) experiment.
func RunFlashCrowd(cfg OpenLoopConfig) (OpenLoopResult, error) {
	cfg.defaults(true)
	return runOpenLoop(cfg, true)
}

func runOpenLoop(cfg OpenLoopConfig, flash bool) (OpenLoopResult, error) {
	spec := cfg.spec(flash)
	if err := spec.Validate(); err != nil {
		return OpenLoopResult{}, fmt.Errorf("experiments: open loop spec: %w", err)
	}

	eng := sim.NewEngine()
	root := rng.New(cfg.Seed)

	res, err := resilience.Preset("full", cfg.Timeout)
	if err != nil {
		return OpenLoopResult{}, fmt.Errorf("experiments: open loop resilience: %w", err)
	}
	appCfg := ntier.DefaultConfig()
	appCfg.AppServers = cfg.AppServers
	appCfg.Resilience = *res
	appCfg.Classes = make([]ntier.RequestClass, len(spec.Classes))
	for i, c := range spec.Classes {
		appCfg.Classes[i] = ntier.RequestClass{
			Name:        c.Name,
			Priority:    c.Priority,
			SLO:         c.SLO(),
			AppDemand:   c.AppDemand,
			Queries:     c.Queries,
			QueryDemand: c.QueryDemand,
		}
	}
	app, err := ntier.New(eng, root.Split("app"), appCfg)
	if err != nil {
		return OpenLoopResult{}, fmt.Errorf("experiments: open loop app: %w", err)
	}
	var chk *invariant.Checker
	if cfg.Invariants {
		chk = invariant.New()
		app.SetInvariantChecker(chk)
		invariant.AttachEngine(chk, eng)
	}

	gen, err := spec.Build(eng, root.Split("wl"), app)
	if err != nil {
		return OpenLoopResult{}, fmt.Errorf("experiments: open loop workload: %w", err)
	}
	ol := gen.(*workload.OpenLoopGen)

	// The degrade supervisor rides on top of the open-loop run: no rng
	// draws, no effect until its detectors fire.
	var sup *degrade.Supervisor
	if cfg.Degrade {
		rules := policy.Default().Degrade
		if cfg.DegradeRules != nil {
			rules = *cfg.DegradeRules
		}
		if err := rules.Validate(); err != nil {
			return OpenLoopResult{}, fmt.Errorf("experiments: open loop degrade rules: %w", err)
		}
		sup, err = degrade.ForApp(eng, app, nil, nil, degrade.FromRules(rules))
		if err != nil {
			return OpenLoopResult{}, fmt.Errorf("experiments: open loop degrade: %w", err)
		}
		sup.CaptureTimeline(cfg.Horizon)
		sup.Start()
	}

	ol.Start()
	start := time.Now()
	if err := eng.Run(cfg.Horizon); err != nil {
		return OpenLoopResult{}, fmt.Errorf("experiments: open loop run: %w", err)
	}
	ol.Stop()

	out := OpenLoopResult{
		Name:         spec.Name,
		BaseRate:     cfg.Rate,
		Horizon:      cfg.Horizon,
		Scheduled:    ol.Scheduled(),
		Thinned:      ol.Thinned(),
		Goodput:      app.TotalGood(),
		Completed:    app.TotalCompletions(),
		Errors:       app.TotalErrors(),
		Dispositions: app.Dispositions(),
		Classes:      app.ClassStats(),
		Events:       eng.Processed(),
		Wall:         time.Since(start),
	}
	if flash {
		out.PeakRate = cfg.PeakRate
	}
	if sup != nil {
		sup.Stop()
		rep := sup.Report()
		rep.BrownoutSheds = app.BrownoutSheds()
		out.Degrade = &rep
	}
	if chk != nil {
		app.CheckInvariants()
		invariant.CheckEngine(chk, eng)
		out.InvariantViolations = chk.Violations()
	}
	return out, nil
}

// RenderOpenLoop renders the run summary plus the per-class section.
func RenderOpenLoop(r OpenLoopResult) string {
	var sb strings.Builder
	if r.PeakRate > 0 {
		fmt.Fprintf(&sb, "  arrivals   %s curve, %.0f -> %.0f req/s over %v\n",
			r.Name, r.BaseRate, r.PeakRate, r.Horizon)
	} else {
		fmt.Fprintf(&sb, "  arrivals   constant %.0f req/s over %v\n", r.BaseRate, r.Horizon)
	}
	fmt.Fprintf(&sb, "  scheduled  %d arrivals (%d candidates thinned)\n", r.Scheduled, r.Thinned)
	fmt.Fprintf(&sb, "  outcome    %d good / %d completed / %d errors\n",
		r.Goodput, r.Completed, r.Errors)
	d := r.Dispositions
	fmt.Fprintf(&sb, "  taxonomy   ok %d | timeout %d | rejected %d | shed %d | brk-open %d | errored %d\n",
		d.OK, d.TimedOut, d.Rejected, d.Shed, d.BreakerOpen, d.Errored)
	fmt.Fprintf(&sb, "  events     %d (wall %v)\n", r.Events, r.Wall.Round(time.Millisecond))
	if len(r.InvariantViolations) > 0 {
		fmt.Fprintf(&sb, "  INVARIANT VIOLATIONS: %d\n", len(r.InvariantViolations))
	}
	sb.WriteString("\n")
	sb.WriteString(RenderClassStats(r.Classes))
	return sb.String()
}

// RenderClassStats renders the per-class breakdown table. The shed column
// is the selective-degradation signal: a priority class must stay at zero
// while best-effort classes absorb the overload.
func RenderClassStats(classes []ntier.ClassStat) string {
	if len(classes) == 0 {
		return ""
	}
	tb := metrics.NewTable("class", "prio", "injected", "ok", "good", "good%",
		"timeout", "rejected", "shed", "errors", "meanRT")
	for _, c := range classes {
		goodPct := 0.0
		if c.Injected > 0 {
			goodPct = 100 * float64(c.Good) / float64(c.Injected)
		}
		tb.AddRow(c.Name,
			fmt.Sprintf("%d", c.Priority),
			fmt.Sprintf("%d", c.Injected),
			fmt.Sprintf("%d", c.Dispositions.OK),
			fmt.Sprintf("%d", c.Good),
			fmtF(goodPct, 1),
			fmt.Sprintf("%d", c.Dispositions.TimedOut),
			fmt.Sprintf("%d", c.Dispositions.Rejected),
			fmt.Sprintf("%d", c.Dispositions.Shed),
			fmt.Sprintf("%d", c.Errors),
			fmt.Sprintf("%.0fms", c.MeanRTms))
	}
	return tb.String()
}
