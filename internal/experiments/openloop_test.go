package experiments

import (
	"encoding/json"
	"testing"
	"time"
)

// shortOpenLoopCfg keeps the functional tests fast: a small deployment
// under a rate that saturates it.
func shortOpenLoopCfg() OpenLoopConfig {
	return OpenLoopConfig{
		Seed:       1234,
		Rate:       600,
		Horizon:    40 * time.Second,
		AppServers: 1,
		Invariants: true,
	}
}

// stripWall zeroes the only nondeterministic field so results can be
// compared byte-for-byte.
func stripWall(r OpenLoopResult) OpenLoopResult {
	r.Wall = 0
	return r
}

// TestOpenLoopDeterministic: the experiment is a pure function of its
// config — two runs must serialize identically (modulo wall clock).
func TestOpenLoopDeterministic(t *testing.T) {
	t.Parallel()
	a, err := RunOpenLoop(shortOpenLoopCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOpenLoop(shortOpenLoopCfg())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(stripWall(a))
	jb, _ := json.Marshal(stripWall(b))
	if string(ja) != string(jb) {
		t.Fatalf("runs diverged:\n%s\n%s", ja, jb)
	}
}

// TestOpenLoopSaturationAccounting checks the conservation story under
// overload: every scheduled arrival ends in exactly one disposition, the
// per-class split conserves, and the invariant sweep stays clean.
func TestOpenLoopSaturationAccounting(t *testing.T) {
	t.Parallel()
	cfg := shortOpenLoopCfg()
	cfg.Rate = 2500 // several times the one-server knee
	res, err := RunOpenLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantViolations) > 0 {
		t.Fatalf("invariant violations: %+v", res.InvariantViolations)
	}
	if res.Scheduled == 0 {
		t.Fatal("no arrivals")
	}
	// All traffic is classed, so class injected counts sum to scheduled.
	var classed, inFlight uint64
	for _, c := range res.Classes {
		classed += c.Injected
		inFlight += uint64(c.InFlight)
	}
	if classed != res.Scheduled {
		t.Fatalf("class injected sum %d != scheduled %d", classed, res.Scheduled)
	}
	if got := res.Dispositions.Total() + inFlight; got != res.Scheduled {
		t.Fatalf("dispositions %d + in-flight %d != scheduled %d",
			res.Dispositions.Total(), inFlight, res.Scheduled)
	}
	// The run must actually saturate — otherwise the test is vacuous.
	if res.Dispositions.Shed == 0 && res.Dispositions.Rejected == 0 &&
		res.Dispositions.TimedOut == 0 {
		t.Fatalf("no overload signal in %+v", res.Dispositions)
	}
}

// TestFlashCrowdSelectiveDegradation is the class contract end to end:
// through a 6x overload spike the priority class is never CoDel-shed,
// while the best-effort class absorbs the shedding.
func TestFlashCrowdSelectiveDegradation(t *testing.T) {
	t.Parallel()
	cfg := shortOpenLoopCfg()
	cfg.Rate = 150
	cfg.Horizon = 120 * time.Second
	res, err := RunFlashCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantViolations) > 0 {
		t.Fatalf("invariant violations: %+v", res.InvariantViolations)
	}
	if res.Thinned == 0 {
		t.Fatal("flash-crowd curve thinned nothing — not time-varying?")
	}
	if len(res.Classes) != 2 {
		t.Fatalf("classes = %+v", res.Classes)
	}
	p, b := res.Classes[0], res.Classes[1]
	if p.Name != "premium" || p.Priority != 1 {
		t.Fatalf("class order: %+v", res.Classes)
	}
	if p.Dispositions.Shed != 0 {
		t.Errorf("premium shed %d requests during the spike, want 0", p.Dispositions.Shed)
	}
	if b.Dispositions.Shed == 0 {
		t.Error("basic never shed — spike too small, test is vacuous")
	}
	if p.Injected == 0 || b.Injected < p.Injected {
		t.Errorf("weights look wrong: premium %d, basic %d", p.Injected, b.Injected)
	}
}

// TestRenderOpenLoop smoke-checks the report rendering.
func TestRenderOpenLoop(t *testing.T) {
	t.Parallel()
	res, err := RunOpenLoop(shortOpenLoopCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderOpenLoop(res)
	for _, want := range []string{"premium", "basic", "scheduled", "taxonomy"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
