package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"dcm/internal/chaos"
)

// TestResilienceDisabledIsByteIdentical pins the full marshalled
// ScenarioResult of two reference runs to the digests captured on main
// immediately before the resilience subsystem landed. The resilience
// code paths are threaded through the server, connection pool, tier graph
// and workload generator; with resilience disabled (the default), every
// run must stay byte-for-byte what it was before — same rng draw order,
// same event order, same JSON. If this test fails, a disabled-path draw
// or accounting change leaked into the baseline.
func TestResilienceDisabledIsByteIdentical(t *testing.T) {
	t.Parallel()
	sched, err := chaos.Builtin("kitchen-sink")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  ScenarioConfig
		want string
	}{
		{
			name: "chaos-dcm-1234",
			cfg:  ScenarioConfig{Seed: 1234, Kind: ControllerDCM, Chaos: &sched},
			want: "5aa04c68c34ddffe64803daa4df1afbb7a2269f6489957781c0ddfb667580baf",
		},
		{
			name: "plain-ec2-42",
			cfg:  ScenarioConfig{Seed: 42, Kind: ControllerEC2},
			want: "7fe679ec01da5f80567c5128dbe3c5d34bb9d4bea52f324eb6a69d97c8760dc9",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := RunScenario(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(data)
			if got := hex.EncodeToString(sum[:]); got != tc.want {
				t.Errorf("result digest = %s, want %s (resilience-disabled output changed)", got, tc.want)
			}
		})
	}
}
