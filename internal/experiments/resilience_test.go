package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"dcm/internal/chaos"
)

// TestResilienceDisabledIsByteIdentical pins the full marshalled
// ScenarioResult of two reference runs to the digests captured on main
// immediately before the resilience subsystem landed. The resilience
// code paths are threaded through the server, connection pool, tier graph
// and workload generator; with resilience disabled (the default), every
// run must stay byte-for-byte what it was before — same rng draw order,
// same event order, same JSON. If this test fails, a disabled-path draw
// or accounting change leaked into the baseline.
func TestResilienceDisabledIsByteIdentical(t *testing.T) {
	t.Parallel()
	sched, err := chaos.Builtin("kitchen-sink")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  ScenarioConfig
		want string
	}{
		{
			name: "chaos-dcm-1234",
			cfg:  ScenarioConfig{Seed: 1234, Kind: ControllerDCM, Chaos: &sched},
			want: "9ffeff8326e4705a547228b3d05242f918509f86775266b732fc9e3879f041cd",
		},
		{
			name: "plain-ec2-42",
			cfg:  ScenarioConfig{Seed: 42, Kind: ControllerEC2},
			want: "df0a119c06b4c70078439a12ecb4566fa93f7d3c9917604bca69898abee2e4c3",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := RunScenario(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(data)
			if got := hex.EncodeToString(sum[:]); got != tc.want {
				t.Errorf("result digest = %s, want %s (resilience-disabled output changed)", got, tc.want)
			}
		})
	}
}
