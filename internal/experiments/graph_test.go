package experiments

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dcm/internal/graph"
	"dcm/internal/invariant"
	"dcm/internal/ntier"
)

// TestRunGraphSmoke exercises the full graph experiment — fan-out,
// parallel join, async audit edge, chaos, per-node controllers — and
// requires a structurally clean run with real traffic on every node.
func TestRunGraphSmoke(t *testing.T) {
	t.Parallel()
	res, err := RunGraph(GraphConfig{
		Seed:        7,
		Rate:        80,
		Horizon:     40 * time.Second,
		Chaos:       true,
		Controllers: true,
		Invariants:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantViolations) > 0 {
		t.Fatalf("%d invariant violation(s):\n%s", len(res.InvariantViolations),
			invariant.Render(res.InvariantViolations))
	}
	if res.Completed == 0 || res.Goodput == 0 {
		t.Fatalf("no traffic completed: %+v", res)
	}
	if res.AsyncSpawned == 0 || res.AsyncDone.OK == 0 {
		t.Fatalf("async audit edge carried no traffic: spawned %d done %+v",
			res.AsyncSpawned, res.AsyncDone)
	}
	if len(res.ChaosLog) != 2 {
		t.Fatalf("chaos log %v, want a fail and an add", res.ChaosLog)
	}
	if len(res.ControllerTargets) != 2 {
		t.Fatalf("controller targets %v, want search and catalog steered", res.ControllerTargets)
	}
	for _, n := range res.Nodes {
		if n.Started == 0 {
			t.Errorf("node %s saw no visits", n.Name)
		}
	}
	out := RenderGraph(res)
	for _, want := range []string{"fanout5", "async", "chaos", "dcm", "gateway"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRunGraphDeterminism pins the experiment to its seed: two runs with
// the same config must agree exactly, and a different seed must diverge.
func TestRunGraphDeterminism(t *testing.T) {
	t.Parallel()
	cfg := GraphConfig{Seed: 11, Rate: 60, Horizon: 30 * time.Second, Invariants: true}
	a, err := RunGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Wall, b.Wall = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	cfg.Seed = 12
	c, err := RunGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Scheduled == a.Scheduled && c.Dispositions == a.Dispositions {
		t.Fatal("different seed produced an identical run")
	}
}

// TestRunGraphTopologyFiles loads every checked-in topology and runs a
// short invariant-checked scenario against it — the same sweep the CI
// topology-smoke job performs.
func TestRunGraphTopologyFiles(t *testing.T) {
	t.Parallel()
	paths, err := filepath.Glob("../../topologies/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("expected >= 4 checked-in topologies, found %v", paths)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			res, err := RunGraph(GraphConfig{
				Seed:       3,
				Topology:   path,
				Rate:       50,
				Horizon:    20 * time.Second,
				Invariants: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.InvariantViolations) > 0 {
				t.Fatalf("%d invariant violation(s):\n%s", len(res.InvariantViolations),
					invariant.Render(res.InvariantViolations))
			}
			if res.Completed == 0 {
				t.Fatalf("no traffic completed on %s", path)
			}
		})
	}
}

// TestChain3TopologyMatchesDefaultConfig pins topologies/chain3.json to
// the calibrated chain: the checked-in file must decode to exactly the
// spec internal/ntier assembles from DefaultConfig, so the file cannot
// drift from the code.
func TestChain3TopologyMatchesDefaultConfig(t *testing.T) {
	t.Parallel()
	disk, err := graph.LoadSpec("../../topologies/chain3.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ntier.DefaultConfig()
	want := graph.ChainSpec(
		cfg.WebModel, cfg.AppModel, cfg.DBModel,
		cfg.WebThreads, cfg.AppThreads, cfg.DBConnsPerApp, cfg.DBMaxConns,
		cfg.QueriesPerRequest,
		cfg.WebServers, cfg.AppServers, cfg.DBServers,
		cfg.DBThrashKnee, cfg.DBThrashCoef, cfg.DBThrashCap)
	if !reflect.DeepEqual(disk, want) {
		t.Fatalf("topologies/chain3.json = %+v\nwant the DefaultConfig chain %+v", disk, want)
	}
}

// TestGraphCacheTopology runs the cache3 topology and checks the LRU
// tier actually works: hits and misses both occur, and the hit ratio is
// in the neighborhood the LRU sizing implies (cacheSize/keySpace = 0.25
// of the key population resident, so a uniform reference stream hits
// about a quarter of the time once warm).
func TestGraphCacheTopology(t *testing.T) {
	t.Parallel()
	res, err := RunGraph(GraphConfig{
		Seed:       5,
		Topology:   "../../topologies/cache3.json",
		Rate:       100,
		Horizon:    60 * time.Second,
		Invariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InvariantViolations) > 0 {
		t.Fatalf("violations:\n%s", invariant.Render(res.InvariantViolations))
	}
	var hits, misses uint64
	for _, n := range res.Nodes {
		if n.Name == "memcache" {
			if n.Kind != graph.KindCache {
				t.Fatalf("memcache kind %q", n.Kind)
			}
			hits, misses = n.CacheHits, n.CacheMisses
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate cache behaviour: %d hits, %d misses", hits, misses)
	}
	ratio := float64(hits) / float64(hits+misses)
	if ratio < 0.10 || ratio > 0.45 {
		t.Fatalf("LRU hit ratio %.2f outside the plausible band for 4096/16384", ratio)
	}
}
