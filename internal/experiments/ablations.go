package experiments

import (
	"fmt"
	"time"

	"dcm/internal/controller"
	"dcm/internal/metrics"
	"dcm/internal/model"
	"dcm/internal/runner"
	"dcm/internal/workload"
)

// runKinds executes one scenario per controller kind concurrently (each
// run has its own engine and rng) and returns the results in kind order.
func runKinds(seed uint64, kinds []ControllerKind, label string) ([]*ScenarioResult, error) {
	return runner.Map(kinds, 0, func(_ int, kind ControllerKind) (*ScenarioResult, error) {
		res, err := RunScenario(ScenarioConfig{Seed: seed, Kind: kind})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s %s: %w", label, kind, err)
		}
		return res, nil
	})
}

// AblationSoftOnly (A1) isolates the two levels of DCM: the full
// controller, the hardware-only baseline, the APP-agent alone (soft
// resources re-optimized but the fleet frozen at 1/1/1), and a static
// do-nothing run — answering how much of Fig. 5's stability comes from
// soft-resource adaptation versus VM scaling.
func AblationSoftOnly(seed uint64) ([]*ScenarioResult, error) {
	return runKinds(seed, []ControllerKind{
		ControllerDCM,
		ControllerEC2,
		ControllerDCMSoftOnly,
		ControllerNone,
	}, "ablation soft-only")
}

// SensitivityRow reports one model-misestimation variant (A2).
type SensitivityRow struct {
	// Label identifies the perturbation.
	Label string `json:"label"`
	// PlannedN is the per-server Tomcat concurrency the perturbed model
	// recommends.
	PlannedN int `json:"plannedN"`
	// Summary is the resulting scenario summary.
	Summary ScenarioSummary `json:"summary"`
}

// AblationModelSensitivity (A2) runs DCM with deliberately misestimated
// Tomcat models — β off by 4x in each direction shifts the planned optimum
// to roughly half and double the true N_b — quantifying how much a wrong
// model costs.
func AblationModelSensitivity(seed uint64) ([]SensitivityRow, error) {
	tomcat, mysql := TrainedModels()
	variants := []struct {
		label string
		scale float64 // multiplier on beta
	}{
		{"beta x4 (under-provision threads)", 4},
		{"trained model", 1},
		{"beta /4 (over-provision threads)", 0.25},
	}
	return runner.Map(variants, 0, func(_ int, v struct {
		label string
		scale float64
	}) (SensitivityRow, error) {
		perturbed := tomcat
		perturbed.Beta *= v.scale
		plannedN, ok := perturbed.OptimalConcurrencyInt()
		if !ok {
			return SensitivityRow{}, fmt.Errorf("experiments: ablation sensitivity %q: no optimum", v.label)
		}
		res, err := RunScenario(ScenarioConfig{
			Seed:        seed,
			Kind:        ControllerDCM,
			TomcatModel: perturbed,
			MySQLModel:  mysql,
		})
		if err != nil {
			return SensitivityRow{}, fmt.Errorf("experiments: ablation sensitivity %q: %w", v.label, err)
		}
		return SensitivityRow{
			Label:    v.label,
			PlannedN: plannedN,
			Summary:  res.Summarize(),
		}, nil
	})
}

// PolicyRow reports one scaling-policy variant (A3/A4).
type PolicyRow struct {
	Label   string          `json:"label"`
	Summary ScenarioSummary `json:"summary"`
	// ScaleActions counts VM-level scaling decisions taken.
	ScaleActions int `json:"scaleActions"`
}

// AblationScalePolicy (A3) compares the paper's "quick start, slow turn
// off" (3 consecutive quiet periods before scale-in) against a symmetric
// trigger-happy policy (1 period), on the DCM controller.
func AblationScalePolicy(seed uint64) ([]PolicyRow, error) {
	variants := []struct {
		label       string
		consecutive int
	}{
		{"slow turn off (3 periods)", 3},
		{"symmetric (1 period)", 1},
	}
	return runner.Map(variants, 0, func(_ int, v struct {
		label       string
		consecutive int
	}) (PolicyRow, error) {
		policy := controller.DefaultPolicy()
		policy.LowerConsecutive = v.consecutive
		res, err := RunScenario(ScenarioConfig{
			Seed:   seed,
			Kind:   ControllerDCM,
			Policy: &policy,
		})
		if err != nil {
			return PolicyRow{}, fmt.Errorf("experiments: ablation policy %q: %w", v.label, err)
		}
		return PolicyRow{
			Label:        v.label,
			Summary:      res.Summarize(),
			ScaleActions: countScaleActions(res),
		}, nil
	})
}

// AblationControlPeriod (A4) sweeps the control period (5 s / 15 s / 30 s)
// for both controllers, probing the paper's choice of 15 s.
func AblationControlPeriod(seed uint64) ([]PolicyRow, error) {
	periods := []time.Duration{5 * time.Second, 15 * time.Second, 30 * time.Second}
	type cell struct {
		kind   ControllerKind
		period time.Duration
	}
	var cells []cell
	for _, kind := range []ControllerKind{ControllerDCM, ControllerEC2} {
		for _, period := range periods {
			cells = append(cells, cell{kind: kind, period: period})
		}
	}
	return runner.Map(cells, 0, func(_ int, c cell) (PolicyRow, error) {
		res, err := RunScenario(ScenarioConfig{
			Seed:          seed,
			Kind:          c.kind,
			ControlPeriod: c.period,
		})
		if err != nil {
			return PolicyRow{}, fmt.Errorf("experiments: ablation period %v %s: %w", c.period, c.kind, err)
		}
		return PolicyRow{
			Label:        fmt.Sprintf("%s @ %v", c.kind, c.period),
			Summary:      res.Summarize(),
			ScaleActions: countScaleActions(res),
		}, nil
	})
}

func countScaleActions(res *ScenarioResult) int {
	n := 0
	for _, rec := range res.Actions {
		if rec.Action.Type == controller.ActionScaleOut || rec.Action.Type == controller.ActionScaleIn {
			n++
		}
	}
	return n
}

// RenderSensitivity renders the A2 rows.
func RenderSensitivity(rows []SensitivityRow) string {
	tb := metrics.NewTable("variant", "planned N", "mean RT (s)", "max RT (s)", "spikes >1s", "completed")
	for _, r := range rows {
		tb.AddRow(r.Label, fmt.Sprintf("%d", r.PlannedN), fmtF(r.Summary.MeanRTSec, 3),
			fmtF(r.Summary.MaxRTSec, 3), fmt.Sprintf("%d", r.Summary.SpikeSeconds),
			fmt.Sprintf("%d", r.Summary.TotalCompleted))
	}
	return tb.String()
}

// RenderPolicyRows renders A3/A4 rows.
func RenderPolicyRows(rows []PolicyRow) string {
	tb := metrics.NewTable("variant", "mean RT (s)", "max RT (s)", "spikes >1s", "completed", "scale actions")
	for _, r := range rows {
		tb.AddRow(r.Label, fmtF(r.Summary.MeanRTSec, 3), fmtF(r.Summary.MaxRTSec, 3),
			fmt.Sprintf("%d", r.Summary.SpikeSeconds), fmt.Sprintf("%d", r.Summary.TotalCompleted),
			fmt.Sprintf("%d", r.ScaleActions))
	}
	return tb.String()
}

// AblationPredictive (A6) compares reactive and predictive (Holt
// forecast) scale-out for both controllers under the bursty trace,
// quantifying how much of the remaining transient the §VI extension
// removes.
func AblationPredictive(seed uint64) ([]*ScenarioResult, error) {
	return runKinds(seed, []ControllerKind{
		ControllerDCM,
		ControllerDCMPredictive,
		ControllerEC2,
		ControllerEC2Predictive,
	}, "ablation predictive")
}

// AblationBaselines (A7) compares DCM against the full baseline ladder:
// the paper's threshold policy, modern target tracking, and the predictive
// variant — all hardware-only. No matter how sophisticated the VM-level
// policy, the concurrency misallocation remains.
func AblationBaselines(seed uint64) ([]*ScenarioResult, error) {
	return runKinds(seed, []ControllerKind{
		ControllerDCM,
		ControllerEC2,
		ControllerTargetTracking,
		ControllerEC2Predictive,
	}, "ablation baselines")
}

// AblationOnlineTraining (A5) starts DCM from a deliberately wrong Tomcat
// model (β/16: planned N_b ≈ 80 instead of 20) and compares three
// variants: the wrong model held statically, the wrong model with §III-C's
// online re-estimation enabled, and the correctly trained static model.
// Online training should close most of the gap to the correct model.
func AblationOnlineTraining(seed uint64) ([]SensitivityRow, error) {
	tomcat, mysql := TrainedModels()
	wrong := tomcat
	wrong.Beta /= 16

	variants := []struct {
		label  string
		model  model.Params
		online bool
	}{
		{"wrong model, static", wrong, false},
		{"wrong model, online re-training", wrong, true},
		{"trained model, static", tomcat, false},
	}
	return runner.Map(variants, 0, func(_ int, v struct {
		label  string
		model  model.Params
		online bool
	}) (SensitivityRow, error) {
		plannedN, ok := v.model.OptimalConcurrencyInt()
		if !ok {
			return SensitivityRow{}, fmt.Errorf("experiments: ablation online %q: no optimum", v.label)
		}
		res, err := RunScenario(ScenarioConfig{
			Seed:           seed,
			Kind:           ControllerDCM,
			TomcatModel:    v.model,
			MySQLModel:     mysql,
			OnlineTraining: v.online,
		})
		if err != nil {
			return SensitivityRow{}, fmt.Errorf("experiments: ablation online %q: %w", v.label, err)
		}
		return SensitivityRow{
			Label:    v.label,
			PlannedN: plannedN,
			Summary:  res.Summarize(),
		}, nil
	})
}

// AblationBurstyWorkload (A8) swaps the trace-driven workload for the
// Markov-modulated burstiness injection of Mi et al. ([23]) — surges are
// abrupt and unpredictable rather than ramped — and compares both
// controllers.
func AblationBurstyWorkload(seed uint64) ([]*ScenarioResult, error) {
	bursty := &workload.BurstyConfig{
		Users:       2600,
		NormalThink: 12 * time.Second,
		SurgeThink:  2 * time.Second,
		NormalDwell: 60 * time.Second,
		SurgeDwell:  40 * time.Second,
	}
	return runner.Map([]ControllerKind{ControllerDCM, ControllerEC2}, 0,
		func(_ int, kind ControllerKind) (*ScenarioResult, error) {
			res, err := RunScenario(ScenarioConfig{
				Seed:    seed,
				Kind:    kind,
				Bursty:  bursty,
				Horizon: 600 * time.Second,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation bursty %s: %w", kind, err)
			}
			return res, nil
		})
}

// VerifyTrainedModels re-trains both tier models and checks the frozen
// TrainedModels constants still agree on the planning-relevant quantity
// N_b. It returns the freshly trained rows for reporting.
func VerifyTrainedModels(seed uint64, measure time.Duration) (tomcat, mysql Table1Row, err error) {
	tomcat, mysql, err = Table1(seed, measure)
	if err != nil {
		return tomcat, mysql, err
	}
	frozenT, frozenM := TrainedModels()
	ftN, _ := frozenT.OptimalConcurrencyInt()
	fmN, _ := frozenM.OptimalConcurrencyInt()
	if diff := ftN - tomcat.OptimalN; diff < -2 || diff > 2 {
		return tomcat, mysql, fmt.Errorf(
			"experiments: frozen tomcat N_b %d drifted from trained %d", ftN, tomcat.OptimalN)
	}
	if diff := fmN - mysql.OptimalN; diff < -2 || diff > 2 {
		return tomcat, mysql, fmt.Errorf(
			"experiments: frozen mysql N_b %d drifted from trained %d", fmN, mysql.OptimalN)
	}
	return tomcat, mysql, nil
}

// SeedSummary aggregates one controller's headline metrics across seeds.
type SeedSummary struct {
	Kind ControllerKind `json:"kind"`
	// MeanRT / Spikes / Completed are per-seed values.
	MeanRT    []float64 `json:"meanRT"`
	Spikes    []int     `json:"spikes"`
	Completed []uint64  `json:"completed"`
}

// MultiSeedComparison runs the Fig. 5 comparison across several seeds with
// service-time noise enabled, demonstrating that the headline result is a
// property of the system rather than of one deterministic run. Each seed
// gets its own synthetic trace realization (jitter) and noisy service
// times.
func MultiSeedComparison(seeds []uint64, noise float64) (dcmS, ec2S SeedSummary, err error) {
	if len(seeds) == 0 {
		return dcmS, ec2S, fmt.Errorf("experiments: no seeds")
	}
	dcmS.Kind, ec2S.Kind = ControllerDCM, ControllerEC2

	// Flatten the (seed × kind) grid into one batch — this is the heaviest
	// sweep in the repo, and every cell is an independent simulation. The
	// worker pool returns summaries in input order, so the per-seed slices
	// are assembled exactly as the serial nested loops built them.
	type cell struct {
		seed uint64
		kind ControllerKind
	}
	kinds := []ControllerKind{ControllerDCM, ControllerEC2}
	cells := make([]cell, 0, len(seeds)*len(kinds))
	for _, seed := range seeds {
		for _, kind := range kinds {
			cells = append(cells, cell{seed: seed, kind: kind})
		}
	}
	summaries, err := runner.Map(cells, 0, func(_ int, c cell) (ScenarioSummary, error) {
		res, err := RunScenario(ScenarioConfig{
			Seed:       c.seed,
			Kind:       c.kind,
			NoiseSigma: noise,
		})
		if err != nil {
			return ScenarioSummary{}, fmt.Errorf("experiments: multi-seed %d %s: %w", c.seed, c.kind, err)
		}
		return res.Summarize(), nil
	})
	if err != nil {
		return dcmS, ec2S, err
	}
	for i, c := range cells {
		s := summaries[i]
		agg := &dcmS
		if c.kind == ControllerEC2 {
			agg = &ec2S
		}
		agg.MeanRT = append(agg.MeanRT, s.MeanRTSec)
		agg.Spikes = append(agg.Spikes, s.SpikeSeconds)
		agg.Completed = append(agg.Completed, s.TotalCompleted)
	}
	return dcmS, ec2S, nil
}

// RenderMultiSeed renders the per-seed distributions.
func RenderMultiSeed(dcmS, ec2S SeedSummary, seeds []uint64) string {
	tb := metrics.NewTable("seed", "DCM meanRT(s)", "DCM spikes", "EC2 meanRT(s)", "EC2 spikes",
		"DCM completed", "EC2 completed")
	for i, seed := range seeds {
		tb.AddRow(fmt.Sprintf("%d", seed),
			fmtF(dcmS.MeanRT[i], 3), fmt.Sprintf("%d", dcmS.Spikes[i]),
			fmtF(ec2S.MeanRT[i], 3), fmt.Sprintf("%d", ec2S.Spikes[i]),
			fmt.Sprintf("%d", dcmS.Completed[i]), fmt.Sprintf("%d", ec2S.Completed[i]))
	}
	dcmRT := metrics.Summarize(dcmS.MeanRT)
	ec2RT := metrics.Summarize(ec2S.MeanRT)
	return tb.String() + fmt.Sprintf(
		"\nDCM mean RT across seeds: %.3fs ± %.3fs   EC2: %.3fs ± %.3fs\n",
		dcmRT.Mean, dcmRT.Stddev, ec2RT.Mean, ec2RT.Stddev)
}
