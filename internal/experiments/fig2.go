package experiments

import (
	"fmt"
	"time"

	"dcm/internal/invariant"
	"dcm/internal/metrics"
	"dcm/internal/ntier"
	"dcm/internal/rng"
	"dcm/internal/runner"
	"dcm/internal/server"
	"dcm/internal/sim"
	"dcm/internal/workload"
)

// Fig2aRow is one point of Fig. 2(a): MySQL performance at a fixed request
// processing concurrency (workload concurrency matched to the pool size,
// exactly as §II-B stresses MySQL with Jmeter).
type Fig2aRow struct {
	Concurrency int     `json:"concurrency"`
	QueriesPerS float64 `json:"queriesPerS"`
	MeanRTms    float64 `json:"meanRTms"`
}

// DefaultFig2aConcurrencies mirrors the paper's 5→600 sweep.
func DefaultFig2aConcurrencies() []int {
	return []int{5, 10, 20, 30, 36, 40, 60, 80, 120, 160, 240, 320, 480, 600}
}

// Fig2aMySQLSweep stresses a standalone MySQL server at each concurrency
// level with a matching thread pool and zero-think closed-loop load —
// reproducing Fig. 2(a). The expected shape: throughput peaks near N≈40
// and declines steeply afterwards while per-query latency grows
// superlinearly.
func Fig2aMySQLSweep(seed uint64, concurrencies []int, measure time.Duration) ([]Fig2aRow, error) {
	return Fig2aMySQLSweepChecked(seed, concurrencies, measure, nil)
}

// Fig2aMySQLSweepChecked is Fig2aMySQLSweep with the runtime invariant
// checker attached to every sweep point (chk may be nil; the checker is
// mutex-protected, so sharing it across the fanned-out points is safe).
func Fig2aMySQLSweepChecked(seed uint64, concurrencies []int, measure time.Duration, chk *invariant.Checker) ([]Fig2aRow, error) {
	if len(concurrencies) == 0 {
		concurrencies = DefaultFig2aConcurrencies()
	}
	if measure <= 0 {
		measure = 20 * time.Second
	}
	cfg := ntier.DefaultConfig()
	// Each sweep point is an independent simulation (own engine, own rng
	// split keyed by n), so the points fan out across the worker pool and
	// come back in input order — identical rows to the serial loop.
	return runner.Map(concurrencies, 0, func(_ int, n int) (Fig2aRow, error) {
		return fig2aPoint(seed, cfg, n, measure, chk)
	})
}

func fig2aPoint(seed uint64, cfg ntier.Config, n int, measure time.Duration, chk *invariant.Checker) (Fig2aRow, error) {
	eng := sim.NewEngine()
	srv, err := server.New(eng, rng.New(seed).Split(fmt.Sprintf("db/%d", n)), server.Config{
		Name:       "mysql",
		Model:      cfg.DBModel,
		PoolSize:   n, // matching thread pool, as in §II-B
		ThrashKnee: cfg.DBThrashKnee,
		ThrashCoef: cfg.DBThrashCoef,
		ThrashCap:  cfg.DBThrashCap,
	})
	if err != nil {
		return Fig2aRow{}, fmt.Errorf("experiments: fig2a: %w", err)
	}
	if chk != nil {
		srv.SetInvariantChecker(chk)
		invariant.AttachEngine(chk, eng)
	}
	var rts metrics.MeanAccumulator
	var cycle func()
	cycle = func() {
		start := eng.Now()
		srv.Acquire(func(sess *server.Session) {
			sess.Exec(func() {
				rts.Observe((eng.Now() - start).Seconds())
				sess.Release()
				cycle()
			})
		})
	}
	for i := 0; i < n; i++ {
		cycle()
	}
	warmup := 5 * time.Second
	if err := eng.Run(warmup); err != nil {
		return Fig2aRow{}, fmt.Errorf("experiments: fig2a warmup: %w", err)
	}
	srv.TakeSample()
	rts.TakeMean()
	if err := eng.Run(warmup + measure); err != nil {
		return Fig2aRow{}, fmt.Errorf("experiments: fig2a measure: %w", err)
	}
	s := srv.TakeSample()
	mean, _ := rts.TakeMean()
	if chk != nil {
		chk.Check(eng.Now(), invariant.RulePoolAccounting, fmt.Sprintf("server mysql/n=%d", n), srv.CheckInvariant())
		invariant.CheckEngine(chk, eng)
	}
	return Fig2aRow{
		Concurrency: n,
		QueriesPerS: float64(s.Completions) / measure.Seconds(),
		MeanRTms:    mean * 1000,
	}, nil
}

// Fig2bResult reproduces Fig. 2(b) as the paper describes it: a 1/1/1
// system under sustained high workload scales its Tomcat tier out at
// runtime. Without soft-resource adaptation the new Tomcat brings its own
// default 80-connection pool, the maximum concurrency reaching MySQL
// doubles to 160, and the join transient kicks MySQL into its collapsed
// regime — throughput *decreases* although hardware was added.
// Reallocating the connection pools to 40 per Tomcat at the moment of
// scaling (the fix §II-B prescribes) avoids the trap entirely.
type Fig2bResult struct {
	Users int `json:"users"`
	// XBefore is steady-state throughput of 1/1/1 before the scale-out.
	XBefore float64 `json:"xBefore"`
	// XAfterDefault and XAfterCorrected are steady-state throughput after
	// the second Tomcat joined, without and with conn-pool reallocation.
	XAfterDefault   float64 `json:"xAfterDefault"`
	XAfterCorrected float64 `json:"xAfterCorrected"`
	// SeriesDefault and SeriesCorrected are per-second throughput across
	// the scaling event (the figure's time axis; the event is at the
	// midpoint... one phase in).
	SeriesDefault   []float64 `json:"seriesDefault"`
	SeriesCorrected []float64 `json:"seriesCorrected"`
	// ScaleAtSecond is the index in the series where the second Tomcat
	// joined.
	ScaleAtSecond int `json:"scaleAtSecond"`
}

// Fig2bScaleOut runs the dynamic scale-out experiment at the given
// sustained user population (default 3000, which saturates the 1/1/1
// system). phase is how long each phase runs (default 60 s).
func Fig2bScaleOut(seed uint64, users int, phase time.Duration) (Fig2bResult, error) {
	return Fig2bScaleOutChecked(seed, users, phase, nil)
}

// Fig2bScaleOutChecked is Fig2bScaleOut with the runtime invariant
// checker attached to both variants' apps and engines (chk may be nil).
func Fig2bScaleOutChecked(seed uint64, users int, phase time.Duration, chk *invariant.Checker) (Fig2bResult, error) {
	if users <= 0 {
		users = 3000
	}
	if phase <= 0 {
		phase = 60 * time.Second
	}
	res := Fig2bResult{Users: users, ScaleAtSecond: int(phase.Seconds())}

	runOnce := func(correct bool) (before, after float64, series []float64, err error) {
		eng := sim.NewEngine()
		root := rng.New(seed)
		cfg := ntier.DefaultConfig() // 1/1/1, 1000/100/80
		app, err := ntier.New(eng, root.Split("app"), cfg)
		if err != nil {
			return 0, 0, nil, fmt.Errorf("experiments: fig2b: %w", err)
		}
		if chk != nil {
			app.SetInvariantChecker(chk)
			invariant.AttachEngine(chk, eng)
		}
		wl, err := workload.NewClosedLoop(eng, root.Split("wl"), app, workload.ClosedLoopConfig{
			Users:     users,
			ThinkTime: 3 * time.Second,
		})
		if err != nil {
			return 0, 0, nil, fmt.Errorf("experiments: fig2b: %w", err)
		}
		wl.Start()
		series = make([]float64, 0, int(4*phase/time.Second)+1)
		stopSeries := eng.Ticker(time.Second, func() {
			st := app.TakeStats()
			series = append(series, float64(st.Completions))
		})
		defer stopSeries()

		// Phase A: settle and measure 1/1/1.
		if err := eng.Run(phase); err != nil {
			return 0, 0, nil, fmt.Errorf("experiments: fig2b phase A: %w", err)
		}
		before = meanTail(series, int(phase.Seconds())/2)

		// Scale out: the second Tomcat joins at runtime. The corrected
		// variant reallocates the DB connection pools at the same moment,
		// exactly as §II-B prescribes (40 total at MySQL).
		if correct {
			// §II-B's fix: 20 connections per Tomcat, so the maximum
			// concurrency reaching MySQL is 40.
			app.SetDBConnsPerApp(20)
		}
		if _, err := app.AddServer(ntier.TierApp, ""); err != nil {
			return 0, 0, nil, fmt.Errorf("experiments: fig2b scale out: %w", err)
		}

		// Phase B: measure the scaled system's steady state.
		if err := eng.Run(3 * phase); err != nil {
			return 0, 0, nil, fmt.Errorf("experiments: fig2b phase B: %w", err)
		}
		after = meanTail(series, int(phase.Seconds()))
		if chk != nil {
			app.CheckInvariants()
			invariant.CheckEngine(chk, eng)
		}
		return before, after, series, nil
	}

	// The default and corrected variants are independent runs; execute
	// them concurrently.
	type variantResult struct {
		before, after float64
		series        []float64
	}
	variants, err := runner.Map([]bool{false, true}, 0, func(_ int, correct bool) (variantResult, error) {
		before, after, series, err := runOnce(correct)
		return variantResult{before: before, after: after, series: series}, err
	})
	if err != nil {
		return res, err
	}
	res.XBefore, res.XAfterDefault, res.SeriesDefault = variants[0].before, variants[0].after, variants[0].series
	res.XAfterCorrected, res.SeriesCorrected = variants[1].after, variants[1].series
	return res, nil
}

// meanTail averages the last n values of series.
func meanTail(series []float64, n int) float64 {
	if len(series) == 0 {
		return 0
	}
	if n <= 0 || n > len(series) {
		n = len(series)
	}
	sum := 0.0
	for _, v := range series[len(series)-n:] {
		sum += v
	}
	return sum / float64(n)
}

// RenderFig2a renders the sweep as an aligned table.
func RenderFig2a(rows []Fig2aRow) string {
	tb := metrics.NewTable("concurrency", "queries/s", "mean RT (ms)")
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%d", r.Concurrency), fmtF(r.QueriesPerS, 1), fmtF(r.MeanRTms, 2))
	}
	return tb.String()
}

// RenderFig2b renders the dynamic scale-out comparison.
func RenderFig2b(r Fig2bResult) string {
	tb := metrics.NewTable("phase", "throughput (req/s)")
	tb.AddRow("1/1/1 before scale-out", fmtF(r.XBefore, 1))
	tb.AddRow("1/2/1 default 80 conns each", fmtF(r.XAfterDefault, 1))
	tb.AddRow("1/2/1 corrected 20 conns each", fmtF(r.XAfterCorrected, 1))
	return tb.String()
}
