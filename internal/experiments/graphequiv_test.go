package experiments

import (
	"reflect"
	"testing"
	"time"

	"dcm/internal/graph"
	"dcm/internal/metrics"
	"dcm/internal/ntier"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
)

// The graph-equivalence differential suite. The ntier facade is required
// to be a pure re-plumbing of the chain onto the graph engine: building
// the application through ntier.New and building the same 3-node graph
// directly through graph.New must produce byte-identical runs — same
// event count, same rng consumption, same dispositions, same per-node
// ledgers — across resilience, servlet-mix and traffic-class variants.
// (The chain-mode sha256 digests themselves are re-asserted by the
// policy-equivalence suite, which now runs entirely through the graph
// engine; this suite pins the two construction paths to each other.)

// equivChainConfig is a small chain that completes quickly but still
// queues at the app and db tiers.
func equivChainConfig() ntier.Config {
	cfg := ntier.DefaultConfig()
	cfg.WebThreads = 100
	cfg.AppThreads = 20
	cfg.DBConnsPerApp = 10
	cfg.DBMaxConns = 200
	return cfg
}

// graphSnapshot is the comparable end-state of one run.
type graphSnapshot struct {
	Processed   uint64
	Injected    uint64
	Completions uint64
	Errors      uint64
	Good        uint64
	Disp        metrics.DispositionCounts
	Visits      map[string]graph.NodeVisitStat
	Stats       graph.Stats
}

func snapshotGraph(eng *sim.Engine, g *graph.App) graphSnapshot {
	return graphSnapshot{
		Processed:   eng.Processed(),
		Injected:    g.TotalInjected(),
		Completions: g.TotalCompletions(),
		Errors:      g.TotalErrors(),
		Good:        g.TotalGood(),
		Disp:        g.Dispositions(),
		Visits:      g.NodeVisits(),
		Stats:       g.TakeStats(),
	}
}

// arrival is one precomputed injection, shared verbatim by both runs.
type arrival struct {
	at      time.Duration
	class   int
	session uint64
}

func equivArrivals(seed uint64, n int, rate float64, classes int) []arrival {
	wl := rng.New(seed).Split("wl")
	out := make([]arrival, n)
	var t float64
	for i := range out {
		t += wl.Exp(1 / rate)
		out[i] = arrival{at: time.Duration(t * float64(time.Second)), class: -1}
		if classes > 0 {
			out[i].class = wl.Intn(classes)
			out[i].session = uint64(i + 1)
		}
	}
	return out
}

// TestGraphDirectMatchesFacade runs each variant twice — once assembled
// by ntier.New, once by graph.New on the equivalent config — and
// requires identical end states.
func TestGraphDirectMatchesFacade(t *testing.T) {
	t.Parallel()
	full, err := resilience.Preset("full", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	variants := []struct {
		name    string
		mutate  func(*ntier.Config)
		classes int
	}{
		{name: "plain", mutate: func(*ntier.Config) {}},
		{name: "resilience-servlet-mix", mutate: func(c *ntier.Config) {
			c.Resilience = *full
			c.Servlets = ntier.DefaultServlets()
			c.NoiseSigma = 0.1
		}},
		{name: "traffic-classes", mutate: func(c *ntier.Config) {
			c.Resilience = *full
			c.Classes = []ntier.RequestClass{
				{Name: "premium", Priority: 1, SLO: 150 * time.Millisecond},
				{Name: "basic", Queries: 3},
			}
		}, classes: 2},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			cfg := equivChainConfig()
			v.mutate(&cfg)
			arrivals := equivArrivals(99, 600, 900, v.classes)

			run := func(build func(eng *sim.Engine) (*graph.App, func(arrival, func(time.Duration, bool)))) graphSnapshot {
				eng := sim.NewEngine()
				g, inject := build(eng)
				for _, ar := range arrivals {
					ar := ar
					eng.Schedule(ar.at, func() {
						inject(ar, func(time.Duration, bool) {})
					})
				}
				if err := eng.Run(time.Minute); err != nil {
					t.Fatal(err)
				}
				return snapshotGraph(eng, g)
			}

			facade := run(func(eng *sim.Engine) (*graph.App, func(arrival, func(time.Duration, bool))) {
				app, err := ntier.New(eng, rng.New(42).Split("app"), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return app.Graph(), func(ar arrival, done func(time.Duration, bool)) {
					if ar.class >= 0 {
						app.InjectClass(ar.class, ar.session, done)
					} else {
						app.Inject(done)
					}
				}
			})
			direct := run(func(eng *sim.Engine) (*graph.App, func(arrival, func(time.Duration, bool))) {
				g, err := graph.New(eng, rng.New(42).Split("app"), directGraphConfig(cfg))
				if err != nil {
					t.Fatal(err)
				}
				return g, func(ar arrival, done func(time.Duration, bool)) {
					if ar.class >= 0 {
						g.InjectClass(ar.class, ar.session, done)
					} else {
						g.Inject(done)
					}
				}
			})

			if !reflect.DeepEqual(facade, direct) {
				t.Fatalf("facade and direct-graph runs diverged:\nfacade: %+v\ndirect: %+v",
					facade, direct)
			}
			if facade.Completions == 0 {
				t.Fatal("degenerate run: nothing completed")
			}
		})
	}
}

// directGraphConfig maps an ntier chain config onto graph.Config exactly
// as the facade does — reimplemented here (not shared) so a facade
// mapping bug cannot hide by symmetry.
func directGraphConfig(cfg ntier.Config) graph.Config {
	spec := graph.ChainSpec(
		cfg.WebModel, cfg.AppModel, cfg.DBModel,
		cfg.WebThreads, cfg.AppThreads, cfg.DBConnsPerApp, cfg.DBMaxConns,
		cfg.QueriesPerRequest,
		cfg.WebServers, cfg.AppServers, cfg.DBServers,
		cfg.DBThrashKnee, cfg.DBThrashCoef, cfg.DBThrashCap)
	gc := graph.Config{
		Spec:       spec,
		NoiseSigma: cfg.NoiseSigma,
		Policy:     cfg.Policy,
		Resilience: cfg.Resilience,
	}
	for _, s := range cfg.Servlets {
		nd := map[string]float64{"app": s.AppDemand}
		if s.QueryDemand > 0 {
			nd["db"] = s.QueryDemand
		}
		gc.Mix = append(gc.Mix, graph.Profile{
			Name:       s.Name,
			Weight:     s.Weight,
			NodeDemand: nd,
			EdgeVisits: map[string]int{"app->db": s.Queries},
		})
	}
	for _, c := range cfg.Classes {
		// The facade fills class demand defaults during validation; mirror
		// the filled values here.
		appDemand, queries, queryDemand := c.AppDemand, c.Queries, c.QueryDemand
		if appDemand == 0 {
			appDemand = 1
		}
		if queries == 0 {
			queries = cfg.QueriesPerRequest
		}
		if queryDemand == 0 {
			queryDemand = 1
		}
		gc.Classes = append(gc.Classes, graph.Class{
			Name:     c.Name,
			Priority: c.Priority,
			SLO:      c.SLO,
			Profile: graph.Profile{
				NodeDemand: map[string]float64{"app": appDemand, "db": queryDemand},
				EdgeVisits: map[string]int{"app->db": queries},
			},
		})
	}
	return gc
}

// TestGraphChainDigestPinned freezes the direct-graph chain run itself:
// the digest below was captured when the graph engine landed and must
// never drift — the graph walk is the byte-level contract the facade's
// chain-mode digests (policyequiv) rest on.
func TestGraphChainDigestPinned(t *testing.T) {
	t.Parallel()
	cfg := equivChainConfig()
	cfg.Resilience = func() resilience.Config {
		r, err := resilience.Preset("full", 300*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return *r
	}()
	eng := sim.NewEngine()
	g, err := graph.New(eng, rng.New(42).Split("app"), directGraphConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for _, ar := range equivArrivals(99, 600, 900, 0) {
		eng.Schedule(ar.at, func() { g.Inject(func(time.Duration, bool) {}) })
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	snap := snapshotGraph(eng, g)
	const want = "0957a8bce25ee98a6354898bb90b15d4da6b5c5ed139290795a905f450b5641d"
	if got := equivDigest(t, snap); got != want {
		t.Errorf("chain graph digest = %s, want %s", got, want)
	}
}
