package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"dcm/internal/controller"
	"dcm/internal/model"
	"dcm/internal/policy"
)

// The declarative-policy equivalence suite: the digests below were
// captured on main immediately BEFORE the hand-coded controller and
// planner logic was re-expressed through internal/policy. Every figure
// grid, planner sweep, audit reason-code stream and full scenario result
// must still hash to the same value — the refactor is required to be a
// pure re-plumbing, bit for bit.

func equivDigest(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// TestPolicyDefaultMatchesHandCoded pins the three faces of the default
// policy to each other: the checked-in policy file, the constructed
// Default() rule set, and the controllers' historical DefaultPolicy().
func TestPolicyDefaultMatchesHandCoded(t *testing.T) {
	t.Parallel()
	rules, err := policy.Load("../../policies/default.policy.json")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rules, policy.Default()) {
		t.Errorf("checked-in default.policy.json = %+v, want policy.Default() = %+v",
			rules, policy.Default())
	}
	// And the file itself is exactly what Marshal renders — no drift.
	data, err := policy.Default().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	disk, err := os.ReadFile("../../policies/default.policy.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, data) {
		t.Error("policies/default.policy.json differs from policy.Default().Marshal()")
	}
	if got := controller.PolicyFromRules(rules.Scaling); !reflect.DeepEqual(got, controller.DefaultPolicy()) {
		t.Errorf("PolicyFromRules(default) = %+v, want DefaultPolicy() = %+v",
			got, controller.DefaultPolicy())
	}
	// Round trip: the controller policy renders back to the same rules.
	if got := controller.DefaultPolicy().ScalingRules(); !reflect.DeepEqual(got, rules.Scaling) {
		t.Errorf("DefaultPolicy().ScalingRules() = %+v, want %+v", got, rules.Scaling)
	}
	// The planner rules derived from the default allocation rules must be
	// the planner's own historical defaults.
	if got := controller.PlanRulesFromAllocation(rules.Allocation); got != model.DefaultPlanRules() {
		t.Errorf("PlanRulesFromAllocation(default) = %+v, want %+v", got, model.DefaultPlanRules())
	}
}

// TestPolicyEquivalenceFigures pins the fig2/fig4 experiment grids to
// their pre-refactor digests.
func TestPolicyEquivalenceFigures(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("simulation grids in -short mode")
	}
	t.Run("fig2a", func(t *testing.T) {
		t.Parallel()
		out, err := Fig2aMySQLSweep(7, []int{5, 36, 120}, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		const want = "525c5dd03ece8592a86b8d9de7d816784399abd4da32be205e91ecc1240a95ad"
		if got := equivDigest(t, out); got != want {
			t.Errorf("fig2a digest = %s, want %s", got, want)
		}
	})
	t.Run("fig2b", func(t *testing.T) {
		t.Parallel()
		out, err := Fig2bScaleOut(7, 3000, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		const want = "ca77893a72197875256bdf608ea8286fc6cf238e6f1d96914484219e3ea02cc8"
		if got := equivDigest(t, out); got != want {
			t.Errorf("fig2b digest = %s, want %s", got, want)
		}
	})
	t.Run("fig4a", func(t *testing.T) {
		t.Parallel()
		rows, _, err := Fig4a(7, []int{3000}, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		const want = "d811971bfa259f9f9224639a042725a7ff2f0e7ee0c3c0c966f9e3a4ad41c0f7"
		if got := equivDigest(t, rows); got != want {
			t.Errorf("fig4a digest = %s, want %s", got, want)
		}
	})
	t.Run("fig4b", func(t *testing.T) {
		t.Parallel()
		rows, _, err := Fig4b(7, []int{3000}, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		const want = "56eef48af56c44832852547051b335760d21b2981b01429f99ed88b1b285f7e5"
		if got := equivDigest(t, rows); got != want {
			t.Errorf("fig4b digest = %s, want %s", got, want)
		}
	})
}

// TestPolicyEquivalencePlannerGrid sweeps the planner across every
// topology, headroom and model pair (plus the degenerate clamp path) and
// pins the whole grid to its pre-refactor digest.
func TestPolicyEquivalencePlannerGrid(t *testing.T) {
	t.Parallel()
	type planOut struct {
		Alloc model.Allocation
		Diag  model.PlanDiag
		Err   string
	}
	var plans []planOut
	tomcatT, mysqlT := model.TableI()
	tomcatF, mysqlF := TrainedModels()
	for _, pair := range [][2]model.Params{{tomcatT, mysqlT}, {tomcatF, mysqlF}} {
		for _, web := range []int{1, 2} {
			for _, app := range []int{1, 2, 3, 5, 10} {
				for _, db := range []int{1, 2, 4} {
					for _, hr := range []float64{0, 0.5, 1, 1.3, 2} {
						for _, wt := range []int{0, 500} {
							alloc, diag, err := model.PlanAllocationDetailed(model.AllocationInput{
								Tomcat: pair[0], MySQL: pair[1],
								WebServers: web, AppServers: app, DBServers: db,
								Headroom: hr, WebThreads: wt,
							})
							out := planOut{Alloc: alloc, Diag: diag}
							if err != nil {
								out.Err = err.Error()
							}
							plans = append(plans, out)
						}
					}
				}
			}
		}
	}
	// Degenerate models whose optimum rounds below 1 (clamp path).
	degenerate := model.Params{S0: 1e-3, Alpha: 9.9e-4, Beta: 1e-2, Gamma: 1}
	for _, app := range []int{1, 4} {
		alloc, diag, err := model.PlanAllocationDetailed(model.AllocationInput{
			Tomcat: degenerate, MySQL: degenerate,
			WebServers: 1, AppServers: app, DBServers: 1,
		})
		out := planOut{Alloc: alloc, Diag: diag}
		if err != nil {
			out.Err = err.Error()
		}
		plans = append(plans, out)
	}
	const want = "a10083733a284d13308f6d44efb4a7411e57126547984ce434b83fae760b242a"
	if got := equivDigest(t, plans); got != want {
		t.Errorf("planner grid digest = %s, want %s", got, want)
	}

	// The same grid, driven through PlanAllocationWithRules with the
	// declarative default rules, must agree entry for entry.
	planRules := controller.PlanRulesFromAllocation(policy.Default().Allocation)
	i := 0
	check := func(in model.AllocationInput) {
		t.Helper()
		alloc, diag, err := model.PlanAllocationWithRules(in, planRules)
		out := planOut{Alloc: alloc, Diag: diag}
		if err != nil {
			out.Err = err.Error()
		}
		if out != plans[i] {
			t.Errorf("entry %d: rules-driven plan %+v != hand-coded %+v", i, out, plans[i])
		}
		i++
	}
	for _, pair := range [][2]model.Params{{tomcatT, mysqlT}, {tomcatF, mysqlF}} {
		for _, web := range []int{1, 2} {
			for _, app := range []int{1, 2, 3, 5, 10} {
				for _, db := range []int{1, 2, 4} {
					for _, hr := range []float64{0, 0.5, 1, 1.3, 2} {
						for _, wt := range []int{0, 500} {
							check(model.AllocationInput{
								Tomcat: pair[0], MySQL: pair[1],
								WebServers: web, AppServers: app, DBServers: db,
								Headroom: hr, WebThreads: wt,
							})
						}
					}
				}
			}
		}
	}
	for _, app := range []int{1, 4} {
		check(model.AllocationInput{
			Tomcat: degenerate, MySQL: degenerate,
			WebServers: 1, AppServers: app, DBServers: 1,
		})
	}
}

// TestPolicyEquivalenceAuditCodes pins each controller's full audit
// reason-code stream on the reference scenario to its pre-refactor digest:
// the policy evaluators must emit exactly the decisions (and the explicit
// holds) the hand-coded controllers did, in the same order.
func TestPolicyEquivalenceAuditCodes(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full scenario runs in -short mode")
	}
	wants := map[ControllerKind]struct {
		count  int
		digest string
	}{
		ControllerDCM:            {126, "fdc18789d940d84d8858b76d6941d9eb35bf4165c8743d9b5ba284d319c7771a"},
		ControllerEC2:            {84, "ca4121e0f2dea4077daf31c1e99b3f7417f1e1cc382398dbed3d2cceb7c0f6bb"},
		ControllerTargetTracking: {84, "7e81b942a6857b69a493fac08a65c8a49f9eaa336b55a108f264b50fa73605ad"},
	}
	for kind, want := range wants {
		kind, want := kind, want
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			res, err := RunScenario(ScenarioConfig{Seed: 42, Kind: kind, Audit: true})
			if err != nil {
				t.Fatal(err)
			}
			var codes []string
			for _, d := range res.Decisions {
				for _, a := range d.Actions {
					codes = append(codes, string(a.Code))
				}
				for _, h := range d.Holds {
					codes = append(codes, string(h.Code))
				}
			}
			if len(codes) != want.count {
				t.Errorf("code count = %d, want %d", len(codes), want.count)
			}
			sum := sha256.Sum256([]byte(strings.Join(codes, "\n")))
			if got := hex.EncodeToString(sum[:]); got != want.digest {
				t.Errorf("code-stream digest = %s, want %s", got, want.digest)
			}
		})
	}
}

// TestPolicyEquivalenceScenarios pins the full marshalled ScenarioResult
// of the reference runs, and requires a run driven by the declarative
// default rules (both constructed and loaded from the checked-in file) to
// be byte-identical to one with no rules at all.
func TestPolicyEquivalenceScenarios(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full scenario runs in -short mode")
	}
	wants := map[ControllerKind]string{
		ControllerDCM:            "2ff5bb93012bba00bdc920ab13ae08f80edf81f3844470741ad5ee81483dc929",
		ControllerEC2:            "7fe679ec01da5f80567c5128dbe3c5d34bb9d4bea52f324eb6a69d97c8760dc9",
		ControllerTargetTracking: "eaf91d4148c078afd083a81e581ad41073c3a78e49269286b1358e0ea65479f2",
	}
	fromFile, err := policy.Load("../../policies/default.policy.json")
	if err != nil {
		t.Fatal(err)
	}
	for kind, want := range wants {
		kind, want := kind, want
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			plain, err := RunScenario(ScenarioConfig{Seed: 42, Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			plainJSON, err := json.Marshal(plain)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(plainJSON)
			if got := hex.EncodeToString(sum[:]); got != want {
				t.Errorf("scenario digest = %s, want %s", got, want)
			}
			for name, rules := range map[string]policy.Rules{
				"constructed": policy.Default(),
				"from-file":   fromFile,
			} {
				r := rules
				ruled, err := RunScenario(ScenarioConfig{Seed: 42, Kind: kind, Rules: &r})
				if err != nil {
					t.Fatal(err)
				}
				ruledJSON, err := json.Marshal(ruled)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(plainJSON, ruledJSON) {
					t.Errorf("%s: rules-driven run differs from plain run", name)
				}
			}
		})
	}
}
