package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dcm/internal/graph"
	"dcm/internal/invariant"
	"dcm/internal/lb"
	"dcm/internal/metrics"
	"dcm/internal/model"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
	"dcm/internal/workload"
)

// The graph experiment drives an arbitrary service-graph topology — by
// default a 5-node fan-out microservice app — with the workload library's
// bursty open-loop arrivals, optional mid-run chaos (a replica crash and a
// later replacement), and optional per-node DCM controllers steering each
// armed node's thread pool to its Equation 7 optimum. It is the
// demonstration that every per-node construct the chain experiments
// calibrated (Eq. 5 laws, resilience, invariants, the controller) composes
// on a DAG.

// GraphConfig parameterizes the graph experiment. The zero value selects
// the built-in fanout5 topology under calibrated defaults.
type GraphConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Topology is a topology spec file (see topologies/); empty selects the
	// built-in 5-node fan-out app.
	Topology string
	// Rate is the base open-loop arrival rate in requests per second
	// (default 150). The run is bursty: a flash-crowd plateau of 4x the
	// base rate occupies the middle half of the horizon.
	Rate float64
	// Horizon bounds the run (default 120 s).
	Horizon time.Duration
	// Timeout is the per-request deadline and basic-class SLA (default 1 s).
	Timeout time.Duration
	// Chaos injects failures: the busiest non-entry node loses one replica
	// at Horizon/3 (crash, in-flight work lost) and gains a replacement at
	// 2*Horizon/3.
	Chaos bool
	// Controllers arms the per-node DCM loop on every node whose spec sets
	// Controller: each period the node's thread pool is steered to the
	// Equation 7 optimum of its burst law.
	Controllers bool
	// ControlPeriod is the controller actuation period (default 5 s).
	ControlPeriod time.Duration
	// Invariants attaches the runtime invariant checker (whole-graph and
	// per-node conservation, async ledger, pool accounting) and sweeps once
	// at the end.
	Invariants bool
}

func (c *GraphConfig) defaults() {
	if c.Rate <= 0 {
		c.Rate = 150
	}
	if c.Horizon <= 0 {
		c.Horizon = 120 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.ControlPeriod <= 0 {
		c.ControlPeriod = 5 * time.Second
	}
}

// Fanout5Spec is the built-in 5-node fan-out microservice app: a gateway
// fans out to a search service (two parallel lookups) and a catalog
// service (which issues two pooled DB queries), and fires an async audit
// event per request. The laws reuse the calibrated chain shapes so the
// defaults saturate in reach of the default rates.
func Fanout5Spec() graph.Spec {
	web := model.Params{S0: 4e-4, Alpha: 5e-7, Beta: 1e-10, Gamma: 1}
	// The composite Tomcat-like law (interior optimum N_b ≈ 20) — the shape
	// §V-A's training run measures — so the armed controllers have a real
	// optimum to steer to.
	app := model.Params{S0: 4.64e-3, Alpha: 8.08e-4, Beta: 9.46e-6, Gamma: 1}
	db := model.Params{S0: 6.867e-4, Alpha: 4.814e-4, Beta: 1.576e-7, Gamma: 1}
	return graph.Spec{
		Name:  "fanout5",
		Entry: "gateway",
		Nodes: []graph.NodeSpec{
			{Name: "gateway", Model: web, Threads: 1000},
			{Name: "search", Model: app, Threads: 80, Controller: true},
			{Name: "catalog", Model: app, Threads: 100, Controller: true},
			{Name: "db", Model: db, Threads: 2000,
				ThrashKnee: 40, ThrashCoef: 1.3e-5, BetaOnConfigured: true},
			{Name: "audit", Model: web, Threads: 50},
		},
		Edges: []graph.EdgeSpec{
			{From: "gateway", To: "search", Kind: graph.EdgeParallel, Visits: 2},
			{From: "gateway", To: "catalog", Visits: 1},
			{From: "gateway", To: "audit", Kind: graph.EdgeAsync, Visits: 1},
			{From: "search", To: "db", Visits: 1, PoolSize: 40},
			{From: "catalog", To: "db", Visits: 2, PoolSize: 80},
		},
	}
}

// GraphNodeRow is one node's end-of-run summary.
type GraphNodeRow struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Members int    `json:"members"`
	Threads int    `json:"threads"`
	// Started/InFlight/Dispositions are the node's visit ledger.
	Started      uint64                    `json:"started"`
	InFlight     int                       `json:"inFlight"`
	Dispositions metrics.DispositionCounts `json:"dispositions"`
	// MeanResidence is the node's mean per-visit residence over the run.
	MeanResidence float64 `json:"meanResidence"`
	// CacheHits/CacheMisses are set for cache nodes only.
	CacheHits   uint64 `json:"cacheHits,omitempty"`
	CacheMisses uint64 `json:"cacheMisses,omitempty"`
}

// GraphResult reports one graph-experiment run.
type GraphResult struct {
	Topology string        `json:"topology"`
	Entry    string        `json:"entry"`
	Rate     float64       `json:"rate"`
	PeakRate float64       `json:"peakRate"`
	Horizon  time.Duration `json:"horizon"`
	// Scheduled counts accepted (injected) arrivals.
	Scheduled    uint64                    `json:"scheduled"`
	Goodput      uint64                    `json:"goodput"`
	Completed    uint64                    `json:"completed"`
	Errors       uint64                    `json:"errors"`
	Dispositions metrics.DispositionCounts `json:"dispositions"`
	// Nodes is the per-node breakdown in declaration order.
	Nodes []GraphNodeRow `json:"nodes"`
	// Async is the fire-and-forget ledger (zero without async edges).
	AsyncSpawned  uint64                    `json:"asyncSpawned,omitempty"`
	AsyncDone     metrics.DispositionCounts `json:"asyncDone,omitempty"`
	AsyncInFlight int                       `json:"asyncInFlight,omitempty"`
	// Chaos log entries ("t=40s fail catalog-1"), empty without chaos.
	ChaosLog []string `json:"chaosLog,omitempty"`
	// ControllerTargets maps armed nodes to their final steered threads.
	ControllerTargets map[string]int `json:"controllerTargets,omitempty"`
	Events            uint64         `json:"events"`
	Wall              time.Duration  `json:"wall"`

	InvariantViolations []invariant.Violation `json:"invariantViolations,omitempty"`
}

// RunGraph runs the service-graph experiment.
func RunGraph(cfg GraphConfig) (GraphResult, error) {
	cfg.defaults()

	spec := Fanout5Spec()
	if cfg.Topology != "" {
		var err error
		if spec, err = graph.LoadSpec(cfg.Topology); err != nil {
			return GraphResult{}, fmt.Errorf("experiments: graph topology: %w", err)
		}
	}

	eng := sim.NewEngine()
	root := rng.New(cfg.Seed)

	res, err := resilience.Preset("full", cfg.Timeout)
	if err != nil {
		return GraphResult{}, fmt.Errorf("experiments: graph resilience: %w", err)
	}
	app, err := graph.New(eng, root.Split("graph"), graph.Config{
		Spec:       spec,
		Policy:     lb.LeastConnections,
		Resilience: *res,
		Classes: []graph.Class{
			{Name: "premium", Priority: 1, SLO: cfg.Timeout / 2},
			{Name: "basic"},
		},
	})
	if err != nil {
		return GraphResult{}, fmt.Errorf("experiments: graph app: %w", err)
	}
	var chk *invariant.Checker
	if cfg.Invariants {
		chk = invariant.New()
		app.SetInvariantChecker(chk)
		invariant.AttachEngine(chk, eng)
	}

	peak := 4 * cfg.Rate
	wspec := workload.WorkloadSpec{
		Name: "graph-bursty",
		Kind: workload.KindOpen,
		Arrivals: &workload.RateSpec{
			Curve:       workload.CurveFlashCrowd,
			Rate:        cfg.Rate,
			PeakRate:    peak,
			AtSeconds:   (cfg.Horizon / 4).Seconds(),
			RampSeconds: 10,
			HoldSeconds: (cfg.Horizon / 2).Seconds(),
		},
		Classes: []workload.ClassSpec{
			{Name: "premium", Weight: 0.2, Priority: 1, SLOSeconds: (cfg.Timeout / 2).Seconds()},
			{Name: "basic", Weight: 0.8},
		},
	}
	if err := wspec.Validate(); err != nil {
		return GraphResult{}, fmt.Errorf("experiments: graph workload spec: %w", err)
	}
	gen, err := wspec.Build(eng, root.Split("wl"), app)
	if err != nil {
		return GraphResult{}, fmt.Errorf("experiments: graph workload: %w", err)
	}
	ol := gen.(*workload.OpenLoopGen)

	// Chaos: crash one replica of the busiest steerable non-entry node at
	// Horizon/3, add a replacement at 2/3 — the graph must reroute, absorb
	// the lost in-flight work, and rebalance when capacity returns.
	var chaosLog []string
	if cfg.Chaos {
		victim := ""
		for _, name := range app.NodeNames() {
			if name == spec.Entry {
				continue
			}
			if victim == "" {
				victim = name
			}
		}
		if victim != "" {
			eng.Schedule(cfg.Horizon/3, func() {
				ms := app.Members(victim)
				if len(ms) == 0 {
					return
				}
				name := ms[len(ms)-1].Name()
				if err := app.FailMember(victim, name); err == nil {
					chaosLog = append(chaosLog,
						fmt.Sprintf("t=%v fail %s", eng.Now().Round(time.Second), name))
				}
			})
			eng.Schedule(2*cfg.Horizon/3, func() {
				if m, err := app.AddMember(victim, ""); err == nil {
					chaosLog = append(chaosLog,
						fmt.Sprintf("t=%v add %s", eng.Now().Round(time.Second), m.Name()))
				}
			})
		}
	}

	// Per-node DCM controllers: each period, steer armed nodes' thread
	// pools to the Equation 7 optimum of their burst law.
	targets := make(map[string]int)
	if cfg.Controllers {
		for _, ns := range spec.Nodes {
			if !ns.Controller {
				continue
			}
			name, m := ns.Name, ns.Model
			_ = eng.Ticker(cfg.ControlPeriod, func() {
				nb, ok := m.OptimalConcurrencyInt()
				if !ok || nb < 1 {
					return
				}
				targets[name] = nb
				_ = app.SetNodeThreads(name, nb)
			})
		}
	}

	ol.Start()
	start := time.Now()
	if err := eng.Run(cfg.Horizon); err != nil {
		return GraphResult{}, fmt.Errorf("experiments: graph run: %w", err)
	}
	ol.Stop()

	out := GraphResult{
		Topology:     spec.Name,
		Entry:        spec.Entry,
		Rate:         cfg.Rate,
		PeakRate:     peak,
		Horizon:      cfg.Horizon,
		Scheduled:    ol.Scheduled(),
		Goodput:      app.TotalGood(),
		Completed:    app.TotalCompletions(),
		Errors:       app.TotalErrors(),
		Dispositions: app.Dispositions(),
		ChaosLog:     chaosLog,
		Events:       eng.Processed(),
		Wall:         time.Since(start),
	}
	if len(targets) > 0 {
		out.ControllerTargets = targets
	}
	st := app.TakeStats()
	ledger := app.NodeVisits()
	for i, name := range app.NodeNames() {
		row := GraphNodeRow{
			Name:          name,
			Kind:          spec.Nodes[i].Kind,
			Members:       app.MemberCount(name),
			MeanResidence: st.NodeResidence[name],
		}
		if row.Kind == "" {
			row.Kind = graph.KindService
		}
		if th, err := app.NodeThreads(name); err == nil {
			row.Threads = th
		}
		if lv, ok := ledger[name]; ok {
			row.Started = lv.Started
			row.InFlight = lv.InFlight
			row.Dispositions = lv.Dispositions
		}
		if row.Kind == graph.KindCache {
			row.CacheHits, row.CacheMisses, _ = app.CacheStats(name)
		}
		out.Nodes = append(out.Nodes, row)
	}
	out.AsyncSpawned, out.AsyncDone, out.AsyncInFlight = app.AsyncLedger()
	if chk != nil {
		app.CheckInvariants()
		invariant.CheckEngine(chk, eng)
		out.InvariantViolations = chk.Violations()
	}
	return out, nil
}

// RenderGraph renders the run summary plus the per-node ledger table.
// Deterministic for a fixed seed (wall time is reported via JSON only), so
// cmd/report can golden-test the section.
func RenderGraph(r GraphResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  topology   %s (entry %s)\n", r.Topology, r.Entry)
	fmt.Fprintf(&sb, "  arrivals   bursty %.0f -> %.0f req/s over %v\n", r.Rate, r.PeakRate, r.Horizon)
	fmt.Fprintf(&sb, "  scheduled  %d arrivals\n", r.Scheduled)
	fmt.Fprintf(&sb, "  outcome    %d good / %d completed / %d errors\n",
		r.Goodput, r.Completed, r.Errors)
	d := r.Dispositions
	fmt.Fprintf(&sb, "  taxonomy   ok %d | timeout %d | rejected %d | shed %d | brk-open %d | errored %d\n",
		d.OK, d.TimedOut, d.Rejected, d.Shed, d.BreakerOpen, d.Errored)
	if r.AsyncSpawned > 0 {
		fmt.Fprintf(&sb, "  async      %d spawned, %d done ok, %d in flight\n",
			r.AsyncSpawned, r.AsyncDone.OK, r.AsyncInFlight)
	}
	for _, line := range r.ChaosLog {
		fmt.Fprintf(&sb, "  chaos      %s\n", line)
	}
	if len(r.ControllerTargets) > 0 {
		names := make([]string, 0, len(r.ControllerTargets))
		for name := range r.ControllerTargets {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s->%d", name, r.ControllerTargets[name])
		}
		fmt.Fprintf(&sb, "  dcm        steered threads: %s\n", strings.Join(parts, ", "))
	}
	if len(r.InvariantViolations) > 0 {
		fmt.Fprintf(&sb, "  INVARIANT VIOLATIONS: %d\n", len(r.InvariantViolations))
	}
	sb.WriteString("\n")
	tb := metrics.NewTable("node", "kind", "members", "threads", "visits",
		"ok", "timeout", "errors", "meanRes")
	for _, n := range r.Nodes {
		tb.AddRow(n.Name, n.Kind,
			fmt.Sprintf("%d", n.Members),
			fmt.Sprintf("%d", n.Threads),
			fmt.Sprintf("%d", n.Started),
			fmt.Sprintf("%d", n.Dispositions.OK),
			fmt.Sprintf("%d", n.Dispositions.TimedOut),
			fmt.Sprintf("%d", n.Dispositions.Errored),
			fmt.Sprintf("%.1fms", n.MeanResidence*1000))
	}
	sb.WriteString(tb.String())
	return sb.String()
}
