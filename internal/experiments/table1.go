package experiments

import (
	"fmt"
	"time"

	"dcm/internal/metrics"
	"dcm/internal/model"
	"dcm/internal/ntier"
)

// Table1Row is one column of Table I: the trained model of one tier.
type Table1Row struct {
	Tier string `json:"tier"`
	// Params are the fitted Equation 5/7 parameters, reported in the
	// paper's gauge (S0 anchored to Table I; see model.TrainOptions).
	Params model.Params `json:"params"`
	// RSquared, OptimalN and MaxThroughput mirror Table I's R², N_b and
	// X_max rows.
	RSquared      float64 `json:"rSquared"`
	OptimalN      int     `json:"optimalN"`
	MaxThroughput float64 `json:"maxThroughput"`
	// Observations is the training data, kept for the report.
	Observations []model.Observation `json:"observations"`
}

// DefaultTrainingConcurrencies mirrors the paper's 1..200 Jmeter sweep.
func DefaultTrainingConcurrencies() []int {
	return []int{1, 2, 3, 5, 8, 12, 16, 20, 25, 30, 40, 50, 60, 80, 100, 130, 160, 200}
}

// TrainTomcatModel reproduces §V-A's Tomcat training: the 1/1/1 system is
// driven by a zero-think closed loop at each concurrency level (thread
// pool matched to the workload concurrency so the request-processing
// concurrency in Tomcat equals N), and Equation 7 is fitted to the
// (concurrency, system throughput) pairs.
func TrainTomcatModel(seed uint64, concurrencies []int, measure time.Duration) (Table1Row, error) {
	if len(concurrencies) == 0 {
		concurrencies = DefaultTrainingConcurrencies()
	}
	if measure <= 0 {
		measure = 15 * time.Second
	}
	obs := make([]model.Observation, 0, len(concurrencies))
	for _, n := range concurrencies {
		cfg := ntier.DefaultConfig()
		cfg.AppThreads = n
		m, err := steadyState(seed, cfg, n, 0, 5*time.Second, measure, nil)
		if err != nil {
			return Table1Row{}, fmt.Errorf("experiments: tomcat training at N=%d: %w", n, err)
		}
		obs = append(obs, model.Observation{Concurrency: float64(n), Throughput: m.Throughput})
	}
	paperTomcat, _ := model.TableI()
	res, err := model.Train(obs, model.TrainOptions{Servers: 1, KnownS0: paperTomcat.S0})
	if err != nil {
		return Table1Row{}, fmt.Errorf("experiments: tomcat training: %w", err)
	}
	return Table1Row{
		Tier:          "tomcat",
		Params:        res.Params,
		RSquared:      res.RSquared,
		OptimalN:      res.OptimalN,
		MaxThroughput: res.MaxThroughput,
		Observations:  obs,
	}, nil
}

// DefaultMySQLTrainingConcurrencies sweeps 1..40: around the optimum and
// up to (not past) the thrashing knee, where Equation 5's graceful
// contention assumption holds. (The paper's own Table I — a gentle
// quadratic — against its Fig. 2(a) — a steep collapse — shows the same
// limit of the model's validity range.)
func DefaultMySQLTrainingConcurrencies() []int {
	return []int{1, 2, 3, 5, 8, 12, 16, 20, 24, 28, 32, 36, 40}
}

// TrainMySQLModel reproduces §V-A's MySQL training. The paper trains the
// MySQL model where MySQL is the bottleneck tier; in the simulated testbed
// (as in any real deployment whose app tier throttles past its own
// optimum) the full-stack path cannot drive MySQL far past its optimal
// concurrency, so the training workload stresses the MySQL server directly
// with a matched thread pool — the method §II-B itself uses for Fig. 2(a).
// Throughput is reported at request level (queries per second divided by
// the visit ratio V=2) so the fitted X_max is comparable to Table I.
func TrainMySQLModel(seed uint64, concurrencies []int, measure time.Duration) (Table1Row, error) {
	if len(concurrencies) == 0 {
		concurrencies = DefaultMySQLTrainingConcurrencies()
	}
	if measure <= 0 {
		measure = 15 * time.Second
	}
	cfg := ntier.DefaultConfig()
	visit := float64(cfg.QueriesPerRequest)
	if visit <= 0 {
		visit = 1
	}
	obs := make([]model.Observation, 0, len(concurrencies))
	for _, n := range concurrencies {
		row, err := fig2aPoint(seed, cfg, n, measure, nil)
		if err != nil {
			return Table1Row{}, fmt.Errorf("experiments: mysql training at N=%d: %w", n, err)
		}
		obs = append(obs, model.Observation{
			Concurrency: float64(n),
			Throughput:  row.QueriesPerS / visit,
		})
	}
	_, paperMySQL := model.TableI()
	res, err := model.Train(obs, model.TrainOptions{Servers: 1, KnownS0: paperMySQL.S0})
	if err != nil {
		return Table1Row{}, fmt.Errorf("experiments: mysql training: %w", err)
	}
	return Table1Row{
		Tier:          "mysql",
		Params:        res.Params,
		RSquared:      res.RSquared,
		OptimalN:      res.OptimalN,
		MaxThroughput: res.MaxThroughput,
		Observations:  obs,
	}, nil
}

// Table1 runs both trainings.
func Table1(seed uint64, measure time.Duration) (tomcat, mysql Table1Row, err error) {
	tomcat, err = TrainTomcatModel(seed, nil, measure)
	if err != nil {
		return tomcat, mysql, err
	}
	mysql, err = TrainMySQLModel(seed, nil, measure)
	return tomcat, mysql, err
}

// RenderTable1 renders the two trained models next to the paper's values.
func RenderTable1(tomcat, mysql Table1Row) string {
	paperT, paperM := model.TableI()
	tb := metrics.NewTable("parameter", "Tomcat (paper)", "Tomcat (measured)", "MySQL (paper)", "MySQL (measured)")
	tb.AddRow("S0", fmt.Sprintf("%.2e", paperT.S0), fmt.Sprintf("%.2e", tomcat.Params.S0),
		fmt.Sprintf("%.2e", paperM.S0), fmt.Sprintf("%.2e", mysql.Params.S0))
	tb.AddRow("alpha", fmt.Sprintf("%.2e", paperT.Alpha), fmt.Sprintf("%.2e", tomcat.Params.Alpha),
		fmt.Sprintf("%.2e", paperM.Alpha), fmt.Sprintf("%.2e", mysql.Params.Alpha))
	tb.AddRow("beta", fmt.Sprintf("%.2e", paperT.Beta), fmt.Sprintf("%.2e", tomcat.Params.Beta),
		fmt.Sprintf("%.2e", paperM.Beta), fmt.Sprintf("%.2e", mysql.Params.Beta))
	tb.AddRow("gamma", fmtF(paperT.Gamma, 2), fmtF(tomcat.Params.Gamma, 2),
		fmtF(paperM.Gamma, 2), fmtF(mysql.Params.Gamma, 2))
	tb.AddRow("R^2", "0.96", fmtF(tomcat.RSquared, 3), "0.97", fmtF(mysql.RSquared, 3))
	tb.AddRow("N_b", "20", fmt.Sprintf("%d", tomcat.OptimalN), "36", fmt.Sprintf("%d", mysql.OptimalN))
	tb.AddRow("X_max", "946", fmtF(tomcat.MaxThroughput, 0), "865", fmtF(mysql.MaxThroughput, 0))
	return tb.String()
}

// TrainedModels returns the tier models the DCM controller runs with in
// the Fig. 5 scenarios: the output of Table1 training on the calibrated
// simulator, frozen as constants so scenario runs do not pay the training
// sweep. TestTrainedModelsMatchTraining keeps them honest against a fresh
// Table1 run.
func TrainedModels() (tomcat, mysql model.Params) {
	// γ=1 gauge (gauge choice does not affect N_b or the allocation plan).
	tomcat = model.Params{S0: 4.64e-3, Alpha: 8.08e-4, Beta: 9.46e-6, Gamma: 1}
	mysql = ntier.DefaultConfig().DBModel // direct stress recovers the law itself
	return tomcat, mysql
}
