package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"
	"time"

	"dcm/internal/chaos"
	"dcm/internal/invariant"
	"dcm/internal/resilience"
)

// The invariant checker must be a pure observer: it draws no randomness,
// schedules no events and only reads state, so enabling it cannot change
// a single byte of any result. The tests below enforce that across the
// whole experiment surface — the Fig. 5 scenarios (pinned to the same
// sha256 digests as the plain runs), the Fig. 2/4 steady-state sweeps
// (plain vs checked JSON equality) and the retry-storm ladder — while
// also asserting every run is structurally clean.

// TestInvariantsScenarioByteIdentical reruns the pinned reference
// scenarios with the checker enabled: digests must match the plain-run
// values in TestResilienceDisabledIsByteIdentical exactly, and the runs
// must record zero violations.
func TestInvariantsScenarioByteIdentical(t *testing.T) {
	t.Parallel()
	sched, err := chaos.Builtin("kitchen-sink")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  ScenarioConfig
		want string
	}{
		{
			name: "chaos-dcm-1234",
			cfg:  ScenarioConfig{Seed: 1234, Kind: ControllerDCM, Chaos: &sched, Invariants: true},
			want: "5aa04c68c34ddffe64803daa4df1afbb7a2269f6489957781c0ddfb667580baf",
		},
		{
			name: "plain-ec2-42",
			cfg:  ScenarioConfig{Seed: 42, Kind: ControllerEC2, Invariants: true},
			want: "7fe679ec01da5f80567c5128dbe3c5d34bb9d4bea52f324eb6a69d97c8760dc9",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res, err := RunScenario(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireCleanResult(t, res)
			data, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(data)
			if got := hex.EncodeToString(sum[:]); got != tc.want {
				t.Errorf("result digest = %s, want %s (invariant checking changed the output)", got, tc.want)
			}
		})
	}
}

// TestInvariantsFig2ByteIdentical compares plain vs checked Fig. 2 runs
// byte for byte.
func TestInvariantsFig2ByteIdentical(t *testing.T) {
	t.Parallel()
	t.Run("fig2a", func(t *testing.T) {
		t.Parallel()
		conc := []int{5, 36, 120}
		plain, err := Fig2aMySQLSweep(7, conc, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chk := invariant.New()
		checked, err := Fig2aMySQLSweepChecked(7, conc, 3*time.Second, chk)
		if err != nil {
			t.Fatal(err)
		}
		requireCleanChecker(t, chk)
		requireSameJSON(t, plain, checked)
	})
	t.Run("fig2b", func(t *testing.T) {
		t.Parallel()
		plain, err := Fig2bScaleOut(7, 3000, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chk := invariant.New()
		checked, err := Fig2bScaleOutChecked(7, 3000, 20*time.Second, chk)
		if err != nil {
			t.Fatal(err)
		}
		requireCleanChecker(t, chk)
		requireSameJSON(t, plain, checked)
	})
}

// TestInvariantsFig4ByteIdentical compares plain vs checked Fig. 4 grids
// byte for byte at the saturated user level.
func TestInvariantsFig4ByteIdentical(t *testing.T) {
	t.Parallel()
	users := []int{3000}
	t.Run("fig4a", func(t *testing.T) {
		t.Parallel()
		plain, _, err := Fig4a(7, users, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chk := invariant.New()
		checked, _, err := Fig4aChecked(7, users, 2*time.Second, chk)
		if err != nil {
			t.Fatal(err)
		}
		requireCleanChecker(t, chk)
		requireSameJSON(t, plain, checked)
	})
	t.Run("fig4b", func(t *testing.T) {
		t.Parallel()
		plain, _, err := Fig4b(7, users, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		chk := invariant.New()
		checked, _, err := Fig4bChecked(7, users, 2*time.Second, chk)
		if err != nil {
			t.Fatal(err)
		}
		requireCleanChecker(t, chk)
		requireSameJSON(t, plain, checked)
	})
}

// TestInvariantsRetryStormByteIdentical compares plain vs checked runs of
// every ladder rung — the configuration that exercises deadlines, retries,
// breakers and shedding all at once — byte for byte.
func TestInvariantsRetryStormByteIdentical(t *testing.T) {
	t.Parallel()
	base := RetryStormConfig{
		Seed:       99,
		Users:      200,
		DegradeAt:  5 * time.Second,
		DegradeFor: 20 * time.Second,
		Horizon:    40 * time.Second,
	}
	for _, variant := range RetryStormVariants() {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			t.Parallel()
			plain, err := RunRetryStormVariant(base, variant)
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Invariants = true
			checked, err := RunRetryStormVariant(cfg, variant)
			if err != nil {
				t.Fatal(err)
			}
			if len(checked.InvariantViolations) > 0 {
				t.Fatalf("%d invariant violation(s):\n%s",
					len(checked.InvariantViolations), invariant.Render(checked.InvariantViolations))
			}
			// A clean checked run serializes no extra fields, so the JSON
			// must match the plain run exactly.
			requireSameJSON(t, plain, checked)
		})
	}
}

// TestDispositionsConserveCompletions is the metrics-layer conservation
// law: on any resilience run, the disposition taxonomy must tally every
// request exactly once — OK dispositions equal completions, failed
// dispositions equal client-visible errors, and the total equals their
// sum. The kitchen-sink chaos schedule under the full preset exercises
// every disposition producer (timeouts, rejection, shedding, breakers,
// crashes).
func TestDispositionsConserveCompletions(t *testing.T) {
	t.Parallel()
	sched, err := chaos.Builtin("kitchen-sink")
	if err != nil {
		t.Fatal(err)
	}
	resCfg, err := resilience.Preset("full", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(ScenarioConfig{
		Seed:       1234,
		Kind:       ControllerDCM,
		Chaos:      &sched,
		Resilience: resCfg,
		Invariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireCleanResult(t, res)
	if res.Dispositions == nil {
		t.Fatal("resilience run has no disposition counts")
	}
	if err := res.Dispositions.CheckConsistent(res.TotalCompleted, res.TotalErrors); err != nil {
		t.Fatal(err)
	}
	if res.Dispositions.Total() == 0 {
		t.Fatal("disposition taxonomy is empty on a full-preset chaos run")
	}
}

func requireCleanResult(t *testing.T, res *ScenarioResult) {
	t.Helper()
	if vs := res.InvariantViolations; len(vs) > 0 {
		t.Fatalf("%d invariant violation(s):\n%s", res.InvariantChecker().Total(), invariant.Render(vs))
	}
}

func requireCleanChecker(t *testing.T, chk *invariant.Checker) {
	t.Helper()
	if vs := chk.Violations(); len(vs) > 0 {
		t.Fatalf("%d invariant violation(s):\n%s", chk.Total(), invariant.Render(vs))
	}
}

func requireSameJSON(t *testing.T, plain, checked any) {
	t.Helper()
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(checked)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("checked run diverged from plain run:\nplain:   %s\nchecked: %s", a, b)
	}
}
