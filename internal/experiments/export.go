package experiments

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"dcm/internal/ntier"
)

// WriteSeriesCSV writes a scenario's per-second series in a tidy CSV —
// one row per second with every Fig. 5 panel's value — ready for any
// plotting tool:
//
//	t,users,throughput,mean_rt,p95_rt,app_res,db_res,web_n,web_cpu,app_n,app_cpu,db_n,db_cpu
func (r *ScenarioResult) WriteSeriesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(
		"t,users,throughput,mean_rt,p95_rt,app_res,db_res,web_n,web_cpu,app_n,app_cpu,db_n,db_cpu\n"); err != nil {
		return fmt.Errorf("experiments: write csv header: %w", err)
	}
	for i := range r.Seconds {
		row := strconv.FormatFloat(r.Seconds[i], 'f', 0, 64) +
			"," + strconv.Itoa(r.Users[i]) +
			"," + strconv.FormatFloat(r.Throughput[i], 'f', 1, 64) +
			"," + strconv.FormatFloat(r.MeanRTSec[i], 'f', 4, 64) +
			"," + strconv.FormatFloat(r.P95RTSec[i], 'f', 4, 64) +
			"," + strconv.FormatFloat(r.AppResSec[i], 'f', 4, 64) +
			"," + strconv.FormatFloat(r.DBResSec[i], 'f', 4, 64)
		for _, tierName := range ntier.Tiers() {
			row += "," + strconv.Itoa(r.TierCounts[tierName][i]) +
				"," + strconv.FormatFloat(r.TierCPU[tierName][i], 'f', 3, 64)
		}
		row += "\n"
		if _, err := bw.WriteString(row); err != nil {
			return fmt.Errorf("experiments: write csv row: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("experiments: flush csv: %w", err)
	}
	return nil
}

// WriteActionsCSV writes the dispatched-action log as CSV:
//
//	t,type,tier,vm,code,reason,error
func (r *ScenarioResult) WriteActionsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("t,type,tier,vm,code,reason,error\n"); err != nil {
		return fmt.Errorf("experiments: write actions header: %w", err)
	}
	for _, rec := range r.Actions {
		row := fmt.Sprintf("%.0f,%s,%s,%s,%s,%q,%q\n",
			rec.At.Seconds(), rec.Action.Type, rec.Action.Tier, rec.VM,
			rec.Action.Code, rec.Action.Reason, rec.Err)
		if _, err := bw.WriteString(row); err != nil {
			return fmt.Errorf("experiments: write actions row: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("experiments: flush actions: %w", err)
	}
	return nil
}
