package experiments

import (
	"errors"
	"fmt"
	"time"

	"dcm/internal/chaos"
	"dcm/internal/cloud"
	"dcm/internal/controller"
	"dcm/internal/core"
	"dcm/internal/invariant"
	"dcm/internal/metrics"
	"dcm/internal/model"
	"dcm/internal/monitor"
	"dcm/internal/ntier"
	"dcm/internal/policy"
	"dcm/internal/resilience"
	"dcm/internal/rng"
	"dcm/internal/sim"
	"dcm/internal/trace"
	"dcm/internal/workload"
)

// ControllerKind selects the scaling policy of a scenario.
type ControllerKind string

// Scenario controllers.
const (
	// ControllerDCM is the paper's two-level controller.
	ControllerDCM ControllerKind = "dcm"
	// ControllerEC2 is the hardware-only baseline.
	ControllerEC2 ControllerKind = "ec2-autoscale"
	// ControllerDCMSoftOnly is the A1 ablation: the APP-agent alone, with
	// VM-level scaling disabled (MaxServers = 1).
	ControllerDCMSoftOnly ControllerKind = "dcm-soft-only"
	// ControllerNone runs with no controller actions at all (static
	// baseline).
	ControllerNone ControllerKind = "none"
	// ControllerDCMPredictive is DCM with Holt-forecast scale-out (the §VI
	// "predictive approaches" extension).
	ControllerDCMPredictive ControllerKind = "dcm-predictive"
	// ControllerEC2Predictive is the hardware-only baseline with the same
	// forecaster.
	ControllerEC2Predictive ControllerKind = "ec2-predictive"
	// ControllerTargetTracking is the modern EC2 target-tracking policy —
	// a stronger hardware-only baseline that still never touches soft
	// resources.
	ControllerTargetTracking ControllerKind = "target-tracking"
)

// ScenarioConfig parameterizes a Fig. 5-style run.
type ScenarioConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Kind selects the controller.
	Kind ControllerKind
	// Trace is the user-population trace; nil selects the synthetic
	// "large variation" trace (§V-B).
	Trace *trace.Trace
	// ThinkTime is the client think time (paper: 3 s mean).
	ThinkTime time.Duration
	// ControlPeriod and PrepDelay default to the paper's 15 s each.
	ControlPeriod, PrepDelay time.Duration
	// Policy overrides the threshold policy (zero value selects
	// controller.DefaultPolicy()).
	Policy *controller.Policy
	// Rules, when non-nil, derives the whole controller configuration from
	// a declarative policy rule set: thresholds and server bounds, the
	// planner's headroom/web-threads/clamps, the target-tracking setpoint,
	// and (on resilience runs) the retry-knob overrides. An explicit Policy
	// still wins over Rules.Scaling. With policy.Default() the run is
	// byte-identical to Rules == nil (pinned by the equivalence tests).
	Rules *policy.Rules
	// TomcatModel and MySQLModel are the trained models for DCM; zero
	// values select TrainedModels().
	TomcatModel, MySQLModel model.Params
	// OnlineTraining enables §III-C's online re-estimation inside the DCM
	// controller (see controller.DCMConfig.OnlineTraining).
	OnlineTraining bool
	// InitialAllocation is #W_T/#A_T/#A_C at the start (paper Fig. 5:
	// 1000/200/40).
	InitialAllocation model.Allocation
	// Tail extends the run past the trace end (default 30 s).
	Tail time.Duration
	// NoiseSigma adds service-time noise (default 0: deterministic).
	NoiseSigma float64
	// ServletMix serves the heterogeneous RUBBoS request classes
	// (ntier.DefaultServlets) instead of the uniform calibration class.
	ServletMix bool
	// Bursty, when non-nil, replaces the trace-driven workload with the
	// Markov-modulated burstiness-injection model of Mi et al. ([23]);
	// Horizon then bounds the run (default 600 s).
	Bursty  *workload.BurstyConfig
	Horizon time.Duration
	// Chaos, when non-nil, installs the fault schedule on the run and
	// attaches a recovery report to the result. Faults draw from the
	// scenario seed's "chaos" split, so the same seed replays the same
	// failure trace.
	Chaos *chaos.Schedule
	// ChaosAnalysis overrides the recovery-analysis parameters (zero
	// values select the defaults).
	ChaosAnalysis chaos.AnalysisConfig
	// CaptureTrace attaches a request tracer to the application: every
	// request records one span per tier hop, and the result carries the
	// per-tier latency breakdown plus the raw event log (RequestTrace).
	// Tracing never perturbs the simulation. TraceLimit caps the retained
	// events (0 selects trace.DefaultEventLimit).
	CaptureTrace bool
	TraceLimit   int
	// Audit attaches a decision audit log to the controller (when it
	// implements controller.Audited): every control period records its
	// inputs, actions and holds with machine-readable reason codes.
	Audit bool
	// Resilience, when non-nil, enables the data-plane resilience layer:
	// per-request deadlines, client retries (fed from the seed's "retry"
	// rng split), circuit breakers and admission control, per the config.
	// nil leaves the run byte-identical to a build without the layer.
	Resilience *resilience.Config
	// AppServers overrides the initial Tomcat-tier server count (0 keeps
	// ntier.DefaultConfig's single server). The retry-storm experiment
	// starts with two so one can be degraded while the other stays healthy.
	AppServers int
	// Invariants attaches the runtime invariant checker to the run: the
	// structural laws (request conservation, pool accounting, event-order,
	// breaker transitions) are swept once per simulated second and at the
	// end of the run, and any violations land on the result. Checking is
	// read-only — an Invariants run is byte-identical to a plain one.
	Invariants bool
	// Sensor, when non-nil, installs the control-plane sensor guard
	// (monitor.Guard) in front of view aggregation: stale samples are
	// rejected, non-monotonic timestamps clamped and flagged, outlying
	// CPU readings median-filtered, and short monitor blackouts bridged
	// with Smoothed aggregates the model trainers skip. nil keeps the
	// pipeline byte-identical to the unguarded one.
	Sensor *monitor.GuardConfig
}

// ScenarioResult holds the per-second series Fig. 5 plots plus the
// decision and scaling logs.
type ScenarioResult struct {
	Kind ControllerKind `json:"kind"`
	// Seconds is the time axis; all series are aligned to it.
	Seconds []float64 `json:"seconds"`
	// Users is the trace's population.
	Users []int `json:"users"`
	// Throughput, MeanRT and P95RT are per-second system series
	// (Fig. 5(a)(b)).
	Throughput []float64 `json:"throughput"`
	MeanRTSec  []float64 `json:"meanRTSec"`
	P95RTSec   []float64 `json:"p95RTSec"`
	// Errors is failed requests per second (non-zero under fault
	// injection).
	Errors []float64 `json:"errors,omitempty"`
	// AppResSec and DBResSec attribute latency to tiers per second: app
	// thread occupancy per request and per-query DB time.
	AppResSec []float64 `json:"appResSec"`
	DBResSec  []float64 `json:"dbResSec"`
	// TierCounts and TierCPU are per-second per-tier series
	// (Fig. 5(c)–(f)). Counts include provisioning VMs.
	TierCounts map[string][]int     `json:"tierCounts"`
	TierCPU    map[string][]float64 `json:"tierCPU"`
	// Actions is the controller's dispatched-action log; VMEvents is the
	// hypervisor's audit log (the scaling marks on the figures).
	Actions  []core.ActionRecord `json:"actions"`
	VMEvents []cloud.Event       `json:"vmEvents"`
	// TotalCompleted and TotalErrors are lifetime request counts.
	TotalCompleted uint64 `json:"totalCompleted"`
	TotalErrors    uint64 `json:"totalErrors"`
	// FinalAllocation is the soft allocation at the end of the run.
	FinalAllocation model.Allocation `json:"finalAllocation"`
	// Chaos is the fault-injection recovery report (nil without a
	// schedule).
	Chaos *chaos.Report `json:"chaos,omitempty"`
	// TierLatency summarizes the always-on per-tier histograms (queue
	// depth, service time, conn-pool wait) over the run, in tier order.
	TierLatency []TierHistogramSummary `json:"tierLatency"`
	// SeriesClamped counts out-of-order samples the series collector had
	// to clamp — non-zero means the bus delivered samples out of time
	// order.
	SeriesClamped uint64 `json:"seriesClamped,omitempty"`
	// LatencyBreakdown is the per-tier latency decomposition reconstructed
	// from the request trace (CaptureTrace runs only).
	LatencyBreakdown []trace.TierBreakdown `json:"latencyBreakdown,omitempty"`
	// Decisions is the controller's audit log (Audit runs with an
	// auditable controller only).
	Decisions []controller.Decision `json:"decisions,omitempty"`
	// Goodput, Retries and Dispositions are filled on resilience runs
	// only: completions within the SLA, client retry attempts, and the
	// full request-outcome taxonomy.
	Goodput      uint64                     `json:"goodput,omitempty"`
	Retries      uint64                     `json:"retries,omitempty"`
	Dispositions *metrics.DispositionCounts `json:"dispositions,omitempty"`
	// InvariantViolations lists the structural-law breaches detected by an
	// Invariants run. Absent on clean runs (and on runs without the
	// checker), so enabling the checker never changes the marshaled bytes
	// of a correct run.
	InvariantViolations []invariant.Violation `json:"invariantViolations,omitempty"`
	// SensorStats is the sensor guard's filtering tally (Sensor runs
	// only; nil otherwise).
	SensorStats *monitor.GuardStats `json:"sensorStats,omitempty"`

	tracer  *trace.RequestTracer
	audit   *controller.AuditLog
	checker *invariant.Checker
}

// RequestTrace returns the run's request tracer (nil unless CaptureTrace
// was set), for JSONL export of the raw event log.
func (r *ScenarioResult) RequestTrace() *trace.RequestTracer { return r.tracer }

// DecisionLog returns the run's audit log (nil unless Audit was set and
// the controller implements controller.Audited), for JSONL export and
// summary rendering.
func (r *ScenarioResult) DecisionLog() *controller.AuditLog { return r.audit }

// InvariantChecker returns the run's invariant checker (nil unless
// Invariants was set).
func (r *ScenarioResult) InvariantChecker() *invariant.Checker { return r.checker }

// TierHistogramSummary condenses one tier's latency histograms.
type TierHistogramSummary struct {
	Tier string `json:"tier"`
	// ServiceCount/P50/P95 summarize per-burst service times (seconds).
	ServiceCount uint64  `json:"serviceCount"`
	ServiceP50   float64 `json:"serviceP50"`
	ServiceP95   float64 `json:"serviceP95"`
	// QueueDepthP95/Max summarize the thread-pool queue depth seen at
	// admission.
	QueueDepthP95 float64 `json:"queueDepthP95"`
	QueueDepthMax float64 `json:"queueDepthMax"`
	// PoolWaitCount/P95 summarize conn-pool acquisition waits (seconds;
	// app tier only).
	PoolWaitCount uint64  `json:"poolWaitCount,omitempty"`
	PoolWaitP95   float64 `json:"poolWaitP95,omitempty"`
}

// RunScenario executes one §V-B scenario.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if cfg.Rules != nil {
		if err := cfg.Rules.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: scenario rules: %w", err)
		}
		// Retry-knob override: only on resilience runs, and on a copy — the
		// caller's config (often shared across a portfolio) stays untouched.
		if cfg.Rules.Retry.Override() && cfg.Resilience != nil {
			rc := *cfg.Resilience
			rc.Retry.MaxAttempts = cfg.Rules.Retry.MaxAttempts
			rc.Retry.BudgetRatio = cfg.Rules.Retry.BudgetRatio
			rc.Retry.BudgetBurst = float64(cfg.Rules.Retry.BudgetBurst)
			rc.Retry.Jitter = cfg.Rules.Retry.Jitter
			cfg.Resilience = &rc
		}
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.SynthesizeLargeVariation(cfg.Seed)
	}
	if cfg.ThinkTime <= 0 {
		cfg.ThinkTime = 3 * time.Second
	}
	if cfg.Tail <= 0 {
		cfg.Tail = 30 * time.Second
	}
	if cfg.InitialAllocation == (model.Allocation{}) {
		cfg.InitialAllocation = model.Allocation{
			WebThreadsPerServer: 1000,
			AppThreadsPerServer: 200,
			DBConnsPerAppServer: 40,
		}
	}

	eng := sim.NewEngine()
	root := rng.New(cfg.Seed)

	appCfg := ntier.DefaultConfig()
	appCfg.WebThreads = cfg.InitialAllocation.WebThreadsPerServer
	appCfg.AppThreads = cfg.InitialAllocation.AppThreadsPerServer
	appCfg.DBConnsPerApp = cfg.InitialAllocation.DBConnsPerAppServer
	appCfg.NoiseSigma = cfg.NoiseSigma
	if cfg.ServletMix {
		appCfg.Servlets = ntier.DefaultServlets()
	}
	if cfg.AppServers > 0 {
		appCfg.AppServers = cfg.AppServers
	}
	if cfg.Resilience != nil {
		appCfg.Resilience = *cfg.Resilience
	}
	app, err := ntier.New(eng, root.Split("app"), appCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: scenario app: %w", err)
	}

	var reqTracer *trace.RequestTracer
	if cfg.CaptureTrace {
		reqTracer = trace.NewRequestTracer(cfg.TraceLimit)
		app.SetRequestTracer(reqTracer)
	}

	var chk *invariant.Checker
	if cfg.Invariants {
		chk = invariant.New()
		app.SetInvariantChecker(chk)
		invariant.AttachEngine(chk, eng)
	}

	ctrl, err := buildController(cfg)
	if err != nil {
		return nil, err
	}
	var auditLog *controller.AuditLog
	if cfg.Audit {
		if a, ok := ctrl.(controller.Audited); ok {
			auditLog = controller.NewAuditLog()
			a.EnableAudit(auditLog)
		}
	}
	fw, err := core.New(eng, app, ctrl, core.Config{
		ControlPeriod:   cfg.ControlPeriod,
		MonitorInterval: time.Second,
		PrepDelay:       cfg.PrepDelay,
		Guard:           cfg.Sensor,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: scenario framework: %w", err)
	}
	if err := fw.Start(); err != nil {
		return nil, fmt.Errorf("experiments: scenario start: %w", err)
	}

	var injector *chaos.Injector
	if cfg.Chaos != nil {
		injector, err = chaos.NewInjector(eng, root.Split("chaos"), app,
			fw.Hypervisor(), fw.Fleet(), *cfg.Chaos)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario chaos: %w", err)
		}
		injector.Install()
	}

	// The "retry" split is drawn only on retry-enabled runs, and after
	// every unconditional split, so disabled runs consume exactly the
	// same rng stream as before the resilience layer existed.
	newRetrier := func() (*resilience.Retrier, error) {
		if cfg.Resilience == nil || !cfg.Resilience.Retry.Enabled() {
			return nil, nil
		}
		return resilience.NewRetrier(cfg.Resilience.Retry, root.Split("retry"))
	}
	var stopWorkload func()
	var totalRetries func() uint64
	if cfg.Bursty != nil {
		bl, err := workload.NewBurstyLoop(eng, root.Split("wl"), app, *cfg.Bursty)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario workload: %w", err)
		}
		ret, err := newRetrier()
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario retrier: %w", err)
		}
		bl.SetRetrier(ret)
		bl.Start()
		stopWorkload = bl.Stop
		totalRetries = bl.TotalRetries
	} else {
		wl, err := workload.NewTraceDriven(eng, root.Split("wl"), app, cfg.Trace, cfg.ThinkTime, time.Second)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario workload: %w", err)
		}
		ret, err := newRetrier()
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario retrier: %w", err)
		}
		wl.Loop().SetRetrier(ret)
		wl.Start()
		stopWorkload = wl.Stop
		totalRetries = wl.Loop().TotalRetries
	}

	horizon := cfg.Trace.Duration() + cfg.Tail
	if cfg.Bursty != nil {
		horizon = cfg.Horizon
		if horizon <= 0 {
			horizon = 600 * time.Second
		}
	}
	res := &ScenarioResult{
		Kind:       cfg.Kind,
		TierCounts: map[string][]int{},
		TierCPU:    map[string][]float64{},
	}
	// The samplers below fire once per second for the whole horizon, so the
	// series lengths are known now — size the buffers once up front.
	expectSamples := int(horizon/time.Second) + 1
	for _, tierName := range ntier.Tiers() {
		res.TierCounts[tierName] = make([]int, 0, expectSamples)
	}
	// Per-second topology sampler (server counts incl. provisioning VMs).
	// The invariant sweep piggybacks on this existing tick so checking adds
	// no events of its own — the event stream (and so the result bytes) is
	// identical with the checker on or off.
	stopSampler := eng.Ticker(time.Second, func() {
		for _, tierName := range ntier.Tiers() {
			count := app.ServerCount(tierName) + fw.VMAgent().Pending(tierName)
			res.TierCounts[tierName] = append(res.TierCounts[tierName], count)
		}
		if chk != nil {
			app.CheckInvariants()
			invariant.CheckEngine(chk, eng)
		}
	})
	if err := eng.Run(horizon); err != nil {
		return nil, fmt.Errorf("experiments: scenario run: %w", err)
	}
	stopSampler()
	stopWorkload()
	fw.Stop()

	if err := collectSeries(fw, res, horizon); err != nil {
		return nil, err
	}
	res.Users = make([]int, len(res.Seconds))
	for i, s := range res.Seconds {
		if cfg.Bursty != nil {
			res.Users[i] = cfg.Bursty.Users
		} else {
			res.Users[i] = cfg.Trace.UsersAt(time.Duration(s * float64(time.Second)))
		}
	}
	res.Actions = fw.Actions()
	res.VMEvents = fw.Hypervisor().Events()
	res.TotalCompleted = app.TotalCompletions()
	res.TotalErrors = app.TotalErrors()
	res.FinalAllocation = app.Allocation()
	if cfg.Resilience != nil {
		res.Goodput = app.TotalGood()
		res.Retries = totalRetries()
		disp := app.Dispositions()
		res.Dispositions = &disp
	}
	res.TierLatency = tierLatencySummaries(app)
	if reqTracer != nil {
		res.tracer = reqTracer
		res.LatencyBreakdown = reqTracer.Breakdown()
	}
	if auditLog != nil {
		res.audit = auditLog
		res.Decisions = auditLog.Decisions()
	}
	if cfg.Sensor != nil {
		stats := fw.GuardStats()
		res.SensorStats = &stats
	}
	if chk != nil {
		app.CheckInvariants()
		invariant.CheckEngine(chk, eng)
		res.checker = chk
		res.InvariantViolations = chk.Violations()
	}
	if injector != nil {
		rep := chaos.Analyze(chaos.Input{
			Schedule:        *cfg.Chaos,
			Injections:      injector.Log(),
			Seconds:         res.Seconds,
			Throughput:      res.Throughput,
			MeanRTSec:       res.MeanRTSec,
			ErroredRequests: res.TotalErrors,
		}, cfg.ChaosAnalysis)
		res.Chaos = &rep
	}
	return res, nil
}

// tierLatencySummaries condenses the per-tier histograms accumulated on
// the application's current members (servers removed by scale-in take
// their share of the counts with them).
func tierLatencySummaries(app *ntier.App) []TierHistogramSummary {
	out := make([]TierHistogramSummary, 0, len(ntier.Tiers()))
	for _, tierName := range ntier.Tiers() {
		hs, err := app.TierHistograms(tierName)
		if err != nil {
			continue
		}
		s := TierHistogramSummary{
			Tier:          tierName,
			ServiceCount:  hs.ServiceTime.Count(),
			ServiceP50:    hs.ServiceTime.Quantile(0.5),
			ServiceP95:    hs.ServiceTime.Quantile(0.95),
			QueueDepthP95: hs.QueueDepth.Quantile(0.95),
			QueueDepthMax: hs.QueueDepth.Max(),
		}
		if hs.PoolWait != nil {
			s.PoolWaitCount = hs.PoolWait.Count()
			s.PoolWaitP95 = hs.PoolWait.Quantile(0.95)
		}
		out = append(out, s)
	}
	return out
}

// buildController constructs the scenario's policy.
func buildController(cfg ScenarioConfig) (controller.Controller, error) {
	pol := controller.DefaultPolicy()
	target := 0.0
	var planRules *model.PlanRules
	headroom, webThreads := 0.0, 0
	if cfg.Rules != nil {
		pol = controller.PolicyFromRules(cfg.Rules.Scaling)
		target = cfg.Rules.Target.TargetCPU
		pr := controller.PlanRulesFromAllocation(cfg.Rules.Allocation)
		planRules = &pr
		headroom = cfg.Rules.Allocation.Headroom
		webThreads = cfg.Rules.Allocation.WebThreads
	}
	if cfg.Policy != nil {
		pol = *cfg.Policy
	}
	tomcat, mysql := cfg.TomcatModel, cfg.MySQLModel
	if tomcat == (model.Params{}) || mysql == (model.Params{}) {
		tomcat, mysql = TrainedModels()
	}
	switch cfg.Kind {
	case ControllerEC2:
		return controller.NewEC2AutoScale(pol)
	case ControllerEC2Predictive:
		return controller.NewPredictiveEC2AutoScale(pol, 0)
	case ControllerTargetTracking:
		return controller.NewTargetTracking(pol, target)
	case ControllerDCM, ControllerDCMPredictive:
		return controller.NewDCM(controller.DCMConfig{
			Policy:         pol,
			TomcatModel:    tomcat,
			MySQLModel:     mysql,
			Headroom:       headroom,
			WebThreads:     webThreads,
			PlanRules:      planRules,
			OnlineTraining: cfg.OnlineTraining,
			Predictive:     cfg.Kind == ControllerDCMPredictive,
		})
	case ControllerDCMSoftOnly:
		pol.MaxServers = 1
		pol.MinServers = 1
		return controller.NewDCM(controller.DCMConfig{
			Policy:      pol,
			TomcatModel: tomcat,
			MySQLModel:  mysql,
			Headroom:    headroom,
			WebThreads:  webThreads,
			PlanRules:   planRules,
		})
	case ControllerNone:
		pol.MaxServers = 1
		pol.MinServers = 1
		return controller.NewEC2AutoScale(pol)
	default:
		return nil, fmt.Errorf("experiments: unknown controller kind %q", cfg.Kind)
	}
}

// collectSeries reconstructs the per-second series from the bus logs.
func collectSeries(fw *core.Framework, res *ScenarioResult, horizon time.Duration) error {
	sysMsgs, err := fw.Bus().Fetch(monitor.TopicSystemMetrics, 0, 0)
	if err != nil {
		return fmt.Errorf("experiments: collect system series: %w", err)
	}
	// One sample per bus message at most: size every series once. The time
	// axis goes through a metrics.Series so out-of-order bus delivery is
	// clamped AND counted — the clamp total lands on the result instead of
	// being silently absorbed.
	axis := metrics.NewSeries("system")
	axis.Grow(len(sysMsgs))
	res.Throughput = make([]float64, 0, len(sysMsgs))
	res.MeanRTSec = make([]float64, 0, len(sysMsgs))
	res.P95RTSec = make([]float64, 0, len(sysMsgs))
	res.Errors = make([]float64, 0, len(sysMsgs))
	res.AppResSec = make([]float64, 0, len(sysMsgs))
	res.DBResSec = make([]float64, 0, len(sysMsgs))
	for _, m := range sysMsgs {
		s, ok := m.Value.(monitor.SystemSample)
		if !ok {
			continue
		}
		axis.Append(s.At, s.Throughput)
		res.Throughput = append(res.Throughput, s.Throughput)
		res.MeanRTSec = append(res.MeanRTSec, s.MeanRTSeconds)
		res.P95RTSec = append(res.P95RTSec, s.P95RTSeconds)
		res.Errors = append(res.Errors, float64(s.Errors))
		res.AppResSec = append(res.AppResSec, s.MeanAppResidence)
		res.DBResSec = append(res.DBResSec, s.MeanDBResidence)
	}
	res.Seconds = make([]float64, 0, axis.Len())
	for _, sm := range axis.Samples() {
		res.Seconds = append(res.Seconds, sm.At.Seconds())
	}
	res.SeriesClamped += axis.Clamped()

	srvMsgs, err := fw.Bus().Fetch(monitor.TopicServerMetrics, 0, 0)
	if err != nil {
		return fmt.Errorf("experiments: collect server series: %w", err)
	}
	type key struct {
		sec  int
		tier string
	}
	sums := make(map[key]float64)
	counts := make(map[key]int)
	for _, m := range srvMsgs {
		s, ok := m.Value.(monitor.ServerSample)
		if !ok {
			continue
		}
		k := key{sec: int(s.At.Seconds()) - 1, tier: s.Tier}
		sums[k] += s.CPUUtil
		counts[k]++
	}
	n := len(res.Seconds)
	for _, tierName := range ntier.Tiers() {
		series := make([]float64, n)
		for i := range series {
			k := key{sec: i, tier: tierName}
			if c := counts[k]; c > 0 {
				series[i] = sums[k] / float64(c)
			}
		}
		res.TierCPU[tierName] = series
	}
	// Trim the topology series to the same length.
	for tierName, s := range res.TierCounts {
		if len(s) > n {
			res.TierCounts[tierName] = s[:n]
		}
	}
	_ = horizon
	return nil
}

// ScenarioSummary condenses a run for comparison.
type ScenarioSummary struct {
	Kind ControllerKind `json:"kind"`
	// MeanRT and MaxRT summarize the per-second mean response times.
	MeanRTSec float64 `json:"meanRTSec"`
	MaxRTSec  float64 `json:"maxRTSec"`
	// P95OfP95 is the 95th percentile of the per-second P95 series — the
	// tail behaviour users experience during bursts.
	P95OfP95Sec float64 `json:"p95OfP95Sec"`
	// SpikeSeconds counts seconds whose mean RT exceeds 1 s (the paper's
	// "large response time spike" criterion).
	SpikeSeconds int `json:"spikeSeconds"`
	// VMSeconds is the total VM time consumed across the scalable tiers
	// (the cost side of the paper's "high resource efficiency" goal).
	VMSeconds float64 `json:"vmSeconds"`
	// RequestsPerVMSecond is TotalCompleted / VMSeconds — the resource
	// efficiency figure of merit.
	RequestsPerVMSecond float64 `json:"requestsPerVMSecond"`
	// DegradedSeconds counts seconds whose mean RT exceeds 0.5 s.
	DegradedSeconds int `json:"degradedSeconds"`
	// TotalCompleted is the lifetime request count.
	TotalCompleted uint64 `json:"totalCompleted"`
	// MaxAppServers and MaxDBServers record the scaling envelope.
	MaxAppServers int `json:"maxAppServers"`
	MaxDBServers  int `json:"maxDBServers"`
}

// Summarize reduces a scenario result to its headline numbers.
func (r *ScenarioResult) Summarize() ScenarioSummary {
	s := ScenarioSummary{Kind: r.Kind, TotalCompleted: r.TotalCompleted}
	var rts []float64
	for _, rt := range r.MeanRTSec {
		rts = append(rts, rt)
		if rt > 1.0 {
			s.SpikeSeconds++
		}
		if rt > 0.5 {
			s.DegradedSeconds++
		}
	}
	sum := metrics.Summarize(rts)
	s.MeanRTSec = sum.Mean
	s.MaxRTSec = sum.Max
	s.P95OfP95Sec = metricsP95(r.P95RTSec)
	for _, c := range r.TierCounts[ntier.TierApp] {
		if c > s.MaxAppServers {
			s.MaxAppServers = c
		}
	}
	for _, c := range r.TierCounts[ntier.TierDB] {
		if c > s.MaxDBServers {
			s.MaxDBServers = c
		}
	}
	for _, tierName := range []string{ntier.TierApp, ntier.TierDB} {
		for _, c := range r.TierCounts[tierName] {
			s.VMSeconds += float64(c) // one sample per second
		}
	}
	if s.VMSeconds > 0 {
		s.RequestsPerVMSecond = float64(r.TotalCompleted) / s.VMSeconds
	}
	return s
}

func metricsP95(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	return metrics.Summarize(values).P95
}

// ErrNoData is returned by renderers on empty results.
var ErrNoData = errors.New("experiments: no data")

// RenderScenarioComparison renders the DCM-vs-baseline headline table
// (the quantitative content of Fig. 5).
func RenderScenarioComparison(results ...*ScenarioResult) string {
	tb := metrics.NewTable("controller", "mean RT (s)", "max RT (s)", "p95 RT (s)",
		"spikes >1s", "completed", "max app", "max db", "VM-hours", "req/VM-s")
	for _, r := range results {
		s := r.Summarize()
		tb.AddRow(string(s.Kind), fmtF(s.MeanRTSec, 3), fmtF(s.MaxRTSec, 3),
			fmtF(s.P95OfP95Sec, 3), fmt.Sprintf("%d", s.SpikeSeconds),
			fmt.Sprintf("%d", s.TotalCompleted),
			fmt.Sprintf("%d", s.MaxAppServers), fmt.Sprintf("%d", s.MaxDBServers),
			fmtF(s.VMSeconds/3600, 2), fmtF(s.RequestsPerVMSecond, 0))
	}
	return tb.String()
}

// RenderTierLatency renders the always-on per-tier histogram summaries:
// the textual latency-breakdown companion to the Fig. 5 series.
func RenderTierLatency(r *ScenarioResult) string {
	if len(r.TierLatency) == 0 {
		return "no tier latency data\n"
	}
	tb := metrics.NewTable("tier", "bursts", "svc p50 (ms)", "svc p95 (ms)",
		"queue p95", "queue max", "pool waits", "pool p95 (ms)")
	for _, s := range r.TierLatency {
		tb.AddRow(s.Tier,
			fmt.Sprintf("%d", s.ServiceCount),
			fmtF(s.ServiceP50*1e3, 2), fmtF(s.ServiceP95*1e3, 2),
			fmtF(s.QueueDepthP95, 1), fmtF(s.QueueDepthMax, 0),
			fmt.Sprintf("%d", s.PoolWaitCount), fmtF(s.PoolWaitP95*1e3, 2))
	}
	out := tb.String()
	if r.SeriesClamped > 0 {
		out += fmt.Sprintf("WARNING: %d out-of-order samples clamped during series collection\n",
			r.SeriesClamped)
	}
	return out
}

// RenderScenarioSeries renders one run's per-second series (downsampled)
// as the textual analogue of Fig. 5's six panels.
func RenderScenarioSeries(r *ScenarioResult, every int) string {
	if every < 1 {
		every = 10
	}
	tb := metrics.NewTable("t(s)", "users", "X(req/s)", "meanRT(s)", "p95RT(s)",
		"app#", "appCPU", "db#", "dbCPU")
	for i := 0; i < len(r.Seconds); i += every {
		tb.AddRow(
			fmtF(r.Seconds[i], 0),
			fmt.Sprintf("%d", r.Users[i]),
			fmtF(r.Throughput[i], 0),
			fmtF(r.MeanRTSec[i], 3),
			fmtF(r.P95RTSec[i], 3),
			fmt.Sprintf("%d", r.TierCounts[ntier.TierApp][i]),
			fmtF(r.TierCPU[ntier.TierApp][i], 2),
			fmt.Sprintf("%d", r.TierCounts[ntier.TierDB][i]),
			fmtF(r.TierCPU[ntier.TierDB][i], 2),
		)
	}
	return tb.String()
}
